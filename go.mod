module eyeballas

go 1.22
