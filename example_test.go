package eyeball_test

import (
	"fmt"
	"log"

	"eyeballas"
)

// The examples below run against the deterministic test-scale world, so
// their output is stable across runs.

// ExampleGenerateSmallWorld shows ground-truth generation.
func ExampleGenerateSmallWorld() {
	w, err := eyeball.GenerateSmallWorld(42)
	if err != nil {
		log.Fatal(err)
	}
	s := w.Stats()
	fmt.Println("tier-1 backbones:", s.Tier1s)
	fmt.Println("case study planted:", w.CaseStudy() != nil)
	// Output:
	// tier-1 backbones: 6
	// case study planted: true
}

// ExampleEstimateFootprint runs the paper's §3–§4 analysis for the
// planted §6 subject: a Rome-only eyeball whose footprint is a single
// PoP.
func ExampleEstimateFootprint() {
	w, err := eyeball.GenerateSmallWorld(42)
	if err != nil {
		log.Fatal(err)
	}
	ds, err := eyeball.BuildTargetDataset(w, 42)
	if err != nil {
		log.Fatal(err)
	}
	rec := ds.AS(w.CaseStudy().Subject)
	fp, err := eyeball.EstimateFootprint(w, rec.Samples, eyeball.FootprintOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("PoP cities:", len(fp.PoPs))
	fmt.Println("top PoP:", fp.PoPs[0].City.Name)
	fmt.Println("classified:", eyeball.ClassifyLevel(rec.Samples).Level)
	// Output:
	// PoP cities: 1
	// top PoP: Rome
	// classified: city
}

// ExampleMatchPoPs validates a discovered PoP set against reference
// locations at the paper's §5 radius.
func ExampleMatchPoPs() {
	gaz := eyeball.Gazetteer()
	milan, _ := gaz.Find("Milan", "IT")
	rome, _ := gaz.Find("Rome", "IT")
	discovered := []eyeball.PoP{
		{City: milan, PeakLoc: milan.Loc},
		{City: rome, PeakLoc: rome.Loc},
	}
	reference := []eyeball.GeoPoint{milan.Loc} // only Milan is published
	m := eyeball.MatchPoPs(discovered, reference, eyeball.MatchRadiusKm)
	fmt.Printf("recall %.0f%%, precision %.0f%%, superset %v\n",
		100*m.RefMatchedFrac(), 100*m.DiscMatchedFrac(), m.Superset())
	// Output:
	// recall 100%, precision 50%, superset true
}
