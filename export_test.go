package eyeball

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

func TestWriteDatasetCSV(t *testing.T) {
	w, ds := apiSetup(t)
	var buf bytes.Buffer
	if err := WriteDatasetCSV(&buf, w, ds); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(ds.Records())+1 {
		t.Fatalf("rows = %d, want %d", len(rows), len(ds.Records())+1)
	}
	if rows[0][0] != "asn" || len(rows[0]) != 12 {
		t.Errorf("header = %v", rows[0])
	}
	if rows[0][6] != "users" || rows[0][7] != "samples" {
		t.Errorf("count columns = %v, want users,samples", rows[0][6:8])
	}
	// First data row matches the first record.
	rec := ds.Records()[0]
	if rows[1][0] != itoa(int(rec.ASN)) {
		t.Errorf("first row asn %s, want %d", rows[1][0], rec.ASN)
	}
	if rows[1][6] != itoa(rec.Users) {
		t.Errorf("users column %s, want %d", rows[1][6], rec.Users)
	}
	if rows[1][7] != itoa(len(rec.Samples)) {
		t.Errorf("samples column %s, want %d", rows[1][7], len(rec.Samples))
	}
	// With no sampling cap in apiSetup, users == samples; the app
	// columns count per-crawler observations and may sum past users.
	if rows[1][6] != rows[1][7] {
		t.Errorf("uncapped build: users %s != samples %s", rows[1][6], rows[1][7])
	}
}

func itoa(n int) string {
	var b [20]byte
	i := len(b)
	if n == 0 {
		return "0"
	}
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestWriteSamplesCSV(t *testing.T) {
	_, ds := apiSetup(t)
	rec := ds.Records()[0]
	var buf bytes.Buffer
	if err := WriteSamplesCSV(&buf, rec); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(rec.Samples)+1 {
		t.Fatalf("rows = %d, want %d", len(rows), len(rec.Samples)+1)
	}
	if rows[0][0] != "lat" {
		t.Errorf("header = %v", rows[0])
	}
}

func TestWriteWorldJSON(t *testing.T) {
	w, _ := apiSetup(t)
	var buf bytes.Buffer
	if err := WriteWorldJSON(&buf, w); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Seed uint64 `json:"seed"`
		ASes []struct {
			ASN      int      `json:"asn"`
			Kind     string   `json:"kind"`
			PoPs     []any    `json:"pops"`
			Prefixes []string `json:"prefixes"`
		} `json:"ases"`
		IXPs     []any `json:"ixps"`
		Peerings []any `json:"peerings"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Seed != w.Seed {
		t.Errorf("seed = %d", decoded.Seed)
	}
	if len(decoded.ASes) != len(w.ASNs()) {
		t.Errorf("ases = %d, want %d", len(decoded.ASes), len(w.ASNs()))
	}
	if len(decoded.IXPs) == 0 || len(decoded.Peerings) == 0 {
		t.Error("missing IXPs or peerings")
	}
	for _, a := range decoded.ASes[:10] {
		if len(a.PoPs) == 0 || len(a.Prefixes) == 0 {
			t.Errorf("AS %d lacks pops or prefixes", a.ASN)
		}
	}
	// Determinism.
	var buf2 bytes.Buffer
	if err := WriteWorldJSON(&buf2, w); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("world JSON not deterministic")
	}
	if !strings.Contains(buf.String(), "RomaMedia") {
		t.Error("case-study AS missing from JSON")
	}
}
