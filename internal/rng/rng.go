// Package rng provides the deterministic, splittable random number
// generation used by every stochastic component of the library.
//
// All synthetic-world generation flows from a single uint64 seed. Each
// subsystem derives an independent child generator with Split, so adding or
// reordering random draws inside one subsystem never perturbs another —
// essential for stable tests, benchmarks, and reproducible experiment
// tables.
package rng

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// Source is a deterministic random source. It wraps math/rand with a
// splittable derivation scheme and the extra distributions the generators
// need.
type Source struct {
	seed uint64
	r    *rand.Rand
}

// New returns a Source rooted at seed.
func New(seed uint64) *Source {
	return &Source{seed: seed, r: rand.New(rand.NewSource(int64(mix(seed))))}
}

// mix is splitmix64's finalizer; it decorrelates nearby seeds.
func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Split derives an independent child source identified by label. The same
// (seed, label) pair always yields the same child stream, regardless of how
// much the parent has been consumed.
func (s *Source) Split(label string) *Source {
	h := fnv.New64a()
	h.Write([]byte(label))
	return New(mix(s.seed ^ h.Sum64()))
}

// SplitN derives an independent child source identified by label and an
// index, for per-item streams (e.g. one stream per AS).
func (s *Source) SplitN(label string, n int) *Source {
	h := fnv.New64a()
	h.Write([]byte(label))
	return New(mix(mix(s.seed^h.Sum64()) + uint64(n)*0x9e3779b97f4a7c15))
}

// Seed returns the seed this source was rooted at.
func (s *Source) Seed() uint64 { return s.seed }

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 { return s.r.Float64() }

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int { return s.r.Intn(n) }

// Int63 returns a uniform non-negative int64.
func (s *Source) Int63() int64 { return s.r.Int63() }

// Uint32 returns a uniform uint32.
func (s *Source) Uint32() uint32 { return s.r.Uint32() }

// Uint64 returns a uniform uint64.
func (s *Source) Uint64() uint64 { return s.r.Uint64() }

// Norm returns a normal sample with the given mean and standard deviation.
func (s *Source) Norm(mean, stddev float64) float64 {
	return mean + stddev*s.r.NormFloat64()
}

// Exp returns an exponential sample with the given mean. It panics if
// mean <= 0.
func (s *Source) Exp(mean float64) float64 {
	if mean <= 0 {
		panic("rng: Exp mean must be positive")
	}
	return s.r.ExpFloat64() * mean
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool { return s.r.Float64() < p }

// Range returns a uniform value in [lo, hi).
func (s *Source) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*s.r.Float64()
}

// IntRange returns a uniform int in [lo, hi]. It panics if hi < lo.
func (s *Source) IntRange(lo, hi int) int {
	if hi < lo {
		panic("rng: IntRange hi < lo")
	}
	return lo + s.r.Intn(hi-lo+1)
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.r.Perm(n) }

// Shuffle randomizes the order of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }

// Zipf draws integers in [0, n) with probability proportional to
// 1/(i+1)^exponent. A fresh Zipf state is cheap; generators that draw many
// values should hold one via NewZipf.
type Zipf struct {
	cum []float64
}

// NewZipf precomputes a Zipf distribution over [0, n). It panics if n <= 0
// or exponent < 0.
func NewZipf(n int, exponent float64) *Zipf {
	if n <= 0 {
		panic("rng: Zipf n must be positive")
	}
	if exponent < 0 {
		panic("rng: Zipf exponent must be non-negative")
	}
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += math.Pow(float64(i+1), -exponent)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &Zipf{cum: cum}
}

// Draw samples one index from the distribution.
func (z *Zipf) Draw(s *Source) int {
	u := s.Float64()
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// N returns the support size.
func (z *Zipf) N() int { return len(z.cum) }

// WeightedIndex draws an index with probability proportional to weights[i].
// It returns -1 if weights is empty or sums to a non-positive value.
func (s *Source) WeightedIndex(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return -1
	}
	u := s.Float64() * total
	acc := 0.0
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}

// TruncNorm returns a normal sample clamped to [lo, hi] by resampling
// (up to 32 tries) and then clamping.
func (s *Source) TruncNorm(mean, stddev, lo, hi float64) float64 {
	for i := 0; i < 32; i++ {
		v := s.Norm(mean, stddev)
		if v >= lo && v <= hi {
			return v
		}
	}
	v := s.Norm(mean, stddev)
	return math.Min(hi, math.Max(lo, v))
}

// Pareto returns a bounded Pareto-like heavy-tailed sample with the given
// minimum and shape alpha. Larger alpha concentrates mass near min.
func (s *Source) Pareto(min, alpha float64) float64 {
	if min <= 0 || alpha <= 0 {
		panic("rng: Pareto parameters must be positive")
	}
	u := s.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return min / math.Pow(1-u, 1/alpha)
}

// Poisson returns a Poisson sample with the given mean (Knuth's algorithm
// for small means, normal approximation above 64).
func (s *Source) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		v := s.Norm(mean, math.Sqrt(mean))
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= s.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
