package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestSeedsDecorrelated(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("adjacent seeds produced %d identical draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	// A child stream must not depend on how much the parent was consumed.
	p1 := New(7)
	p2 := New(7)
	p2.Float64()
	p2.Float64()
	c1 := p1.Split("users")
	c2 := p2.Split("users")
	for i := 0; i < 32; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatal("split stream depends on parent consumption")
		}
	}
}

func TestSplitLabelsDiffer(t *testing.T) {
	p := New(7)
	if p.Split("a").Uint64() == p.Split("b").Uint64() {
		t.Error("different labels produced identical first draw")
	}
	if p.SplitN("a", 0).Uint64() == p.SplitN("a", 1).Uint64() {
		t.Error("different indices produced identical first draw")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 1000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestIntRange(t *testing.T) {
	s := New(3)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := s.IntRange(2, 5)
		if v < 2 || v > 5 {
			t.Fatalf("IntRange out of range: %v", v)
		}
		seen[v] = true
	}
	for v := 2; v <= 5; v++ {
		if !seen[v] {
			t.Errorf("IntRange never produced %d", v)
		}
	}
	if got := s.IntRange(4, 4); got != 4 {
		t.Errorf("degenerate IntRange = %d", got)
	}
}

func TestNormMoments(t *testing.T) {
	s := New(11)
	n := 20000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.Norm(10, 3)
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean-10) > 0.1 {
		t.Errorf("mean = %v, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-3) > 0.1 {
		t.Errorf("stddev = %v, want ~3", math.Sqrt(variance))
	}
}

func TestExpMean(t *testing.T) {
	s := New(12)
	n := 20000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Exp(5)
	}
	if mean := sum / float64(n); math.Abs(mean-5) > 0.2 {
		t.Errorf("mean = %v, want ~5", mean)
	}
}

func TestZipfSkew(t *testing.T) {
	s := New(13)
	z := NewZipf(100, 1.0)
	counts := make([]int, 100)
	for i := 0; i < 50000; i++ {
		counts[z.Draw(s)]++
	}
	if counts[0] <= counts[10] || counts[10] <= counts[90] {
		t.Errorf("Zipf not skewed: c0=%d c10=%d c90=%d", counts[0], counts[10], counts[90])
	}
	// With exponent 1 and n=100 the top rank should hold roughly
	// 1/H(100) ≈ 19% of the mass.
	frac := float64(counts[0]) / 50000
	if frac < 0.15 || frac > 0.25 {
		t.Errorf("top-rank mass = %v, want ~0.19", frac)
	}
}

func TestZipfUniformWhenExponentZero(t *testing.T) {
	s := New(14)
	z := NewZipf(10, 0)
	counts := make([]int, 10)
	for i := 0; i < 50000; i++ {
		counts[z.Draw(s)]++
	}
	for i, c := range counts {
		if c < 4000 || c > 6000 {
			t.Errorf("bucket %d count %d not ~5000", i, c)
		}
	}
}

func TestWeightedIndex(t *testing.T) {
	s := New(15)
	counts := [3]int{}
	for i := 0; i < 30000; i++ {
		idx := s.WeightedIndex([]float64{1, 0, 3})
		counts[idx]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight bucket drawn %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.6 || ratio > 3.4 {
		t.Errorf("weight ratio = %v, want ~3", ratio)
	}
	if s.WeightedIndex(nil) != -1 {
		t.Error("empty weights should return -1")
	}
	if s.WeightedIndex([]float64{0, 0}) != -1 {
		t.Error("all-zero weights should return -1")
	}
}

func TestTruncNorm(t *testing.T) {
	s := New(16)
	for i := 0; i < 1000; i++ {
		v := s.TruncNorm(0, 10, -5, 5)
		if v < -5 || v > 5 {
			t.Fatalf("TruncNorm out of bounds: %v", v)
		}
	}
}

func TestPareto(t *testing.T) {
	s := New(17)
	for i := 0; i < 1000; i++ {
		if v := s.Pareto(2, 1.5); v < 2 {
			t.Fatalf("Pareto below min: %v", v)
		}
	}
}

func TestPoisson(t *testing.T) {
	s := New(18)
	for _, mean := range []float64{0.5, 4, 100} {
		n := 20000
		sum := 0
		for i := 0; i < n; i++ {
			sum += s.Poisson(mean)
		}
		got := float64(sum) / float64(n)
		if math.Abs(got-mean) > 0.05*mean+0.1 {
			t.Errorf("Poisson(%v) mean = %v", mean, got)
		}
	}
	if s.Poisson(0) != 0 || s.Poisson(-1) != 0 {
		t.Error("non-positive mean should yield 0")
	}
}

func TestPanics(t *testing.T) {
	s := New(1)
	assertPanics := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	assertPanics("Exp", func() { s.Exp(0) })
	assertPanics("IntRange", func() { s.IntRange(5, 4) })
	assertPanics("ZipfN", func() { NewZipf(0, 1) })
	assertPanics("ZipfExp", func() { NewZipf(5, -1) })
	assertPanics("Pareto", func() { s.Pareto(0, 1) })
}
