package trace

import (
	"context"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"eyeballas/internal/obs"
)

// testTime returns a fixed base instant for explicit StartAt/EndAt
// calls.
func testTime() time.Time { return time.Unix(1000, 0) }

// pinnedClock advances 1ms per call, mirroring the obs test clock.
func pinnedClock() func() time.Time {
	base := testTime()
	n := 0
	return func() time.Time {
		n++
		return base.Add(time.Duration(n) * time.Millisecond)
	}
}

func TestSpanTree(t *testing.T) {
	tr := New(Options{Seed: 3, Clock: pinnedClock()})
	root := tr.StartAt("serve.footprint", testTime(), "")
	root.SetStr("route", "footprint")
	root.SetInt("status", 200)
	kde := root.Child("kde.estimate")
	kde.SetInt("samples", 300)
	kde.AddEvent("cache_checked")
	blur := kde.Child("blur_horizontal")
	blur.End()
	kde.End()
	root.EndAt(testTime().Add(10 * time.Millisecond))

	n := root.Tree()
	if n.Name != "serve.footprint" || n.DurNS != int64(10*time.Millisecond) {
		t.Fatalf("root node = %+v", n)
	}
	if len(n.Attrs) != 2 || n.Attrs[0] != (obs.TreeAttr{Key: "route", Val: "footprint"}) ||
		n.Attrs[1] != (obs.TreeAttr{Key: "status", Val: "200"}) {
		t.Fatalf("root attrs = %+v", n.Attrs)
	}
	if len(n.Children) != 1 || n.Children[0].Name != "kde.estimate" {
		t.Fatalf("root children = %+v", n.Children)
	}
	k := n.Children[0]
	if len(k.Events) != 1 || k.Events[0].Name != "cache_checked" || k.Events[0].AtNS <= 0 {
		t.Fatalf("kde events = %+v", k.Events)
	}
	if len(k.Children) != 1 || k.Children[0].Name != "blur_horizontal" {
		t.Fatalf("kde children = %+v", k.Children)
	}
	if root.SpanCount() != 3 {
		t.Fatalf("SpanCount = %d, want 3", root.SpanCount())
	}
}

func TestChildSeqDeterministicUnderConcurrency(t *testing.T) {
	tr := New(Options{Seed: 5})
	root := tr.Start("root")
	var wg sync.WaitGroup
	for i := 16; i > 0; i-- {
		wg.Add(1)
		go func(seq int) {
			defer wg.Done()
			c := root.ChildSeq("block", seq)
			c.SetInt("lo", int64(seq))
			c.End()
		}(i)
	}
	wg.Wait()
	root.End()
	n := root.Tree()
	if len(n.Children) != 16 {
		t.Fatalf("children = %d, want 16", len(n.Children))
	}
	for i, c := range n.Children {
		if want := strconv.Itoa(i + 1); c.Attrs[0].Val != want {
			t.Fatalf("child %d has lo=%s, want %s (siblings not sorted by seq)", i, c.Attrs[0].Val, want)
		}
	}
}

func TestSpanBudget(t *testing.T) {
	tr := New(Options{Seed: 9, MaxSpans: 3})
	root := tr.Start("root")
	a := root.Child("a")
	b := root.Child("b")
	if a == nil || b == nil {
		t.Fatal("children within budget were rejected")
	}
	c := root.Child("c")
	if c != nil {
		t.Fatal("child past MaxSpans was allocated")
	}
	// Nil children compose: attribute and End calls are no-ops, and
	// grandchildren of a dropped span are dropped too.
	c.SetStr("k", "v")
	c.End()
	if g := c.Child("grandchild"); g != nil {
		t.Fatal("grandchild of dropped span allocated")
	}
	if root.DroppedSpans() != 1 {
		t.Fatalf("DroppedSpans = %d, want 1", root.DroppedSpans())
	}
	if root.SpanCount() != 3 {
		t.Fatalf("SpanCount = %d, want 3", root.SpanCount())
	}
}

func TestEndIdempotentAndRecordsOnce(t *testing.T) {
	rec := NewRecorder(RecorderOptions{Recent: 4})
	tr := New(Options{Seed: 2, Recorder: rec})
	s := tr.StartAt("r", testTime(), "")
	s.EndAt(testTime().Add(5 * time.Millisecond))
	s.EndAt(testTime().Add(50 * time.Millisecond))
	if d, ok := s.Duration(); !ok || d != 5*time.Millisecond {
		t.Fatalf("Duration = %v %v, want first End to win", d, ok)
	}
	if got := len(rec.Recent()); got != 1 {
		t.Fatalf("recorder holds %d traces, want 1 (double End must not re-record)", got)
	}
}

func TestNilTracerAllocationFree(t *testing.T) {
	var tr *Tracer
	var sp *Span
	ctx := context.Background()
	checks := map[string]func(){
		"Start":       func() { tr.Start("x") },
		"StartAt":     func() { tr.StartAt("x", time.Time{}, "") },
		"Recorder":    func() { tr.Recorder() },
		"Child":       func() { sp.Child("x") },
		"ChildSeq":    func() { sp.ChildSeq("x", 1) },
		"SetStr":      func() { sp.SetStr("k", "v") },
		"SetInt":      func() { sp.SetInt("k", 12345) },
		"AddEvent":    func() { sp.AddEvent("e") },
		"End":         func() { sp.End() },
		"EndAt":       func() { sp.EndAt(time.Time{}) },
		"Duration":    func() { sp.Duration() },
		"TraceID":     func() { sp.TraceID() },
		"SpanID":      func() { sp.SpanID() },
		"Traceparent": func() { sp.Traceparent() },
		"NewContext":  func() { NewContext(ctx, sp) },
		"FromContext": func() { FromContext(ctx) },
		"Inject":      func() { Inject(http.Header{}, sp) },
	}
	for name, fn := range checks {
		if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
			t.Errorf("%s on nil receiver allocates %.1f/op, want 0", name, allocs)
		}
	}
}

func TestContextRoundTrip(t *testing.T) {
	tr := New(Options{Seed: 4})
	s := tr.Start("root")
	ctx := NewContext(context.Background(), s)
	if got := FromContext(ctx); got != s {
		t.Fatalf("FromContext = %v, want the stored span", got)
	}
	if FromContext(context.Background()) != nil {
		t.Fatal("FromContext of bare context not nil")
	}
	if FromContext(nil) != nil {
		t.Fatal("FromContext(nil) not nil")
	}
	// A nil span leaves the context untouched (no allocation, no key).
	base := context.Background()
	if NewContext(base, nil) != base {
		t.Fatal("NewContext with nil span rewrapped the context")
	}
}

func TestInjectWritesTraceparent(t *testing.T) {
	tr := New(Options{Seed: 11})
	s := tr.Start("client.call")
	h := http.Header{}
	Inject(h, s)
	tid, sid, ok := ParseTraceparent(h.Get("Traceparent"))
	if !ok || tid != s.TraceID() || sid != s.SpanID() {
		t.Fatalf("injected header %q does not round-trip to span identity", h.Get("Traceparent"))
	}
}

func TestExemplarSource(t *testing.T) {
	tr := New(Options{Seed: 6})
	s := tr.StartAt("r", testTime(), "")
	s.EndAt(testTime().Add(42 * time.Millisecond))
	var ex obs.ExemplarSource = s
	if got := ex.ExemplarTraceID(); got != s.TraceID().String() {
		t.Fatalf("ExemplarTraceID = %q", got)
	}
	if got := ex.ExemplarValue(); got != 0.042 {
		t.Fatalf("ExemplarValue = %v, want 0.042", got)
	}
}

func TestWriteJSONDetail(t *testing.T) {
	tr := New(Options{Seed: 12, Clock: pinnedClock()})
	root := tr.StartAt("serve.footprint", testTime(), "")
	root.SetStr("route", "footprint")
	c := root.Child("kde.estimate")
	c.End()
	root.EndAt(testTime().Add(8 * time.Millisecond))

	var sb strings.Builder
	if err := WriteJSON(&sb, root); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`"trace_id": "` + root.TraceID().String() + `"`,
		`"traceparent": "00-` + root.TraceID().String() + `-` + root.SpanID().String() + `-01"`,
		`"duration_ns": 8000000`,
		`"spans": 2`,
		`"name": "kde.estimate"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteJSON output missing %q:\n%s", want, out)
		}
	}
	// Determinism: rendering the same finished trace twice is
	// byte-identical.
	var sb2 strings.Builder
	WriteJSON(&sb2, root)
	if sb2.String() != out {
		t.Fatal("WriteJSON is not deterministic for a finished trace")
	}
}
