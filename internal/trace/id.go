package trace

import "encoding/hex"

// TraceID is a W3C trace-context trace ID: 16 bytes, rendered as 32
// lowercase hex digits. The all-zero value is invalid and doubles as
// "absent".
type TraceID [16]byte

// SpanID is a W3C trace-context parent/span ID: 8 bytes, 16 hex digits.
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero value.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// IsZero reports whether the ID is the invalid all-zero value.
func (id SpanID) IsZero() bool { return id == SpanID{} }

// String renders the ID as 32 lowercase hex digits.
func (id TraceID) String() string {
	var dst [32]byte
	hex.Encode(dst[:], id[:])
	return string(dst[:])
}

// String renders the ID as 16 lowercase hex digits.
func (id SpanID) String() string {
	var dst [16]byte
	hex.Encode(dst[:], id[:])
	return string(dst[:])
}

// ParseTraceID parses 32 lowercase hex digits. ok is false for any
// other length, non-hex input, or the all-zero ID.
func ParseTraceID(s string) (TraceID, bool) {
	var id TraceID
	if len(s) != 32 || !decodeLowerHex(id[:], s) || id.IsZero() {
		return TraceID{}, false
	}
	return id, true
}

// ParseSpanID parses 16 lowercase hex digits, rejecting the all-zero ID.
func ParseSpanID(s string) (SpanID, bool) {
	var id SpanID
	if len(s) != 16 || !decodeLowerHex(id[:], s) || id.IsZero() {
		return SpanID{}, false
	}
	return id, true
}

// decodeLowerHex decodes exactly len(dst)*2 lowercase hex digits —
// uppercase is rejected, per the W3C trace-context ABNF.
func decodeLowerHex(dst []byte, s string) bool {
	for i := range dst {
		hi, ok1 := hexVal(s[2*i])
		lo, ok2 := hexVal(s[2*i+1])
		if !ok1 || !ok2 {
			return false
		}
		dst[i] = hi<<4 | lo
	}
	return true
}

func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	}
	return 0, false
}

// ParseTraceparent parses a W3C traceparent header
// (version-traceid-parentid-flags, e.g.
// "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01").
// It accepts version 00 exactly; ok is false for malformed input,
// uppercase hex, the reserved version ff, or all-zero IDs.
func ParseTraceparent(h string) (tid TraceID, parent SpanID, ok bool) {
	// 2 (version) + 1 + 32 (trace-id) + 1 + 16 (parent-id) + 1 + 2 (flags)
	if len(h) != 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return TraceID{}, SpanID{}, false
	}
	if h[0] != '0' || h[1] != '0' {
		return TraceID{}, SpanID{}, false
	}
	tid, ok = ParseTraceID(h[3:35])
	if !ok {
		return TraceID{}, SpanID{}, false
	}
	parent, ok = ParseSpanID(h[36:52])
	if !ok {
		return TraceID{}, SpanID{}, false
	}
	if _, ok := hexVal(h[53]); !ok {
		return TraceID{}, SpanID{}, false
	}
	if _, ok := hexVal(h[54]); !ok {
		return TraceID{}, SpanID{}, false
	}
	return tid, parent, true
}

// FormatTraceparent renders a version-00 traceparent header with the
// sampled flag set — the form Inject writes and the serve smoke sends.
func FormatTraceparent(tid TraceID, sid SpanID) string {
	var buf [55]byte
	buf[0], buf[1], buf[2] = '0', '0', '-'
	hex.Encode(buf[3:35], tid[:])
	buf[35] = '-'
	hex.Encode(buf[36:52], sid[:])
	buf[52], buf[53], buf[54] = '-', '0', '1'
	return string(buf[:])
}
