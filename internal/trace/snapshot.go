package trace

import (
	"io"
	"sort"
	"sync"

	"eyeballas/internal/obs"
)

// spanList holds a span's children. Appends may come from concurrent
// worker goroutines; reads happen only after the owning trace finishes.
type spanList struct {
	mu   sync.Mutex
	list []*Span
}

// add appends c and returns its sibling sequence key: the explicit seq
// when >= 0, otherwise the arrival index (deterministic for serial
// callers).
func (l *spanList) add(c *Span, seq int32) int32 {
	l.mu.Lock()
	if seq < 0 {
		seq = int32(len(l.list))
	}
	l.list = append(l.list, c)
	l.mu.Unlock()
	return seq
}

func (l *spanList) snapshot() []*Span {
	l.mu.Lock()
	out := make([]*Span, len(l.list))
	copy(out, l.list)
	l.mu.Unlock()
	return out
}

// Tree converts the span subtree into the shared obs.TreeNode form —
// the same encoder obs.WriteTrace renders batch spans through, so the
// flight recorder, /debug/trace/{id}, and eyeballpipe -trace-out all
// emit one canonical text/JSON shape. Siblings are ordered by their
// sequence key, making the tree deterministic under parallel span
// creation. Returns the zero node on a nil receiver.
func (s *Span) Tree() obs.TreeNode {
	if s == nil {
		return obs.TreeNode{}
	}
	n := obs.TreeNode{Name: s.name, DurNS: s.durNS()}
	if na := s.numAttrs(); na > 0 {
		n.Attrs = s.appendAttrs(make([]obs.TreeAttr, 0, na))
	}
	for _, e := range s.events {
		n.Events = append(n.Events, obs.TreeEvent{Name: e.Name, AtNS: int64(e.At)})
	}
	kids := s.kids.snapshot()
	sort.SliceStable(kids, func(i, j int) bool { return kids[i].seq < kids[j].seq })
	for _, c := range kids {
		n.Children = append(n.Children, c.Tree())
	}
	return n
}

// Detail is the canonical JSON envelope of one full trace — the shape
// served by /debug/trace/{id} and written by eyeballpipe -trace-out.
type Detail struct {
	TraceID      string       `json:"trace_id"`
	Traceparent  string       `json:"traceparent"`
	DurationNS   int64        `json:"duration_ns"`
	Spans        int          `json:"spans"`
	DroppedSpans int          `json:"dropped_spans,omitempty"`
	Root         obs.TreeNode `json:"root"`
}

// DetailOf materializes a root span's Detail envelope.
func DetailOf(root *Span) Detail {
	return Detail{
		TraceID:      root.TraceID().String(),
		Traceparent:  root.Traceparent(),
		DurationNS:   root.durNS(),
		Spans:        root.SpanCount(),
		DroppedSpans: root.DroppedSpans(),
		Root:         root.Tree(),
	}
}

// WriteJSON writes one trace's Detail as deterministic indented JSON
// through the shared obs tree encoder. This is the single JSON encoding
// of a trace in the repository: the flight-recorder endpoints and the
// offline -trace-out export call exactly this.
func WriteJSON(w io.Writer, root *Span) error {
	if root == nil {
		return nil
	}
	return obs.EncodeJSON(w, DetailOf(root))
}

// WriteText writes one trace as the shared indented text tree (the
// -trace CLI form).
func WriteText(w io.Writer, root *Span) error {
	if root == nil {
		return nil
	}
	return obs.WriteTree(w, []obs.TreeNode{root.Tree()})
}

// Summary is the one-line listing form used by /debug/requests: enough
// to pick a trace out of the ring without materializing its whole tree.
type Summary struct {
	TraceID    string         `json:"trace_id"`
	Name       string         `json:"name"`
	DurationNS int64          `json:"duration_ns"`
	Spans      int            `json:"spans"`
	Attrs      []obs.TreeAttr `json:"attrs,omitempty"`
}

// SummaryOf materializes a root span's Summary (root attributes only).
func SummaryOf(root *Span) Summary {
	sum := Summary{
		TraceID:    root.TraceID().String(),
		Name:       root.name,
		DurationNS: root.durNS(),
		Spans:      root.SpanCount(),
	}
	if na := root.numAttrs(); na > 0 {
		sum.Attrs = root.appendAttrs(make([]obs.TreeAttr, 0, na))
	}
	return sum
}
