package trace

import (
	"math"
	"sync/atomic"
	"time"
)

// RecorderOptions configure a flight recorder. Zero fields take the
// listed defaults.
type RecorderOptions struct {
	// Recent is the size of the main ring: the last Recent completed
	// traces are retained regardless of latency (default 128).
	Recent int
	// Slow is the size of the slow ring (default 32).
	Slow int
	// SlowThreshold routes a completed trace into the slow ring when
	// its duration reaches the threshold (default 250ms; negative
	// disables slow capture).
	SlowThreshold time.Duration
}

// Recorder is the flight recorder: two fixed-size rings of completed
// root spans. The recent ring answers "what has this server just
// done"; the slow ring keeps latency outliers that would otherwise be
// evicted by the request flood that follows them. Memory is strictly
// bounded: at most Recent+Slow trace roots are referenced, each capped
// at the tracer's MaxSpans.
//
// record is a single atomic slot store on the request path; readers
// (the /debug handlers) walk the rings lock-free and may observe a
// concurrent overwrite as a skipped slot — acceptable for a diagnostic
// surface, and the reason no lock sits on the hot path.
type Recorder struct {
	recent ring
	slow   ring
	slowNS int64
}

// NewRecorder creates a flight recorder; see RecorderOptions.
func NewRecorder(o RecorderOptions) *Recorder {
	if o.Recent <= 0 {
		o.Recent = 128
	}
	if o.Slow <= 0 {
		o.Slow = 32
	}
	if o.SlowThreshold == 0 {
		o.SlowThreshold = 250 * time.Millisecond
	}
	r := &Recorder{
		recent: ring{slots: make([]atomic.Pointer[Span], o.Recent)},
		slow:   ring{slots: make([]atomic.Pointer[Span], o.Slow)},
		slowNS: int64(o.SlowThreshold),
	}
	if o.SlowThreshold < 0 {
		r.slowNS = math.MaxInt64
	}
	return r
}

// record files a completed root span. Called by Span.EndAt exactly once
// per trace.
func (r *Recorder) record(root *Span) {
	r.recent.push(root)
	if root.durNS() >= r.slowNS {
		r.slow.push(root)
	}
}

// Recent returns the retained traces, newest first.
func (r *Recorder) Recent() []*Span {
	if r == nil {
		return nil
	}
	return r.recent.newestFirst()
}

// Slow returns the retained slow traces, newest first.
func (r *Recorder) Slow() []*Span {
	if r == nil {
		return nil
	}
	return r.slow.newestFirst()
}

// Find returns the retained trace with the given ID, searching the
// recent then the slow ring, or nil.
func (r *Recorder) Find(id TraceID) *Span {
	if r == nil || id.IsZero() {
		return nil
	}
	if s := r.recent.find(id); s != nil {
		return s
	}
	return r.slow.find(id)
}

// ring is a lock-free overwrite ring of completed trace roots.
type ring struct {
	next  atomic.Uint64
	slots []atomic.Pointer[Span]
}

func (g *ring) push(s *Span) {
	i := g.next.Add(1) - 1
	g.slots[i%uint64(len(g.slots))].Store(s)
}

func (g *ring) newestFirst() []*Span {
	n := g.next.Load()
	out := make([]*Span, 0, len(g.slots))
	for k := 0; k < len(g.slots); k++ {
		if uint64(k) >= n {
			break // ring never filled this far
		}
		i := (n - 1 - uint64(k)) % uint64(len(g.slots))
		if s := g.slots[i].Load(); s != nil {
			out = append(out, s)
		}
	}
	return out
}

func (g *ring) find(id TraceID) *Span {
	for i := range g.slots {
		if s := g.slots[i].Load(); s != nil && s.traceID == id {
			return s
		}
	}
	return nil
}
