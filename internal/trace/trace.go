// Package trace provides request-scoped tracing for the serve path: one
// root span per request, child spans down through footprint rendering
// and KDE blocks, W3C traceparent interop, and a fixed-size flight
// recorder that keeps the last N completed traces (plus slow outliers)
// inspectable at /debug/requests.
//
// The package is dependency-free beyond the standard library and
// internal/obs (whose TreeNode encoder renders traces), and follows the
// repository's observability discipline:
//
//   - A nil *Tracer or *Span is a no-op: every method returns
//     immediately after one branch and allocates nothing, proven by
//     testing.AllocsPerRun. Instrumented code never checks whether
//     tracing is enabled.
//
//   - Tracing is a read-only side channel. Response and dataset bytes
//     are bit-identical with tracing on or off.
//
//   - IDs derive from a splitmix64 stream. Seeded tracers (tests, CI)
//     produce a deterministic ID sequence; unseeded tracers draw a
//     random initial state, so production IDs are unpredictable.
//
// Concurrency contract: a span's attributes and events are written only
// by the goroutine that created the span (the request goroutine for the
// root, the worker goroutine for a per-block child). Creating children
// is safe from concurrent goroutines. This keeps attribute writes
// lock-free on the request hot path; the recorder's publication of a
// finished root establishes the happens-before edge readers need.
package trace

import (
	"encoding/binary"
	"math/rand/v2"
	"strconv"
	"sync/atomic"
	"time"

	"eyeballas/internal/obs"
)

// splitmix64 constants: the golden-gamma increment and the finalizer
// multipliers (Steele et al., "Fast splittable pseudorandom number
// generators") — the same mixer internal/rng uses for dataset
// derivation, reproduced here so trace stays free of non-obs imports.
const splitmixGamma = 0x9e3779b97f4a7c15

func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Options configure a Tracer.
type Options struct {
	// Seed fixes the ID stream: a nonzero seed yields the same sequence
	// of trace/span IDs on every run (tests, CI smokes). Zero — the
	// production default — draws a random initial state.
	Seed uint64
	// Recorder receives completed root spans; nil disables the flight
	// recorder (traces are still built and can be inspected by the
	// caller that holds the root).
	Recorder *Recorder
	// Clock overrides time.Now for events (tests). Span start/end times
	// are supplied by callers (StartAt/EndAt) so tracing adds no clock
	// reads on paths that already measure latency.
	Clock func() time.Time
	// MaxSpans bounds the spans allocated per trace (default 1024).
	// Past the budget Child returns nil — callers are nil-safe — and
	// the trace reports the dropped count.
	MaxSpans int
}

// Tracer mints traces. A nil *Tracer is the disabled state: Start
// returns a nil *Span and the whole span API degrades to branch-only
// no-ops.
type Tracer struct {
	state    atomic.Uint64
	slab     atomic.Pointer[spanSlab]
	rec      *Recorder
	clock    func() time.Time
	maxSpans int32
}

// slabSpans sizes the bump-allocation slabs spans are carved from: one
// heap allocation per slabSpans spans instead of one per span, which is
// what keeps the traced hot path inside the serve layer's ≤3% overhead
// budget. Spans are never reused — a slab position is handed out once —
// so the only cost of the scheme is retention granularity: a trace held
// by the flight recorder pins the (~18 KiB) slabs its spans live in
// until the trace itself is overwritten.
const slabSpans = 32

type spanSlab struct {
	next  atomic.Uint32
	spans [slabSpans]Span
}

// allocSpan hands out the next span slot, starting a fresh slab when
// the current one is exhausted. Lock-free: the fast path is one atomic
// add; slab turnover is a CAS race whose losers simply retry on the
// winner's slab.
func (t *Tracer) allocSpan() *Span {
	for {
		sl := t.slab.Load()
		if sl != nil {
			if i := sl.next.Add(1); i <= slabSpans {
				return &sl.spans[i-1]
			}
		}
		fresh := &spanSlab{}
		fresh.next.Store(1)
		if t.slab.CompareAndSwap(sl, fresh) {
			return &fresh.spans[0]
		}
	}
}

// New creates a Tracer. See Options for seeding and recording.
func New(o Options) *Tracer {
	t := &Tracer{rec: o.Recorder, clock: o.Clock}
	if t.clock == nil {
		t.clock = time.Now
	}
	seed := o.Seed
	if seed == 0 {
		seed = rand.Uint64()
	}
	t.state.Store(seed)
	if o.MaxSpans > 0 {
		t.maxSpans = int32(o.MaxSpans)
	} else {
		t.maxSpans = 1024
	}
	return t
}

// Recorder returns the tracer's flight recorder (nil on a nil tracer or
// when recording is disabled).
func (t *Tracer) Recorder() *Recorder {
	if t == nil {
		return nil
	}
	return t.rec
}

// nextID draws the next nonzero 64-bit ID from the splitmix64 stream.
func (t *Tracer) nextID() uint64 {
	for {
		if v := mix64(t.state.Add(splitmixGamma)); v != 0 {
			return v
		}
	}
}

func (t *Tracer) newTraceID() TraceID {
	var id TraceID
	for id.IsZero() {
		putBE(id[0:8], t.nextID())
		putBE(id[8:16], t.nextID())
	}
	return id
}

// newRootIDs draws a trace ID and a span ID with a single atomic
// advance of the splitmix64 state — three stream values in one shared-
// cacheline operation, the same values three nextID calls would draw.
func (t *Tracer) newRootIDs() (TraceID, SpanID) {
	// Untyped-constant multiples of the gamma reduced mod 2^64, so the
	// wrap matches what repeated uint64 Adds would produce.
	const (
		gamma2 = splitmixGamma * 2 % (1 << 64)
		gamma3 = splitmixGamma * 3 % (1 << 64)
	)
	z := t.state.Add(gamma3)
	var tid TraceID
	var sid SpanID
	putBE(tid[0:8], mix64(z-gamma2))
	putBE(tid[8:16], mix64(z-splitmixGamma))
	putBE(sid[:], mix64(z))
	if tid.IsZero() {
		tid = t.newTraceID() // ~2^-128: both mixed words were zero
	}
	if sid.IsZero() {
		sid = t.newSpanID()
	}
	return tid, sid
}

func (t *Tracer) newSpanID() SpanID {
	var id SpanID
	putBE(id[:], t.nextID())
	return id
}

func putBE(dst []byte, v uint64) {
	binary.BigEndian.PutUint64(dst, v)
}

// Start opens a root span beginning now, with a fresh trace ID.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return t.StartAt(name, t.clock(), "")
}

// StartAt opens a root span with an explicit start time (reuse the
// timestamp the caller already took for latency measurement) and an
// optional inbound traceparent header: a valid header continues the
// remote trace (its trace ID is inherited and the remote span becomes
// the parent); an empty or malformed header starts a fresh trace.
// Returns nil on a nil tracer.
func (t *Tracer) StartAt(name string, start time.Time, traceparent string) *Span {
	if t == nil {
		return nil
	}
	s := t.allocSpan()
	s.tracer = t
	s.name = name
	s.start = start
	s.root = s
	if traceparent != "" {
		if tid, parent, ok := ParseTraceparent(traceparent); ok {
			s.traceID = tid
			s.remote = parent
		}
	}
	if s.traceID.IsZero() {
		s.traceID, s.id = t.newRootIDs()
	} else {
		s.id = t.newSpanID()
	}
	return s
}

// Attr is one key/value attribute. Integer values in the span's inline
// buffer are kept raw (flagged in the span's intMask) and rendered at
// snapshot time, so SetInt never formats on the hot path.
type Attr struct {
	Key string
	Str string
	Int int64
}

// Event is a point-in-time marker on a span; At is the offset from the
// trace root's start.
type Event struct {
	Name string
	At   time.Duration
}

// Span is one timed operation within a trace. The zero value is not
// usable; spans come from Tracer.StartAt and Span.Child. A nil *Span is
// a no-op for every method.
type Span struct {
	tracer *Tracer
	root   *Span
	name   string
	start  time.Time
	// done holds duration+1 ns once ended, 0 while open — the zero
	// value means "open", so a fresh slab span needs no initializing
	// atomic store.
	done atomic.Int64

	traceID TraceID // root only
	id      SpanID
	remote  SpanID // root only: inbound traceparent parent
	seq     int32  // sibling sort key (deterministic under parallelism)

	// Root only: child spans allocated / dropped for the whole trace
	// (the root itself is uncounted, so a fresh zeroed span needs no
	// initializing store).
	nkids   atomic.Int32
	dropped atomic.Int32

	// Attributes are written only by the creating goroutine (see the
	// package concurrency contract). attrBuf is an inline count-indexed
	// buffer — no slice header to initialize — sized for the serve root
	// span's seven attributes (route, asn, generation, cache, status,
	// outcome, bytes); intMask flags which inline slots hold raw ints.
	// extra takes the rare overflow past eight attributes with values
	// pre-rendered to strings (formatting there is off the hot path).
	nattrs  uint8
	intMask uint8
	attrBuf [8]Attr
	extra   []Attr
	events  []Event

	kids spanList
}

// addAttr appends one attribute; isInt marks attrBuf ints for lazy
// formatting at snapshot time.
func (s *Span) addAttr(a Attr, isInt bool) {
	if n := s.nattrs; int(n) < len(s.attrBuf) {
		s.attrBuf[n] = a
		if isInt {
			s.intMask |= 1 << n
		}
		s.nattrs = n + 1
		return
	}
	if isInt {
		a.Str = strconv.FormatInt(a.Int, 10)
	}
	s.extra = append(s.extra, a)
}

// appendAttrs materializes the span's attributes in recorded order.
func (s *Span) appendAttrs(dst []obs.TreeAttr) []obs.TreeAttr {
	for i := uint8(0); i < s.nattrs; i++ {
		a := s.attrBuf[i]
		val := a.Str
		if s.intMask&(1<<i) != 0 {
			val = strconv.FormatInt(a.Int, 10)
		}
		dst = append(dst, obs.TreeAttr{Key: a.Key, Val: val})
	}
	for _, a := range s.extra {
		dst = append(dst, obs.TreeAttr{Key: a.Key, Val: a.Str})
	}
	return dst
}

// numAttrs returns the attribute count.
func (s *Span) numAttrs() int { return int(s.nattrs) + len(s.extra) }

// TraceID returns the trace's ID (zero on a nil span).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.root.traceID
}

// SpanID returns this span's ID (zero on a nil span).
func (s *Span) SpanID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.id
}

// Name returns the span's name ("" on a nil span).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Traceparent renders the trace's W3C traceparent header with this span
// as the parent ("" on a nil span).
func (s *Span) Traceparent() string {
	if s == nil {
		return ""
	}
	return FormatTraceparent(s.root.traceID, s.id)
}

// Child opens a nested span starting now. Returns nil on a nil
// receiver or once the trace's span budget is exhausted.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.child(name, -1, s.tracer.clock())
}

// ChildAt is Child with an explicit start time.
func (s *Span) ChildAt(name string, start time.Time) *Span {
	if s == nil {
		return nil
	}
	return s.child(name, -1, start)
}

// ChildSeq opens a nested span with an explicit sibling sequence key.
// Concurrent workers creating siblings should pass a schedule-
// independent key (e.g. the block's low index): snapshots sort siblings
// by it, so the rendered tree is deterministic no matter which worker
// finished first.
func (s *Span) ChildSeq(name string, seq int) *Span {
	if s == nil {
		return nil
	}
	return s.child(name, int32(seq), s.tracer.clock())
}

func (s *Span) child(name string, seq int32, start time.Time) *Span {
	root := s.root
	if root.nkids.Add(1) > root.tracer.maxSpans-1 {
		root.nkids.Add(-1)
		root.dropped.Add(1)
		return nil
	}
	c := s.tracer.allocSpan()
	c.tracer = s.tracer
	c.root = root
	c.name = name
	c.start = start
	c.id = s.tracer.newSpanID()
	c.seq = s.kids.add(c, seq)
	return c
}

// SetStr records a string attribute. No-op on a nil receiver.
func (s *Span) SetStr(key, val string) {
	if s == nil {
		return
	}
	s.addAttr(Attr{Key: key, Str: val}, false)
}

// SetInt records an integer attribute; the value is formatted only at
// snapshot time. No-op on a nil receiver.
func (s *Span) SetInt(key string, val int64) {
	if s == nil {
		return
	}
	s.addAttr(Attr{Key: key, Int: val}, true)
}

// AddEvent records a named point-in-time event at the current clock,
// as an offset from the trace root's start. No-op on a nil receiver.
func (s *Span) AddEvent(name string) {
	if s == nil {
		return
	}
	s.events = append(s.events, Event{Name: name, At: s.tracer.clock().Sub(s.root.start)})
}

// End closes the span at the current clock. Ending twice keeps the
// first duration. Ending a root span hands the completed trace to the
// flight recorder. No-op on a nil receiver.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.EndAt(s.tracer.clock())
}

// EndAt is End with an explicit end time (reuse the timestamp the
// caller already took).
func (s *Span) EndAt(t time.Time) {
	if s == nil {
		return
	}
	d := t.Sub(s.start)
	if d < 0 {
		d = 0
	}
	if !s.done.CompareAndSwap(0, int64(d)+1) {
		return
	}
	if s == s.root && s.tracer.rec != nil {
		s.tracer.rec.record(s)
	}
}

// durNS returns the span duration in nanoseconds, -1 while open (the
// TreeNode convention).
func (s *Span) durNS() int64 {
	return s.done.Load() - 1
}

// Duration returns the recorded duration and whether the span ended.
func (s *Span) Duration() (time.Duration, bool) {
	if s == nil {
		return 0, false
	}
	ns := s.done.Load()
	if ns == 0 {
		return 0, false
	}
	return time.Duration(ns - 1), true
}

// SpanCount returns the number of spans allocated in this span's trace.
func (s *Span) SpanCount() int {
	if s == nil {
		return 0
	}
	return int(s.root.nkids.Load()) + 1
}

// DroppedSpans returns how many Child calls the trace's span budget
// rejected.
func (s *Span) DroppedSpans() int {
	if s == nil {
		return 0
	}
	return int(s.root.dropped.Load())
}

// ExemplarTraceID implements obs.ExemplarSource: the hex trace ID,
// materialized only when an exposition renders the exemplar.
func (s *Span) ExemplarTraceID() string { return s.TraceID().String() }

// ExemplarValue implements obs.ExemplarSource: the span's duration in
// seconds — the value the serve middleware observes into its latency
// histogram.
func (s *Span) ExemplarValue() float64 {
	d, _ := s.Duration()
	return d.Seconds()
}
