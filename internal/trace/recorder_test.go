package trace

import (
	"sync"
	"testing"
	"time"
)

// finish starts a root on tr, ends it with the given duration, and
// returns it; the recorder capture happens inside EndAt.
func finish(tr *Tracer, name string, dur time.Duration) *Span {
	s := tr.StartAt(name, testTime(), "")
	s.EndAt(testTime().Add(dur))
	return s
}

func TestRecorderRetainsNewestFirst(t *testing.T) {
	rec := NewRecorder(RecorderOptions{Recent: 4})
	tr := New(Options{Seed: 1, Recorder: rec})
	var all []*Span
	for i := 0; i < 7; i++ {
		all = append(all, finish(tr, "r", time.Millisecond))
	}
	got := rec.Recent()
	if len(got) != 4 {
		t.Fatalf("Recent() holds %d traces, want ring capacity 4", len(got))
	}
	// Newest first: traces 6,5,4,3.
	for i, s := range got {
		want := all[6-i]
		if s.TraceID() != want.TraceID() {
			t.Fatalf("Recent()[%d] = %s, want %s (newest-first after overflow)",
				i, s.TraceID(), want.TraceID())
		}
	}
	// The overwritten traces 0..2 are gone from Find.
	if rec.Find(all[0].TraceID()) != nil {
		t.Fatal("overwritten trace still findable")
	}
}

func TestRecorderSlowRouting(t *testing.T) {
	rec := NewRecorder(RecorderOptions{Recent: 8, Slow: 4, SlowThreshold: 10 * time.Millisecond})
	tr := New(Options{Seed: 2, Recorder: rec})
	fast := finish(tr, "fast", 2*time.Millisecond)
	slow := finish(tr, "slow", 50*time.Millisecond)
	edge := finish(tr, "edge", 10*time.Millisecond) // at-threshold counts as slow

	if got := rec.Recent(); len(got) != 3 {
		t.Fatalf("Recent holds %d, want all 3 (slow traces appear in both rings)", len(got))
	}
	got := rec.Slow()
	if len(got) != 2 {
		t.Fatalf("Slow holds %d traces, want 2", len(got))
	}
	if got[0].TraceID() != edge.TraceID() || got[1].TraceID() != slow.TraceID() {
		t.Fatalf("Slow order = %s,%s; want newest-first edge,slow", got[0].TraceID(), got[1].TraceID())
	}
	if rec.Find(fast.TraceID()) == nil || rec.Find(slow.TraceID()) == nil {
		t.Fatal("Find missed a retained trace")
	}
}

func TestRecorderFindChecksBothRings(t *testing.T) {
	// Recent ring of 1: a slow trace followed by a fast one evicts the
	// slow trace from recent, but Find must still see it via the slow
	// ring.
	rec := NewRecorder(RecorderOptions{Recent: 1, Slow: 4, SlowThreshold: 10 * time.Millisecond})
	tr := New(Options{Seed: 3, Recorder: rec})
	slow := finish(tr, "slow", 20*time.Millisecond)
	finish(tr, "fast", time.Millisecond)
	if rec.Find(slow.TraceID()) == nil {
		t.Fatal("slow trace evicted from recent ring not found via slow ring")
	}
}

func TestRecorderNegativeThresholdDisablesSlow(t *testing.T) {
	rec := NewRecorder(RecorderOptions{Recent: 4, Slow: 4, SlowThreshold: -1})
	tr := New(Options{Seed: 4, Recorder: rec})
	finish(tr, "r", time.Hour)
	if got := rec.Slow(); len(got) != 0 {
		t.Fatalf("Slow holds %d traces with capture disabled, want 0", len(got))
	}
	if got := rec.Recent(); len(got) != 1 {
		t.Fatalf("Recent holds %d, want 1", len(got))
	}
}

func TestRecorderDefaults(t *testing.T) {
	rec := NewRecorder(RecorderOptions{})
	tr := New(Options{Seed: 5, Recorder: rec})
	for i := 0; i < 200; i++ {
		finish(tr, "r", time.Millisecond)
	}
	if got := rec.Recent(); len(got) != 128 {
		t.Fatalf("default recent capacity = %d, want 128", len(got))
	}
	// Default threshold 250ms: a 300ms trace lands in slow.
	finish(tr, "slow", 300*time.Millisecond)
	if got := rec.Slow(); len(got) != 1 {
		t.Fatalf("default slow capture missed a 300ms trace (got %d)", len(got))
	}
}

func TestNilRecorderNoOps(t *testing.T) {
	var rec *Recorder
	if rec.Recent() != nil || rec.Slow() != nil || rec.Find(TraceID{1}) != nil {
		t.Fatal("nil recorder reads must return nil")
	}
	// A tracer without a recorder still works end to end.
	tr := New(Options{Seed: 6})
	s := tr.Start("r")
	s.End()
	if s.TraceID().IsZero() {
		t.Fatal("recorderless tracer produced zero trace ID")
	}
}

func TestRecorderConcurrentRecord(t *testing.T) {
	rec := NewRecorder(RecorderOptions{Recent: 16, Slow: 8, SlowThreshold: time.Nanosecond})
	tr := New(Options{Recorder: rec})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				finish(tr, "r", time.Millisecond)
				rec.Recent()
				rec.Slow()
			}
		}()
	}
	wg.Wait()
	if got := rec.Recent(); len(got) != 16 {
		t.Fatalf("Recent holds %d after concurrent churn, want full ring 16", len(got))
	}
	for _, s := range rec.Recent() {
		if s == nil {
			t.Fatal("nil slot surfaced from a full ring")
		}
	}
}
