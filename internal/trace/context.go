package trace

import (
	"context"
	"net/http"
)

type ctxKey struct{}

// NewContext returns ctx carrying s. A nil span returns ctx unchanged
// (no allocation), so untraced requests never pay for the context hop.
func NewContext(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the span carried by ctx, or nil — safe to call
// with a nil or span-free context, and composes with the nil-receiver
// span API: trace.FromContext(ctx).Child("x") is always valid.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// Inject writes the span's W3C traceparent header into h — the outbound
// half of context propagation, for clients calling downstream services
// with an active span. No-op on a nil span.
func Inject(h http.Header, s *Span) {
	if s == nil {
		return
	}
	h.Set("Traceparent", s.Traceparent())
}
