package trace

import (
	"strings"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tid, ok := ParseTraceID("0af7651916cd43dd8448eb211c80319c")
	if !ok {
		t.Fatal("ParseTraceID rejected valid id")
	}
	sid, ok := ParseSpanID("b7ad6b7169203331")
	if !ok {
		t.Fatal("ParseSpanID rejected valid id")
	}
	h := FormatTraceparent(tid, sid)
	want := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	if h != want {
		t.Fatalf("FormatTraceparent = %q, want %q", h, want)
	}
	gotT, gotS, ok := ParseTraceparent(h)
	if !ok || gotT != tid || gotS != sid {
		t.Fatalf("ParseTraceparent(%q) = %v %v %v", h, gotT, gotS, ok)
	}
	if tid.String() != "0af7651916cd43dd8448eb211c80319c" {
		t.Fatalf("TraceID.String = %q", tid.String())
	}
	if sid.String() != "b7ad6b7169203331" {
		t.Fatalf("SpanID.String = %q", sid.String())
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	valid := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	bad := []string{
		"",
		"00",
		valid[:54],                        // truncated
		valid + "0",                       // too long
		"ff" + valid[2:],                  // reserved version
		"0x" + valid[2:],                  // non-hex version
		strings.ToUpper(valid),            // uppercase hex (W3C requires lower)
		strings.Replace(valid, "-", "_", 3),
		"00-00000000000000000000000000000000-b7ad6b7169203331-01", // zero trace id
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01", // zero span id
		"00-0af7651916cd43dd8448eb211c80319g-b7ad6b7169203331-01", // non-hex digit
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-zz", // non-hex flags
	}
	for _, h := range bad {
		if _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted malformed input", h)
		}
	}
}

func TestSeededIDsDeterministic(t *testing.T) {
	a := New(Options{Seed: 7})
	b := New(Options{Seed: 7})
	for i := 0; i < 16; i++ {
		sa := a.Start("x")
		sb := b.Start("x")
		if sa.TraceID() != sb.TraceID() || sa.SpanID() != sb.SpanID() {
			t.Fatalf("seeded tracers diverged at trace %d: %s/%s vs %s/%s",
				i, sa.TraceID(), sa.SpanID(), sb.TraceID(), sb.SpanID())
		}
		if sa.TraceID().IsZero() || sa.SpanID().IsZero() {
			t.Fatal("seeded tracer produced a zero ID")
		}
	}
	c := New(Options{Seed: 8})
	if a.Start("x").TraceID() == c.Start("x").TraceID() {
		t.Fatal("different seeds produced the same trace ID")
	}
}

func TestUnseededIDsRandom(t *testing.T) {
	// Two unseeded tracers draw independent random states; a collision
	// on the first 128-bit trace ID would be astronomically unlikely.
	a := New(Options{}).Start("x")
	b := New(Options{}).Start("x")
	if a.TraceID() == b.TraceID() {
		t.Fatal("two unseeded tracers produced identical trace IDs")
	}
}

func TestStartAtInheritsTraceparent(t *testing.T) {
	tr := New(Options{Seed: 1})
	h := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	s := tr.StartAt("serve.footprint", testTime(), h)
	if got := s.TraceID().String(); got != "0af7651916cd43dd8448eb211c80319c" {
		t.Fatalf("inbound trace ID not inherited: %s", got)
	}
	if s.SpanID().String() == "b7ad6b7169203331" {
		t.Fatal("root span reused the remote parent's span ID")
	}
	// Malformed headers must not leak into the trace identity.
	s2 := tr.StartAt("serve.footprint", testTime(), "garbage")
	if s2.TraceID().IsZero() || s2.TraceID() == s.TraceID() {
		t.Fatalf("malformed traceparent handled wrong: %s", s2.TraceID())
	}
}
