// Package faults is the reproduction's deterministic fault-injection
// layer. The paper's method is an exercise in surviving dirty
// measurement data — geolocation databases with missing or wildly wrong
// records, incomplete BGP tables, biased partial crawls — and this
// package lets tests and experiments inject exactly those structural
// failures, reproducibly, at every ingestion boundary:
//
//   - crawl-loss / crawl-dup    — p2p crawl responses lost or duplicated
//   - geo-miss[-a|-b]           — a geolocation DB has no record for an IP
//   - geo-garbage               — a DB answers out-of-range coordinates
//   - geo-nan                   — a DB answers a NaN-zip record
//   - origin-miss               — a BGP origin lookup finds no prefix
//   - rib-truncate / rib-corrupt — RIB dump rows cut off or mangled
//   - worker-panic              — a worker goroutine panics mid-block
//   - snap-corrupt              — dataset snapshot bytes flipped on disk
//
// and, since PR 9, at the serving boundary (injected by the chaos
// middleware in internal/serve, keyed by request sequence number):
//
//   - serve-slow                — a request is served after an injected delay
//   - serve-panic               — the handler panics mid-request
//   - serve-500                 — the handler answers an injected 500
//   - serve-drop                — the connection is severed with no response
//   - reload-fail               — a hot-swapped snapshot fails post-swap
//     validation, forcing the rollback path
//
// Determinism discipline: every injection decision is a pure function of
// (plan seed, fault point, site key) — the same splitmix64 split scheme
// internal/rng uses for Source.Split — never of evaluation order, worker
// count, or wall clock. Two runs with the same plan inject the same
// faults at the same records; a plan whose rates are all zero is
// bit-identical to no plan at all (Injector returns nil, and every
// Injector method is a nil-safe no-op).
//
// Site keys must be derived from record identity (an IP address, a
// stream position, a crawl unit), never from where the record happens
// to sit in a processing batch. The streaming ingestion path re-batches
// the same peer sequence at arbitrary sizes; identity-keyed sites are
// what keep a plan's injections bit-identical across every BatchSize
// and Workers setting — and identical between the streaming and
// materialized Build paths.
//
// The package is a dependency leaf (stdlib only) so every ingestion
// package — p2p, geodb, bgp, pipeline, parallel consumers — can import
// it without cycles.
package faults

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
)

// Point identifies one injectable fault point.
type Point string

// The injectable fault points, one per ingestion boundary.
const (
	// CrawlLoss drops a crawl response: the peer is observed by the
	// crawler but the response is lost before it is recorded.
	CrawlLoss Point = "crawl-loss"
	// CrawlDup duplicates a crawl response: the same peer is recorded
	// twice (the pipeline's unique-IP dedup must absorb it).
	CrawlDup Point = "crawl-dup"
	// GeoMiss makes both geolocation databases miss (no city-level
	// record) for the hit IPs. Each database still decides per
	// (database, IP), so the two databases miss on independent IP sets.
	GeoMiss Point = "geo-miss"
	// GeoMissA injects misses into the primary database only.
	GeoMissA Point = "geo-miss-a"
	// GeoMissB injects misses into the secondary database only — the
	// knob that drives the single-DB fallback scenario.
	GeoMissB Point = "geo-miss-b"
	// GeoGarbage makes a database answer out-of-range coordinates
	// (|lat| > 90, |lon| > 180) — the "wildly wrong entry" failure mode
	// real databases exhibit.
	GeoGarbage Point = "geo-garbage"
	// GeoNaN makes a database answer a record whose coordinates are NaN
	// (a corrupt zip-centroid row).
	GeoNaN Point = "geo-nan"
	// OriginMiss makes a BGP origin lookup miss: the IP matches no
	// prefix (an incomplete RIB).
	OriginMiss Point = "origin-miss"
	// RIBTruncate cuts a RIB dump off at an injected row (the rest of
	// the file is lost).
	RIBTruncate Point = "rib-truncate"
	// RIBCorrupt mangles individual RIB dump rows.
	RIBCorrupt Point = "rib-corrupt"
	// WorkerPanic panics a worker goroutine mid-block; the parallel
	// pool must recover it into an error instead of crashing the
	// process.
	WorkerPanic Point = "worker-panic"
	// SnapCorrupt flips bits in a written dataset snapshot (a bad disk,
	// a torn download); the snapshot reader must reject the artifact
	// with a typed checksum error instead of serving poisoned data.
	SnapCorrupt Point = "snap-corrupt"
	// ServeSlow delays a served request by an injected site-derived
	// duration — the latency fault that drives the adaptive limiter and
	// the client's deadline handling.
	ServeSlow Point = "serve-slow"
	// ServePanic panics the request handler mid-request; the serve
	// layer's recovery middleware must turn it into a 500 and keep the
	// process alive.
	ServePanic Point = "serve-panic"
	// Serve500 makes the handler answer an injected 500 instead of
	// running — the "backend dependency failed" fault clients must
	// retry through.
	Serve500 Point = "serve-500"
	// ServeDrop severs the connection without writing a response — the
	// network fault clients observe as an unexpected EOF.
	ServeDrop Point = "serve-drop"
	// ReloadFail makes a hot-swapped snapshot fail post-swap validation,
	// exercising the serve layer's last-known-good rollback.
	ReloadFail Point = "reload-fail"
)

// Points lists every fault point in canonical order (the order
// Plan.String renders and documentation lists them in).
var Points = []Point{
	CrawlLoss, CrawlDup,
	GeoMiss, GeoMissA, GeoMissB, GeoGarbage, GeoNaN,
	OriginMiss,
	RIBTruncate, RIBCorrupt,
	WorkerPanic,
	SnapCorrupt,
	ServeSlow, ServePanic, Serve500, ServeDrop,
	ReloadFail,
}

// Valid reports whether p names a known fault point.
func (p Point) Valid() bool {
	for _, q := range Points {
		if p == q {
			return true
		}
	}
	return false
}

// mix is splitmix64's finalizer — the same decorrelation step
// internal/rng and internal/geodb use.
func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// u01 maps 64 random bits to a uniform float64 in [0, 1).
func u01(v uint64) float64 { return float64(v>>11) / (1 << 53) }

// Plan is a set of fault points with injection rates, rooted at one
// seed. The zero rate for a point means the point is disabled; a nil
// *Plan disables everything (all methods are nil-safe).
type Plan struct {
	seed  uint64
	rates map[Point]float64
}

// NewPlan creates an empty plan rooted at seed.
func NewPlan(seed uint64) *Plan {
	return &Plan{seed: seed, rates: make(map[Point]float64)}
}

// Seed returns the plan's seed (0 for nil).
func (p *Plan) Seed() uint64 {
	if p == nil {
		return 0
	}
	return p.seed
}

// Set sets the injection rate for a fault point. Rates are
// probabilities in [0, 1].
func (p *Plan) Set(pt Point, rate float64) error {
	if !pt.Valid() {
		return fmt.Errorf("faults: unknown fault point %q (known: %s)", pt, knownList())
	}
	if !(rate >= 0 && rate <= 1) { // also rejects NaN
		return fmt.Errorf("faults: rate %v for %s outside [0,1]", rate, pt)
	}
	p.rates[pt] = rate
	return nil
}

// Rate returns the configured rate for a point (0 for nil plans and
// unset points).
func (p *Plan) Rate(pt Point) float64 {
	if p == nil {
		return 0
	}
	return p.rates[pt]
}

// Enabled reports whether any fault point has a positive rate.
func (p *Plan) Enabled() bool {
	if p == nil {
		return false
	}
	for _, r := range p.rates {
		if r > 0 {
			return true
		}
	}
	return false
}

// Injector derives the injector for one fault point. It returns nil —
// the universally no-op injector — when the plan is nil or the point's
// rate is zero, so a disabled fault point costs one nil check at the
// call site and nothing else.
//
// The injector's stream is derived with the same Split discipline as
// rng.Source: seed' = mix(planSeed ^ fnv64a(point)), so each point's
// decisions are independent of every other point's.
func (p *Plan) Injector(pt Point) *Injector {
	if p == nil {
		return nil
	}
	rate := p.rates[pt]
	if rate <= 0 {
		return nil
	}
	h := fnv.New64a()
	h.Write([]byte(pt))
	return &Injector{seed: mix(p.seed ^ h.Sum64()), rate: rate}
}

// String renders the plan as a canonical spec ("geo-miss=0.05,..."),
// listing points in Points order and eliding zero rates. ParseSpec
// round-trips it. Nil and all-zero plans render as "".
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	var parts []string
	for _, pt := range Points {
		if r := p.rates[pt]; r > 0 {
			parts = append(parts, string(pt)+"="+strconv.FormatFloat(r, 'g', -1, 64))
		}
	}
	return strings.Join(parts, ",")
}

// ParseSpec parses a comma-separated point=rate spec, e.g.
//
//	geo-miss=0.05,origin-miss=0.01
//
// into a plan rooted at seed. Whitespace around entries is ignored; a
// point given twice keeps the last rate. An empty spec returns a nil
// plan (injection fully disabled).
func ParseSpec(spec string, seed uint64) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	p := NewPlan(seed)
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		eq := strings.IndexByte(entry, '=')
		if eq < 0 {
			return nil, fmt.Errorf("faults: bad spec entry %q (want point=rate)", entry)
		}
		pt := Point(strings.TrimSpace(entry[:eq]))
		rateStr := strings.TrimSpace(entry[eq+1:])
		rate, err := strconv.ParseFloat(rateStr, 64)
		if err != nil {
			return nil, fmt.Errorf("faults: bad rate %q for %s", rateStr, pt)
		}
		if err := p.Set(pt, rate); err != nil {
			return nil, err
		}
	}
	return p, nil
}

func knownList() string {
	names := make([]string, len(Points))
	for i, p := range Points {
		names[i] = string(p)
	}
	sort.Strings(names)
	return strings.Join(names, " ")
}

// Injector makes per-site injection decisions for one fault point. A
// site is whatever stable key identifies the record at the boundary —
// an IP address, a row index, a (key, salt) pair — so the decision is
// identical no matter when, where, or on which worker the record is
// processed. All methods are no-ops on a nil receiver.
type Injector struct {
	seed uint64
	rate float64
}

// Rate returns the injector's rate (0 for nil).
func (in *Injector) Rate() float64 {
	if in == nil {
		return 0
	}
	return in.rate
}

// Hit reports whether the fault fires at this site.
func (in *Injector) Hit(site uint64) bool {
	if in == nil {
		return false
	}
	return u01(mix(in.seed^mix(site))) < in.rate
}

// Hit2 is Hit over a compound (site, salt) key — e.g. (IP, app) so the
// same IP seen by two crawlers fails independently per crawler.
func (in *Injector) Hit2(site, salt uint64) bool {
	if in == nil {
		return false
	}
	return in.Hit(mix(site ^ mix(salt)))
}

// Rand returns 64 deterministic bits for this site, independent of the
// Hit decision — the entropy source for fault payloads (which garbage
// coordinate, which corruption mode). Returns 0 on nil.
func (in *Injector) Rand(site uint64) uint64 {
	if in == nil {
		return 0
	}
	return mix(in.seed ^ 0xa5a5a5a5a5a5a5a5 ^ mix(site))
}
