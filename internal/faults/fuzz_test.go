package faults

import (
	"testing"
)

// FuzzParseSpec hammers the -faults flag parser: it must never panic,
// and every accepted spec must round-trip through the canonical String
// form with identical rates (the property the CLIs rely on when they
// echo the active plan). Run continuously in CI as a 10s smoke.
func FuzzParseSpec(f *testing.F) {
	f.Add("geo-miss=0.05")
	f.Add("geo-miss=0.05,origin-miss=0.01")
	f.Add("crawl-loss=1,crawl-dup=0")
	f.Add("")
	f.Add(" , ,")
	f.Add("worker-panic=1e-3")
	f.Add("geo-miss=0x1p-4")
	f.Add("rib-truncate=0.5,rib-truncate=0.1")
	f.Add("geo-miss=NaN")
	f.Add("geo-miss==0.5")
	f.Fuzz(func(t *testing.T, spec string) {
		p, err := ParseSpec(spec, 42)
		if err != nil {
			if p != nil {
				t.Fatalf("error %v but non-nil plan", err)
			}
			return
		}
		// Accepted: all rates must be valid probabilities …
		if p == nil {
			return // empty spec
		}
		for _, pt := range Points {
			r := p.Rate(pt)
			if !(r >= 0 && r <= 1) {
				t.Fatalf("accepted spec %q yields rate %v for %s", spec, r, pt)
			}
		}
		// … and the canonical form must reparse to identical rates.
		canon := p.String()
		q, err := ParseSpec(canon, 42)
		if err != nil {
			t.Fatalf("canonical form %q (from %q) rejected: %v", canon, spec, err)
		}
		for _, pt := range Points {
			var qr float64
			if q != nil {
				qr = q.Rate(pt)
			}
			if qr != p.Rate(pt) {
				t.Fatalf("round trip of %q changed %s: %v -> %v", spec, pt, p.Rate(pt), qr)
			}
		}
	})
}
