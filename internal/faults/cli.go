package faults

import "flag"

// CLIFlags bundles the two fault-injection flags every CLI exposes:
//
//	-faults <spec>    comma-separated point=rate entries, e.g.
//	                  "geo-miss=0.05,origin-miss=0.01" (empty disables
//	                  injection entirely — the zero-cost default)
//	-fault-seed <N>   the plan seed: same spec + same seed = the same
//	                  injected faults, regardless of worker count
//
// Usage: BindCLIFlags(fs) before fs.Parse; after parsing, Plan()
// returns the parsed plan (nil when -faults was not given).
type CLIFlags struct {
	spec string
	seed uint64
}

// BindCLIFlags registers -faults and -fault-seed on fs.
func BindCLIFlags(fs *flag.FlagSet) *CLIFlags {
	c := &CLIFlags{}
	fs.StringVar(&c.spec, "faults", "",
		"inject deterministic faults: comma-separated point=rate entries (e.g. geo-miss=0.05,origin-miss=0.01); empty disables injection")
	fs.Uint64Var(&c.seed, "fault-seed", 1,
		"seed for the fault-injection plan; the same -faults spec and seed reproduce the exact same failures")
	return c
}

// Plan parses the -faults spec into a plan rooted at -fault-seed. An
// empty spec returns (nil, nil): injection fully disabled.
func (c *CLIFlags) Plan() (*Plan, error) {
	if c == nil {
		return nil, nil
	}
	return ParseSpec(c.spec, c.seed)
}
