package faults

import (
	"bufio"
	"io"
)

// MangleStats reports what MangleLines did to a stream.
type MangleStats struct {
	Lines     int  // lines copied to dst (including corrupted ones)
	Corrupted int  // lines mangled by the rib-corrupt injector
	Truncated bool // the stream was cut off by the rib-truncate injector
}

// MangleLines copies src to dst line by line, injecting the RIB-dump
// fault points: when trunc fires at a line index the copy stops there
// (the remainder of the stream is lost, modelling a truncated transfer
// or a partially-written dump), and when corrupt fires the line is
// deterministically mangled (separator removed, tail chopped, or a
// garbage field appended — the corruption modes bgp.ReadRIB must
// reject or survive).
//
// Header lines (starting with '#') are exempt from corruption so the
// entries= row-count declaration survives — which is exactly what lets
// the reader detect a truncated body. Sites are line indexes, so the
// same (plan, input) pair always mangles the same lines.
func MangleLines(dst io.Writer, src io.Reader, trunc, corrupt *Injector) (MangleStats, error) {
	var st MangleStats
	sc := bufio.NewScanner(src)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	bw := bufio.NewWriter(dst)
	for i := 0; sc.Scan(); i++ {
		line := sc.Text()
		if trunc.Hit(uint64(i)) {
			st.Truncated = true
			break
		}
		if len(line) > 0 && line[0] != '#' && corrupt.Hit(uint64(i)) {
			line = corruptLine(line, corrupt.Rand(uint64(i)))
			st.Corrupted++
		}
		if _, err := bw.WriteString(line); err != nil {
			return st, err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return st, err
		}
		st.Lines++
	}
	if err := sc.Err(); err != nil {
		return st, err
	}
	return st, bw.Flush()
}

// corruptLine applies one of three deterministic mutations.
func corruptLine(line string, r uint64) string {
	switch r % 3 {
	case 0: // chop the tail mid-field
		return line[:len(line)-(len(line)/2)-1]
	case 1: // strip every separator
		out := make([]byte, 0, len(line))
		for i := 0; i < len(line); i++ {
			if line[i] != '|' {
				out = append(out, line[i])
			}
		}
		return string(out)
	default: // append a non-numeric garbage field
		return line + " xx"
	}
}
