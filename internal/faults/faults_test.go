package faults

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestNilSafety(t *testing.T) {
	var p *Plan
	if p.Enabled() || p.Rate(GeoMiss) != 0 || p.Seed() != 0 || p.String() != "" {
		t.Error("nil plan is not a no-op")
	}
	if inj := p.Injector(GeoMiss); inj != nil {
		t.Error("nil plan produced a non-nil injector")
	}
	var in *Injector
	if in.Hit(1) || in.Hit2(1, 2) || in.Rate() != 0 || in.Rand(1) != 0 {
		t.Error("nil injector is not a no-op")
	}
}

func TestZeroRateInjectorIsNil(t *testing.T) {
	p := NewPlan(1)
	if err := p.Set(GeoMiss, 0); err != nil {
		t.Fatal(err)
	}
	if inj := p.Injector(GeoMiss); inj != nil {
		t.Error("zero-rate point produced a non-nil injector")
	}
	if p.Enabled() {
		t.Error("all-zero plan reports Enabled")
	}
}

func TestSetValidation(t *testing.T) {
	p := NewPlan(1)
	if err := p.Set("no-such-point", 0.5); err == nil {
		t.Error("unknown point accepted")
	}
	for _, bad := range []float64{-0.1, 1.5, math.NaN()} {
		if err := p.Set(GeoMiss, bad); err == nil {
			t.Errorf("rate %v accepted", bad)
		}
	}
	if err := p.Set(GeoMiss, 1); err != nil {
		t.Errorf("rate 1 rejected: %v", err)
	}
}

func TestHitDeterministicAndSeedSensitive(t *testing.T) {
	mk := func(seed uint64) *Injector {
		p := NewPlan(seed)
		if err := p.Set(GeoMiss, 0.5); err != nil {
			t.Fatal(err)
		}
		return p.Injector(GeoMiss)
	}
	a1, a2, b := mk(7), mk(7), mk(8)
	sameAsA, sameAsB := 0, 0
	const n = 4096
	for site := uint64(0); site < n; site++ {
		if a1.Hit(site) != a2.Hit(site) {
			t.Fatalf("same seed disagrees at site %d", site)
		}
		if a1.Hit(site) == b.Hit(site) {
			sameAsB++
		}
		_ = sameAsA
	}
	// Different seeds must decorrelate: agreement should be ~50%, not ~100%.
	if sameAsB > n*3/4 {
		t.Errorf("seeds 7 and 8 agree on %d/%d sites — streams not independent", sameAsB, n)
	}
}

func TestHitRate(t *testing.T) {
	for _, rate := range []float64{0.05, 0.5, 0.95} {
		p := NewPlan(99)
		if err := p.Set(OriginMiss, rate); err != nil {
			t.Fatal(err)
		}
		inj := p.Injector(OriginMiss)
		const n = 100000
		hits := 0
		for site := uint64(0); site < n; site++ {
			if inj.Hit(site) {
				hits++
			}
		}
		got := float64(hits) / n
		if math.Abs(got-rate) > 0.01 {
			t.Errorf("rate %v: observed %v over %d sites", rate, got, n)
		}
	}
}

func TestPointsIndependent(t *testing.T) {
	p := NewPlan(3)
	for _, pt := range []Point{GeoMiss, OriginMiss} {
		if err := p.Set(pt, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	a, b := p.Injector(GeoMiss), p.Injector(OriginMiss)
	agree := 0
	const n = 4096
	for site := uint64(0); site < n; site++ {
		if a.Hit(site) == b.Hit(site) {
			agree++
		}
	}
	if agree > n*3/4 {
		t.Errorf("geo-miss and origin-miss agree on %d/%d sites — points not independent", agree, n)
	}
}

func TestHit2SaltMatters(t *testing.T) {
	p := NewPlan(5)
	if err := p.Set(CrawlLoss, 0.5); err != nil {
		t.Fatal(err)
	}
	inj := p.Injector(CrawlLoss)
	agree := 0
	const n = 4096
	for site := uint64(0); site < n; site++ {
		if inj.Hit2(site, 0) == inj.Hit2(site, 1) {
			agree++
		}
	}
	if agree > n*3/4 {
		t.Errorf("salts 0 and 1 agree on %d/%d sites", agree, n)
	}
}

func TestParseSpecRoundTrip(t *testing.T) {
	p, err := ParseSpec(" geo-miss=0.05, origin-miss=0.01 ,worker-panic=0.001", 42)
	if err != nil {
		t.Fatal(err)
	}
	if p.Rate(GeoMiss) != 0.05 || p.Rate(OriginMiss) != 0.01 || p.Rate(WorkerPanic) != 0.001 {
		t.Fatalf("rates wrong: %v", p)
	}
	if p.Seed() != 42 {
		t.Fatalf("seed = %d", p.Seed())
	}
	spec := p.String()
	q, err := ParseSpec(spec, 42)
	if err != nil {
		t.Fatalf("reparse of %q: %v", spec, err)
	}
	if q.String() != spec {
		t.Errorf("round trip: %q -> %q", spec, q.String())
	}
}

func TestParseSpecEmpty(t *testing.T) {
	for _, s := range []string{"", "   "} {
		p, err := ParseSpec(s, 1)
		if err != nil || p != nil {
			t.Errorf("ParseSpec(%q) = %v, %v; want nil, nil", s, p, err)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, s := range []string{
		"geo-miss",           // no '='
		"geo-miss=",          // empty rate
		"geo-miss=abc",       // non-numeric rate
		"geo-miss=2",         // out of range
		"geo-miss=-0.1",      // negative
		"nonsense=0.5",       // unknown point
		"geo-miss=0.1,=0.2",  // empty point
		"geo-miss=0.1,x=y=z", // garbage entry
	} {
		if _, err := ParseSpec(s, 1); err == nil {
			t.Errorf("ParseSpec(%q) accepted", s)
		}
	}
}

func TestMangleLinesZeroInjectorsCopies(t *testing.T) {
	in := "# header entries=2\n1.2.3.0/24|1 2 3\n4.5.6.0/24|7\n"
	var out bytes.Buffer
	st, err := MangleLines(&out, strings.NewReader(in), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != in {
		t.Errorf("nil injectors changed the stream:\n%q\n%q", in, out.String())
	}
	if st.Lines != 3 || st.Corrupted != 0 || st.Truncated {
		t.Errorf("stats = %+v", st)
	}
}

func TestMangleLinesTruncates(t *testing.T) {
	p := NewPlan(11)
	if err := p.Set(RIBTruncate, 0.2); err != nil {
		t.Fatal(err)
	}
	var in strings.Builder
	in.WriteString("# hdr\n")
	for i := 0; i < 100; i++ {
		in.WriteString("1.2.3.0/24|1\n")
	}
	var out bytes.Buffer
	st, err := MangleLines(&out, strings.NewReader(in.String()), p.Injector(RIBTruncate), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Truncated {
		t.Fatal("0.2 truncate rate never fired over 101 lines")
	}
	if st.Lines >= 101 {
		t.Errorf("truncated stream kept all %d lines", st.Lines)
	}
	// Deterministic: same plan, same input, same cut point.
	var out2 bytes.Buffer
	st2, err := MangleLines(&out2, strings.NewReader(in.String()), p.Injector(RIBTruncate), nil)
	if err != nil {
		t.Fatal(err)
	}
	if st2 != st || !bytes.Equal(out.Bytes(), out2.Bytes()) {
		t.Error("mangling not deterministic")
	}
}

func TestMangleLinesCorruptsBodyNotHeader(t *testing.T) {
	p := NewPlan(13)
	if err := p.Set(RIBCorrupt, 1); err != nil { // corrupt every body line
		t.Fatal(err)
	}
	in := "# header entries=3\n1.2.3.0/24|1 2\n4.5.6.0/24|7\n8.9.0.0/16|9 9\n"
	var out bytes.Buffer
	st, err := MangleLines(&out, strings.NewReader(in), nil, p.Injector(RIBCorrupt))
	if err != nil {
		t.Fatal(err)
	}
	if st.Corrupted != 3 {
		t.Errorf("corrupted %d of 3 body lines", st.Corrupted)
	}
	lines := strings.Split(out.String(), "\n")
	if lines[0] != "# header entries=3" {
		t.Errorf("header was mangled: %q", lines[0])
	}
}
