package kde

import (
	"fmt"
	"testing"

	"eyeballas/internal/geo"
	"eyeballas/internal/rng"
)

func benchSamples(n int) []geo.XY {
	src := rng.New(9000)
	out := make([]geo.XY, n)
	for i := range out {
		// Three clusters, like a small country-level AS.
		c := [3]geo.XY{{X: 0, Y: 0}, {X: 300, Y: 100}, {X: 150, Y: 400}}[src.Intn(3)]
		out[i] = geo.XY{X: c.X + src.Norm(0, 20), Y: c.Y + src.Norm(0, 20)}
	}
	return out
}

func BenchmarkEstimate(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		samples := benchSamples(n)
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Estimate(samples, Options{BandwidthKm: 40}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkEstimateFineGrid(b *testing.B) {
	samples := benchSamples(10000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Estimate(samples, Options{BandwidthKm: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDensityAt(b *testing.B) {
	samples := benchSamples(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DensityAt(samples, 40, geo.XY{X: 10, Y: 10})
	}
}

func BenchmarkSilverman(b *testing.B) {
	samples := benchSamples(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SilvermanBandwidth(samples); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkISJ(b *testing.B) {
	samples := benchSamples(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ISJBandwidth(samples); err != nil {
			b.Fatal(err)
		}
	}
}
