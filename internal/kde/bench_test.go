package kde

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"eyeballas/internal/geo"
	"eyeballas/internal/obs"
	"eyeballas/internal/rng"
)

func benchSamples(n int) []geo.XY {
	src := rng.New(9000)
	out := make([]geo.XY, n)
	for i := range out {
		// Three clusters, like a small country-level AS.
		c := [3]geo.XY{{X: 0, Y: 0}, {X: 300, Y: 100}, {X: 150, Y: 400}}[src.Intn(3)]
		out[i] = geo.XY{X: c.X + src.Norm(0, 20), Y: c.Y + src.Norm(0, 20)}
	}
	return out
}

func BenchmarkEstimate(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		samples := benchSamples(n)
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Estimate(context.Background(), samples, Options{BandwidthKm: 40}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchWideSamples spreads clusters across a spanKm × spanKm domain, so
// the default 10 km cell yields a grid of roughly (spanKm/10)² cells — a
// continental-scale AS rather than the regional ones above.
func benchWideSamples(n int, spanKm float64) []geo.XY {
	src := rng.New(9001)
	centers := make([]geo.XY, 12)
	for i := range centers {
		centers[i] = geo.XY{X: src.Float64() * spanKm, Y: src.Float64() * spanKm}
	}
	out := make([]geo.XY, n)
	for i := range out {
		c := centers[src.Intn(len(centers))]
		out[i] = geo.XY{X: c.X + src.Norm(0, 25), Y: c.Y + src.Norm(0, 25)}
	}
	return out
}

// BenchmarkEstimateParallel measures the worker-pool scaling of a single
// large-grid Estimate: a ≥1M-cell surface (the §3.1 hot path at
// continental scale) at 1, 2, 4, and GOMAXPROCS workers. The output is
// byte-identical across all variants (see determinism_test.go); only the
// wall clock should move.
func BenchmarkEstimateParallel(b *testing.B) {
	samples := benchWideSamples(50000, 13000)
	g, err := Estimate(context.Background(), samples, Options{BandwidthKm: 40, Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	if cells := g.W * g.H; cells < 1<<20 {
		b.Fatalf("grid has %d cells; need >= 1M for the scaling benchmark", cells)
	}
	workerCounts := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		workerCounts = append(workerCounts, n)
	}
	for _, w := range workerCounts {
		b.Run(fmt.Sprintf("workers%d", w), func(b *testing.B) {
			b.ReportAllocs()
			b.ReportMetric(float64(g.W*g.H), "cells")
			for i := 0; i < b.N; i++ {
				if _, err := Estimate(context.Background(), samples, Options{BandwidthKm: 40, Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEstimateObs runs the same estimate as BenchmarkEstimate/n10000
// with a live registry attached: the span/counter/histogram hooks fire on
// every call. The delta against the uninstrumented run is the kde-layer
// observability overhead (budget: ≤3%).
func BenchmarkEstimateObs(b *testing.B) {
	samples := benchSamples(10000)
	reg := obs.New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Estimate(context.Background(), samples, Options{BandwidthKm: 40, Obs: reg}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEstimateFineGrid(b *testing.B) {
	samples := benchSamples(10000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Estimate(context.Background(), samples, Options{BandwidthKm: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDensityAt(b *testing.B) {
	samples := benchSamples(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DensityAt(samples, 40, geo.XY{X: 10, Y: 10})
	}
}

func BenchmarkSilverman(b *testing.B) {
	samples := benchSamples(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SilvermanBandwidth(samples); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkISJ(b *testing.B) {
	samples := benchSamples(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ISJBandwidth(samples); err != nil {
			b.Fatal(err)
		}
	}
}
