package kde

import (
	"encoding/binary"
	"math"
	"testing"
)

// naiveConvolve is the O(n·k) reference: for every output cell, sum the
// contributions of every input cell within the kernel radius, with edge
// clamping identical to convolveRow's "mass outside the row is dropped"
// rule. dst[t] = Σ_{i=max(0,t-r)}^{min(n-1,t+r)} src[i]·kernel[t-i+r].
func naiveConvolve(src, kernel []float64, radius int) []float64 {
	n := len(src)
	dst := make([]float64, n)
	for t := 0; t < n; t++ {
		lo := t - radius
		if lo < 0 {
			lo = 0
		}
		hi := t + radius
		if hi > n-1 {
			hi = n - 1
		}
		// Accumulate in ascending source order — the same order
		// convolveRow adds contributions to dst[t] — so the float sums
		// agree far more tightly than a worst-case reordering bound.
		s := 0.0
		for i := lo; i <= hi; i++ {
			s += src[i] * kernel[t-i+radius]
		}
		dst[t] = s
	}
	return dst
}

// gaussianKernel mirrors blurSeparable's kernel construction.
func gaussianKernel(radius int, sigmaCells float64) []float64 {
	k := make([]float64, 2*radius+1)
	sum := 0.0
	for i := -radius; i <= radius; i++ {
		k[i+radius] = math.Exp(-float64(i) * float64(i) / (2 * sigmaCells * sigmaCells))
		sum += k[i+radius]
	}
	for i := range k {
		k[i] /= sum
	}
	return k
}

// FuzzConvolveRow hardens the inner loop of the KDE engine against the
// naive reference: for arbitrary finite inputs and any radius (including
// radius >= len(src), the fully-clamped regime), the optimized
// scatter-based convolution must match the gather-based reference within
// float tolerance, produce no NaN/Inf, and never gain mass (the kernel is
// normalized and edge mass is dropped, so Σdst <= Σ|src|).
func FuzzConvolveRow(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(2))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 255, 255, 255, 255, 255, 255, 255, 255}, uint8(40))
	f.Add([]byte{128}, uint8(0))
	f.Add([]byte{}, uint8(5))
	f.Add([]byte{9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9}, uint8(255))
	f.Fuzz(func(t *testing.T, data []byte, radiusByte uint8) {
		// Derive a bounded, finite, non-negative sample row from the raw
		// bytes: one cell per 2 bytes, values in [0, 65535] — the shape
		// binned counts actually take.
		n := len(data) / 2
		if n == 0 {
			return
		}
		if n > 512 {
			n = 512
		}
		src := make([]float64, n)
		for i := 0; i < n; i++ {
			src[i] = float64(binary.LittleEndian.Uint16(data[2*i : 2*i+2]))
		}
		// radius spans [0, 255] — well past len(src) for short rows,
		// exercising full clamping.
		radius := int(radiusByte)
		if radius == 0 {
			radius = 1
		}
		kernel := gaussianKernel(radius, float64(radius)/4+1)

		dst := make([]float64, n)
		convolveRow(dst, src, kernel, radius)
		ref := naiveConvolve(src, kernel, radius)

		srcSum := 0.0
		for _, v := range src {
			srcSum += v
		}
		tol := 1e-9*srcSum + 1e-12
		dstSum := 0.0
		for i := range dst {
			if math.IsNaN(dst[i]) || math.IsInf(dst[i], 0) {
				t.Fatalf("dst[%d] = %v for finite input", i, dst[i])
			}
			if diff := math.Abs(dst[i] - ref[i]); diff > tol {
				t.Fatalf("dst[%d] = %.17g, reference %.17g (diff %g > tol %g, n=%d radius=%d)",
					i, dst[i], ref[i], diff, tol, n, radius)
			}
			dstSum += dst[i]
		}
		// Mass never grows: edge clamping only drops kernel mass.
		if dstSum > srcSum*(1+1e-9)+tol {
			t.Fatalf("mass grew: Σdst=%.17g > Σsrc=%.17g (n=%d radius=%d)", dstSum, srcSum, n, radius)
		}
	})
}

// TestConvolveRowMatchesNaiveTable pins a few deterministic cases so the
// reference comparison also runs in plain `go test` (fuzz corpora only
// replay under -fuzz or from testdata).
func TestConvolveRowMatchesNaiveTable(t *testing.T) {
	cases := []struct {
		src    []float64
		radius int
	}{
		{[]float64{1}, 1},
		{[]float64{1, 0, 0, 0, 2}, 2},
		{[]float64{5, 4, 3, 2, 1, 0, 1, 2, 3, 4, 5}, 3},
		{[]float64{1, 1, 1}, 10},      // radius >= len(src)
		{make([]float64, 64), 4},      // all zeros (fast-path skip)
		{[]float64{0, 0, 7, 0, 0}, 1}, // single impulse
	}
	for ci, tc := range cases {
		kernel := gaussianKernel(tc.radius, float64(tc.radius)/4+1)
		dst := make([]float64, len(tc.src))
		convolveRow(dst, tc.src, kernel, tc.radius)
		ref := naiveConvolve(tc.src, kernel, tc.radius)
		for i := range dst {
			if math.Abs(dst[i]-ref[i]) > 1e-12 {
				t.Errorf("case %d: dst[%d] = %g, want %g", ci, i, dst[i], ref[i])
			}
		}
	}
}
