package kde

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"eyeballas/internal/geo"
	"eyeballas/internal/rng"
)

func TestEstimateErrors(t *testing.T) {
	if _, err := Estimate(context.Background(), nil, DefaultOptions()); err == nil {
		t.Error("empty samples should error")
	}
	if _, err := Estimate(context.Background(), []geo.XY{{X: 0, Y: 0}}, Options{BandwidthKm: -1}); err == nil {
		t.Error("negative bandwidth should error")
	}
	big := []geo.XY{{X: 0, Y: 0}, {X: 1e6, Y: 1e6}}
	if _, err := Estimate(context.Background(), big, Options{BandwidthKm: 1, MaxCells: 1000}); err == nil {
		t.Error("oversized domain should error")
	}
}

func TestEstimateIntegratesToOne(t *testing.T) {
	src := rng.New(5)
	samples := make([]geo.XY, 500)
	for i := range samples {
		samples[i] = geo.XY{X: src.Norm(0, 50), Y: src.Norm(0, 30)}
	}
	g, err := Estimate(context.Background(), samples, Options{BandwidthKm: 20})
	if err != nil {
		t.Fatal(err)
	}
	if integral := g.Integral(); math.Abs(integral-1) > 0.01 {
		t.Errorf("density integral = %v, want ~1", integral)
	}
	for _, v := range g.Data {
		if v < 0 {
			t.Fatal("negative density")
		}
	}
}

func TestEstimateSinglePointPeak(t *testing.T) {
	at := geo.XY{X: 37, Y: -12}
	g, err := Estimate(context.Background(), []geo.XY{at}, Options{BandwidthKm: 10})
	if err != nil {
		t.Fatal(err)
	}
	_, i, j := g.Max()
	c := g.Center(i, j)
	if c.DistanceKm(at) > g.Cell*1.5 {
		t.Errorf("peak at %v, want near %v", c, at)
	}
	peaks := g.Peaks(0)
	if len(peaks) != 1 {
		t.Errorf("single point produced %d peaks", len(peaks))
	}
}

func TestEstimateTwoWellSeparatedClusters(t *testing.T) {
	src := rng.New(6)
	var samples []geo.XY
	for i := 0; i < 400; i++ {
		samples = append(samples, geo.XY{X: src.Norm(0, 8), Y: src.Norm(0, 8)})
	}
	for i := 0; i < 200; i++ {
		samples = append(samples, geo.XY{X: src.Norm(300, 8), Y: src.Norm(0, 8)})
	}
	g, err := Estimate(context.Background(), samples, Options{BandwidthKm: 20})
	if err != nil {
		t.Fatal(err)
	}
	max, _, _ := g.Max()
	peaks := g.Peaks(max * 0.01)
	if len(peaks) != 2 {
		t.Fatalf("got %d peaks, want 2: %+v", len(peaks), peaks)
	}
	// Higher peak belongs to the larger cluster (near x=0).
	if math.Abs(peaks[0].XY.X) > 30 {
		t.Errorf("dominant peak at %v, want near x=0", peaks[0].XY)
	}
	if math.Abs(peaks[1].XY.X-300) > 30 {
		t.Errorf("secondary peak at %v, want near x=300", peaks[1].XY)
	}
	if peaks[0].Value <= peaks[1].Value {
		t.Error("larger cluster should have higher density")
	}
}

// TestEstimateBandwidthMerging reproduces the paper's Figure 1 phenomenon
// in miniature: two clusters 100 km apart are distinct at a small
// bandwidth and merge into one peak at a large bandwidth.
func TestEstimateBandwidthMerging(t *testing.T) {
	src := rng.New(7)
	var samples []geo.XY
	for i := 0; i < 300; i++ {
		samples = append(samples, geo.XY{X: src.Norm(0, 10), Y: src.Norm(0, 10)})
		samples = append(samples, geo.XY{X: src.Norm(100, 10), Y: src.Norm(0, 10)})
	}
	count := func(bw float64) int {
		g, err := Estimate(context.Background(), samples, Options{BandwidthKm: bw})
		if err != nil {
			t.Fatal(err)
		}
		max, _, _ := g.Max()
		return len(g.Peaks(max * 0.01))
	}
	if n := count(15); n != 2 {
		t.Errorf("bw=15: %d peaks, want 2", n)
	}
	if n := count(80); n != 1 {
		t.Errorf("bw=80: %d peaks, want 1", n)
	}
}

// TestEstimateMatchesDirect cross-checks the binned estimator against the
// exact per-sample evaluation at the mode.
func TestEstimateMatchesDirect(t *testing.T) {
	src := rng.New(8)
	samples := make([]geo.XY, 300)
	for i := range samples {
		samples[i] = geo.XY{X: src.Norm(0, 25), Y: src.Norm(10, 25)}
	}
	g, err := Estimate(context.Background(), samples, Options{BandwidthKm: 20, CellKm: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, probe := range []geo.XY{{X: 0, Y: 10}, {X: 20, Y: 0}, {X: -30, Y: 30}} {
		i, j, ok := g.CellOf(probe)
		if !ok {
			t.Fatalf("probe %v outside grid", probe)
		}
		binned := g.At(i, j)
		exact := DensityAt(samples, 20, g.Center(i, j))
		if exact == 0 {
			continue
		}
		if rel := math.Abs(binned-exact) / exact; rel > 0.05 {
			t.Errorf("probe %v: binned %v vs exact %v (rel %.3f)", probe, binned, exact, rel)
		}
	}
}

// TestEstimateTranslationEquivariance: shifting all samples shifts the
// density surface without changing its shape.
func TestEstimateTranslationEquivariance(t *testing.T) {
	src := rng.New(9)
	samples := make([]geo.XY, 200)
	for i := range samples {
		samples[i] = geo.XY{X: src.Norm(0, 15), Y: src.Norm(0, 15)}
	}
	shifted := make([]geo.XY, len(samples))
	const dx, dy = 500, -200
	for i, s := range samples {
		shifted[i] = geo.XY{X: s.X + dx, Y: s.Y + dy}
	}
	opts := Options{BandwidthKm: 20, CellKm: 5}
	g1, err := Estimate(context.Background(), samples, opts)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Estimate(context.Background(), shifted, opts)
	if err != nil {
		t.Fatal(err)
	}
	m1, i1, j1 := g1.Max()
	m2, i2, j2 := g2.Max()
	// Binned estimation is translation-equivariant up to re-binning of
	// samples that sit on cell boundaries: allow a small relative slack.
	if math.Abs(m1-m2)/m1 > 5e-3 {
		t.Errorf("max changed under translation: %v vs %v", m1, m2)
	}
	c1 := g1.Center(i1, j1)
	c2 := g2.Center(i2, j2)
	if math.Abs(c2.X-c1.X-dx) > opts.CellKm || math.Abs(c2.Y-c1.Y-dy) > opts.CellKm {
		t.Errorf("mode moved from %v to %v, want shift (%v,%v)", c1, c2, dx, dy)
	}
}

func TestEstimateMassConservedUnderBandwidth(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := 20 + int(seed%50)
		samples := make([]geo.XY, n)
		for i := range samples {
			samples[i] = geo.XY{X: src.Range(-100, 100), Y: src.Range(-100, 100)}
		}
		for _, bw := range []float64{10, 40, 80} {
			g, err := Estimate(context.Background(), samples, Options{BandwidthKm: bw})
			if err != nil {
				return false
			}
			if math.Abs(g.Integral()-1) > 0.02 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestDensityAtProperties(t *testing.T) {
	samples := []geo.XY{{X: 0, Y: 0}}
	peak := DensityAt(samples, 10, geo.XY{X: 0, Y: 0})
	want := 1 / (2 * math.Pi * 100)
	if math.Abs(peak-want) > 1e-12 {
		t.Errorf("peak density = %v, want %v", peak, want)
	}
	if DensityAt(samples, 10, geo.XY{X: 50, Y: 0}) >= peak {
		t.Error("density should decay with distance")
	}
	if DensityAt(nil, 10, geo.XY{}) != 0 || DensityAt(samples, 0, geo.XY{}) != 0 {
		t.Error("degenerate inputs should yield 0")
	}
}
