package kde

import (
	"math"
	"testing"

	"eyeballas/internal/geo"
	"eyeballas/internal/rng"
)

func gaussianCloud(seed uint64, n int, sigma float64) []geo.XY {
	src := rng.New(seed)
	out := make([]geo.XY, n)
	for i := range out {
		out[i] = geo.XY{X: src.Norm(0, sigma), Y: src.Norm(0, sigma)}
	}
	return out
}

func TestSilvermanBandwidth(t *testing.T) {
	samples := gaussianCloud(1, 2000, 30)
	h, err := SilvermanBandwidth(samples)
	if err != nil {
		t.Fatal(err)
	}
	// h = sigma * n^(-1/6) ≈ 30 * 2000^(-1/6) ≈ 8.4
	want := 30 * math.Pow(2000, -1.0/6)
	if math.Abs(h-want)/want > 0.1 {
		t.Errorf("Silverman h = %v, want ~%v", h, want)
	}
}

func TestSilvermanBandwidthErrors(t *testing.T) {
	if _, err := SilvermanBandwidth([]geo.XY{{X: 1, Y: 1}}); err == nil {
		t.Error("single sample should error")
	}
	same := []geo.XY{{X: 5, Y: 5}, {X: 5, Y: 5}, {X: 5, Y: 5}}
	if _, err := SilvermanBandwidth(same); err == nil {
		t.Error("zero-variance sample should error")
	}
}

func TestSilvermanShrinksWithN(t *testing.T) {
	small, err := SilvermanBandwidth(gaussianCloud(2, 100, 30))
	if err != nil {
		t.Fatal(err)
	}
	large, err := SilvermanBandwidth(gaussianCloud(3, 10000, 30))
	if err != nil {
		t.Fatal(err)
	}
	if large >= small {
		t.Errorf("bandwidth should shrink with n: n=100 → %v, n=10000 → %v", small, large)
	}
}

func TestGeoErrorBandwidth(t *testing.T) {
	errs := make([]float64, 100)
	for i := range errs {
		errs[i] = float64(i) // 0..99
	}
	h := GeoErrorBandwidth(errs, 40)
	// 90th percentile of 0..99 is ~89.
	if h < 85 || h > 95 {
		t.Errorf("GeoErrorBandwidth = %v, want ~89", h)
	}
	if got := GeoErrorBandwidth([]float64{1, 2, 3}, 40); got != 40 {
		t.Errorf("floor not applied: %v", got)
	}
	if got := GeoErrorBandwidth(nil, 40); got != 40 {
		t.Errorf("empty errors: %v", got)
	}
}

func TestLSCVBandwidthPicksReasonable(t *testing.T) {
	// For a 2-cluster sample, LSCV must prefer a moderate bandwidth over
	// an absurdly large one that washes out all structure.
	src := rng.New(4)
	var samples []geo.XY
	for i := 0; i < 150; i++ {
		samples = append(samples, geo.XY{X: src.Norm(0, 10), Y: src.Norm(0, 10)})
		samples = append(samples, geo.XY{X: src.Norm(200, 10), Y: src.Norm(0, 10)})
	}
	h, err := LSCVBandwidth(samples, []float64{5, 10, 20, 40, 400}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if h >= 400 {
		t.Errorf("LSCV chose degenerate bandwidth %v", h)
	}
}

func TestLSCVBandwidthErrors(t *testing.T) {
	ok := []geo.XY{{X: 0, Y: 0}, {X: 1, Y: 1}, {X: 2, Y: 2}}
	if _, err := LSCVBandwidth(ok, nil, 0); err == nil {
		t.Error("no candidates should error")
	}
	if _, err := LSCVBandwidth(ok[:2], []float64{10}, 0); err == nil {
		t.Error("too few samples should error")
	}
	if _, err := LSCVBandwidth(ok, []float64{-1, 0}, 0); err == nil {
		t.Error("all non-positive candidates should error")
	}
}

func TestLSCVSubsamples(t *testing.T) {
	samples := gaussianCloud(5, 5000, 20)
	// maxN small: must still succeed and return one of the candidates.
	h, err := LSCVBandwidth(samples, []float64{5, 10, 20}, 200)
	if err != nil {
		t.Fatal(err)
	}
	if h != 5 && h != 10 && h != 20 {
		t.Errorf("LSCV returned non-candidate %v", h)
	}
}
