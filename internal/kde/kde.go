// Package kde implements the bivariate Gaussian kernel density estimation
// at the heart of the paper (§3): given the projected locations of an
// eyeball AS's users, it estimates a smooth user-density surface whose
// peaks are candidate PoP locations and whose upper level set is the AS's
// geo-footprint.
//
// The estimator bins samples onto a regular km-space grid and convolves
// with a separable, truncated Gaussian — O(W·H·k) independent of the
// sample count, with binning error bounded by half a cell (cell defaults
// to bandwidth/4, far below the zip-code resolution of the input data).
package kde

import (
	"context"
	"fmt"
	"math"

	"eyeballas/internal/geo"
	"eyeballas/internal/grid"
	"eyeballas/internal/obs"
	"eyeballas/internal/parallel"
	"eyeballas/internal/trace"
)

// Options configure an estimation run.
type Options struct {
	// BandwidthKm is the Gaussian kernel's standard deviation in km. The
	// paper's default for city-level resolution is 40 km (§3.1).
	BandwidthKm float64
	// CellKm is the grid resolution; 0 means BandwidthKm/4.
	CellKm float64
	// TruncSigma truncates the kernel at this many standard deviations;
	// 0 means 4 (mass error < 1e-4).
	TruncSigma float64
	// PadKm pads the grid beyond the sample bounding box; 0 means
	// TruncSigma·BandwidthKm so no kernel mass falls off the grid.
	PadKm float64
	// MaxCells caps W·H to bound memory; 0 means 16M cells. Estimate
	// returns an error if the domain would exceed the cap (callers choose
	// a coarser cell or larger bandwidth).
	MaxCells int
	// Workers bounds the goroutines used for the separable convolution;
	// 0 means GOMAXPROCS, 1 forces a serial pass. The surface is
	// byte-identical for every setting: the grid is decomposed into
	// fixed row/column blocks whose per-cell arithmetic never depends on
	// the worker count.
	Workers int
	// Obs receives estimation metrics (grid-cell gauge, estimate/sample
	// counters, latency histogram) and the bin/blur spans; nil disables
	// instrumentation. The surface is bit-identical either way — only
	// timing observations vary.
	Obs *obs.Registry
}

// DefaultOptions returns the paper's §3.1 configuration: 40 km bandwidth,
// 10 km grid cells.
func DefaultOptions() Options {
	return Options{BandwidthKm: 40}
}

func (o Options) withDefaults() (Options, error) {
	if o.BandwidthKm <= 0 {
		return o, fmt.Errorf("kde: bandwidth must be positive, got %v", o.BandwidthKm)
	}
	if o.CellKm <= 0 {
		o.CellKm = o.BandwidthKm / 4
	}
	if o.TruncSigma <= 0 {
		o.TruncSigma = 4
	}
	if o.PadKm <= 0 {
		o.PadKm = o.TruncSigma * o.BandwidthKm
	}
	if o.MaxCells <= 0 {
		o.MaxCells = 16 << 20
	}
	return o, nil
}

// Estimate computes the density surface for the given samples. The
// resulting grid integrates to ~1 (a probability density per km²);
// relative comparisons such as the paper's α·Dmax peak threshold are
// normalization-independent. It returns an error for an empty sample set,
// an invalid bandwidth, or a domain exceeding Options.MaxCells.
//
// Cancellation: ctx is observed at the convolution's block boundaries
// (the only expensive part); a cancelled estimate returns ctx.Err() and
// the partial surface is discarded. A nil ctx means context.Background().
func Estimate(ctx context.Context, samples []geo.XY, opts Options) (*grid.Grid, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("kde: no samples")
	}
	span := o.Obs.StartSpan("kde.estimate")
	defer span.End()
	// When the caller's context carries a request trace (the serve
	// footprint path), mirror the estimate under it so one request's
	// trace reaches down to individual convolution blocks. tspan is nil
	// otherwise and every use below is a branch-only no-op.
	tspan := trace.FromContext(ctx).Child("kde.estimate")
	defer tspan.End()
	minX, minY := samples[0].X, samples[0].Y
	maxX, maxY := minX, minY
	for _, s := range samples[1:] {
		minX = math.Min(minX, s.X)
		maxX = math.Max(maxX, s.X)
		minY = math.Min(minY, s.Y)
		maxY = math.Max(maxY, s.Y)
	}
	minX -= o.PadKm
	minY -= o.PadKm
	maxX += o.PadKm
	maxY += o.PadKm
	w := int(math.Ceil((maxX-minX)/o.CellKm)) + 1
	h := int(math.Ceil((maxY-minY)/o.CellKm)) + 1
	if w*h > o.MaxCells {
		return nil, fmt.Errorf("kde: domain needs %d cells (cap %d); increase CellKm", w*h, o.MaxCells)
	}
	g := grid.New(minX, minY, o.CellKm, w, h)
	tspan.SetInt("samples", int64(len(samples)))
	tspan.SetInt("cells", int64(w*h))
	if o.Obs != nil {
		o.Obs.Counter("eyeball_kde_estimates_total").Inc()
		o.Obs.Counter("eyeball_kde_samples_total").Add(int64(len(samples)))
		o.Obs.Gauge("eyeball_kde_grid_cells").Set(float64(w * h))
	}

	// Bin samples.
	binSpan := span.Child("bin")
	tBin := tspan.Child("bin")
	for _, s := range samples {
		i, j, ok := g.CellOf(s)
		if !ok {
			// Padding guarantees containment up to floating-point edge
			// cases; clamp those.
			i = clamp(i, 0, w-1)
			j = clamp(j, 0, h-1)
		}
		g.Add(i, j, 1)
	}
	binSpan.End()
	tBin.End()

	if err := blurSeparable(ctx, g, o.BandwidthKm, o.TruncSigma, o.Workers, span, tspan); err != nil {
		return nil, err
	}

	// counts → density: divide by N·cell² so the surface integrates to 1.
	g.Scale(1 / (float64(len(samples)) * o.CellKm * o.CellKm))
	span.End()
	if d, ok := span.Duration(); ok {
		o.Obs.Histogram("eyeball_kde_estimate_seconds", obs.LatencyBuckets()).Observe(d.Seconds())
	}
	return g, nil
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// blurSeparable convolves the grid in place with a truncated Gaussian,
// normalized to preserve total mass.
//
// Both passes fan out over the shared worker pool. Rows (and columns) are
// convolved independently into disjoint slices, and the block
// decomposition is a fixed function of the grid dimensions, so the result
// is byte-identical for every worker count — including workers == 1,
// which runs inline with zero synchronization. parent (nil when
// disabled) receives one child span per pass; tparent (nil when request
// tracing is off) additionally receives one span per convolution block,
// keyed by the block's low index so the rendered trace is deterministic
// regardless of worker scheduling. A cancelled ctx stops the fan-out at
// a block boundary and surfaces ctx.Err(); the grid is then partially
// blurred and must be discarded by the caller.
func blurSeparable(ctx context.Context, g *grid.Grid, bandwidthKm, truncSigma float64, workers int, parent *obs.Span, tparent *trace.Span) error {
	radius := int(math.Ceil(truncSigma * bandwidthKm / g.Cell))
	kernel := make([]float64, 2*radius+1)
	sum := 0.0
	for i := -radius; i <= radius; i++ {
		d := float64(i) * g.Cell
		kernel[i+radius] = math.Exp(-d * d / (2 * bandwidthKm * bandwidthKm))
		sum += kernel[i+radius]
	}
	for i := range kernel {
		kernel[i] /= sum
	}

	tmp := make([]float64, len(g.Data))
	// Horizontal pass: each row of g.Data convolves into the same row of
	// tmp; rows in a block are processed in order, blocks never overlap.
	hSpan := parent.Child("blur_horizontal")
	tH := tparent.Child("blur_horizontal")
	err := parallel.Blocks(ctx, workers, g.H, 0, func(lo, hi int) error {
		// Per-block trace spans are created and attributed by this
		// worker goroutine (the package's ownership contract); ChildSeq
		// keys them by lo so sibling order is schedule-independent.
		var bs *trace.Span
		if tH != nil {
			bs = tH.ChildSeq("rows", lo)
			bs.SetInt("lo", int64(lo))
			bs.SetInt("hi", int64(hi))
		}
		for j := lo; j < hi; j++ {
			row := g.Data[j*g.W : (j+1)*g.W]
			out := tmp[j*g.W : (j+1)*g.W]
			convolveRow(out, row, kernel, radius)
		}
		bs.End()
		return nil
	})
	hSpan.End()
	tH.End()
	if err != nil {
		return err
	}
	// Vertical pass: convolve columns of tmp back into g.Data. Each
	// block owns a contiguous span of columns and its own scratch
	// buffers; writes target disjoint strided cells.
	vSpan := parent.Child("blur_vertical")
	tV := tparent.Child("blur_vertical")
	err = parallel.Blocks(ctx, workers, g.W, 0, func(lo, hi int) error {
		var bs *trace.Span
		if tV != nil {
			bs = tV.ChildSeq("cols", lo)
			bs.SetInt("lo", int64(lo))
			bs.SetInt("hi", int64(hi))
		}
		col := make([]float64, g.H)
		outCol := make([]float64, g.H)
		for i := lo; i < hi; i++ {
			for j := 0; j < g.H; j++ {
				col[j] = tmp[j*g.W+i]
			}
			convolveRow(outCol, col, kernel, radius)
			for j := 0; j < g.H; j++ {
				g.Data[j*g.W+i] = outCol[j]
			}
		}
		bs.End()
		return nil
	})
	vSpan.End()
	tV.End()
	return err
}

// convolveRow writes the 1-D convolution of src with kernel into dst.
// Mass falling outside the row is dropped (grids are padded so sources
// never sit that close to the edge).
func convolveRow(dst, src []float64, kernel []float64, radius int) {
	n := len(src)
	for i := range dst {
		dst[i] = 0
	}
	for i, v := range src {
		if v == 0 {
			continue
		}
		lo := i - radius
		kOff := 0
		if lo < 0 {
			kOff = -lo
			lo = 0
		}
		hi := i + radius
		if hi > n-1 {
			hi = n - 1
		}
		for t := lo; t <= hi; t++ {
			dst[t] += v * kernel[kOff]
			kOff++
		}
	}
}

// DensityAt evaluates the exact (non-binned, non-truncated) KDE at a
// point — the reference implementation the binned estimator is tested
// against, and the tool for spot evaluations in reports.
func DensityAt(samples []geo.XY, bandwidthKm float64, at geo.XY) float64 {
	if len(samples) == 0 || bandwidthKm <= 0 {
		return 0
	}
	h2 := bandwidthKm * bandwidthKm
	sum := 0.0
	for _, s := range samples {
		dx := s.X - at.X
		dy := s.Y - at.Y
		sum += math.Exp(-(dx*dx + dy*dy) / (2 * h2))
	}
	return sum / (float64(len(samples)) * 2 * math.Pi * h2)
}
