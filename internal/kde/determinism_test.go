package kde

import (
	"context"
	"fmt"
	"math"
	"testing"

	"eyeballas/internal/geo"
	"eyeballas/internal/obs"
	"eyeballas/internal/parallel"
	"eyeballas/internal/rng"
)

// determinismSamples builds a clustered sample field wide enough that the
// convolution decomposes into many row/column blocks.
func determinismSamples(n int, spreadKm float64) []geo.XY {
	src := rng.New(4242)
	centers := []geo.XY{
		{X: 0, Y: 0},
		{X: spreadKm * 0.4, Y: spreadKm * 0.2},
		{X: spreadKm * 0.8, Y: spreadKm * 0.9},
		{X: spreadKm * 0.1, Y: spreadKm * 0.7},
	}
	out := make([]geo.XY, n)
	for i := range out {
		c := centers[src.Intn(len(centers))]
		out[i] = geo.XY{X: c.X + src.Norm(0, 30), Y: c.Y + src.Norm(0, 30)}
	}
	return out
}

// TestEstimateDeterministicAcrossWorkers is the §3.1 engine's determinism
// guarantee: the density surface must be *bit-identical* for any worker
// count, because the seeded experiments golden-compare downstream values
// (peaks, partitions, PoP densities) that would drift under any float
// reordering.
func TestEstimateDeterministicAcrossWorkers(t *testing.T) {
	samples := determinismSamples(20000, 2000)
	ref, err := Estimate(context.Background(), samples, Options{BandwidthKm: 40, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ref.W < 64 || ref.H < 64 {
		t.Fatalf("grid %dx%d too small to exercise block decomposition", ref.W, ref.H)
	}
	for _, workers := range []int{2, 3, 8, 64} {
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			g, err := Estimate(context.Background(), samples, Options{BandwidthKm: 40, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if g.W != ref.W || g.H != ref.H || g.Cell != ref.Cell {
				t.Fatalf("geometry differs: %dx%d cell %v vs %dx%d cell %v",
					g.W, g.H, g.Cell, ref.W, ref.H, ref.Cell)
			}
			for i := range ref.Data {
				if math.Float64bits(g.Data[i]) != math.Float64bits(ref.Data[i]) {
					t.Fatalf("cell %d differs bitwise: %x vs %x (%.17g vs %.17g)",
						i, math.Float64bits(g.Data[i]), math.Float64bits(ref.Data[i]),
						g.Data[i], ref.Data[i])
				}
			}
		})
	}
}

// TestEstimateDeterministicFineGrid repeats the bit-identity check on a
// finer grid (more, smaller blocks) and a default-workers run.
func TestEstimateDeterministicFineGrid(t *testing.T) {
	samples := determinismSamples(5000, 800)
	opts := Options{BandwidthKm: 15, CellKm: 3}
	o1 := opts
	o1.Workers = 1
	ref, err := Estimate(context.Background(), samples, o1)
	if err != nil {
		t.Fatal(err)
	}
	oN := opts // Workers = 0 → GOMAXPROCS
	g, err := Estimate(context.Background(), samples, oN)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Data {
		if math.Float64bits(g.Data[i]) != math.Float64bits(ref.Data[i]) {
			t.Fatalf("cell %d differs bitwise with default workers", i)
		}
	}
}

// TestEstimateDeterministicUnderRegistry extends the bit-identity
// guarantee to an active observability registry (with the pool's timing
// hooks installed): spans/counters/histograms are timing side channels
// and must not perturb a single bit of the density surface, at any
// worker count.
func TestEstimateDeterministicUnderRegistry(t *testing.T) {
	samples := determinismSamples(20000, 2000)
	ref, err := Estimate(context.Background(), samples, Options{BandwidthKm: 40, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			reg := obs.New()
			parallel.SetMetrics(parallel.MetricsFrom(reg))
			defer parallel.SetMetrics(nil)
			g, err := Estimate(context.Background(), samples, Options{BandwidthKm: 40, Workers: workers, Obs: reg})
			if err != nil {
				t.Fatal(err)
			}
			if g.W != ref.W || g.H != ref.H {
				t.Fatalf("geometry differs under registry: %dx%d vs %dx%d", g.W, g.H, ref.W, ref.H)
			}
			for i := range ref.Data {
				if math.Float64bits(g.Data[i]) != math.Float64bits(ref.Data[i]) {
					t.Fatalf("cell %d differs bitwise with metrics on: %x vs %x",
						i, math.Float64bits(g.Data[i]), math.Float64bits(ref.Data[i]))
				}
			}
			if reg.Counter("eyeball_kde_estimates_total").Value() != 1 {
				t.Fatal("estimate counter did not move")
			}
		})
	}
}
