package kde

import (
	"fmt"
	"math"
	"sort"

	"eyeballas/internal/geo"
)

// The paper fixes the bandwidth at 40 km for city-level resolution (§3.1)
// and cites Botev et al. (2010) for data-driven selection. This file
// provides the fixed policy plus data-driven selectors as extensions,
// exercised by the ablation benchmarks.

// CityLevelBandwidthKm is the paper's fixed bandwidth: larger than the
// 30–35 km radius of a typical large city so a city produces one peak,
// small enough to separate cities (§3.1).
const CityLevelBandwidthKm = 40

// SilvermanBandwidth returns Silverman's rule-of-thumb bandwidth for the
// 2-D sample set: h = σ̂ · n^(-1/6), with σ̂ the mean of the per-axis
// standard deviations (the d=2 case of the multivariate rule). It returns
// an error for fewer than 2 samples or a degenerate (zero-variance)
// sample.
func SilvermanBandwidth(samples []geo.XY) (float64, error) {
	if len(samples) < 2 {
		return 0, fmt.Errorf("kde: need >= 2 samples for bandwidth selection, got %d", len(samples))
	}
	var mx, my float64
	for _, s := range samples {
		mx += s.X
		my += s.Y
	}
	n := float64(len(samples))
	mx /= n
	my /= n
	var vx, vy float64
	for _, s := range samples {
		vx += (s.X - mx) * (s.X - mx)
		vy += (s.Y - my) * (s.Y - my)
	}
	sigma := (math.Sqrt(vx/n) + math.Sqrt(vy/n)) / 2
	if sigma == 0 {
		return 0, fmt.Errorf("kde: degenerate sample (zero variance)")
	}
	return sigma * math.Pow(n, -1.0/6), nil
}

// GeoErrorBandwidth returns the AS-dependent bandwidth policy §3.1
// describes and rejects in favour of a fixed 40 km: the 90th percentile of
// per-sample geolocation error, floored at minKm. The ablation benchmark
// compares it with the fixed policy.
func GeoErrorBandwidth(geoErrorsKm []float64, minKm float64) float64 {
	if len(geoErrorsKm) == 0 {
		return minKm
	}
	sorted := make([]float64, len(geoErrorsKm))
	copy(sorted, geoErrorsKm)
	sort.Float64s(sorted)
	idx := int(0.9 * float64(len(sorted)-1))
	h := sorted[idx]
	if h < minKm {
		return minKm
	}
	return h
}

// LSCVBandwidth selects a bandwidth from candidates by least-squares
// cross-validation on a subsample (at most maxN points, deterministically
// strided). It is the data-driven alternative in the spirit of the
// Botev et al. reference — exact diffusion estimation is unnecessary for
// any paper artifact, so a direct LSCV over the offered grid is used.
// It returns an error if candidates is empty or samples has < 3 points.
func LSCVBandwidth(samples []geo.XY, candidates []float64, maxN int) (float64, error) {
	if len(candidates) == 0 {
		return 0, fmt.Errorf("kde: no candidate bandwidths")
	}
	if len(samples) < 3 {
		return 0, fmt.Errorf("kde: need >= 3 samples for LSCV, got %d", len(samples))
	}
	if maxN <= 0 {
		maxN = 2000
	}
	sub := samples
	if len(sub) > maxN {
		stride := len(sub) / maxN
		picked := make([]geo.XY, 0, maxN)
		for i := 0; i < len(sub) && len(picked) < maxN; i += stride {
			picked = append(picked, sub[i])
		}
		sub = picked
	}
	best := candidates[0]
	bestScore := math.Inf(1)
	for _, h := range candidates {
		if h <= 0 {
			continue
		}
		score := lscvScore(sub, h)
		if score < bestScore {
			bestScore, best = score, h
		}
	}
	if math.IsInf(bestScore, 1) {
		return 0, fmt.Errorf("kde: no positive candidate bandwidth")
	}
	return best, nil
}

// lscvScore computes the least-squares CV criterion for a 2-D Gaussian
// KDE: LSCV(h) = ∫f̂² − (2/n)·Σ f̂₋ᵢ(xᵢ), using the closed form for the
// integral of a Gaussian-mixture square.
func lscvScore(samples []geo.XY, h float64) float64 {
	n := float64(len(samples))
	h2 := h * h
	// ∫f̂² = (1/n²) Σᵢⱼ φ_{h√2}(xᵢ−xⱼ) with φ the 2-D Gaussian kernel.
	var quad, loo float64
	for i := range samples {
		for j := range samples {
			dx := samples[i].X - samples[j].X
			dy := samples[i].Y - samples[j].Y
			d2 := dx*dx + dy*dy
			quad += math.Exp(-d2/(4*h2)) / (4 * math.Pi * h2)
			if i != j {
				loo += math.Exp(-d2/(2*h2)) / (2 * math.Pi * h2)
			}
		}
	}
	quad /= n * n
	looMean := loo / (n * (n - 1))
	return quad - 2*looMean
}
