package kde

import (
	"fmt"
	"math"
	"sort"

	"eyeballas/internal/geo"
)

// Botev/diffusion bandwidth selection.
//
// §3.1 cites Botev, Grotowski & Kroese, "Kernel Density Estimation via
// Diffusion" (Annals of Statistics, 2010) for data-driven bandwidth
// selection. This file implements the paper's improved Sheather–Jones
// (ISJ) plug-in selector in one dimension — the fixed-point
// t = ξ·γ^[ℓ](t) solved over the DCT coefficients of the binned data —
// and combines the per-axis 1-D solutions into a single isotropic 2-D
// bandwidth (geometric mean), which is the standard simplification for
// an isotropic kernel.
//
// Unlike rules of thumb, ISJ does not assume the data is Gaussian, so it
// picks small bandwidths for strongly multimodal samples (a country's
// users clustered in cities) where Silverman's rule oversmooths.

// isjBins is the grid size for the binned DCT; 512 is ample for the
// sample sizes the pipeline produces per AS.
const isjBins = 512

// ISJBandwidth1D computes the improved Sheather–Jones bandwidth of a 1-D
// sample. It returns an error for fewer than 8 samples or zero variance.
func ISJBandwidth1D(xs []float64) (float64, error) {
	n := len(xs)
	if n < 8 {
		return 0, fmt.Errorf("kde: ISJ needs >= 8 samples, got %d", n)
	}
	minV, maxV := xs[0], xs[0]
	for _, x := range xs[1:] {
		minV = math.Min(minV, x)
		maxV = math.Max(maxV, x)
	}
	if maxV == minV {
		return 0, fmt.Errorf("kde: degenerate sample (zero variance)")
	}
	// Pad the range ~10% per side, as Botev's reference implementation
	// does, so boundary bins do not truncate the density.
	r := maxV - minV
	lo := minV - r/10
	hi := maxV + r/10
	width := hi - lo

	// Bin to a regular grid (density histogram normalized to sum 1).
	counts := make([]float64, isjBins)
	for _, x := range xs {
		idx := int((x - lo) / width * float64(isjBins))
		if idx < 0 {
			idx = 0
		}
		if idx >= isjBins {
			idx = isjBins - 1
		}
		counts[idx]++
	}
	for i := range counts {
		counts[i] /= float64(n)
	}

	a := dct2(counts)
	// Squared coefficients a2[k] = (a[k]/2)² for k = 1..m-1.
	m := isjBins
	a2 := make([]float64, m)
	for k := 1; k < m; k++ {
		a2[k] = (a[k] / 2) * (a[k] / 2)
	}

	// Count distinct values: ISJ's effective N (ties from zip snapping
	// reduce the information content).
	distinct := distinctCount(xs)
	nEff := float64(distinct)

	// Solve the fixed point t = ξ γ^[ℓ](t) with ℓ = 7 by root finding on
	// f(t) = t − ξγ(t) over a bracketing scan (robust against the
	// quirks of Newton iterations on noisy data).
	fixed := func(t float64) float64 { return t - xiGamma(t, 7, nEff, a2) }
	tStar, err := solveRoot(fixed, 1e-10, 0.1)
	if err != nil {
		// Fall back to Silverman in t-space; still usable.
		sigma := stddev(xs)
		hSilver := sigma * math.Pow(float64(n), -1.0/5)
		return hSilver, nil
	}
	return math.Sqrt(tStar) * width, nil
}

// xiGamma implements Botev's γ^[ℓ] recursion returning ξ·γ^[ℓ](t).
func xiGamma(t float64, l int, n float64, a2 []float64) float64 {
	// f at stage l.
	f := normSum(t, l, a2)
	if f <= 0 {
		return 0
	}
	for s := l - 1; s >= 2; s-- {
		// Odd factorial product 1·3·5···(2s−1).
		k0 := 1.0
		for j := 1; j <= 2*s-1; j += 2 {
			k0 *= float64(j)
		}
		k0 /= math.Sqrt(2 * math.Pi)
		cnst := (1 + math.Pow(0.5, float64(s)+0.5)) / 3
		ts := math.Pow(2*cnst*k0/(n*f), 2.0/(3+2*float64(s)))
		f = normSum(ts, s, a2)
		if f <= 0 {
			return 0
		}
	}
	return math.Pow(2*n*math.Sqrt(math.Pi)*f, -2.0/5)
}

// normSum computes 2π^(2s) Σ_k k^(2s) a2_k exp(−k²π²t).
func normSum(t float64, s int, a2 []float64) float64 {
	sum := 0.0
	for k := 1; k < len(a2); k++ {
		if a2[k] == 0 {
			continue
		}
		kf := float64(k)
		e := math.Exp(-kf * kf * math.Pi * math.Pi * t)
		if e == 0 {
			break // further terms underflow
		}
		sum += math.Pow(kf, 2*float64(s)) * a2[k] * e
	}
	return 2 * math.Pow(math.Pi, 2*float64(s)) * sum
}

// solveRoot finds a sign change of f on [lo, hi] by geometric scanning
// and bisects it.
func solveRoot(f func(float64) float64, lo, hi float64) (float64, error) {
	prevT := lo
	prevF := f(lo)
	found := false
	var a, b float64
	for t := lo * 2; t <= hi; t *= 1.3 {
		cur := f(t)
		if (prevF < 0 && cur >= 0) || (prevF > 0 && cur <= 0) {
			a, b = prevT, t
			found = true
			break
		}
		prevT, prevF = t, cur
	}
	if !found {
		return 0, fmt.Errorf("kde: ISJ fixed point not bracketed")
	}
	for i := 0; i < 80; i++ {
		mid := (a + b) / 2
		if fm := f(mid); (fm < 0) == (f(a) < 0) {
			a = mid
		} else {
			b = mid
		}
	}
	return (a + b) / 2, nil
}

// dct2 computes the DCT-II of xs (naive O(n²); n = 512 stays cheap and
// keeps the implementation dependency-free).
func dct2(xs []float64) []float64 {
	n := len(xs)
	out := make([]float64, n)
	for k := 0; k < n; k++ {
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += xs[i] * math.Cos(math.Pi*float64(k)*(2*float64(i)+1)/(2*float64(n)))
		}
		out[k] = 2 * sum
	}
	return out
}

func distinctCount(xs []float64) int {
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	d := 1
	for i := 1; i < len(sorted); i++ {
		if sorted[i] != sorted[i-1] {
			d++
		}
	}
	return d
}

func stddev(xs []float64) float64 {
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	n := float64(len(xs))
	mean := sum / n
	v := sumSq/n - mean*mean
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// ISJBandwidth computes a 2-D isotropic bandwidth as the geometric mean
// of the per-axis 1-D improved Sheather–Jones solutions.
func ISJBandwidth(samples []geo.XY) (float64, error) {
	if len(samples) < 8 {
		return 0, fmt.Errorf("kde: ISJ needs >= 8 samples, got %d", len(samples))
	}
	xs := make([]float64, len(samples))
	ys := make([]float64, len(samples))
	for i, s := range samples {
		xs[i] = s.X
		ys[i] = s.Y
	}
	hx, err := ISJBandwidth1D(xs)
	if err != nil {
		return 0, err
	}
	hy, err := ISJBandwidth1D(ys)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(hx * hy), nil
}
