package kde

import (
	"math"
	"testing"

	"eyeballas/internal/geo"
	"eyeballas/internal/rng"
)

func TestISJ1DGaussian(t *testing.T) {
	// On a Gaussian sample, ISJ should land near the asymptotically
	// optimal h* = (4/3)^(1/5) σ n^(-1/5).
	src := rng.New(301)
	n := 4000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = src.Norm(0, 25)
	}
	h, err := ISJBandwidth1D(xs)
	if err != nil {
		t.Fatal(err)
	}
	hOpt := math.Pow(4.0/3, 0.2) * 25 * math.Pow(float64(n), -0.2)
	if h < hOpt/2.5 || h > hOpt*2.5 {
		t.Errorf("ISJ h = %.3f, optimal ~%.3f", h, hOpt)
	}
}

func TestISJ1DBimodalBeatsSilverman(t *testing.T) {
	// The classic ISJ property: on a well-separated bimodal sample,
	// Silverman (which assumes normality) oversmooths, ISJ does not.
	src := rng.New(302)
	var xs []float64
	for i := 0; i < 1500; i++ {
		xs = append(xs, src.Norm(0, 10), src.Norm(300, 10))
	}
	hISJ, err := ISJBandwidth1D(xs)
	if err != nil {
		t.Fatal(err)
	}
	sigma := stddev(xs) // ~150 due to the separation
	hSilver := 1.06 * sigma * math.Pow(float64(len(xs)), -0.2)
	if hISJ >= hSilver/3 {
		t.Errorf("ISJ h = %.2f should be far below Silverman %.2f on bimodal data", hISJ, hSilver)
	}
	// And it should be in the vicinity of the per-mode optimum (~σ_mode
	// scaled), i.e. single digits, not hundreds.
	if hISJ > 30 || hISJ < 0.5 {
		t.Errorf("ISJ h = %.2f outside plausible range for 10-km modes", hISJ)
	}
}

func TestISJ1DErrors(t *testing.T) {
	if _, err := ISJBandwidth1D([]float64{1, 2, 3}); err == nil {
		t.Error("too-small sample accepted")
	}
	same := make([]float64, 20)
	for i := range same {
		same[i] = 7
	}
	if _, err := ISJBandwidth1D(same); err == nil {
		t.Error("zero-variance sample accepted")
	}
}

func TestISJ2D(t *testing.T) {
	src := rng.New(303)
	samples := make([]geo.XY, 3000)
	for i := range samples {
		samples[i] = geo.XY{X: src.Norm(0, 30), Y: src.Norm(0, 30)}
	}
	h, err := ISJBandwidth(samples)
	if err != nil {
		t.Fatal(err)
	}
	// Isotropic Gaussian: per-axis ISJ ≈ 1D optimum; the geometric mean
	// should stay in the same range.
	hOpt := math.Pow(4.0/3, 0.2) * 30 * math.Pow(3000, -0.2)
	if h < hOpt/2.5 || h > hOpt*2.5 {
		t.Errorf("2D ISJ h = %.3f, optimal ~%.3f", h, hOpt)
	}
	if _, err := ISJBandwidth(samples[:4]); err == nil {
		t.Error("too-small 2D sample accepted")
	}
}

func TestISJHandlesTies(t *testing.T) {
	// Zip-snapped data has heavy ties; ISJ must still terminate with a
	// sane value.
	src := rng.New(304)
	centers := []float64{0, 40, 90, 200}
	var xs []float64
	for i := 0; i < 2000; i++ {
		c := centers[src.Intn(len(centers))]
		xs = append(xs, c+float64(src.Intn(5))) // 5 distinct offsets per center
	}
	h, err := ISJBandwidth1D(xs)
	if err != nil {
		t.Fatal(err)
	}
	if h <= 0 || h > 100 || math.IsNaN(h) {
		t.Errorf("ISJ on tied data = %v", h)
	}
}

func TestDCT2Basics(t *testing.T) {
	// DCT of a constant vector: only the k=0 coefficient is non-zero.
	xs := []float64{1, 1, 1, 1}
	out := dct2(xs)
	if math.Abs(out[0]-8) > 1e-9 {
		t.Errorf("DC coefficient = %v, want 8", out[0])
	}
	for k := 1; k < len(out); k++ {
		if math.Abs(out[k]) > 1e-9 {
			t.Errorf("coefficient %d = %v, want 0", k, out[k])
		}
	}
}
