package kde

import (
	"context"
	"math"
	"strings"
	"testing"

	"eyeballas/internal/geo"
	"eyeballas/internal/obs"
	"eyeballas/internal/trace"
)

func traceSamples() []geo.XY {
	samples := make([]geo.XY, 0, 300)
	for i := 0; i < 300; i++ {
		samples = append(samples, geo.XY{
			X: 5 * math.Sin(float64(i)),
			Y: 5 * math.Cos(float64(3*i+1)),
		})
	}
	return samples
}

// estimateTraced runs one Estimate under a fresh request trace and
// returns the finished root's tree.
func estimateTraced(t *testing.T, workers int) (*trace.Span, obs.TreeNode) {
	t.Helper()
	tracer := trace.New(trace.Options{Seed: 11})
	root := tracer.Start("test.estimate")
	ctx := trace.NewContext(context.Background(), root)
	opts := DefaultOptions()
	opts.BandwidthKm = 40
	opts.Workers = workers
	if _, err := Estimate(ctx, traceSamples(), opts); err != nil {
		t.Fatal(err)
	}
	root.End()
	return root, root.Tree()
}

// TestEstimateTraceTree pins the block-granularity span shape one
// traced estimate hangs under a request: kde.estimate (samples/cells
// attrs) → bin, blur_horizontal (rows blocks), blur_vertical (cols
// blocks), with every block span carrying its lo/hi range.
func TestEstimateTraceTree(t *testing.T) {
	_, tree := estimateTraced(t, 4)
	if len(tree.Children) != 1 || tree.Children[0].Name != "kde.estimate" {
		t.Fatalf("root children = %+v, want one kde.estimate", tree.Children)
	}
	est := tree.Children[0]
	var attrs []string
	for _, a := range est.Attrs {
		attrs = append(attrs, a.Key)
	}
	if len(attrs) != 2 || attrs[0] != "samples" || attrs[1] != "cells" {
		t.Fatalf("kde.estimate attrs = %v, want [samples cells]", attrs)
	}
	if est.Attrs[0].Val != "300" {
		t.Errorf("samples attr = %q, want 300", est.Attrs[0].Val)
	}
	var names []string
	for _, c := range est.Children {
		names = append(names, c.Name)
	}
	want := []string{"bin", "blur_horizontal", "blur_vertical"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("kde.estimate children = %v, want %v", names, want)
	}
	for i, pass := range est.Children[1:] {
		blockName := []string{"rows", "cols"}[i]
		if len(pass.Children) == 0 {
			t.Fatalf("%s has no block spans", pass.Name)
		}
		for _, b := range pass.Children {
			if b.Name != blockName {
				t.Errorf("%s block named %q, want %q", pass.Name, b.Name, blockName)
			}
			if attrKeyVal(b, "lo") == "" || attrKeyVal(b, "hi") == "" {
				t.Errorf("%s block %v lacks lo/hi attrs", pass.Name, b.Attrs)
			}
		}
	}
}

func attrKeyVal(n obs.TreeNode, key string) string {
	for _, a := range n.Attrs {
		if a.Key == key {
			return a.Val
		}
	}
	return ""
}

// stripDurations zeroes every duration in a tree so two runs can be
// compared structurally.
func stripDurations(n obs.TreeNode) obs.TreeNode {
	n.DurNS = 0
	for i := range n.Children {
		n.Children[i] = stripDurations(n.Children[i])
	}
	for i := range n.Events {
		n.Events[i].AtNS = 0
	}
	return n
}

// TestEstimateTraceScheduleIndependent: ChildSeq keys block spans by
// their starting row/column, so the rendered tree is byte-identical no
// matter how the worker pool interleaves — serial and 8-way runs agree.
func TestEstimateTraceScheduleIndependent(t *testing.T) {
	_, serial := estimateTraced(t, 1)
	var a, b strings.Builder
	if err := obs.WriteTree(&a, []obs.TreeNode{stripDurations(serial)}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		_, wide := estimateTraced(t, 8)
		b.Reset()
		if err := obs.WriteTree(&b, []obs.TreeNode{stripDurations(wide)}); err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Fatalf("workers=8 run %d tree differs from serial:\n%s\nvs\n%s", i, b.String(), a.String())
		}
	}
}

// TestEstimateOutputIdenticalTraced: the traced surface is bit-for-bit
// the untraced surface — tracing observes the convolution, it cannot
// perturb it.
func TestEstimateOutputIdenticalTraced(t *testing.T) {
	opts := DefaultOptions()
	opts.BandwidthKm = 40
	opts.Workers = 4
	plain, err := Estimate(context.Background(), traceSamples(), opts)
	if err != nil {
		t.Fatal(err)
	}
	tracer := trace.New(trace.Options{Seed: 11})
	root := tracer.Start("test.estimate")
	traced, err := Estimate(trace.NewContext(context.Background(), root), traceSamples(), opts)
	if err != nil {
		t.Fatal(err)
	}
	root.End()
	if len(plain.Data) != len(traced.Data) {
		t.Fatalf("grid sizes differ: %d vs %d", len(plain.Data), len(traced.Data))
	}
	for i := range plain.Data {
		if math.Float64bits(plain.Data[i]) != math.Float64bits(traced.Data[i]) {
			t.Fatalf("cell %d differs bitwise: %v vs %v", i, plain.Data[i], traced.Data[i])
		}
	}
}
