package p2p

import (
	"context"
	"testing"

	"eyeballas/internal/astopo"
	"eyeballas/internal/rng"
)

func BenchmarkCrawl(b *testing.B) {
	w, err := astopo.Generate(astopo.SmallConfig(9200))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(context.Background(), w, DefaultConfig(), rng.New(uint64(i)).Split("p2p")); err != nil {
			b.Fatal(err)
		}
	}
}
