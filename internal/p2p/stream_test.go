package p2p

import (
	"context"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"eyeballas/internal/faults"
	"eyeballas/internal/obs"
	"eyeballas/internal/rng"
)

// drain collects a stream with a fixed buffer size, checking the
// io.Reader-style contract along the way.
func drain(t *testing.T, st PeerStream, bufSize int) []Peer {
	t.Helper()
	buf := make([]Peer, bufSize)
	var out []Peer
	for {
		n, err := st.Next(buf)
		if n < 0 || n > bufSize {
			t.Fatalf("Next returned n=%d outside [0,%d]", n, bufSize)
		}
		out = append(out, buf[:n]...)
		if err == io.EOF {
			// Exhausted streams must keep answering io.EOF.
			if n2, err2 := st.Next(buf); n2 != 0 || err2 != io.EOF {
				t.Fatalf("post-EOF Next = (%d, %v), want (0, io.EOF)", n2, err2)
			}
			return out
		}
		if err != nil {
			t.Fatalf("stream error: %v", err)
		}
	}
}

// TestCrawlSourceMatchesRunAndReplays: the generative source must
// deliver exactly the sequence Run materializes, deliver it identically
// for any read granularity, and replay it on a second Stream call — the
// property the pipeline's single-DB fallback rides on.
func TestCrawlSourceMatchesRunAndReplays(t *testing.T) {
	w, c := crawlWorld(t, 41)
	src := NewCrawlSource(w, DefaultConfig(), rng.New(41).Split("p2p"))

	st1, err := src.Stream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	first := drain(t, st1, 4096)
	if !reflect.DeepEqual(first, c.Peers) {
		t.Fatalf("streamed sequence differs from Run's crawl (%d vs %d peers)", len(first), len(c.Peers))
	}

	st2, err := src.Stream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	replay := drain(t, st2, 17) // deliberately awkward buffer size
	if !reflect.DeepEqual(replay, first) {
		t.Fatal("replayed stream differs from the first pass")
	}
}

// TestSlicePeersSource: the in-memory adapter is replayable and honors
// the final-short-batch EOF convention.
func TestSlicePeersSource(t *testing.T) {
	_, c := crawlWorld(t, 41)
	peers := c.Peers[:100]
	src := SlicePeers(peers)
	for _, bufSize := range []int{1, 33, 100, 1000} {
		st, err := src.Stream(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if got := drain(t, st, bufSize); !reflect.DeepEqual(got, peers) {
			t.Fatalf("bufSize=%d: sequence differs", bufSize)
		}
	}
	st, err := SlicePeers(nil).Stream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := drain(t, st, 8); len(got) != 0 {
		t.Fatalf("empty source delivered %d peers", len(got))
	}
}

// TestCrawlSourceCancellation: a cancelled context stops the stream with
// ctx.Err() between crawl units, same granularity as Run.
func TestCrawlSourceCancellation(t *testing.T) {
	w, _ := crawlWorld(t, 41)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st, err := NewCrawlSource(w, DefaultConfig(), rng.New(41).Split("p2p")).Stream(ctx)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]Peer, 64)
	for i := 0; i < 1000; i++ {
		n, err := st.Next(buf)
		if err == context.Canceled {
			if n != 0 {
				t.Fatalf("cancelled Next delivered %d peers alongside the error", n)
			}
			return
		}
		if err == io.EOF {
			t.Fatal("cancelled stream ran to completion")
		}
		if err != nil {
			t.Fatalf("unexpected error %v", err)
		}
	}
	t.Fatal("cancelled stream never stopped")
}

// TestWritePeersFileRoundTrip: WritePeers → FileSource must reproduce
// the peer sequence bit-exactly (coordinates use shortest round-trip
// formatting), and the file source must replay.
func TestWritePeersFileRoundTrip(t *testing.T) {
	_, c := crawlWorld(t, 41)
	peers := c.Peers[:2000]
	path := filepath.Join(t.TempDir(), "peers.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	n, err := WritePeers(context.Background(), f, SlicePeers(peers))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if n != len(peers) {
		t.Fatalf("WritePeers reported %d peers, want %d", n, len(peers))
	}
	src := FileSource(path)
	for _, bufSize := range []int{4096, 7} { // second pass proves replayability
		st, err := src.Stream(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		got := drain(t, st, bufSize)
		if !reflect.DeepEqual(got, peers) {
			t.Fatalf("bufSize=%d: round-tripped peers differ", bufSize)
		}
	}
}

// TestFileSourceRejectsGarbage: missing header and corrupt lines surface
// as errors naming the file, never as silently-parsed peers.
func TestFileSourceRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	noHeader := filepath.Join(dir, "nope.txt")
	if err := os.WriteFile(noHeader, []byte("hello world\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := FileSource(noHeader).Stream(context.Background()); err == nil || !strings.Contains(err.Error(), "header") {
		t.Fatalf("headerless file: got %v, want header error", err)
	}

	badLine := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(badLine, []byte(peersHeader+"\n1.2.3.4 kad not-an-asn 1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := FileSource(badLine).Stream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Next(make([]Peer, 8)); err == nil || !strings.Contains(err.Error(), "bad.txt:2") {
		t.Fatalf("corrupt line: got %v, want positioned parse error", err)
	}

	if _, err := FileSource(filepath.Join(dir, "missing.txt")).Stream(context.Background()); err == nil {
		t.Fatal("missing file: got nil error")
	}
}

// TestParseAppRoundTrip: ParseApp inverts App.String for every app and
// rejects unknown names.
func TestParseAppRoundTrip(t *testing.T) {
	for _, app := range Apps {
		got, err := ParseApp(app.String())
		if err != nil || got != app {
			t.Fatalf("ParseApp(%q) = %v, %v", app.String(), got, err)
		}
	}
	if _, err := ParseApp("napster"); err == nil {
		t.Fatal("ParseApp accepted an unknown app")
	}
}

// TestCrawlDupAccounting is the PR's accounting regression test: with
// crawl-dup injection armed, every recorded observation — injected
// duplicates included — must count once in ByApp and once in the per-app
// peer counters, so sum(ByApp) == len(Peers) == sum(peers_total) and the
// funnel's crawl == kept + drops arithmetic starts from a consistent
// crawl size. (peersC used to count unique peers only, undercounting
// whenever CrawlDup was armed.)
func TestCrawlDupAccounting(t *testing.T) {
	w, clean := crawlWorld(t, 41)

	plan := faults.NewPlan(7)
	if err := plan.Set(faults.CrawlDup, 0.05); err != nil {
		t.Fatal(err)
	}
	reg := obs.New()
	cfg := DefaultConfig()
	cfg.Obs = reg
	cfg.Faults = plan
	c, err := Run(context.Background(), w, cfg, rng.New(41).Split("p2p"))
	if err != nil {
		t.Fatal(err)
	}

	if len(c.Peers) <= len(clean.Peers) {
		t.Fatalf("5%% crawl-dup did not grow the crawl: %d vs clean %d", len(c.Peers), len(clean.Peers))
	}
	injected := reg.Counter("eyeball_crawl_injected_dup_total").Value()
	if injected == 0 {
		t.Fatal("no injected duplicates recorded at 5%")
	}
	if got, want := len(c.Peers)-len(clean.Peers), int(injected); got != want {
		t.Fatalf("crawl grew by %d peers but %d duplicates were injected", got, want)
	}

	// ByApp must agree with a direct census of the peer slice and sum to
	// the crawl size.
	census := make(map[App]int)
	for _, p := range c.Peers {
		census[p.App]++
	}
	sum := 0
	var counterSum int64
	for _, app := range Apps {
		if c.ByApp[app] != census[app] {
			t.Errorf("ByApp[%s] = %d, census says %d", app, c.ByApp[app], census[app])
		}
		sum += c.ByApp[app]
		counterSum += reg.Counter("eyeball_crawl_peers_total", "app", app.String()).Value()
	}
	if sum != len(c.Peers) {
		t.Errorf("sum(ByApp) = %d, want len(Peers) = %d", sum, len(c.Peers))
	}
	if counterSum != int64(len(c.Peers)) {
		t.Errorf("sum(eyeball_crawl_peers_total) = %d, want len(Peers) = %d", counterSum, len(c.Peers))
	}
}
