package p2p

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"eyeballas/internal/astopo"
	"eyeballas/internal/geo"
	"eyeballas/internal/ipnet"
	"eyeballas/internal/obs"
	"eyeballas/internal/rng"
)

// PeerStream is a pull iterator over crawled peers, the ingestion shape
// that lets the pipeline consume a crawl without materializing it.
//
// Next follows the io.Reader convention: it fills buf with up to
// len(buf) peers, returns how many it wrote, and returns io.EOF —
// possibly alongside a final short batch — when the stream is
// exhausted. On any other error the peers copied into buf must be
// discarded: a failed stream yields no partial crawl.
type PeerStream interface {
	Next(buf []Peer) (int, error)
}

// PeerSource opens peer streams. Stream must be replayable: every call
// yields a stream delivering the identical peer sequence, which is what
// lets the pipeline's single-DB fallback rerun ingestion without ever
// holding the crawl in memory. Sources over generated crawls get this
// for free — rng.Source.Split/SplitN derive child streams purely from
// the parent's seed — and slice- or file-backed sources are trivially
// re-readable.
type PeerSource interface {
	Stream(ctx context.Context) (PeerStream, error)
}

// SlicePeers adapts an in-memory peer slice (e.g. Crawl.Peers) into a
// PeerSource. Each Stream call returns a fresh cursor over the same
// backing slice; the peers are not copied.
func SlicePeers(peers []Peer) PeerSource { return slicePeers{peers} }

type slicePeers struct{ peers []Peer }

func (s slicePeers) Stream(context.Context) (PeerStream, error) {
	return &sliceStream{peers: s.peers}, nil
}

type sliceStream struct {
	peers []Peer
	off   int
}

func (s *sliceStream) Next(buf []Peer) (int, error) {
	n := copy(buf, s.peers[s.off:])
	s.off += n
	if s.off == len(s.peers) {
		return n, io.EOF
	}
	return n, nil
}

// NewCrawlSource returns a generative PeerSource: each Stream call
// replays the three crawls over the world unit by unit, delivering
// exactly the peer sequence Run would materialize — Run itself is a
// collect loop over this source. Per-stream memory is one crawl unit
// (a single (AS, app) pair), not the crawl.
//
// Replayability holds because the per-unit RNG children are derived
// purely from src's seed (never from consumed state), so a second
// Stream call re-generates the identical sequence. Fault injection
// (cfg.Faults) keys every decision by peer identity, so it is equally
// schedule- and batch-independent. Obs counters and the "p2p.crawl"
// span are emitted per stream — a fallback rerun shows up as a second
// crawl span, which is what actually happened.
func NewCrawlSource(w *astopo.World, cfg Config, src *rng.Source) PeerSource {
	return &crawlSource{w: w, cfg: cfg, src: src}
}

type crawlSource struct {
	w   *astopo.World
	cfg Config
	src *rng.Source
}

func (c *crawlSource) Stream(ctx context.Context) (PeerStream, error) {
	if err := c.cfg.validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return &crawlStream{
		ctx:  ctx,
		ases: c.w.ASes(),
		cs:   newCrawlState(c.w, c.cfg),
		src:  c.src,
		span: c.cfg.Obs.StartSpan("p2p.crawl"),
	}, nil
}

type crawlStream struct {
	ctx  context.Context
	ases []*astopo.AS
	cs   *crawlState
	src  *rng.Source
	span *obs.Span

	ai, appi int    // cursor over (AS, app) units, app-major within AS
	pending  []Peer // current unit's undelivered peers
	off      int
	done     bool
}

// finish ends the stream exactly once.
func (s *crawlStream) finish() {
	if !s.done {
		s.done = true
		s.span.End()
	}
}

func (s *crawlStream) Next(buf []Peer) (int, error) {
	if s.done {
		return 0, io.EOF
	}
	n := 0
	for n < len(buf) {
		if s.off < len(s.pending) {
			c := copy(buf[n:], s.pending[s.off:])
			n += c
			s.off += c
			continue
		}
		s.pending = s.pending[:0]
		s.off = 0
		if s.ai >= len(s.ases) {
			s.finish()
			return n, io.EOF
		}
		a := s.ases[s.ai]
		if s.appi == 0 {
			if a.Customers <= 0 {
				s.ai++
				continue
			}
			// Cancellation granularity matches Run: between ASes.
			if err := s.ctx.Err(); err != nil {
				s.finish()
				return 0, err
			}
		}
		app := Apps[s.appi]
		if s.appi++; s.appi == len(Apps) {
			s.appi = 0
			s.ai++
		}
		s.cs.unit(a, app, s.src, func(p Peer) { s.pending = append(s.pending, p) })
	}
	return n, nil
}

// ParseApp is the inverse of App.String.
func ParseApp(s string) (App, error) {
	for _, app := range Apps {
		if app.String() == s {
			return app, nil
		}
	}
	return 0, fmt.Errorf("p2p: unknown app %q", s)
}

// peersHeader guards peer files against being fed some other text file.
const peersHeader = "eyeballas-peers/1"

// WritePeers drains src into w in the textual peers-file format (one
// header line, then "ip app asn lat lon" per peer; coordinates use
// shortest-round-trip formatting, so a file round-trip is bit-exact).
// It returns the number of peers written. Memory is O(batch): the
// source is streamed, never materialized.
func WritePeers(ctx context.Context, w io.Writer, src PeerSource) (int, error) {
	st, err := src.Stream(ctx)
	if err != nil {
		return 0, err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(peersHeader + "\n"); err != nil {
		return 0, err
	}
	buf := make([]Peer, 4096)
	total := 0
	for {
		n, serr := st.Next(buf)
		if serr != nil && serr != io.EOF {
			return 0, serr
		}
		for i := 0; i < n; i++ {
			p := &buf[i]
			line := p.IP.String() + " " + p.App.String() + " " +
				strconv.Itoa(int(p.TrueASN)) + " " +
				strconv.FormatFloat(p.TrueLoc.Lat, 'g', -1, 64) + " " +
				strconv.FormatFloat(p.TrueLoc.Lon, 'g', -1, 64) + "\n"
			if _, err := bw.WriteString(line); err != nil {
				return 0, err
			}
		}
		total += n
		if serr == io.EOF {
			return total, bw.Flush()
		}
	}
}

// FileSource reads a peers file written by WritePeers. Every Stream
// call re-opens the file, so the source is replayable; parsing is
// line-at-a-time, so memory stays O(batch) regardless of file size.
// The peers must come from the same world the pipeline's databases and
// BGP tables were built over — the file stores ground-truth locations
// the geolocation simulators key on.
func FileSource(path string) PeerSource { return fileSource{path} }

type fileSource struct{ path string }

func (f fileSource) Stream(context.Context) (PeerStream, error) {
	fh, err := os.Open(f.path)
	if err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(fh)
	if !sc.Scan() || sc.Text() != peersHeader {
		fh.Close()
		return nil, fmt.Errorf("p2p: %s is not a peers file (missing %q header)", f.path, peersHeader)
	}
	return &fileStream{f: fh, sc: sc, path: f.path}, nil
}

type fileStream struct {
	f    *os.File
	sc   *bufio.Scanner
	path string
	line int
	done bool
}

func (s *fileStream) Next(buf []Peer) (int, error) {
	if s.done {
		return 0, io.EOF
	}
	n := 0
	for n < len(buf) {
		if !s.sc.Scan() {
			s.done = true
			err := s.sc.Err()
			s.f.Close()
			if err != nil {
				return 0, err
			}
			return n, io.EOF
		}
		s.line++
		p, err := parsePeerLine(s.sc.Text())
		if err != nil {
			s.done = true
			s.f.Close()
			return 0, fmt.Errorf("p2p: %s:%d: %w", s.path, s.line+1, err)
		}
		buf[n] = p
		n++
	}
	return n, nil
}

func parsePeerLine(line string) (Peer, error) {
	f := strings.Fields(line)
	if len(f) != 5 {
		return Peer{}, fmt.Errorf("want 5 fields, got %d", len(f))
	}
	ip, err := ipnet.ParseAddr(f[0])
	if err != nil {
		return Peer{}, err
	}
	app, err := ParseApp(f[1])
	if err != nil {
		return Peer{}, err
	}
	asn, err := strconv.Atoi(f[2])
	if err != nil {
		return Peer{}, fmt.Errorf("bad asn %q: %w", f[2], err)
	}
	lat, err := strconv.ParseFloat(f[3], 64)
	if err != nil {
		return Peer{}, fmt.Errorf("bad lat %q: %w", f[3], err)
	}
	lon, err := strconv.ParseFloat(f[4], 64)
	if err != nil {
		return Peer{}, fmt.Errorf("bad lon %q: %w", f[4], err)
	}
	return Peer{IP: ip, App: app, TrueASN: astopo.ASN(asn), TrueLoc: geo.Point{Lat: lat, Lon: lon}}, nil
}
