// Package p2p simulates the paper's three measurement crawls — Kad,
// Gnutella, and BitTorrent (§2, "Sampling End-users") — over a synthetic
// world. Each crawler observes a different biased subset of each AS's
// user population, reproducing the input structure the paper works from:
// app penetration differs sharply by region (Table 1: Kad dominates
// Europe and Asia, Gnutella dominates North America), and no crawler sees
// every user.
//
// The models here are statistical summaries of the crawlers' outcomes,
// which keeps the pipeline fast at millions of peers. The mechanisms
// themselves are built and validated in sibling packages: internal/dht
// (Kademlia overlay + zone crawler), internal/overlay (Gnutella two-tier
// overlay + snowball crawler), and internal/swarm (BitTorrent
// tracker/PEX scraper); their package tests confirm the coverage regimes
// assumed here emerge from protocol-level behaviour.
package p2p

import (
	"context"
	"fmt"
	"io"
	"math"

	"eyeballas/internal/astopo"
	"eyeballas/internal/faults"
	"eyeballas/internal/gazetteer"
	"eyeballas/internal/geo"
	"eyeballas/internal/ipnet"
	"eyeballas/internal/obs"
	"eyeballas/internal/rng"
	"eyeballas/internal/users"
)

// App identifies a P2P application.
type App int

// The three crawled applications.
const (
	Kad App = iota
	Gnutella
	BitTorrent
)

// Apps lists all applications in a fixed order.
var Apps = []App{Kad, Gnutella, BitTorrent}

// String names the application.
func (a App) String() string {
	switch a {
	case Kad:
		return "kad"
	case Gnutella:
		return "gnutella"
	case BitTorrent:
		return "bittorrent"
	default:
		return fmt.Sprintf("app(%d)", int(a))
	}
}

// Peer is one observed P2P user. TrueLoc and TrueASN are ground truth
// carried along for evaluation; the measurement pipeline must not consult
// them (it uses the geolocation databases and BGP tables instead).
type Peer struct {
	IP      ipnet.Addr
	App     App
	TrueASN astopo.ASN
	TrueLoc geo.Point
}

// Config controls the crawl simulation.
type Config struct {
	// Scale multiplies every expected observation count — the knob that
	// shrinks the paper's 89M-peer crawl to laptop size.
	Scale float64
	// Penetration[app][region] is the fraction of a region's end users
	// running the app.
	Penetration map[App]map[gazetteer.Region]float64
	// KadZones is the number of DHT ID-space zones the Kad crawler walks.
	KadZones int
	// Torrents is the number of swarms the BitTorrent crawler scrapes.
	Torrents int
	// Obs receives crawl metrics (contacts/peers/dups per app) and the
	// per-app crawl spans; nil disables instrumentation. Metrics are a
	// read-only side channel: the crawl is byte-identical either way.
	Obs *obs.Registry
	// Faults injects crawl-level failures (faults.CrawlLoss drops a
	// response after the crawler observed the peer; faults.CrawlDup
	// records the same peer twice, which downstream unique-IP dedup
	// must absorb). Decisions are keyed by (IP, app), so the same plan
	// always loses the same responses. Nil disables injection and is
	// bit-identical to a plan with zero rates.
	Faults *faults.Plan
}

// DefaultConfig returns penetration rates tuned so the per-region peer
// totals mirror Table 1's asymmetry: Kad dominates EU and AS, Gnutella
// dominates NA, BitTorrent is a modest third everywhere.
func DefaultConfig() Config {
	return Config{
		Scale:    0.5,
		KadZones: 64,
		Torrents: 400,
		Penetration: map[App]map[gazetteer.Region]float64{
			Kad: {
				gazetteer.NA: 0.012, gazetteer.EU: 0.14, gazetteer.AS: 0.14,
				gazetteer.SA: 0.05, gazetteer.AF: 0.03, gazetteer.OC: 0.04,
			},
			Gnutella: {
				gazetteer.NA: 0.090, gazetteer.EU: 0.020, gazetteer.AS: 0.013,
				gazetteer.SA: 0.02, gazetteer.AF: 0.01, gazetteer.OC: 0.03,
			},
			BitTorrent: {
				gazetteer.NA: 0.018, gazetteer.EU: 0.020, gazetteer.AS: 0.008,
				gazetteer.SA: 0.02, gazetteer.AF: 0.01, gazetteer.OC: 0.02,
			},
		},
	}
}

func (c Config) validate() error {
	if c.Scale <= 0 {
		return fmt.Errorf("p2p: Scale must be positive")
	}
	if len(c.Penetration) == 0 {
		return fmt.Errorf("p2p: Penetration is empty")
	}
	if c.KadZones <= 0 || c.Torrents <= 0 {
		return fmt.Errorf("p2p: KadZones and Torrents must be positive")
	}
	return nil
}

// Crawl is the combined result of the three crawls.
type Crawl struct {
	Peers []Peer
	// ByApp counts recorded observations per app — including any
	// faults.CrawlDup duplicate records, which appear in Peers too —
	// so its sum always equals len(Peers).
	ByApp map[App]int
}

// Run executes all three crawls over the world by draining a
// NewCrawlSource stream, so the materialized crawl and the streaming
// path are identical by construction. The result is deterministic in
// (world, src seed, cfg.Faults), with or without an observability
// registry in cfg.Obs. Cancellation is observed between per-AS crawl
// units: a cancelled run returns ctx.Err() and the partial crawl is
// discarded. A nil ctx means context.Background().
func Run(ctx context.Context, w *astopo.World, cfg Config, src *rng.Source) (*Crawl, error) {
	st, err := NewCrawlSource(w, cfg, src).Stream(ctx)
	if err != nil {
		return nil, err
	}
	out := &Crawl{ByApp: make(map[App]int)}
	buf := make([]Peer, 4096)
	for {
		n, err := st.Next(buf)
		for i := 0; i < n; i++ {
			out.Peers = append(out.Peers, buf[i])
			out.ByApp[buf[i].App]++
		}
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
	}
}

// crawlState bundles what every (AS, app) crawl unit consumes: the
// world's placer, the armed fault injectors, and the per-app crawl
// counters. One crawlState serves one stream (or one Run).
type crawlState struct {
	cfg       Config
	placer    *users.Placer
	loss, dup *faults.Injector
	// Per-app accounting: raw contacts observed (before the crawlers'
	// unique-IP dedup), peers reported, and dedup-suppressed repeats.
	// Registered once, flushed per (AS, app) — never per draw.
	contactsC, peersC, dupsC []*obs.Counter
	lostC, injDupC           *obs.Counter
}

func newCrawlState(w *astopo.World, cfg Config) *crawlState {
	cs := &crawlState{
		cfg:       cfg,
		placer:    users.NewPlacer(w),
		loss:      cfg.Faults.Injector(faults.CrawlLoss),
		dup:       cfg.Faults.Injector(faults.CrawlDup),
		contactsC: make([]*obs.Counter, len(Apps)),
		peersC:    make([]*obs.Counter, len(Apps)),
		dupsC:     make([]*obs.Counter, len(Apps)),
	}
	if cfg.Obs != nil {
		for _, app := range Apps {
			cs.contactsC[app] = cfg.Obs.Counter("eyeball_crawl_contacts_total", "app", app.String())
			cs.peersC[app] = cfg.Obs.Counter("eyeball_crawl_peers_total", "app", app.String())
			cs.dupsC[app] = cfg.Obs.Counter("eyeball_crawl_dup_contacts_total", "app", app.String())
		}
		if cs.loss != nil || cs.dup != nil {
			cs.lostC = cfg.Obs.Counter("eyeball_crawl_injected_lost_total")
			cs.injDupC = cfg.Obs.Counter("eyeball_crawl_injected_dup_total")
		}
	}
	return cs
}

// unit simulates one (AS, app) crawl unit, invoking emit for every
// recorded observation — including injected duplicate records — in a
// fixed order that depends only on (world, seed, plan), never on how
// the caller batches or schedules the output.
func (cs *crawlState) unit(a *astopo.AS, app App, src *rng.Source, emit func(Peer)) {
	cfg := cs.cfg
	pen := cfg.Penetration[app][a.Region]
	if pen <= 0 {
		return
	}
	appUsers := float64(a.Customers) * pen * cfg.Scale
	s := src.SplitN(fmt.Sprintf("crawl-%s", app), int(a.ASN))
	var n int
	switch app {
	case Kad:
		n = kadObserved(s, appUsers, cfg.KadZones)
	case Gnutella:
		n = gnutellaObserved(s, appUsers)
	case BitTorrent:
		n = bittorrentObserved(s, appUsers, cfg.Torrents)
	}
	if n == 0 {
		return
	}
	seen := make(map[ipnet.Addr]bool, n)
	unique, lost, injDups := 0, 0, 0
	for i := 0; i < n; i++ {
		u := users.User{
			IP:      cs.placer.IPFor(a, s),
			ASN:     a.ASN,
			TrueLoc: cs.placer.Place(a, s),
		}
		if seen[u.IP] {
			continue // crawlers report unique IPs per app
		}
		seen[u.IP] = true
		// crawl-loss: the crawler contacted the peer but the
		// response was lost before being recorded. The decision is
		// per (IP, app), after dedup, so the same plan always
		// loses the same peers — and the RNG draw sequence above
		// is untouched, so a zero-rate plan is bit-identical.
		if cs.loss.Hit2(uint64(u.IP), uint64(app)) {
			lost++
			continue
		}
		unique++
		peer := Peer{
			IP: u.IP, App: app, TrueASN: u.ASN, TrueLoc: u.TrueLoc,
		}
		emit(peer)
		// crawl-dup: the same response recorded twice (a retry
		// that both landed); downstream unique-IP dedup absorbs it.
		if cs.dup.Hit2(uint64(u.IP), uint64(app)) {
			injDups++
			emit(peer)
		}
	}
	cs.contactsC[app].Add(int64(n))
	// Peers reported = every record the crawler handed over, injected
	// duplicates included — so the per-app counters sum to the crawl
	// size (and to the pipeline's CrawledPeers) under any fault plan.
	// The injected-dup share stays separately visible in injDupC.
	// (Counting only unique peers here used to undercount against
	// ByApp whenever CrawlDup was armed.)
	cs.peersC[app].Add(int64(unique + injDups))
	cs.dupsC[app].Add(int64(n - unique - lost))
	if cs.lostC != nil {
		cs.lostC.Add(int64(lost))
		cs.injDupC.Add(int64(injDups))
	}
}

// kadObserved models a DHT ID-space walk: the crawler sweeps KadZones
// zones of the hash space; each zone is covered well but not perfectly,
// with independent per-zone coverage.
func kadObserved(s *rng.Source, appUsers float64, zones int) int {
	perZone := appUsers / float64(zones)
	total := 0
	for z := 0; z < zones; z++ {
		cov := s.TruncNorm(0.88, 0.08, 0.5, 1.0)
		total += s.Poisson(perZone * cov)
	}
	return total
}

// gnutellaObserved models a snowball crawl of the overlay: discovery
// probability grows with the AS's user count (well-connected regions are
// reached; sparse leafs are missed), with high per-AS variance.
func gnutellaObserved(s *rng.Source, appUsers float64) int {
	if appUsers <= 0 {
		return 0
	}
	reach := math.Min(1, math.Log10(appUsers+1)/3.5)
	cov := 0.80 * reach * s.TruncNorm(1, 0.25, 0.4, 1.6)
	return s.Poisson(appUsers * cov)
}

// bittorrentObserved models tracker/PEX scrapes of Zipf-popular swarms:
// the observed fraction fluctuates strongly AS to AS (swarm membership is
// bursty), modelled as a Poisson with an exponentially-mixed mean.
func bittorrentObserved(s *rng.Source, appUsers float64, torrents int) int {
	// Larger torrent sets smooth the dispersion.
	dispersion := 1.0 / math.Sqrt(float64(torrents)/100)
	mult := s.Exp(1) // mean 1, heavy fluctuation
	cov := 0.7 * (1 + dispersion*(mult-1))
	if cov < 0.05 {
		cov = 0.05
	}
	if cov > 1.5 {
		cov = 1.5
	}
	return s.Poisson(appUsers * cov)
}
