package p2p

import (
	"context"
	"testing"

	"eyeballas/internal/astopo"
	"eyeballas/internal/gazetteer"
	"eyeballas/internal/rng"
)

func crawlWorld(t *testing.T, seed uint64) (*astopo.World, *Crawl) {
	t.Helper()
	w, err := astopo.Generate(astopo.SmallConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	c, err := Run(context.Background(), w, DefaultConfig(), rng.New(seed).Split("p2p"))
	if err != nil {
		t.Fatal(err)
	}
	return w, c
}

func TestRunProducesPeers(t *testing.T) {
	w, c := crawlWorld(t, 41)
	if len(c.Peers) < 1000 {
		t.Fatalf("only %d peers", len(c.Peers))
	}
	for _, app := range Apps {
		if c.ByApp[app] == 0 {
			t.Errorf("no %s peers", app)
		}
	}
	// Peers belong to real ASes with customers and sit inside their AS's
	// prefixes.
	for i, p := range c.Peers {
		if i > 500 {
			break
		}
		a := w.AS(p.TrueASN)
		if a == nil || a.Customers == 0 {
			t.Fatalf("peer %d from non-eyeball AS %d", i, p.TrueASN)
		}
		inside := false
		for _, pre := range a.Prefixes {
			if pre.Contains(p.IP) {
				inside = true
				break
			}
		}
		if !inside {
			t.Fatalf("peer IP %v outside AS %d prefixes", p.IP, p.TrueASN)
		}
		if !p.TrueLoc.Valid() {
			t.Fatalf("peer with invalid location")
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	_, c1 := crawlWorld(t, 42)
	_, c2 := crawlWorld(t, 42)
	if len(c1.Peers) != len(c2.Peers) {
		t.Fatalf("peer counts differ: %d vs %d", len(c1.Peers), len(c2.Peers))
	}
	for i := range c1.Peers {
		if c1.Peers[i] != c2.Peers[i] {
			t.Fatalf("peer %d differs", i)
		}
	}
}

func TestRegionalAppAsymmetry(t *testing.T) {
	// The Table 1 shape: Kad dominates EU and AS; Gnutella dominates NA.
	w, c := crawlWorld(t, 43)
	counts := map[gazetteer.Region]map[App]int{}
	for _, p := range c.Peers {
		r := w.AS(p.TrueASN).Region
		if counts[r] == nil {
			counts[r] = map[App]int{}
		}
		counts[r][p.App]++
	}
	if counts[gazetteer.EU][Kad] <= counts[gazetteer.EU][Gnutella] {
		t.Errorf("EU: kad %d <= gnutella %d", counts[gazetteer.EU][Kad], counts[gazetteer.EU][Gnutella])
	}
	if counts[gazetteer.AS][Kad] <= counts[gazetteer.AS][Gnutella] {
		t.Errorf("AS: kad %d <= gnutella %d", counts[gazetteer.AS][Kad], counts[gazetteer.AS][Gnutella])
	}
	if counts[gazetteer.NA][Gnutella] <= counts[gazetteer.NA][Kad] {
		t.Errorf("NA: gnutella %d <= kad %d", counts[gazetteer.NA][Gnutella], counts[gazetteer.NA][Kad])
	}
}

func TestUniqueIPsPerASApp(t *testing.T) {
	_, c := crawlWorld(t, 44)
	type key struct {
		asn astopo.ASN
		app App
		ip  string
	}
	seen := map[key]bool{}
	for _, p := range c.Peers {
		k := key{p.TrueASN, p.App, p.IP.String()}
		if seen[k] {
			t.Fatalf("duplicate peer %v", k)
		}
		seen[k] = true
	}
}

func TestCoverageIsPartial(t *testing.T) {
	// No AS should have more observed peers for an app than
	// customers × penetration × scale × 1.8 (coverage can exceed 1 only
	// modestly through the BT burst model).
	w, c := crawlWorld(t, 45)
	cfg := DefaultConfig()
	perASApp := map[astopo.ASN]map[App]int{}
	for _, p := range c.Peers {
		if perASApp[p.TrueASN] == nil {
			perASApp[p.TrueASN] = map[App]int{}
		}
		perASApp[p.TrueASN][p.App]++
	}
	for asn, apps := range perASApp {
		a := w.AS(asn)
		for app, n := range apps {
			expected := float64(a.Customers) * cfg.Penetration[app][a.Region] * cfg.Scale
			if float64(n) > expected*1.8+20 {
				t.Errorf("AS %d %s: observed %d >> expected %.0f", asn, app, n, expected)
			}
		}
	}
}

func TestCaseStudySubjectObserved(t *testing.T) {
	w, c := crawlWorld(t, 46)
	cs := w.CaseStudy()
	n := 0
	for _, p := range c.Peers {
		if p.TrueASN == cs.Subject {
			n++
		}
	}
	// ~3000 customers × (0.14+0.02+0.02) × 0.5 ≈ 240 expected.
	if n < 50 {
		t.Errorf("case-study subject observed only %d times", n)
	}
}

func TestConfigValidation(t *testing.T) {
	w, _ := crawlWorld(t, 47)
	src := rng.New(1)
	bad := []Config{
		{},
		{Scale: -1, Penetration: DefaultConfig().Penetration, KadZones: 8, Torrents: 8},
		{Scale: 1, Penetration: nil, KadZones: 8, Torrents: 8},
		{Scale: 1, Penetration: DefaultConfig().Penetration, KadZones: 0, Torrents: 8},
	}
	for i, cfg := range bad {
		if _, err := Run(context.Background(), w, cfg, src); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestAppString(t *testing.T) {
	if Kad.String() != "kad" || Gnutella.String() != "gnutella" || BitTorrent.String() != "bittorrent" {
		t.Error("app names wrong")
	}
	if App(99).String() == "" {
		t.Error("unknown app should still render")
	}
}
