package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden exposition files")

// goldenRegistry builds a registry with one of everything, with a pinned
// clock so span durations (and therefore the whole snapshot) are
// byte-stable.
func goldenRegistry() *Registry {
	r := New()
	r.SetClock(pinnedClock())
	r.Counter("eyeball_crawl_peers_total", "app", "kad").Add(12)
	r.Counter("eyeball_crawl_peers_total", "app", "gnutella").Add(7)
	r.Counter("eyeball_bgp_origin_lookups_total").Add(800)
	r.Gauge("eyeball_kde_grid_cells").Set(1024)
	h := r.Histogram("eyeball_pipeline_as_p90_geoerr_km", KmErrorBuckets())
	for _, v := range []float64{0.5, 40, 40.5, 80, 101, 2000} {
		h.Observe(v)
	}
	r.RegisterFunnel(pipelineShapedFunnel())
	root := r.StartSpan("pipeline.build")
	root.Child("locate").End()
	root.End()
	return r
}

func goldenPath(name string) string { return filepath.Join("testdata", name) }

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := goldenPath(name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/obs -run Golden -update` to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestGoldenPrometheus pins the Prometheus text exposition byte-for-byte:
// family headers, sorted series, cumulative inclusive le buckets, and the
// synthetic funnel families.
func TestGoldenPrometheus(t *testing.T) {
	var b bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden.prom", b.Bytes())
}

// TestGoldenJSON pins the JSON snapshot byte-for-byte (sorted map keys,
// numeric-ordered buckets, no timestamp).
func TestGoldenJSON(t *testing.T) {
	var b bytes.Buffer
	if err := goldenRegistry().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden.json", b.Bytes())
}

// TestSnapshotsAreStable renders the same registry twice and requires
// byte equality — the determinism the golden files rest on.
func TestSnapshotsAreStable(t *testing.T) {
	r := goldenRegistry()
	var a, b bytes.Buffer
	if err := r.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two renders of the same registry differ")
	}
	a.Reset()
	b.Reset()
	if err := r.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two JSON renders of the same registry differ")
	}
}

// TestJSONRoundTrips proves the JSON output is machine-consumable (the CI
// jq invariant check depends on this shape).
func TestJSONRoundTrips(t *testing.T) {
	var b bytes.Buffer
	if err := goldenRegistry().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Counters map[string]int64 `json:"counters"`
		Funnels  map[string]struct {
			Stages []struct {
				Name  string           `json:"name"`
				In    int64            `json:"in"`
				Out   int64            `json:"out"`
				Drops map[string]int64 `json:"drops"`
			} `json:"stages"`
		} `json:"funnels"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Counters[`eyeball_crawl_peers_total{app="kad"}`] != 12 {
		t.Fatalf("kad counter missing: %+v", doc.Counters)
	}
	pipe, ok := doc.Funnels["pipeline"]
	if !ok {
		t.Fatal("pipeline funnel missing from JSON")
	}
	// The jq-checkable conservation invariant.
	for _, st := range pipe.Stages {
		var drops int64
		for _, d := range st.Drops {
			drops += d
		}
		if st.In != st.Out+drops {
			t.Fatalf("stage %s leaks in JSON: in=%d out=%d drops=%d", st.Name, st.In, st.Out, drops)
		}
	}
}

// TestPrometheusCumulativeBuckets checks bucket cumulation and the +Inf
// terminal bucket equal to _count.
func TestPrometheusCumulativeBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("b_test", []float64{1, 2})
	h.Observe(0.5) // bucket le=1
	h.Observe(1.5) // bucket le=2
	h.Observe(9)   // +Inf
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`b_test_bucket{le="1"} 1`,
		`b_test_bucket{le="2"} 2`,
		`b_test_bucket{le="+Inf"} 3`,
		`b_test_count 3`,
	} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		1:      "1",
		0.0001: "0.0001",
		1024:   "1024",
	}
	for v, want := range cases {
		if got := formatFloat(v); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", v, got, want)
		}
	}
}
