package obs

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Span is a monotonic wall-clock timer with parent/child nesting. Spans
// are created via Registry.StartSpan (roots) and Span.Child; End records
// the duration. Creating children and ending spans is safe from
// concurrent goroutines (the experiments fan per-AS work out over the
// worker pool), so sibling order follows creation order under the
// span's lock.
//
// A nil *Span (the disabled-registry state) is a no-op: Child returns
// nil and End does nothing, so instrumented code never branches on the
// registry itself.
type Span struct {
	reg   *Registry
	name  string
	start time.Time
	durNS atomic.Int64 // -1 while open
	mu    sync.Mutex
	kids  []*Span
}

// maxRootSpans bounds trace memory. A long batch run (thousands of KDE
// estimates, each opening a root span) would otherwise retain every span
// for the registry's lifetime, growing the GC-scanned heap without
// bound. Past the cap, StartSpan hands out detached spans: they still
// time and parent children exactly as before — the caller cannot tell
// the difference — but the registry does not keep a reference, so they
// become collectable as soon as the caller drops them. WriteTrace
// reports how many roots were shed.
const maxRootSpans = 512

// StartSpan opens a root span. Returns nil on a nil registry.
func (r *Registry) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	s := newSpan(r, name)
	r.mu.Lock()
	if len(r.spans) < maxRootSpans {
		r.spans = append(r.spans, s)
	} else {
		r.dropped++
	}
	r.mu.Unlock()
	return s
}

func newSpan(r *Registry, name string) *Span {
	s := &Span{reg: r, name: name, start: r.clock()}
	s.durNS.Store(-1)
	return s
}

// Child opens a nested span. Returns nil on a nil receiver.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := newSpan(s.reg, name)
	s.mu.Lock()
	s.kids = append(s.kids, c)
	s.mu.Unlock()
	return c
}

// End records the span's duration. Ending twice keeps the first
// duration. No-op on a nil receiver.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := s.reg.clock().Sub(s.start)
	if d < 0 {
		d = 0
	}
	s.durNS.CompareAndSwap(-1, int64(d))
}

// Duration returns the recorded duration and whether the span has ended.
func (s *Span) Duration() (time.Duration, bool) {
	if s == nil {
		return 0, false
	}
	ns := s.durNS.Load()
	if ns < 0 {
		return 0, false
	}
	return time.Duration(ns), true
}

// children returns a snapshot of the child slice.
func (s *Span) children() []*Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Span, len(s.kids))
	copy(out, s.kids)
	return out
}

// Tree converts the span subtree into the shared TreeNode form — the
// single encoding surface (WriteTree / WriteTreeJSON) the CLIs' -trace
// output and internal/trace's flight recorder both render through.
// Returns the zero TreeNode on a nil receiver.
func (s *Span) Tree() TreeNode {
	if s == nil {
		return TreeNode{}
	}
	n := TreeNode{Name: s.name, DurNS: -1}
	if d, ok := s.Duration(); ok {
		n.DurNS = int64(d)
	}
	for _, c := range s.children() {
		n.Children = append(n.Children, c.Tree())
	}
	return n
}

// TraceTree snapshots the registry's retained root spans as a TreeNode
// forest, in creation order.
func (r *Registry) TraceTree() []TreeNode {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	roots := make([]*Span, len(r.spans))
	copy(roots, r.spans)
	r.mu.Unlock()
	out := make([]TreeNode, 0, len(roots))
	for _, s := range roots {
		out = append(out, s.Tree())
	}
	return out
}

// WriteTrace renders the span forest as an indented tree with durations
// — the CLIs' -trace output, encoded by the shared WriteTree. Durations
// are timing observations and vary run to run; the tree *shape* is
// deterministic for serial orchestration code and creation-ordered
// within a parent.
func (r *Registry) WriteTrace(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	dropped := r.dropped
	r.mu.Unlock()
	if err := WriteTree(w, r.TraceTree()); err != nil {
		return err
	}
	if dropped > 0 {
		if _, err := fmt.Fprintf(w, "... %d more root spans not retained (cap %d)\n", dropped, maxRootSpans); err != nil {
			return err
		}
	}
	return nil
}
