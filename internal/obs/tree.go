package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// TreeNode is the neutral span-tree node both trace producers in the
// repository render through: the batch CLIs' obs.Span forest (-trace)
// and internal/trace's request-scoped traces (the flight recorder and
// /debug/trace/{id}). Factoring the encoding here means the text and
// JSON forms of a span tree are defined exactly once — a tree renders
// to the same bytes no matter which subsystem produced it.
//
// Both encoders are deterministic: fields encode in declaration order,
// attributes and events in recorded order, children in the order the
// producer supplies them (producers are responsible for a deterministic
// child order). No timestamps are emitted — only durations and offsets
// — so trees built under a pinned clock are byte-stable and
// golden-file friendly.
type TreeNode struct {
	Name string `json:"name"`
	// DurNS is the span duration in nanoseconds, -1 while open.
	DurNS    int64       `json:"duration_ns"`
	Attrs    []TreeAttr  `json:"attrs,omitempty"`
	Events   []TreeEvent `json:"events,omitempty"`
	Children []TreeNode  `json:"children,omitempty"`
}

// TreeAttr is one key/value attribute on a span, in recorded order.
type TreeAttr struct {
	Key string `json:"key"`
	Val string `json:"val"`
}

// TreeEvent is one point-in-time event on a span; AtNS is the offset
// from the tree's root start in nanoseconds.
type TreeEvent struct {
	Name string `json:"name"`
	AtNS int64  `json:"at_ns"`
}

// treeNameCol is the column durations are padded to in the text form —
// wide enough for two levels of nesting under typical span names.
const treeNameCol = 32

// WriteTree renders a span forest as the indented text tree the CLIs
// print for -trace: one line per span (name padded, duration), "(open)"
// for unfinished spans, attributes appended as [k=v ...], and events as
// "@ name +offset" lines under their span.
func WriteTree(w io.Writer, roots []TreeNode) error {
	for i := range roots {
		if err := writeTreeNode(w, &roots[i], 0); err != nil {
			return err
		}
	}
	return nil
}

func writeTreeNode(w io.Writer, n *TreeNode, depth int) error {
	dur := "(open)"
	if n.DurNS >= 0 {
		dur = time.Duration(n.DurNS).Round(time.Microsecond).String()
	}
	pad := treeNameCol - 2*depth - len(n.Name)
	if pad < 1 {
		pad = 1
	}
	if _, err := fmt.Fprintf(w, "%*s%s%*s%s", 2*depth, "", n.Name, pad, "", dur); err != nil {
		return err
	}
	if len(n.Attrs) > 0 {
		if _, err := io.WriteString(w, " ["); err != nil {
			return err
		}
		for i, a := range n.Attrs {
			sep := ""
			if i > 0 {
				sep = " "
			}
			if _, err := fmt.Fprintf(w, "%s%s=%s", sep, a.Key, a.Val); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "]"); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}
	for _, e := range n.Events {
		if _, err := fmt.Fprintf(w, "%*s@ %s%*s+%s\n", 2*(depth+1), "", e.Name,
			max(1, treeNameCol-2*(depth+1)-2-len(e.Name)), "",
			time.Duration(e.AtNS).Round(time.Microsecond)); err != nil {
			return err
		}
	}
	for i := range n.Children {
		if err := writeTreeNode(w, &n.Children[i], depth+1); err != nil {
			return err
		}
	}
	return nil
}

// WriteTreeJSON renders a span forest as deterministic, indented JSON —
// the encoding /debug/trace/{id}, the flight recorder, and eyeballpipe
// -trace-out all share. Arrays keep producer order and structs encode
// in field-declaration order, so equal trees are equal bytes.
func WriteTreeJSON(w io.Writer, roots []TreeNode) error {
	return EncodeJSON(w, roots)
}

// EncodeJSON writes v in the repository's canonical JSON form: indented
// two spaces, trailing newline, map keys sorted by encoding/json. Every
// trace/debug JSON producer funnels through here so their formatting
// can never drift apart.
func EncodeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
