package obs

import (
	"strings"
	"testing"
	"time"
)

// pinnedClock returns a deterministic clock advancing 1 ms per call.
func pinnedClock() func() time.Time {
	base := time.Unix(1000, 0)
	n := 0
	return func() time.Time {
		n++
		return base.Add(time.Duration(n) * time.Millisecond)
	}
}

func TestSpanDurations(t *testing.T) {
	r := New()
	r.SetClock(pinnedClock())
	root := r.StartSpan("root") // t=1ms
	child := root.Child("kid")  // t=2ms
	child.End()                 // t=3ms -> 1ms
	root.End()                  // t=4ms -> 3ms

	if d, ok := child.Duration(); !ok || d != time.Millisecond {
		t.Fatalf("child duration = %v/%v, want 1ms", d, ok)
	}
	if d, ok := root.Duration(); !ok || d != 3*time.Millisecond {
		t.Fatalf("root duration = %v/%v, want 3ms", d, ok)
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	r := New()
	r.SetClock(pinnedClock())
	s := r.StartSpan("s") // t=1ms
	s.End()               // t=2ms -> 1ms
	s.End()               // must keep the first duration
	if d, _ := s.Duration(); d != time.Millisecond {
		t.Fatalf("second End changed the duration to %v", d)
	}
}

func TestWriteTrace(t *testing.T) {
	r := New()
	r.SetClock(pinnedClock())
	root := r.StartSpan("pipeline.build")
	locate := root.Child("locate")
	locate.End()
	root.Child("aggregate") // left open on purpose
	root.End()

	var b strings.Builder
	if err := r.WriteTrace(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"pipeline.build", "locate", "aggregate", "(open)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %q:\n%s", want, out)
		}
	}
	// The child lines are indented under the root.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d trace lines, want 3:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "  locate") || !strings.HasPrefix(lines[2], "  aggregate") {
		t.Fatalf("children not indented:\n%s", out)
	}
}

func TestSnapshotSpans(t *testing.T) {
	r := New()
	r.SetClock(pinnedClock())
	root := r.StartSpan("a")
	root.Child("b").End()
	root.End()
	snap := r.Snapshot()
	if len(snap.Spans) != 1 {
		t.Fatalf("got %d root spans, want 1", len(snap.Spans))
	}
	if snap.Spans[0].Name != "a" || len(snap.Spans[0].Children) != 1 {
		t.Fatalf("unexpected span tree: %+v", snap.Spans[0])
	}
	if snap.Spans[0].Children[0].DurationNS != int64(time.Millisecond) {
		t.Fatalf("child duration = %d", snap.Spans[0].Children[0].DurationNS)
	}
}

// TestSpanRetentionCap: past maxRootSpans the registry hands out fully
// functional but detached spans — the caller's timing still works, the
// snapshot stays bounded, and WriteTrace reports the shed count.
func TestSpanRetentionCap(t *testing.T) {
	r := New()
	r.SetClock(pinnedClock())
	for i := 0; i < maxRootSpans+7; i++ {
		s := r.StartSpan("batch")
		if s == nil {
			t.Fatal("StartSpan returned nil past the cap")
		}
		s.Child("inner").End()
		s.End()
		if _, ok := s.Duration(); !ok {
			t.Fatal("detached span lost its timer")
		}
	}
	if got := len(r.Snapshot().Spans); got != maxRootSpans {
		t.Fatalf("snapshot has %d root spans, want cap %d", got, maxRootSpans)
	}
	var b strings.Builder
	if err := r.WriteTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "7 more root spans not retained") {
		t.Fatalf("trace does not report shed spans:\n...%s", b.String()[len(b.String())-200:])
	}
}
