package obs

import (
	"net/http"
	"net/http/pprof"
)

// HTTPHandler returns the live observability endpoint:
//
//	GET /metrics        Prometheus text exposition
//	GET /metrics.json   deterministic JSON snapshot
//	GET /debug/pprof/   net/http/pprof (profile, heap, trace, ...)
//
// Handlers snapshot the registry on every request, so scraping during a
// run observes live counters. The handler works on a nil registry too
// (it serves empty snapshots), so -pprof can profile a run that has no
// metrics sink configured.
func (r *Registry) HTTPHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
	// Explicit pprof routes (the blank-import route registers on
	// http.DefaultServeMux, which we deliberately do not serve).
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
