package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func parseFlags(t *testing.T, args ...string) *CLIFlags {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	c := BindCLIFlags(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCLIFlagsDisabledByDefault(t *testing.T) {
	c := parseFlags(t)
	if c.Enabled() {
		t.Fatal("no flags given but Enabled() is true")
	}
	if c.Registry() != nil {
		t.Fatal("disabled CLI flags must hand out a nil registry")
	}
	// The whole lifecycle must be a no-op.
	if err := c.Start(io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := c.Finish(io.Discard, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestCLIFlagsMetricsJSONFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.json")
	c := parseFlags(t, "-metrics", path)
	reg := c.Registry()
	if reg == nil {
		t.Fatal("-metrics should enable the registry")
	}
	reg.Counter("cli_total").Add(5)
	if err := c.Finish(io.Discard, io.Discard); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("snapshot is not JSON: %v\n%s", err, raw)
	}
	if doc.Counters["cli_total"] != 5 {
		t.Fatalf("snapshot = %+v", doc)
	}
}

func TestCLIFlagsMetricsPromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.prom")
	c := parseFlags(t, "-metrics", path)
	c.Registry().Counter("cli_total").Add(7)
	if err := c.Finish(io.Discard, io.Discard); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out := string(raw)
	if !strings.Contains(out, "# TYPE cli_total counter") || !strings.Contains(out, "cli_total 7") {
		t.Fatalf(".prom suffix did not select Prometheus exposition:\n%s", out)
	}
}

func TestCLIFlagsMetricsStdout(t *testing.T) {
	c := parseFlags(t, "-metrics", "-")
	c.Registry().Counter("cli_total").Add(9)
	var stdout bytes.Buffer
	if err := c.Finish(&stdout, io.Discard); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(stdout.Bytes(), &doc); err != nil {
		t.Fatalf("'-' should write JSON to stdout: %v\n%s", err, stdout.String())
	}
}

func TestCLIFlagsTrace(t *testing.T) {
	c := parseFlags(t, "-trace")
	reg := c.Registry()
	reg.StartSpan("cli.test").End()
	var stderr bytes.Buffer
	if err := c.Finish(io.Discard, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr.String(), "cli.test") {
		t.Fatalf("-trace output missing span:\n%s", stderr.String())
	}
}

// TestCLIFlagsPprofServer is the no-fixed-ports acceptance test: -pprof :0
// binds an ephemeral port, serves live /metrics and /debug/pprof/, and
// Finish tears it down.
func TestCLIFlagsPprofServer(t *testing.T) {
	c := parseFlags(t, "-pprof", "127.0.0.1:0", "-metrics", "-")
	c.Registry().Counter("served_total").Add(3)
	var stderr bytes.Buffer
	if err := c.Start(&stderr); err != nil {
		t.Fatal(err)
	}
	addr := c.ServerAddr()
	if addr == "" {
		t.Fatal("no bound address")
	}
	if !strings.Contains(stderr.String(), addr) {
		t.Fatalf("bound address not logged: %q vs\n%s", addr, stderr.String())
	}

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "served_total 3") {
		t.Fatalf("live /metrics: status %d body:\n%s", resp.StatusCode, body)
	}
	resp, err = http.Get("http://" + addr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status %d", resp.StatusCode)
	}

	var stdout bytes.Buffer
	if err := c.Finish(&stdout, io.Discard); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Fatal("server still reachable after Finish")
	}
	if !json.Valid(stdout.Bytes()) {
		t.Fatalf("-metrics - snapshot invalid after serving:\n%s", stdout.String())
	}
}
