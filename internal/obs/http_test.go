package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
}

// TestHTTPHandlerServesLiveMetrics proves the §acceptance requirement:
// GET /metrics serves the Prometheus exposition of the registry's LIVE
// state (scrapes during a run see current counters), /metrics.json the
// JSON snapshot, and /debug/pprof/ the profiler index — all without
// fixed ports (httptest binds ephemerally).
func TestHTTPHandlerServesLiveMetrics(t *testing.T) {
	r := New()
	c := r.Counter("live_total")
	c.Add(1)
	srv := httptest.NewServer(r.HTTPHandler())
	defer srv.Close()

	code, body, ctype := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content-type %q", ctype)
	}
	if !strings.Contains(body, "live_total 1") {
		t.Fatalf("/metrics missing series:\n%s", body)
	}

	// The handler must snapshot per request, not once.
	c.Add(41)
	_, body, _ = get(t, srv, "/metrics")
	if !strings.Contains(body, "live_total 42") {
		t.Fatalf("/metrics is stale:\n%s", body)
	}

	code, body, ctype = get(t, srv, "/metrics.json")
	if code != http.StatusOK || ctype != "application/json" {
		t.Fatalf("/metrics.json status %d content-type %q", code, ctype)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/metrics.json is not JSON: %v", err)
	}

	code, body, _ = get(t, srv, "/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ status %d", code)
	}
	code, _, _ = get(t, srv, "/debug/pprof/cmdline")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status %d", code)
	}
}

// TestHTTPHandlerNilRegistry: -pprof should work even when no metrics
// sink is configured; the endpoints serve empty snapshots.
func TestHTTPHandlerNilRegistry(t *testing.T) {
	var r *Registry
	srv := httptest.NewServer(r.HTTPHandler())
	defer srv.Close()
	code, _, _ := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics on nil registry: status %d", code)
	}
	code, body, _ := get(t, srv, "/metrics.json")
	if code != http.StatusOK {
		t.Fatalf("/metrics.json on nil registry: status %d", code)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatal(err)
	}
	code, _, _ = get(t, srv, "/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/ on nil registry: status %d", code)
	}
}
