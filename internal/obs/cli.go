package obs

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
)

// CLIFlags bundles the three observability flags every CLI exposes:
//
//	-metrics <path|->   write a metrics snapshot at exit (.prom selects
//	                    Prometheus text, anything else JSON; '-' writes
//	                    JSON to stdout)
//	-trace              print the span tree to stderr at exit
//	-pprof <addr>       serve /metrics, /metrics.json and /debug/pprof/
//	                    for the duration of the run (use :0 for an
//	                    ephemeral port; the bound address is logged)
//
// Usage: BindCLIFlags(fs) before fs.Parse; after parsing, Registry()
// returns the run's registry (nil when no flag was given, keeping the
// disabled fast path), Start() brings up the -pprof server, and
// Finish() writes the snapshot/trace and shuts the server down.
type CLIFlags struct {
	metricsPath string
	trace       bool
	pprofAddr   string

	reg  *Registry
	srv  *http.Server
	addr string
	done bool
}

// BindCLIFlags registers -metrics, -trace, and -pprof on fs.
func BindCLIFlags(fs *flag.FlagSet) *CLIFlags {
	c := &CLIFlags{}
	fs.StringVar(&c.metricsPath, "metrics", "",
		"write a metrics snapshot at exit: a path ending in .prom for Prometheus text exposition, any other path for JSON, '-' for JSON on stdout")
	fs.BoolVar(&c.trace, "trace", false,
		"print the span tree (per-stage wall-clock timings) to stderr at exit")
	fs.StringVar(&c.pprofAddr, "pprof", "",
		"serve GET /metrics, /metrics.json and /debug/pprof/ on this address (e.g. :6060, or :0 for an ephemeral port) during the run")
	return c
}

// Enabled reports whether any observability flag was given.
func (c *CLIFlags) Enabled() bool {
	return c != nil && (c.metricsPath != "" || c.trace || c.pprofAddr != "")
}

// Registry returns the run's registry, creating it on first call.
// Returns nil when no observability flag was given, so instrumented
// code stays on the branch-only disabled path.
func (c *CLIFlags) Registry() *Registry {
	if !c.Enabled() {
		return nil
	}
	if c.reg == nil {
		c.reg = New()
	}
	return c.reg
}

// Start brings up the -pprof HTTP server if requested, logging the
// bound address (meaningful with :0) to stderr.
func (c *CLIFlags) Start(stderr io.Writer) error {
	if c == nil || c.pprofAddr == "" {
		return nil
	}
	ln, err := net.Listen("tcp", c.pprofAddr)
	if err != nil {
		return fmt.Errorf("obs: -pprof listen: %w", err)
	}
	c.addr = ln.Addr().String()
	c.srv = &http.Server{Handler: c.Registry().HTTPHandler()}
	go func() { _ = c.srv.Serve(ln) }()
	fmt.Fprintf(stderr, "obs: serving /metrics and /debug/pprof/ on http://%s\n", c.addr)
	return nil
}

// ServerAddr returns the bound -pprof address ("" when not serving).
func (c *CLIFlags) ServerAddr() string {
	if c == nil {
		return ""
	}
	return c.addr
}

// Finish writes the -metrics snapshot and the -trace tree, then shuts
// the -pprof server down. stdout receives '-' snapshots; the trace goes
// to stderr.
//
// Finish is idempotent: the first call does the work, later calls are
// no-ops. CLIs exploit this by deferring Finish right after Start —
// when a run is cancelled mid-pipeline the deferred call still writes
// a partial snapshot (the counters flushed so far), while the normal
// exit path's explicit Finish keeps its error reporting.
func (c *CLIFlags) Finish(stdout, stderr io.Writer) error {
	if c == nil || c.done {
		return nil
	}
	c.done = true
	if c.srv != nil {
		_ = c.srv.Close()
		c.srv = nil
	}
	reg := c.Registry()
	if c.trace {
		if err := reg.WriteTrace(stderr); err != nil {
			return err
		}
	}
	if c.metricsPath == "" {
		return nil
	}
	if c.metricsPath == "-" {
		return reg.WriteJSON(stdout)
	}
	f, err := os.Create(c.metricsPath)
	if err != nil {
		return err
	}
	if strings.HasSuffix(c.metricsPath, ".prom") {
		err = reg.WritePrometheus(f)
	} else {
		err = reg.WriteJSON(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
