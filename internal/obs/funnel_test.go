package obs

import (
	"strings"
	"testing"
)

func pipelineShapedFunnel() *Funnel {
	f := NewFunnel("pipeline")
	geo := f.Stage("geolocate").DeclareReasons("no_city", "high_geo_err")
	geo.In(1000)
	geo.Drop("no_city", 50)
	geo.Drop("high_geo_err", 150)
	geo.Out(800)
	origin := f.Stage("origin").DeclareReasons("unmapped_ip")
	origin.In(800)
	origin.Drop("unmapped_ip", 80)
	origin.Out(720)
	cond := f.Stage("condition").DeclareReasons("small_as")
	cond.In(720)
	cond.Drop("small_as", 20)
	cond.Out(700)
	return f
}

func TestFunnelCheckPasses(t *testing.T) {
	if err := pipelineShapedFunnel().Check(); err != nil {
		t.Fatal(err)
	}
}

func TestFunnelCheckDetectsLeak(t *testing.T) {
	f := pipelineShapedFunnel()
	f.Stage("origin").Drop("unmapped_ip", 1) // in != out + drops now
	err := f.Check()
	if err == nil {
		t.Fatal("leaking stage not detected")
	}
	if !strings.Contains(err.Error(), "origin") {
		t.Fatalf("error does not name the leaking stage: %v", err)
	}
}

func TestFunnelCheckDetectsChainBreak(t *testing.T) {
	f := pipelineShapedFunnel()
	// A stage whose in does not equal the previous stage's out.
	s := f.Stage("extra")
	s.In(9999)
	s.Out(9999)
	err := f.Check()
	if err == nil {
		t.Fatal("chain break not detected")
	}
	if !strings.Contains(err.Error(), "chain") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestFunnelSummary(t *testing.T) {
	got := pipelineShapedFunnel().Summary()
	want := "1000 in -> 700 out; drops: no_city 50, high_geo_err 150, unmapped_ip 80, small_as 20"
	if got != want {
		t.Fatalf("summary = %q, want %q", got, want)
	}
	// Zero-count reasons are elided.
	f := NewFunnel("z")
	s := f.Stage("only").DeclareReasons("never_hit")
	s.In(5)
	s.Out(5)
	if got := f.Summary(); got != "5 in -> 5 out" {
		t.Fatalf("summary with zero drops = %q", got)
	}
	if got := (&Funnel{}).Summary(); got != "(empty funnel)" {
		t.Fatalf("empty funnel summary = %q", got)
	}
}

func TestFunnelDropsOrderIsDeclarationOrder(t *testing.T) {
	f := pipelineShapedFunnel()
	drops := f.Drops()
	wantOrder := []string{"no_city", "high_geo_err", "unmapped_ip", "small_as"}
	if len(drops) != len(wantOrder) {
		t.Fatalf("got %d drop rows, want %d", len(drops), len(wantOrder))
	}
	for i, w := range wantOrder {
		if drops[i].Reason != w {
			t.Fatalf("drop row %d = %q, want %q", i, drops[i].Reason, w)
		}
	}
}

func TestNilFunnelIsNoOp(t *testing.T) {
	var f *Funnel
	s := f.Stage("x")
	if s != nil {
		t.Fatal("nil funnel must return nil stages")
	}
	s.DeclareReasons("a").In(1)
	s.Out(1)
	s.Drop("a", 1)
	if s.InCount() != 0 || s.OutCount() != 0 || s.DropCount("a") != 0 || s.TotalDrops() != 0 {
		t.Fatal("nil stage should count nothing")
	}
	if err := f.Check(); err != nil {
		t.Fatal(err)
	}
	if f.Name() != "" || s.Name() != "" {
		t.Fatal("nil names should be empty")
	}
	if f.Stages() != nil || f.Drops() != nil {
		t.Fatal("nil funnel has no stages")
	}
}

func TestRegisterFunnelReplacesByName(t *testing.T) {
	r := New()
	f1 := NewFunnel("pipeline")
	f1.Stage("s").In(1)
	r.RegisterFunnel(f1)
	f2 := NewFunnel("pipeline")
	f2.Stage("s").In(2)
	r.RegisterFunnel(f2)
	snap := r.Snapshot()
	if len(snap.Funnels) != 1 {
		t.Fatalf("got %d funnels, want 1 (replacement by name)", len(snap.Funnels))
	}
	if snap.Funnels[0].Stages[0].In != 2 {
		t.Fatalf("registry kept the stale funnel: in = %d", snap.Funnels[0].Stages[0].In)
	}
}
