package obs

import (
	"math"
	"sort"
	"testing"
)

// TestHistogramBucketEdges pins the Prometheus le semantics: an
// observation exactly on a bound is INSIDE that bucket (v <= le), the
// next representable value above it is in the next bucket, and values
// beyond the last bound land in +Inf.
func TestHistogramBucketEdges(t *testing.T) {
	h := newHistogram("h", "", []float64{10, 20, 40})

	h.Observe(10)                     // exactly on bound 0 -> bucket 0
	h.Observe(math.Nextafter(10, 11)) // just above -> bucket 1
	h.Observe(20)                     // bound 1 -> bucket 1
	h.Observe(40)                     // bound 2 -> bucket 2
	h.Observe(40.000001)              // above the last bound -> +Inf bucket
	h.Observe(-5)                     // below everything -> bucket 0
	h.Observe(math.Inf(1))            // +Inf value -> +Inf bucket

	want := []int64{2, 2, 1, 2} // buckets 10, 20, 40, +Inf
	for i, w := range want {
		if got := h.BucketCount(i); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if got := h.Count(); got != 7 {
		t.Errorf("count = %d, want 7", got)
	}
}

func TestHistogramSumAndCount(t *testing.T) {
	h := newHistogram("h", "", []float64{1})
	for _, v := range []float64{0.25, 0.5, 2} {
		h.Observe(v)
	}
	if got := h.Sum(); got != 2.75 {
		t.Errorf("sum = %v, want 2.75", got)
	}
	if got := h.Count(); got != 3 {
		t.Errorf("count = %d, want 3", got)
	}
	if got := h.BucketCount(0); got != 2 {
		t.Errorf("bucket 0 = %d, want 2", got)
	}
	if got := h.BucketCount(1); got != 1 {
		t.Errorf("+Inf bucket = %d, want 1", got)
	}
	// Out-of-range bucket queries are zero, not panics.
	if got := h.BucketCount(99); got != 0 {
		t.Errorf("bucket 99 = %d, want 0", got)
	}
}

// TestPresetBuckets checks both presets are strictly ascending and that
// the paper's thresholds sit exactly on KmErrorBuckets boundaries, so
// the 100 km / 80 km / 40 km cuts are readable off the histogram.
func TestPresetBuckets(t *testing.T) {
	for name, bounds := range map[string][]float64{
		"latency": LatencyBuckets(),
		"km":      KmErrorBuckets(),
	} {
		if !sort.Float64sAreSorted(bounds) {
			t.Errorf("%s buckets are not ascending: %v", name, bounds)
		}
		seen := map[float64]bool{}
		for _, b := range bounds {
			if seen[b] {
				t.Errorf("%s buckets repeat %v", name, b)
			}
			seen[b] = true
		}
	}
	km := KmErrorBuckets()
	for _, threshold := range []float64{40, 80, 100} {
		found := false
		for _, b := range km {
			if b == threshold {
				found = true
			}
		}
		if !found {
			t.Errorf("paper threshold %v km is not a KmErrorBuckets boundary", threshold)
		}
	}
}

// TestHistogramBoundsImmutable proves registration-time bounds copying:
// mutating the caller's slice after registration must not change bucket
// assignment.
func TestHistogramBoundsImmutable(t *testing.T) {
	r := New()
	bounds := []float64{5, 10}
	h := r.Histogram("immutable", bounds)
	bounds[0] = 1000
	h.Observe(7)
	if got := h.BucketCount(1); got != 1 {
		t.Fatalf("observation landed in bucket %d; bounds were not copied", got)
	}
}
