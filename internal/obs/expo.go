package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Snapshot is a point-in-time copy of everything in a registry, with
// fully deterministic ordering: metric series sorted by name then
// rendered labels, funnels and their stages in declaration order, spans
// in creation order. Both exposition writers consume it.
type Snapshot struct {
	Counters   []SeriesInt
	Gauges     []SeriesFloat
	Histograms []HistSeries
	Funnels    []FunnelSnapshot
	Spans      []SpanSnapshot
}

// SeriesInt is one integer-valued metric series.
type SeriesInt struct {
	Name   string
	Labels string // rendered {k="v",...} or ""
	Value  int64
}

// SeriesFloat is one float-valued metric series.
type SeriesFloat struct {
	Name   string
	Labels string
	Value  float64
}

// HistSeries is one histogram series.
type HistSeries struct {
	Name   string
	Labels string
	Bounds []float64 // ascending upper bounds; +Inf implicit
	Counts []int64   // len(Bounds)+1, non-cumulative; last is +Inf
	Sum    float64
	Total  int64
	// Exemplars holds one entry per bucket (len(Counts)), nil where the
	// bucket has never carried an exemplar.
	Exemplars []*ExemplarSnapshot
}

// ExemplarSnapshot is the materialized form of a bucket's
// ExemplarSource at snapshot time.
type ExemplarSnapshot struct {
	TraceID string  `json:"trace_id"`
	Value   float64 `json:"value"`
}

// FunnelSnapshot mirrors one funnel.
type FunnelSnapshot struct {
	Name   string          `json:"-"`
	Stages []StageSnapshot `json:"stages"`
}

// StageSnapshot mirrors one funnel stage. Drops is keyed by reason
// (encoding/json sorts map keys, keeping the output deterministic).
type StageSnapshot struct {
	Name  string           `json:"name"`
	In    int64            `json:"in"`
	Out   int64            `json:"out"`
	Drops map[string]int64 `json:"drops,omitempty"`
}

// SpanSnapshot mirrors one span subtree.
type SpanSnapshot struct {
	Name       string         `json:"name"`
	DurationNS int64          `json:"duration_ns"` // -1 while open
	Children   []SpanSnapshot `json:"children,omitempty"`
}

// Snapshot copies the registry's current state. Returns the zero
// Snapshot on a nil registry.
func (r *Registry) Snapshot() Snapshot {
	var snap Snapshot
	if r == nil {
		return snap
	}
	r.mu.Lock()
	counters := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	hists := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hists = append(hists, h)
	}
	fnlOrder := make([]string, len(r.fnlOrder))
	copy(fnlOrder, r.fnlOrder)
	funnels := make(map[string]*Funnel, len(r.funnels))
	for k, v := range r.funnels {
		funnels[k] = v
	}
	roots := make([]*Span, len(r.spans))
	copy(roots, r.spans)
	r.mu.Unlock()

	for _, c := range counters {
		snap.Counters = append(snap.Counters, SeriesInt{Name: c.name, Labels: c.labels, Value: c.Value()})
	}
	sort.Slice(snap.Counters, func(i, j int) bool {
		a, b := snap.Counters[i], snap.Counters[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Labels < b.Labels
	})
	for _, g := range gauges {
		snap.Gauges = append(snap.Gauges, SeriesFloat{Name: g.name, Labels: g.labels, Value: g.Value()})
	}
	sort.Slice(snap.Gauges, func(i, j int) bool {
		a, b := snap.Gauges[i], snap.Gauges[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Labels < b.Labels
	})
	for _, h := range hists {
		hs := HistSeries{Name: h.name, Labels: h.labels, Sum: h.Sum(), Total: h.Count()}
		hs.Bounds = append(hs.Bounds, h.bounds...)
		hasExemplar := false
		for i := range h.counts {
			hs.Counts = append(hs.Counts, h.counts[i].Load())
			var es *ExemplarSnapshot
			if ex := h.BucketExemplar(i); ex != nil {
				es = &ExemplarSnapshot{TraceID: ex.ExemplarTraceID(), Value: ex.ExemplarValue()}
				hasExemplar = true
			}
			hs.Exemplars = append(hs.Exemplars, es)
		}
		if !hasExemplar {
			hs.Exemplars = nil
		}
		snap.Histograms = append(snap.Histograms, hs)
	}
	sort.Slice(snap.Histograms, func(i, j int) bool {
		a, b := snap.Histograms[i], snap.Histograms[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Labels < b.Labels
	})
	for _, name := range fnlOrder {
		f := funnels[name]
		fs := FunnelSnapshot{Name: name}
		for _, st := range f.Stages() {
			ss := StageSnapshot{Name: st.Name(), In: st.InCount(), Out: st.OutCount()}
			reasons := st.reasonNames()
			if len(reasons) > 0 {
				ss.Drops = make(map[string]int64, len(reasons))
				for _, reason := range reasons {
					ss.Drops[reason] = st.DropCount(reason)
				}
			}
			fs.Stages = append(fs.Stages, ss)
		}
		snap.Funnels = append(snap.Funnels, fs)
	}
	for _, s := range roots {
		snap.Spans = append(snap.Spans, snapshotSpan(s))
	}
	return snap
}

func snapshotSpan(s *Span) SpanSnapshot {
	out := SpanSnapshot{Name: s.name, DurationNS: -1}
	if d, ok := s.Duration(); ok {
		out.DurationNS = int64(d)
	}
	for _, c := range s.children() {
		out.Children = append(out.Children, snapshotSpan(c))
	}
	return out
}

// formatFloat renders a float the way Prometheus text exposition does.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the snapshot in Prometheus text exposition
// format (version 0.0.4): counters, gauges, histograms with cumulative
// le buckets, and the funnels as two synthetic counter families
// (eyeball_funnel_peers_total{funnel,stage,dir} and
// eyeball_funnel_drops_total{funnel,stage,reason}). Spans are not
// exported here — use -trace or the JSON snapshot.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.Snapshot().WritePrometheus(w)
}

// WritePrometheus renders the snapshot; see Registry.WritePrometheus.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	var b strings.Builder

	writeFamilyHeader := func(name, kind string, lastFamily *string) {
		if *lastFamily == name {
			return
		}
		*lastFamily = name
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, kind)
	}

	lastFam := ""
	for _, c := range s.Counters {
		writeFamilyHeader(c.Name, "counter", &lastFam)
		fmt.Fprintf(&b, "%s%s %d\n", c.Name, c.Labels, c.Value)
	}
	lastFam = ""
	for _, g := range s.Gauges {
		writeFamilyHeader(g.Name, "gauge", &lastFam)
		fmt.Fprintf(&b, "%s%s %s\n", g.Name, g.Labels, formatFloat(g.Value))
	}
	lastFam = ""
	for _, h := range s.Histograms {
		writeFamilyHeader(h.Name, "histogram", &lastFam)
		cum := int64(0)
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(&b, "%s_bucket%s %d%s\n", h.Name, mergeLE(h.Labels, formatFloat(bound)), cum, h.exemplarSuffix(i))
		}
		cum += h.Counts[len(h.Counts)-1]
		fmt.Fprintf(&b, "%s_bucket%s %d%s\n", h.Name, mergeLE(h.Labels, "+Inf"), cum, h.exemplarSuffix(len(h.Counts)-1))
		fmt.Fprintf(&b, "%s_sum%s %s\n", h.Name, h.Labels, formatFloat(h.Sum))
		fmt.Fprintf(&b, "%s_count%s %d\n", h.Name, h.Labels, h.Total)
	}

	if len(s.Funnels) > 0 {
		fmt.Fprintf(&b, "# TYPE eyeball_funnel_peers_total counter\n")
		for _, f := range s.Funnels {
			for _, st := range f.Stages {
				fmt.Fprintf(&b, "eyeball_funnel_peers_total{funnel=%q,stage=%q,dir=\"in\"} %d\n", f.Name, st.Name, st.In)
				fmt.Fprintf(&b, "eyeball_funnel_peers_total{funnel=%q,stage=%q,dir=\"out\"} %d\n", f.Name, st.Name, st.Out)
			}
		}
		fmt.Fprintf(&b, "# TYPE eyeball_funnel_drops_total counter\n")
		for _, f := range s.Funnels {
			for _, st := range f.Stages {
				reasons := make([]string, 0, len(st.Drops))
				for reason := range st.Drops {
					reasons = append(reasons, reason)
				}
				sort.Strings(reasons)
				for _, reason := range reasons {
					fmt.Fprintf(&b, "eyeball_funnel_drops_total{funnel=%q,stage=%q,reason=%q} %d\n",
						f.Name, st.Name, reason, st.Drops[reason])
				}
			}
		}
	}

	_, err := io.WriteString(w, b.String())
	return err
}

// exemplarSuffix renders bucket i's OpenMetrics exemplar —
// ` # {trace_id="…"} value` — or "" when the bucket has none, so
// expositions without exemplars are byte-identical to earlier releases.
func (h HistSeries) exemplarSuffix(i int) string {
	if i < 0 || i >= len(h.Exemplars) || h.Exemplars[i] == nil {
		return ""
	}
	ex := h.Exemplars[i]
	return fmt.Sprintf(" # {trace_id=%q} %s", ex.TraceID, formatFloat(ex.Value))
}

// mergeLE splices le="bound" into a rendered label set.
func mergeLE(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

// jsonHistogram is the JSON shape of one histogram: bucket bounds stay
// in numeric order (an array, not a map, so "10" never sorts before
// "2").
type jsonHistogram struct {
	Buckets []jsonBucket `json:"buckets"`
	Sum     float64      `json:"sum"`
	Count   int64        `json:"count"`
}

type jsonBucket struct {
	LE       string            `json:"le"`
	Count    int64             `json:"count"` // non-cumulative
	Exemplar *ExemplarSnapshot `json:"exemplar,omitempty"`
}

type jsonSnapshot struct {
	Counters   map[string]int64          `json:"counters,omitempty"`
	Gauges     map[string]float64        `json:"gauges,omitempty"`
	Histograms map[string]jsonHistogram  `json:"histograms,omitempty"`
	Funnels    map[string]FunnelSnapshot `json:"funnels,omitempty"`
	Spans      []SpanSnapshot            `json:"spans,omitempty"`
}

// WriteJSON renders the snapshot as deterministic, indented JSON: map
// keys are sorted by encoding/json, histogram buckets stay in numeric
// order, funnel stages and spans keep declaration/creation order. No
// timestamp is emitted — snapshots of identical metric state are
// byte-identical (golden-file friendly); only span durations and
// latency-histogram contents vary run to run.
func (r *Registry) WriteJSON(w io.Writer) error { return r.Snapshot().WriteJSON(w) }

// WriteJSON renders the snapshot; see Registry.WriteJSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	var out jsonSnapshot
	if len(s.Counters) > 0 {
		out.Counters = make(map[string]int64, len(s.Counters))
		for _, c := range s.Counters {
			out.Counters[c.Name+c.Labels] = c.Value
		}
	}
	if len(s.Gauges) > 0 {
		out.Gauges = make(map[string]float64, len(s.Gauges))
		for _, g := range s.Gauges {
			out.Gauges[g.Name+g.Labels] = g.Value
		}
	}
	if len(s.Histograms) > 0 {
		out.Histograms = make(map[string]jsonHistogram, len(s.Histograms))
		for _, h := range s.Histograms {
			jh := jsonHistogram{Sum: h.Sum, Count: h.Total}
			exemplarAt := func(i int) *ExemplarSnapshot {
				if i < len(h.Exemplars) {
					return h.Exemplars[i]
				}
				return nil
			}
			for i, bound := range h.Bounds {
				jh.Buckets = append(jh.Buckets, jsonBucket{LE: formatFloat(bound), Count: h.Counts[i], Exemplar: exemplarAt(i)})
			}
			jh.Buckets = append(jh.Buckets, jsonBucket{LE: "+Inf", Count: h.Counts[len(h.Counts)-1], Exemplar: exemplarAt(len(h.Counts) - 1)})
			out.Histograms[h.Name+h.Labels] = jh
		}
	}
	if len(s.Funnels) > 0 {
		out.Funnels = make(map[string]FunnelSnapshot, len(s.Funnels))
		for _, f := range s.Funnels {
			out.Funnels[f.Name] = f
		}
	}
	out.Spans = s.Spans
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
