// Package obs is the repository's zero-dependency observability layer:
// atomic counters and gauges, fixed-bucket histograms, monotonic span
// timers with parent/child nesting, and stage-by-stage funnel accounting,
// all collected in a Registry that snapshots to Prometheus text
// exposition format and deterministic JSON.
//
// Design constraints (carried over from the parallel worker pool and the
// compiled LPM engine, see DESIGN.md "Observability"):
//
//   - Instrumentation is a read-only side channel. Nothing in this
//     package influences dataset bytes: pipeline and KDE outputs are
//     bit-identical with metrics enabled or disabled, for every worker
//     count. Only *timing* observations (span durations, latency
//     histograms) vary run to run.
//
//   - A nil Registry is the disabled state and must cost near-zero on
//     hot paths. Every method on a nil *Registry, *Counter, *Gauge,
//     *Histogram, and *Span is a safe no-op guarded by a single branch
//     and performs no allocation (verified by testing.AllocsPerRun).
//     Instrumented code therefore holds possibly-nil handles and calls
//     them unconditionally.
//
//   - Per-item counters on nanosecond-scale hot loops (the compiled
//     LPM's ~6 ns OriginOf) are never incremented per call. Callers
//     accumulate block-local deltas and flush one atomic add per work
//     block (shard-aggregated counting), or derive counts from
//     aggregation state after the loop.
package obs

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; a nil *Counter is a no-op.
type Counter struct {
	name   string
	labels string // rendered {k="v",...} or ""
	v      atomic.Int64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 gauge. A nil *Gauge is a no-op.
type Gauge struct {
	name   string
	labels string
	bits   atomic.Uint64
}

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add atomically adds d to the gauge.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		val := math.Float64frombits(old) + d
		if g.bits.CompareAndSwap(old, math.Float64bits(val)) {
			return
		}
	}
}

// SetMax raises the gauge to v if v exceeds the current value — a
// monotone high-watermark, safe under concurrent publishers (the
// streaming pipeline uses it for peak live-sample and dedup-set
// gauges). No-op on a nil receiver.
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value (0 for a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Registry collects every metric, span, and funnel of one run. The zero
// value is not usable — construct with New. A nil *Registry disables all
// instrumentation: every method is a safe, allocation-free no-op.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funnels  map[string]*Funnel
	fnlOrder []string
	spans    []*Span // root spans, in creation order, capped at maxRootSpans
	dropped  int64   // root spans not retained once the cap was hit
	now      func() time.Time
}

// New returns an empty, enabled registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		funnels:  make(map[string]*Funnel),
		now:      time.Now,
	}
}

// SetClock replaces the registry's time source (tests only; the default
// is time.Now).
func (r *Registry) SetClock(now func() time.Time) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.now = now
	r.mu.Unlock()
}

func (r *Registry) clock() time.Time {
	r.mu.Lock()
	now := r.now
	r.mu.Unlock()
	return now()
}

// seriesKey renders name plus sorted label pairs into the canonical
// series identity (and the Prometheus series syntax).
func seriesKey(name string, labels []string) (key, rendered string) {
	if len(labels) == 0 {
		return name, ""
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(labels)/2)
	for i := 0; i+1 < len(labels); i += 2 {
		kvs = append(kvs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range kvs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	rendered = b.String()
	return name + rendered, rendered
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// Counter returns (registering on first use) the counter with the given
// name and optional label key/value pairs. Returns nil on a nil
// registry.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	key, rendered := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[key]; ok {
		return c
	}
	c := &Counter{name: name, labels: rendered}
	r.counters[key] = c
	return c
}

// Gauge returns (registering on first use) the gauge with the given name
// and optional label key/value pairs. Returns nil on a nil registry.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	key, rendered := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[key]; ok {
		return g
	}
	g := &Gauge{name: name, labels: rendered}
	r.gauges[key] = g
	return g
}

// Histogram returns (registering on first use) the fixed-bucket
// histogram with the given name, bucket upper bounds (ascending; +Inf is
// implicit), and optional label pairs. Returns nil on a nil registry.
// Bounds are fixed at first registration; later calls with the same name
// and labels return the existing histogram regardless of bounds.
func (r *Registry) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	key, rendered := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[key]; ok {
		return h
	}
	h := newHistogram(name, rendered, bounds)
	r.hists[key] = h
	return h
}

// RegisterFunnel attaches a funnel to the registry for exposition,
// replacing any previously registered funnel with the same name (each
// pipeline run builds a fresh funnel; the registry exports the most
// recent one). No-op on a nil registry or nil funnel.
func (r *Registry) RegisterFunnel(f *Funnel) {
	if r == nil || f == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, exists := r.funnels[f.name]; !exists {
		r.fnlOrder = append(r.fnlOrder, f.name)
	}
	r.funnels[f.name] = f
}
