package obs

import (
	"bytes"
	"testing"
)

// fixtureTree is one forest exercising every TreeNode feature: attrs,
// events, nesting, an open span, and sibling roots.
func fixtureTree() []TreeNode {
	return []TreeNode{
		{
			Name:  "serve.footprint",
			DurNS: 12_345_000,
			Attrs: []TreeAttr{
				{Key: "route", Val: "footprint"},
				{Key: "status", Val: "200"},
			},
			Children: []TreeNode{
				{
					Name:  "kde.estimate",
					DurNS: 9_000_000,
					Attrs: []TreeAttr{{Key: "samples", Val: "300"}},
					Events: []TreeEvent{
						{Name: "cache_miss", AtNS: 1_000_000},
					},
					Children: []TreeNode{
						{Name: "blur_horizontal", DurNS: 4_000_000},
						{Name: "blur_vertical", DurNS: 3_500_000},
					},
				},
			},
		},
		{Name: "still.open", DurNS: -1},
	}
}

// TestGoldenTreeText pins the text rendering of the shared span-tree
// encoder byte-for-byte: padding, (open) markers, [k=v] attrs, and
// "@ event +offset" lines.
func TestGoldenTreeText(t *testing.T) {
	var b bytes.Buffer
	if err := WriteTree(&b, fixtureTree()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "tree.txt", b.Bytes())
}

// TestGoldenTreeJSON pins the JSON rendering — the exact bytes
// /debug/trace/{id}, the flight recorder listing, and eyeballpipe
// -trace-out share via EncodeJSON.
func TestGoldenTreeJSON(t *testing.T) {
	var b bytes.Buffer
	if err := WriteTreeJSON(&b, fixtureTree()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "tree.json", b.Bytes())
}

// TestTreeRendersAreStable renders the fixture twice through each
// encoder and requires byte equality.
func TestTreeRendersAreStable(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteTree(&a, fixtureTree()); err != nil {
		t.Fatal(err)
	}
	if err := WriteTree(&b, fixtureTree()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two text renders of the same tree differ")
	}
	a.Reset()
	b.Reset()
	if err := WriteTreeJSON(&a, fixtureTree()); err != nil {
		t.Fatal(err)
	}
	if err := WriteTreeJSON(&b, fixtureTree()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two JSON renders of the same tree differ")
	}
}

// TestWriteTraceMatchesTree proves Registry.WriteTrace is the shared
// encoder applied to Registry.TraceTree — the factoring the flight
// recorder depends on.
func TestWriteTraceMatchesTree(t *testing.T) {
	r := New()
	r.SetClock(pinnedClock())
	root := r.StartSpan("pipeline.build")
	root.Child("locate").End()
	root.End()

	var direct, viaTree bytes.Buffer
	if err := r.WriteTrace(&direct); err != nil {
		t.Fatal(err)
	}
	if err := WriteTree(&viaTree, r.TraceTree()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(direct.Bytes(), viaTree.Bytes()) {
		t.Fatalf("WriteTrace diverged from WriteTree over TraceTree:\n--- WriteTrace ---\n%s--- WriteTree ---\n%s",
			direct.String(), viaTree.String())
	}
}
