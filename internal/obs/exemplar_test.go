package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// fakeExemplar is a test stand-in for *trace.Span.
type fakeExemplar struct {
	id string
	v  float64
}

func (f *fakeExemplar) ExemplarTraceID() string { return f.id }
func (f *fakeExemplar) ExemplarValue() float64  { return f.v }

func TestObserveExemplarCountsLikeObserve(t *testing.T) {
	r := New()
	h := r.Histogram("e_test", []float64{1, 10})
	h.ObserveExemplar(0.5, &fakeExemplar{id: "aa", v: 0.5})
	h.ObserveExemplar(5, nil) // nil exemplar = plain Observe
	h.Observe(100)
	if h.Count() != 3 || h.Sum() != 105.5 {
		t.Fatalf("count=%d sum=%v, want 3/105.5", h.Count(), h.Sum())
	}
	if h.BucketCount(0) != 1 || h.BucketCount(1) != 1 || h.BucketCount(2) != 1 {
		t.Fatal("bucket routing differs between Observe and ObserveExemplar")
	}
	if ex := h.BucketExemplar(0); ex == nil || ex.ExemplarTraceID() != "aa" {
		t.Fatalf("bucket 0 exemplar = %v", ex)
	}
	if h.BucketExemplar(1) != nil {
		t.Fatal("nil exemplar observation attached an exemplar")
	}
	if h.BucketExemplar(-1) != nil || h.BucketExemplar(99) != nil {
		t.Fatal("out-of-range BucketExemplar not nil")
	}
}

func TestExemplarLastWriterWins(t *testing.T) {
	r := New()
	h := r.Histogram("e_test", []float64{1})
	h.ObserveExemplar(0.5, &fakeExemplar{id: "old", v: 0.5})
	h.ObserveExemplar(0.7, &fakeExemplar{id: "new", v: 0.7})
	if got := h.BucketExemplar(0).ExemplarTraceID(); got != "new" {
		t.Fatalf("bucket exemplar = %q, want the newest", got)
	}
}

func TestPrometheusExemplarSuffix(t *testing.T) {
	r := New()
	h := r.Histogram("e_latency", []float64{0.1, 1})
	h.ObserveExemplar(0.05, &fakeExemplar{id: "0af7651916cd43dd8448eb211c80319c", v: 0.05})
	h.Observe(0.5)  // no exemplar on this bucket
	h.Observe(42.0) // +Inf bucket, no exemplar
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	want := `e_latency_bucket{le="0.1"} 1 # {trace_id="0af7651916cd43dd8448eb211c80319c"} 0.05`
	if !strings.Contains(out, want+"\n") {
		t.Fatalf("exposition missing exemplar line %q:\n%s", want, out)
	}
	// Buckets without exemplars keep the pre-exemplar format exactly.
	for _, plain := range []string{
		`e_latency_bucket{le="1"} 2` + "\n",
		`e_latency_bucket{le="+Inf"} 3` + "\n",
	} {
		if !strings.Contains(out, plain) {
			t.Fatalf("exposition missing plain bucket %q:\n%s", plain, out)
		}
	}
}

func TestJSONExemplar(t *testing.T) {
	r := New()
	h := r.Histogram("e_latency", []float64{0.1})
	h.ObserveExemplar(0.05, &fakeExemplar{id: "deadbeef", v: 0.05})
	var b bytes.Buffer
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Histograms map[string]struct {
			Buckets []struct {
				LE       string `json:"le"`
				Count    int64  `json:"count"`
				Exemplar *struct {
					TraceID string  `json:"trace_id"`
					Value   float64 `json:"value"`
				} `json:"exemplar"`
			} `json:"buckets"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	bk := doc.Histograms["e_latency"].Buckets
	if len(bk) != 2 {
		t.Fatalf("buckets = %d, want 2", len(bk))
	}
	if bk[0].Exemplar == nil || bk[0].Exemplar.TraceID != "deadbeef" || bk[0].Exemplar.Value != 0.05 {
		t.Fatalf("bucket 0 exemplar = %+v", bk[0].Exemplar)
	}
	if bk[1].Exemplar != nil {
		t.Fatal("empty bucket grew an exemplar in JSON")
	}
}

// TestExpositionsUnchangedWithoutExemplars proves a histogram fed via
// ObserveExemplar with nil sources renders byte-identically to one fed
// via Observe — so the feature's existence costs nothing in output
// until a real exemplar arrives (and the PR 3/7 golden files stay
// valid).
func TestExpositionsUnchangedWithoutExemplars(t *testing.T) {
	build := func(withExemplarCalls bool) *Registry {
		r := New()
		h := r.Histogram("e_test", []float64{1, 10})
		for _, v := range []float64{0.5, 5, 100} {
			if withExemplarCalls {
				h.ObserveExemplar(v, nil)
			} else {
				h.Observe(v)
			}
		}
		return r
	}
	var plain, viaExemplar bytes.Buffer
	if err := build(false).WritePrometheus(&plain); err != nil {
		t.Fatal(err)
	}
	if err := build(true).WritePrometheus(&viaExemplar); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain.Bytes(), viaExemplar.Bytes()) {
		t.Fatal("Prometheus exposition changed with exemplar-free ObserveExemplar")
	}
	plain.Reset()
	viaExemplar.Reset()
	if err := build(false).WriteJSON(&plain); err != nil {
		t.Fatal(err)
	}
	if err := build(true).WriteJSON(&viaExemplar); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain.Bytes(), viaExemplar.Bytes()) {
		t.Fatal("JSON snapshot changed with exemplar-free ObserveExemplar")
	}
}

func TestNilHistogramExemplarOps(t *testing.T) {
	var h *Histogram
	h.ObserveExemplar(1, &fakeExemplar{id: "x", v: 1}) // must not panic
	if h.BucketExemplar(0) != nil {
		t.Fatal("nil histogram returned an exemplar")
	}
	if n := testing.AllocsPerRun(1000, func() {
		h.ObserveExemplar(1, nil)
		h.BucketExemplar(0)
	}); n != 0 {
		t.Fatalf("nil histogram exemplar ops allocate %.1f/op, want 0", n)
	}
}
