package obs

import (
	"math"
	"sync/atomic"
)

// Histogram is a fixed-bucket histogram with Prometheus bucket
// semantics: an observation v lands in the first bucket whose upper
// bound satisfies v <= le; values above the last bound land in the
// implicit +Inf bucket. Counts and the running sum are atomics, so
// concurrent Observe calls are safe; totals are order-independent and
// therefore deterministic for a deterministic set of observations (the
// float64 sum is accumulated by CAS, so its low bits may depend on
// observation order — dataset bytes never consume it).
//
// A nil *Histogram is a no-op.
type Histogram struct {
	name    string
	labels  string
	bounds  []float64 // ascending upper bounds, +Inf implicit
	counts  []atomic.Int64
	total   atomic.Int64
	sumBits atomic.Uint64
	// exemplars[i] holds the most recent ExemplarSource observed into
	// bucket i, or a nil-valued atomic before the first one.
	exemplars []atomic.Value
}

// ExemplarSource is a reference an observation can attach to the bucket
// it lands in — typically the request trace whose latency was observed,
// so an operator can jump from a latency bucket straight to the exact
// request that landed there. Storing the source is a single atomic
// pointer write (no allocation on the hot path); the hex ID and value
// are only materialized at exposition time.
//
// Contract: ExemplarValue must return the value that was observed, and
// every source observed into one histogram must share one concrete type
// (atomic.Value requires it; in practice this is always *trace.Span).
type ExemplarSource interface {
	// ExemplarTraceID returns the hex trace ID the exemplar points at.
	ExemplarTraceID() string
	// ExemplarValue returns the observed value the exemplar represents.
	ExemplarValue() float64
}

func newHistogram(name, labels string, bounds []float64) *Histogram {
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	return &Histogram{
		name:      name,
		labels:    labels,
		bounds:    bs,
		counts:    make([]atomic.Int64, len(bs)+1),
		exemplars: make([]atomic.Value, len(bs)+1),
	}
}

// bucketOf returns the index of the first bucket whose upper bound
// admits v; len(bounds) addresses the implicit +Inf bucket.
func (h *Histogram) bucketOf(v float64) int {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	return i
}

// Observe records one value. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.observe(h.bucketOf(v), v)
}

func (h *Histogram) observe(bucket int, v float64) {
	h.counts[bucket].Add(1)
	h.total.Add(1)
	for {
		old := h.sumBits.Load()
		val := math.Float64frombits(old) + v
		if h.sumBits.CompareAndSwap(old, math.Float64bits(val)) {
			return
		}
	}
}

// ObserveExemplar records one value and attaches ex as the bucket's
// exemplar (last writer wins). A nil ex is equivalent to Observe; a nil
// receiver is a no-op.
func (h *Histogram) ObserveExemplar(v float64, ex ExemplarSource) {
	if h == nil {
		return
	}
	i := h.bucketOf(v)
	h.observe(i, v)
	if ex != nil {
		h.exemplars[i].Store(ex)
	}
}

// BucketExemplar returns the current exemplar of bucket i, or nil.
func (h *Histogram) BucketExemplar(i int) ExemplarSource {
	if h == nil || i < 0 || i >= len(h.exemplars) {
		return nil
	}
	ex, _ := h.exemplars[i].Load().(ExemplarSource)
	return ex
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(seconds float64) { h.Observe(seconds) }

// Count returns the number of observations (0 for a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Sum returns the sum of all observed values (0 for a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// BucketCount returns the non-cumulative count of bucket i, where
// i == len(bounds) addresses the +Inf bucket.
func (h *Histogram) BucketCount(i int) int64 {
	if h == nil || i < 0 || i >= len(h.counts) {
		return 0
	}
	return h.counts[i].Load()
}

// LatencyBuckets returns the preset bucket bounds for wall-clock
// latencies, in seconds: 100 µs to 30 s, roughly logarithmic.
func LatencyBuckets() []float64 {
	return []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
		0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
	}
}

// KmErrorBuckets returns the preset bucket bounds for geolocation-error
// style distances, in kilometres. The paper's thresholds (100 km
// per-peer, 80 km per-AS P90, the 40 km kernel bandwidth) sit on bucket
// boundaries so threshold sensitivity reads directly off the histogram.
func KmErrorBuckets() []float64 {
	return []float64{1, 2, 5, 10, 20, 40, 60, 80, 100, 150, 200, 500, 1000}
}
