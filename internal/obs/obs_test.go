package obs

import (
	"sync"
	"testing"
)

func TestCounterRegistryIdentity(t *testing.T) {
	r := New()
	a := r.Counter("x_total")
	b := r.Counter("x_total")
	if a != b {
		t.Fatal("same name should return the same counter")
	}
	a.Add(2)
	b.Inc()
	if got := r.Counter("x_total").Value(); got != 3 {
		t.Fatalf("value = %d, want 3", got)
	}
}

func TestLabelOrderCanonical(t *testing.T) {
	r := New()
	a := r.Counter("y_total", "b", "2", "a", "1")
	b := r.Counter("y_total", "a", "1", "b", "2")
	if a != b {
		t.Fatal("label order must not create distinct series")
	}
	if a.labels != `{a="1",b="2"}` {
		t.Fatalf("labels rendered %q, want sorted", a.labels)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := New()
	c := r.Counter("z_total", "k", "a\"b\\c\nd")
	want := `{k="a\"b\\c\nd"}`
	if c.labels != want {
		t.Fatalf("labels = %q, want %q", c.labels, want)
	}
}

func TestGauge(t *testing.T) {
	r := New()
	g := r.Gauge("g")
	g.Set(2.5)
	g.Add(1.5)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %v, want 4", got)
	}
}

// TestGaugeSetMax: SetMax ratchets monotonically — lower values never
// move the gauge, higher ones do, and a nil gauge is a no-op (the
// streaming pipeline publishes its peak watermarks through this).
func TestGaugeSetMax(t *testing.T) {
	r := New()
	g := r.Gauge("peak")
	g.SetMax(5)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %v, want 5", got)
	}
	g.SetMax(3)
	if got := g.Value(); got != 5 {
		t.Fatalf("SetMax(3) lowered the gauge to %v", got)
	}
	g.SetMax(9.5)
	if got := g.Value(); got != 9.5 {
		t.Fatalf("gauge = %v, want 9.5", got)
	}
	var nilG *Gauge
	nilG.SetMax(1) // must not panic
}

// TestNilRegistryIsNoOp proves the disabled state: every handle off a nil
// registry is nil and every method on it is a safe no-op.
func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("a")
	g := r.Gauge("b")
	h := r.Histogram("c", LatencyBuckets())
	s := r.StartSpan("d")
	if c != nil || g != nil || h != nil || s != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	c.Add(1)
	c.Inc()
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	s.Child("x").End()
	s.End()
	if _, ok := s.Duration(); ok {
		t.Fatal("nil span should not report a duration")
	}
	r.RegisterFunnel(NewFunnel("f"))
	r.SetClock(nil)
	if err := r.WriteTrace(nil); err != nil {
		t.Fatal(err)
	}
	if got := r.Snapshot(); len(got.Counters) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
	if got := c.Value(); got != 0 {
		t.Fatalf("nil counter value = %d", got)
	}
}

// TestDisabledPathAllocationFree is the acceptance criterion for the
// disabled state: instrumentation calls through nil handles must not
// allocate.
func TestDisabledPathAllocationFree(t *testing.T) {
	var r *Registry
	var c *Counter
	var g *Gauge
	var h *Histogram
	var s *Span
	var st *Stage
	if n := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		g.Set(2)
		h.Observe(3)
		s.End()
		st.In(1)
		st.Drop("x", 1)
	}); n != 0 {
		t.Fatalf("disabled handles allocated %.1f allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		s2 := r.StartSpan("x")
		s2.Child("y")
		s2.End()
	}); n != 0 {
		t.Fatalf("nil-registry span path allocated %.1f allocs/op, want 0", n)
	}
}

// TestConcurrentCounters exercises every atomic under the race detector.
func TestConcurrentCounters(t *testing.T) {
	r := New()
	c := r.Counter("conc_total")
	g := r.Gauge("conc_gauge")
	h := r.Histogram("conc_hist", []float64{1, 2, 3})
	f := NewFunnel("conc")
	st := f.Stage("s").DeclareReasons("r")
	r.RegisterFunnel(f)

	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 4))
				st.In(1)
				if i%2 == 0 {
					st.Drop("r", 1)
				} else {
					st.Out(1)
				}
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := g.Value(); got != workers*per {
		t.Fatalf("gauge = %v, want %d", got, workers*per)
	}
	if got := h.Count(); got != workers*per {
		t.Fatalf("histogram count = %d, want %d", got, workers*per)
	}
	if err := f.Check(); err != nil {
		t.Fatalf("funnel invariant violated after concurrent accounting: %v", err)
	}
}
