package obs

import "testing"

// The disabled-path benchmarks pin the "near-zero when off" guarantee:
// every nil-receiver call must be branch-only (sub-nanosecond, zero
// allocations). The enabled paths show the real cost callers pay when a
// registry is installed — a single atomic RMW for counters, one atomic
// plus a branch scan for histograms.

func BenchmarkCounterIncEnabled(b *testing.B) {
	c := New().Counter("bench_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncDisabled(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserveEnabled(b *testing.B) {
	h := New().Histogram("bench_seconds", LatencyBuckets())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.003)
	}
}

func BenchmarkHistogramObserveDisabled(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.003)
	}
}

func BenchmarkSpanStartEndEnabled(b *testing.B) {
	r := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.StartSpan("bench.span").End()
	}
}

func BenchmarkSpanStartEndDisabled(b *testing.B) {
	var r *Registry
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.StartSpan("bench.span").End()
	}
}

func BenchmarkFunnelStageDisabled(b *testing.B) {
	var st *Stage
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st.In(1)
		st.Drop("reason", 1)
		st.Out(1)
	}
}
