package obs

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// Funnel formalizes stage-by-stage in/out/drop-reason accounting — the
// paper's methodology in miniature: 89.1M crawled IPs conditioned down
// to 48M usable users (§2, Table 1), with every threshold deciding where
// observations die.
//
// A Funnel is standalone: it works without a Registry (the pipeline
// always builds one so Dataset.Drops and the CLI summary exist even with
// metrics disabled) and is attached for exposition via
// Registry.RegisterFunnel. Stage counters are atomics, so concurrent
// accounting is safe; the pipeline accumulates per-peer deltas locally
// in its serial aggregation loop and flushes them in one call per
// reason, keeping the hot path free of per-item atomics.
//
// Conservation invariant, checked by Check and the CI jq step: for every
// stage, in == out + Σ drops; and each stage's in equals the previous
// stage's out.
type Funnel struct {
	name   string
	mu     sync.Mutex
	stages []*Stage
}

// NewFunnel creates a named funnel.
func NewFunnel(name string) *Funnel { return &Funnel{name: name} }

// Name returns the funnel's name ("" for nil).
func (f *Funnel) Name() string {
	if f == nil {
		return ""
	}
	return f.name
}

// Stage returns (creating on first use, in declaration order) the named
// stage. Returns nil on a nil funnel.
func (f *Funnel) Stage(name string) *Stage {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, s := range f.stages {
		if s.name == name {
			return s
		}
	}
	s := &Stage{name: name, drops: make(map[string]*atomic.Int64)}
	f.stages = append(f.stages, s)
	return s
}

// Stages returns the stages in declaration order.
func (f *Funnel) Stages() []*Stage {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*Stage, len(f.stages))
	copy(out, f.stages)
	return out
}

// Check verifies the conservation invariant: per stage in == out + Σ
// drops, and chain continuity (stage[i+1].in == stage[i].out). It
// returns the first violation, or nil.
func (f *Funnel) Check() error {
	if f == nil {
		return nil
	}
	stages := f.Stages()
	for i, s := range stages {
		in, out, drops := s.InCount(), s.OutCount(), s.TotalDrops()
		if in != out+drops {
			return fmt.Errorf("obs: funnel %q stage %q leaks: in=%d out=%d drops=%d (in != out+drops)",
				f.name, s.name, in, out, drops)
		}
		if i > 0 {
			if prev := stages[i-1].OutCount(); in != prev {
				return fmt.Errorf("obs: funnel %q stage %q breaks the chain: in=%d but %q out=%d",
					f.name, s.name, in, stages[i-1].name, prev)
			}
		}
	}
	return nil
}

// DropCount is one (stage, reason, count) drop row.
type DropCount struct {
	Stage  string
	Reason string
	Count  int64
}

// Drops returns every non-structural drop row in stage/declaration
// order (including zero counts for pre-declared reasons).
func (f *Funnel) Drops() []DropCount {
	var out []DropCount
	for _, s := range f.Stages() {
		for _, reason := range s.reasonNames() {
			out = append(out, DropCount{Stage: s.name, Reason: reason, Count: s.DropCount(reason)})
		}
	}
	return out
}

// Summary renders the funnel as one line:
//
//	12000 in -> 8321 out; drops: high_geo_err 2103, unmapped_ip 940, ...
//
// Zero-count reasons are elided.
func (f *Funnel) Summary() string {
	stages := f.Stages()
	if len(stages) == 0 {
		return "(empty funnel)"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d in -> %d out", stages[0].InCount(), stages[len(stages)-1].OutCount())
	var drops []string
	for _, d := range f.Drops() {
		if d.Count > 0 {
			drops = append(drops, fmt.Sprintf("%s %d", d.Reason, d.Count))
		}
	}
	if len(drops) > 0 {
		b.WriteString("; drops: ")
		b.WriteString(strings.Join(drops, ", "))
	}
	return b.String()
}

// Stage is one funnel stage. All methods are nil-safe no-ops.
type Stage struct {
	name    string
	in, out atomic.Int64
	mu      sync.Mutex
	reasons []string
	drops   map[string]*atomic.Int64
}

// Name returns the stage name ("" for nil).
func (s *Stage) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// DeclareReasons pre-registers drop reasons so exposition order is fixed
// even when a run never exercises a reason.
func (s *Stage) DeclareReasons(reasons ...string) *Stage {
	if s == nil {
		return nil
	}
	for _, r := range reasons {
		s.reason(r)
	}
	return s
}

// In adds n observations entering the stage.
func (s *Stage) In(n int) {
	if s == nil {
		return
	}
	s.in.Add(int64(n))
}

// Out adds n observations surviving the stage.
func (s *Stage) Out(n int) {
	if s == nil {
		return
	}
	s.out.Add(int64(n))
}

// Drop adds n observations dropped for the given reason.
func (s *Stage) Drop(reason string, n int) {
	if s == nil {
		return
	}
	s.reason(reason).Add(int64(n))
}

func (s *Stage) reason(name string) *atomic.Int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.drops[name]; ok {
		return c
	}
	c := new(atomic.Int64)
	s.drops[name] = c
	s.reasons = append(s.reasons, name)
	return c
}

func (s *Stage) reasonNames() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.reasons))
	copy(out, s.reasons)
	return out
}

// InCount returns the stage's in count.
func (s *Stage) InCount() int64 {
	if s == nil {
		return 0
	}
	return s.in.Load()
}

// OutCount returns the stage's out count.
func (s *Stage) OutCount() int64 {
	if s == nil {
		return 0
	}
	return s.out.Load()
}

// DropCount returns the count for one drop reason.
func (s *Stage) DropCount(reason string) int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	c, ok := s.drops[reason]
	s.mu.Unlock()
	if !ok {
		return 0
	}
	return c.Load()
}

// TotalDrops sums all drop reasons.
func (s *Stage) TotalDrops() int64 {
	if s == nil {
		return 0
	}
	var total int64
	for _, r := range s.reasonNames() {
		total += s.DropCount(r)
	}
	return total
}
