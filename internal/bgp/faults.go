package bgp

import (
	"eyeballas/internal/astopo"
	"eyeballas/internal/faults"
	"eyeballas/internal/ipnet"
)

// WithFaults wraps a Resolver with the plan's origin-miss injector:
// lookups at hit IPs answer "no matching prefix", modelling an
// incomplete RIB (a table missing the covering prefix for part of the
// address space). Decisions are keyed by the IP, so the same plan
// always loses the same addresses regardless of lookup order or worker
// count.
//
// When the inner resolver also implements CheckedResolver the wrapper
// does too, forwarding errors unchanged, so the pipeline's type
// assertion keeps working through the wrap. A nil plan or a zero
// origin-miss rate returns the inner resolver unchanged — zero faults
// is the literal same Resolver.
func WithFaults(r Resolver, plan *faults.Plan) Resolver {
	inj := plan.Injector(faults.OriginMiss)
	if inj == nil {
		return r
	}
	f := &faultyResolver{inner: r, miss: inj}
	if cr, ok := r.(CheckedResolver); ok {
		return &checkedFaultyResolver{faultyResolver: f, checked: cr}
	}
	return f
}

// faultyResolver injects origin-lookup misses in front of an infallible
// resolver.
type faultyResolver struct {
	inner Resolver
	miss  *faults.Injector
}

func (f *faultyResolver) OriginOf(a ipnet.Addr) (astopo.ASN, bool) {
	if f.miss.Hit(uint64(a)) {
		return 0, false
	}
	return f.inner.OriginOf(a)
}

// checkedFaultyResolver additionally forwards the checked path, so a
// wrapped CheckedResolver still surfaces lookup errors.
type checkedFaultyResolver struct {
	*faultyResolver
	checked CheckedResolver
}

func (f *checkedFaultyResolver) OriginOfChecked(a ipnet.Addr) (astopo.ASN, bool, error) {
	if f.miss.Hit(uint64(a)) {
		return 0, false, nil
	}
	return f.checked.OriginOfChecked(a)
}
