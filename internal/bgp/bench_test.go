package bgp

import (
	"sync"
	"testing"

	"eyeballas/internal/astopo"
	"eyeballas/internal/ipnet"
	"eyeballas/internal/obs"
)

var benchWorld struct {
	once sync.Once
	w    *astopo.World
	r    *Routing
	rib  *RIB
	err  error
}

func benchSetup(b *testing.B) (*astopo.World, *Routing, *RIB) {
	b.Helper()
	benchWorld.once.Do(func() {
		w, err := astopo.Generate(astopo.SmallConfig(9001))
		if err != nil {
			benchWorld.err = err
			return
		}
		r := ComputeRouting(w)
		rib, err := BuildRIB(w, r, w.ASNs()[0])
		if err != nil {
			benchWorld.err = err
			return
		}
		benchWorld.w, benchWorld.r, benchWorld.rib = w, r, rib
	})
	if benchWorld.err != nil {
		b.Fatal(benchWorld.err)
	}
	return benchWorld.w, benchWorld.r, benchWorld.rib
}

func BenchmarkComputeRouting(b *testing.B) {
	w, _, _ := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComputeRouting(w)
	}
}

func BenchmarkBuildRIB(b *testing.B) {
	w, r, _ := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildRIB(w, r, w.ASNs()[0]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOriginLookup(b *testing.B) {
	w, _, rib := benchSetup(b)
	a := w.Eyeballs()[0]
	probe := a.Prefixes[0].Nth(12345)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := rib.OriginOf(probe); !ok {
			b.Fatal("miss")
		}
	}
}

// originBenchProbes mimics the pipeline's per-peer stage: one lookup per
// peer, spread over every eyeball AS's address space.
func originBenchProbes(w *astopo.World) []ipnet.Addr {
	var probes []ipnet.Addr
	for i, a := range w.Eyeballs() {
		for _, p := range a.Prefixes {
			probes = append(probes, p.Nth(uint64(i)*7919+1), p.Nth(uint64(i)*104729+13))
		}
	}
	return probes
}

// BenchmarkOriginOfCompiled vs BenchmarkOriginOfTrie: the compiled flat
// LPM against the mutable radix trie on the same merged origin table —
// the pipeline's hottest scalar call (89.1M lookups at paper scale).
func BenchmarkOriginOfCompiled(b *testing.B) {
	w, _, rib := benchSetup(b)
	ot := NewOriginTable(rib)
	probes := originBenchProbes(w)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := ot.OriginOf(probes[i%len(probes)]); !ok {
			b.Fatal("miss")
		}
	}
}

// BenchmarkOriginOfInstrumented measures the pipeline's shard-aggregated
// counting pattern on top of the compiled lookup: the per-call cost is a
// single block-local int64 increment; the registry sees one atomic Add
// per pool block (thousands of lookups), amortized to nothing. Comparing
// against BenchmarkOriginOfCompiled proves the hot path keeps its ~6ns —
// there is no per-lookup atomic, branch-to-registry, or allocation.
func BenchmarkOriginOfInstrumented(b *testing.B) {
	w, _, rib := benchSetup(b)
	ot := NewOriginTable(rib)
	probes := originBenchProbes(w)
	reg := obs.New()
	lookupsC := reg.Counter("eyeball_bgp_origin_lookups_total")
	const block = 4096 // ≈ parallel.DefaultBlock at pipeline scale
	b.ResetTimer()
	for done := 0; done < b.N; {
		n := block
		if rest := b.N - done; rest < n {
			n = rest
		}
		var local int64
		for j := 0; j < n; j++ {
			if _, ok := ot.OriginOf(probes[(done+j)%len(probes)]); !ok {
				b.Fatal("miss")
			}
			local++
		}
		lookupsC.Add(local)
		done += n
	}
	b.StopTimer()
	if got := lookupsC.Value(); got != int64(b.N) {
		b.Fatalf("counter = %d, want %d", got, b.N)
	}
}

func BenchmarkOriginOfTrie(b *testing.B) {
	w, _, rib := benchSetup(b)
	ot := NewOriginTable(rib)
	probes := originBenchProbes(w)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := ot.OriginOfUncompiled(probes[i%len(probes)]); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkPathReconstruction(b *testing.B) {
	w, r, _ := benchSetup(b)
	src := w.ASNs()[5]
	dst := w.ASNs()[len(w.ASNs())-3]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p := r.Path(src, dst); p == nil {
			b.Fatal("no path")
		}
	}
}
