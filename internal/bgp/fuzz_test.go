package bgp

import (
	"strings"
	"testing"
)

// FuzzReadRIB hardens the table-dump parser: arbitrary input must never
// panic, and accepted input must re-serialize and re-parse to the same
// entry count.
func FuzzReadRIB(f *testing.F) {
	f.Add("# eyeballas RIB vantage=100 entries=1\n1.0.0.0/18|100 200 300\n")
	f.Add("1.0.0.0/18|100\n")
	f.Add("")
	f.Add("garbage\n")
	f.Add("1.0.0.0/18|\n")
	f.Add("# vantage=abc\n")
	f.Add("300.0.0.0/8|1\n")
	f.Fuzz(func(t *testing.T, input string) {
		rib, err := ReadRIB(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf strings.Builder
		if _, err := rib.WriteTo(&buf); err != nil {
			t.Fatalf("re-serialize failed: %v", err)
		}
		again, err := ReadRIB(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if again.Len() != rib.Len() || again.Vantage != rib.Vantage {
			t.Fatalf("round trip changed table: %d/%d entries, vantage %d/%d",
				again.Len(), rib.Len(), again.Vantage, rib.Vantage)
		}
	})
}
