// Package bgp computes policy routing over the synthetic topology and
// materializes RouteViews-style routing tables: per-vantage RIBs with full
// AS paths and longest-prefix-match IP→origin-AS resolution, the role
// archived BGP tables play in the paper's "grouping users by AS" step
// (§2) and the raw material for relationship inference (§6).
package bgp

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"eyeballas/internal/astopo"
)

// RouteType classifies how a route was learned, in preference order.
type RouteType int8

// Route types; higher preference first.
const (
	RouteNone     RouteType = iota // no route
	RouteSelf                      // the destination itself
	RouteCustomer                  // learned from a customer
	RoutePeer                      // learned from a peer
	RouteProvider                  // learned from a provider
)

// String names the route type.
func (t RouteType) String() string {
	switch t {
	case RouteNone:
		return "none"
	case RouteSelf:
		return "self"
	case RouteCustomer:
		return "customer"
	case RoutePeer:
		return "peer"
	case RouteProvider:
		return "provider"
	default:
		return fmt.Sprintf("routetype(%d)", int8(t))
	}
}

// Routing holds the best valley-free route from every AS to every
// destination AS, under the standard Gao–Rexford policy: prefer
// customer > peer > provider routes, then shortest AS path, then lowest
// next-hop ASN.
type Routing struct {
	asns []astopo.ASN
	idx  map[astopo.ASN]int

	// nextHop[s][d] is the neighbour s forwards to for destination d
	// (-1 if unreachable); routeType[s][d] classifies s's best route;
	// pathLen[s][d] is the AS-path length in hops (0 for s==d).
	nextHop   [][]int32
	routeType [][]RouteType
	pathLen   [][]int16
}

// ComputeRouting runs the propagation for every destination.
func ComputeRouting(w *astopo.World) *Routing {
	asns := append([]astopo.ASN(nil), w.ASNs()...)
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	n := len(asns)
	r := &Routing{asns: asns, idx: make(map[astopo.ASN]int, n)}
	for i, a := range asns {
		r.idx[a] = i
	}

	// Dense adjacency in index space.
	providers := make([][]int32, n) // up
	customers := make([][]int32, n) // down
	peers := make([][]int32, n)
	for i, a := range asns {
		for _, p := range w.Providers(a) {
			providers[i] = append(providers[i], int32(r.idx[p]))
			// customers filled from the reverse direction below.
		}
		for _, c := range w.Customers(a) {
			customers[i] = append(customers[i], int32(r.idx[c]))
		}
		for _, pr := range w.Peers(a) {
			o := pr.A
			if o == a {
				o = pr.B
			}
			peers[i] = append(peers[i], int32(r.idx[o]))
		}
		// Deduplicate peers (an AS pair may peer at several IXPs; one
		// session is enough for routing).
		peers[i] = dedupInt32(peers[i])
	}

	r.nextHop = make([][]int32, n)
	r.routeType = make([][]RouteType, n)
	r.pathLen = make([][]int16, n)
	for i := range r.nextHop {
		r.nextHop[i] = make([]int32, n)
		r.routeType[i] = make([]RouteType, n)
		r.pathLen[i] = make([]int16, n)
		for j := range r.nextHop[i] {
			r.nextHop[i][j] = -1
		}
	}

	// Per-destination propagation: destinations are independent, so they
	// fan out across CPUs; each worker owns its scratch arrays and writes
	// disjoint columns of the result matrices.
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = 1
	}
	var wg sync.WaitGroup
	next := int64(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			hop := make([]int32, n)
			typ := make([]RouteType, n)
			ln := make([]int16, n)
			for {
				d := int(atomic.AddInt64(&next, 1))
				if d >= n {
					return
				}
				r.propagateOne(d, providers, customers, peers, hop, typ, ln)
			}
		}()
	}
	wg.Wait()
	return r
}

// propagateOne computes every AS's best route to destination index d into
// the scratch arrays and stores the column into the result matrices.
func (r *Routing) propagateOne(d int, providers, customers, peers [][]int32, hop []int32, typ []RouteType, ln []int16) {
	n := len(r.asns)
	for i := range hop {
		hop[i] = -1
		typ[i] = RouteNone
		ln[i] = 0
	}
	typ[d] = RouteSelf

	// Phase 1 — customer routes climb provider edges from d.
	// BFS over "X has a customer(or self) route → X's providers learn
	// it", taking the shortest; ties by lowest next-hop ASN are
	// resolved by processing candidates in ASN order.
	frontier := []int32{int32(d)}
	for len(frontier) > 0 {
		var next []int32
		for _, x := range frontier {
			for _, p := range providers[x] {
				if typ[p] == RouteNone {
					typ[p] = RouteCustomer
					hop[p] = x
					ln[p] = ln[x] + 1
					next = append(next, p)
				} else if typ[p] == RouteCustomer && ln[x]+1 == ln[p] && r.asns[x] < r.asns[hop[p]] {
					hop[p] = x
				}
			}
		}
		sort.Slice(next, func(a, b int) bool { return next[a] < next[b] })
		frontier = next
	}

	// Phase 2 — peer routes: one hop across a peering from any AS
	// with a self/customer route.
	type peerRoute struct {
		at, via int32
		l       int16
	}
	var peerRoutes []peerRoute
	for x := 0; x < n; x++ {
		if typ[x] != RouteSelf && typ[x] != RouteCustomer {
			continue
		}
		for _, q := range peers[x] {
			if typ[q] == RouteNone {
				peerRoutes = append(peerRoutes, peerRoute{at: q, via: int32(x), l: ln[x] + 1})
			}
		}
	}
	sort.Slice(peerRoutes, func(a, b int) bool {
		if peerRoutes[a].l != peerRoutes[b].l {
			return peerRoutes[a].l < peerRoutes[b].l
		}
		return r.asns[peerRoutes[a].via] < r.asns[peerRoutes[b].via]
	})
	for _, pr := range peerRoutes {
		if typ[pr.at] == RouteNone {
			typ[pr.at] = RoutePeer
			hop[pr.at] = pr.via
			ln[pr.at] = pr.l
		}
	}

	// Phase 3 — provider routes descend customer edges from any AS
	// with a route.
	var downFrontier []int32
	for x := 0; x < n; x++ {
		if typ[x] != RouteNone {
			downFrontier = append(downFrontier, int32(x))
		}
	}
	// Process in increasing current path length so shorter provider
	// routes win; a simple Dijkstra-like loop over unit weights.
	sort.Slice(downFrontier, func(a, b int) bool {
		if ln[downFrontier[a]] != ln[downFrontier[b]] {
			return ln[downFrontier[a]] < ln[downFrontier[b]]
		}
		return r.asns[downFrontier[a]] < r.asns[downFrontier[b]]
	})
	for qi := 0; qi < len(downFrontier); qi++ {
		x := downFrontier[qi]
		for _, c := range customers[x] {
			if typ[c] == RouteNone {
				typ[c] = RouteProvider
				hop[c] = x
				ln[c] = ln[x] + 1
				downFrontier = append(downFrontier, c)
			} else if typ[c] == RouteProvider && ln[x]+1 < ln[c] {
				hop[c] = x
				ln[c] = ln[x] + 1
			} else if typ[c] == RouteProvider && ln[x]+1 == ln[c] && r.asns[x] < r.asns[hop[c]] {
				hop[c] = x
			}
		}
	}

	for s := 0; s < n; s++ {
		r.nextHop[s][d] = hop[s]
		r.routeType[s][d] = typ[s]
		r.pathLen[s][d] = ln[s]
	}
}

func dedupInt32(xs []int32) []int32 {
	if len(xs) < 2 {
		return xs
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// ASNs returns the AS numbers known to the routing, ascending.
func (r *Routing) ASNs() []astopo.ASN { return r.asns }

// HasRoute reports whether src has any route to dst.
func (r *Routing) HasRoute(src, dst astopo.ASN) bool {
	si, ok1 := r.idx[src]
	di, ok2 := r.idx[dst]
	if !ok1 || !ok2 {
		return false
	}
	return r.routeType[si][di] != RouteNone
}

// RouteTypeOf returns how src's best route to dst was learned.
func (r *Routing) RouteTypeOf(src, dst astopo.ASN) RouteType {
	si, ok1 := r.idx[src]
	di, ok2 := r.idx[dst]
	if !ok1 || !ok2 {
		return RouteNone
	}
	return r.routeType[si][di]
}

// Path returns the AS path from src to dst, inclusive of both ends, or
// nil if no route exists. For src == dst it returns [src].
func (r *Routing) Path(src, dst astopo.ASN) []astopo.ASN {
	si, ok1 := r.idx[src]
	di, ok2 := r.idx[dst]
	if !ok1 || !ok2 || r.routeType[si][di] == RouteNone {
		return nil
	}
	path := []astopo.ASN{src}
	cur := si
	for cur != di {
		nh := r.nextHop[cur][di]
		if nh < 0 {
			return nil // inconsistent state; treat as unreachable
		}
		cur = int(nh)
		path = append(path, r.asns[cur])
		if len(path) > len(r.asns)+1 {
			return nil // defensive: loop guard
		}
	}
	return path
}

// PathLen returns the AS-path hop count from src to dst, and false if
// unreachable.
func (r *Routing) PathLen(src, dst astopo.ASN) (int, bool) {
	si, ok1 := r.idx[src]
	di, ok2 := r.idx[dst]
	if !ok1 || !ok2 || r.routeType[si][di] == RouteNone {
		return 0, false
	}
	return int(r.pathLen[si][di]), true
}
