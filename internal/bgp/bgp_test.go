package bgp

import (
	"bytes"
	"strings"
	"testing"

	"eyeballas/internal/astopo"
	"eyeballas/internal/gazetteer"
	"eyeballas/internal/ipnet"
)

func testWorld(t *testing.T) (*astopo.World, *Routing) {
	t.Helper()
	w, err := astopo.Generate(astopo.SmallConfig(21))
	if err != nil {
		t.Fatal(err)
	}
	return w, ComputeRouting(w)
}

func TestFullReachability(t *testing.T) {
	w, r := testWorld(t)
	asns := w.ASNs()
	// Every AS can reach every other AS (all have tier-1 uplinks and
	// tier-1s are fully meshed).
	for _, s := range asns {
		for _, d := range asns {
			if !r.HasRoute(s, d) {
				t.Fatalf("no route %d -> %d", s, d)
			}
		}
	}
}

func TestPathEndpoints(t *testing.T) {
	w, r := testWorld(t)
	asns := w.ASNs()
	for i := 0; i < 50; i++ {
		s := asns[(i*7)%len(asns)]
		d := asns[(i*13+5)%len(asns)]
		p := r.Path(s, d)
		if p == nil {
			t.Fatalf("no path %d -> %d", s, d)
		}
		if p[0] != s || p[len(p)-1] != d {
			t.Fatalf("path %v does not connect %d -> %d", p, s, d)
		}
		// Loop-free.
		seen := map[astopo.ASN]bool{}
		for _, a := range p {
			if seen[a] {
				t.Fatalf("loop in path %v", p)
			}
			seen[a] = true
		}
		if l, ok := r.PathLen(s, d); !ok || l != len(p)-1 {
			t.Fatalf("PathLen = %d, path = %v", l, p)
		}
	}
}

func TestSelfPath(t *testing.T) {
	w, r := testWorld(t)
	s := w.ASNs()[0]
	p := r.Path(s, s)
	if len(p) != 1 || p[0] != s {
		t.Errorf("self path = %v", p)
	}
	if r.RouteTypeOf(s, s) != RouteSelf {
		t.Errorf("self route type = %v", r.RouteTypeOf(s, s))
	}
}

// TestValleyFree verifies the fundamental policy invariant: once a path
// goes down (provider→customer) or across (peer), it never goes up or
// across again.
func TestValleyFree(t *testing.T) {
	w, r := testWorld(t)
	rel := func(a, b astopo.ASN) string {
		for _, p := range w.Providers(a) {
			if p == b {
				return "up" // a -> its provider
			}
		}
		for _, c := range w.Customers(a) {
			if c == b {
				return "down"
			}
		}
		return "peer"
	}
	asns := w.ASNs()
	for i := 0; i < 200; i++ {
		s := asns[(i*11)%len(asns)]
		d := asns[(i*17+3)%len(asns)]
		p := r.Path(s, d)
		if len(p) < 2 {
			continue
		}
		phase := 0 // 0=climbing, 1=crossed peer, 2=descending
		for h := 0; h+1 < len(p); h++ {
			switch rel(p[h], p[h+1]) {
			case "up":
				if phase != 0 {
					t.Fatalf("valley in path %v at hop %d", p, h)
				}
			case "peer":
				if phase >= 1 {
					t.Fatalf("double peer crossing in path %v at hop %d", p, h)
				}
				phase = 1
			case "down":
				phase = 2
			}
		}
	}
}

func TestCustomerPreferredOverProvider(t *testing.T) {
	// For a destination that is a customer of s, the route type must be
	// customer.
	w, r := testWorld(t)
	checked := 0
	for _, a := range w.ASNs() {
		for _, c := range w.Customers(a) {
			if got := r.RouteTypeOf(a, c); got != RouteCustomer {
				t.Errorf("route %d -> customer %d has type %v", a, c, got)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no provider links to check")
	}
}

func TestDirectPeerUsesAtMostPeerType(t *testing.T) {
	w, r := testWorld(t)
	for _, pr := range w.Peerings() {
		tA := r.RouteTypeOf(pr.A, pr.B)
		if tA == RouteProvider {
			t.Errorf("route %d -> peer %d fell back to provider route", pr.A, pr.B)
		}
	}
}

func TestCaseStudyRouting(t *testing.T) {
	w, r := testWorld(t)
	cs := w.CaseStudy()
	if cs == nil {
		t.Fatal("no case study")
	}
	// Subject reaches its peers across the peering (type peer or
	// customer — never via a provider valley).
	for _, peer := range []astopo.ASN{cs.Academic, cs.PeerB, cs.PeerC} {
		if got := r.RouteTypeOf(cs.Subject, peer); got != RoutePeer {
			t.Errorf("subject -> %d route type = %v, want peer", peer, got)
		}
		if l, _ := r.PathLen(cs.Subject, peer); l != 1 {
			t.Errorf("subject -> %d path length = %d, want 1", peer, l)
		}
	}
	// Subject's providers are one customer-hop away.
	for _, p := range w.Providers(cs.Subject) {
		if l, _ := r.PathLen(cs.Subject, p); l != 1 {
			t.Errorf("subject -> provider %d length %d", p, l)
		}
	}
}

func TestBuildRIBAndOriginLookup(t *testing.T) {
	w, r := testWorld(t)
	vantage := w.ASNs()[0]
	rib, err := BuildRIB(w, r, vantage)
	if err != nil {
		t.Fatal(err)
	}
	if rib.Len() == 0 {
		t.Fatal("empty RIB")
	}
	// Every AS's every prefix resolves to that AS.
	for _, a := range w.ASes() {
		for _, p := range a.Prefixes {
			got, ok := rib.OriginOf(p.Nth(7))
			if !ok || got != a.ASN {
				t.Fatalf("OriginOf(%v) = %v, %v; want %d", p.Nth(7), got, ok, a.ASN)
			}
		}
	}
	// Unallocated space resolves to nothing.
	if _, ok := rib.OriginOf(ipnet.MakeAddr(223, 255, 255, 254)); ok {
		t.Error("unallocated address resolved")
	}
	// Paths start at the vantage.
	for _, e := range rib.Entries[:10] {
		if e.Path[0] != vantage {
			t.Errorf("entry path %v does not start at vantage %d", e.Path, vantage)
		}
	}
}

func TestBuildRIBUnknownVantage(t *testing.T) {
	w, r := testWorld(t)
	if _, err := BuildRIB(w, r, astopo.ASN(999999)); err == nil {
		t.Error("unknown vantage accepted")
	}
}

func TestRIBSerializationRoundTrip(t *testing.T) {
	w, r := testWorld(t)
	rib, err := BuildRIB(w, r, w.ASNs()[2])
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := rib.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := ReadRIB(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Vantage != rib.Vantage || parsed.Len() != rib.Len() {
		t.Fatalf("round trip mismatch: vantage %d/%d len %d/%d",
			parsed.Vantage, rib.Vantage, parsed.Len(), rib.Len())
	}
	for i := range rib.Entries {
		a, b := rib.Entries[i], parsed.Entries[i]
		if a.Prefix != b.Prefix || len(a.Path) != len(b.Path) || a.Origin() != b.Origin() {
			t.Fatalf("entry %d mismatch: %v vs %v", i, a, b)
		}
	}
	// Parsed table answers lookups too.
	e := rib.Entries[0]
	if got, ok := parsed.OriginOf(e.Prefix.Nth(1)); !ok || got != e.Origin() {
		t.Errorf("parsed OriginOf = %v, %v", got, ok)
	}
}

func TestReadRIBErrors(t *testing.T) {
	for name, in := range map[string]string{
		"no-bar":       "10.0.0.0/8 100 200\n",
		"bad-pfx":      "10.0.0/8|100\n",
		"bad-asn":      "10.0.0.0/8|abc\n",
		"empty-pth":    "10.0.0.0/8|\n",
		"bad-entries":  "# eyeballas RIB vantage=1 entries=abc\n10.0.0.0/8|100\n",
		"neg-entries":  "# eyeballas RIB vantage=1 entries=-2\n10.0.0.0/8|100\n",
		"few-entries":  "# eyeballas RIB vantage=1 entries=3\n10.0.0.0/8|100\n",
		"many-entries": "# eyeballas RIB vantage=1 entries=1\n10.0.0.0/8|100\n11.0.0.0/8|200\n",
	} {
		if _, err := ReadRIB(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
	// Without a header the count is unchecked (foreign dumps may lack it).
	if _, err := ReadRIB(strings.NewReader("10.0.0.0/8|100\n")); err != nil {
		t.Errorf("headerless dump rejected: %v", err)
	}
}

// TestReadRIBTruncated: cutting rows off a WriteTo dump must be detected
// via the entries= header instead of silently yielding a partial table.
func TestReadRIBTruncated(t *testing.T) {
	w, r := testWorld(t)
	rib, err := BuildRIB(w, r, w.ASNs()[1])
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := rib.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.String()
	lines := strings.SplitAfter(strings.TrimSuffix(full, "\n"), "\n")
	truncated := strings.Join(lines[:len(lines)-3], "")
	if _, err := ReadRIB(strings.NewReader(truncated)); err == nil {
		t.Error("truncated dump accepted")
	}
	// The untruncated dump still round-trips.
	if _, err := ReadRIB(strings.NewReader(full)); err != nil {
		t.Errorf("full dump rejected: %v", err)
	}
}

// TestOriginOfCompiledMatchesTrie sweeps every entry boundary of a real
// RIB-derived origin table: the compiled path and the trie reference path
// must agree exactly.
func TestOriginOfCompiledMatchesTrie(t *testing.T) {
	w, r := testWorld(t)
	rib1, _ := BuildRIB(w, r, w.ASNs()[0])
	rib2, _ := BuildRIB(w, r, w.ASNs()[1])
	ot := NewOriginTable(rib1, rib2)
	probe := func(a ipnet.Addr) {
		t.Helper()
		v1, ok1 := ot.OriginOf(a)
		v2, ok2 := ot.OriginOfUncompiled(a)
		if v1 != v2 || ok1 != ok2 {
			t.Fatalf("OriginOf(%v): compiled %v,%v vs trie %v,%v", a, v1, ok1, v2, ok2)
		}
	}
	for _, e := range rib1.Entries {
		probe(e.Prefix.First() - 1)
		probe(e.Prefix.First())
		probe(e.Prefix.Nth(3))
		probe(e.Prefix.Last())
		probe(e.Prefix.Last() + 1)
	}
}

func TestOriginTableMerge(t *testing.T) {
	w, r := testWorld(t)
	rib1, _ := BuildRIB(w, r, w.ASNs()[0])
	rib2, _ := BuildRIB(w, r, w.ASNs()[1])
	ot := NewOriginTable(rib1, rib2)
	if ot.Len() != rib1.Len() {
		t.Errorf("merged table has %d prefixes, want %d", ot.Len(), rib1.Len())
	}
	a := w.Eyeballs()[0]
	got, ok := ot.OriginOf(a.Prefixes[0].Nth(3))
	if !ok || got != a.ASN {
		t.Errorf("OriginOf = %v, %v", got, ok)
	}
	// A gazetteer-region sanity call to keep the import honest.
	if a.Region == gazetteer.Other {
		t.Error("eyeball with unset region")
	}
}
