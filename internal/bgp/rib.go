package bgp

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"eyeballas/internal/astopo"
	"eyeballas/internal/ipnet"
	"eyeballas/internal/obs"
)

// Entry is one RIB row: a prefix and the AS path from the vantage point to
// its origin (last element).
type Entry struct {
	Prefix ipnet.Prefix
	Path   []astopo.ASN
}

// Origin returns the originating AS of the entry.
func (e Entry) Origin() astopo.ASN { return e.Path[len(e.Path)-1] }

// Resolver maps an IP address to its origin AS — the one capability the
// pipeline's per-peer stage needs from a BGP table. Both *RIB and
// *OriginTable implement it.
type Resolver interface {
	OriginOf(a ipnet.Addr) (astopo.ASN, bool)
}

// CheckedResolver is an optional extension of Resolver for origin
// sources whose lookups can fail (a remote table service, an mmap'd
// dump that can go away mid-run). The pipeline's per-peer stage detects
// it with a type assertion and propagates the error out of its worker
// pool; plain Resolvers keep the infallible fast path.
type CheckedResolver interface {
	Resolver
	// OriginOfChecked is OriginOf with an error channel; err != nil
	// aborts the whole build.
	OriginOfChecked(a ipnet.Addr) (astopo.ASN, bool, error)
}

// RIB is a routing table as observed from one vantage AS — the synthetic
// analogue of one RouteViews peer's table dump.
//
// The prefix→origin mapping lives in two forms: a mutable radix trie used
// while rows are being inserted, and an immutable compiled flat form
// (ipnet.Compiled) frozen once construction finishes. OriginOf serves
// from the compiled form, which is both faster (binary search over a
// flat array instead of pointer chasing) and safe for concurrent readers.
type RIB struct {
	Vantage astopo.ASN
	Entries []Entry

	table    *ipnet.Table[astopo.ASN]
	compiled *ipnet.Compiled[astopo.ASN]
}

// BuildRIB materializes the RIB seen from vantage. Destinations the
// vantage cannot reach (none exist in generated worlds, but defensively)
// are omitted.
func BuildRIB(w *astopo.World, r *Routing, vantage astopo.ASN) (*RIB, error) {
	return BuildRIBObs(w, r, vantage, nil)
}

// BuildRIBObs is BuildRIB with instrumentation: a per-vantage build
// span, the compile-time histogram, and entry/segment gauges. A nil
// registry disables all of it (BuildRIB delegates here with nil).
func BuildRIBObs(w *astopo.World, r *Routing, vantage astopo.ASN, reg *obs.Registry) (*RIB, error) {
	if w.AS(vantage) == nil {
		return nil, fmt.Errorf("bgp: unknown vantage AS %d", vantage)
	}
	span := reg.StartSpan("bgp.build_rib " + strconv.Itoa(int(vantage)))
	defer span.End()
	rib := &RIB{Vantage: vantage, table: ipnet.NewTable[astopo.ASN]()}
	for _, dst := range r.ASNs() {
		path := r.Path(vantage, dst)
		if path == nil {
			continue
		}
		for _, p := range w.AS(dst).Prefixes {
			rib.Entries = append(rib.Entries, Entry{Prefix: p, Path: path})
			rib.table.Insert(p, dst)
		}
	}
	sort.Slice(rib.Entries, func(i, j int) bool {
		if rib.Entries[i].Prefix.Addr != rib.Entries[j].Prefix.Addr {
			return rib.Entries[i].Prefix.Addr < rib.Entries[j].Prefix.Addr
		}
		return rib.Entries[i].Prefix.Bits < rib.Entries[j].Prefix.Bits
	})
	rib.compiled = compileObs(reg, rib.table)
	if reg != nil {
		vantageLabel := strconv.Itoa(int(vantage))
		reg.Gauge("eyeball_bgp_rib_entries", "vantage", vantageLabel).Set(float64(len(rib.Entries)))
		reg.Gauge("eyeball_bgp_rib_segments", "vantage", vantageLabel).Set(float64(rib.compiled.Segments()))
	}
	return rib, nil
}

// compileObs freezes a trie into its compiled flat form, recording the
// compile wall-clock and counting compilations when a registry is live.
// The compile is a one-off per table — its cost is measured here so
// BENCH/metrics can attribute it, while the per-lookup hot path stays
// untouched (see the package comment on OriginTable).
func compileObs(reg *obs.Registry, t *ipnet.Table[astopo.ASN]) *ipnet.Compiled[astopo.ASN] {
	if reg == nil {
		return t.Compile()
	}
	start := time.Now()
	c := t.Compile()
	reg.Histogram("eyeball_bgp_compile_seconds", obs.LatencyBuckets()).Observe(time.Since(start).Seconds())
	reg.Counter("eyeball_bgp_compiles_total").Inc()
	return c
}

// OriginOf maps an address to its origin AS by longest-prefix match,
// using the compiled flat table.
func (rib *RIB) OriginOf(a ipnet.Addr) (astopo.ASN, bool) {
	if rib.compiled != nil {
		return rib.compiled.Lookup(a)
	}
	return rib.table.Lookup(a)
}

// Len returns the number of RIB rows.
func (rib *RIB) Len() int { return len(rib.Entries) }

// WriteTo serializes the RIB in a plain text format, one row per line:
//
//	PREFIX|ASN ASN ... ASN
//
// mirroring the show-ip-bgp dumps the RouteViews archive distributes.
func (rib *RIB) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var total int64
	n, err := fmt.Fprintf(bw, "# eyeballas RIB vantage=%d entries=%d\n", rib.Vantage, len(rib.Entries))
	total += int64(n)
	if err != nil {
		return total, err
	}
	for _, e := range rib.Entries {
		parts := make([]string, len(e.Path))
		for i, a := range e.Path {
			parts[i] = strconv.Itoa(int(a))
		}
		n, err := fmt.Fprintf(bw, "%s|%s\n", e.Prefix, strings.Join(parts, " "))
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, bw.Flush()
}

// ReadRIB parses the format written by WriteTo. If the header declares an
// entries= count (WriteTo always writes one), the parsed row count is
// validated against it, so truncated or corrupted dumps are rejected
// instead of silently yielding a partial table.
func ReadRIB(r io.Reader) (*RIB, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	rib := &RIB{table: ipnet.NewTable[astopo.ASN]()}
	lineNo := 0
	declared := -1 // entries= from the header, -1 = not declared
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if v := headerField(line, "vantage="); v != "" {
				n, err := strconv.Atoi(v)
				if err != nil {
					return nil, fmt.Errorf("bgp: line %d: bad vantage: %v", lineNo, err)
				}
				rib.Vantage = astopo.ASN(n)
			}
			if v := headerField(line, "entries="); v != "" {
				n, err := strconv.Atoi(v)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("bgp: line %d: bad entries count %q", lineNo, v)
				}
				declared = n
			}
			continue
		}
		bar := strings.IndexByte(line, '|')
		if bar < 0 {
			return nil, fmt.Errorf("bgp: line %d: missing '|'", lineNo)
		}
		prefix, err := ipnet.ParsePrefix(line[:bar])
		if err != nil {
			return nil, fmt.Errorf("bgp: line %d: %v", lineNo, err)
		}
		var path []astopo.ASN
		for _, f := range strings.Fields(line[bar+1:]) {
			n, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("bgp: line %d: bad ASN %q", lineNo, f)
			}
			path = append(path, astopo.ASN(n))
		}
		if len(path) == 0 {
			return nil, fmt.Errorf("bgp: line %d: empty AS path", lineNo)
		}
		e := Entry{Prefix: prefix, Path: path}
		rib.Entries = append(rib.Entries, e)
		rib.table.Insert(prefix, e.Origin())
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if declared >= 0 && declared != len(rib.Entries) {
		return nil, fmt.Errorf("bgp: header declares %d entries but %d rows parsed (truncated or corrupt dump?)",
			declared, len(rib.Entries))
	}
	rib.compiled = rib.table.Compile()
	return rib, nil
}

func headerField(line, key string) string {
	idx := strings.Index(line, key)
	if idx < 0 {
		return ""
	}
	rest := line[idx+len(key):]
	if sp := strings.IndexByte(rest, ' '); sp >= 0 {
		rest = rest[:sp]
	}
	return rest
}

// OriginTable is the merged origin mapping across several vantages — the
// paper's "archived BGP tables from the routeviews database" (§2). When
// vantages disagree on an origin (they do not in generated worlds, but a
// parsed foreign table might), the first vantage wins.
//
// At the paper's scale OriginOf answers 89.1M lookups (one per crawled
// peer), making it the hottest scalar call in pipeline.Build — so the
// merged trie is frozen into its compiled flat form once at construction
// and every lookup runs allocation-free against that.
type OriginTable struct {
	table    *ipnet.Table[astopo.ASN]
	compiled *ipnet.Compiled[astopo.ASN]
	size     int
}

// NewOriginTable merges RIBs and compiles the merged table.
func NewOriginTable(ribs ...*RIB) *OriginTable {
	return NewOriginTableObs(nil, ribs...)
}

// NewOriginTableObs is NewOriginTable with instrumentation: merge span,
// compile-time histogram, and prefix/segment gauges.
//
// Lookup accounting is deliberately NOT done inside OriginOf: the
// compiled lookup runs in ~6 ns and even one uncontended atomic
// increment would roughly double it. Instead, callers count lookups at
// their aggregation points (the pipeline flushes block-local deltas
// into eyeball_bgp_origin_lookups_total — shard-aggregated counting
// where each work block is a shard), so the instrumented hot loop is
// instruction-identical to the bare one. scripts/bench_obs.sh proves
// the overhead budget.
func NewOriginTableObs(reg *obs.Registry, ribs ...*RIB) *OriginTable {
	span := reg.StartSpan("bgp.origin_table")
	defer span.End()
	ot := &OriginTable{table: ipnet.NewTable[astopo.ASN]()}
	for _, rib := range ribs {
		for _, e := range rib.Entries {
			if _, exists := ot.table.LookupPrefix(e.Prefix); !exists {
				ot.table.Insert(e.Prefix, e.Origin())
				ot.size++
			}
		}
	}
	ot.compiled = compileObs(reg, ot.table)
	if reg != nil {
		reg.Gauge("eyeball_bgp_origin_prefixes").Set(float64(ot.size))
		reg.Gauge("eyeball_bgp_origin_segments").Set(float64(ot.compiled.Segments()))
	}
	return ot
}

// NewOriginTableFromCompiled wraps an already-compiled flat LPM table —
// the shape a dataset snapshot deserializes — into an OriginTable. The
// mutable build-time trie is absent: OriginOf serves straight from the
// compiled form, and OriginOfUncompiled falls back to it too (there is
// no trie to reference).
func NewOriginTableFromCompiled(c *ipnet.Compiled[astopo.ASN]) *OriginTable {
	return &OriginTable{compiled: c, size: c.Len()}
}

// Compiled exposes the origin table's immutable flat LPM form (nil if
// the table was never compiled) — the serialization surface snapshots
// persist.
func (ot *OriginTable) Compiled() *ipnet.Compiled[astopo.ASN] { return ot.compiled }

// Segments exposes the compiled table's flat segment count (a capacity
// diagnostic; see ipnet.Compiled.Segments).
func (ot *OriginTable) Segments() int {
	if ot.compiled == nil {
		return 0
	}
	return ot.compiled.Segments()
}

// OriginOf maps an address to its origin AS via the compiled table.
func (ot *OriginTable) OriginOf(a ipnet.Addr) (astopo.ASN, bool) {
	if ot.compiled != nil {
		return ot.compiled.Lookup(a)
	}
	return ot.table.Lookup(a)
}

// OriginOfUncompiled answers the same query through the mutable radix
// trie. It is the reference path, retained for differential tests that
// prove the compiled wiring changes nothing (and benchmarks that measure
// what it buys). Tables reconstructed from a snapshot
// (NewOriginTableFromCompiled) have no trie and serve from the compiled
// form here too.
func (ot *OriginTable) OriginOfUncompiled(a ipnet.Addr) (astopo.ASN, bool) {
	if ot.table == nil {
		return ot.compiled.Lookup(a)
	}
	return ot.table.Lookup(a)
}

// Len returns the number of distinct prefixes.
func (ot *OriginTable) Len() int { return ot.size }
