// Package ixp materializes the IXP-mapping dataset the paper's §6 case
// study consults (Augustin, Krishnamurthy, Willinger: "IXPs: Mapped?").
// It observes the ground-truth world the way that project observed the
// real Internet: membership lists are public and essentially complete,
// while the peering matrix at each exchange is detected only partially.
package ixp

import (
	"sort"

	"eyeballas/internal/astopo"
	"eyeballas/internal/rng"
)

// Dataset is the observed IXP substrate.
type Dataset struct {
	// Members lists each exchange's member ASes, ascending.
	Members map[astopo.IXPID][]astopo.ASN
	// Peerings are the detected IXP peerings.
	Peerings []astopo.Peering

	memberSet map[astopo.IXPID]map[astopo.ASN]bool
	peersOf   map[astopo.ASN][]astopo.Peering
}

// Build observes the world's exchanges. detectProb is the probability a
// true IXP peering is detected (the mapping project's methodology misses
// sessions it cannot trigger); membership is taken as-is.
func Build(w *astopo.World, detectProb float64, src *rng.Source) *Dataset {
	d := &Dataset{
		Members:   make(map[astopo.IXPID][]astopo.ASN),
		memberSet: make(map[astopo.IXPID]map[astopo.ASN]bool),
		peersOf:   make(map[astopo.ASN][]astopo.Peering),
	}
	for _, x := range w.IXPs() {
		members := append([]astopo.ASN(nil), x.Members...)
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		d.Members[x.ID] = members
		set := make(map[astopo.ASN]bool, len(members))
		for _, m := range members {
			set[m] = true
		}
		d.memberSet[x.ID] = set
	}
	for i, p := range w.Peerings() {
		if p.IXP == 0 {
			continue // private peerings are invisible to IXP mapping
		}
		s := src.SplitN("ixp-detect", i)
		if !s.Bool(detectProb) {
			continue
		}
		d.Peerings = append(d.Peerings, p)
		d.peersOf[p.A] = append(d.peersOf[p.A], p)
		d.peersOf[p.B] = append(d.peersOf[p.B], p)
	}
	return d
}

// MemberOf reports whether the AS appears in the exchange's member list.
func (d *Dataset) MemberOf(id astopo.IXPID, a astopo.ASN) bool {
	return d.memberSet[id][a]
}

// IXPsOf returns the exchanges the AS is a member of, ascending.
func (d *Dataset) IXPsOf(a astopo.ASN) []astopo.IXPID {
	var out []astopo.IXPID
	for id, set := range d.memberSet {
		if set[a] {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PeersAt returns the ASes the given AS is detected peering with at the
// given exchange, ascending.
func (d *Dataset) PeersAt(a astopo.ASN, id astopo.IXPID) []astopo.ASN {
	var out []astopo.ASN
	for _, p := range d.peersOf[a] {
		if p.IXP != id {
			continue
		}
		if p.A == a {
			out = append(out, p.B)
		} else {
			out = append(out, p.A)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
