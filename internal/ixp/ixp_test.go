package ixp

import (
	"testing"

	"eyeballas/internal/astopo"
	"eyeballas/internal/rng"
)

func build(t *testing.T, detect float64) (*astopo.World, *Dataset) {
	t.Helper()
	w, err := astopo.Generate(astopo.SmallConfig(91))
	if err != nil {
		t.Fatal(err)
	}
	return w, Build(w, detect, rng.New(91).Split("ixp"))
}

func TestMembershipComplete(t *testing.T) {
	w, d := build(t, 1.0)
	for _, x := range w.IXPs() {
		if len(d.Members[x.ID]) != len(x.Members) {
			t.Errorf("IXP %s: %d members in dataset, %d in truth", x.Name, len(d.Members[x.ID]), len(x.Members))
		}
		for _, m := range x.Members {
			if !d.MemberOf(x.ID, m) {
				t.Errorf("IXP %s member %d missing", x.Name, m)
			}
		}
		// Sorted.
		ms := d.Members[x.ID]
		for i := 1; i < len(ms); i++ {
			if ms[i] <= ms[i-1] {
				t.Fatalf("members not sorted for %s", x.Name)
			}
		}
	}
}

func TestFullDetection(t *testing.T) {
	w, d := build(t, 1.0)
	wantIXP := 0
	for _, p := range w.Peerings() {
		if p.IXP != 0 {
			wantIXP++
		}
	}
	if len(d.Peerings) != wantIXP {
		t.Errorf("detected %d of %d IXP peerings at prob 1", len(d.Peerings), wantIXP)
	}
	for _, p := range d.Peerings {
		if p.IXP == 0 {
			t.Fatal("private peering leaked into IXP dataset")
		}
	}
}

func TestPartialDetection(t *testing.T) {
	w, full := build(t, 1.0)
	partial := Build(w, 0.5, rng.New(91).Split("ixp"))
	if len(partial.Peerings) >= len(full.Peerings) {
		t.Errorf("partial detection found %d >= full %d", len(partial.Peerings), len(full.Peerings))
	}
	if len(partial.Peerings) == 0 {
		t.Error("detection probability 0.5 found nothing")
	}
}

func TestCaseStudyQueries(t *testing.T) {
	w, d := build(t, 1.0)
	cs := w.CaseStudy()
	if !d.MemberOf(cs.RemoteIXP, cs.Subject) {
		t.Error("subject missing from remote IXP membership")
	}
	if d.MemberOf(cs.LocalIXP, cs.Subject) {
		t.Error("subject wrongly at the local IXP")
	}
	ixps := d.IXPsOf(cs.Subject)
	found := false
	for _, id := range ixps {
		if id == cs.RemoteIXP {
			found = true
		}
		if id == cs.LocalIXP {
			t.Error("IXPsOf lists the local IXP")
		}
	}
	if !found {
		t.Error("IXPsOf misses the remote IXP")
	}
	peers := d.PeersAt(cs.Subject, cs.RemoteIXP)
	if len(peers) != 3 {
		t.Fatalf("subject peers at remote IXP = %v, want 3", peers)
	}
	want := map[astopo.ASN]bool{cs.Academic: true, cs.PeerB: true, cs.PeerC: true}
	for _, p := range peers {
		if !want[p] {
			t.Errorf("unexpected peer %d", p)
		}
	}
	if got := d.PeersAt(cs.Subject, cs.LocalIXP); len(got) != 0 {
		t.Errorf("subject peers at local IXP = %v, want none", got)
	}
}
