package client

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"eyeballas/internal/serve"
)

// TestMaxBandwidthMirrorsServer pins the client's bandwidth ceiling to
// the server's: the client-side guard exists to reject requests the
// server would 400, so the two constants must never drift.
func TestMaxBandwidthMirrorsServer(t *testing.T) {
	if MaxBandwidthKm != serve.MaxBandwidthKm {
		t.Fatalf("client.MaxBandwidthKm = %d, serve.MaxBandwidthKm = %d; the envelopes must match", MaxBandwidthKm, serve.MaxBandwidthKm)
	}
}

// TestClientBWValidation is the client-side half of the bw regression
// table: out-of-envelope bandwidths — including the +Inf this client
// used to format straight into the query string — fail locally and
// never reach the wire.
func TestClientBWValidation(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Write([]byte("{}\n"))
	}))
	defer ts.Close()
	c := New(ts.URL, Options{})
	ctx := context.Background()

	bad := []float64{math.NaN(), math.Inf(1), math.Inf(-1), -1, -0.001, MaxBandwidthKm + 1, 1e300}
	for _, bw := range bad {
		if _, err := c.Footprint(ctx, 64500, bw); err == nil {
			t.Errorf("Footprint accepted bw=%g", bw)
		}
		if _, err := c.Footprints(ctx, []int{64500}, bw); err == nil {
			t.Errorf("Footprints accepted bw=%g", bw)
		}
	}
	if n := hits.Load(); n != 0 {
		t.Fatalf("invalid bandwidths reached the wire %d times", n)
	}

	for _, bw := range []float64{0, 40, MaxBandwidthKm} {
		if _, err := c.Footprint(ctx, 64500, bw); err != nil {
			t.Errorf("Footprint(bw=%g): %v", bw, err)
		}
		if _, err := c.Footprints(ctx, []int{64500}, bw); err != nil {
			t.Errorf("Footprints(bw=%g): %v", bw, err)
		}
	}
	if n := hits.Load(); n != 6 {
		t.Errorf("valid calls hit the server %d times, want 6", n)
	}
}

// TestFootprintsBatchingAndOrder: a 150-ASN request splits into
// ceil(150/64) = 3 wire requests, results come back one line per ASN
// in request order with trailing newlines intact, and per-AS error
// lines ride inline without failing the batch.
func TestFootprintsBatchingAndOrder(t *testing.T) {
	var (
		mu   sync.Mutex
		reqs []string
	)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		reqs = append(reqs, r.URL.RawQuery)
		mu.Unlock()
		for _, p := range strings.Split(r.URL.Query().Get("asns"), ",") {
			if p == "99999" {
				fmt.Fprintf(w, "{\"error\":\"AS99999 not in dataset\"}\n")
				continue
			}
			fmt.Fprintf(w, "{\"asn\":%s}\n", p)
		}
	}))
	defer ts.Close()
	c := New(ts.URL, Options{})

	asns := make([]int, 0, 150)
	for i := 0; i < 150; i++ {
		if i == 70 {
			asns = append(asns, 99999) // lands in the second batch
			continue
		}
		asns = append(asns, 64000+i)
	}
	lines, err := c.Footprints(context.Background(), asns, 80)
	if err != nil {
		t.Fatalf("Footprints: %v", err)
	}
	if len(lines) != len(asns) {
		t.Fatalf("got %d lines for %d ASNs", len(lines), len(asns))
	}
	for i, asn := range asns {
		want := fmt.Sprintf("{\"asn\":%d}\n", asn)
		if asn == 99999 {
			want = "{\"error\":\"AS99999 not in dataset\"}\n"
		}
		if string(lines[i]) != want {
			t.Fatalf("line %d = %q, want %q", i, lines[i], want)
		}
	}

	mu.Lock()
	defer mu.Unlock()
	if len(reqs) != 3 {
		t.Fatalf("client issued %d requests for 150 ASNs, want 3 (batches of 64)", len(reqs))
	}
	for i, q := range reqs {
		if !strings.Contains(q, "bw=80") {
			t.Errorf("request %d lost the bandwidth: %q", i, q)
		}
	}
	if n := len(strings.Split(strings.TrimPrefix(strings.Split(reqs[0], "&")[0], "asns="), ",")); n != 64 {
		t.Errorf("first batch carried %d ASNs, want 64", n)
	}
}

// TestFootprintsLineCountMismatch: a server answering the wrong number
// of lines is a protocol violation, not data to misalign silently.
func TestFootprintsLineCountMismatch(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("{\"asn\":1}\n{\"asn\":2}\n")) // two lines for one ASN
	}))
	defer ts.Close()
	c := New(ts.URL, Options{})
	if _, err := c.Footprints(context.Background(), []int{64500}, 0); err == nil || !strings.Contains(err.Error(), "lines") {
		t.Fatalf("mismatched line count returned %v, want a lines-mismatch error", err)
	}
}

func TestFootprintsInputValidation(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
	}))
	defer ts.Close()
	c := New(ts.URL, Options{})
	ctx := context.Background()

	if _, err := c.Footprints(ctx, nil, 0); err == nil {
		t.Error("empty ASN list accepted")
	}
	if _, err := c.Footprints(ctx, []int{64500, -3}, 0); err == nil {
		t.Error("negative ASN accepted")
	}
	if n := hits.Load(); n != 0 {
		t.Errorf("invalid input reached the wire %d times", n)
	}
}
