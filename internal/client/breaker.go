package client

import (
	"sync"
	"time"
)

// breakerState is the classic three-state machine.
type breakerState int

const (
	breakerClosed   breakerState = iota // normal operation, counting failures
	breakerOpen                         // refusing calls until the cooldown elapses
	breakerHalfOpen                     // one probe in flight decides the next state
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig tunes the per-endpoint circuit breakers.
type BreakerConfig struct {
	// Threshold is the number of consecutive failures that trips a
	// closed breaker open. <=0 selects the default (5).
	Threshold int
	// Cooldown is how long an open breaker refuses calls before
	// admitting a single half-open probe. <=0 selects the default (1s).
	Cooldown time.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = time.Second
	}
	return c
}

// breaker is one endpoint's circuit: closed until Threshold
// consecutive failures, then open for Cooldown, then half-open — one
// probe request decides whether to close again or re-open. Time comes
// from an injected clock so the unit tests never sleep.
type breaker struct {
	cfg BreakerConfig
	now func() time.Time

	mu       sync.Mutex
	state    breakerState
	failures int       // consecutive failures while closed
	openedAt time.Time // when the breaker last tripped
	probing  bool      // a half-open probe is in flight
}

func newBreaker(cfg BreakerConfig, now func() time.Time) *breaker {
	return &breaker{cfg: cfg.withDefaults(), now: now}
}

// allow reports whether a request may proceed. In half-open state only
// one caller at a time gets true (the probe); everyone else is
// refused until the probe reports.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cfg.Cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	case breakerHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
	return false
}

// report feeds the outcome of an allowed request back into the
// machine. Only errors the breaker should react to — transport
// failures and 5xx — count as failure; a 404 is a healthy server
// giving a correct answer.
func (b *breaker) report(failed bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		if !failed {
			b.failures = 0
			return
		}
		b.failures++
		if b.failures >= b.cfg.Threshold {
			b.trip()
		}
	case breakerHalfOpen:
		b.probing = false
		if failed {
			b.trip()
			return
		}
		b.state = breakerClosed
		b.failures = 0
	case breakerOpen:
		// A straggler from before the trip; its outcome is stale.
	}
}

// trip must be called with mu held.
func (b *breaker) trip() {
	b.state = breakerOpen
	b.openedAt = b.now()
	b.failures = 0
	b.probing = false
}

// snapshot returns the state for introspection (tests, CLI output).
func (b *breaker) snapshot() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
