package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// instantOpts disables real sleeping so retry tests run in
// microseconds: the injected Sleep records every pause and returns
// immediately.
func instantOpts(waits *[]time.Duration) Options {
	return Options{
		Sleep: func(ctx context.Context, d time.Duration) error {
			if waits != nil {
				*waits = append(*waits, d)
			}
			return nil
		},
	}
}

func TestHappyPathTypedMethods(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"status":"ok","generation":3,"ases":2,"peers":450,"degraded":false}`))
	})
	mux.HandleFunc("GET /v1/as/{asn}", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"asn":64500,"users":300,"samples":300,"class":{"level":"country","place":"IT","share":1},"region":"EU","p90_geoerr_km":18.5,"peers_by_app":{"kad":200}}`))
	})
	mux.HandleFunc("GET /v1/lookup", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"ip":"10.1.2.3","matched":true,"asn":64500,"in_dataset":true}`))
	})
	mux.HandleFunc("GET /v1/footprint/{asn}", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"asn":64500,"pops":[]}`))
	})
	mux.HandleFunc("POST /-/reload", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"status":"reloaded","generation":4}`))
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	c := New(ts.URL, Options{})
	ctx := context.Background()

	h, err := c.Healthz(ctx)
	if err != nil || h.Status != "ok" || h.Generation != 3 || h.Peers != 450 {
		t.Fatalf("Healthz = %+v, %v", h, err)
	}
	as, err := c.AS(ctx, 64500)
	if err != nil || as.ASN != 64500 || as.Class.Place != "IT" || as.PeersByApp["kad"] != 200 {
		t.Fatalf("AS = %+v, %v", as, err)
	}
	lr, err := c.Lookup(ctx, "10.1.2.3")
	if err != nil || !lr.Matched || lr.ASN != 64500 {
		t.Fatalf("Lookup = %+v, %v", lr, err)
	}
	fp, err := c.Footprint(ctx, 64500, 40)
	if err != nil || string(fp) != `{"asn":64500,"pops":[]}` {
		t.Fatalf("Footprint = %q, %v", fp, err)
	}
	rl, err := c.Reload(ctx)
	if err != nil || rl.Generation != 4 {
		t.Fatalf("Reload = %+v, %v", rl, err)
	}
}

func TestNotFoundIsTypedAndNotRetried(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusNotFound)
		w.Write([]byte(`{"error":"AS99 not in dataset"}`))
	}))
	defer ts.Close()
	c := New(ts.URL, instantOpts(nil))

	_, err := c.AS(context.Background(), 99)
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("404 error = %v, want ErrNotFound", err)
	}
	var api *APIError
	if !errors.As(err, &api) || api.Status != 404 || api.Endpoint != "as" {
		t.Fatalf("404 error not a typed APIError: %v", err)
	}
	if n := hits.Load(); n != 1 {
		t.Errorf("404 hit the server %d times; a final answer must not be retried", n)
	}
}

func TestRetriesThenSucceeds(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) < 3 {
			w.WriteHeader(http.StatusInternalServerError)
			w.Write([]byte(`{"error":"transient"}`))
			return
		}
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer ts.Close()
	var waits []time.Duration
	c := New(ts.URL, instantOpts(&waits))

	if _, err := c.Healthz(context.Background()); err != nil {
		t.Fatalf("call failed despite retries: %v", err)
	}
	if n := hits.Load(); n != 3 {
		t.Errorf("server saw %d attempts, want 3", n)
	}
	if len(waits) != 2 {
		t.Errorf("client paused %d times, want 2", len(waits))
	}
}

func TestAttemptsExhaustedReturnsLastError(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
		w.Write([]byte(`{"error":"still broken"}`))
	}))
	defer ts.Close()
	opts := instantOpts(nil)
	opts.MaxAttempts = 3
	opts.Breaker = BreakerConfig{Threshold: 100} // keep the circuit out of this test
	c := New(ts.URL, opts)

	_, err := c.Healthz(context.Background())
	var api *APIError
	if !errors.As(err, &api) || api.Status != 500 {
		t.Fatalf("exhausted error = %v, want APIError 500", err)
	}
	if n := hits.Load(); n != 3 {
		t.Errorf("server saw %d attempts, want MaxAttempts=3", n)
	}
}

func TestOverloadedHonorsRetryAfter(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			w.Header().Set("Retry-After", "7")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":"overloaded"}`))
			return
		}
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer ts.Close()
	var waits []time.Duration
	opts := instantOpts(&waits)
	opts.MaxBackoff = time.Second // jitter alone can never reach 7s
	c := New(ts.URL, opts)

	if _, err := c.Healthz(context.Background()); err != nil {
		t.Fatalf("call failed: %v", err)
	}
	if len(waits) != 1 || waits[0] < 7*time.Second {
		t.Fatalf("pause %v did not honor Retry-After: 7", waits)
	}
}

func TestOverloadedSurfacesTyped(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":"overloaded"}`))
	}))
	defer ts.Close()
	opts := instantOpts(nil)
	opts.MaxAttempts = 2
	c := New(ts.URL, opts)

	_, err := c.Healthz(context.Background())
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("sustained 503 error = %v, want ErrOverloaded", err)
	}
}

func TestTransportErrorIsUnavailable(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := ts.URL
	ts.Close() // nothing listens here any more
	opts := instantOpts(nil)
	opts.MaxAttempts = 2
	c := New(url, opts)

	_, err := c.Healthz(context.Background())
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("dead-server error = %v, want ErrUnavailable", err)
	}
}

func TestDeadlineAwareRetryNeverSleepsIntoAWall(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":"overloaded"}`))
	}))
	defer ts.Close()
	slept := false
	c := New(ts.URL, Options{
		Sleep: func(ctx context.Context, d time.Duration) error {
			slept = true
			return nil
		},
	})

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Healthz(ctx)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("error = %v, want the last real failure, not a deadline error", err)
	}
	if slept {
		t.Error("client slept toward a Retry-After its deadline could never survive")
	}
	if time.Since(start) > 2*time.Second {
		t.Error("deadline-aware retry still burned wall-clock time")
	}
}

func TestRetryBudgetExhausts(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
		w.Write([]byte(`{"error":"broken"}`))
	}))
	defer ts.Close()
	opts := instantOpts(nil)
	opts.MaxAttempts = 4
	opts.Breaker = BreakerConfig{Threshold: 1 << 30}
	c := New(ts.URL, opts)
	c.budget.tokens = 1 // one retry left in the bucket

	_, err := c.Healthz(context.Background())
	if !errors.Is(err, ErrRetryBudgetExhausted) {
		t.Fatalf("error = %v, want ErrRetryBudgetExhausted", err)
	}
	// First try + the single budgeted retry (the call also deposited
	// 0.2, still short of the next whole token).
	if n := hits.Load(); n != 2 {
		t.Errorf("server saw %d attempts, want 2", n)
	}
}

func TestCircuitOpensAndRecovers(t *testing.T) {
	var fail atomic.Bool
	fail.Store(true)
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if fail.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			w.Write([]byte(`{"error":"down"}`))
			return
		}
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer ts.Close()

	now := time.Unix(1000, 0)
	opts := instantOpts(nil)
	opts.MaxAttempts = 3
	opts.Breaker = BreakerConfig{Threshold: 4, Cooldown: time.Second}
	opts.Now = func() time.Time { return now }
	c := New(ts.URL, opts)
	ctx := context.Background()

	// Two calls × 3 attempts = 6 failures; threshold 4 trips mid-way
	// through the second call.
	c.Healthz(ctx)
	c.Healthz(ctx)
	if st := c.BreakerState("healthz"); st != "open" {
		t.Fatalf("breaker %s after sustained failure, want open", st)
	}
	wire := hits.Load()

	// Open circuit: refused locally, typed, zero network traffic.
	_, err := c.Healthz(ctx)
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open-circuit error = %v, want ErrCircuitOpen", err)
	}
	if hits.Load() != wire {
		t.Error("open circuit still reached the server")
	}

	// Other endpoints are unaffected: the partition is per-endpoint.
	if st := c.BreakerState("as"); st != "closed" {
		t.Errorf("as breaker %s, want closed (isolation)", st)
	}

	// Server heals; after the cooldown one probe goes through, closes
	// the circuit, and normal traffic resumes.
	fail.Store(false)
	now = now.Add(2 * time.Second)
	if _, err := c.Healthz(ctx); err != nil {
		t.Fatalf("probe call failed: %v", err)
	}
	if st := c.BreakerState("healthz"); st != "closed" {
		t.Fatalf("breaker %s after healthy probe, want closed", st)
	}
}

func TestHalfOpenProbeFailureReopens(t *testing.T) {
	now := time.Unix(0, 0)
	b := newBreaker(BreakerConfig{Threshold: 2, Cooldown: time.Second}, func() time.Time { return now })
	b.report(true)
	b.report(true)
	if b.snapshot() != breakerOpen {
		t.Fatal("threshold did not trip the breaker")
	}
	if b.allow() {
		t.Fatal("open breaker admitted a call inside the cooldown")
	}
	now = now.Add(time.Second)
	if !b.allow() {
		t.Fatal("cooldown elapsed but the probe was refused")
	}
	// Exactly one probe at a time.
	if b.allow() {
		t.Fatal("second concurrent probe admitted in half-open")
	}
	b.report(true) // probe failed
	if b.snapshot() != breakerOpen {
		t.Fatal("failed probe did not re-open the breaker")
	}
	// And the cooldown restarts from the failed probe.
	if b.allow() {
		t.Fatal("re-opened breaker admitted a call immediately")
	}
}

func TestBackoffDeterministicUnderSeed(t *testing.T) {
	seq := func(seed uint64) []time.Duration {
		r := &backoffRNG{state: seed}
		out := make([]time.Duration, 8)
		for i := range out {
			out[i] = backoff(r, 50*time.Millisecond, 2*time.Second, i+1)
		}
		return out
	}
	a, b := seq(7), seq(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded schedules diverge at retry %d: %v vs %v", i+1, a[i], b[i])
		}
	}
	c := seq(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical jitter — rng not actually seeded")
	}
}

func TestBackoffFullJitterBounds(t *testing.T) {
	r := &backoffRNG{state: 3}
	base, max := 50*time.Millisecond, 2*time.Second
	for retry := 1; retry <= 10; retry++ {
		ceil := base << (retry - 1)
		if ceil > max || ceil <= 0 {
			ceil = max
		}
		for i := 0; i < 200; i++ {
			d := backoff(r, base, max, retry)
			if d < 0 || d > ceil {
				t.Fatalf("retry %d: backoff %v outside [0, %v]", retry, d, ceil)
			}
		}
	}
}

func TestHedgedGetFirstSuccessWins(t *testing.T) {
	var hits atomic.Int64
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			// First request hangs until the test ends: only the hedge
			// can answer.
			select {
			case <-release:
			case <-r.Context().Done():
			}
			return
		}
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer ts.Close()
	defer close(release)

	opts := Options{HedgeAfter: 10 * time.Millisecond}
	c := New(ts.URL, opts)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	h, err := c.Healthz(ctx)
	if err != nil || h.Status != "ok" {
		t.Fatalf("hedged call = %+v, %v", h, err)
	}
	if time.Since(start) > 2*time.Second {
		t.Error("hedge did not rescue the stalled request in time")
	}
	if n := hits.Load(); n != 2 {
		t.Errorf("server saw %d requests, want primary + hedge = 2", n)
	}
}

func TestObserverSeesEveryAttempt(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			w.Header().Set("X-Chaos", "serve-500")
			w.WriteHeader(http.StatusInternalServerError)
			w.Write([]byte(`{"error":"injected"}`))
			return
		}
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer ts.Close()
	var seen []Attempt
	opts := instantOpts(nil)
	opts.Observer = func(a Attempt) { seen = append(seen, a) }
	c := New(ts.URL, opts)

	if _, err := c.Healthz(context.Background()); err != nil {
		t.Fatalf("call failed: %v", err)
	}
	if len(seen) != 2 {
		t.Fatalf("observer saw %d attempts, want 2", len(seen))
	}
	if seen[0].Status != 500 || seen[0].Chaos != "serve-500" {
		t.Errorf("first attempt = %+v, want injected 500 with chaos marker", seen[0])
	}
	if seen[1].Status != 200 {
		t.Errorf("second attempt = %+v, want the 200", seen[1])
	}
}
