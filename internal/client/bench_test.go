package client

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

// The happy-path overhead gate: BenchmarkClientLookup routes a request
// through the full resilience stack (budget, breaker, backoff plumbing)
// while BenchmarkDirectLookup issues the identical request with bare
// net/http. Both talk to the same kind of loopback server over shared
// keep-alive pools, so the ratio isolates the client's bookkeeping —
// scripts/bench_client.sh gates it at 1.05x.

var benchBody = []byte(`{"ip":"10.0.0.1","matched":true,"asn":64500,"prefix":"10.0.0.0/8","country":"IT"}`)

func benchServer(b *testing.B) *httptest.Server {
	b.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write(benchBody)
	}))
	b.Cleanup(ts.Close)
	return ts
}

func BenchmarkClientLookup(b *testing.B) {
	ts := benchServer(b)
	c := New(ts.URL, Options{HTTPClient: ts.Client()})
	ctx := context.Background()
	// Warm the connection pool so both benchmarks measure steady state.
	if _, err := c.Get(ctx, "/v1/lookup?ip=10.0.0.1"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Get(ctx, "/v1/lookup?ip=10.0.0.1"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDirectLookup(b *testing.B) {
	ts := benchServer(b)
	hc := ts.Client()
	url := ts.URL + "/v1/lookup?ip=10.0.0.1"
	do := func() error {
		req, err := http.NewRequestWithContext(context.Background(), http.MethodGet, url, nil)
		if err != nil {
			return err
		}
		resp, err := hc.Do(req)
		if err != nil {
			return err
		}
		_, err = io.ReadAll(resp.Body)
		resp.Body.Close()
		return err
	}
	if err := do(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := do(); err != nil {
			b.Fatal(err)
		}
	}
}
