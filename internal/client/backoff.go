package client

import "time"

// backoffRNG is a splitmix64 stream: the same generator the rest of
// the codebase uses for deterministic randomness, so a seeded client
// produces an exactly reproducible backoff schedule — the property the
// chaos e2e harness and the backoff unit tests both pin.
type backoffRNG struct{ state uint64 }

func (r *backoffRNG) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// backoff computes the sleep before retry number `retry` (1-based)
// using exponential growth with full jitter: uniform in
// [0, min(max, base<<(retry-1))]. Full jitter — rather than jittering
// around the exponential midpoint — de-synchronizes a thundering herd
// of clients that all saw the same failure at the same instant.
func backoff(r *backoffRNG, base, max time.Duration, retry int) time.Duration {
	if base <= 0 || retry < 1 {
		return 0
	}
	ceil := base
	for i := 1; i < retry; i++ {
		ceil *= 2
		if ceil >= max {
			ceil = max
			break
		}
	}
	if ceil > max {
		ceil = max
	}
	// Uniform in [0, ceil]: scale 53 random bits into the window.
	return time.Duration(float64(ceil) * (float64(r.next()>>11) / (1 << 53)))
}
