package client

import (
	"errors"
	"fmt"
)

// Sentinel errors. Every failure a Client method returns wraps exactly
// one of these (or is a context error from the caller's own deadline),
// so callers — and the chaos e2e harness — can classify outcomes with
// errors.Is and nothing falls through to string matching.
var (
	// ErrNotFound: the server answered 404 — the AS or prefix is not
	// in the dataset. Never retried.
	ErrNotFound = errors.New("client: not found")

	// ErrOverloaded: the server shed the request (503 + Retry-After)
	// and retries could not get it admitted before the attempt or
	// budget limit.
	ErrOverloaded = errors.New("client: server overloaded")

	// ErrCircuitOpen: the endpoint's circuit breaker is open; the
	// request was refused locally without touching the network.
	ErrCircuitOpen = errors.New("client: circuit open")

	// ErrRetryBudgetExhausted: the attempt failed retryably but the
	// client-wide retry budget is spent, so no retry was issued.
	ErrRetryBudgetExhausted = errors.New("client: retry budget exhausted")

	// ErrUnavailable: transport-level failure (connection reset, EOF,
	// refused) that retries did not outlast — the signature of the
	// serve-drop chaos point, a dead server, or a severed network.
	ErrUnavailable = errors.New("client: server unavailable")
)

// APIError is a non-2xx response that is not one of the sentinel
// cases above: the server spoke, the answer was an error. Unwraps to
// ErrNotFound/ErrOverloaded when the status maps to one.
type APIError struct {
	Endpoint string // logical endpoint name (as, lookup, footprint, healthz, reload)
	Status   int    // HTTP status code
	Message  string // server's JSON error field, or raw body prefix
	Chaos    string // X-Chaos header when the fault was injected, else ""

	// retryAfterHint carries the response's parsed Retry-After seconds
	// to the retry loop so the pause can honor it.
	retryAfterHint int
}

func (e *APIError) Error() string {
	return fmt.Sprintf("client: %s: HTTP %d: %s", e.Endpoint, e.Status, e.Message)
}

// Unwrap maps well-known statuses onto the sentinels so one errors.Is
// check covers both the typed and the sentinel view.
func (e *APIError) Unwrap() error {
	switch e.Status {
	case 404:
		return ErrNotFound
	case 503:
		return ErrOverloaded
	}
	return nil
}
