package client

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"eyeballas/internal/astopo"
	"eyeballas/internal/bgp"
	"eyeballas/internal/core"
	"eyeballas/internal/faults"
	"eyeballas/internal/gazetteer"
	"eyeballas/internal/geo"
	"eyeballas/internal/ipnet"
	"eyeballas/internal/leakcheck"
	"eyeballas/internal/obs"
	"eyeballas/internal/p2p"
	"eyeballas/internal/pipeline"
	"eyeballas/internal/serve"
	"eyeballas/internal/snapshot"
)

// e2eArtifact builds a small snapshot for the chaos harness: two ASes
// with enough samples for a footprint render, plus an LPM table for
// lookups. Kept deliberately smaller than serve's own fixture so a
// thousand requests with retries stay fast.
func e2eArtifact(t testing.TB, dir string) string {
	t.Helper()
	gaz := gazetteer.Default()
	loc := func(country, name string) geo.Point {
		for _, c := range gaz.InCountry(country) {
			if c.Name == name {
				return c.Loc
			}
		}
		t.Fatalf("gazetteer has no %s/%s", name, country)
		return geo.Point{}
	}
	sampleAt := func(center geo.Point, i int, city, country string) core.Sample {
		return core.Sample{
			Loc: geo.Point{
				Lat: center.Lat + 0.02*float64(i%7) - 0.06,
				Lon: center.Lon + 0.02*float64(i%5) - 0.04,
			},
			City: city, Country: country, GeoErrKm: float64(i % 20),
		}
	}
	milan := loc("IT", "Milan")
	sydney := loc("AU", "Sydney")
	samplesA := make([]core.Sample, 0, 60)
	for i := 0; i < 60; i++ {
		samplesA = append(samplesA, sampleAt(milan, i, "Milan", "IT"))
	}
	samplesB := make([]core.Sample, 0, 40)
	for i := 0; i < 40; i++ {
		samplesB = append(samplesB, sampleAt(sydney, i, "Sydney", "AU"))
	}
	ds := &pipeline.Dataset{
		ASes: map[astopo.ASN]*pipeline.ASRecord{
			64500: {
				ASN: 64500, Users: 60, Samples: samplesA,
				PeersByApp:  map[p2p.App]int{p2p.Kad: 60},
				Class:       core.Classification{Level: astopo.LevelCountry, Place: "IT", Share: 1},
				Region:      gazetteer.EU,
				P90GeoErrKm: 15,
			},
			64501: {
				ASN: 64501, Users: 40, Samples: samplesB,
				PeersByApp:  map[p2p.App]int{p2p.BitTorrent: 40},
				Class:       core.Classification{Level: astopo.LevelCity, Place: "Sydney/AU", Share: 1},
				Region:      gazetteer.OC,
				P90GeoErrKm: 8,
			},
		},
		Order:        []astopo.ASN{64500, 64501},
		TotalPeers:   100,
		CrawledPeers: 120,
		Funnel:       obs.NewFunnel("e2e"),
	}
	tbl := ipnet.NewTable[astopo.ASN]()
	for _, pv := range []struct {
		cidr string
		asn  astopo.ASN
	}{{"10.0.0.0/8", 64500}, {"172.16.0.0/12", 64501}} {
		p, err := ipnet.ParsePrefix(pv.cidr)
		if err != nil {
			t.Fatalf("ParsePrefix(%s): %v", pv.cidr, err)
		}
		tbl.Insert(p, pv.asn)
	}
	snap := &snapshot.Snapshot{
		Meta:    snapshot.Meta{Seed: 1, Label: "chaos-e2e"},
		Dataset: ds,
		Origins: bgp.NewOriginTableFromCompiled(tbl.Compile()),
	}
	path := dir + "/e2e.snap"
	if err := snapshot.WriteFile(path, snap); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	return path
}

func e2eServer(t testing.TB, opts serve.Options) (*serve.Server, *httptest.Server) {
	t.Helper()
	if opts.Gaz == nil {
		opts.Gaz = gazetteer.Default()
	}
	s := serve.New(opts)
	if _, err := s.LoadFile(e2eArtifact(t, t.TempDir())); err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	return s, ts
}

// freshConnClient returns an http.Client that opens a new connection
// per request. Keep-alive reuse would let net/http silently re-issue a
// GET whose reused connection died — the serve-drop signature — which
// would make the server draw a second chaos decision the Observer
// never saw and break exact ledger reconciliation.
func freshConnClient() *http.Client {
	return &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
}

// e2ePaths is the request mix: every chaos-covered endpoint class,
// footprints pinned to one bandwidth so the server cache keeps KDE
// renders off the hot path.
var e2ePaths = []string{
	"/v1/as/64500",
	"/v1/as/64501",
	"/v1/lookup?ip=10.1.2.3",
	"/v1/lookup?ip=172.16.5.5",
	"/v1/lookup?ip=192.0.2.1",
	"/v1/footprint/64500?bw=40",
	"/v1/footprint/64501?bw=40",
}

// TestChaosE2E is the acceptance harness: a seeded multi-point fault
// plan at roughly 10% total rate, 1000 requests from concurrent
// workers, and every single one must end in either a byte-correct
// response (identical to a fault-free reference server) or a typed
// error — the server never crashes, and afterward the client's
// attempt observations and the server's injection ledger must agree
// count-for-count per fault point.
func TestChaosE2E(t *testing.T) {
	defer leakcheck.Check(t)()

	// Reference: same artifact, no chaos. Its responses define
	// byte-correctness.
	_, refTS := e2eServer(t, serve.Options{MaxInflight: -1})
	defer refTS.Close()
	reference := make(map[string][]byte, len(e2ePaths))
	for _, p := range e2ePaths {
		resp, err := refTS.Client().Get(refTS.URL + p)
		if err != nil {
			t.Fatalf("reference GET %s: %v", p, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("reference GET %s: status %d, %v", p, resp.StatusCode, err)
		}
		reference[p] = body
	}

	// System under test: ~10% total injection across all four serve
	// points. Shedding is off so the ledger is a pure function of
	// (seed, request count) — scheduling cannot move it.
	plan, err := faults.ParseSpec("serve-slow=0.03,serve-500=0.04,serve-panic=0.01,serve-drop=0.02", 12345)
	if err != nil {
		t.Fatal(err)
	}
	chaos := serve.NewChaos(plan, 2*time.Millisecond)
	_, ts := e2eServer(t, serve.Options{MaxInflight: -1, CacheSize: 64, Chaos: chaos})
	defer ts.Close()

	hc := freshConnClient()
	defer hc.Transport.(*http.Transport).CloseIdleConnections()

	// Client-side ledger, fed by the Observer: one event per wire
	// attempt. Transport errors are the client-visible face of
	// serve-drop; everything else carries the X-Chaos marker.
	var obsDrop, obs500, obsPanic, obsSlow, obsAttempts atomic.Uint64
	c := New(ts.URL, Options{
		HTTPClient:  hc,
		MaxAttempts: 8,
		Seed:        99,
		Breaker:     BreakerConfig{Threshold: 1 << 30},
		Sleep:       func(ctx context.Context, d time.Duration) error { return nil },
		Observer: func(a Attempt) {
			obsAttempts.Add(1)
			switch {
			case a.Err != nil:
				obsDrop.Add(1)
			case a.Chaos == string(faults.Serve500):
				obs500.Add(1)
			case a.Chaos == string(faults.ServePanic):
				obsPanic.Add(1)
			case a.Chaos == string(faults.ServeSlow):
				obsSlow.Add(1)
			}
		},
	})

	const total = 1000
	const workers = 16
	var (
		wg           sync.WaitGroup
		byteWrong    atomic.Uint64
		typedErrs    atomic.Uint64
		unclassified atomic.Uint64
	)
	idx := atomic.Uint64{}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := idx.Add(1) - 1
				if i >= total {
					return
				}
				path := e2ePaths[i%uint64(len(e2ePaths))]
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				body, err := c.Get(ctx, path)
				cancel()
				if err == nil {
					if !bytes.Equal(body, reference[path]) {
						byteWrong.Add(1)
						t.Errorf("request %d (%s): response differs from fault-free reference", i, path)
					}
					continue
				}
				var api *APIError
				switch {
				case errors.Is(err, ErrUnavailable),
					errors.Is(err, ErrOverloaded),
					errors.Is(err, ErrCircuitOpen),
					errors.Is(err, ErrRetryBudgetExhausted),
					errors.Is(err, ErrNotFound),
					errors.As(err, &api):
					typedErrs.Add(1)
				default:
					unclassified.Add(1)
					t.Errorf("request %d (%s): unclassified error: %v", i, path, err)
				}
			}
		}()
	}
	wg.Wait()

	if n := unclassified.Load(); n != 0 {
		t.Fatalf("%d unclassified errors — every failure must be typed", n)
	}
	if n := byteWrong.Load(); n != 0 {
		t.Fatalf("%d responses differed from the fault-free reference", n)
	}

	// Ledger reconciliation: the server's applied-injection counts must
	// equal what the client observed, point by point, and every chaos
	// decision the server drew must correspond to an observed attempt.
	ledger := chaos.Ledger()
	if got, want := obsDrop.Load(), ledger[faults.ServeDrop]; got != want {
		t.Errorf("serve-drop: client observed %d transport errors, server injected %d", got, want)
	}
	if got, want := obs500.Load(), ledger[faults.Serve500]; got != want {
		t.Errorf("serve-500: client observed %d, server injected %d", got, want)
	}
	if got, want := obsPanic.Load(), ledger[faults.ServePanic]; got != want {
		t.Errorf("serve-panic: client observed %d, server injected %d", got, want)
	}
	if got, want := obsSlow.Load(), ledger[faults.ServeSlow]; got != want {
		t.Errorf("serve-slow: client observed %d, server injected %d", got, want)
	}
	if got, want := obsAttempts.Load(), chaos.Requests(); got != want {
		t.Errorf("client observed %d attempts, server drew %d chaos decisions", got, want)
	}
	if ledger[faults.ServeDrop] == 0 || ledger[faults.Serve500] == 0 || ledger[faults.ServeSlow] == 0 {
		t.Errorf("fault plan injected too little to prove anything: %v", ledger)
	}

	// The server survived all of it.
	resp, err := refTS.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("server unreachable after chaos run: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("server unhealthy after chaos run: %d", resp.StatusCode)
	}
}

// TestE2ECircuitBreakerOpensAndRecovers: under a total outage
// (serve-500 at rate 1) the endpoint's circuit must open — refusing
// locally, typed — and after the fault clears and the cooldown
// elapses, a probe must close it and traffic must flow again.
func TestE2ECircuitBreakerOpensAndRecovers(t *testing.T) {
	defer leakcheck.Check(t)()

	plan, err := faults.ParseSpec("serve-500=1", 7)
	if err != nil {
		t.Fatal(err)
	}
	srv, ts := e2eServer(t, serve.Options{MaxInflight: -1, Chaos: serve.NewChaos(plan, 0)})
	defer ts.Close()

	hc := freshConnClient()
	defer hc.Transport.(*http.Transport).CloseIdleConnections()
	c := New(ts.URL, Options{
		HTTPClient:  hc,
		MaxAttempts: 3,
		Breaker:     BreakerConfig{Threshold: 4, Cooldown: 50 * time.Millisecond},
		Sleep:       func(ctx context.Context, d time.Duration) error { return nil },
	})
	ctx := context.Background()

	// Sustained failure: within a few calls the breaker must trip and
	// the typed refusal must appear without touching the network.
	sawOpen := false
	for i := 0; i < 10 && !sawOpen; i++ {
		_, err := c.AS(ctx, 64500)
		if errors.Is(err, ErrCircuitOpen) {
			sawOpen = true
		} else if err == nil {
			t.Fatal("rate-1 serve-500 produced a success")
		}
	}
	if !sawOpen {
		t.Fatal("circuit never opened under sustained failure")
	}
	if st := c.BreakerState("as"); st != "open" && st != "half-open" {
		t.Fatalf("as breaker %s, want open", st)
	}

	// Fault clears; cooldown elapses; the next call is the half-open
	// probe, succeeds, and closes the circuit.
	srv.SetChaos(nil)
	time.Sleep(60 * time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := c.AS(ctx, 64500); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("client never recovered after the fault cleared")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if st := c.BreakerState("as"); st != "closed" {
		t.Fatalf("as breaker %s after recovery, want closed", st)
	}
}

// TestE2EShedAndTimeoutPathsLeakFree drives the two degraded serve
// paths — 503 shed under a tiny admission limit and 504 render
// timeout — through the real client and verifies no goroutine outlives
// the test on either side.
func TestE2EShedAndTimeoutPathsLeakFree(t *testing.T) {
	defer leakcheck.Check(t)()

	// Shed path: limit 1, held by a stuck footprint render? Simpler: a
	// serve-slow plan plus concurrency floods a MaxInflight-1 server so
	// some requests shed with 503 + Retry-After.
	plan, err := faults.ParseSpec("serve-slow=1", 3)
	if err != nil {
		t.Fatal(err)
	}
	_, shedTS := e2eServer(t, serve.Options{
		MaxInflight: 1,
		Chaos:       serve.NewChaos(plan, 20*time.Millisecond),
	})
	defer shedTS.Close()
	hc := freshConnClient()
	defer hc.Transport.(*http.Transport).CloseIdleConnections()
	shedC := New(shedTS.URL, Options{
		HTTPClient:  hc,
		MaxAttempts: 2,
		Sleep:       func(ctx context.Context, d time.Duration) error { return nil },
	})
	var wg sync.WaitGroup
	var sheds atomic.Uint64
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				_, err := shedC.AS(context.Background(), 64500)
				if errors.Is(err, ErrOverloaded) {
					sheds.Add(1)
				} else if err != nil && !errors.Is(err, ErrCircuitOpen) {
					var api *APIError
					if !errors.As(err, &api) {
						t.Errorf("shed-path error not typed: %v", err)
					}
				}
			}
		}()
	}
	wg.Wait()
	if sheds.Load() == 0 {
		t.Log("no request shed this run (slow fixture drained fast); shed path unexercised")
	}

	// Timeout path: a nanosecond deadline turns footprint renders into
	// 504s — an *APIError, final, never retried into a hang.
	_, toTS := e2eServer(t, serve.Options{MaxInflight: -1, Timeout: time.Nanosecond})
	defer toTS.Close()
	hc2 := freshConnClient()
	defer hc2.Transport.(*http.Transport).CloseIdleConnections()
	toC := New(toTS.URL, Options{
		HTTPClient:  hc2,
		MaxAttempts: 2,
		Sleep:       func(ctx context.Context, d time.Duration) error { return nil },
	})
	_, err = toC.Footprint(context.Background(), 64500, 35)
	var api *APIError
	if err == nil || !errors.As(err, &api) {
		t.Fatalf("timeout-path error = %v, want a typed APIError", err)
	}
	if api.Status != http.StatusGatewayTimeout {
		t.Errorf("timeout status %d, want 504", api.Status)
	}
}
