// Package client is the typed Go client for the eyeballserve /v1 API,
// built to stay correct while the server misbehaves: every call runs
// deadline-aware retries with full-jitter exponential backoff (a
// deterministic schedule under a seeded rng), honors the server's
// Retry-After on shed responses, spends from a client-wide retry
// budget so retries cannot amplify an outage, and routes through a
// per-endpoint circuit breaker (closed/open/half-open with a single
// probe). Idempotent GETs can optionally be hedged: a second attempt
// races the first when it is slow, first success wins.
//
// Every failure is typed — ErrNotFound, ErrOverloaded, ErrCircuitOpen,
// ErrRetryBudgetExhausted, ErrUnavailable, or an *APIError — so
// callers classify outcomes with errors.Is, never string matching.
// The Observer hook sees one event per wire attempt (status, X-Chaos
// marker, transport error), which is how the chaos e2e harness
// reconciles the client's view against the server's injection ledger.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Attempt is one wire-level try, reported to the Observer before the
// retry decision is made. Status is 0 when the attempt died in
// transport (the client-side signature of the serve-drop chaos point);
// Chaos carries the server's X-Chaos header when the response was
// fault-injected.
type Attempt struct {
	Endpoint string
	Status   int
	Chaos    string
	Hedged   bool
	Err      error
}

// Options configures a Client. The zero value of every field selects
// a production-reasonable default.
type Options struct {
	// HTTPClient issues the actual requests. Defaults to a dedicated
	// client (never http.DefaultClient, whose transport the process
	// may have tuned for other traffic).
	HTTPClient *http.Client

	// MaxAttempts bounds wire attempts per call, first try included.
	// Default 4.
	MaxAttempts int

	// BaseBackoff and MaxBackoff bound the full-jitter exponential
	// backoff: retry n sleeps uniform in [0, min(Max, Base<<(n-1))].
	// Defaults 50ms and 2s.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration

	// Seed makes the jitter stream deterministic: two clients with the
	// same seed draw identical backoff schedules. The zero seed is a
	// valid stream, not "random".
	Seed uint64

	// RetryBudgetRatio is the sustainable retry fraction: each call
	// deposits this many retry tokens, each retry withdraws one.
	// Default 0.2 (at most ~20% retry amplification in steady state).
	RetryBudgetRatio float64

	// Breaker tunes the per-endpoint circuit breakers.
	Breaker BreakerConfig

	// HedgeAfter arms hedged GETs: when a GET has produced no response
	// after this long, a second identical attempt races it and the
	// first success wins. 0 disables hedging. Non-idempotent requests
	// are never hedged.
	HedgeAfter time.Duration

	// Observer, when set, receives every wire attempt.
	Observer func(Attempt)

	// Now and Sleep are the clock seams. Tests inject both; production
	// leaves them nil for time.Now and a context-aware timer sleep.
	Now   func() time.Time
	Sleep func(ctx context.Context, d time.Duration) error
}

// endpoints is the fixed breaker partition: one circuit per logical
// endpoint so a broken footprint renderer cannot open the healthz
// circuit.
var endpoints = [...]string{"healthz", "as", "lookup", "footprint", "reload"}

// Client is a typed eyeballserve API client. Safe for concurrent use.
type Client struct {
	base string
	hc   *http.Client
	opts Options

	budget   *retryBudget
	breakers map[string]*breaker

	mu  sync.Mutex // guards rng
	rng backoffRNG
}

// New builds a client for the server at baseURL (scheme://host:port,
// no trailing slash required).
func New(baseURL string, opts Options) *Client {
	if opts.HTTPClient == nil {
		opts.HTTPClient = &http.Client{}
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 4
	}
	if opts.BaseBackoff <= 0 {
		opts.BaseBackoff = 50 * time.Millisecond
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = 2 * time.Second
	}
	if opts.RetryBudgetRatio <= 0 {
		opts.RetryBudgetRatio = 0.2
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	if opts.Sleep == nil {
		opts.Sleep = sleepCtx
	}
	c := &Client{
		base:     strings.TrimRight(baseURL, "/"),
		hc:       opts.HTTPClient,
		opts:     opts,
		budget:   newRetryBudget(opts.RetryBudgetRatio),
		breakers: make(map[string]*breaker, len(endpoints)),
		rng:      backoffRNG{state: opts.Seed},
	}
	for _, ep := range endpoints {
		c.breakers[ep] = newBreaker(opts.Breaker, opts.Now)
	}
	return c
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// BreakerState reports an endpoint's circuit state as a string
// (closed, open, half-open) — introspection for tests and operators.
func (c *Client) BreakerState(endpoint string) string {
	b := c.breakers[endpoint]
	if b == nil {
		return "unknown"
	}
	return b.snapshot().String()
}

// Health is the /healthz response.
type Health struct {
	Status     string `json:"status"`
	Generation uint64 `json:"generation"`
	ASes       int    `json:"ases"`
	Peers      int    `json:"peers"`
	Degraded   bool   `json:"degraded"`
}

// Healthz fetches liveness and the serving artifact summary.
func (c *Client) Healthz(ctx context.Context) (*Health, error) {
	body, err := c.call(ctx, "healthz", http.MethodGet, "/healthz")
	if err != nil {
		return nil, err
	}
	return decodeInto[Health]("healthz", body)
}

// ASInfo is the /v1/as/{asn} classification record.
type ASInfo struct {
	ASN     int `json:"asn"`
	Users   int `json:"users"`
	Samples int `json:"samples"`
	Class   struct {
		Level string  `json:"level"`
		Place string  `json:"place"`
		Share float64 `json:"share"`
	} `json:"class"`
	Region      string         `json:"region"`
	P90GeoErrKm float64        `json:"p90_geoerr_km"`
	PeersByApp  map[string]int `json:"peers_by_app"`
}

// AS fetches one AS's classification record. ErrNotFound when the AS
// is not in the dataset.
func (c *Client) AS(ctx context.Context, asn int) (*ASInfo, error) {
	body, err := c.call(ctx, "as", http.MethodGet, fmt.Sprintf("/v1/as/%d", asn))
	if err != nil {
		return nil, err
	}
	return decodeInto[ASInfo]("as", body)
}

// LookupResult is the /v1/lookup response.
type LookupResult struct {
	IP        string `json:"ip"`
	Matched   bool   `json:"matched"`
	ASN       int    `json:"asn"`
	InDataset bool   `json:"in_dataset"`
}

// Lookup resolves an IPv4 address to its origin AS via the server's
// compiled LPM table.
func (c *Client) Lookup(ctx context.Context, ip string) (*LookupResult, error) {
	body, err := c.call(ctx, "lookup", http.MethodGet, "/v1/lookup?ip="+ip)
	if err != nil {
		return nil, err
	}
	return decodeInto[LookupResult]("lookup", body)
}

// MaxBandwidthKm mirrors the server's bandwidth ceiling
// (serve.MaxBandwidthKm — a test pins the two constants equal): a
// ?bw= outside (0, MaxBandwidthKm] would only earn a 400 from the
// server, so the client rejects it before the wire. NaN and ±Inf fail
// the same envelope — this client used to happily format ?bw=+Inf.
const MaxBandwidthKm = 5000

// validBW reports whether bw is inside the request envelope: 0 (use
// the server default) or a finite value in (0, MaxBandwidthKm].
func validBW(bw float64) bool {
	return bw == 0 || (bw > 0 && bw <= MaxBandwidthKm)
}

// errBadBW builds the client-side rejection for an out-of-envelope
// bandwidth. NaN, ±Inf, negatives, and > MaxBandwidthKm all land here.
func errBadBW(bw float64) error {
	return fmt.Errorf("client: bad bandwidth %g (want 0 for server default, or 0 < bw <= %d km)", bw, MaxBandwidthKm)
}

// Footprint fetches an AS's PoP-level footprint as the server's
// canonical JSON bytes, unparsed — byte-for-byte comparable across
// servers, which the chaos harness exploits. bw 0 uses the server's
// default bandwidth; anything else must be finite and in
// (0, MaxBandwidthKm], mirroring the server's own validation.
func (c *Client) Footprint(ctx context.Context, asn int, bw float64) ([]byte, error) {
	if !validBW(bw) {
		return nil, errBadBW(bw)
	}
	path := fmt.Sprintf("/v1/footprint/%d", asn)
	if bw > 0 {
		path += fmt.Sprintf("?bw=%g", bw)
	}
	return c.call(ctx, "footprint", http.MethodGet, path)
}

// footprintsBatchSize bounds how many ASNs one bulk request carries;
// larger requests are split into sequential batches, results
// concatenated in order.
const footprintsBatchSize = 64

// Footprints fetches many ASes' footprints through the server's bulk
// endpoint (GET /v1/footprints), batching footprintsBatchSize ASNs per
// request. The result has exactly one entry per requested ASN, in
// request order; each entry is the raw line the server streamed —
// byte-identical to what Footprint would have returned for that AS,
// including the trailing newline, with per-AS errors (unknown AS,
// render failure) arriving inline as the server's JSON error payload
// rather than failing the whole batch. Only whole-request failures
// (transport, shed, bad input) return an error.
func (c *Client) Footprints(ctx context.Context, asns []int, bw float64) ([][]byte, error) {
	if !validBW(bw) {
		return nil, errBadBW(bw)
	}
	if len(asns) == 0 {
		return nil, fmt.Errorf("client: footprints: no ASNs given")
	}
	for _, asn := range asns {
		if asn < 0 {
			return nil, fmt.Errorf("client: footprints: bad ASN %d", asn)
		}
	}
	out := make([][]byte, 0, len(asns))
	for start := 0; start < len(asns); start += footprintsBatchSize {
		batch := asns[start:min(start+footprintsBatchSize, len(asns))]
		var sb strings.Builder
		sb.WriteString("/v1/footprints?asns=")
		for i, asn := range batch {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(strconv.Itoa(asn))
		}
		if bw > 0 {
			fmt.Fprintf(&sb, "&bw=%g", bw)
		}
		body, err := c.call(ctx, "footprint", http.MethodGet, sb.String())
		if err != nil {
			return nil, err
		}
		lines := splitLines(body)
		if len(lines) != len(batch) {
			return nil, fmt.Errorf("client: footprints: server returned %d lines for %d ASNs", len(lines), len(batch))
		}
		out = append(out, lines...)
	}
	return out, nil
}

// splitLines cuts a newline-delimited body into lines, each keeping
// its trailing newline (the server terminates every line, so a
// well-formed body splits exactly).
func splitLines(body []byte) [][]byte {
	var lines [][]byte
	for len(body) > 0 {
		i := bytes.IndexByte(body, '\n')
		if i < 0 {
			lines = append(lines, body)
			break
		}
		lines = append(lines, body[:i+1])
		body = body[i+1:]
	}
	return lines
}

// ReloadResult is the POST /-/reload response.
type ReloadResult struct {
	Status     string `json:"status"`
	Generation uint64 `json:"generation"`
	RolledBack bool   `json:"rolled_back"`
}

// Reload asks the server to hot-swap to the re-read artifact file.
// A reload that rolled back to the last-known-good artifact returns
// an *APIError whose decoded body set RolledBack — surfaced via the
// error message; the pinned generation keeps serving.
func (c *Client) Reload(ctx context.Context) (*ReloadResult, error) {
	body, err := c.call(ctx, "reload", http.MethodPost, "/-/reload")
	if err != nil {
		return nil, err
	}
	return decodeInto[ReloadResult]("reload", body)
}

// Get fetches an arbitrary server path with the full retry discipline,
// returning the raw response body. The breaker endpoint is inferred
// from the path; unknown paths share the healthz circuit.
func (c *Client) Get(ctx context.Context, path string) ([]byte, error) {
	return c.call(ctx, endpointOf(path), http.MethodGet, path)
}

func endpointOf(path string) string {
	switch {
	case strings.HasPrefix(path, "/v1/as/"):
		return "as"
	case strings.HasPrefix(path, "/v1/lookup"):
		return "lookup"
	case strings.HasPrefix(path, "/v1/footprint/"),
		strings.HasPrefix(path, "/v1/footprints"):
		return "footprint"
	case strings.HasPrefix(path, "/-/reload"):
		return "reload"
	}
	return "healthz"
}

func decodeInto[T any](endpoint string, body []byte) (*T, error) {
	v := new(T)
	if err := json.Unmarshal(body, v); err != nil {
		return nil, fmt.Errorf("client: %s: decoding response: %w", endpoint, err)
	}
	return v, nil
}

// attemptResult is one wire attempt's outcome.
type attemptResult struct {
	status     int
	body       []byte
	chaos      string
	retryAfter int // parsed Retry-After seconds, 0 when absent
	err        error
}

// call runs the full resilience pipeline for one logical request.
func (c *Client) call(ctx context.Context, endpoint, method, path string) ([]byte, error) {
	br := c.breakers[endpoint]
	c.budget.deposit()

	var lastErr error
	for attempt := 0; attempt < c.opts.MaxAttempts; attempt++ {
		if attempt > 0 {
			if !c.budget.withdraw() {
				return nil, fmt.Errorf("%w (endpoint %s): %v", ErrRetryBudgetExhausted, endpoint, lastErr)
			}
			if err := c.pause(ctx, attempt, lastErr); err != nil {
				return nil, err
			}
		}
		if !br.allow() {
			if lastErr != nil {
				return nil, fmt.Errorf("%w (endpoint %s): %v", ErrCircuitOpen, endpoint, lastErr)
			}
			return nil, fmt.Errorf("%w (endpoint %s)", ErrCircuitOpen, endpoint)
		}

		res := c.attempt(ctx, endpoint, method, path)

		switch {
		case res.err != nil:
			br.report(true)
			if ctx.Err() != nil {
				// The caller's deadline, not the server, killed the
				// attempt: surface the context error undisguised.
				return nil, ctx.Err()
			}
			lastErr = fmt.Errorf("%w (endpoint %s): %v", ErrUnavailable, endpoint, res.err)
		case res.status >= 200 && res.status < 300:
			br.report(false)
			return res.body, nil
		default:
			apiErr := &APIError{
				Endpoint: endpoint,
				Status:   res.status,
				Message:  errorMessage(res.body),
				Chaos:    res.chaos,
			}
			// 4xx means the server is healthy and the answer is final;
			// only server-side failure classes count against the
			// breaker or earn a retry.
			retryable := res.status >= 500
			br.report(retryable)
			if !retryable {
				return nil, apiErr
			}
			apiErr.retryAfterHint = res.retryAfter
			lastErr = apiErr
		}
	}
	return nil, lastErr
}

// retryAfterHint rides on APIError internally so pause can honor the
// server's Retry-After without re-parsing headers.
type retryAfterCarrier interface{ retryAfterSeconds() int }

func (e *APIError) retryAfterSeconds() int { return e.retryAfterHint }

// pause sleeps before a retry: full-jitter backoff, raised to the
// server's Retry-After when one was given, and skipped entirely —
// returning the prior error — when the caller's deadline cannot
// outlive the wait (deadline-aware retries never sleep into a wall).
func (c *Client) pause(ctx context.Context, retry int, lastErr error) error {
	c.mu.Lock()
	wait := backoff(&c.rng, c.opts.BaseBackoff, c.opts.MaxBackoff, retry)
	c.mu.Unlock()
	if rc, ok := lastErr.(retryAfterCarrier); ok {
		if ra := time.Duration(rc.retryAfterSeconds()) * time.Second; ra > wait {
			wait = ra
		}
	}
	if deadline, ok := ctx.Deadline(); ok && c.opts.Now().Add(wait).After(deadline) {
		return lastErr
	}
	if err := c.opts.Sleep(ctx, wait); err != nil {
		return err
	}
	return nil
}

// attempt performs one wire attempt, hedged when armed and idempotent.
func (c *Client) attempt(ctx context.Context, endpoint, method, path string) attemptResult {
	if c.opts.HedgeAfter <= 0 || method != http.MethodGet {
		return c.roundTrip(ctx, endpoint, method, path, false)
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan attemptResult, 2)
	go func() { ch <- c.roundTrip(hctx, endpoint, method, path, false) }()
	timer := time.NewTimer(c.opts.HedgeAfter)
	defer timer.Stop()
	inflight := 1
	for {
		select {
		case res := <-ch:
			if res.err == nil && res.status >= 200 && res.status < 300 {
				return res // first success wins; cancel() reaps the loser
			}
			inflight--
			if inflight == 0 {
				return res
			}
			// A failure with the hedge still running: let the hedge
			// decide the attempt.
		case <-timer.C:
			inflight++
			go func() { ch <- c.roundTrip(hctx, endpoint, method, path, true) }()
		}
	}
}

// roundTrip is the single-request primitive: one HTTP exchange, one
// Observer event. Attempts canceled by hedging (not by the caller)
// are not observed — they are bookkeeping, not outcomes.
func (c *Client) roundTrip(ctx context.Context, endpoint, method, path string, hedged bool) attemptResult {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, nil)
	if err != nil {
		return attemptResult{err: err}
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		if ctx.Err() == context.Canceled {
			// Canceled, not failed: a reaped hedge loser or a caller
			// that walked away. Not an outcome; invisible to the
			// Observer so ledgers stay exact.
			return attemptResult{err: err}
		}
		c.observe(Attempt{Endpoint: endpoint, Err: err, Hedged: hedged})
		return attemptResult{err: err}
	}
	defer resp.Body.Close()
	body, readErr := io.ReadAll(resp.Body)
	if readErr != nil {
		c.observe(Attempt{Endpoint: endpoint, Err: readErr, Hedged: hedged})
		return attemptResult{err: readErr}
	}
	res := attemptResult{
		status: resp.StatusCode,
		body:   body,
		chaos:  resp.Header.Get("X-Chaos"),
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if n, err := strconv.Atoi(ra); err == nil && n > 0 {
			res.retryAfter = n
		}
	}
	c.observe(Attempt{Endpoint: endpoint, Status: res.status, Chaos: res.chaos, Hedged: hedged})
	return res
}

func (c *Client) observe(a Attempt) {
	if c.opts.Observer != nil {
		c.opts.Observer(a)
	}
}

// errorMessage extracts the server's JSON error field, falling back to
// a body prefix for non-JSON responses.
func errorMessage(body []byte) string {
	var m struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &m); err == nil && m.Error != "" {
		return m.Error
	}
	s := strings.TrimSpace(string(body))
	if len(s) > 120 {
		s = s[:120] + "…"
	}
	return s
}

// retryBudget is the Finagle-style token bucket that keeps retries
// from amplifying an outage: every logical call deposits Ratio
// tokens, every retry withdraws one, so sustained retry traffic is at
// most Ratio of the base request rate. The bucket starts with a small
// float so cold clients can still retry their first few failures.
type retryBudget struct {
	mu     sync.Mutex
	tokens float64
	ratio  float64
}

const (
	retryBudgetInit = 10.0
	retryBudgetCap  = 100.0
)

func newRetryBudget(ratio float64) *retryBudget {
	return &retryBudget{tokens: retryBudgetInit, ratio: ratio}
}

func (b *retryBudget) deposit() {
	b.mu.Lock()
	b.tokens += b.ratio
	if b.tokens > retryBudgetCap {
		b.tokens = retryBudgetCap
	}
	b.mu.Unlock()
}

func (b *retryBudget) withdraw() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
