package refdata

import (
	"testing"

	"eyeballas/internal/astopo"
	"eyeballas/internal/geo"
	"eyeballas/internal/rng"
)

func build(t *testing.T, seed uint64) (*astopo.World, *Reference) {
	t.Helper()
	w, err := astopo.Generate(astopo.SmallConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	return w, Build(w, DefaultConfig(), rng.New(seed).Split("ref"))
}

func TestOnlyPublishersListed(t *testing.T) {
	w, ref := build(t, 92)
	if len(ref.Lists) == 0 {
		t.Fatal("no reference lists")
	}
	for _, asn := range ref.ASNs() {
		a := w.AS(asn)
		if a == nil || !a.PublishesPoPs {
			t.Errorf("non-publishing AS %d in reference", asn)
		}
	}
}

func TestListsInflatedBeyondTruePoPs(t *testing.T) {
	// The paper's reference lists average 43.7 entries while KDE at
	// 40 km finds 13.6 — published lists must be larger than the true
	// user-PoP sets on average.
	w, ref := build(t, 93)
	totalRef, totalTrue, n := 0, 0, 0
	for _, asn := range ref.ASNs() {
		totalRef += len(ref.Lists[asn])
		totalTrue += len(w.AS(asn).PoPs)
		n++
	}
	if n == 0 {
		t.Skip("no publishers at this seed")
	}
	if totalRef <= totalTrue {
		t.Errorf("reference entries %d <= true PoPs %d; lists not inflated", totalRef, totalTrue)
	}
}

func TestEntriesWellFormed(t *testing.T) {
	w, ref := build(t, 94)
	for _, asn := range ref.ASNs() {
		seen := map[string]bool{}
		for _, e := range ref.Lists[asn] {
			if e.City == "" || !e.Loc.Valid() {
				t.Fatalf("AS %d: malformed entry %+v", asn, e)
			}
			if seen[e.City] {
				t.Fatalf("AS %d: duplicate city %s", asn, e.City)
			}
			seen[e.City] = true
		}
		locs := ref.Locations(asn)
		if len(locs) != len(ref.Lists[asn]) {
			t.Fatalf("Locations length mismatch for AS %d", asn)
		}
	}
	_ = w
}

func TestMostTruePoPsIncluded(t *testing.T) {
	w, ref := build(t, 95)
	included, total := 0, 0
	for _, asn := range ref.ASNs() {
		a := w.AS(asn)
		for _, p := range a.PoPs {
			total++
			for _, e := range ref.Lists[asn] {
				if e.City == p.City.Name {
					included++
					break
				}
			}
		}
	}
	if total == 0 {
		t.Skip("no publishers")
	}
	if frac := float64(included) / float64(total); frac < 0.75 {
		t.Errorf("only %.2f of true PoPs published (IncludeProb is 0.93)", frac)
	}
}

func TestAccessEntriesAreOffPoP(t *testing.T) {
	w, ref := build(t, 96)
	for _, asn := range ref.ASNs() {
		a := w.AS(asn)
		for _, e := range ref.Lists[asn] {
			if e.Kind != KindAccess {
				continue
			}
			for _, p := range a.PoPs {
				if p.City.Name == e.City {
					t.Errorf("AS %d: access entry %s collides with a true PoP", asn, e.City)
				}
			}
			// Access entries stay in the home country.
			city, ok := w.Gazetteer.Find(e.City, a.Country)
			if !ok {
				t.Errorf("AS %d: access entry %s not in home country %s", asn, e.City, a.Country)
			} else if geo.DistanceKm(city.Loc, e.Loc) > 1 {
				t.Errorf("AS %d: access entry location off its city", asn)
			}
		}
	}
}

func TestDeterministic(t *testing.T) {
	_, r1 := build(t, 97)
	_, r2 := build(t, 97)
	if len(r1.Lists) != len(r2.Lists) {
		t.Fatal("list counts differ")
	}
	for asn, l1 := range r1.Lists {
		l2 := r2.Lists[asn]
		if len(l1) != len(l2) {
			t.Fatalf("AS %d list length differs", asn)
		}
		for i := range l1 {
			if l1[i] != l2[i] {
				t.Fatalf("AS %d entry %d differs", asn, i)
			}
		}
	}
}
