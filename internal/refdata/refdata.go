// Package refdata synthesizes the paper's §5 reference dataset: the PoP
// lists some ISPs "post on their websites", collected by hand as ground
// truth for validation. Real published lists are messy in three ways the
// paper itself enumerates — they include PoPs serving no end users, they
// use inconsistent granularity (access points listed as PoPs), and they
// go stale — and this generator reproduces all three, which is what makes
// the Figure 2 validation curves non-trivial.
package refdata

import (
	"sort"

	"eyeballas/internal/astopo"
	"eyeballas/internal/gazetteer"
	"eyeballas/internal/geo"
	"eyeballas/internal/rng"
)

// EntryKind records why a reference entry exists (evaluation metadata;
// the validation itself only uses locations).
type EntryKind int

// Reference entry provenance.
const (
	KindTruePoP EntryKind = iota // a real PoP of the AS
	KindAccess                   // an access point listed as a PoP
	KindForeign                  // a provider's PoP listed as own
)

// Entry is one published PoP claim.
type Entry struct {
	City string
	Loc  geo.Point
	Kind EntryKind
}

// Config tunes the publication noise.
type Config struct {
	// IncludeProb keeps each true PoP on the published list (stale pages
	// miss recent PoPs).
	IncludeProb float64
	// AccessPerPoP is the mean number of access-point entries added per
	// true user PoP, at other cities of the home country.
	AccessPerPoP float64
	// ForeignProb adds one provider PoP to the list.
	ForeignProb float64
}

// DefaultConfig mirrors the paper's observation that published lists are
// much longer than what user-density analysis can resolve (45 reference
// ASes averaged 43.7 published PoPs vs 13.6 discovered at 40 km).
func DefaultConfig() Config {
	return Config{IncludeProb: 0.93, AccessPerPoP: 2.2, ForeignProb: 0.15}
}

// Reference maps publishing ASes to their published PoP entries.
type Reference struct {
	Lists map[astopo.ASN][]Entry
}

// ASNs returns the publishing ASes, ascending.
func (r *Reference) ASNs() []astopo.ASN {
	out := make([]astopo.ASN, 0, len(r.Lists))
	for a := range r.Lists {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Locations returns just the entry locations for an AS.
func (r *Reference) Locations(a astopo.ASN) []geo.Point {
	entries := r.Lists[a]
	out := make([]geo.Point, len(entries))
	for i, e := range entries {
		out[i] = e.Loc
	}
	return out
}

// Build collects the published PoP lists of every PublishesPoPs AS.
func Build(w *astopo.World, cfg Config, src *rng.Source) *Reference {
	ref := &Reference{Lists: make(map[astopo.ASN][]Entry)}
	for _, a := range w.ASes() {
		if !a.PublishesPoPs {
			continue
		}
		s := src.SplitN("refdata", int(a.ASN))
		var list []Entry
		listed := map[string]bool{}
		add := func(e Entry) {
			key := e.City
			if listed[key] {
				return
			}
			listed[key] = true
			list = append(list, e)
		}

		// True PoPs, each included with IncludeProb.
		for _, p := range a.PoPs {
			if s.Bool(cfg.IncludeProb) {
				add(Entry{City: p.City.Name, Loc: p.City.Loc, Kind: KindTruePoP})
			}
		}

		// Access points: other cities of the home country, which the AS
		// reaches but where user density is too thin for KDE to resolve.
		countryCities := w.Gazetteer.MajorInCountry(a.Country)
		nAccess := s.Poisson(cfg.AccessPerPoP * float64(len(a.UserPoPs())))
		for i := 0; i < nAccess && i < 4*len(countryCities); i++ {
			c := countryCities[s.Intn(len(countryCities))]
			if hasPoPIn(a, c) {
				continue
			}
			add(Entry{City: c.Name, Loc: c.Loc, Kind: KindAccess})
		}

		// Occasionally a provider's PoP is listed as the AS's own.
		if s.Bool(cfg.ForeignProb) {
			provs := w.Providers(a.ASN)
			if len(provs) > 0 {
				p := w.AS(provs[s.Intn(len(provs))])
				if len(p.PoPs) > 0 {
					c := p.PoPs[s.Intn(len(p.PoPs))].City
					add(Entry{City: c.Name, Loc: c.Loc, Kind: KindForeign})
				}
			}
		}

		if len(list) > 0 {
			ref.Lists[a.ASN] = list
		}
	}
	return ref
}

func hasPoPIn(a *astopo.AS, c gazetteer.City) bool {
	for _, p := range a.PoPs {
		if p.City.Name == c.Name && p.City.Country == c.Country {
			return true
		}
	}
	return false
}
