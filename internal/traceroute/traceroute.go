// Package traceroute simulates vantage-point-limited traceroute
// measurement over the synthetic world and implements a DIMES-style PoP
// extractor — the paper's §5 comparison baseline (Shavitt & Zilberman,
// "A Structural Approach for PoP Geo-Location").
//
// The simulation reproduces the structural reason DIMES sees so few PoPs
// per eyeball AS (1.54 on average vs the paper's 7.14): probes enter an
// eyeball AS through whichever PoP is closest to the upstream hop, and a
// handful of vantage points exercise only a handful of entry PoPs.
package traceroute

import (
	"fmt"
	"sort"

	"eyeballas/internal/astopo"
	"eyeballas/internal/bgp"
	"eyeballas/internal/gazetteer"
	"eyeballas/internal/geo"
	"eyeballas/internal/rng"
)

// Hop is one AS-level traceroute hop with the geolocation of the router
// interface observed there.
type Hop struct {
	ASN  astopo.ASN
	City gazetteer.City
}

// Trace is one simulated traceroute.
type Trace struct {
	From, To astopo.ASN
	Hops     []Hop
}

// Config controls the measurement campaign.
type Config struct {
	// Vantages is how many vantage-point ASes launch probes (DIMES-style
	// agent deployments are small; default 8).
	Vantages int
	// TargetsPerAS is how many probes hit each destination AS; default 4.
	TargetsPerAS int
}

// DefaultConfig returns the baseline campaign size.
func DefaultConfig() Config { return Config{Vantages: 8, TargetsPerAS: 4} }

// Simulate runs the campaign against every AS with customers (the
// eyeball population). Vantage ASes are chosen deterministically: the
// first eyeballs of each region in creation order, which mirrors the
// volunteer-hosted agents of DIMES.
func Simulate(w *astopo.World, routing *bgp.Routing, cfg Config, src *rng.Source) ([]Trace, error) {
	if cfg.Vantages <= 0 || cfg.TargetsPerAS <= 0 {
		return nil, fmt.Errorf("traceroute: Vantages and TargetsPerAS must be positive")
	}
	var vantages []*astopo.AS
	for _, a := range w.Eyeballs() {
		vantages = append(vantages, a)
		if len(vantages) == cfg.Vantages {
			break
		}
	}
	if len(vantages) == 0 {
		return nil, fmt.Errorf("traceroute: world has no eyeball ASes")
	}

	// Each probe targets an end user of the destination AS, but only the
	// AS's entry PoP answers: access-network hops between the entry PoP
	// and the user's home are the silent last mile — the structural
	// reason traceroute-based PoP inference undercounts eyeball PoPs
	// (§5). src is reserved for future probe-level noise; the campaign
	// itself is deterministic.
	_ = src
	var traces []Trace
	for _, dst := range w.ASes() {
		if dst.Customers <= 0 {
			continue
		}
		for t := 0; t < cfg.TargetsPerAS; t++ {
			v := vantages[(t+int(dst.ASN))%len(vantages)]
			path := routing.Path(v.ASN, dst.ASN)
			if path == nil {
				continue
			}
			traces = append(traces, buildTrace(w, path))
		}
	}
	return traces, nil
}

// buildTrace walks an AS path choosing, in each AS, the PoP nearest the
// previous hop's location (hot-potato-like entry).
func buildTrace(w *astopo.World, path []astopo.ASN) Trace {
	tr := Trace{From: path[0], To: path[len(path)-1]}
	cur := w.AS(path[0]).PoPs[0].City
	for _, asn := range path {
		city := nearestPoPCity(w.AS(asn), cur.Loc)
		tr.Hops = append(tr.Hops, Hop{ASN: asn, City: city})
		cur = city
	}
	return tr
}

func nearestPoPCity(a *astopo.AS, from geo.Point) gazetteer.City {
	best := a.PoPs[0].City
	bestD := geo.DistanceKm(from, best.Loc)
	for _, p := range a.PoPs[1:] {
		if d := geo.DistanceKm(from, p.City.Loc); d < bestD {
			best, bestD = p.City, d
		}
	}
	return best
}

// Targeted runs the measurement §7 proposes: tracerouting *towards the
// edge*, aimed at specific locations inside specific ASes (typically the
// PoP cities a KDE footprint just discovered). Unlike the blind campaign,
// a targeted probe is answered by the destination AS's PoP nearest the
// probed location — edge-cooperative measurement (think: a user-hosted
// probe, or an RTT-confirmed last-hop) exposes the home PoP that blind
// probing cannot see.
//
// targets maps each destination AS to the locations to probe. The
// returned traces can be fed to PoPs like any others.
func Targeted(w *astopo.World, routing *bgp.Routing, targets map[astopo.ASN][]geo.Point, vantages int) ([]Trace, error) {
	if vantages < 1 {
		return nil, fmt.Errorf("traceroute: vantages must be >= 1")
	}
	var vantageASes []*astopo.AS
	for _, a := range w.Eyeballs() {
		vantageASes = append(vantageASes, a)
		if len(vantageASes) == vantages {
			break
		}
	}
	if len(vantageASes) == 0 {
		return nil, fmt.Errorf("traceroute: world has no eyeball ASes")
	}
	// Deterministic iteration over targets.
	asns := make([]astopo.ASN, 0, len(targets))
	for asn := range targets {
		asns = append(asns, asn)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })

	var traces []Trace
	for _, asn := range asns {
		dst := w.AS(asn)
		if dst == nil {
			return nil, fmt.Errorf("traceroute: unknown target AS %d", asn)
		}
		for t, loc := range targets[asn] {
			v := vantageASes[(t+int(asn))%len(vantageASes)]
			path := routing.Path(v.ASN, asn)
			if path == nil {
				continue
			}
			tr := buildTrace(w, path)
			// The targeted probe's final answer comes from the PoP
			// serving the probed location.
			home := nearestPoPCity(dst, loc)
			last := tr.Hops[len(tr.Hops)-1]
			if last.City.Name != home.Name || last.City.Country != home.Country {
				tr.Hops = append(tr.Hops, Hop{ASN: asn, City: home})
			}
			traces = append(traces, tr)
		}
	}
	return traces, nil
}

// PoPs extracts DIMES-style PoP locations per AS: the distinct cities at
// which an AS's interfaces were observed across all traces.
func PoPs(traces []Trace) map[astopo.ASN][]geo.Point {
	seen := map[astopo.ASN]map[string]geo.Point{}
	for _, tr := range traces {
		for _, h := range tr.Hops {
			if seen[h.ASN] == nil {
				seen[h.ASN] = map[string]geo.Point{}
			}
			seen[h.ASN][h.City.Name+"/"+h.City.Country] = h.City.Loc
		}
	}
	out := make(map[astopo.ASN][]geo.Point, len(seen))
	for asn, cities := range seen {
		keys := make([]string, 0, len(cities))
		for k := range cities {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			out[asn] = append(out[asn], cities[k])
		}
	}
	return out
}

// MeanPoPsPerAS averages the per-AS PoP counts over the given AS set.
func MeanPoPsPerAS(pops map[astopo.ASN][]geo.Point, over []astopo.ASN) float64 {
	if len(over) == 0 {
		return 0
	}
	total := 0
	for _, a := range over {
		total += len(pops[a])
	}
	return float64(total) / float64(len(over))
}
