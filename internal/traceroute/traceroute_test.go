package traceroute

import (
	"sync"
	"testing"

	"eyeballas/internal/astopo"
	"eyeballas/internal/bgp"
	"eyeballas/internal/geo"
	"eyeballas/internal/rng"
)

var shared struct {
	once   sync.Once
	w      *astopo.World
	traces []Trace
	err    error
}

func setup(t *testing.T) (*astopo.World, []Trace) {
	t.Helper()
	shared.once.Do(func() {
		w, err := astopo.Generate(astopo.SmallConfig(101))
		if err != nil {
			shared.err = err
			return
		}
		routing := bgp.ComputeRouting(w)
		traces, err := Simulate(w, routing, DefaultConfig(), rng.New(101).Split("tr"))
		if err != nil {
			shared.err = err
			return
		}
		shared.w, shared.traces = w, traces
	})
	if shared.err != nil {
		t.Fatal(shared.err)
	}
	return shared.w, shared.traces
}

func TestSimulateProducesTraces(t *testing.T) {
	w, traces := setup(t)
	if len(traces) == 0 {
		t.Fatal("no traces")
	}
	for i, tr := range traces[:200] {
		if len(tr.Hops) == 0 {
			t.Fatalf("trace %d has no hops", i)
		}
		if tr.Hops[0].ASN != tr.From {
			t.Fatalf("trace %d starts at AS %d, want %d", i, tr.Hops[0].ASN, tr.From)
		}
		if tr.Hops[len(tr.Hops)-1].ASN != tr.To {
			t.Fatalf("trace %d ends at AS %d, want %d", i, tr.Hops[len(tr.Hops)-1].ASN, tr.To)
		}
		for _, h := range tr.Hops {
			a := w.AS(h.ASN)
			if a == nil {
				t.Fatalf("hop in unknown AS %d", h.ASN)
			}
			// The hop city must be one of the AS's PoP cities.
			found := false
			for _, p := range a.PoPs {
				if p.City.Name == h.City.Name && p.City.Country == h.City.Country {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("hop city %s not a PoP of AS %d", h.City, h.ASN)
			}
		}
	}
}

func TestPoPsSubsetOfTruth(t *testing.T) {
	w, traces := setup(t)
	pops := PoPs(traces)
	for asn, pts := range pops {
		a := w.AS(asn)
		if len(pts) > len(a.PoPs) {
			t.Errorf("AS %d: %d observed PoPs > %d true PoPs", asn, len(pts), len(a.PoPs))
		}
		for _, pt := range pts {
			ok := false
			for _, p := range a.PoPs {
				if geo.DistanceKm(pt, p.City.Loc) < 1 {
					ok = true
					break
				}
			}
			if !ok {
				t.Errorf("AS %d: observed PoP %v not at a true PoP city", asn, pt)
			}
		}
	}
}

// TestEyeballUndersampling is the §5 DIMES phenomenon: traceroute sees
// far fewer PoPs per eyeball AS than the AS really has, because probes
// funnel through few entry PoPs.
func TestEyeballUndersampling(t *testing.T) {
	w, traces := setup(t)
	pops := PoPs(traces)
	var multiPoP []astopo.ASN
	trueTotal := 0
	for _, a := range w.Eyeballs() {
		if len(a.PoPs) >= 4 {
			multiPoP = append(multiPoP, a.ASN)
			trueTotal += len(a.PoPs)
		}
	}
	if len(multiPoP) == 0 {
		t.Skip("no multi-PoP eyeballs at this seed")
	}
	observed := MeanPoPsPerAS(pops, multiPoP)
	trueMean := float64(trueTotal) / float64(len(multiPoP))
	if observed >= trueMean*0.8 {
		t.Errorf("traceroute observed %.2f PoPs/AS vs true %.2f; expected strong undersampling", observed, trueMean)
	}
	if observed < 1 {
		t.Errorf("observed %.2f PoPs/AS; every probed AS shows at least its entry PoP", observed)
	}
}

func TestMeanPoPsPerAS(t *testing.T) {
	pops := map[astopo.ASN][]geo.Point{
		1: {{Lat: 1}, {Lat: 2}},
		2: {{Lat: 3}},
	}
	if got := MeanPoPsPerAS(pops, []astopo.ASN{1, 2}); got != 1.5 {
		t.Errorf("mean = %v", got)
	}
	if got := MeanPoPsPerAS(pops, []astopo.ASN{3}); got != 0 {
		t.Errorf("absent AS mean = %v", got)
	}
	if got := MeanPoPsPerAS(pops, nil); got != 0 {
		t.Errorf("empty mean = %v", got)
	}
}

func TestSimulateValidation(t *testing.T) {
	w, _ := setup(t)
	routing := bgp.ComputeRouting(w)
	if _, err := Simulate(w, routing, Config{Vantages: 0, TargetsPerAS: 1}, rng.New(1)); err == nil {
		t.Error("zero vantages accepted")
	}
	if _, err := Simulate(w, routing, Config{Vantages: 1, TargetsPerAS: 0}, rng.New(1)); err == nil {
		t.Error("zero targets accepted")
	}
}

func TestTargetedRevealsHomePoPs(t *testing.T) {
	w, _ := setup(t)
	routing := bgp.ComputeRouting(w)
	// Pick a multi-PoP eyeball and target every one of its PoP cities.
	var subject *astopo.AS
	for _, a := range w.Eyeballs() {
		if len(a.UserPoPs()) >= 3 {
			subject = a
			break
		}
	}
	if subject == nil {
		t.Skip("no multi-PoP eyeball at this seed")
	}
	targets := map[astopo.ASN][]geo.Point{subject.ASN: nil}
	for _, p := range subject.UserPoPs() {
		targets[subject.ASN] = append(targets[subject.ASN], p.City.Loc)
	}
	traces, err := Targeted(w, routing, targets, 8)
	if err != nil {
		t.Fatal(err)
	}
	pops := PoPs(traces)[subject.ASN]
	// Targeted probing must reveal at least as many PoPs as the blind
	// campaign reveals for this AS, and at least one per probed city set
	// beyond the single entry PoP.
	if len(pops) < 2 {
		t.Errorf("targeted probing revealed only %d PoPs of a %d-PoP AS", len(pops), len(subject.PoPs))
	}
	for _, pt := range pops {
		ok := false
		for _, p := range subject.PoPs {
			if geo.DistanceKm(pt, p.City.Loc) < 1 {
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("targeted probe invented PoP at %v", pt)
		}
	}
}

func TestTargetedErrors(t *testing.T) {
	w, _ := setup(t)
	routing := bgp.ComputeRouting(w)
	if _, err := Targeted(w, routing, nil, 0); err == nil {
		t.Error("zero vantages accepted")
	}
	bad := map[astopo.ASN][]geo.Point{999999: {{Lat: 1, Lon: 1}}}
	if _, err := Targeted(w, routing, bad, 4); err == nil {
		t.Error("unknown AS accepted")
	}
}
