package core

import (
	"math"
	"testing"

	"eyeballas/internal/gazetteer"
	"eyeballas/internal/geo"
)

func popAt(name string, p geo.Point) PoP {
	return PoP{City: gazetteer.City{Name: name, Loc: p}, PeakLoc: p}
}

func TestMatchPoPsBothDirections(t *testing.T) {
	discovered := []PoP{
		popAt("a", geo.Point{Lat: 45, Lon: 9}),
		popAt("b", geo.Point{Lat: 41.9, Lon: 12.5}),
		popAt("c", geo.Point{Lat: 50, Lon: 20}), // spurious
	}
	reference := []geo.Point{
		{Lat: 45.1, Lon: 9.1},  // matches a
		{Lat: 41.8, Lon: 12.4}, // matches b
		{Lat: 38, Lon: 15},     // missed
	}
	m := MatchPoPs(discovered, reference, MatchRadiusKm)
	if m.NReference != 3 || m.NDiscovered != 3 {
		t.Fatalf("counts: %+v", m)
	}
	if m.RefMatched != 2 || m.DiscMatched != 2 {
		t.Errorf("matched: %+v", m)
	}
	if math.Abs(m.RefMatchedFrac()-2.0/3) > 1e-9 || math.Abs(m.DiscMatchedFrac()-2.0/3) > 1e-9 {
		t.Errorf("fracs: %v %v", m.RefMatchedFrac(), m.DiscMatchedFrac())
	}
	if m.Superset() {
		t.Error("not a superset but reported as one")
	}
}

func TestMatchPoPsSuperset(t *testing.T) {
	discovered := []PoP{
		popAt("a", geo.Point{Lat: 45, Lon: 9}),
		popAt("b", geo.Point{Lat: 41.9, Lon: 12.5}),
	}
	reference := []geo.Point{{Lat: 45, Lon: 9}}
	m := MatchPoPs(discovered, reference, MatchRadiusKm)
	if !m.Superset() {
		t.Error("superset not detected")
	}
	if m.DiscMatchedFrac() != 0.5 {
		t.Errorf("DiscMatchedFrac = %v", m.DiscMatchedFrac())
	}
}

func TestMatchPoPsEmpty(t *testing.T) {
	m := MatchPoPs(nil, nil, MatchRadiusKm)
	if m.RefMatchedFrac() != 0 || m.DiscMatchedFrac() != 0 || m.Superset() {
		t.Errorf("empty match: %+v", m)
	}
}

func TestMatchPoPsRadiusBoundary(t *testing.T) {
	at := geo.Point{Lat: 45, Lon: 9}
	justInside := geo.Destination(at, 90, 39.5)
	justOutside := geo.Destination(at, 90, 41)
	in := MatchPoPs([]PoP{popAt("x", at)}, []geo.Point{justInside}, 40)
	if in.RefMatched != 1 {
		t.Error("39.5 km should match at 40 km radius")
	}
	out := MatchPoPs([]PoP{popAt("x", at)}, []geo.Point{justOutside}, 40)
	if out.RefMatched != 0 {
		t.Error("41 km should not match at 40 km radius")
	}
}

func TestMatchUsesPeakOrCityLocation(t *testing.T) {
	// The discovered PoP's mapped city centre is far from the reference,
	// but the raw peak is close: must still match (either anchor works).
	d := PoP{
		City:    gazetteer.City{Name: "x", Loc: geo.Point{Lat: 45, Lon: 9}},
		PeakLoc: geo.Point{Lat: 44, Lon: 11},
	}
	ref := []geo.Point{{Lat: 44.05, Lon: 11.05}}
	m := MatchPoPs([]PoP{d}, ref, 40)
	if m.RefMatched != 1 || m.DiscMatched != 1 {
		t.Errorf("peak-anchor match failed: %+v", m)
	}
}
