package core

import (
	"math"
	"strings"
	"testing"

	"eyeballas/internal/gazetteer"
	"eyeballas/internal/geo"
	"eyeballas/internal/rng"
)

// cloudAround synthesizes samples scattered around a city like real
// metro users.
func cloudAround(src *rng.Source, c gazetteer.City, n int) []Sample {
	out := make([]Sample, n)
	for i := range out {
		dist := c.RadiusKm() * src.Float64()
		out[i] = Sample{
			Loc:     geo.Destination(c.Loc, src.Range(0, 360), dist),
			City:    c.Name,
			State:   c.State,
			Country: c.Country,
			Region:  c.Region,
		}
	}
	return out
}

func mustCity(t *testing.T, gaz *gazetteer.Gazetteer, name, cc string) gazetteer.City {
	t.Helper()
	c, ok := gaz.Find(name, cc)
	if !ok {
		t.Fatalf("city %s/%s missing", name, cc)
	}
	return c
}

func TestEstimateFootprintEmpty(t *testing.T) {
	if _, err := EstimateFootprint(gazetteer.Default(), nil, Options{}); err == nil {
		t.Error("empty samples should error")
	}
}

func TestEstimateFootprintTwoCities(t *testing.T) {
	gaz := gazetteer.Default()
	src := rng.New(61)
	milan := mustCity(t, gaz, "Milan", "IT")
	rome := mustCity(t, gaz, "Rome", "IT")
	samples := append(cloudAround(src, milan, 600), cloudAround(src, rome, 400)...)

	fp, err := EstimateFootprint(gaz, samples, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fp.N != 1000 || fp.Bandwidth != 40 {
		t.Errorf("N=%d bandwidth=%v", fp.N, fp.Bandwidth)
	}
	if len(fp.PoPs) != 2 {
		t.Fatalf("PoPs = %v", fp.CityList())
	}
	if fp.PoPs[0].City.Name != "Milan" || fp.PoPs[1].City.Name != "Rome" {
		t.Errorf("PoP order: %s", fp.CityList())
	}
	if fp.PoPs[0].Density <= fp.PoPs[1].Density {
		t.Error("densities not ordered")
	}
	// Mass share within one bandwidth of the Milan peak: the 60% Milan
	// cluster spread over a ~35 km metro keeps roughly a third of its
	// mass within 40 km of the peak — the same magnitude as the paper's
	// §4.2 list (Milan 0.130 of AS 3269). Bound it loosely.
	if fp.PoPs[0].Density < 0.1 || fp.PoPs[0].Density > 0.6 {
		t.Errorf("Milan density = %v", fp.PoPs[0].Density)
	}
	// Peak location near the city.
	if geo.DistanceKm(fp.PoPs[0].PeakLoc, milan.Loc) > 40 {
		t.Errorf("Milan peak %v too far from Milan", fp.PoPs[0].PeakLoc)
	}
	// Two partitions (Milan and Rome are ~480 km apart, far beyond 40 km
	// bandwidth).
	if len(fp.Partitions) < 2 {
		t.Errorf("partitions = %d, want >= 2", len(fp.Partitions))
	}
	// CityList formatting.
	list := fp.CityList()
	if !strings.HasPrefix(list, "[Milan (0.") && !strings.HasPrefix(list, "[Milan (.") {
		t.Errorf("CityList = %s", list)
	}
}

// TestBandwidthControlsResolution reproduces Figure 1's mechanism: Milan
// and Verona (~140 km apart) are separate PoPs at 15 km bandwidth and a
// single merged PoP at 80 km (two equal-width Gaussians merge once their
// separation falls below ~2 bandwidths).
func TestBandwidthControlsResolution(t *testing.T) {
	gaz := gazetteer.Default()
	src := rng.New(62)
	milan := mustCity(t, gaz, "Milan", "IT")
	verona := mustCity(t, gaz, "Verona", "IT")
	samples := append(cloudAround(src, milan, 800), cloudAround(src, verona, 300)...)

	fpFine, err := EstimateFootprint(gaz, samples, Options{BandwidthKm: 15})
	if err != nil {
		t.Fatal(err)
	}
	fpCoarse, err := EstimateFootprint(gaz, samples, Options{BandwidthKm: 80})
	if err != nil {
		t.Fatal(err)
	}
	fineHasBoth := false
	milanFound, veronaFound := false, false
	for _, p := range fpFine.PoPs {
		if p.City.Name == "Milan" {
			milanFound = true
		}
		if p.City.Name == "Verona" {
			veronaFound = true
		}
	}
	fineHasBoth = milanFound && veronaFound
	if !fineHasBoth {
		t.Errorf("bw=15: PoPs = %s, want Milan and Verona separate", fpFine.CityList())
	}
	if len(fpCoarse.PoPs) != 1 {
		t.Errorf("bw=80: PoPs = %s, want a single merged PoP", fpCoarse.CityList())
	}
}

func TestAlphaFiltersMinorPeaks(t *testing.T) {
	gaz := gazetteer.Default()
	src := rng.New(63)
	rome := mustCity(t, gaz, "Rome", "IT")
	palermo := mustCity(t, gaz, "Palermo", "IT")
	// Palermo cluster is tiny relative to Rome.
	samples := append(cloudAround(src, rome, 5000), cloudAround(src, palermo, 6)...)

	strict, err := EstimateFootprint(gaz, samples, Options{Alpha: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range strict.PoPs {
		if p.City.Name == "Palermo" {
			t.Errorf("alpha=0.3 kept the minor Palermo peak")
		}
	}
	loose, err := EstimateFootprint(gaz, samples, Options{Alpha: 0.0001})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range loose.PoPs {
		if p.City.Name == "Palermo" {
			found = true
		}
	}
	if !found {
		t.Errorf("alpha=0.0001 dropped Palermo: %s", loose.CityList())
	}
}

func TestNoCityPeakDropped(t *testing.T) {
	gaz := gazetteer.Default()
	src := rng.New(64)
	// A cluster in the open Sahara, far from any gazetteer city.
	desert := geo.Point{Lat: 23.5, Lon: 10.0}
	var samples []Sample
	for i := 0; i < 300; i++ {
		samples = append(samples, Sample{Loc: geo.Destination(desert, src.Range(0, 360), src.Range(0, 20))})
	}
	fp, err := EstimateFootprint(gaz, samples, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fp.NoCityPeaks == 0 {
		t.Error("desert peak should map to no city")
	}
	if len(fp.PoPs) != 0 {
		t.Errorf("desert produced PoPs: %s", fp.CityList())
	}
}

func TestLooseCityMappingPicksMostPopulous(t *testing.T) {
	// Samples centred between two cities where the peak is within the
	// mapping radius of both: the more populous must win (§4.2).
	gaz := gazetteer.Default()
	src := rng.New(65)
	milan := mustCity(t, gaz, "Milan", "IT")     // 3.2M
	bergamo := mustCity(t, gaz, "Bergamo", "IT") // 0.49M
	mid := geo.Midpoint(milan.Loc, bergamo.Loc)
	var samples []Sample
	for i := 0; i < 500; i++ {
		samples = append(samples, Sample{Loc: geo.Destination(mid, src.Range(0, 360), src.Range(0, 10))})
	}
	fp, err := EstimateFootprint(gaz, samples, Options{BandwidthKm: 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(fp.PoPs) != 1 || fp.PoPs[0].City.Name != "Milan" {
		t.Errorf("loose mapping chose %s, want Milan", fp.CityList())
	}
}

func TestDensitiesAreMassShares(t *testing.T) {
	gaz := gazetteer.Default()
	src := rng.New(66)
	rome := mustCity(t, gaz, "Rome", "IT")
	fp, err := EstimateFootprint(gaz, cloudAround(src, rome, 1000), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fp.PoPs) != 1 {
		t.Fatalf("PoPs = %s", fp.CityList())
	}
	// A single cluster over Rome's ~35 km metro smoothed at 40 km keeps
	// roughly a third of its mass within one bandwidth of the peak.
	if d := fp.PoPs[0].Density; d < 0.2 || d > 0.8 {
		t.Errorf("density = %v, want ~[0.2, 0.8]", d)
	}
	sum := 0.0
	for _, p := range fp.PoPs {
		sum += p.Density
	}
	if sum > 1.01 {
		t.Errorf("density shares sum to %v > 1", sum)
	}
}

func TestFootprintDeterministic(t *testing.T) {
	gaz := gazetteer.Default()
	rome := mustCity(t, gaz, "Rome", "IT")
	s1 := cloudAround(rng.New(67), rome, 400)
	s2 := cloudAround(rng.New(67), rome, 400)
	fp1, err := EstimateFootprint(gaz, s1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := EstimateFootprint(gaz, s2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fp1.CityList() != fp2.CityList() || math.Abs(fp1.Dmax-fp2.Dmax) > 1e-15 {
		t.Error("footprint estimation not deterministic")
	}
}

// TestTownsEnableFineScaleSplitting documents the satellite-town layer's
// role in the Figure 2 reproduction: at 10 km bandwidth, suburban density
// peaks map to distinct satellite towns (more, less reliable PoPs — the
// paper's 10 km regime); against a majors-only gazetteer the same peaks
// either collapse into the metro or map to no city at all.
func TestTownsEnableFineScaleSplitting(t *testing.T) {
	withTowns := gazetteer.Default()
	majorsOnly := gazetteer.DefaultMajorsOnly()
	src := rng.New(68)
	milan := mustCity(t, withTowns, "Milan", "IT")
	// Find Milan's satellite towns that sit beyond the 10 km mapping
	// radius of the metro centre.
	var suburbs []gazetteer.City
	for _, c := range withTowns.InCountry("IT") {
		if c.Metro == "Milan" && geo.DistanceKm(c.Loc, milan.Loc) > 15 {
			suburbs = append(suburbs, c)
		}
	}
	if len(suburbs) < 2 {
		t.Fatalf("Milan has only %d distant satellite towns", len(suburbs))
	}
	// A dense core plus compact suburban clusters at the towns — the
	// zip-snapped structure real metro samples have.
	var samples []Sample
	for i := 0; i < 2500; i++ {
		samples = append(samples, Sample{Loc: geo.Destination(milan.Loc, src.Range(0, 360), src.Range(0, 10))})
	}
	for _, town := range suburbs[:2] {
		for i := 0; i < 400; i++ {
			samples = append(samples, Sample{Loc: geo.Destination(town.Loc, src.Range(0, 360), src.Range(0, 3))})
		}
	}
	fpTowns, err := EstimateFootprint(withTowns, samples, Options{BandwidthKm: 10})
	if err != nil {
		t.Fatal(err)
	}
	fpMajors, err := EstimateFootprint(majorsOnly, samples, Options{BandwidthKm: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(fpTowns.PoPs) <= len(fpMajors.PoPs) {
		t.Errorf("towns gazetteer found %d PoPs, majors-only %d; towns should enable splitting",
			len(fpTowns.PoPs), len(fpMajors.PoPs))
	}
	// At the paper's default 40 km, the loose mapping absorbs suburbs
	// into the metro either way.
	fp40, err := EstimateFootprint(withTowns, samples, Options{BandwidthKm: 40})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range fp40.PoPs {
		if p.City.IsTown() {
			t.Errorf("40 km footprint contains town %s; loose mapping should pick the metro", p.City.Name)
		}
	}
}

func TestFootprintAreaAndReach(t *testing.T) {
	gaz := gazetteer.Default()
	src := rng.New(69)
	milan := mustCity(t, gaz, "Milan", "IT")
	rome := mustCity(t, gaz, "Rome", "IT")
	fp, err := EstimateFootprint(gaz, append(cloudAround(src, milan, 500), cloudAround(src, rome, 500)...), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fp.AreaKm2() <= 0 {
		t.Errorf("AreaKm2 = %v", fp.AreaKm2())
	}
	// Reach ≈ Milan–Rome distance (~477 km).
	if r := fp.ReachKm(); math.Abs(r-477) > 60 {
		t.Errorf("ReachKm = %v, want ~477", r)
	}
	// Single-city footprint: zero reach, smaller area.
	fp1, err := EstimateFootprint(gaz, cloudAround(src, rome, 500), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fp1.ReachKm() != 0 {
		t.Errorf("single-PoP reach = %v", fp1.ReachKm())
	}
	if fp1.AreaKm2() >= fp.AreaKm2() {
		t.Errorf("single-city area %v >= two-city area %v", fp1.AreaKm2(), fp.AreaKm2())
	}
}
