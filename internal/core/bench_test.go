package core

import (
	"fmt"
	"testing"

	"eyeballas/internal/gazetteer"
	"eyeballas/internal/geo"
	"eyeballas/internal/rng"
)

func benchSamplesItaly(n int) ([]Sample, *gazetteer.Gazetteer) {
	gaz := gazetteer.Default()
	src := rng.New(9100)
	cities := gaz.MajorInCountry("IT")[:8]
	out := make([]Sample, n)
	for i := range out {
		c := cities[src.Intn(len(cities))]
		out[i] = cloudAround(src, c, 1)[0]
	}
	return out, gaz
}

func BenchmarkEstimateFootprint(b *testing.B) {
	for _, n := range []int{1000, 10000, 50000} {
		samples, gaz := benchSamplesItaly(n)
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := EstimateFootprint(gaz, samples, Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkMultiScaleFootprint(b *testing.B) {
	samples, gaz := benchSamplesItaly(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MultiScaleFootprint(gaz, samples, MultiScaleOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClassifyLevel(b *testing.B) {
	samples, _ := benchSamplesItaly(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ClassifyLevel(samples)
	}
}

func BenchmarkMatchPoPs(b *testing.B) {
	samples, gaz := benchSamplesItaly(10000)
	fp, err := EstimateFootprint(gaz, samples, Options{})
	if err != nil {
		b.Fatal(err)
	}
	ref := make([]geo.Point, len(fp.PoPs))
	for i, p := range fp.PoPs {
		ref[i] = p.City.Loc
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatchPoPs(fp.PoPs, ref, MatchRadiusKm)
	}
}
