package core

import (
	"math"
	"testing"

	"eyeballas/internal/gazetteer"
	"eyeballas/internal/geo"
)

func popsAt(pts ...geo.Point) []PoP {
	out := make([]PoP, len(pts))
	for i, p := range pts {
		out[i] = PoP{City: gazetteer.City{Name: p.String(), Loc: p}, PeakLoc: p}
	}
	return out
}

func TestFootprintOverlapIdentical(t *testing.T) {
	a := popsAt(geo.Point{Lat: 45, Lon: 9}, geo.Point{Lat: 41.9, Lon: 12.5})
	o := FootprintOverlap(a, a, MatchRadiusKm)
	if o.Shared != 2 || math.Abs(o.Jaccard-1) > 1e-9 || math.Abs(o.MinCoverage-1) > 1e-9 {
		t.Errorf("self overlap = %+v", o)
	}
}

func TestFootprintOverlapDisjoint(t *testing.T) {
	a := popsAt(geo.Point{Lat: 45, Lon: 9})
	b := popsAt(geo.Point{Lat: 35, Lon: 139})
	o := FootprintOverlap(a, b, MatchRadiusKm)
	if o.Shared != 0 || o.Jaccard != 0 || o.MinCoverage != 0 {
		t.Errorf("disjoint overlap = %+v", o)
	}
}

func TestFootprintOverlapContainment(t *testing.T) {
	big := popsAt(
		geo.Point{Lat: 45, Lon: 9}, geo.Point{Lat: 41.9, Lon: 12.5},
		geo.Point{Lat: 40.8, Lon: 14.3}, geo.Point{Lat: 38.1, Lon: 13.4})
	small := popsAt(geo.Point{Lat: 45.01, Lon: 9.01})
	o := FootprintOverlap(big, small, MatchRadiusKm)
	if o.MinCoverage != 1 {
		t.Errorf("containment MinCoverage = %v", o.MinCoverage)
	}
	if o.Shared != 1 {
		t.Errorf("Shared = %d", o.Shared)
	}
	if o.Jaccard >= 0.5 {
		t.Errorf("Jaccard = %v for 1-of-4 overlap", o.Jaccard)
	}
}

func TestFootprintOverlapEmpty(t *testing.T) {
	if o := FootprintOverlap(nil, popsAt(geo.Point{Lat: 1}), 40); o != (Overlap{}) {
		t.Errorf("empty overlap = %+v", o)
	}
}

func TestFootprintOverlapSymmetricMetrics(t *testing.T) {
	a := popsAt(geo.Point{Lat: 45, Lon: 9}, geo.Point{Lat: 41.9, Lon: 12.5}, geo.Point{Lat: 40.8, Lon: 14.3})
	b := popsAt(geo.Point{Lat: 45.1, Lon: 9.1}, geo.Point{Lat: 48.8, Lon: 2.3})
	o1 := FootprintOverlap(a, b, MatchRadiusKm)
	o2 := FootprintOverlap(b, a, MatchRadiusKm)
	if math.Abs(o1.Jaccard-o2.Jaccard) > 1e-9 || o1.Shared != o2.Shared || math.Abs(o1.MinCoverage-o2.MinCoverage) > 1e-9 {
		t.Errorf("asymmetric: %+v vs %+v", o1, o2)
	}
}

func TestReachKm(t *testing.T) {
	if ReachKm(nil) != 0 || ReachKm(popsAt(geo.Point{Lat: 1})) != 0 {
		t.Error("degenerate reach not 0")
	}
	pops := popsAt(geo.Point{Lat: 45.4642, Lon: 9.19}, geo.Point{Lat: 41.9028, Lon: 12.4964})
	if r := ReachKm(pops); math.Abs(r-477) > 10 {
		t.Errorf("Milan-Rome reach = %v, want ~477", r)
	}
}
