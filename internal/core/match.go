package core

import "eyeballas/internal/geo"

// MatchRadiusKm is the paper's §5 matching radius: a discovered PoP and a
// reference PoP match if they are within the radius of a city.
const MatchRadiusKm = 40

// MatchResult summarizes the §5 validation of one AS's discovered PoPs
// against a reference list.
type MatchResult struct {
	NReference  int
	NDiscovered int
	// RefMatched is the number of reference PoPs with a discovered PoP
	// within the radius (numerator of Figure 2a's per-AS percentage).
	RefMatched int
	// DiscMatched is the number of discovered PoPs with a reference PoP
	// within the radius (numerator of Figure 2b's per-AS percentage).
	DiscMatched int
}

// RefMatchedFrac is Figure 2a's per-AS value: the fraction of reference
// (ground-truth) PoPs the technique found. Returns 0 for an empty
// reference list.
func (m MatchResult) RefMatchedFrac() float64 {
	if m.NReference == 0 {
		return 0
	}
	return float64(m.RefMatched) / float64(m.NReference)
}

// DiscMatchedFrac is Figure 2b's per-AS value: the fraction of discovered
// PoPs that correspond to a reference PoP. Returns 0 for an empty
// discovery list.
func (m MatchResult) DiscMatchedFrac() float64 {
	if m.NDiscovered == 0 {
		return 0
	}
	return float64(m.DiscMatched) / float64(m.NDiscovered)
}

// Superset reports whether the discovered set covers every reference PoP
// (used by the §5 DIMES comparison: "our identified PoPs are a clear
// superset").
func (m MatchResult) Superset() bool {
	return m.NReference > 0 && m.RefMatched == m.NReference
}

// MatchPoPs compares discovered PoPs against reference PoP locations at
// the given radius (the paper's city-level matching, §5). Matching is
// many-to-many: each side's element matches if any element of the other
// side lies within the radius.
func MatchPoPs(discovered []PoP, reference []geo.Point, radiusKm float64) MatchResult {
	m := MatchResult{NReference: len(reference), NDiscovered: len(discovered)}
	for _, r := range reference {
		for _, d := range discovered {
			if geo.DistanceKm(r, d.City.Loc) <= radiusKm || geo.DistanceKm(r, d.PeakLoc) <= radiusKm {
				m.RefMatched++
				break
			}
		}
	}
	for _, d := range discovered {
		for _, r := range reference {
			if geo.DistanceKm(r, d.City.Loc) <= radiusKm || geo.DistanceKm(r, d.PeakLoc) <= radiusKm {
				m.DiscMatched++
				break
			}
		}
	}
	return m
}
