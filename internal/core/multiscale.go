package core

import (
	"context"
	"fmt"
	"sort"

	"eyeballas/internal/gazetteer"
	"eyeballas/internal/geo"
	"eyeballas/internal/parallel"
)

// Multi-scale PoP refinement.
//
// §5 observes that "some eyeball ASes have a few PoPs within a relatively
// short distance. Using the KDE approach especially with moderate to
// large bandwidth does not distinguish these PoPs" and proposes, as
// future work, to "use different kernel bandwidth and determine these
// PoPs based on the relative distance and user density of associated
// peaks with different bandwidths". This file implements that idea:
//
//  1. Estimate footprints at several bandwidths, coarse to fine.
//  2. The coarsest footprint's PoPs are trusted anchors (the §5 result:
//     large bandwidths give a small but reliable set).
//  3. Each anchor is refined by the finer scales: a finer-scale PoP
//     within one coarse bandwidth of the anchor is a candidate split of
//     that anchor. A candidate is confirmed if it persists across at
//     least MinPersistence scales, or if its user density is a
//     substantial fraction of its anchor's (the paper's "relative
//     distance and user density of associated peaks"). One-scale wonders
//     with negligible mass are exactly the random error clusters §4.2
//     warns about, and are rejected.

// MultiScaleOptions configure the refinement.
type MultiScaleOptions struct {
	// Bandwidths to combine; default {10, 20, 40, 80} km. Order is
	// irrelevant (sorted internally).
	Bandwidths []float64
	// MinPersistence is the number of scales a refined PoP must appear
	// at; default 2.
	MinPersistence int
	// MinDensityFrac confirms a candidate regardless of persistence when
	// its density reaches this fraction of its anchor's density;
	// default 0.1.
	MinDensityFrac float64
	// Base carries the α threshold and grid options for every scale.
	Base Options
}

func (o MultiScaleOptions) withDefaults() MultiScaleOptions {
	if len(o.Bandwidths) == 0 {
		o.Bandwidths = []float64{10, 20, 40, 80}
	}
	if o.MinPersistence <= 0 {
		o.MinPersistence = 2
	}
	if o.MinDensityFrac <= 0 {
		o.MinDensityFrac = 0.1
	}
	return o
}

// MultiScalePoP is a PoP confirmed by the multi-scale analysis.
type MultiScalePoP struct {
	PoP
	// FinestKm and CoarsestKm bound the bandwidths at which the PoP's
	// city appears as a distinct peak.
	FinestKm   float64
	CoarsestKm float64
	// Persistence counts the scales at which the city appears.
	Persistence int
	// Anchor names the coarse-scale PoP city this PoP refines (equal to
	// the PoP's own city for anchors themselves).
	Anchor string
}

// MultiScaleFootprint runs the refinement. The result is ordered by
// density descending, like a single-scale PoP list. It is
// MultiScaleFootprintCtx under context.Background().
func MultiScaleFootprint(gaz *gazetteer.Gazetteer, samples []Sample, opts MultiScaleOptions) ([]MultiScalePoP, error) {
	return MultiScaleFootprintCtx(context.Background(), gaz, samples, opts)
}

// MultiScaleFootprintCtx is MultiScaleFootprint with cooperative
// cancellation: ctx bounds both the per-bandwidth fan-out and each
// inner KDE convolution; a cancelled run returns ctx.Err().
func MultiScaleFootprintCtx(ctx context.Context, gaz *gazetteer.Gazetteer, samples []Sample, opts MultiScaleOptions) ([]MultiScalePoP, error) {
	o := opts.withDefaults()
	bws := append([]float64(nil), o.Bandwidths...)
	sort.Float64s(bws)
	if len(samples) == 0 {
		return nil, fmt.Errorf("core: no samples")
	}

	// The per-bandwidth footprints are independent; fan them out over
	// the shared pool into index-addressed slots. Each inner Estimate
	// still honors o.Base.Workers for its own convolution, so the same
	// knob bounds both levels of the fan-out.
	fpList := make([]*Footprint, len(bws))
	err := parallel.ForEach(ctx, o.Base.Workers, bws, func(i int, bw float64) error {
		base := o.Base
		base.BandwidthKm = bw
		fp, err := EstimateFootprintCtx(ctx, gaz, samples, base)
		if err != nil {
			return fmt.Errorf("core: multiscale bw %.0f: %w", bw, err)
		}
		fpList[i] = fp
		return nil
	})
	if err != nil {
		return nil, err
	}
	fps := make(map[float64]*Footprint, len(bws))
	for i, bw := range bws {
		fps[bw] = fpList[i]
	}
	coarsest := bws[len(bws)-1]

	// Persistence per city across scales.
	type cityStat struct {
		pop         PoP
		finest      float64
		coarsest    float64
		persistence int
	}
	stats := map[string]*cityStat{}
	for _, bw := range bws {
		for _, p := range fps[bw].PoPs {
			key := p.City.Name + "/" + p.City.Country
			st := stats[key]
			if st == nil {
				st = &cityStat{pop: p, finest: bw, coarsest: bw}
				stats[key] = st
			}
			st.persistence++
			if bw < st.finest {
				st.finest = bw
			}
			if bw > st.coarsest {
				st.coarsest = bw
				// Prefer the coarser scale's density estimate (more
				// reliable mass attribution) but keep the finest peak
				// location refinement only across confirmed scales.
				st.pop.Density = p.Density
			}
		}
	}

	// Anchors = coarsest-scale PoPs; refined set = anchors plus
	// persistent finer PoPs within one coarse bandwidth of an anchor.
	var out []MultiScalePoP
	emitted := map[string]bool{}
	for _, anchor := range fps[coarsest].PoPs {
		anchorKey := anchor.City.Name + "/" + anchor.City.Country
		for key, st := range stats {
			if emitted[key] {
				continue
			}
			isAnchor := key == anchorKey
			if !isAnchor {
				persistent := st.persistence >= o.MinPersistence
				dense := anchor.Density > 0 && st.pop.Density >= o.MinDensityFrac*anchor.Density
				if !persistent && !dense {
					continue
				}
				if geo.DistanceKm(st.pop.City.Loc, anchor.City.Loc) > coarsest {
					continue
				}
			}
			emitted[key] = true
			out = append(out, MultiScalePoP{
				PoP:         st.pop,
				FinestKm:    st.finest,
				CoarsestKm:  st.coarsest,
				Persistence: st.persistence,
				Anchor:      anchor.City.Name,
			})
		}
	}
	// Persistent cities with no coarse anchor nearby: real PoPs the
	// coarsest pass smoothed below its α threshold (distant small
	// partitions — islands, exclaves). Keep them when they persist.
	keys := make([]string, 0, len(stats))
	for key := range stats {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		st := stats[key]
		if emitted[key] || st.persistence < o.MinPersistence {
			continue
		}
		emitted[key] = true
		out = append(out, MultiScalePoP{
			PoP:         st.pop,
			FinestKm:    st.finest,
			CoarsestKm:  st.coarsest,
			Persistence: st.persistence,
		})
	}

	sort.Slice(out, func(i, j int) bool {
		if out[i].Density != out[j].Density {
			return out[i].Density > out[j].Density
		}
		return out[i].City.Name < out[j].City.Name
	})
	return out, nil
}

// PoPs extracts the plain PoP list from a multi-scale result, for use
// with MatchPoPs.
func MultiScalePoPs(ms []MultiScalePoP) []PoP {
	out := make([]PoP, len(ms))
	for i, m := range ms {
		out[i] = m.PoP
	}
	return out
}
