package core

import (
	"eyeballas/internal/astopo"
	"eyeballas/internal/gazetteer"
)

// ContainmentThreshold is the paper's §2 rule: an AS is classified by the
// smallest geographical region containing a large majority (>95%) of its
// peers.
const ContainmentThreshold = 0.95

// Classification describes an AS's inferred geographic scope.
type Classification struct {
	Level astopo.Level
	// Place names the dominant region at the chosen level: the city,
	// state, country, or continental region label.
	Place string
	// Share is the fraction of samples inside the dominant region at the
	// chosen level.
	Share float64
}

// ClassifyLevel applies the §2 rule to the database-reported labels of an
// AS's samples. Samples without a city label never reach this point (the
// pipeline drops them).
func ClassifyLevel(samples []Sample) Classification {
	if len(samples) == 0 {
		return Classification{Level: astopo.LevelGlobal}
	}
	n := float64(len(samples))

	if place, count := majority(samples, func(s Sample) string { return s.City + "/" + s.Country }); float64(count)/n > ContainmentThreshold {
		return Classification{Level: astopo.LevelCity, Place: place, Share: float64(count) / n}
	}
	if place, count := majority(samples, func(s Sample) string { return s.State + "/" + s.Country }); float64(count)/n > ContainmentThreshold {
		return Classification{Level: astopo.LevelState, Place: place, Share: float64(count) / n}
	}
	if place, count := majority(samples, func(s Sample) string { return s.Country }); float64(count)/n > ContainmentThreshold {
		return Classification{Level: astopo.LevelCountry, Place: place, Share: float64(count) / n}
	}
	if place, count := majority(samples, func(s Sample) string { return string(s.Region) }); float64(count)/n > ContainmentThreshold {
		return Classification{Level: astopo.LevelContinent, Place: place, Share: float64(count) / n}
	}
	return Classification{Level: astopo.LevelGlobal, Place: "global", Share: 1}
}

func majority(samples []Sample, key func(Sample) string) (string, int) {
	counts := map[string]int{}
	for _, s := range samples {
		counts[key(s)]++
	}
	best, bestN := "", 0
	for k, c := range counts {
		if c > bestN || (c == bestN && k < best) {
			best, bestN = k, c
		}
	}
	return best, bestN
}

// DominantRegion returns the continental region holding the most samples
// — the region an AS is attributed to in Table 1.
func DominantRegion(samples []Sample) gazetteer.Region {
	counts := map[gazetteer.Region]int{}
	for _, s := range samples {
		counts[s.Region]++
	}
	best := gazetteer.Other
	bestN := -1
	for r, c := range counts {
		if c > bestN || (c == bestN && r < best) {
			best, bestN = r, c
		}
	}
	return best
}
