package core

import (
	"testing"

	"eyeballas/internal/gazetteer"
	"eyeballas/internal/geo"
	"eyeballas/internal/rng"
)

func TestMultiScaleEmpty(t *testing.T) {
	if _, err := MultiScaleFootprint(gazetteer.Default(), nil, MultiScaleOptions{}); err == nil {
		t.Error("empty samples should error")
	}
}

// TestMultiScaleSplitsNearbyPoPs is the §5 scenario the refinement was
// proposed for: Milan and Bergamo are ~45 km apart, so an 80 km analysis
// merges them into one Milan PoP; the multi-scale analysis recovers both
// because Bergamo persists across the fine scales.
func TestMultiScaleSplitsNearbyPoPs(t *testing.T) {
	gaz := gazetteer.Default()
	src := rng.New(201)
	milan := mustCity(t, gaz, "Milan", "IT")
	bergamo := mustCity(t, gaz, "Bergamo", "IT")
	var samples []Sample
	// Tight clusters so the fine scales resolve them.
	for i := 0; i < 900; i++ {
		samples = append(samples, Sample{Loc: geo.Destination(milan.Loc, src.Range(0, 360), src.Range(0, 8))})
	}
	for i := 0; i < 400; i++ {
		samples = append(samples, Sample{Loc: geo.Destination(bergamo.Loc, src.Range(0, 360), src.Range(0, 6))})
	}

	// Single coarse scale: merged.
	coarse, err := EstimateFootprint(gaz, samples, Options{BandwidthKm: 80})
	if err != nil {
		t.Fatal(err)
	}
	if len(coarse.PoPs) != 1 {
		t.Fatalf("80 km should merge the pair, got %s", coarse.CityList())
	}

	ms, err := MultiScaleFootprint(gaz, samples, MultiScaleOptions{Bandwidths: []float64{10, 20, 80}})
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, p := range ms {
		names = append(names, p.City.Name)
	}
	hasMilan, hasBergamo := false, false
	for _, n := range names {
		if n == "Milan" {
			hasMilan = true
		}
		if n == "Bergamo" {
			hasBergamo = true
		}
	}
	if !hasMilan || !hasBergamo {
		t.Fatalf("multi-scale PoPs = %v, want Milan and Bergamo", names)
	}
	// Provenance: Bergamo refines the Milan anchor; it is confirmed via
	// the density rule (its mass rivals Milan's) even though only the
	// finest scale resolves it.
	for _, p := range ms {
		if p.City.Name == "Bergamo" {
			if p.Anchor != "Milan" {
				t.Errorf("Bergamo anchor = %s, want Milan", p.Anchor)
			}
			if p.CoarsestKm >= 80 {
				t.Errorf("Bergamo should vanish at the coarsest scale, CoarsestKm = %v", p.CoarsestKm)
			}
		}
	}
}

// TestMultiScaleRejectsOneScaleWonders: a tiny random cluster that forms
// a peak at only the finest scale must not survive (persistence < 2).
func TestMultiScaleRejectsOneScaleWonders(t *testing.T) {
	gaz := gazetteer.Default()
	src := rng.New(202)
	rome := mustCity(t, gaz, "Rome", "IT")
	turin := mustCity(t, gaz, "Turin", "IT")
	var samples []Sample
	for i := 0; i < 3000; i++ {
		samples = append(samples, Sample{Loc: geo.Destination(rome.Loc, src.Range(0, 360), src.Range(0, 25))})
	}
	// A 4-sample error cluster at Turin (far from Rome): visible at 10 km
	// only — at 20 km and above it falls below α·Dmax.
	for i := 0; i < 4; i++ {
		samples = append(samples, Sample{Loc: geo.Destination(turin.Loc, src.Range(0, 360), src.Range(0, 1))})
	}

	fine, err := EstimateFootprint(gaz, samples, Options{BandwidthKm: 10})
	if err != nil {
		t.Fatal(err)
	}
	fineHasTurin := false
	for _, p := range fine.PoPs {
		if p.City.Name == "Turin" {
			fineHasTurin = true
		}
	}
	if !fineHasTurin {
		t.Skip("error cluster did not form a fine-scale peak at this seed; nothing to reject")
	}

	ms, err := MultiScaleFootprint(gaz, samples, MultiScaleOptions{Bandwidths: []float64{10, 40, 80}})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ms {
		if p.City.Name == "Turin" {
			t.Errorf("one-scale wonder survived: %+v", p)
		}
	}
}

func TestMultiScaleAnchorsAlwaysPresent(t *testing.T) {
	gaz := gazetteer.Default()
	src := rng.New(203)
	milan := mustCity(t, gaz, "Milan", "IT")
	rome := mustCity(t, gaz, "Rome", "IT")
	samples := append(cloudAround(src, milan, 500), cloudAround(src, rome, 500)...)
	ms, err := MultiScaleFootprint(gaz, samples, MultiScaleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := EstimateFootprint(gaz, samples, Options{BandwidthKm: 80})
	if err != nil {
		t.Fatal(err)
	}
	for _, anchor := range coarse.PoPs {
		found := false
		for _, p := range ms {
			if p.City.Name == anchor.City.Name {
				found = true
			}
		}
		if !found {
			t.Errorf("coarse anchor %s missing from multi-scale result", anchor.City.Name)
		}
	}
	// Ordering: density descending.
	for i := 1; i < len(ms); i++ {
		if ms[i].Density > ms[i-1].Density {
			t.Fatal("multi-scale PoPs not sorted by density")
		}
	}
	// MultiScalePoPs round trip.
	if got := MultiScalePoPs(ms); len(got) != len(ms) {
		t.Errorf("MultiScalePoPs length %d != %d", len(got), len(ms))
	}
}
