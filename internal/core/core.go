// Package core implements the paper's primary contribution: estimating an
// eyeball AS's geographic footprint from the geo-locations of its end
// users via kernel density estimation (§3), extracting its likely PoP
// locations from the density peaks (§4), classifying its geographic scope
// (§2), and validating discovered PoPs against reference lists (§5).
//
// The package is deliberately measurement-only: it consumes samples — a
// location plus the city/state/country labels a geolocation database
// reported — and never touches ground truth. Evaluation code compares its
// outputs against the generator's truth elsewhere.
package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"eyeballas/internal/gazetteer"
	"eyeballas/internal/geo"
	"eyeballas/internal/grid"
	"eyeballas/internal/kde"
	"eyeballas/internal/obs"
)

// Sample is one usable peer observation: the reference database's answer
// for one IP.
type Sample struct {
	Loc      geo.Point
	City     string
	State    string
	Country  string
	Region   gazetteer.Region
	GeoErrKm float64 // cross-database geolocation error estimate
}

// Options configure footprint estimation. Zero fields take the paper's
// defaults.
type Options struct {
	// BandwidthKm is the KDE kernel bandwidth; default 40 (§3.1).
	BandwidthKm float64
	// Alpha is the peak-selection threshold: peaks with density
	// > Alpha·Dmax become PoP candidates; default 0.01 (§4.1).
	Alpha float64
	// CityRadiusKm is the "loose" peak→city mapping radius; default
	// equals the bandwidth (§4.2).
	CityRadiusKm float64
	// CellKm overrides the KDE grid resolution; default BandwidthKm/4.
	CellKm float64
	// Workers bounds the goroutines used by the KDE convolution (and, in
	// MultiScaleFootprint, the per-bandwidth fan-out); 0 means
	// GOMAXPROCS, 1 forces serial execution. Footprints are
	// byte-identical for every setting.
	Workers int
	// Obs receives footprint metrics (peak/PoP counters) and is passed
	// through to the KDE layer; nil disables instrumentation. Footprints
	// are bit-identical either way.
	Obs *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.BandwidthKm <= 0 {
		o.BandwidthKm = kde.CityLevelBandwidthKm
	}
	if o.Alpha <= 0 {
		o.Alpha = 0.01
	}
	if o.CityRadiusKm <= 0 {
		o.CityRadiusKm = o.BandwidthKm
	}
	return o
}

// PoP is one inferred Point of Presence: a density peak mapped to a city.
type PoP struct {
	City      gazetteer.City
	PeakLoc   geo.Point // geographic location of the density peak
	PeakValue float64   // raw density at the peak
	// Density is the paper's per-PoP weight: the share of the AS's user
	// mass within one bandwidth radius of the peak (the §4.2 footprint
	// lists, e.g. "Milan (.130)").
	Density float64
}

// Footprint is the estimated geo- and PoP-level footprint of one AS.
type Footprint struct {
	N          int // samples used
	Bandwidth  float64
	Projection *geo.Projection
	Grid       *grid.Grid
	Dmax       float64
	// Peaks are all α-selected density peaks (before city mapping),
	// highest first, in geographic coordinates.
	Peaks []PeakGeo
	// PoPs are the city-mapped peaks, deduplicated per city, sorted by
	// Density descending — the PoP-level footprint (§4).
	PoPs []PoP
	// NoCityPeaks counts α-selected peaks that mapped to no city and
	// were dropped (§4.2).
	NoCityPeaks int
	// Partitions are the connected regions of the footprint contour at
	// Alpha·Dmax, largest mass first (§3: the footprint "may consist of
	// one or multiple partitions").
	Partitions []grid.Component
}

// PeakGeo is a density peak in geographic coordinates.
type PeakGeo struct {
	Loc   geo.Point
	Value float64
}

// EstimateFootprint runs the §3–§4 procedure for one AS. It is
// EstimateFootprintCtx under context.Background() — the signature every
// experiment and example uses when cancellation is not in play.
func EstimateFootprint(gaz *gazetteer.Gazetteer, samples []Sample, opts Options) (*Footprint, error) {
	return EstimateFootprintCtx(context.Background(), gaz, samples, opts)
}

// EstimateFootprintCtx is EstimateFootprint with cooperative
// cancellation: ctx is observed at the KDE convolution's block
// boundaries, and a cancelled run returns ctx.Err() with no footprint.
func EstimateFootprintCtx(ctx context.Context, gaz *gazetteer.Gazetteer, samples []Sample, opts Options) (*Footprint, error) {
	o := opts.withDefaults()
	if len(samples) == 0 {
		return nil, fmt.Errorf("core: no samples")
	}
	pts := make([]geo.Point, len(samples))
	for i, s := range samples {
		pts[i] = s.Loc
	}
	centroid, _ := geo.Centroid(pts)
	proj := geo.NewProjection(centroid)
	xys := proj.ProjectAll(pts)

	g, err := kde.Estimate(ctx, xys, kde.Options{
		BandwidthKm: o.BandwidthKm,
		CellKm:      o.CellKm,
		Workers:     o.Workers,
		Obs:         o.Obs,
	})
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	dmax, _, _ := g.Max()
	fp := &Footprint{
		N:          len(samples),
		Bandwidth:  o.BandwidthKm,
		Projection: proj,
		Grid:       g,
		Dmax:       dmax,
	}
	if dmax == 0 {
		return fp, nil
	}

	floor := o.Alpha * dmax
	rawPeaks := g.Peaks(floor)
	for _, p := range rawPeaks {
		fp.Peaks = append(fp.Peaks, PeakGeo{Loc: proj.ToGeo(p.XY), Value: p.Value})
	}
	fp.Partitions = g.Components(floor)

	// Peak → city mapping (§4.2), deduplicated per city keeping the
	// densest peak.
	byCity := map[string]*PoP{}
	var order []string
	for _, pk := range fp.Peaks {
		city, ok := gaz.MostPopulousWithin(pk.Loc, o.CityRadiusKm)
		if !ok {
			fp.NoCityPeaks++
			continue
		}
		key := city.Name + "/" + city.Country
		mass := massNear(g, proj, pk.Loc, o.BandwidthKm)
		if pop, exists := byCity[key]; exists {
			if pk.Value > pop.PeakValue {
				pop.PeakLoc = pk.Loc
				pop.PeakValue = pk.Value
				pop.Density = mass
			}
			continue
		}
		byCity[key] = &PoP{City: city, PeakLoc: pk.Loc, PeakValue: pk.Value, Density: mass}
		order = append(order, key)
	}
	for _, key := range order {
		fp.PoPs = append(fp.PoPs, *byCity[key])
	}
	if o.Obs != nil {
		o.Obs.Counter("eyeball_core_peaks_total").Add(int64(len(fp.Peaks)))
		o.Obs.Counter("eyeball_core_pops_total").Add(int64(len(fp.PoPs)))
		o.Obs.Counter("eyeball_core_unmapped_peaks_total").Add(int64(fp.NoCityPeaks))
	}
	sort.SliceStable(fp.PoPs, func(i, j int) bool {
		if fp.PoPs[i].Density != fp.PoPs[j].Density {
			return fp.PoPs[i].Density > fp.PoPs[j].Density
		}
		return fp.PoPs[i].City.Name < fp.PoPs[j].City.Name
	})
	return fp, nil
}

// massNear integrates the density surface over the disc of the given
// radius around a geographic point — the per-PoP user-mass share (the
// surface integrates to ~1).
func massNear(g *grid.Grid, proj *geo.Projection, at geo.Point, radiusKm float64) float64 {
	c := proj.ToXY(at)
	i0, j0, _ := g.CellOf(c)
	r := int(math.Ceil(radiusKm/g.Cell)) + 1
	sum := 0.0
	for j := j0 - r; j <= j0+r; j++ {
		if j < 0 || j >= g.H {
			continue
		}
		for i := i0 - r; i <= i0+r; i++ {
			if i < 0 || i >= g.W {
				continue
			}
			if g.Center(i, j).DistanceKm(c) <= radiusKm {
				sum += g.At(i, j)
			}
		}
	}
	return sum * g.Cell * g.Cell
}

// AreaKm2 returns the total area of the geo-footprint: the sum of the
// partition areas at the α·Dmax contour (§3's "geographic coverage").
func (fp *Footprint) AreaKm2() float64 {
	total := 0.0
	for _, p := range fp.Partitions {
		total += p.AreaKm
	}
	return total
}

// ReachKm returns the footprint's geographic reach: the maximum distance
// between any two of its PoPs (§1's "geographic reach is sufficiently
// large" peering criterion).
func (fp *Footprint) ReachKm() float64 { return ReachKm(fp.PoPs) }

// CityList renders the PoP-level footprint in the paper's §4.2 format:
// "[Milan (.130), Rome (.122), …]".
func (fp *Footprint) CityList() string {
	s := "["
	for i, p := range fp.PoPs {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s (%.3f)", p.City.Name, p.Density)
	}
	return s + "]"
}
