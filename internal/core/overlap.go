package core

import "eyeballas/internal/geo"

// Footprint overlap.
//
// The paper's introduction motivates AS geography with peering practice:
// "AS X will only peer with AS Y if Y's geographic reach is sufficiently
// large, or X and Y have a certain number of overlapping PoP locations".
// These metrics quantify exactly those two notions over measured
// PoP-level footprints.

// Overlap quantifies the geographic relationship between two PoP-level
// footprints.
type Overlap struct {
	// Shared counts PoPs of the smaller footprint with a counterpart of
	// the other footprint within the radius ("overlapping PoP
	// locations").
	Shared int
	// Jaccard is |intersection| / |union| over radius-matched PoPs.
	Jaccard float64
	// MinCoverage is Shared divided by the smaller footprint's size —
	// 1.0 means one footprint geographically contains the other.
	MinCoverage float64
}

// FootprintOverlap computes overlap metrics between two PoP lists at the
// given radius. Either list being empty yields the zero Overlap.
func FootprintOverlap(a, b []PoP, radiusKm float64) Overlap {
	if len(a) == 0 || len(b) == 0 {
		return Overlap{}
	}
	matchedA := 0
	for _, pa := range a {
		if anyWithin(pa, b, radiusKm) {
			matchedA++
		}
	}
	matchedB := 0
	for _, pb := range b {
		if anyWithin(pb, a, radiusKm) {
			matchedB++
		}
	}
	small := len(a)
	shared := matchedA
	if len(b) < small {
		small = len(b)
		shared = matchedB
	}
	// Union counts each side's unmatched PoPs plus the matched pairs
	// (approximated by the larger matched side to avoid double counting).
	matchedMax := matchedA
	if matchedB > matchedMax {
		matchedMax = matchedB
	}
	union := len(a) + len(b) - matchedMax
	o := Overlap{Shared: shared}
	if union > 0 {
		o.Jaccard = float64(matchedMax) / float64(union)
	}
	if small > 0 {
		o.MinCoverage = float64(shared) / float64(small)
	}
	return o
}

func anyWithin(p PoP, others []PoP, radiusKm float64) bool {
	for _, o := range others {
		if geo.DistanceKm(p.City.Loc, o.City.Loc) <= radiusKm ||
			geo.DistanceKm(p.PeakLoc, o.PeakLoc) <= radiusKm {
			return true
		}
	}
	return false
}

// ReachKm summarizes a footprint's "geographic reach": the maximum
// distance between any two of its PoPs (0 for fewer than two PoPs).
func ReachKm(pops []PoP) float64 {
	best := 0.0
	for i := 0; i < len(pops); i++ {
		for j := i + 1; j < len(pops); j++ {
			if d := geo.DistanceKm(pops[i].City.Loc, pops[j].City.Loc); d > best {
				best = d
			}
		}
	}
	return best
}
