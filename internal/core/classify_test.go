package core

import (
	"testing"

	"eyeballas/internal/astopo"
	"eyeballas/internal/gazetteer"
)

func mkSamples(entries ...[4]string) []Sample {
	// entries: {city, state, country, region}
	out := make([]Sample, len(entries))
	for i, e := range entries {
		out[i] = Sample{City: e[0], State: e[1], Country: e[2], Region: gazetteer.Region(e[3])}
	}
	return out
}

func repeat(s Sample, n int) []Sample {
	out := make([]Sample, n)
	for i := range out {
		out[i] = s
	}
	return out
}

var (
	milanS   = Sample{City: "Milan", State: "Lombardy", Country: "IT", Region: gazetteer.EU}
	bergamoS = Sample{City: "Bergamo", State: "Lombardy", Country: "IT", Region: gazetteer.EU}
	romeS    = Sample{City: "Rome", State: "Lazio", Country: "IT", Region: gazetteer.EU}
	parisS   = Sample{City: "Paris", State: "Ile-de-France", Country: "FR", Region: gazetteer.EU}
	nycS     = Sample{City: "New York", State: "New York", Country: "US", Region: gazetteer.NA}
	tokyoS   = Sample{City: "Tokyo", State: "Kanto", Country: "JP", Region: gazetteer.AS}
)

func TestClassifyCity(t *testing.T) {
	samples := append(repeat(milanS, 97), repeat(romeS, 3)...)
	c := ClassifyLevel(samples)
	if c.Level != astopo.LevelCity || c.Place != "Milan/IT" {
		t.Errorf("got %+v", c)
	}
	if c.Share <= 0.95 {
		t.Errorf("share = %v", c.Share)
	}
}

func TestClassifyState(t *testing.T) {
	// Milan + Bergamo are both Lombardy: city fails, state passes.
	samples := append(repeat(milanS, 60), repeat(bergamoS, 38)...)
	samples = append(samples, repeat(romeS, 2)...)
	c := ClassifyLevel(samples)
	if c.Level != astopo.LevelState || c.Place != "Lombardy/IT" {
		t.Errorf("got %+v", c)
	}
}

func TestClassifyCountry(t *testing.T) {
	samples := append(repeat(milanS, 50), repeat(romeS, 48)...)
	samples = append(samples, repeat(parisS, 2)...)
	c := ClassifyLevel(samples)
	if c.Level != astopo.LevelCountry || c.Place != "IT" {
		t.Errorf("got %+v", c)
	}
}

func TestClassifyContinent(t *testing.T) {
	samples := append(repeat(milanS, 50), repeat(parisS, 48)...)
	samples = append(samples, repeat(nycS, 2)...)
	c := ClassifyLevel(samples)
	if c.Level != astopo.LevelContinent || c.Place != "EU" {
		t.Errorf("got %+v", c)
	}
}

func TestClassifyGlobal(t *testing.T) {
	samples := append(repeat(milanS, 40), repeat(nycS, 35)...)
	samples = append(samples, repeat(tokyoS, 25)...)
	c := ClassifyLevel(samples)
	if c.Level != astopo.LevelGlobal {
		t.Errorf("got %+v", c)
	}
}

func TestClassifyThresholdIsStrict(t *testing.T) {
	// Exactly 95% must NOT qualify (the paper requires > 95%).
	samples := append(repeat(milanS, 95), repeat(romeS, 5)...)
	c := ClassifyLevel(samples)
	if c.Level == astopo.LevelCity {
		t.Errorf("95%% exactly classified as city: %+v", c)
	}
	if c.Level != astopo.LevelCountry {
		t.Errorf("got %+v, want country", c)
	}
}

func TestClassifyEmpty(t *testing.T) {
	if c := ClassifyLevel(nil); c.Level != astopo.LevelGlobal {
		t.Errorf("empty classification = %+v", c)
	}
}

func TestDominantRegion(t *testing.T) {
	samples := append(repeat(milanS, 10), repeat(nycS, 5)...)
	if r := DominantRegion(samples); r != gazetteer.EU {
		t.Errorf("dominant region = %v", r)
	}
	if r := DominantRegion(nil); r != gazetteer.Other {
		t.Errorf("empty dominant region = %v", r)
	}
}
