package grid

import (
	"math"
	"testing"

	"eyeballas/internal/geo"
)

func TestNewPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"zero-w":    func() { New(0, 0, 1, 0, 5) },
		"zero-h":    func() { New(0, 0, 1, 5, 0) },
		"zero-cell": func() { New(0, 0, 0, 5, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestIndexingAndCenters(t *testing.T) {
	g := New(-10, -20, 2, 5, 4)
	g.Set(3, 2, 7)
	if g.At(3, 2) != 7 {
		t.Error("Set/At mismatch")
	}
	g.Add(3, 2, 1)
	if g.At(3, 2) != 8 {
		t.Error("Add mismatch")
	}
	c := g.Center(0, 0)
	if c.X != -9 || c.Y != -19 {
		t.Errorf("Center(0,0) = %v", c)
	}
	i, j, ok := g.CellOf(geo.XY{X: -8.9, Y: -18.9})
	if !ok || i != 0 || j != 0 {
		t.Errorf("CellOf = %d,%d,%v", i, j, ok)
	}
	if _, _, ok := g.CellOf(geo.XY{X: 100, Y: 0}); ok {
		t.Error("CellOf out of range should be !ok")
	}
	// Round trip cell -> center -> cell.
	for ii := 0; ii < g.W; ii++ {
		for jj := 0; jj < g.H; jj++ {
			ri, rj, ok := g.CellOf(g.Center(ii, jj))
			if !ok || ri != ii || rj != jj {
				t.Fatalf("round trip (%d,%d) -> (%d,%d,%v)", ii, jj, ri, rj, ok)
			}
		}
	}
}

func TestMaxSumIntegralScale(t *testing.T) {
	g := New(0, 0, 0.5, 4, 4)
	g.Set(1, 2, 3)
	g.Set(2, 1, 5)
	v, i, j := g.Max()
	if v != 5 || i != 2 || j != 1 {
		t.Errorf("Max = %v at %d,%d", v, i, j)
	}
	if g.Sum() != 8 {
		t.Errorf("Sum = %v", g.Sum())
	}
	if math.Abs(g.Integral()-8*0.25) > 1e-12 {
		t.Errorf("Integral = %v", g.Integral())
	}
	g.Scale(2)
	if g.Sum() != 16 {
		t.Errorf("Sum after scale = %v", g.Sum())
	}
}

func TestPeaksSimple(t *testing.T) {
	g := New(0, 0, 1, 7, 7)
	// Two bumps of different heights.
	g.Set(1, 1, 5)
	g.Set(5, 5, 9)
	g.Set(5, 4, 2) // shoulder
	peaks := g.Peaks(0)
	if len(peaks) != 2 {
		t.Fatalf("got %d peaks: %+v", len(peaks), peaks)
	}
	if peaks[0].Value != 9 || peaks[0].I != 5 || peaks[0].J != 5 {
		t.Errorf("highest peak = %+v", peaks[0])
	}
	if peaks[1].Value != 5 {
		t.Errorf("second peak = %+v", peaks[1])
	}
}

func TestPeaksFloor(t *testing.T) {
	g := New(0, 0, 1, 5, 5)
	g.Set(1, 1, 5)
	g.Set(3, 3, 0.5)
	if n := len(g.Peaks(1)); n != 1 {
		t.Errorf("floor not applied: %d peaks", n)
	}
}

func TestPeaksPlateau(t *testing.T) {
	g := New(0, 0, 1, 8, 3)
	// A flat-topped ridge: cells (2..5, 1) all equal 4, surrounded by 0.
	for i := 2; i <= 5; i++ {
		g.Set(i, 1, 4)
	}
	peaks := g.Peaks(0)
	if len(peaks) != 1 {
		t.Fatalf("plateau yielded %d peaks, want 1", len(peaks))
	}
	if p := peaks[0]; p.J != 1 || p.I < 2 || p.I > 5 {
		t.Errorf("plateau representative off the plateau: %+v", p)
	}
}

func TestPeaksConstantGridHasNone(t *testing.T) {
	g := New(0, 0, 1, 4, 4)
	for i := range g.Data {
		g.Data[i] = 3
	}
	if n := len(g.Peaks(0)); n != 0 {
		t.Errorf("constant grid yielded %d peaks", n)
	}
}

func TestPeaksShoulderNotPeak(t *testing.T) {
	// A monotone ramp has exactly one peak at the top edge cell.
	g := New(0, 0, 1, 6, 1)
	for i := 0; i < 6; i++ {
		g.Set(i, 0, float64(i))
	}
	peaks := g.Peaks(-1)
	if len(peaks) != 1 || peaks[0].I != 5 {
		t.Errorf("ramp peaks = %+v", peaks)
	}
}

func TestComponents(t *testing.T) {
	g := New(0, 0, 2, 10, 10)
	// Region A: 2x2 block of 4s; region B: single cell of 10; noise below
	// threshold elsewhere.
	g.Set(1, 1, 4)
	g.Set(2, 1, 4)
	g.Set(1, 2, 4)
	g.Set(2, 2, 4)
	g.Set(7, 7, 10)
	g.Set(5, 5, 0.5)
	comps := g.Components(1)
	if len(comps) != 2 {
		t.Fatalf("got %d components", len(comps))
	}
	// Sorted by mass: A has mass 16·4=64, B has 10·4=40.
	if comps[0].Cells != 4 || comps[1].Cells != 1 {
		t.Errorf("component sizes: %+v", comps)
	}
	if comps[0].Mass < comps[1].Mass {
		t.Error("components not sorted by mass")
	}
	if comps[0].AreaKm != 4*4 {
		t.Errorf("area = %v", comps[0].AreaKm)
	}
	if comps[1].PeakV != 10 {
		t.Errorf("peak value = %v", comps[1].PeakV)
	}
	if comps[0].MinI != 1 || comps[0].MaxI != 2 || comps[0].MinJ != 1 || comps[0].MaxJ != 2 {
		t.Errorf("bbox: %+v", comps[0])
	}
}

func TestComponentsDiagonalConnectivity(t *testing.T) {
	g := New(0, 0, 1, 4, 4)
	g.Set(0, 0, 2)
	g.Set(1, 1, 2)
	if n := len(g.Components(1)); n != 1 {
		t.Errorf("diagonal cells split into %d components, want 1 (8-connectivity)", n)
	}
}

func TestMassAbove(t *testing.T) {
	g := New(0, 0, 2, 3, 3)
	g.Set(0, 0, 1)
	g.Set(1, 1, 3)
	if got := g.MassAbove(2); math.Abs(got-3*4) > 1e-12 {
		t.Errorf("MassAbove(2) = %v", got)
	}
	if got := g.MassAbove(0.5); math.Abs(got-4*4) > 1e-12 {
		t.Errorf("MassAbove(0.5) = %v", got)
	}
}

func TestContourLinesCircle(t *testing.T) {
	// A radial bump: contour at level 0.5 should form segments roughly at
	// radius where value = 0.5.
	g := New(-10, -10, 0.5, 41, 41)
	for j := 0; j < g.H; j++ {
		for i := 0; i < g.W; i++ {
			c := g.Center(i, j)
			r := math.Hypot(c.X, c.Y)
			g.Set(i, j, math.Exp(-r*r/20))
		}
	}
	segs := g.ContourLines(0.5)
	if len(segs) < 8 {
		t.Fatalf("too few contour segments: %d", len(segs))
	}
	wantR := math.Sqrt(20 * math.Ln2) // value = 0.5 at this radius
	for _, s := range segs {
		for _, p := range s {
			r := math.Hypot(p.X, p.Y)
			if math.Abs(r-wantR) > 0.6 {
				t.Errorf("contour point at radius %.2f, want ~%.2f", r, wantR)
			}
		}
	}
}

func TestContourLinesEmptyCases(t *testing.T) {
	g := New(0, 0, 1, 5, 5)
	if segs := g.ContourLines(1); len(segs) != 0 {
		t.Errorf("all-below grid produced %d segments", len(segs))
	}
	for i := range g.Data {
		g.Data[i] = 5
	}
	if segs := g.ContourLines(1); len(segs) != 0 {
		t.Errorf("all-above grid produced %d segments", len(segs))
	}
}
