package grid

import (
	"math"
	"testing"

	"eyeballas/internal/geo"
)

// TestCellOfBoundaries audits the half-open cell convention: cell (i,j)
// covers [MinX+i·C, MinX+(i+1)·C) × [MinY+j·C, MinY+(j+1)·C). Left and
// bottom edges are inside, right and top edges are out — including the
// grid's own outer edges.
func TestCellOfBoundaries(t *testing.T) {
	g := New(-100, -50, 10, 20, 10) // x ∈ [-100, 100), y ∈ [-50, 50)
	cases := []struct {
		name string
		p    geo.XY
		i, j int
		ok   bool
	}{
		{"origin corner", geo.XY{X: -100, Y: -50}, 0, 0, true},
		{"interior", geo.XY{X: 0, Y: 0}, 10, 5, true},
		{"interior cell edge belongs to upper cell", geo.XY{X: -90, Y: -40}, 1, 1, true},
		{"just below interior edge", geo.XY{X: math.Nextafter(-90, math.Inf(-1)), Y: -50}, 0, 0, true},
		{"right edge excluded", geo.XY{X: 100, Y: 0}, 20, 5, false},
		{"top edge excluded", geo.XY{X: 0, Y: 50}, 10, 10, false},
		{"far corner excluded", geo.XY{X: 100, Y: 50}, 20, 10, false},
		{"just inside right edge", geo.XY{X: math.Nextafter(100, 0), Y: 0}, 19, 5, true},
		{"just inside top edge", geo.XY{X: 0, Y: math.Nextafter(50, 0)}, 10, 9, true},
		{"just left of grid", geo.XY{X: math.Nextafter(-100, math.Inf(-1)), Y: 0}, -1, 5, false},
		{"just below grid", geo.XY{X: 0, Y: math.Nextafter(-50, math.Inf(-1))}, 10, -1, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			i, j, ok := g.CellOf(c.p)
			if i != c.i || j != c.j || ok != c.ok {
				t.Errorf("CellOf(%v) = (%d,%d,%v), want (%d,%d,%v)", c.p, i, j, ok, c.i, c.j, c.ok)
			}
		})
	}
	// Far-outside points: exact indices are rounding-dominated and not
	// part of the contract, but membership must be false.
	if _, _, ok := g.CellOf(geo.XY{X: 1e9, Y: -1e9}); ok {
		t.Error("CellOf(1e9, -1e9) claimed in-grid")
	}
	// NaN coordinates must be out of the grid, never a panic or a bogus
	// in-range cell.
	if _, _, ok := g.CellOf(geo.XY{X: math.NaN(), Y: 0}); ok {
		t.Error("CellOf(NaN, 0) claimed in-grid")
	}
	if _, _, ok := g.CellOf(geo.XY{X: 0, Y: math.NaN()}); ok {
		t.Error("CellOf(0, NaN) claimed in-grid")
	}
}

// TestCellOfCenterRoundTrip: the centre of every cell must map back to
// that cell, for grids with awkward (non-representable) origins and
// cell sizes where naive division is most fragile.
func TestCellOfCenterRoundTrip(t *testing.T) {
	grids := []*Grid{
		New(-100, -50, 10, 20, 10),
		New(-123.456, 78.9, 0.1, 37, 41),
		New(0.1, -0.3, 1.0/3.0, 13, 7),
		New(-4040.40, -2021.7, 2.5, 101, 53),
	}
	for _, g := range grids {
		for j := 0; j < g.H; j++ {
			for i := 0; i < g.W; i++ {
				gi, gj, ok := g.CellOf(g.Center(i, j))
				if !ok || gi != i || gj != j {
					t.Fatalf("grid(%v,%v,%v): CellOf(Center(%d,%d)) = (%d,%d,%v)",
						g.MinX, g.MinY, g.Cell, i, j, gi, gj, ok)
				}
			}
		}
	}
}
