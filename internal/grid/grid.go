// Package grid provides dense two-dimensional float grids in a local
// km-space, with the operations kernel density surfaces need: local-maximum
// (peak) detection with plateau handling, thresholded connected components
// (the paper's footprint "partitions"), and iso-contour extraction.
package grid

import (
	"fmt"
	"math"

	"eyeballas/internal/geo"
)

// Grid is a dense row-major 2-D grid over a rectangle of local km-space.
// Cell (i, j) covers [MinX + i·Cell, MinX + (i+1)·Cell) ×
// [MinY + j·Cell, MinY + (j+1)·Cell); values are attributed to cell
// centres.
type Grid struct {
	MinX, MinY float64 // lower-left corner, km
	Cell       float64 // cell edge, km
	W, H       int     // columns (x), rows (y)
	Data       []float64
}

// New allocates a zeroed grid. It panics on non-positive dimensions or
// cell size.
func New(minX, minY, cell float64, w, h int) *Grid {
	if w <= 0 || h <= 0 || cell <= 0 {
		panic(fmt.Sprintf("grid: invalid dimensions %dx%d cell %v", w, h, cell))
	}
	return &Grid{MinX: minX, MinY: minY, Cell: cell, W: w, H: h, Data: make([]float64, w*h)}
}

// Index returns the flat index of cell (i, j). No bounds check.
func (g *Grid) Index(i, j int) int { return j*g.W + i }

// At returns the value of cell (i, j).
func (g *Grid) At(i, j int) float64 { return g.Data[j*g.W+i] }

// Set assigns the value of cell (i, j).
func (g *Grid) Set(i, j int, v float64) { g.Data[j*g.W+i] = v }

// Add accumulates into cell (i, j).
func (g *Grid) Add(i, j int, v float64) { g.Data[j*g.W+i] += v }

// Center returns the km-space coordinates of the centre of cell (i, j).
func (g *Grid) Center(i, j int) geo.XY {
	return geo.XY{X: g.MinX + (float64(i)+0.5)*g.Cell, Y: g.MinY + (float64(j)+0.5)*g.Cell}
}

// CellOf returns the cell containing the km-space point, and whether it is
// inside the grid. Membership follows the half-open edge definition in the
// type doc exactly: a point one ulp inside the grid's outer edge is inside,
// the edge itself is not.
func (g *Grid) CellOf(p geo.XY) (i, j int, ok bool) {
	i = cellIndex(p.X, g.MinX, g.Cell)
	j = cellIndex(p.Y, g.MinY, g.Cell)
	return i, j, i >= 0 && i < g.W && j >= 0 && j < g.H
}

// cellIndex locates x on the axis starting at min with the given cell
// size. The floor-of-division estimate can land one cell off the
// defining edges (the division rounds: x one ulp below an edge can
// quotient exactly to the edge's cell), so the estimate is corrected
// against the min + i·cell expressions that define cell bounds.
func cellIndex(x, min, cell float64) int {
	i := int(math.Floor((x - min) / cell))
	if x < min+float64(i)*cell {
		i--
	} else if x >= min+float64(i+1)*cell {
		i++
	}
	return i
}

// Max returns the maximum cell value and its cell coordinates. An empty
// (all-zero) grid returns 0 at (0, 0).
func (g *Grid) Max() (v float64, i, j int) {
	v = g.Data[0]
	for idx, d := range g.Data {
		if d > v {
			v, i, j = d, idx%g.W, idx/g.W
		}
	}
	return v, i, j
}

// Sum returns the sum of all cell values.
func (g *Grid) Sum() float64 {
	s := 0.0
	for _, d := range g.Data {
		s += d
	}
	return s
}

// Integral returns Sum·Cell², the approximate integral of the surface.
func (g *Grid) Integral() float64 { return g.Sum() * g.Cell * g.Cell }

// Scale multiplies every cell by f.
func (g *Grid) Scale(f float64) {
	for i := range g.Data {
		g.Data[i] *= f
	}
}

// Peak is a strict local maximum of the surface.
type Peak struct {
	I, J  int     // cell coordinates
	XY    geo.XY  // cell-centre coordinates, km
	Value float64 // surface value at the peak
}

var neighbours = [8][2]int{{-1, -1}, {0, -1}, {1, -1}, {-1, 0}, {1, 0}, {-1, 1}, {0, 1}, {1, 1}}

// Peaks returns the local maxima of the surface, highest first. A cell is
// a peak if no 8-neighbour exceeds it and at least one in-grid neighbour
// is strictly lower; plateaus (connected equal-valued regions whose entire
// border is lower) contribute a single representative cell each. Cells
// with value <= floor are ignored.
func (g *Grid) Peaks(floor float64) []Peak {
	visited := make([]bool, len(g.Data))
	var peaks []Peak
	for j := 0; j < g.H; j++ {
		for i := 0; i < g.W; i++ {
			idx := g.Index(i, j)
			if visited[idx] || g.Data[idx] <= floor {
				continue
			}
			v := g.Data[idx]
			// Flood-fill the plateau of equal value containing (i, j),
			// checking that nothing around it is higher.
			stack := [][2]int{{i, j}}
			visited[idx] = true
			var plateau [][2]int
			isPeak := true
			hasLower := false
			for len(stack) > 0 {
				c := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				plateau = append(plateau, c)
				for _, d := range neighbours {
					ni, nj := c[0]+d[0], c[1]+d[1]
					if ni < 0 || ni >= g.W || nj < 0 || nj >= g.H {
						continue
					}
					nv := g.At(ni, nj)
					switch {
					case nv > v:
						isPeak = false
					case nv < v:
						hasLower = true
					default:
						nidx := g.Index(ni, nj)
						if !visited[nidx] {
							visited[nidx] = true
							stack = append(stack, [2]int{ni, nj})
						}
					}
				}
			}
			if !isPeak || !hasLower {
				continue
			}
			// Representative: plateau centroid snapped to the member cell
			// nearest to it, keeping the peak on the plateau.
			var cx, cy float64
			for _, c := range plateau {
				cx += float64(c[0])
				cy += float64(c[1])
			}
			cx /= float64(len(plateau))
			cy /= float64(len(plateau))
			best := plateau[0]
			bestD := math.Inf(1)
			for _, c := range plateau {
				d := (float64(c[0])-cx)*(float64(c[0])-cx) + (float64(c[1])-cy)*(float64(c[1])-cy)
				if d < bestD {
					bestD, best = d, c
				}
			}
			peaks = append(peaks, Peak{I: best[0], J: best[1], XY: g.Center(best[0], best[1]), Value: v})
		}
	}
	sortPeaks(peaks)
	return peaks
}

func sortPeaks(ps []Peak) {
	// Insertion sort by descending value then ascending (J, I); peak
	// counts are small.
	for i := 1; i < len(ps); i++ {
		p := ps[i]
		j := i - 1
		for j >= 0 && less(p, ps[j]) {
			ps[j+1] = ps[j]
			j--
		}
		ps[j+1] = p
	}
}

func less(a, b Peak) bool {
	if a.Value != b.Value {
		return a.Value > b.Value
	}
	if a.J != b.J {
		return a.J < b.J
	}
	return a.I < b.I
}

// Component is a connected region of cells at or above a threshold — one
// partition of a geo-footprint.
type Component struct {
	Cells  int     // number of member cells
	AreaKm float64 // Cells · Cell²
	Mass   float64 // sum of member values · Cell²
	PeakV  float64 // maximum value inside the component
	// Bounding box in cell coordinates, inclusive.
	MinI, MinJ, MaxI, MaxJ int
}

// Components returns the 8-connected components of {cells >= level},
// largest mass first.
func (g *Grid) Components(level float64) []Component {
	visited := make([]bool, len(g.Data))
	var comps []Component
	for j := 0; j < g.H; j++ {
		for i := 0; i < g.W; i++ {
			idx := g.Index(i, j)
			if visited[idx] || g.Data[idx] < level {
				continue
			}
			c := Component{MinI: i, MinJ: j, MaxI: i, MaxJ: j}
			stack := [][2]int{{i, j}}
			visited[idx] = true
			for len(stack) > 0 {
				cur := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				v := g.At(cur[0], cur[1])
				c.Cells++
				c.Mass += v
				if v > c.PeakV {
					c.PeakV = v
				}
				if cur[0] < c.MinI {
					c.MinI = cur[0]
				}
				if cur[0] > c.MaxI {
					c.MaxI = cur[0]
				}
				if cur[1] < c.MinJ {
					c.MinJ = cur[1]
				}
				if cur[1] > c.MaxJ {
					c.MaxJ = cur[1]
				}
				for _, d := range neighbours {
					ni, nj := cur[0]+d[0], cur[1]+d[1]
					if ni < 0 || ni >= g.W || nj < 0 || nj >= g.H {
						continue
					}
					nidx := g.Index(ni, nj)
					if !visited[nidx] && g.Data[nidx] >= level {
						visited[nidx] = true
						stack = append(stack, [2]int{ni, nj})
					}
				}
			}
			c.AreaKm = float64(c.Cells) * g.Cell * g.Cell
			c.Mass *= g.Cell * g.Cell
			comps = append(comps, c)
		}
	}
	// Sort by descending mass.
	for i := 1; i < len(comps); i++ {
		c := comps[i]
		j := i - 1
		for j >= 0 && c.Mass > comps[j].Mass {
			comps[j+1] = comps[j]
			j--
		}
		comps[j+1] = c
	}
	return comps
}

// MassAbove returns the integral of the surface restricted to cells with
// value >= level.
func (g *Grid) MassAbove(level float64) float64 {
	s := 0.0
	for _, d := range g.Data {
		if d >= level {
			s += d
		}
	}
	return s * g.Cell * g.Cell
}
