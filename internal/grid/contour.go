package grid

import "eyeballas/internal/geo"

// ContourLines extracts iso-contour line segments at the given level using
// marching squares with linear interpolation, returned as segment pairs
// (p1, p2) in km-space. The experiment CLIs use these to sketch
// geo-footprint outlines (Figure 1's contour at the footprint level);
// topology assembly into closed polygons is not needed for any paper
// artifact, so segments are returned directly.
func (g *Grid) ContourLines(level float64) [][2]geo.XY {
	var segs [][2]geo.XY
	// Walk 2×2 cell blocks; corner k value layout:
	//   3 --- 2
	//   |     |
	//   0 --- 1
	for j := 0; j+1 < g.H; j++ {
		for i := 0; i+1 < g.W; i++ {
			v0 := g.At(i, j)
			v1 := g.At(i+1, j)
			v2 := g.At(i+1, j+1)
			v3 := g.At(i, j+1)
			var caseIdx int
			if v0 >= level {
				caseIdx |= 1
			}
			if v1 >= level {
				caseIdx |= 2
			}
			if v2 >= level {
				caseIdx |= 4
			}
			if v3 >= level {
				caseIdx |= 8
			}
			if caseIdx == 0 || caseIdx == 15 {
				continue
			}
			c0 := g.Center(i, j)
			c1 := g.Center(i+1, j)
			c2 := g.Center(i+1, j+1)
			c3 := g.Center(i, j+1)
			// Edge midpoints with interpolation; edge order: bottom(0-1),
			// right(1-2), top(3-2), left(0-3).
			bottom := interp(c0, c1, v0, v1, level)
			right := interp(c1, c2, v1, v2, level)
			top := interp(c3, c2, v3, v2, level)
			left := interp(c0, c3, v0, v3, level)
			emit := func(a, b geo.XY) { segs = append(segs, [2]geo.XY{a, b}) }
			switch caseIdx {
			case 1, 14:
				emit(left, bottom)
			case 2, 13:
				emit(bottom, right)
			case 3, 12:
				emit(left, right)
			case 4, 11:
				emit(right, top)
			case 6, 9:
				emit(bottom, top)
			case 7, 8:
				emit(left, top)
			case 5: // saddle: resolve by centre value
				if (v0+v1+v2+v3)/4 >= level {
					emit(left, top)
					emit(bottom, right)
				} else {
					emit(left, bottom)
					emit(right, top)
				}
			case 10: // opposite saddle
				if (v0+v1+v2+v3)/4 >= level {
					emit(left, bottom)
					emit(right, top)
				} else {
					emit(left, top)
					emit(bottom, right)
				}
			}
		}
	}
	return segs
}

func interp(a, b geo.XY, va, vb, level float64) geo.XY {
	if va == vb {
		return geo.XY{X: (a.X + b.X) / 2, Y: (a.Y + b.Y) / 2}
	}
	t := (level - va) / (vb - va)
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	return geo.XY{X: a.X + t*(b.X-a.X), Y: a.Y + t*(b.Y-a.Y)}
}
