package grid

import (
	"math"
	"testing"
)

func benchGrid() *Grid {
	g := New(-500, -500, 5, 200, 200)
	// A few dozen Gaussian bumps.
	for b := 0; b < 40; b++ {
		cx := float64((b*97)%180-90) * 5
		cy := float64((b*53)%180-90) * 5
		for j := 0; j < g.H; j++ {
			for i := 0; i < g.W; i++ {
				c := g.Center(i, j)
				d2 := (c.X-cx)*(c.X-cx) + (c.Y-cy)*(c.Y-cy)
				g.Add(i, j, math.Exp(-d2/800))
			}
		}
	}
	return g
}

func BenchmarkPeaks(b *testing.B) {
	g := benchGrid()
	max, _, _ := g.Max()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(g.Peaks(max*0.01)) == 0 {
			b.Fatal("no peaks")
		}
	}
}

func BenchmarkComponents(b *testing.B) {
	g := benchGrid()
	max, _, _ := g.Max()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(g.Components(max*0.01)) == 0 {
			b.Fatal("no components")
		}
	}
}

func BenchmarkContourLines(b *testing.B) {
	g := benchGrid()
	max, _, _ := g.Max()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(g.ContourLines(max*0.2)) == 0 {
			b.Fatal("no contours")
		}
	}
}
