package swarm

import (
	"testing"

	"eyeballas/internal/ipnet"
	"eyeballas/internal/rng"
)

func members(n int) []ipnet.Addr {
	out := make([]ipnet.Addr, n)
	for i := range out {
		out[i] = ipnet.MakeAddr(30, byte(i>>16), byte(i>>8), byte(i))
	}
	return out
}

func build(t testing.TB, n int, cfg Config, seed uint64) *System {
	t.Helper()
	s, err := Build(members(n), cfg, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(members(2), DefaultConfig(), rng.New(1)); err == nil {
		t.Error("tiny population accepted")
	}
	bad := DefaultConfig()
	bad.Torrents = 0
	if _, err := Build(members(100), bad, rng.New(1)); err == nil {
		t.Error("zero torrents accepted")
	}
	bad = DefaultConfig()
	bad.PEXFrac = 2
	if _, err := Build(members(100), bad, rng.New(1)); err == nil {
		t.Error("PEXFrac > 1 accepted")
	}
}

func TestBuildStructure(t *testing.T) {
	s := build(t, 3000, DefaultConfig(), 2)
	// Every peer is in at least one swarm, and memberships mirror swarms.
	inSwarm := map[PeerID]int{}
	for t2, sw := range s.swarms {
		for _, p := range sw {
			inSwarm[p]++
			found := false
			for _, m := range s.memberships[p] {
				if m == t2 {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("peer %d in swarm %d but membership not recorded", p, t2)
			}
		}
	}
	for p := PeerID(0); int(p) < s.Size(); p++ {
		if inSwarm[p] == 0 {
			t.Fatalf("peer %d in no swarm", p)
		}
	}
	// Zipf popularity: the biggest swarm dwarfs the median.
	sizes := s.SwarmSizes()
	if sizes[0] < 4*sizes[len(sizes)/2] {
		t.Errorf("popularity not skewed: top %d vs median %d", sizes[0], sizes[len(sizes)/2])
	}
}

func TestCrawlCoverage(t *testing.T) {
	s := build(t, 3000, DefaultConfig(), 3)
	res, err := Crawl(s, DefaultCrawlConfig(), rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	cov := res.Coverage(s)
	if cov < 0.5 || cov >= 1.0 {
		t.Errorf("coverage = %.3f, want substantial but < 1", cov)
	}
	for id, addr := range res.Discovered {
		if s.Addr(id) != addr {
			t.Fatalf("phantom peer %d", id)
		}
	}
	if res.Announces == 0 || res.PEXQueries == 0 {
		t.Error("crawl did no work")
	}
}

func TestCrawlEffortIncreasesCoverage(t *testing.T) {
	s := build(t, 3000, DefaultConfig(), 5)
	lazy := CrawlConfig{AnnouncesPerTorrent: 1, PeersPerAnnounce: 10, PEXRounds: 0}
	rLazy, err := Crawl(s, lazy, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	rFull, err := Crawl(s, DefaultCrawlConfig(), rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if rLazy.Coverage(s) >= rFull.Coverage(s) {
		t.Errorf("lazy crawl %.3f >= full crawl %.3f", rLazy.Coverage(s), rFull.Coverage(s))
	}
}

func TestCrawlBigSwarmsUndersampled(t *testing.T) {
	// With a bounded tracker response and no PEX, per-swarm coverage
	// falls with swarm size — the burstiness the statistical model
	// assumes.
	s := build(t, 5000, DefaultConfig(), 7)
	cfg := CrawlConfig{AnnouncesPerTorrent: 1, PeersPerAnnounce: 50, PEXRounds: 0}
	res, err := Crawl(s, cfg, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	var bigCov, smallCov float64
	var bigN, smallN int
	for t2, sw := range s.swarms {
		if len(sw) == 0 {
			continue
		}
		known := 0
		for _, p := range sw {
			if _, ok := res.Discovered[p]; ok {
				_ = t2
				known++
			}
		}
		cov := float64(known) / float64(len(sw))
		if len(sw) > 200 {
			bigCov += cov
			bigN++
		} else if len(sw) < 40 {
			smallCov += cov
			smallN++
		}
	}
	if bigN == 0 || smallN == 0 {
		t.Skip("swarm size distribution too uniform at this seed")
	}
	// NOTE: per-swarm coverage uses global discovery, so small swarms
	// benefit from overlap; the single-announce cap must still leave big
	// swarms visibly undersampled.
	if bigCov/float64(bigN) >= 0.9 {
		t.Errorf("big swarms fully covered (%.3f) despite one bounded announce", bigCov/float64(bigN))
	}
}

func TestCrawlDeterministic(t *testing.T) {
	s := build(t, 1000, DefaultConfig(), 9)
	r1, _ := Crawl(s, DefaultCrawlConfig(), rng.New(10))
	r2, _ := Crawl(s, DefaultCrawlConfig(), rng.New(10))
	if len(r1.Discovered) != len(r2.Discovered) || r1.Announces != r2.Announces {
		t.Error("crawl not deterministic")
	}
}

func TestCrawlConfigValidation(t *testing.T) {
	s := build(t, 100, DefaultConfig(), 11)
	for _, cfg := range []CrawlConfig{
		{AnnouncesPerTorrent: 0, PeersPerAnnounce: 10, PEXRounds: 1},
		{AnnouncesPerTorrent: 1, PeersPerAnnounce: 0, PEXRounds: 1},
		{AnnouncesPerTorrent: 1, PeersPerAnnounce: 10, PEXRounds: -1},
	} {
		if _, err := Crawl(s, cfg, rng.New(1)); err == nil {
			t.Errorf("bad config %+v accepted", cfg)
		}
	}
}

func BenchmarkBuildSwarms(b *testing.B) {
	m := members(5000)
	for i := 0; i < b.N; i++ {
		if _, err := Build(m, DefaultConfig(), rng.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCrawlSwarms(b *testing.B) {
	s := build(b, 5000, DefaultConfig(), 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Crawl(s, DefaultCrawlConfig(), rng.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}
