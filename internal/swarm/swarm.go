// Package swarm simulates BitTorrent swarms and the tracker-scrape + PEX
// crawler the paper's BitTorrent dataset was collected with (§2,
// "Sampling End-users").
//
// Peers join torrents with Zipf-distributed popularity; a crawler scrapes
// each torrent's tracker (which returns a bounded random subset of the
// swarm per announce) and then gossips with responsive discovered peers
// via PEX to learn more of the swarm. Coverage is bursty per swarm —
// big swarms need many announces, small swarms may be missed entirely —
// which is the dispersion the statistical BitTorrent model in
// internal/p2p assumes.
package swarm

import (
	"fmt"
	"sort"

	"eyeballas/internal/ipnet"
	"eyeballas/internal/rng"
)

// PeerID indexes a peer within a System.
type PeerID int32

// System is a set of swarms over a peer population.
type System struct {
	addrs   []ipnet.Addr
	swarms  [][]PeerID // torrent → member peers
	tracked []bool     // torrent known to the crawler's tracker list
	// memberships[p] lists the torrents p participates in.
	memberships map[PeerID][]int
	// pexCapable peers answer PEX queries (not firewalled).
	pexCapable map[PeerID]bool
}

// Config shapes the swarm system.
type Config struct {
	// Torrents is the number of tracked torrents.
	Torrents int
	// PopularityExp is the Zipf exponent of torrent popularity.
	PopularityExp float64
	// SwarmsPerPeer is the mean number of torrents a peer is in.
	SwarmsPerPeer float64
	// PEXFrac is the fraction of peers that answer PEX.
	PEXFrac float64
	// TrackedFrac is the fraction of torrents on trackers the crawler
	// knows about; members exclusive to unknown torrents are invisible.
	TrackedFrac float64
}

// DefaultConfig mirrors 2009-era public-tracker ecosystems.
func DefaultConfig() Config {
	return Config{Torrents: 200, PopularityExp: 1.0, SwarmsPerPeer: 1.6, PEXFrac: 0.6, TrackedFrac: 0.8}
}

// Build assigns the member peers to swarms.
func Build(members []ipnet.Addr, cfg Config, src *rng.Source) (*System, error) {
	if len(members) < 4 {
		return nil, fmt.Errorf("swarm: need at least 4 members, got %d", len(members))
	}
	if cfg.Torrents < 1 || cfg.SwarmsPerPeer <= 0 || cfg.PEXFrac < 0 || cfg.PEXFrac > 1 ||
		cfg.TrackedFrac <= 0 || cfg.TrackedFrac > 1 {
		return nil, fmt.Errorf("swarm: invalid config %+v", cfg)
	}
	sys := &System{
		addrs:       append([]ipnet.Addr(nil), members...),
		swarms:      make([][]PeerID, cfg.Torrents),
		tracked:     make([]bool, cfg.Torrents),
		memberships: make(map[PeerID][]int),
		pexCapable:  make(map[PeerID]bool),
	}
	for t := range sys.tracked {
		sys.tracked[t] = src.Bool(cfg.TrackedFrac)
	}
	zipf := rng.NewZipf(cfg.Torrents, cfg.PopularityExp)
	for p := PeerID(0); int(p) < len(members); p++ {
		sys.pexCapable[p] = src.Bool(cfg.PEXFrac)
		n := src.Poisson(cfg.SwarmsPerPeer)
		if n < 1 {
			n = 1
		}
		joined := map[int]bool{}
		for j := 0; j < n; j++ {
			t := zipf.Draw(src)
			if joined[t] {
				continue
			}
			joined[t] = true
			sys.swarms[t] = append(sys.swarms[t], p)
			sys.memberships[p] = append(sys.memberships[p], t)
		}
	}
	return sys, nil
}

// Size returns the peer population size.
func (s *System) Size() int { return len(s.addrs) }

// Addr returns a peer's address.
func (s *System) Addr(p PeerID) ipnet.Addr { return s.addrs[p] }

// SwarmSizes returns the swarm sizes, descending.
func (s *System) SwarmSizes() []int {
	out := make([]int, len(s.swarms))
	for i, sw := range s.swarms {
		out[i] = len(sw)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}

// CrawlConfig parameterizes the scraper.
type CrawlConfig struct {
	// AnnouncesPerTorrent is how many tracker announces the crawler
	// issues per torrent.
	AnnouncesPerTorrent int
	// PeersPerAnnounce is the tracker's response size cap (the BEP-3
	// default neighbourhood is ~50; public trackers served up to 200).
	PeersPerAnnounce int
	// PEXRounds is how many gossip rounds follow the scrape.
	PEXRounds int
}

// DefaultCrawlConfig mirrors a polite scraper.
func DefaultCrawlConfig() CrawlConfig {
	return CrawlConfig{AnnouncesPerTorrent: 4, PeersPerAnnounce: 50, PEXRounds: 2}
}

// CrawlResult summarizes a scrape campaign.
type CrawlResult struct {
	Discovered map[PeerID]ipnet.Addr
	Announces  int
	PEXQueries int
}

// Coverage returns the fraction of the population discovered.
func (r *CrawlResult) Coverage(s *System) float64 {
	if s.Size() == 0 {
		return 0
	}
	return float64(len(r.Discovered)) / float64(s.Size())
}

// Crawl scrapes every torrent and gossips with PEX-capable discoveries.
func Crawl(s *System, cfg CrawlConfig, src *rng.Source) (*CrawlResult, error) {
	if cfg.AnnouncesPerTorrent < 1 || cfg.PeersPerAnnounce < 1 || cfg.PEXRounds < 0 {
		return nil, fmt.Errorf("swarm: invalid crawl config %+v", cfg)
	}
	res := &CrawlResult{Discovered: make(map[PeerID]ipnet.Addr)}
	perSwarmKnown := make([]map[PeerID]bool, len(s.swarms))
	for t := range s.swarms {
		perSwarmKnown[t] = map[PeerID]bool{}
	}

	discover := func(p PeerID, torrent int) {
		if _, known := res.Discovered[p]; !known {
			res.Discovered[p] = s.addrs[p]
		}
		perSwarmKnown[torrent][p] = true
	}

	// Tracker scrape: each announce returns a bounded random sample of
	// the swarm. Unknown torrents are never scraped.
	for t, members := range s.swarms {
		if len(members) == 0 || !s.tracked[t] {
			continue
		}
		for a := 0; a < cfg.AnnouncesPerTorrent; a++ {
			res.Announces++
			take := cfg.PeersPerAnnounce
			if take > len(members) {
				take = len(members)
			}
			seen := map[int]bool{}
			for got := 0; got < take; {
				idx := src.Intn(len(members))
				if seen[idx] {
					continue
				}
				seen[idx] = true
				discover(members[idx], t)
				got++
			}
		}
	}

	// PEX gossip: each known PEX-capable peer shares the swarm-mates it
	// knows (modelled as a fresh bounded sample of its swarm — live
	// clients hold rotating neighbour sets).
	for round := 0; round < cfg.PEXRounds; round++ {
		for t, members := range s.swarms {
			if len(members) == 0 || !s.tracked[t] {
				continue
			}
			known := make([]PeerID, 0, len(perSwarmKnown[t]))
			for p := range perSwarmKnown[t] {
				known = append(known, p)
			}
			sort.Slice(known, func(i, j int) bool { return known[i] < known[j] })
			for _, p := range known {
				if !s.pexCapable[p] {
					continue
				}
				res.PEXQueries++
				share := 25
				if share > len(members) {
					share = len(members)
				}
				for g := 0; g < share; g++ {
					discover(members[src.Intn(len(members))], t)
				}
			}
		}
	}
	return res, nil
}
