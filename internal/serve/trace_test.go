package serve

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"eyeballas/internal/obs"
	"eyeballas/internal/trace"
)

const testTraceparent = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"

// tracedServer builds a test server with deterministic tracing, a
// recorder, metrics, and a JSON access log captured into logBuf.
func tracedServer(t testing.TB, logBuf *bytes.Buffer, opts Options) (*Server, *trace.Recorder, *obs.Registry) {
	t.Helper()
	rec := trace.NewRecorder(trace.RecorderOptions{Recent: 16, Slow: 8, SlowThreshold: time.Hour})
	reg := obs.New()
	opts.Tracer = trace.New(trace.Options{Seed: 42, Recorder: rec})
	opts.Obs = reg
	if logBuf != nil {
		opts.AccessLog = slog.New(slog.NewJSONHandler(logBuf, nil))
	}
	s, _, _ := newTestServer(t, opts)
	return s, rec, reg
}

// getWithHeader issues a GET with an optional traceparent header.
func getWithHeader(t testing.TB, h http.Handler, url, traceparent string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, url, nil)
	if traceparent != "" {
		req.Header.Set("traceparent", traceparent)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// attrVal returns the value of key among a node's attrs, or "".
func attrVal(n obs.TreeNode, key string) string {
	for _, a := range n.Attrs {
		if a.Key == key {
			return a.Val
		}
	}
	return ""
}

// findChild returns the first child with the given name, depth-first.
func findChild(n obs.TreeNode, name string) *obs.TreeNode {
	for i := range n.Children {
		if n.Children[i].Name == name {
			return &n.Children[i]
		}
		if c := findChild(n.Children[i], name); c != nil {
			return c
		}
	}
	return nil
}

// lastLogLine parses the last JSON line in buf.
func lastLogLine(t testing.TB, buf *bytes.Buffer) map[string]any {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	var m map[string]any
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &m); err != nil {
		t.Fatalf("access log line %q is not JSON: %v", lines[len(lines)-1], err)
	}
	return m
}

func TestTraceMiddlewareFootprint(t *testing.T) {
	var logBuf bytes.Buffer
	s, rec, _ := tracedServer(t, &logBuf, Options{})
	h := s.Handler()

	w := getWithHeader(t, h, "/v1/footprint/64500", testTraceparent)
	if w.Code != http.StatusOK {
		t.Fatalf("footprint: %d %s", w.Code, w.Body.String())
	}

	roots := rec.Recent()
	if len(roots) != 1 {
		t.Fatalf("recorder holds %d traces, want 1", len(roots))
	}
	root := roots[0]
	// The inbound traceparent's trace ID is inherited by the root span.
	if got := root.TraceID().String(); got != "0af7651916cd43dd8448eb211c80319c" {
		t.Fatalf("trace ID = %s, want inbound traceparent's", got)
	}
	n := root.Tree()
	if n.Name != "serve.footprint" {
		t.Fatalf("root span name = %q", n.Name)
	}
	for key, want := range map[string]string{
		"route": "footprint", "status": "200", "outcome": "ok",
		"asn": "64500", "generation": "1", "cache": "miss",
	} {
		if got := attrVal(n, key); got != want {
			t.Errorf("root attr %s = %q, want %q", key, got, want)
		}
	}
	// The KDE render contributed child spans via context propagation.
	kde := findChild(n, "kde.estimate")
	if kde == nil {
		t.Fatalf("no kde.estimate child in trace:\n%+v", n)
	}
	if attrVal(*kde, "samples") != "300" {
		t.Errorf("kde.estimate samples attr = %q", attrVal(*kde, "samples"))
	}
	if findChild(*kde, "blur_horizontal") == nil {
		t.Error("kde.estimate has no blur_horizontal child")
	}

	// The access-log line carries the same trace ID.
	line := lastLogLine(t, &logBuf)
	if line["trace"] != "0af7651916cd43dd8448eb211c80319c" {
		t.Errorf("access log trace = %v, want the inherited trace ID", line["trace"])
	}

	// A cache hit is a new trace with cache=hit and no KDE child.
	w = getWithHeader(t, h, "/v1/footprint/64500", "")
	if w.Code != http.StatusOK {
		t.Fatalf("cached footprint: %d", w.Code)
	}
	hit := rec.Recent()[0].Tree()
	if attrVal(hit, "cache") != "hit" {
		t.Errorf("cache attr = %q, want hit", attrVal(hit, "cache"))
	}
	if findChild(hit, "kde.estimate") != nil {
		t.Error("cache-hit trace grew a kde.estimate child")
	}
}

func TestAccessLogShape(t *testing.T) {
	var logBuf bytes.Buffer
	s, _, _ := tracedServer(t, &logBuf, Options{})
	getWithHeader(t, s.Handler(), "/v1/as/64500", "")

	line := lastLogLine(t, &logBuf)
	if line["msg"] != "request" || line["level"] != "INFO" {
		t.Fatalf("log line = %v", line)
	}
	for key, want := range map[string]any{
		"route":   "as",
		"method":  "GET",
		"path":    "/v1/as/64500",
		"status":  float64(200),
		"outcome": "ok",
	} {
		if line[key] != want {
			t.Errorf("log %s = %v, want %v", key, line[key], want)
		}
	}
	if b, ok := line["bytes"].(float64); !ok || b <= 0 {
		t.Errorf("log bytes = %v, want > 0", line["bytes"])
	}
	if _, ok := line["dur_us"].(float64); !ok {
		t.Errorf("log dur_us = %v, want a number", line["dur_us"])
	}
	if tid, ok := line["trace"].(string); !ok || len(tid) != 32 {
		t.Errorf("log trace = %v, want 32-hex trace ID", line["trace"])
	}
}

// TestShedTripleAgreement proves the three records of one shed request —
// the metric, the access-log line, and the flight-recorder trace — all
// fire and agree on outcome, status, and trace identity.
func TestShedTripleAgreement(t *testing.T) {
	var logBuf bytes.Buffer
	s, rec, reg := tracedServer(t, &logBuf, Options{MaxInflight: 1})
	h := s.Handler()

	if ok, _ := s.lim.acquire(); !ok { // occupy the only slot
		t.Fatal("could not occupy the only slot")
	}
	w := getWithHeader(t, h, "/v1/as/64500", testTraceparent)
	s.lim.release(time.Millisecond, time.Now().UnixNano())
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("expected shed 503, got %d", w.Code)
	}

	// 1. Metric.
	if n := reg.Counter("eyeball_serve_shed_total", "endpoint", "as").Value(); n != 1 {
		t.Errorf("shed counter = %d, want 1", n)
	}
	// 2. Access log.
	line := lastLogLine(t, &logBuf)
	if line["outcome"] != "shed" || line["status"] != float64(503) {
		t.Errorf("access log outcome/status = %v/%v, want shed/503", line["outcome"], line["status"])
	}
	// 3. Trace — same ID the log line printed.
	roots := rec.Recent()
	if len(roots) != 1 {
		t.Fatalf("recorder holds %d traces, want 1", len(roots))
	}
	n := roots[0].Tree()
	if attrVal(n, "outcome") != "shed" || attrVal(n, "status") != "503" {
		t.Errorf("trace outcome/status = %q/%q, want shed/503", attrVal(n, "outcome"), attrVal(n, "status"))
	}
	if got := roots[0].TraceID().String(); got != line["trace"] {
		t.Errorf("trace ID %s != access-log trace %v", got, line["trace"])
	}
}

// TestTimeoutTripleAgreement is the 504 analogue of the shed test.
func TestTimeoutTripleAgreement(t *testing.T) {
	var logBuf bytes.Buffer
	s, rec, reg := tracedServer(t, &logBuf, Options{Timeout: time.Nanosecond})
	w := getWithHeader(t, s.Handler(), "/v1/footprint/64500", "")
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("expected 504, got %d %s", w.Code, w.Body.String())
	}

	if n := reg.Counter("eyeball_serve_timeouts_total", "endpoint", "footprint").Value(); n != 1 {
		t.Errorf("timeout counter = %d, want 1", n)
	}
	line := lastLogLine(t, &logBuf)
	if line["outcome"] != "timeout" || line["status"] != float64(504) {
		t.Errorf("access log outcome/status = %v/%v, want timeout/504", line["outcome"], line["status"])
	}
	roots := rec.Recent()
	if len(roots) != 1 {
		t.Fatalf("recorder holds %d traces, want 1", len(roots))
	}
	n := roots[0].Tree()
	if attrVal(n, "outcome") != "timeout" || attrVal(n, "status") != "504" {
		t.Errorf("trace outcome/status = %q/%q, want timeout/504", attrVal(n, "outcome"), attrVal(n, "status"))
	}
	if got := roots[0].TraceID().String(); got != line["trace"] {
		t.Errorf("trace ID %s != access-log trace %v", got, line["trace"])
	}
}

func TestDebugEndpoints(t *testing.T) {
	s, _, _ := tracedServer(t, nil, Options{})
	h := s.Handler()
	getWithHeader(t, h, "/v1/as/64500", testTraceparent)
	getWithHeader(t, h, "/v1/lookup?ip=10.1.2.3", "")

	// Listing: newest first, root attrs included.
	w := getWithHeader(t, h, "/debug/requests", "")
	if w.Code != http.StatusOK {
		t.Fatalf("/debug/requests: %d", w.Code)
	}
	var listing struct {
		Traces []struct {
			TraceID string `json:"trace_id"`
			Name    string `json:"name"`
			Spans   int    `json:"spans"`
			Attrs   []struct {
				Key string `json:"key"`
				Val string `json:"val"`
			} `json:"attrs"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &listing); err != nil {
		t.Fatalf("listing not JSON: %v", err)
	}
	if len(listing.Traces) != 2 {
		t.Fatalf("listing holds %d traces, want 2", len(listing.Traces))
	}
	if listing.Traces[0].Name != "serve.lookup" || listing.Traces[1].Name != "serve.as" {
		t.Errorf("listing order = %s,%s; want newest-first lookup,as",
			listing.Traces[0].Name, listing.Traces[1].Name)
	}

	// Slow ring: empty (threshold is 1h in tracedServer).
	w = getWithHeader(t, h, "/debug/requests/slow", "")
	var slow struct {
		Traces []json.RawMessage `json:"traces"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &slow); err != nil || len(slow.Traces) != 0 {
		t.Errorf("slow listing = %s (err %v), want empty traces array", w.Body.String(), err)
	}

	// Full trace by ID — the inbound traceparent's ID.
	w = getWithHeader(t, h, "/debug/trace/0af7651916cd43dd8448eb211c80319c", "")
	if w.Code != http.StatusOK {
		t.Fatalf("/debug/trace/{id}: %d %s", w.Code, w.Body.String())
	}
	var detail struct {
		TraceID     string       `json:"trace_id"`
		Traceparent string       `json:"traceparent"`
		Spans       int          `json:"spans"`
		Root        obs.TreeNode `json:"root"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &detail); err != nil {
		t.Fatalf("detail not JSON: %v", err)
	}
	if detail.TraceID != "0af7651916cd43dd8448eb211c80319c" || detail.Root.Name != "serve.as" {
		t.Errorf("detail = %+v", detail)
	}
	if !strings.HasPrefix(detail.Traceparent, "00-0af7651916cd43dd8448eb211c80319c-") {
		t.Errorf("detail traceparent = %q", detail.Traceparent)
	}

	// Error shapes.
	if w := getWithHeader(t, h, "/debug/trace/nothex", ""); w.Code != http.StatusBadRequest {
		t.Errorf("bad id: %d", w.Code)
	}
	if w := getWithHeader(t, h, "/debug/trace/ffffffffffffffffffffffffffffffff", ""); w.Code != http.StatusNotFound {
		t.Errorf("unknown id: %d", w.Code)
	}
}

func TestDebugEndpointsAbsentWithoutTracer(t *testing.T) {
	s, _, _ := newTestServer(t, Options{})
	for _, url := range []string{
		"/debug/requests", "/debug/requests/slow",
		"/debug/trace/0af7651916cd43dd8448eb211c80319c",
	} {
		if w := getWithHeader(t, s.Handler(), url, ""); w.Code != http.StatusNotFound {
			t.Errorf("%s on untraced server: %d, want 404", url, w.Code)
		}
	}
}

// TestResponsesBitIdenticalTracingOnOff serves the same artifact with
// tracing+logging on and fully off, and requires every data response —
// status, headers, body — to be byte-identical. Tracing is a read-only
// side channel.
func TestResponsesBitIdenticalTracingOnOff(t *testing.T) {
	path, _ := testArtifact(t, t.TempDir())
	load := func(opts Options) *Server {
		opts.Gaz = testGaz
		s := New(opts)
		if _, err := s.LoadFile(path); err != nil {
			t.Fatalf("LoadFile: %v", err)
		}
		return s
	}
	var logBuf bytes.Buffer
	traced := load(Options{
		Tracer: trace.New(trace.Options{
			Seed:     42,
			Recorder: trace.NewRecorder(trace.RecorderOptions{SlowThreshold: time.Nanosecond}),
		}),
		AccessLog: slog.New(slog.NewJSONHandler(&logBuf, nil)),
		Obs:       obs.New(),
	})
	plain := load(Options{})

	urls := []string{
		"/healthz",
		"/v1/as/64500",
		"/v1/as/99999",
		"/v1/as/banana",
		"/v1/lookup?ip=10.1.2.3",
		"/v1/lookup?ip=8.8.8.8",
		"/v1/footprint/64500",
		"/v1/footprint/64500", // cache hit on both sides
		"/v1/footprint/64500?bw=80",
		"/v1/footprint/64501",
	}
	ht, hp := traced.Handler(), plain.Handler()
	for _, url := range urls {
		a := getWithHeader(t, ht, url, testTraceparent)
		b := getWithHeader(t, hp, url, testTraceparent)
		if a.Code != b.Code {
			t.Errorf("%s: status %d (traced) vs %d (plain)", url, a.Code, b.Code)
		}
		if !bytes.Equal(a.Body.Bytes(), b.Body.Bytes()) {
			t.Errorf("%s: body differs with tracing on", url)
		}
		ah, bh := a.Header(), b.Header()
		if len(ah) != len(bh) {
			t.Errorf("%s: header count differs: %v vs %v", url, ah, bh)
		}
		for k := range ah {
			if ah.Get(k) != bh.Get(k) {
				t.Errorf("%s: header %s = %q (traced) vs %q (plain)", url, k, ah.Get(k), bh.Get(k))
			}
		}
	}
}

// TestLatencyExemplar proves a traced request's ID surfaces as an
// OpenMetrics exemplar on the serve latency histogram.
func TestLatencyExemplar(t *testing.T) {
	s, _, reg := tracedServer(t, nil, Options{})
	getWithHeader(t, s.Handler(), "/v1/as/64500", testTraceparent)

	var b bytes.Buffer
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `# {trace_id="0af7651916cd43dd8448eb211c80319c"}`) {
		t.Fatalf("exposition carries no exemplar for the request trace:\n%s", out)
	}
	if !strings.Contains(out, `eyeball_serve_latency_seconds_bucket{endpoint="as",le=`) {
		t.Fatalf("latency histogram missing:\n%s", out)
	}
}

// TestMetricsEndpointMounted covers the /metrics route the debug surface
// shares the mux with.
func TestMetricsEndpointMounted(t *testing.T) {
	s, _, _ := tracedServer(t, nil, Options{})
	h := s.Handler()
	getWithHeader(t, h, "/v1/as/64500", "")
	w := getWithHeader(t, h, "/metrics", "")
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "eyeball_serve_requests_total") {
		t.Fatalf("/metrics: %d %s", w.Code, w.Body.String())
	}
	w = getWithHeader(t, h, "/metrics.json", "")
	if w.Code != http.StatusOK {
		t.Fatalf("/metrics.json: %d", w.Code)
	}
}

// TestSlowCapture routes an over-threshold request into the slow ring.
func TestSlowCapture(t *testing.T) {
	rec := trace.NewRecorder(trace.RecorderOptions{Recent: 8, Slow: 4, SlowThreshold: time.Nanosecond})
	s, _, _ := newTestServer(t, Options{Tracer: trace.New(trace.Options{Seed: 7, Recorder: rec})})
	getWithHeader(t, s.Handler(), "/v1/as/64500", "")
	if len(rec.Slow()) != 1 {
		t.Fatalf("slow ring holds %d traces, want 1 (threshold 1ns)", len(rec.Slow()))
	}
}
