package serve

import (
	"math"
	"sync"
	"time"
)

// Controller is the pure AIMD concurrency-control math, separated from
// the mutex-guarded wrapper so every control decision is unit-testable
// as a function: fold observations into a State with OnComplete, read
// shed advice with RetryAfterSeconds. Nothing in here touches a clock
// or a lock — callers pass monotonic nanoseconds in.
//
// The control law is classic AIMD driven by a latency EWMA against a
// target:
//
//   - latency at or under Target → additive increase: the limit grows
//     by 1/Limit per completion, i.e. +1 per "window" of Limit served
//     requests (the TCP-Reno cadence translated to concurrency).
//   - latency above Target → multiplicative decrease: the limit is
//     scaled by Decrease once per completion while overloaded.
//
// The limit is clamped to [MinLimit, MaxLimit]; MaxLimit is the old
// fixed semaphore's value, so an unloaded server behaves exactly as it
// did before adaptivity: shed only past MaxInflight.
type Controller struct {
	// Target is the latency the EWMA is held against.
	Target time.Duration
	// Alpha is the EWMA smoothing factor for both the latency and the
	// drain-rate estimates (0 < Alpha ≤ 1; higher = jumpier).
	Alpha float64
	// MinLimit and MaxLimit clamp the adaptive limit.
	MinLimit, MaxLimit float64
	// Decrease is the multiplicative backoff factor applied while the
	// latency EWMA sits above Target (0 < Decrease < 1).
	Decrease float64
}

// DefaultController returns the production controller for a given
// ceiling: 250ms target, gentle smoothing, halving-ish decrease.
func DefaultController(maxLimit int, target time.Duration) Controller {
	if target <= 0 {
		target = 250 * time.Millisecond
	}
	return Controller{
		Target:   target,
		Alpha:    0.2,
		MinLimit: 1,
		MaxLimit: float64(maxLimit),
		Decrease: 0.75,
	}
}

// State is the controller's evolving state. The zero value is not
// meaningful; start from Init.
type State struct {
	// Limit is the current concurrency limit (admission compares
	// in-flight against ceil(Limit)).
	Limit float64
	// LatEWMA is the smoothed request latency in seconds (0 until the
	// first completion).
	LatEWMA float64
	// RateEWMA is the smoothed drain rate in completions per second,
	// estimated from inter-completion gaps (0 until two completions).
	RateEWMA float64
	// LastDoneNS is the monotonic timestamp of the last completion in
	// nanoseconds (0 until the first).
	LastDoneNS int64
}

// Init returns the starting state: the limit opens at MaxLimit so an
// unloaded server admits exactly what the fixed semaphore used to.
func (c Controller) Init() State { return State{Limit: c.MaxLimit} }

// OnComplete folds one finished request (service latency lat, finishing
// at monotonic time nowNS) into the state and applies the AIMD step.
func (c Controller) OnComplete(s State, lat time.Duration, nowNS int64) State {
	l := lat.Seconds()
	if s.LatEWMA == 0 {
		s.LatEWMA = l
	} else {
		s.LatEWMA = c.Alpha*l + (1-c.Alpha)*s.LatEWMA
	}
	if s.LastDoneNS != 0 && nowNS > s.LastDoneNS {
		r := 1e9 / float64(nowNS-s.LastDoneNS)
		if s.RateEWMA == 0 {
			s.RateEWMA = r
		} else {
			s.RateEWMA = c.Alpha*r + (1-c.Alpha)*s.RateEWMA
		}
	}
	s.LastDoneNS = nowNS

	if s.LatEWMA > c.Target.Seconds() {
		s.Limit *= c.Decrease
	} else {
		s.Limit += 1 / math.Max(s.Limit, 1)
	}
	if s.Limit < c.MinLimit {
		s.Limit = c.MinLimit
	}
	if s.Limit > c.MaxLimit {
		s.Limit = c.MaxLimit
	}
	return s
}

// RetryAfterSeconds derives the Retry-After value for a shed response
// from the observed drain rate: with inflight requests ahead of the
// client and the server draining RateEWMA requests per second, a slot
// frees in about inflight/rate seconds. Clamped to [1, 30] — never the
// hardcoded 1 the fixed semaphore used to advertise, never a value so
// large a client gives up on a healthy server. Before any drain-rate
// estimate exists (cold server) it answers 1.
func (c Controller) RetryAfterSeconds(s State, inflight int) int {
	if s.RateEWMA <= 0 || inflight <= 0 {
		return 1
	}
	wait := int(math.Ceil(float64(inflight) / s.RateEWMA))
	if wait < 1 {
		return 1
	}
	if wait > 30 {
		return 30
	}
	return wait
}

// limiter is the mutex-guarded admission gate around a Controller: the
// runtime replacement for the old fixed semaphore. A nil *limiter
// admits everything (MaxInflight < 0).
type limiter struct {
	ctl Controller

	mu       sync.Mutex
	st       State
	inflight int
	sheds    uint64
}

func newLimiter(ctl Controller) *limiter {
	return &limiter{ctl: ctl, st: ctl.Init()}
}

// acquire admits the request when in-flight would stay within
// ceil(Limit); on refusal it returns the drain-rate-derived
// Retry-After seconds to advertise.
func (l *limiter) acquire() (ok bool, retryAfter int) {
	if l == nil {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if float64(l.inflight+1) <= math.Ceil(l.st.Limit) {
		l.inflight++
		return true, 0
	}
	l.sheds++
	return false, l.ctl.RetryAfterSeconds(l.st, l.inflight)
}

// release returns a slot and folds the request's service latency into
// the controller.
func (l *limiter) release(lat time.Duration, nowNS int64) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.inflight--
	l.st = l.ctl.OnComplete(l.st, lat, nowNS)
}

// snapshot reports (limit, inflight) for gauges and tests.
func (l *limiter) snapshot() (limit float64, inflight int) {
	if l == nil {
		return math.Inf(1), 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.st.Limit, l.inflight
}
