package serve

import (
	"context"
	"sync"
	"sync/atomic"
)

// flightGroup coalesces concurrent footprint renders for the same
// cacheKey into a single execution — the singleflight discipline. The
// first goroutine to join a key becomes the leader and must render and
// complete the call; every goroutine that joins while the call is in
// flight becomes a waiter and blocks on the leader's result (or its
// typed error), honoring its own context deadline.
//
// The group holds only in-flight calls: complete removes the key
// before closing the done channel, so a goroutine arriving after
// completion starts a fresh call (whose cache lookup will hit the
// just-inserted entry). Nothing here retains bodies past the call —
// retention is the LRU's job.
type flightGroup struct {
	mu    sync.Mutex
	calls map[cacheKey]*flightCall
}

// flightCall is one in-flight render. body and err are written exactly
// once, before done is closed; the channel close is the happens-before
// edge that publishes them to waiters.
type flightCall struct {
	done chan struct{}
	body []byte
	err  error

	// waiters counts goroutines that joined this call after its leader —
	// a diagnostic the coalescing tests poll so they release the render
	// only once every concurrent requester is parked on done.
	waiters atomic.Int32
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[cacheKey]*flightCall)}
}

// join returns the call for key and whether the caller is its leader.
// A leader must call complete exactly once, on every path including
// render failure — an abandoned call would park its waiters forever.
func (g *flightGroup) join(key cacheKey) (*flightCall, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.calls[key]; ok {
		c.waiters.Add(1)
		return c, false
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	return c, true
}

// complete publishes the leader's result and releases the waiters. The
// key is removed before the close so late arrivals lead a new call
// instead of observing a finished one.
func (g *flightGroup) complete(key cacheKey, c *flightCall, body []byte, err error) {
	c.body, c.err = body, err
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
}

// wait blocks until the call completes or ctx expires, whichever comes
// first. A waiter that abandons the call does not affect the leader or
// the other waiters.
func (c *flightCall) wait(ctx context.Context) ([]byte, error) {
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-c.done:
		return c.body, c.err
	}
}
