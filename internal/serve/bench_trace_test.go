package serve

import (
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"eyeballas/internal/trace"
)

// Benchmarks back scripts/bench_trace.sh: the *Traced variants run the
// exact hot paths of bench_test.go with the full tracing stack enabled
// — tracer, flight recorder, slow capture, and histogram exemplars —
// and the gate holds their overhead within 3% of the untraced baseline.
// The *TracedLogged variants add the structured access-log line; the
// slog encode dominates there, so they are reported informationally and
// sit outside the gate (see DESIGN.md §11).

func tracedBenchServer(b *testing.B, accessLog bool) http.Handler {
	opts := Options{
		Tracer: trace.New(trace.Options{
			Seed: 42,
			Recorder: trace.NewRecorder(trace.RecorderOptions{
				Recent:        128,
				SlowThreshold: 250 * time.Millisecond,
			}),
		}),
	}
	if accessLog {
		opts.AccessLog = slog.New(slog.NewJSONHandler(io.Discard, nil))
	}
	s, _, _ := newTestServer(b, opts)
	return s.Handler()
}

func benchGet(b *testing.B, h http.Handler, url string) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodGet, url, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("HTTP %d", rec.Code)
		}
	}
}

func primeFootprint(b *testing.B, h http.Handler) {
	b.Helper()
	req := httptest.NewRequest(http.MethodGet, "/v1/footprint/64500", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("prime: %d", rec.Code)
	}
}

func BenchmarkFootprintCachedTraced(b *testing.B) {
	h := tracedBenchServer(b, false)
	primeFootprint(b, h)
	benchGet(b, h, "/v1/footprint/64500")
}

func BenchmarkLookupTraced(b *testing.B) {
	h := tracedBenchServer(b, false)
	benchGet(b, h, "/v1/lookup?ip=10.1.2.3")
}

func BenchmarkFootprintCachedTracedLogged(b *testing.B) {
	h := tracedBenchServer(b, true)
	primeFootprint(b, h)
	benchGet(b, h, "/v1/footprint/64500")
}

func BenchmarkLookupTracedLogged(b *testing.B) {
	h := tracedBenchServer(b, true)
	benchGet(b, h, "/v1/lookup?ip=10.1.2.3")
}
