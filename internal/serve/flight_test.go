package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"eyeballas/internal/gazetteer"
	"eyeballas/internal/leakcheck"
	"eyeballas/internal/obs"
	"eyeballas/internal/pipeline"
)

// waitFor polls cond once a millisecond until it holds or the deadline
// passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// assertFootprintFunnel pins the counter-funnel invariant: every live
// footprint request that reached the cache layer took exactly one of
// the three cache results, so hit + miss + coalesced == requests. The
// CI smoke asserts the same identity against a real server's /metrics.
func assertFootprintFunnel(t *testing.T, reg *obs.Registry) {
	t.Helper()
	req := reg.Counter("eyeball_serve_footprint_requests_total").Value()
	hit := reg.Counter("eyeball_serve_footprint_cache_total", "result", cacheHit).Value()
	miss := reg.Counter("eyeball_serve_footprint_cache_total", "result", cacheMiss).Value()
	co := reg.Counter("eyeball_serve_footprint_cache_total", "result", cacheCoalesced).Value()
	if hit+miss+co != req {
		t.Errorf("funnel invariant broken: hit %d + miss %d + coalesced %d != requests %d", hit, miss, co, req)
	}
	if dup := reg.Counter("eyeball_serve_footprint_coalesced_total").Value(); dup != co {
		t.Errorf("coalesced_total = %d, cache_total{result=coalesced} = %d; must move together", dup, co)
	}
}

// TestFootprintCoalescesConcurrentMisses is the tentpole's core claim:
// 32 concurrent cold misses for the same (generation, ASN, bw) key
// produce exactly one render. The injected render hook blocks until
// the test has seen all 31 waiters park on the leader's call, so the
// coalesced count is deterministic, not a race the test usually wins.
func TestFootprintCoalescesConcurrentMisses(t *testing.T) {
	defer leakcheck.Check(t)()
	reg := obs.New()
	s, _, _ := newTestServer(t, Options{Obs: reg})

	started := make(chan struct{})
	release := make(chan struct{})
	var renders atomic.Int32
	want := []byte(`{"fake":"footprint"}` + "\n")
	s.render = func(ctx context.Context, _ *gazetteer.Gazetteer, _ *pipeline.ASRecord, _ float64, _ int, _ *obs.Registry) ([]byte, error) {
		if renders.Add(1) == 1 {
			close(started)
		}
		select {
		case <-release:
			return want, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	h := s.Handler()

	const total = 32
	codes := make([]int, total)
	bodies := make([][]byte, total)
	var wg sync.WaitGroup
	do := func(i int) {
		defer wg.Done()
		req := httptest.NewRequest(http.MethodGet, "/v1/footprint/64500", nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		codes[i], bodies[i] = rec.Code, rec.Body.Bytes()
	}

	// The leader goes first and blocks inside the render; everyone after
	// it must join the in-flight call.
	wg.Add(1)
	go do(0)
	<-started
	wg.Add(total - 1)
	for i := 1; i < total; i++ {
		go do(i)
	}

	key := cacheKey{gen: s.Artifact().Gen, asn: 64500, bw: math.Float64bits(s.opts.BandwidthKm)}
	waitFor(t, 2*time.Second, "31 waiters to join the flight", func() bool {
		s.flight.mu.Lock()
		defer s.flight.mu.Unlock()
		c := s.flight.calls[key]
		return c != nil && c.waiters.Load() == total-1
	})
	close(release)
	wg.Wait()

	if n := renders.Load(); n != 1 {
		t.Fatalf("render ran %d times for %d concurrent requests, want exactly 1", n, total)
	}
	for i := 0; i < total; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: HTTP %d %s", i, codes[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], want) {
			t.Fatalf("request %d: body diverged: %q", i, bodies[i])
		}
	}

	counter := func(name string, labels ...string) int64 {
		return reg.Counter(name, labels...).Value()
	}
	if n := counter("eyeball_serve_footprint_cache_total", "result", cacheMiss); n != 1 {
		t.Errorf("miss = %d, want 1 (only the winning render)", n)
	}
	if n := counter("eyeball_serve_footprint_cache_total", "result", cacheCoalesced); n != total-1 {
		t.Errorf("coalesced = %d, want %d", n, total-1)
	}
	if n := counter("eyeball_serve_footprint_cache_total", "result", cacheHit); n != 0 {
		t.Errorf("hit = %d, want 0 (no request arrived after completion)", n)
	}
	if n := counter("eyeball_serve_footprint_requests_total"); n != total {
		t.Errorf("requests = %d, want %d", n, total)
	}
	if n := counter("eyeball_serve_footprint_coalesced_total"); n != total-1 {
		t.Errorf("coalesced_total = %d, want %d", n, total-1)
	}
	assertFootprintFunnel(t, reg)

	// The flight table holds only in-flight calls: nothing may linger.
	s.flight.mu.Lock()
	inflight := len(s.flight.calls)
	s.flight.mu.Unlock()
	if inflight != 0 {
		t.Errorf("%d calls left in the flight table after completion", inflight)
	}

	// And the next request is a plain cache hit off the leader's body.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/footprint/64500", nil))
	if rec.Code != http.StatusOK || !bytes.Equal(rec.Body.Bytes(), want) {
		t.Fatalf("post-flight request: %d %q", rec.Code, rec.Body.String())
	}
	if n := counter("eyeball_serve_footprint_cache_total", "result", cacheHit); n != 1 {
		t.Errorf("post-flight hit = %d, want 1", n)
	}
	assertFootprintFunnel(t, reg)
}

// TestCoalescedWaiterSeesLeaderError: a failed render is delivered to
// its waiters as the same typed error (500 on the wire), is never
// cached, and the key leaves the flight table so the next request
// leads a fresh render.
func TestCoalescedWaiterSeesLeaderError(t *testing.T) {
	defer leakcheck.Check(t)()
	reg := obs.New()
	s, _, _ := newTestServer(t, Options{Obs: reg})

	started := make(chan struct{})
	release := make(chan struct{})
	renderErr := errors.New("kde exploded")
	var calls atomic.Int32
	s.render = func(ctx context.Context, _ *gazetteer.Gazetteer, _ *pipeline.ASRecord, _ float64, _ int, _ *obs.Registry) ([]byte, error) {
		if calls.Add(1) == 1 {
			close(started)
			<-release
			return nil, renderErr
		}
		return []byte("{\"ok\":true}\n"), nil
	}
	h := s.Handler()

	codes := make([]int, 2)
	bodies := make([]string, 2)
	var wg sync.WaitGroup
	do := func(i int) {
		defer wg.Done()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/footprint/64500", nil))
		codes[i], bodies[i] = rec.Code, rec.Body.String()
	}
	wg.Add(1)
	go do(0)
	<-started
	wg.Add(1)
	go do(1)

	key := cacheKey{gen: s.Artifact().Gen, asn: 64500, bw: math.Float64bits(s.opts.BandwidthKm)}
	waitFor(t, 2*time.Second, "the waiter to join the flight", func() bool {
		s.flight.mu.Lock()
		defer s.flight.mu.Unlock()
		c := s.flight.calls[key]
		return c != nil && c.waiters.Load() == 1
	})
	close(release)
	wg.Wait()

	for i := 0; i < 2; i++ {
		if codes[i] != http.StatusInternalServerError {
			t.Fatalf("request %d: HTTP %d %s, want 500", i, codes[i], bodies[i])
		}
		if !strings500(bodies[i]) {
			t.Fatalf("request %d: body %q does not carry the render failure", i, bodies[i])
		}
	}
	if n := reg.Counter("eyeball_serve_footprint_cache_total", "result", cacheCoalesced).Value(); n != 1 {
		t.Errorf("coalesced = %d, want 1 (the waiter)", n)
	}

	// The failure was not cached and the key is free: the next request
	// leads its own (now succeeding) render.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/footprint/64500", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("post-failure request: %d %s", rec.Code, rec.Body.String())
	}
	if n := calls.Load(); n != 2 {
		t.Errorf("render calls = %d, want 2 (failure not cached)", n)
	}
	if n := reg.Counter("eyeball_serve_footprint_cache_total", "result", cacheMiss).Value(); n != 2 {
		t.Errorf("miss = %d, want 2", n)
	}
	assertFootprintFunnel(t, reg)
}

func strings500(body string) bool {
	return bytes.Contains([]byte(body), []byte("footprint render failed"))
}

// TestFlightGroupSemantics is the white-box contract of flightGroup:
// waiter deadlines are the waiter's own problem, completion publishes
// body and error exactly once, and a completed key immediately accepts
// a fresh leader.
func TestFlightGroupSemantics(t *testing.T) {
	g := newFlightGroup()
	key := cacheKey{gen: 1, asn: 64500, bw: math.Float64bits(40)}

	c, leader := g.join(key)
	if !leader {
		t.Fatal("first join must lead")
	}

	// A waiter whose own context is dead gets the context error without
	// disturbing the call.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	w, leader2 := g.join(key)
	if leader2 {
		t.Fatal("second join led a fresh call while one was in flight")
	}
	if _, err := w.wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("expired waiter got %v, want context.Canceled", err)
	}

	// Completion releases patient waiters with the leader's result.
	done := make(chan error, 1)
	go func() {
		body, err := w.wait(context.Background())
		if err == nil && string(body) != "rendered" {
			err = fmt.Errorf("waiter body %q", body)
		}
		done <- err
	}()
	g.complete(key, c, []byte("rendered"), nil)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("waiter after complete: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter never released")
	}

	// complete removed the key before closing done: a late arrival
	// leads a brand-new call instead of observing the finished one.
	c2, leader3 := g.join(key)
	if !leader3 {
		t.Fatal("join after complete must lead a fresh call")
	}
	wantErr := errors.New("second render failed")
	g.complete(key, c2, nil, wantErr)
	if _, err := c2.wait(context.Background()); !errors.Is(err, wantErr) {
		t.Fatalf("error call published %v, want %v", err, wantErr)
	}
}
