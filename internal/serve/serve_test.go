package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"eyeballas/internal/astopo"
	"eyeballas/internal/bgp"
	"eyeballas/internal/core"
	"eyeballas/internal/gazetteer"
	"eyeballas/internal/geo"
	"eyeballas/internal/ipnet"
	"eyeballas/internal/leakcheck"
	"eyeballas/internal/obs"
	"eyeballas/internal/p2p"
	"eyeballas/internal/pipeline"
	"eyeballas/internal/snapshot"
)

// testGaz is built once: gazetteer construction is the expensive part
// of server setup and is world-independent.
var testGaz = gazetteer.Default()

// testArtifact builds a small snapshot file on disk: two ASes whose
// samples sit on real gazetteer cities (so footprints resolve to PoPs)
// plus a two-prefix origin table.
func testArtifact(t testing.TB, dir string) (string, *snapshot.Snapshot) {
	t.Helper()
	milan := cityLoc(t, "IT", "Milan")
	rome := cityLoc(t, "IT", "Rome")
	sydney := cityLoc(t, "AU", "Sydney")

	samplesA := make([]core.Sample, 0, 300)
	for i := 0; i < 200; i++ {
		samplesA = append(samplesA, sampleAt(milan, i, "Milan", "IT"))
	}
	for i := 0; i < 100; i++ {
		samplesA = append(samplesA, sampleAt(rome, i, "Rome", "IT"))
	}
	recA := &pipeline.ASRecord{
		ASN: 64500, Users: 300, Samples: samplesA,
		PeersByApp:  map[p2p.App]int{p2p.Kad: 200, p2p.Gnutella: 100},
		Class:       core.Classification{Level: astopo.LevelCountry, Place: "IT", Share: 1},
		Region:      gazetteer.EU,
		P90GeoErrKm: 18.5,
	}
	samplesB := make([]core.Sample, 0, 150)
	for i := 0; i < 150; i++ {
		samplesB = append(samplesB, sampleAt(sydney, i, "Sydney", "AU"))
	}
	recB := &pipeline.ASRecord{
		ASN: 64501, Users: 150, Samples: samplesB,
		PeersByApp:  map[p2p.App]int{p2p.BitTorrent: 150},
		Class:       core.Classification{Level: astopo.LevelCity, Place: "Sydney/AU", Share: 1},
		Region:      gazetteer.OC,
		P90GeoErrKm: 9.25,
	}
	ds := &pipeline.Dataset{
		ASes:         map[astopo.ASN]*pipeline.ASRecord{64500: recA, 64501: recB},
		Order:        []astopo.ASN{64500, 64501},
		TotalPeers:   450,
		CrawledPeers: 500,
		Funnel:       obs.NewFunnel("test"),
	}
	tbl := ipnet.NewTable[astopo.ASN]()
	insertPrefix(t, tbl, "10.0.0.0/8", 64500)
	insertPrefix(t, tbl, "172.16.0.0/12", 64501)
	snap := &snapshot.Snapshot{
		Meta:    snapshot.Meta{Seed: 1, Label: "serve-test"},
		Dataset: ds,
		Origins: bgp.NewOriginTableFromCompiled(tbl.Compile()),
	}
	path := dir + "/test.snap"
	if err := snapshot.WriteFile(path, snap); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	return path, snap
}

func cityLoc(t testing.TB, country, name string) geo.Point {
	t.Helper()
	for _, c := range testGaz.InCountry(country) {
		if c.Name == name {
			return c.Loc
		}
	}
	t.Fatalf("gazetteer has no %s/%s", name, country)
	return geo.Point{}
}

// sampleAt jitters users deterministically around a city center.
func sampleAt(center geo.Point, i int, city, country string) core.Sample {
	return core.Sample{
		Loc: geo.Point{
			Lat: center.Lat + 0.02*float64(i%7) - 0.06,
			Lon: center.Lon + 0.02*float64(i%5) - 0.04,
		},
		City: city, Country: country, GeoErrKm: float64(i % 30),
	}
}

func insertPrefix(t testing.TB, tbl *ipnet.Table[astopo.ASN], cidr string, asn astopo.ASN) {
	t.Helper()
	p, err := ipnet.ParsePrefix(cidr)
	if err != nil {
		t.Fatalf("ParsePrefix(%s): %v", cidr, err)
	}
	tbl.Insert(p, asn)
}

func newTestServer(t testing.TB, opts Options) (*Server, string, *snapshot.Snapshot) {
	t.Helper()
	path, snap := testArtifact(t, t.TempDir())
	if opts.Gaz == nil {
		opts.Gaz = testGaz
	}
	s := New(opts)
	if _, err := s.LoadFile(path); err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	return s, path, snap
}

func get(t *testing.T, h http.Handler, url string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, url, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func decodeBody(t *testing.T, rec *httptest.ResponseRecorder) map[string]any {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatalf("response %q is not JSON: %v", rec.Body.String(), err)
	}
	return m
}

func TestHealthz(t *testing.T) {
	s, _, _ := newTestServer(t, Options{})
	h := s.Handler()
	rec := get(t, h, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz: %d %s", rec.Code, rec.Body.String())
	}
	m := decodeBody(t, rec)
	if m["status"] != "ok" || m["ases"] != float64(2) || m["generation"] != float64(1) {
		t.Errorf("healthz body: %v", m)
	}

	// No artifact yet → 503.
	empty := New(Options{Gaz: testGaz})
	rec = get(t, empty.Handler(), "/healthz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("empty server healthz: %d", rec.Code)
	}
}

func TestASEndpoint(t *testing.T) {
	s, _, _ := newTestServer(t, Options{})
	h := s.Handler()

	rec := get(t, h, "/v1/as/64500")
	if rec.Code != http.StatusOK {
		t.Fatalf("as: %d %s", rec.Code, rec.Body.String())
	}
	m := decodeBody(t, rec)
	if m["asn"] != float64(64500) || m["users"] != float64(300) || m["region"] != "EU" {
		t.Errorf("as body: %v", m)
	}
	class := m["class"].(map[string]any)
	if class["level"] != "country" || class["place"] != "IT" {
		t.Errorf("class: %v", class)
	}
	apps := m["peers_by_app"].(map[string]any)
	if apps["kad"] != float64(200) || apps["gnutella"] != float64(100) {
		t.Errorf("peers_by_app: %v", apps)
	}

	if rec := get(t, h, "/v1/as/99999"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown AS: %d", rec.Code)
	}
	if rec := get(t, h, "/v1/as/banana"); rec.Code != http.StatusBadRequest {
		t.Errorf("bad ASN: %d", rec.Code)
	}
}

func TestLookupEndpoint(t *testing.T) {
	s, _, _ := newTestServer(t, Options{})
	h := s.Handler()

	rec := get(t, h, "/v1/lookup?ip=10.1.2.3")
	m := decodeBody(t, rec)
	if rec.Code != http.StatusOK || m["asn"] != float64(64500) || m["matched"] != true || m["in_dataset"] != true {
		t.Errorf("lookup 10.1.2.3: %d %v", rec.Code, m)
	}
	rec = get(t, h, "/v1/lookup?ip=8.8.8.8")
	m = decodeBody(t, rec)
	if rec.Code != http.StatusOK || m["matched"] != false {
		t.Errorf("lookup miss: %d %v", rec.Code, m)
	}
	if rec := get(t, h, "/v1/lookup?ip=999.1.1.1"); rec.Code != http.StatusBadRequest {
		t.Errorf("bad ip: %d", rec.Code)
	}
	if rec := get(t, h, "/v1/lookup"); rec.Code != http.StatusBadRequest {
		t.Errorf("missing ip: %d", rec.Code)
	}
}

func TestFootprintEndpointAndCache(t *testing.T) {
	reg := obs.New()
	s, _, snap := newTestServer(t, Options{Obs: reg})
	h := s.Handler()

	rec := get(t, h, "/v1/footprint/64500")
	if rec.Code != http.StatusOK {
		t.Fatalf("footprint: %d %s", rec.Code, rec.Body.String())
	}
	first := rec.Body.Bytes()

	// Served bytes must equal RenderFootprint on the same record — the
	// offline/online bit-identity the CI step checks end to end.
	want, err := RenderFootprint(context.Background(), testGaz, snap.Dataset.AS(64500), 40, 1, nil)
	if err != nil {
		t.Fatalf("RenderFootprint: %v", err)
	}
	if !bytes.Equal(first, want) {
		t.Fatalf("served footprint differs from offline render:\n%s\nvs\n%s", first, want)
	}

	// Second hit: served from cache, byte-identical.
	rec = get(t, h, "/v1/footprint/64500")
	if !bytes.Equal(rec.Body.Bytes(), first) {
		t.Fatal("cached footprint differs from first render")
	}
	if hits := reg.Counter("eyeball_serve_footprint_cache_total", "result", "hit").Value(); hits != 1 {
		t.Errorf("cache hits = %d, want 1", hits)
	}

	// A different bandwidth is a different cache key and different output.
	rec = get(t, h, "/v1/footprint/64500?bw=80")
	if rec.Code != http.StatusOK {
		t.Fatalf("footprint bw=80: %d", rec.Code)
	}
	if bytes.Equal(rec.Body.Bytes(), first) {
		t.Error("bw=80 served the bw=40 bytes")
	}
	if rec := get(t, h, "/v1/footprint/64500?bw=-1"); rec.Code != http.StatusBadRequest {
		t.Errorf("bad bw: %d", rec.Code)
	}
	if rec := get(t, h, "/v1/footprint/99999"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown AS: %d", rec.Code)
	}
}

// TestFootprintConcurrentIdentical hammers one footprint from many
// goroutines through cache misses and hits; every response must be
// byte-identical (run under -race in CI).
func TestFootprintConcurrentIdentical(t *testing.T) {
	s, _, _ := newTestServer(t, Options{CacheSize: 2})
	h := s.Handler()
	want := get(t, h, "/v1/footprint/64500").Body.Bytes()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < 4; k++ {
				asn := 64500
				if (g+k)%2 == 1 {
					asn = 64501 // churn the 2-entry cache
				}
				req := httptest.NewRequest(http.MethodGet, fmt.Sprintf("/v1/footprint/%d", asn), nil)
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					errs <- fmt.Errorf("goroutine %d: HTTP %d", g, rec.Code)
					return
				}
				if asn == 64500 && !bytes.Equal(rec.Body.Bytes(), want) {
					errs <- fmt.Errorf("goroutine %d: bytes diverged", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestLoadShedding(t *testing.T) {
	defer leakcheck.Check(t)()
	reg := obs.New()
	s, _, _ := newTestServer(t, Options{MaxInflight: 1, Obs: reg})
	h := s.Handler()

	// Occupy the single slot directly (white box), then request.
	if ok, _ := s.lim.acquire(); !ok {
		t.Fatal("could not occupy the only slot")
	}
	rec := get(t, h, "/v1/as/64500")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("expected shed 503, got %d", rec.Code)
	}
	// Cold server: no drain-rate estimate yet, so Retry-After is the
	// optimistic floor. (limiter_test.go pins the derived values.)
	if ra := rec.Header().Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After = %q, want 1", ra)
	}
	if n := reg.Counter("eyeball_serve_shed_total", "endpoint", "as").Value(); n != 1 {
		t.Errorf("shed counter = %d, want 1", n)
	}

	// healthz is exempt from the limiter (slot still occupied).
	rec = get(t, h, "/healthz")
	if rec.Code != http.StatusOK {
		t.Errorf("healthz shed: %d", rec.Code)
	}
	s.lim.release(time.Millisecond, time.Now().UnixNano())

	// Slot free again → served.
	if rec := get(t, h, "/v1/as/64500"); rec.Code != http.StatusOK {
		t.Errorf("post-shed request: %d", rec.Code)
	}
}

func TestRequestTimeout(t *testing.T) {
	defer leakcheck.Check(t)()
	// A 1ns deadline cancels the KDE render at its first block check.
	s, _, _ := newTestServer(t, Options{Timeout: time.Nanosecond})
	rec := get(t, s.Handler(), "/v1/footprint/64500")
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("expected 504, got %d %s", rec.Code, rec.Body.String())
	}
}

func TestHotReload(t *testing.T) {
	reg := obs.New()
	s, path, _ := newTestServer(t, Options{Obs: reg})
	h := s.Handler()
	if g := s.Artifact().Gen; g != 1 {
		t.Fatalf("initial generation %d", g)
	}

	// Reload the same file: new generation, still serving.
	req := httptest.NewRequest(http.MethodPost, "/-/reload", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("reload: %d %s", rec.Code, rec.Body.String())
	}
	if m := decodeBody(t, rec); m["generation"] != float64(2) {
		t.Errorf("reload body: %v", m)
	}
	if g := reg.Gauge("eyeball_serve_snapshot_generation").Value(); g != 2 {
		t.Errorf("generation gauge = %v, want 2", g)
	}

	// Corrupt the file on disk: reload must fail with the snapshot's
	// typed error and the old artifact must keep serving.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	req = httptest.NewRequest(http.MethodPost, "/-/reload", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("corrupt reload: %d %s", rec.Code, rec.Body.String())
	}
	m := decodeBody(t, rec)
	if !strings.Contains(m["error"].(string), "snapshot:") {
		t.Errorf("corrupt reload error not typed: %v", m["error"])
	}
	if m["generation"] != float64(2) {
		t.Errorf("corrupt reload should report the still-serving generation, got %v", m["generation"])
	}
	if rec := get(t, h, "/v1/as/64500"); rec.Code != http.StatusOK {
		t.Errorf("old artifact stopped serving after failed reload: %d", rec.Code)
	}
	if s.Artifact().Gen != 2 {
		t.Errorf("generation advanced on failed reload: %d", s.Artifact().Gen)
	}
}

func TestReloadInvalidatesFootprintCache(t *testing.T) {
	s, _, _ := newTestServer(t, Options{})
	h := s.Handler()
	before := get(t, h, "/v1/footprint/64500").Body.Bytes()
	if _, err := s.Reload(); err != nil {
		t.Fatalf("Reload: %v", err)
	}
	// Same dataset, new generation: the cache key changed, so this is a
	// fresh render — and being deterministic, it must still byte-match.
	after := get(t, h, "/v1/footprint/64500").Body.Bytes()
	if !bytes.Equal(before, after) {
		t.Fatal("footprint changed across a reload of the same artifact")
	}
	if s.cache.len() != 2 {
		t.Errorf("cache entries = %d, want 2 (one per generation)", s.cache.len())
	}
}

func TestLRUCacheBounds(t *testing.T) {
	c := newLRUCache(2, nil, nil)
	k := func(i int) cacheKey { return cacheKey{gen: 1, asn: astopo.ASN(i), bw: math.Float64bits(40)} }
	c.add(k(1), []byte("a"))
	c.add(k(2), []byte("b"))
	c.get(k(1)) // 1 is now most recent
	c.add(k(3), []byte("c"))
	if _, ok := c.get(k(2)); ok {
		t.Error("LRU kept the least-recently-used entry")
	}
	if _, ok := c.get(k(1)); !ok {
		t.Error("LRU evicted the recently-used entry")
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
	// nil cache (disabled) is a no-op.
	var nilCache *lruCache
	nilCache.add(k(1), []byte("x"))
	if _, ok := nilCache.get(k(1)); ok {
		t.Error("nil cache returned a hit")
	}
}

// TestBandwidthValidation is the regression table for the ?bw= guard:
// the old `!(v > 0)` check rejected only NaN and non-positives, so
// +Inf (and absurd-but-finite values like 1e300) reached the KDE. The
// envelope is now finite and (0, MaxBandwidthKm]; both footprint
// endpoints share it.
func TestBandwidthValidation(t *testing.T) {
	s, _, _ := newTestServer(t, Options{})
	h := s.Handler()
	cases := []struct {
		name string
		raw  string // already URL-escaped where needed
		want int
	}{
		{"plus-inf", "%2BInf", http.StatusBadRequest},
		{"inf", "Inf", http.StatusBadRequest},
		{"neg-inf", "-Inf", http.StatusBadRequest},
		{"nan", "NaN", http.StatusBadRequest},
		{"zero", "0", http.StatusBadRequest},
		{"negative", "-1", http.StatusBadRequest},
		{"too-large", "5001", http.StatusBadRequest},
		{"huge-finite", "1e300", http.StatusBadRequest},
		{"garbage", "banana", http.StatusBadRequest},
		{"paper-kernel", "40", http.StatusOK},
		{"max", "5000", http.StatusOK},
		{"small", "0.5", http.StatusOK},
	}
	for _, tc := range cases {
		t.Run("single/"+tc.name, func(t *testing.T) {
			rec := get(t, h, "/v1/footprint/64500?bw="+tc.raw)
			if rec.Code != tc.want {
				t.Fatalf("bw=%s: HTTP %d, want %d (%s)", tc.raw, rec.Code, tc.want, rec.Body.String())
			}
			if tc.want == http.StatusBadRequest && !strings.Contains(rec.Body.String(), "bad bandwidth") {
				t.Errorf("bw=%s: 400 body %q lacks the bandwidth message", tc.raw, rec.Body.String())
			}
		})
		t.Run("bulk/"+tc.name, func(t *testing.T) {
			rec := get(t, h, "/v1/footprints?asns=64500&bw="+tc.raw)
			if rec.Code != tc.want {
				t.Fatalf("bulk bw=%s: HTTP %d, want %d (%s)", tc.raw, rec.Code, tc.want, rec.Body.String())
			}
		})
	}
	// An empty bw value means "server default", exactly like an absent
	// parameter.
	if rec := get(t, h, "/v1/footprint/64500?bw="); rec.Code != http.StatusOK {
		t.Errorf("empty bw: HTTP %d, want 200", rec.Code)
	}
}

// TestBulkFootprints pins the bulk endpoint's contract: the response
// body is the concatenation, in request order, of exactly the bytes
// the single endpoint serves for each AS — including the 404 error
// payload for an unknown AS, which arrives inline instead of failing
// the stream.
func TestBulkFootprints(t *testing.T) {
	reg := obs.New()
	s, _, _ := newTestServer(t, Options{Obs: reg})
	h := s.Handler()

	single64500 := get(t, h, "/v1/footprint/64500").Body.Bytes()
	single64501 := get(t, h, "/v1/footprint/64501").Body.Bytes()
	missing := get(t, h, "/v1/footprint/99999")
	if missing.Code != http.StatusNotFound {
		t.Fatalf("single 99999: %d", missing.Code)
	}

	rec := get(t, h, "/v1/footprints?asns=64500,99999,64501")
	if rec.Code != http.StatusOK {
		t.Fatalf("bulk: HTTP %d %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("bulk Content-Type = %q", ct)
	}
	var want bytes.Buffer
	want.Write(single64500)
	want.Write(missing.Body.Bytes())
	want.Write(single64501)
	if !bytes.Equal(rec.Body.Bytes(), want.Bytes()) {
		t.Fatalf("bulk body is not the concatenation of single responses:\n%q\nvs\n%q", rec.Body.String(), want.String())
	}
	assertFootprintFunnel(t, reg)

	// ?bw= rides through to every line.
	single80 := get(t, h, "/v1/footprint/64500?bw=80").Body.Bytes()
	rec = get(t, h, "/v1/footprints?asns=64500&bw=80")
	if rec.Code != http.StatusOK || !bytes.Equal(rec.Body.Bytes(), single80) {
		t.Fatalf("bulk bw=80 diverged from single bw=80 (HTTP %d)", rec.Code)
	}

	// Whole-request failures stay up-front 400s.
	if rec := get(t, h, "/v1/footprints"); rec.Code != http.StatusBadRequest {
		t.Errorf("missing asns: %d", rec.Code)
	}
	if rec := get(t, h, "/v1/footprints?asns=64500,banana"); rec.Code != http.StatusBadRequest {
		t.Errorf("bad asn: %d", rec.Code)
	}
	if rec := get(t, h, "/v1/footprints?asns=-1"); rec.Code != http.StatusBadRequest {
		t.Errorf("negative asn: %d", rec.Code)
	}
	long := "64500" + strings.Repeat(",64500", maxBulkASNs)
	if rec := get(t, h, "/v1/footprints?asns="+long); rec.Code != http.StatusBadRequest {
		t.Errorf("%d asns: %d, want 400", maxBulkASNs+1, rec.Code)
	}
}

func TestRequestMetrics(t *testing.T) {
	reg := obs.New()
	s, _, _ := newTestServer(t, Options{Obs: reg})
	h := s.Handler()
	get(t, h, "/v1/as/64500")
	get(t, h, "/v1/as/99999")
	if n := reg.Counter("eyeball_serve_requests_total", "endpoint", "as", "code", "200").Value(); n != 1 {
		t.Errorf("200 counter = %d", n)
	}
	if n := reg.Counter("eyeball_serve_requests_total", "endpoint", "as", "code", "404").Value(); n != 1 {
		t.Errorf("404 counter = %d", n)
	}
}
