package serve

import (
	"context"
	"math"
	"sort"
	"sync"
	"time"

	"eyeballas/internal/pipeline"
)

// Warmer is one background cache-warming pass over one installed
// artifact: it renders every dataset AS's footprint at the server's
// default bandwidth, most-used ASes first, so the ASes that dominate
// traffic are hot before the first request asks for them. A pass runs
// after every artifact install — startup load, successful reload, and
// rollback — and the next install (or Server.Close) cancels it;
// cancelled renders stop at KDE block boundaries, so teardown is
// prompt and leak-free.
//
// Warm renders run outside the admission limiter: they must never
// consume a slot a live request could have had, and they must keep
// going on an idle server that admits nothing. Instead of admission
// they take a token from the warmer's own low-priority semaphore
// (WarmWorkers wide) and, before each render, yield to live load —
// while in-flight live requests hold at least half the admission
// limit, the warmer polls instead of rendering. Warm renders go
// through the same cache + singleflight path as requests, so a live
// cold miss for an AS the warmer is mid-render on coalesces onto the
// warm render instead of duplicating it (and vice versa); warm renders
// increment none of the request-funnel counters.
//
// Progress is visible as two gauges, reset at the start of each pass:
// eyeball_serve_warm_total (ASes this pass will attempt) and
// eyeball_serve_warm_done (attempts completed, successful or not).
// done == total with total > 0 means the pass finished.
type Warmer struct {
	srv *Server
	art *Artifact
	ctx context.Context

	cancel context.CancelFunc
	done   chan struct{} // closed when every worker has exited
}

// warmYieldPoll is how often a yielding warm worker re-checks live
// load.
const warmYieldPoll = 5 * time.Millisecond

// startWarm begins a warm pass for a just-installed artifact,
// cancelling (and waiting out) the previous pass first so at most one
// pass ever runs. No-op unless Options.Warm is set, or after Close.
func (s *Server) startWarm(a *Artifact) {
	if !s.opts.Warm {
		return
	}
	s.warmMu.Lock()
	defer s.warmMu.Unlock()
	if s.warm != nil {
		s.warm.cancel()
		<-s.warm.done
		s.warm = nil
	}
	if s.closed {
		return
	}
	w := newWarmer(s, a)
	s.warm = w
	go w.run()
}

// warmer returns the current warm pass (tests poll its done channel).
func (s *Server) warmer() *Warmer {
	s.warmMu.Lock()
	defer s.warmMu.Unlock()
	return s.warm
}

// newWarmer builds the pass and publishes its total/done gauges
// synchronously, so "total > 0, done < total" is observable the moment
// the install returns — CI polls exactly that pair and must never see
// the stale previous pass's counts.
func newWarmer(s *Server, a *Artifact) *Warmer {
	var (
		ctx    context.Context
		cancel context.CancelFunc
	)
	if s.opts.WarmBudget > 0 {
		ctx, cancel = context.WithTimeout(context.Background(), s.opts.WarmBudget)
	} else {
		ctx, cancel = context.WithCancel(context.Background())
	}
	w := &Warmer{srv: s, art: a, ctx: ctx, cancel: cancel, done: make(chan struct{})}
	s.opts.Obs.Gauge("eyeball_serve_warm_total").Set(float64(len(a.Snap.Dataset.Order)))
	s.opts.Obs.Gauge("eyeball_serve_warm_done").Set(0)
	return w
}

// warmOrder returns the pass's render order: descending user count,
// ties broken by ascending ASN so the order is deterministic.
func warmOrder(ds *pipeline.Dataset) []*pipeline.ASRecord {
	recs := make([]*pipeline.ASRecord, 0, len(ds.Order))
	for _, asn := range ds.Order {
		recs = append(recs, ds.ASes[asn])
	}
	sort.SliceStable(recs, func(i, j int) bool {
		if recs[i].Users != recs[j].Users {
			return recs[i].Users > recs[j].Users
		}
		return recs[i].ASN < recs[j].ASN
	})
	return recs
}

// run executes the pass: WarmWorkers goroutines pull the next AS off
// the priority order until it is exhausted or the context dies.
func (w *Warmer) run() {
	defer close(w.done)
	defer w.cancel() // releases the budget timer when the pass finishes early
	order := warmOrder(w.art.Snap.Dataset)
	doneG := w.srv.opts.Obs.Gauge("eyeball_serve_warm_done")

	var (
		mu   sync.Mutex
		next int
	)
	take := func() *pipeline.ASRecord {
		mu.Lock()
		defer mu.Unlock()
		if next >= len(order) {
			return nil
		}
		rec := order[next]
		next++
		return rec
	}

	var wg sync.WaitGroup
	for i := 0; i < w.srv.opts.WarmWorkers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				rec := take()
				if rec == nil || w.ctx.Err() != nil {
					return
				}
				w.srv.warmYield(w.ctx)
				_, _, _ = w.srv.footprint(w.ctx, w.art, rec, w.srv.opts.BandwidthKm)
				if w.ctx.Err() != nil {
					// A cancelled render did not warm anything; leaving
					// done short of total is what marks the pass
					// incomplete.
					return
				}
				doneG.Add(1)
			}
		}()
	}
	wg.Wait()
}

// warmYield blocks while live traffic holds at least half the
// admission limit: the warmer is strictly lower priority than
// requests, so under load it waits its turn instead of stealing CPU
// from renders the limiter already admitted. Unlimited servers
// (MaxInflight < 0) never yield.
func (s *Server) warmYield(ctx context.Context) {
	if s.lim == nil {
		return
	}
	for {
		limit, inflight := s.lim.snapshot()
		if float64(inflight) < math.Ceil(limit)/2 {
			return
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(warmYieldPoll):
		}
	}
}
