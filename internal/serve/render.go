package serve

import (
	"context"
	"encoding/json"

	"eyeballas/internal/core"
	"eyeballas/internal/gazetteer"
	"eyeballas/internal/obs"
	"eyeballas/internal/pipeline"
)

// FootprintResponse is the canonical JSON shape of a served footprint.
// The same struct — and the same RenderFootprint function — backs both
// eyeballserve's /v1/footprint endpoint and eyeballpipe's -footprint
// offline export, which is what makes the CI byte-diff between the two
// meaningful: any divergence is a real dataset or estimator divergence,
// never a formatting one.
type FootprintResponse struct {
	ASN         int           `json:"asn"`
	BandwidthKm float64       `json:"bandwidth_km"`
	Samples     int           `json:"samples"`
	Users       int           `json:"users"`
	Dmax        float64       `json:"dmax"`
	Partitions  int           `json:"partitions"`
	NoCityPeaks int           `json:"no_city_peaks"`
	PoPs        []PoPResponse `json:"pops"`
}

// PoPResponse is one city-mapped density peak.
type PoPResponse struct {
	City      string  `json:"city"`
	State     string  `json:"state,omitempty"`
	Country   string  `json:"country"`
	Lat       float64 `json:"lat"`
	Lon       float64 `json:"lon"`
	Density   float64 `json:"density"`
	PeakValue float64 `json:"peak_value"`
}

// RenderFootprint runs the §3–4 footprint estimator over one AS record
// and renders the result as canonical JSON (trailing newline included).
// The output is a pure function of (record, bandwidth): encoding/json
// emits the shortest round-trip form of each float, struct fields in
// declaration order, and the PoP list arrives from core sorted by
// descending density — so equal inputs produce equal bytes whether the
// record came from a live pipeline build or a snapshot read back from
// disk, and regardless of worker count.
func RenderFootprint(ctx context.Context, gaz *gazetteer.Gazetteer, rec *pipeline.ASRecord, bwKm float64, workers int, reg *obs.Registry) ([]byte, error) {
	fp, err := core.EstimateFootprintCtx(ctx, gaz, rec.Samples, core.Options{
		BandwidthKm: bwKm,
		Workers:     workers,
		Obs:         reg,
	})
	if err != nil {
		return nil, err
	}
	resp := FootprintResponse{
		ASN:         int(rec.ASN),
		BandwidthKm: fp.Bandwidth,
		Samples:     fp.N,
		Users:       rec.Users,
		Dmax:        fp.Dmax,
		Partitions:  len(fp.Partitions),
		NoCityPeaks: fp.NoCityPeaks,
		PoPs:        make([]PoPResponse, 0, len(fp.PoPs)),
	}
	for _, p := range fp.PoPs {
		resp.PoPs = append(resp.PoPs, PoPResponse{
			City:      p.City.Name,
			State:     p.City.State,
			Country:   p.City.Country,
			Lat:       p.City.Loc.Lat,
			Lon:       p.City.Loc.Lon,
			Density:   p.Density,
			PeakValue: p.PeakValue,
		})
	}
	b, err := json.Marshal(resp)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
