package serve

import (
	"container/list"
	"sync"

	"eyeballas/internal/astopo"
	"eyeballas/internal/obs"
)

// cacheKey identifies one rendered footprint. The snapshot generation
// is part of the key, so a hot-swap implicitly invalidates every entry
// rendered from the old artifact without any eviction sweep: stale
// entries simply stop being addressable and age out of the LRU tail.
type cacheKey struct {
	gen uint64
	asn astopo.ASN
	bw  uint64 // math.Float64bits of the bandwidth, so NaN/-0 key safely
}

// lruCache is a bounded, mutex-guarded LRU over rendered footprint
// bytes. Values are immutable once inserted (handlers write the slice
// to the response without copying), which is what makes the shared
// reference safe under concurrent readers.
//
// The bound is on entries, not bytes — footprint bodies are a few KiB
// each, so entries is the natural capacity unit — but the cache keeps
// exact byte accounting and publishes both through the entries/bytes
// gauges so the actual heap held by the cache is visible, not inferred.
type lruCache struct {
	mu    sync.Mutex
	max   int
	bytes int64      // Σ len(val) over live entries
	order *list.List // front = most recent; values are *cacheEntry
	items map[cacheKey]*list.Element

	// entriesG/bytesG mirror the entry count and byte total to obs
	// gauges (nil-safe no-ops when metrics are off). Updated under mu,
	// so the two gauges never disagree with each other.
	entriesG *obs.Gauge
	bytesG   *obs.Gauge
}

func newLRUCache(max int, entriesG, bytesG *obs.Gauge) *lruCache {
	if max <= 0 {
		return nil // nil cache: every lookup misses, every add is a no-op
	}
	return &lruCache{
		max:      max,
		order:    list.New(),
		items:    make(map[cacheKey]*list.Element, max),
		entriesG: entriesG,
		bytesG:   bytesG,
	}
}

func (c *lruCache) get(k cacheKey) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

type cacheEntry struct {
	key cacheKey
	val []byte
}

func (c *lruCache) add(k cacheKey, v []byte) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.order.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		c.bytes += int64(len(v)) - int64(len(e.val))
		e.val = v
		c.publishLocked()
		return
	}
	el := c.order.PushFront(&cacheEntry{key: k, val: v})
	c.items[k] = el
	c.bytes += int64(len(v))
	if c.order.Len() > c.max {
		tail := c.order.Back()
		c.order.Remove(tail)
		e := tail.Value.(*cacheEntry)
		delete(c.items, e.key)
		c.bytes -= int64(len(e.val))
	}
	c.publishLocked()
}

func (c *lruCache) publishLocked() {
	c.entriesG.Set(float64(c.order.Len()))
	c.bytesG.Set(float64(c.bytes))
}

// len reports the number of cached entries (diagnostic).
func (c *lruCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// size reports the total bytes held by cached bodies (diagnostic).
func (c *lruCache) size() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}
