package serve

import (
	"container/list"
	"sync"

	"eyeballas/internal/astopo"
)

// cacheKey identifies one rendered footprint. The snapshot generation
// is part of the key, so a hot-swap implicitly invalidates every entry
// rendered from the old artifact without any eviction sweep: stale
// entries simply stop being addressable and age out of the LRU tail.
type cacheKey struct {
	gen uint64
	asn astopo.ASN
	bw  uint64 // math.Float64bits of the bandwidth, so NaN/-0 key safely
}

// lruCache is a bounded, mutex-guarded LRU over rendered footprint
// bytes. Values are immutable once inserted (handlers write the slice
// to the response without copying), which is what makes the shared
// reference safe under concurrent readers.
type lruCache struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recent; values are *cacheEntry
	items map[cacheKey]*list.Element
}

type cacheEntry struct {
	key cacheKey
	val []byte
}

func newLRUCache(max int) *lruCache {
	if max <= 0 {
		return nil // nil cache: every lookup misses, every add is a no-op
	}
	return &lruCache{max: max, order: list.New(), items: make(map[cacheKey]*list.Element, max)}
}

func (c *lruCache) get(k cacheKey) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

func (c *lruCache) add(k cacheKey, v []byte) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.order.MoveToFront(el)
		el.Value.(*cacheEntry).val = v
		return
	}
	el := c.order.PushFront(&cacheEntry{key: k, val: v})
	c.items[k] = el
	if c.order.Len() > c.max {
		tail := c.order.Back()
		c.order.Remove(tail)
		delete(c.items, tail.Value.(*cacheEntry).key)
	}
}

// len reports the number of cached entries (diagnostic).
func (c *lruCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
