package serve

import (
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"eyeballas/internal/astopo"
	"eyeballas/internal/faults"
	"eyeballas/internal/leakcheck"
	"eyeballas/internal/obs"
)

func chaosPlan(t *testing.T, spec string, seed uint64) *faults.Plan {
	t.Helper()
	plan, err := faults.ParseSpec(spec, seed)
	if err != nil {
		t.Fatalf("ParseSpec(%q): %v", spec, err)
	}
	return plan
}

func TestNewChaosNilWhenNoServePoints(t *testing.T) {
	if c := NewChaos(nil, 0); c != nil {
		t.Error("nil plan produced a non-nil Chaos")
	}
	// A plan with only ingestion points armed is chaos-off for serving.
	if c := NewChaos(chaosPlan(t, "geo-miss=0.5", 1), 0); c != nil {
		t.Error("ingestion-only plan produced a non-nil Chaos")
	}
	if c := NewChaos(chaosPlan(t, "serve-500=0.1", 1), 0); c == nil {
		t.Error("serve-500 plan produced a nil Chaos")
	}
}

// TestChaosInjects500 pins the wire shape of an injected 500: status,
// X-Chaos header, JSON error body, outcome metric — and that the
// ledger counted it.
func TestChaosInjects500(t *testing.T) {
	reg := obs.New()
	c := NewChaos(chaosPlan(t, "serve-500=1", 42), 0)
	s, _, _ := newTestServer(t, Options{Obs: reg, Chaos: c})
	h := s.Handler()

	rec := get(t, h, "/v1/as/64500")
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("injected 500: got %d", rec.Code)
	}
	if got := rec.Header().Get(chaosHeader); got != string(faults.Serve500) {
		t.Errorf("X-Chaos = %q, want %q", got, faults.Serve500)
	}
	if m := decodeBody(t, rec); m["error"] == nil {
		t.Errorf("injected 500 body not a JSON error: %v", m)
	}
	if n := c.Ledger()[faults.Serve500]; n != 1 {
		t.Errorf("ledger serve-500 = %d, want 1", n)
	}
	if n := reg.Counter("eyeball_serve_chaos_injections_total", "point", "serve-500").Value(); n != 1 {
		t.Errorf("injection counter = %d, want 1", n)
	}
}

// TestChaosPanicRecovered: an injected handler panic must become a 500
// on the wire — header already carrying the chaos marker — while the
// process (and the test) survives, with the panic metric bumped.
func TestChaosPanicRecovered(t *testing.T) {
	reg := obs.New()
	c := NewChaos(chaosPlan(t, "serve-panic=1", 42), 0)
	s, _, _ := newTestServer(t, Options{Obs: reg, Chaos: c})
	h := s.Handler()

	rec := get(t, h, "/v1/as/64500")
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("recovered panic: got %d", rec.Code)
	}
	if got := rec.Header().Get(chaosHeader); got != string(faults.ServePanic) {
		t.Errorf("X-Chaos = %q, want %q", got, faults.ServePanic)
	}
	if n := reg.Counter("eyeball_serve_panics_total", "endpoint", "as").Value(); n != 1 {
		t.Errorf("panic counter = %d, want 1", n)
	}
	if n := reg.Counter("eyeball_serve_requests_total", "endpoint", "as", "code", "500").Value(); n != 1 {
		t.Errorf("500 request counter = %d, want 1", n)
	}
	if n := c.Ledger()[faults.ServePanic]; n != 1 {
		t.Errorf("ledger serve-panic = %d, want 1", n)
	}
	// The server still serves: chaos decides per sequence, and with
	// rate 1 the next request panics too — swap chaos off and verify
	// the process is healthy.
	s.SetChaos(nil)
	if rec := get(t, h, "/v1/as/64500"); rec.Code != http.StatusOK {
		t.Fatalf("server unhealthy after recovered panic: %d", rec.Code)
	}
}

// TestGenuinePanicRecovered: the recovery middleware is not
// chaos-specific — a handler that panics on its own merits gets the
// same 500 + metric + flight-recorder containment.
func TestGenuinePanicRecovered(t *testing.T) {
	reg := obs.New()
	s := New(Options{Obs: reg, Gaz: testGaz})
	boom := s.instrument("boom", true, func(w http.ResponseWriter, r *http.Request) {
		panic("genuine bug")
	})
	rec := httptest.NewRecorder()
	boom.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("recovered genuine panic: got %d", rec.Code)
	}
	if n := reg.Counter("eyeball_serve_panics_total", "endpoint", "boom").Value(); n != 1 {
		t.Errorf("panic counter = %d, want 1", n)
	}
}

// TestChaosDropSeversConnection: serve-drop panics http.ErrAbortHandler,
// which the recovery middleware must re-raise (the stdlib contract for
// silent connection teardown) rather than convert to a 500.
func TestChaosDropSeversConnection(t *testing.T) {
	c := NewChaos(chaosPlan(t, "serve-drop=1", 42), 0)
	s, _, _ := newTestServer(t, Options{Chaos: c})
	h := s.Handler()

	defer func() {
		if r := recover(); r != http.ErrAbortHandler {
			t.Errorf("recovered %v, want http.ErrAbortHandler to propagate", r)
		}
		if n := c.Ledger()[faults.ServeDrop]; n != 1 {
			t.Errorf("ledger serve-drop = %d, want 1", n)
		}
	}()
	// ServeHTTP on the raw handler: net/http would catch the abort and
	// sever the TCP stream; here the panic reaches the test directly.
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/v1/as/64500", nil))
	t.Fatal("serve-drop did not abort the handler")
}

// TestChaosDropOverWire: through a real HTTP server, a dropped request
// surfaces client-side as a transport error, never as a response.
func TestChaosDropOverWire(t *testing.T) {
	c := NewChaos(chaosPlan(t, "serve-drop=1", 42), 0)
	s, _, _ := newTestServer(t, Options{Chaos: c})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/v1/as/64500")
	if err == nil {
		resp.Body.Close()
		t.Fatalf("dropped request produced a response: %d", resp.StatusCode)
	}
}

// TestChaosSlowDelays: serve-slow must stretch the request by its
// site-derived delay and mark the (otherwise successful) response.
func TestChaosSlowDelays(t *testing.T) {
	slowMax := 30 * time.Millisecond
	c := NewChaos(chaosPlan(t, "serve-slow=1", 42), slowMax)
	s, _, _ := newTestServer(t, Options{Chaos: c})
	h := s.Handler()

	start := time.Now()
	rec := get(t, h, "/v1/as/64500")
	elapsed := time.Since(start)
	if rec.Code != http.StatusOK {
		t.Fatalf("slow request failed: %d", rec.Code)
	}
	if got := rec.Header().Get(chaosHeader); got != string(faults.ServeSlow) {
		t.Errorf("X-Chaos = %q, want %q", got, faults.ServeSlow)
	}
	if elapsed < slowMax/8 {
		t.Errorf("request took %v, expected at least %v of injected delay", elapsed, slowMax/8)
	}
}

// TestChaosLedgerDeterministicAcrossWorkers is the replay guarantee:
// the same seed and request count produce the identical ledger whether
// the requests arrive sequentially or from 16 goroutines at once —
// decisions are functions of (seed, point, sequence), never schedule.
func TestChaosLedgerDeterministicAcrossWorkers(t *testing.T) {
	defer leakcheck.Check(t)()
	const n = 400
	spec := "serve-slow=0.05,serve-500=0.1,serve-panic=0.05,serve-drop=0.05"

	run := func(workers int) map[faults.Point]uint64 {
		c := NewChaos(chaosPlan(t, spec, 77), time.Microsecond)
		s, _, _ := newTestServer(t, Options{Chaos: c, MaxInflight: -1})
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		client := ts.Client()
		client.Timeout = 10 * time.Second

		var wg sync.WaitGroup
		per := n / workers
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					resp, err := client.Get(ts.URL + "/v1/as/64500")
					if err == nil {
						resp.Body.Close()
					}
				}
			}()
		}
		wg.Wait()
		if got := c.Requests(); got != n {
			t.Errorf("workers=%d: %d requests drew sites, want %d", workers, got, n)
		}
		return c.Ledger()
	}

	seq := run(1)
	par := run(16)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("ledger differs across worker counts:\nseq: %v\npar: %v", seq, par)
	}
	total := uint64(0)
	for _, v := range seq {
		total += v
	}
	if total == 0 {
		t.Fatal("a 10 percent-class plan injected nothing across 400 requests")
	}
}

// TestChaosOffIsInert: a nil chaos (the default) must leave every
// response untouched — no header, no ledger, byte-identical behavior —
// and impose zero extra allocations on the hot path.
func TestChaosOffIsInert(t *testing.T) {
	s, _, _ := newTestServer(t, Options{})
	h := s.Handler()
	rec := get(t, h, "/v1/as/64500")
	if rec.Code != http.StatusOK {
		t.Fatalf("chaos-off request: %d", rec.Code)
	}
	if got := rec.Header().Get(chaosHeader); got != "" {
		t.Errorf("chaos-off response carries X-Chaos %q", got)
	}
	if s.ChaosState() != nil {
		t.Error("ChaosState non-nil with chaos off")
	}
	var nilChaos *Chaos
	for pt, v := range nilChaos.Ledger() {
		if v != 0 {
			t.Errorf("nil ledger %s = %d", pt, v)
		}
	}
	if nilChaos.Requests() != 0 {
		t.Error("nil chaos counted requests")
	}
}

// TestChaosOffZeroExtraAllocs pins the PR 3 rule for the chaos layer:
// with chaos disarmed, the lookup path must allocate exactly what it
// allocated before the layer existed — the chaos branch is free.
func TestChaosOffZeroExtraAllocs(t *testing.T) {
	s, _, _ := newTestServer(t, Options{})
	h := s.Handler()
	req := httptest.NewRequest(http.MethodGet, "/v1/lookup?ip=10.1.2.3", nil)
	rec := httptest.NewRecorder()

	// Warm once, then compare the steady-state allocation count of the
	// full dispatch against the recorded BENCH_pr8 baseline (44): the
	// chaos-off branch must not add a single allocation.
	h.ServeHTTP(rec, req)
	allocs := testing.AllocsPerRun(200, func() {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
	})
	// httptest.NewRecorder + body buffering accounts for a handful of
	// the measured allocations; the baseline bench (which includes the
	// same recorder cost) measured 44. Anything above it means the
	// middleware grew.
	if allocs > 44 {
		t.Errorf("chaos-off lookup dispatch allocates %.0f/op, want ≤ 44 (PR 8 baseline)", allocs)
	}
}

// TestChaosSlowAppliedAfterAdmission: a request shed by the limiter
// never reaches its serve-slow sleep, so the ledger (applied faults)
// stays in lockstep with what clients can observe.
func TestChaosSlowAppliedAfterAdmission(t *testing.T) {
	c := NewChaos(chaosPlan(t, "serve-slow=1", 42), time.Millisecond)
	s, _, _ := newTestServer(t, Options{Chaos: c, MaxInflight: 1})
	h := s.Handler()

	if ok, _ := s.lim.acquire(); !ok {
		t.Fatal("could not occupy the only slot")
	}
	rec := get(t, h, "/v1/as/64500")
	s.lim.release(time.Millisecond, time.Now().UnixNano())
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("expected shed 503, got %d", rec.Code)
	}
	if n := c.Ledger()[faults.ServeSlow]; n != 0 {
		t.Errorf("shed request counted as slowed: ledger = %d", n)
	}
	if got := c.Requests(); got != 1 {
		t.Errorf("shed request did not draw a site: %d", got)
	}
	// Admitted now: the slow fault applies and the ledger catches up.
	rec = get(t, h, "/v1/as/64500")
	if rec.Code != http.StatusOK {
		t.Fatalf("post-shed request: %d", rec.Code)
	}
	if n := c.Ledger()[faults.ServeSlow]; n != 1 {
		t.Errorf("admitted slow request not in ledger: %d", n)
	}
}

// TestReloadFailRollsBack: with the reload-fail point armed at rate 1,
// a reload decodes fine, swaps, fails post-swap validation, and must
// auto-revert to the pinned artifact with the rollback counter bumped.
func TestReloadFailRollsBack(t *testing.T) {
	reg := obs.New()
	c := NewChaos(chaosPlan(t, "reload-fail=1", 42), 0)
	s, _, _ := newTestServer(t, Options{Obs: reg, Chaos: c})
	h := s.Handler()
	gen := s.Artifact().Gen

	req := httptest.NewRequest(http.MethodPost, "/-/reload", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("rolled-back reload: got %d %s", rec.Code, rec.Body.String())
	}
	m := decodeBody(t, rec)
	if m["rolled_back"] != true {
		t.Errorf("reload response missing rolled_back: %v", m)
	}
	if m["generation"] != float64(gen) {
		t.Errorf("reload response generation %v, want pinned %d", m["generation"], gen)
	}
	if s.Artifact().Gen != gen {
		t.Errorf("serving generation %d after rollback, want %d", s.Artifact().Gen, gen)
	}
	if n := reg.Counter("eyeball_serve_reload_rollbacks_total").Value(); n != 1 {
		t.Errorf("rollback counter = %d, want 1", n)
	}
	if n := c.Ledger()[faults.ReloadFail]; n != 1 {
		t.Errorf("ledger reload-fail = %d, want 1", n)
	}
	if g := reg.Gauge("eyeball_serve_snapshot_generation").Value(); g != float64(gen) {
		t.Errorf("generation gauge %v after rollback, want %d", g, gen)
	}
	// The pinned artifact still answers.
	if rec := get(t, h, "/v1/as/64500"); rec.Code != http.StatusOK {
		t.Errorf("pinned artifact not serving after rollback: %d", rec.Code)
	}

	// Disarm chaos: the next reload succeeds and generations advance.
	s.SetChaos(nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/-/reload", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("post-rollback reload: %d %s", rec.Code, rec.Body.String())
	}
	if s.Artifact().Gen <= gen {
		t.Errorf("generation did not advance after recovery: %d", s.Artifact().Gen)
	}
}

// TestVerifyLiveCatchesStructuralDamage: the post-swap validation is
// real, not just a chaos hook — an artifact whose order index lies
// about its records must be rejected.
func TestVerifyLiveCatchesStructuralDamage(t *testing.T) {
	s, _, snap := newTestServer(t, Options{})
	a := s.Artifact()
	if err := s.verifyLive(a); err != nil {
		t.Fatalf("healthy artifact failed verifyLive: %v", err)
	}
	// Order lists an AS with no record.
	broken := *snap.Dataset
	broken.Order = append(append([]astopo.ASN{}, broken.Order...), 99999)
	badSnap := *a.Snap
	badSnap.Dataset = &broken
	bad := &Artifact{Snap: &badSnap, Path: a.Path, Gen: a.Gen}
	if err := s.verifyLive(bad); err == nil {
		t.Error("verifyLive accepted an order entry with no record")
	}
}
