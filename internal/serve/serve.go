// Package serve is the query layer over snapshot artifacts: an HTTP
// server that loads a versioned binary snapshot (internal/snapshot) at
// startup and answers classification, origin-lookup, and footprint
// queries from it — the "compile offline, serve online" split that
// turns the paper's batch methodology into an operable system.
//
// Operational properties:
//
//   - Hot swap. The current artifact lives behind one atomic pointer.
//     A reload (SIGHUP or POST /-/reload) parses and fully validates
//     the new artifact off to the side and only then swaps the pointer;
//     in-flight requests keep the artifact pointer they loaded at entry
//     and finish on the old snapshot. A reload that fails validation —
//     truncated, checksum-corrupt, version-skewed — leaves the old
//     artifact serving and reports the typed snapshot error.
//
//   - Adaptive load shedding. An AIMD concurrency limiter (limiter.go)
//     bounds concurrently served requests: the limit opens at
//     MaxInflight, backs off multiplicatively while the request-latency
//     EWMA sits above the target, and recovers additively when latency
//     is healthy. Excess requests are shed immediately with 503 and a
//     Retry-After derived from the observed drain rate (clamped to
//     [1, 30]) rather than queueing without bound. /healthz and the
//     reload endpoint are exempt so probes and operators get through
//     under overload.
//
//   - Panic containment. A recovery middleware inside the serving
//     discipline converts handler panics into a 500 with a metric and
//     a flight-recorder event; the process survives. The one panic it
//     re-raises is http.ErrAbortHandler — the stdlib contract for
//     "sever this connection silently", which the serve-drop chaos
//     point uses.
//
//   - Deterministic chaos. When armed with a faults.Plan (chaos.go),
//     a middleware injects serve-slow / serve-500 / serve-panic /
//     serve-drop faults whose decisions are pure splitmix64 functions
//     of (seed, point, request sequence) — replayable, and accounted
//     in an injection ledger the chaos e2e harness reconciles against
//     the client's observations. Chaos off is one branch per request.
//
//   - Reload rollback. The last-known-good artifact stays pinned: if a
//     hot-swapped snapshot fails post-swap validation (or the
//     reload-fail chaos point fires), the server auto-reverts to the
//     pinned artifact and counts the rollback.
//
//   - Bounded caching. Rendered footprints — the one expensive query,
//     a full KDE grid per call — are cached in an LRU keyed by
//     (generation, ASN, bandwidth). The generation in the key makes a
//     hot swap invalidate the cache implicitly.
//
//   - Deadlines. Every request runs under a per-request context
//     timeout; the footprint estimator observes cancellation at KDE
//     block boundaries, so a stuck query returns 504 instead of holding
//     a semaphore slot forever.
//
// Every response the data endpoints produce is rendered by the same
// code paths the offline tools use (RenderFootprint in particular), so
// served bytes are bit-identical to eyeballpipe's exports for the same
// dataset — proven end to end in CI.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"eyeballas/internal/astopo"
	"eyeballas/internal/gazetteer"
	"eyeballas/internal/ipnet"
	"eyeballas/internal/obs"
	"eyeballas/internal/pipeline"
	"eyeballas/internal/snapshot"
	"eyeballas/internal/trace"
)

// Options configure a Server. Zero fields take the listed defaults.
type Options struct {
	// Timeout bounds each request's handling (default 5s; negative
	// disables).
	Timeout time.Duration
	// MaxInflight is the adaptive limiter's ceiling on concurrently
	// served data requests; excess requests are shed with 503 (default
	// 64; negative disables shedding entirely).
	MaxInflight int
	// TargetLatency is the service-latency target the adaptive limiter
	// holds its EWMA against: sustained latency above it shrinks the
	// admission limit multiplicatively (default 250ms).
	TargetLatency time.Duration
	// Chaos arms serve-path fault injection (nil — the default — is
	// chaos fully off at the cost of one branch per request). Build
	// one with NewChaos; swap at runtime with SetChaos.
	Chaos *Chaos
	// CacheSize bounds the rendered-footprint LRU in entries (default
	// 128; negative disables caching).
	CacheSize int
	// BandwidthKm is the footprint bandwidth used when a request does
	// not pass ?bw= (default 40, the paper's kernel).
	BandwidthKm float64
	// Warm enables the background footprint warmer: after every
	// artifact install (startup load, reload, rollback) a Warmer
	// renders every dataset AS at the default bandwidth in descending
	// user-count order, so steady-state traffic starts on a hot cache
	// instead of a 504 storm. The warmer is cancelled by the next swap
	// and by Close.
	Warm bool
	// WarmWorkers bounds concurrent warm renders (default 1). This is
	// the warmer's low-priority semaphore: warm renders bypass the
	// admission limiter entirely but pause while live traffic holds a
	// significant share of the admission limit.
	WarmWorkers int
	// WarmBudget bounds one warm pass's wall time (0 = unbounded). A
	// pass that exhausts its budget stops where it is; the cache keeps
	// whatever was rendered.
	WarmBudget time.Duration
	// Workers is the KDE worker count per footprint render (default 1;
	// renders are already request-parallel).
	Workers int
	// Obs receives request metrics; nil disables instrumentation.
	Obs *obs.Registry
	// Gaz maps density peaks to cities (default gazetteer.Default()).
	Gaz *gazetteer.Gazetteer
	// Tracer records one request-scoped trace per request into its
	// flight recorder, inspectable at /debug/requests and
	// /debug/trace/{id}; nil disables tracing (the per-request cost is
	// then a single branch). Response bytes are bit-identical either
	// way — tracing is a read-only side channel.
	Tracer *trace.Tracer
	// AccessLog receives one structured line per request (route,
	// status, outcome, duration, trace ID); nil disables access
	// logging.
	AccessLog *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.Timeout == 0 {
		o.Timeout = 5 * time.Second
	}
	if o.MaxInflight == 0 {
		o.MaxInflight = 64
	}
	if o.CacheSize == 0 {
		o.CacheSize = 128
	}
	if o.BandwidthKm == 0 {
		o.BandwidthKm = 40
	}
	if o.Workers == 0 {
		o.Workers = 1
	}
	if o.WarmWorkers <= 0 {
		o.WarmWorkers = 1
	}
	if o.Gaz == nil {
		o.Gaz = gazetteer.Default()
	}
	return o
}

// Artifact is one installed snapshot: the parsed artifact plus the path
// it came from (the reload target) and its install generation.
type Artifact struct {
	Snap *snapshot.Snapshot
	Path string
	Gen  uint64
}

// Server answers queries from the currently installed Artifact. Create
// with New, install an artifact with Load or LoadFile, and mount
// Handler on an http.Server.
type Server struct {
	opts Options
	art  atomic.Pointer[Artifact]

	lim    *limiter
	cache  *lruCache
	flight *flightGroup
	chaos  atomic.Pointer[Chaos]

	// render is the footprint-render seam: RenderFootprint in
	// production, an instrumented hook in tests that count or stall
	// renders. Every render — handler leader, bulk line, warm pass —
	// goes through it.
	render renderFunc

	// reloadMu serializes Load/Reload so two concurrent reloads cannot
	// interleave generation assignment; readers never take it.
	reloadMu  sync.Mutex
	nextGen   uint64
	reloadSeq uint64

	// warmMu guards the warmer lifecycle: at most one warm pass runs at
	// a time, the next swap cancels the previous pass before starting
	// its own, and Close cancels whatever is running.
	warmMu sync.Mutex
	warm   *Warmer
	closed bool
}

// renderFunc is the signature of the footprint renderer the server
// dispatches to (RenderFootprint unless a test overrides it).
type renderFunc func(ctx context.Context, gaz *gazetteer.Gazetteer, rec *pipeline.ASRecord, bwKm float64, workers int, reg *obs.Registry) ([]byte, error)

// New creates a server with no artifact installed (healthz reports 503
// until Load succeeds).
func New(opts Options) *Server {
	o := opts.withDefaults()
	s := &Server{opts: o, flight: newFlightGroup(), render: RenderFootprint}
	if o.MaxInflight > 0 {
		s.lim = newLimiter(DefaultController(o.MaxInflight, o.TargetLatency))
	}
	if o.CacheSize > 0 {
		s.cache = newLRUCache(o.CacheSize,
			o.Obs.Gauge("eyeball_serve_footprint_cache_entries"),
			o.Obs.Gauge("eyeball_serve_footprint_cache_bytes"))
	}
	if o.Chaos != nil {
		s.chaos.Store(o.Chaos)
	}
	return s
}

// Close cancels the running warm pass (if any) and waits for its
// goroutines to exit. The server keeps answering requests — Close
// tears down background work, not the handler — but no further warm
// passes start. Idempotent.
func (s *Server) Close() {
	s.warmMu.Lock()
	defer s.warmMu.Unlock()
	s.closed = true
	if s.warm != nil {
		s.warm.cancel()
		<-s.warm.done
		s.warm = nil
	}
}

// SetChaos swaps the serve-path fault injector at runtime (nil turns
// chaos off). In-flight requests keep the injector they loaded at
// entry. The chaos e2e harness uses this to model fault recovery.
func (s *Server) SetChaos(c *Chaos) { s.chaos.Store(c) }

// Chaos returns the currently armed injector (nil when chaos is off).
func (s *Server) ChaosState() *Chaos { return s.chaos.Load() }

// Load installs a parsed snapshot as the serving artifact.
func (s *Server) Load(snap *snapshot.Snapshot, path string) *Artifact {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	return s.install(snap, path)
}

func (s *Server) install(snap *snapshot.Snapshot, path string) *Artifact {
	s.nextGen++
	a := &Artifact{Snap: snap, Path: path, Gen: s.nextGen}
	s.art.Store(a)
	s.opts.Obs.Gauge("eyeball_serve_snapshot_generation").Set(float64(a.Gen))
	s.opts.Obs.Gauge("eyeball_serve_snapshot_ases").Set(float64(len(snap.Dataset.Order)))
	s.startWarm(a)
	return a
}

// LoadFile reads, validates, and installs a snapshot artifact from
// disk. On error nothing changes: whatever artifact was serving keeps
// serving.
func (s *Server) LoadFile(path string) (*Artifact, error) {
	snap, err := snapshot.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return s.Load(snap, path), nil
}

// ErrReloadRolledBack is the typed result of a reload whose swapped-in
// snapshot failed post-swap validation: the server auto-reverted to the
// pinned last-known-good artifact. Match with errors.Is.
var ErrReloadRolledBack = errors.New("serve: reload rolled back to last-known-good artifact")

// Reload re-reads the current artifact's file and hot-swaps to it. The
// swap happens only after the new artifact fully parses and validates;
// on any error — including a snapshot corrupted on disk since the last
// load — the old artifact keeps serving and the typed snapshot error is
// returned. In-flight requests that started before the swap finish on
// the artifact they loaded at entry.
//
// The previously serving artifact stays pinned as last-known-good: if
// the swapped-in snapshot fails validation once live (a structural
// check the decode layer cannot see, or the reload-fail chaos point),
// the server auto-reverts to the pinned artifact, counts the rollback
// in eyeball_serve_reload_rollbacks_total, and returns an error
// matching ErrReloadRolledBack.
func (s *Server) Reload() (*Artifact, error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	cur := s.art.Load()
	if cur == nil {
		return nil, fmt.Errorf("serve: no artifact installed to reload")
	}
	snap, err := snapshot.ReadFile(cur.Path)
	if err != nil {
		s.opts.Obs.Counter("eyeball_serve_reloads_total", "result", "error").Inc()
		return nil, err
	}
	s.reloadSeq++
	a := s.install(snap, cur.Path)
	if err := s.verifyLive(a); err != nil {
		// Roll back: re-point at the pinned last-known-good artifact.
		// Requests that grabbed the bad artifact mid-flight finish on
		// it (the standard hot-swap discipline); everything after the
		// revert serves from the pinned one.
		s.art.Store(cur)
		s.opts.Obs.Gauge("eyeball_serve_snapshot_generation").Set(float64(cur.Gen))
		s.opts.Obs.Gauge("eyeball_serve_snapshot_ases").Set(float64(len(cur.Snap.Dataset.Order)))
		// Rewarm under the pinned generation: the rolled-back install
		// started a warm pass for the bad artifact, whose cache entries
		// are unreachable now the generation reverted.
		s.startWarm(cur)
		s.opts.Obs.Counter("eyeball_serve_reload_rollbacks_total").Inc()
		s.opts.Obs.Counter("eyeball_serve_reloads_total", "result", "rollback").Inc()
		return nil, fmt.Errorf("%w (generation %d still serving): %v", ErrReloadRolledBack, cur.Gen, err)
	}
	s.opts.Obs.Counter("eyeball_serve_reloads_total", "result", "ok").Inc()
	return a, nil
}

// verifyLive runs the post-swap validation pass over a just-installed
// artifact: the structural invariants decode alone cannot rule out —
// plus the reload-fail chaos point, which models exactly this class of
// "valid bytes, broken artifact" failure.
func (s *Server) verifyLive(a *Artifact) error {
	if s.chaos.Load().reloadFails(s.reloadSeq) {
		return fmt.Errorf("chaos: injected reload validation failure (attempt %d)", s.reloadSeq)
	}
	ds := a.Snap.Dataset
	for i, asn := range ds.Order {
		rec := ds.ASes[asn]
		if rec == nil {
			return fmt.Errorf("serve: artifact order lists AS%d with no record", asn)
		}
		if i > 0 && ds.Order[i-1] >= asn {
			return fmt.Errorf("serve: artifact AS order not strictly ascending at AS%d", asn)
		}
	}
	if f := ds.Funnel; f != nil {
		if err := f.Check(); err != nil {
			return fmt.Errorf("serve: artifact funnel ledger inconsistent: %w", err)
		}
	}
	return nil
}

// Artifact returns the currently serving artifact (nil before Load).
func (s *Server) Artifact() *Artifact { return s.art.Load() }

// Handler returns the server's route table:
//
//	GET  /healthz              liveness + artifact summary
//	GET  /v1/as/{asn}          classification record for one AS
//	GET  /v1/lookup?ip=a.b.c.d origin AS of an address (compiled LPM)
//	GET  /v1/footprint/{asn}   PoP-level footprint (?bw= overrides km)
//	GET  /v1/footprints?asns=  bulk footprints, one JSON line per AS
//	POST /-/reload             hot-swap to the re-read artifact file
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /healthz", s.instrument("healthz", false, s.handleHealthz))
	mux.Handle("GET /v1/as/{asn}", s.instrument("as", true, s.handleAS))
	mux.Handle("GET /v1/lookup", s.instrument("lookup", true, s.handleLookup))
	mux.Handle("GET /v1/footprint/{asn}", s.instrument("footprint", true, s.handleFootprint))
	mux.Handle("GET /v1/footprints", s.instrument("footprints", true, s.handleFootprints))
	mux.Handle("POST /-/reload", s.instrument("reload", false, s.handleReload))
	// Diagnostic surfaces ride outside the serving discipline: no
	// shedding, no tracing of the trace-inspection requests themselves.
	if rec := s.opts.Tracer.Recorder(); rec != nil {
		mux.Handle("GET /debug/requests", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			s.handleDebugList(w, rec.Recent())
		}))
		mux.Handle("GET /debug/requests/slow", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			s.handleDebugList(w, rec.Slow())
		}))
		mux.Handle("GET /debug/trace/{id}", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			s.handleDebugTrace(w, r, rec)
		}))
	}
	if s.opts.Obs != nil {
		h := s.opts.Obs.HTTPHandler()
		mux.Handle("GET /metrics", h)
		mux.Handle("GET /metrics.json", h)
	}
	return mux
}

// statusWriter records the response code and size for instrumentation,
// and carries the request's root span and outcome to the middleware
// layers (spanOf) without a context hop on the hot path.
type statusWriter struct {
	http.ResponseWriter
	code    int
	n       int
	wrote   bool // a header (explicit or implicit) reached the wire
	outcome string
	span    *trace.Span
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	w.wrote = true
	n, err := w.ResponseWriter.Write(p)
	w.n += n
	return n, err
}

// spanOf returns the root span the middleware attached to this request,
// or nil when tracing is disabled. Composes with the nil-safe span API.
func spanOf(w http.ResponseWriter) *trace.Span {
	if sw, ok := w.(*statusWriter); ok {
		return sw.span
	}
	return nil
}

// instrument wraps a handler with the serving discipline, innermost to
// outermost per request: chaos injection (when armed), adaptive load
// shedding (when limited), the per-request deadline, panic recovery,
// request/latency metrics, and — when configured — the request-scoped
// trace and the structured access-log line. The three records of one
// request (trace, log line, metrics) are emitted from the same
// deferred block over the same statusWriter state, so they cannot
// disagree about status or outcome.
func (s *Server) instrument(endpoint string, limited bool, h http.HandlerFunc) http.Handler {
	hist := s.opts.Obs.Histogram("eyeball_serve_latency_seconds", obs.LatencyBuckets(), "endpoint", endpoint)
	spanName := "serve." + endpoint
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK, outcome: "ok"}
		start := time.Now()
		if s.opts.Tracer != nil {
			// Direct map index under the canonical key (the server
			// canonicalizes inbound header names): Header.Get with a
			// non-canonical key allocates on every request.
			var traceparent string
			if v := r.Header["Traceparent"]; len(v) > 0 {
				traceparent = v[0]
			}
			sw.span = s.opts.Tracer.StartAt(spanName, start, traceparent)
			sw.span.SetStr("route", endpoint)
		}
		// Deferred stack, LIFO: the limiter release (armed below) runs
		// first, panic recovery second — so a recovered panic has its
		// 500 in place — and this metrics/log/span block runs last,
		// reading the final statusWriter state.
		defer func() {
			dur := time.Since(start)
			switch sw.code {
			case http.StatusGatewayTimeout:
				sw.outcome = "timeout"
				s.opts.Obs.Counter("eyeball_serve_timeouts_total", "endpoint", endpoint).Inc()
			default:
				if sw.code >= 500 && sw.outcome == "ok" {
					sw.outcome = "error"
				}
			}
			if sw.span != nil {
				sw.span.SetInt("status", int64(sw.code))
				sw.span.SetStr("outcome", sw.outcome)
				sw.span.SetInt("bytes", int64(sw.n))
				sw.span.EndAt(start.Add(dur))
				hist.ObserveExemplar(dur.Seconds(), sw.span)
			} else {
				hist.Observe(dur.Seconds())
			}
			s.opts.Obs.Counter("eyeball_serve_requests_total",
				"endpoint", endpoint, "code", strconv.Itoa(sw.code)).Inc()
			if s.opts.AccessLog != nil {
				s.logRequest(r, sw, endpoint, sw.outcome, dur)
			}
		}()
		defer s.recoverPanic(sw, endpoint)

		d := decision{idx: -1}
		var chaos *Chaos
		if limited {
			if chaos = s.chaos.Load(); chaos != nil {
				d = chaos.decide()
				if s.applyPre(chaos, d, sw, endpoint) {
					return
				}
			}
		}
		if limited && s.lim != nil {
			ok, retryAfter := s.lim.acquire()
			if !ok {
				sw.outcome = "shed"
				s.opts.Obs.Counter("eyeball_serve_shed_total", "endpoint", endpoint).Inc()
				sw.Header().Set("Retry-After", strconv.Itoa(retryAfter))
				writeJSON(sw, http.StatusServiceUnavailable, map[string]any{
					"error": "overloaded: in-flight request limit reached",
				})
				return
			}
			admitted := time.Now()
			defer func() {
				now := time.Now()
				s.lim.release(now.Sub(admitted), now.UnixNano())
			}()
		}
		if chaos != nil {
			s.applySlow(chaos, d, sw)
		}
		if s.opts.Timeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.opts.Timeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		h(sw, r)
	})
}

// recoverPanic is the panic-containment layer: any handler panic —
// injected by the serve-panic chaos point or genuine — is converted
// into a 500 (when nothing has reached the wire yet), a metric, and a
// flight-recorder event on the request's span; the process survives.
// http.ErrAbortHandler is re-raised: it is the stdlib contract for
// severing the connection without a response, and both the serve-drop
// chaos point and deliberate aborts rely on it.
func (s *Server) recoverPanic(sw *statusWriter, endpoint string) {
	rec := recover()
	if rec == nil {
		return
	}
	if rec == http.ErrAbortHandler {
		panic(rec)
	}
	s.opts.Obs.Counter("eyeball_serve_panics_total", "endpoint", endpoint).Inc()
	sw.span.AddEvent(fmt.Sprintf("panic recovered: %v", rec))
	sw.outcome = "panic"
	if !sw.wrote {
		writeError(sw, http.StatusInternalServerError, "internal error: handler panicked: %v", rec)
	} else if sw.code < http.StatusInternalServerError {
		// The response already started; the status on the wire cannot
		// change, but the records of the request must not claim success.
		sw.code = http.StatusInternalServerError
	}
}

// logRequest emits the request's structured access-log line. One line
// per request, same fields in the same order for every endpoint, trace
// ID included whenever tracing is on — the log is the grep-able index
// into the flight recorder.
func (s *Server) logRequest(r *http.Request, sw *statusWriter, endpoint, outcome string, dur time.Duration) {
	attrs := make([]slog.Attr, 0, 8)
	attrs = append(attrs,
		slog.String("route", endpoint),
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Int("status", sw.code),
		slog.String("outcome", outcome),
		slog.Int("bytes", sw.n),
		slog.Int64("dur_us", dur.Microseconds()),
	)
	if sw.span != nil {
		attrs = append(attrs, slog.String("trace", sw.span.TraceID().String()))
	}
	s.opts.AccessLog.LogAttrs(context.Background(), slog.LevelInfo, "request", attrs...)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(b, '\n'))
}

// errorBody renders the canonical error payload ({"error":"..."} plus
// trailing newline) — the exact bytes writeError puts on the wire. The
// bulk endpoint emits these same bytes as inline per-AS lines, which
// is what makes "bulk output == concatenated single responses" hold
// for error cases too.
func errorBody(format string, args ...any) []byte {
	b, err := json.Marshal(map[string]any{"error": fmt.Sprintf(format, args...)})
	if err != nil {
		// A map[string]any with one string value cannot fail to marshal.
		panic(err)
	}
	return append(b, '\n')
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(errorBody(format, args...))
}

// artifactOr503 resolves the serving artifact once per request; every
// subsequent read in the handler uses this pointer, so a concurrent
// hot swap cannot mix two snapshots within one response.
func (s *Server) artifactOr503(w http.ResponseWriter) *Artifact {
	a := s.art.Load()
	if a == nil {
		writeError(w, http.StatusServiceUnavailable, "no snapshot loaded")
	}
	return a
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	a := s.art.Load()
	if a == nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "loading"})
		return
	}
	ds := a.Snap.Dataset
	resp := map[string]any{
		"status":     "ok",
		"generation": a.Gen,
		"ases":       len(ds.Order),
		"peers":      ds.TotalPeers,
		"degraded":   ds.Degraded,
	}
	if a.Snap.Origins != nil {
		resp["lpm_prefixes"] = a.Snap.Origins.Len()
	}
	writeJSON(w, http.StatusOK, resp)
}

func pathASN(w http.ResponseWriter, r *http.Request) (astopo.ASN, bool) {
	raw := r.PathValue("asn")
	n, err := strconv.Atoi(raw)
	if err != nil || n < 0 {
		writeError(w, http.StatusBadRequest, "bad ASN %q", raw)
		return 0, false
	}
	return astopo.ASN(n), true
}

func (s *Server) handleAS(w http.ResponseWriter, r *http.Request) {
	a := s.artifactOr503(w)
	if a == nil {
		return
	}
	asn, ok := pathASN(w, r)
	if !ok {
		return
	}
	spanOf(w).SetInt("generation", int64(a.Gen))
	rec := a.Snap.Dataset.AS(asn)
	if rec == nil {
		writeError(w, http.StatusNotFound, "AS%d not in dataset", asn)
		return
	}
	byApp := map[string]int{}
	for app, n := range rec.PeersByApp {
		byApp[app.String()] = n
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"asn":     int(rec.ASN),
		"users":   rec.Users,
		"samples": len(rec.Samples),
		"class": map[string]any{
			"level": rec.Class.Level.String(),
			"place": rec.Class.Place,
			"share": rec.Class.Share,
		},
		"region":        string(rec.Region),
		"p90_geoerr_km": rec.P90GeoErrKm,
		"peers_by_app":  byApp,
	})
}

func (s *Server) handleLookup(w http.ResponseWriter, r *http.Request) {
	a := s.artifactOr503(w)
	if a == nil {
		return
	}
	spanOf(w).SetInt("generation", int64(a.Gen))
	raw := r.URL.Query().Get("ip")
	if raw == "" {
		writeError(w, http.StatusBadRequest, "missing ip query parameter")
		return
	}
	addr, err := ipnet.ParseAddr(raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad ip %q", raw)
		return
	}
	if a.Snap.Origins == nil {
		writeError(w, http.StatusServiceUnavailable, "snapshot carries no origin table")
		return
	}
	asn, ok := a.Snap.Origins.OriginOf(addr)
	resp := map[string]any{"ip": addr.String(), "matched": ok}
	if ok {
		resp["asn"] = int(asn)
		resp["in_dataset"] = a.Snap.Dataset.AS(asn) != nil
	}
	writeJSON(w, http.StatusOK, resp)
}

// MaxBandwidthKm is the largest ?bw= the footprint endpoints accept.
// The KDE grid covers at most an AS's sample bounding box, so a kernel
// wider than a continent only burns CPU blurring a flat surface; 5000
// km comfortably covers every bandwidth the paper sweeps (40–100 km)
// and every plausible re-query (cf. the multi-scale experiments) while
// rejecting the +Inf/1e300 class of inputs that previously slipped
// through the v > 0 check. internal/client mirrors this bound.
const MaxBandwidthKm = 5000

// parseBW validates a ?bw= query value: it must parse as a float and
// land in (0, MaxBandwidthKm]. NaN and ±Inf fail both comparisons —
// the old !(v > 0) guard let +Inf through to the KDE. Returns the
// bandwidth to use (the server default when the parameter is absent)
// and ok=false after writing the 400 when the value is invalid.
func (s *Server) parseBW(w http.ResponseWriter, raw string) (float64, bool) {
	if raw == "" {
		return s.opts.BandwidthKm, true
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil || !(v > 0) || !(v <= MaxBandwidthKm) {
		writeError(w, http.StatusBadRequest, "bad bandwidth %q (want 0 < bw <= %d km)", raw, MaxBandwidthKm)
		return 0, false
	}
	return v, true
}

// Cache-result labels: every footprint request that reaches the cache
// layer increments eyeball_serve_footprint_requests_total and exactly
// one result of eyeball_serve_footprint_cache_total — hit (served from
// the LRU), miss (this request led the render), or coalesced (this
// request waited on a concurrent render of the same key). The funnel
// invariant hit + miss + coalesced == requests is pinned by tests and
// the CI jq assert. Warm renders increment none of these: they are not
// requests, and a live request that coalesces onto a warm-led render
// still counts itself exactly once (as coalesced).
const (
	cacheHit       = "hit"
	cacheMiss      = "miss"
	cacheCoalesced = "coalesced"
)

// countFootprint records one live footprint request's cache funnel
// step.
func (s *Server) countFootprint(result string) {
	s.opts.Obs.Counter("eyeball_serve_footprint_requests_total").Inc()
	s.opts.Obs.Counter("eyeball_serve_footprint_cache_total", "result", result).Inc()
	if result == cacheCoalesced {
		s.opts.Obs.Counter("eyeball_serve_footprint_coalesced_total").Inc()
	}
}

// footprint produces the response body for one (artifact, AS,
// bandwidth) triple through the full serving discipline: LRU lookup,
// then singleflight — the first goroutine to miss a key renders it
// (and alone pays the KDE), concurrent misses for the same key wait on
// that render's result under their own deadlines. Returns the body,
// the cache result label, and the render's (or the wait's) error.
// Bodies are immutable; callers write them to the wire uncopied.
func (s *Server) footprint(ctx context.Context, a *Artifact, rec *pipeline.ASRecord, bw float64) ([]byte, string, error) {
	key := cacheKey{gen: a.Gen, asn: rec.ASN, bw: math.Float64bits(bw)}
	if body, ok := s.cache.get(key); ok {
		return body, cacheHit, nil
	}
	c, leader := s.flight.join(key)
	if !leader {
		body, err := c.wait(ctx)
		return body, cacheCoalesced, err
	}
	body, err := s.render(ctx, s.opts.Gaz, rec, bw, s.opts.Workers, s.opts.Obs)
	if err == nil {
		s.cache.add(key, body)
	}
	s.flight.complete(key, c, body, err)
	return body, cacheMiss, err
}

// footprintBody resolves one AS to the exact bytes the single-footprint
// endpoint would put on the wire — success body or error payload — plus
// the HTTP status that body carries there and the cache-result label
// ("" when the AS is not in the dataset and the cache layer was never
// reached). The bulk endpoint streams these same bytes as lines, which
// is what makes bulk output the concatenation of single responses,
// byte for byte.
func (s *Server) footprintBody(ctx context.Context, a *Artifact, asn astopo.ASN, bw float64) ([]byte, int, string) {
	rec := a.Snap.Dataset.AS(asn)
	if rec == nil {
		return errorBody("AS%d not in dataset", asn), http.StatusNotFound, ""
	}
	body, result, err := s.footprint(ctx, a, rec, bw)
	s.countFootprint(result)
	if err != nil {
		if ctx.Err() != nil {
			return errorBody("footprint render timed out: %v", err), http.StatusGatewayTimeout, result
		}
		return errorBody("footprint render failed: %v", err), http.StatusInternalServerError, result
	}
	return body, http.StatusOK, result
}

func (s *Server) handleFootprint(w http.ResponseWriter, r *http.Request) {
	a := s.artifactOr503(w)
	if a == nil {
		return
	}
	asn, ok := pathASN(w, r)
	if !ok {
		return
	}
	bw, ok := s.parseBW(w, r.URL.Query().Get("bw"))
	if !ok {
		return
	}
	sp := spanOf(w)
	sp.SetInt("asn", int64(asn))
	sp.SetInt("generation", int64(a.Gen))
	body, code, result := s.footprintBody(trace.NewContext(r.Context(), sp), a, asn, bw)
	if result != "" {
		sp.SetStr("cache", result)
	}
	w.Header().Set("Content-Type", "application/json")
	if code != http.StatusOK {
		w.WriteHeader(code)
	}
	w.Write(body)
}

// maxBulkASNs bounds one bulk request's AS list; past it the request
// is a 400, not a slow-rolling denial of service.
const maxBulkASNs = 1024

// handleFootprints is the bulk endpoint: GET /v1/footprints?asns=a,b,c
// streams one line per requested AS, in request order, each line
// byte-identical to the single endpoint's body for that AS — including
// per-AS errors (unknown AS, render failure), which arrive inline as
// the single endpoint's error payload instead of aborting the stream.
// The response is 200 once streaming starts; only whole-request
// problems (bad asns list, bad bw, no artifact) fail up front.
func (s *Server) handleFootprints(w http.ResponseWriter, r *http.Request) {
	a := s.artifactOr503(w)
	if a == nil {
		return
	}
	raw := r.URL.Query().Get("asns")
	if raw == "" {
		writeError(w, http.StatusBadRequest, "missing asns query parameter (comma-separated AS numbers)")
		return
	}
	parts := strings.Split(raw, ",")
	if len(parts) > maxBulkASNs {
		writeError(w, http.StatusBadRequest, "too many ASNs: %d (max %d)", len(parts), maxBulkASNs)
		return
	}
	asns := make([]astopo.ASN, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad ASN %q in asns", p)
			return
		}
		asns = append(asns, astopo.ASN(n))
	}
	bw, ok := s.parseBW(w, r.URL.Query().Get("bw"))
	if !ok {
		return
	}

	sp := spanOf(w)
	sp.SetInt("asns", int64(len(asns)))
	sp.SetInt("generation", int64(a.Gen))
	ctx := trace.NewContext(r.Context(), sp)
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	for _, asn := range asns {
		body, _, _ := s.footprintBody(ctx, a, asn, bw)
		if _, err := w.Write(body); err != nil {
			return // client went away; nothing useful left to do
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	a, err := s.Reload()
	if err != nil {
		cur := s.art.Load()
		resp := map[string]any{"error": err.Error()}
		if cur != nil {
			resp["generation"] = cur.Gen // still serving this one
		}
		if errors.Is(err, ErrReloadRolledBack) {
			resp["rolled_back"] = true
		}
		writeJSON(w, http.StatusInternalServerError, resp)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "reloaded", "generation": a.Gen})
}
