package serve

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

// Benchmarks back scripts/bench_serve.sh: the cached-footprint and
// lookup paths are the steady-state hot paths of eyeballserve, and the
// bench gate holds their per-request allocations flat.

func benchServer(b *testing.B) http.Handler {
	s, _, _ := newTestServer(b, Options{})
	return s.Handler()
}

func BenchmarkFootprintCached(b *testing.B) {
	h := benchServer(b)
	// Prime the cache so the loop measures the hit path.
	req := httptest.NewRequest(http.MethodGet, "/v1/footprint/64500", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("prime: %d", rec.Code)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodGet, "/v1/footprint/64500", nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("HTTP %d", rec.Code)
		}
	}
}

func BenchmarkLookup(b *testing.B) {
	h := benchServer(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodGet, "/v1/lookup?ip=10.1.2.3", nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("HTTP %d", rec.Code)
		}
	}
}

func BenchmarkASRecord(b *testing.B) {
	h := benchServer(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodGet, "/v1/as/64500", nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("HTTP %d", rec.Code)
		}
	}
}
