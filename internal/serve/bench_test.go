package serve

import (
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
)

// Benchmarks back scripts/bench_serve.sh: the cached-footprint and
// lookup paths are the steady-state hot paths of eyeballserve, and the
// bench gate holds their per-request allocations flat.

func benchServer(b *testing.B) http.Handler {
	s, _, _ := newTestServer(b, Options{})
	return s.Handler()
}

func BenchmarkFootprintCached(b *testing.B) {
	h := benchServer(b)
	// Prime the cache so the loop measures the hit path.
	req := httptest.NewRequest(http.MethodGet, "/v1/footprint/64500", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("prime: %d", rec.Code)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodGet, "/v1/footprint/64500", nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("HTTP %d", rec.Code)
		}
	}
}

// BenchmarkFootprintCold measures the uncached render path (cache
// disabled, every request pays the full KDE). bench_warm.sh compares
// its p50 against BenchmarkFootprintCached to gate the warmed-cache
// win the warmer exists to deliver.
func BenchmarkFootprintCold(b *testing.B) {
	s, _, _ := newTestServer(b, Options{CacheSize: -1})
	h := s.Handler()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodGet, "/v1/footprint/64500", nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("HTTP %d", rec.Code)
		}
	}
}

// BenchmarkFlightWaiter measures the coalesced-path overhead a waiter
// pays on top of the render it skips: one join (map lookup under the
// group mutex) plus one wait on an already-closed done channel. The
// bench gate holds this at ≤1 alloc/op — coalescing must stay cheaper
// than the render it saves by orders of magnitude.
func BenchmarkFlightWaiter(b *testing.B) {
	g := newFlightGroup()
	key := cacheKey{gen: 1, asn: 64500, bw: math.Float64bits(40)}
	c := &flightCall{done: make(chan struct{}), body: []byte(`{"asn":64500}` + "\n")}
	close(c.done)
	g.mu.Lock()
	g.calls[key] = c
	g.mu.Unlock()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		call, leader := g.join(key)
		if leader {
			b.Fatal("join led a fresh call; the completed call left the map")
		}
		body, err := call.wait(ctx)
		if err != nil || len(body) == 0 {
			b.Fatalf("wait: %q, %v", body, err)
		}
	}
}

func BenchmarkLookup(b *testing.B) {
	h := benchServer(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodGet, "/v1/lookup?ip=10.1.2.3", nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("HTTP %d", rec.Code)
		}
	}
}

func BenchmarkASRecord(b *testing.B) {
	h := benchServer(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodGet, "/v1/as/64500", nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("HTTP %d", rec.Code)
		}
	}
}
