package serve

import (
	"math"
	"net/http"
	"testing"
	"time"
)

func testController() Controller {
	return Controller{
		Target:   100 * time.Millisecond,
		Alpha:    0.5,
		MinLimit: 1,
		MaxLimit: 64,
		Decrease: 0.5,
	}
}

func TestControllerAdditiveIncrease(t *testing.T) {
	c := testController()
	s := c.Init()
	if s.Limit != 64 {
		t.Fatalf("initial limit %v, want MaxLimit", s.Limit)
	}
	// Fast requests keep the limit pinned at the ceiling.
	now := int64(0)
	for i := 0; i < 100; i++ {
		now += int64(time.Millisecond)
		s = c.OnComplete(s, time.Millisecond, now)
	}
	if s.Limit != c.MaxLimit {
		t.Errorf("healthy limit %v, want clamped at %v", s.Limit, c.MaxLimit)
	}
	if s.LatEWMA > 0.002 {
		t.Errorf("latency EWMA %v, want ~1ms", s.LatEWMA)
	}
}

func TestControllerMultiplicativeDecreaseAndRecovery(t *testing.T) {
	c := testController()
	s := c.Init()
	now := int64(0)

	// Sustained latency over target: each completion halves the limit
	// until the floor.
	for i := 0; i < 20; i++ {
		now += int64(time.Second)
		s = c.OnComplete(s, time.Second, now)
	}
	if s.Limit != c.MinLimit {
		t.Fatalf("overloaded limit %v, want floor %v", s.Limit, c.MinLimit)
	}

	// Recovery: healthy latencies grow the limit additively — strictly
	// monotonically, and with the 1/Limit step it takes many
	// completions, not one, to re-open.
	prev := s.Limit
	steps := 0
	for s.Limit < c.MaxLimit && steps < 100000 {
		now += int64(10 * time.Millisecond)
		s = c.OnComplete(s, time.Millisecond, now)
		if s.Limit < prev {
			t.Fatalf("limit decreased during recovery: %v -> %v", prev, s.Limit)
		}
		prev = s.Limit
		steps++
	}
	if s.Limit != c.MaxLimit {
		t.Fatalf("limit never recovered to ceiling (stuck at %v)", s.Limit)
	}
	if steps < 50 {
		t.Errorf("recovery took %d completions; additive increase should be gradual", steps)
	}
}

func TestControllerDecreaseIsMultiplicative(t *testing.T) {
	c := testController()
	s := c.Init()
	s = c.OnComplete(s, time.Second, int64(time.Second)) // EWMA jumps over target
	if got, want := s.Limit, 64*c.Decrease; math.Abs(got-want) > 1e-9 {
		t.Errorf("after one overloaded completion limit = %v, want %v", got, want)
	}
}

// TestRetryAfterDerivedFromDrainRate pins the satellite-task contract:
// the shed Retry-After is ceil(inflight / drain rate), clamped to
// [1, 30], with 1 as the cold-start answer — never the old hardcoded 1
// under measurable load.
func TestRetryAfterDerivedFromDrainRate(t *testing.T) {
	c := testController()
	cases := []struct {
		name     string
		rate     float64 // completions per second
		inflight int
		want     int
	}{
		{"cold server, no estimate", 0, 10, 1},
		{"nothing ahead", 12, 0, 1},
		{"drains fast, floor clamp", 1000, 5, 1},
		{"10/s, 20 ahead", 10, 20, 2},
		{"exact division still waits", 4, 8, 2},
		{"rounds up", 3, 10, 4},
		{"slow drain, ceiling clamp", 0.1, 100, 30},
		{"stalled drain, ceiling clamp", 0.001, 1, 30},
	}
	for _, tc := range cases {
		s := State{Limit: 8, RateEWMA: tc.rate}
		if got := c.RetryAfterSeconds(s, tc.inflight); got != tc.want {
			t.Errorf("%s: RetryAfterSeconds(rate=%v, inflight=%d) = %d, want %d",
				tc.name, tc.rate, tc.inflight, got, tc.want)
		}
	}
}

func TestControllerDrainRateEWMA(t *testing.T) {
	c := testController()
	s := c.Init()
	// Completions 100ms apart → drain rate converges toward 10/s.
	now := int64(0)
	for i := 0; i < 50; i++ {
		now += int64(100 * time.Millisecond)
		s = c.OnComplete(s, time.Millisecond, now)
	}
	if s.RateEWMA < 9 || s.RateEWMA > 11 {
		t.Errorf("drain-rate EWMA %v, want ~10/s", s.RateEWMA)
	}
}

func TestLimiterAcquireReleaseAccounting(t *testing.T) {
	l := newLimiter(Controller{Target: time.Second, Alpha: 0.5, MinLimit: 1, MaxLimit: 2, Decrease: 0.5})
	ok1, _ := l.acquire()
	ok2, _ := l.acquire()
	if !ok1 || !ok2 {
		t.Fatal("limit-2 limiter refused within-limit admissions")
	}
	if ok, ra := l.acquire(); ok {
		t.Fatal("admitted past the limit")
	} else if ra < 1 || ra > 30 {
		t.Fatalf("Retry-After %d outside [1,30]", ra)
	}
	l.release(time.Millisecond, time.Now().UnixNano())
	if ok, _ := l.acquire(); !ok {
		t.Fatal("slot not returned after release")
	}
	if _, inflight := l.snapshot(); inflight != 2 {
		t.Errorf("inflight = %d, want 2", inflight)
	}

	// nil limiter admits everything.
	var nilLim *limiter
	if ok, _ := nilLim.acquire(); !ok {
		t.Error("nil limiter refused")
	}
	nilLim.release(time.Second, 0)
}

// TestLimiterShrinksUnderInjectedLatency drives the real middleware
// with a target so tight every request overshoots it: the latency
// EWMA sits over target, so the admission limit must fall below its
// ceiling — the AIMD loop closing through the real release path.
func TestLimiterShrinksUnderInjectedLatency(t *testing.T) {
	s, _, _ := newTestServer(t, Options{
		MaxInflight:   8,
		TargetLatency: time.Microsecond,
	})
	h := s.Handler()
	for i := 0; i < 10; i++ {
		if rec := get(t, h, "/v1/as/64500"); rec.Code != http.StatusOK {
			t.Fatalf("request %d: %d", i, rec.Code)
		}
	}
	limit, _ := s.lim.snapshot()
	if limit >= 8 {
		t.Errorf("limit %v did not shrink under over-target latency", limit)
	}
	if limit < 1 {
		t.Errorf("limit %v fell under the floor", limit)
	}
}
