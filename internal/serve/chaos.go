package serve

import (
	"net/http"
	"sync/atomic"
	"time"

	"eyeballas/internal/faults"
)

// chaosHeader is the response header naming the fault point injected
// into a request. The chaos e2e harness uses it to build the
// client-side injection ledger; production traffic never sees it
// because chaos is opt-in (-chaos on eyeballserve).
const chaosHeader = "X-Chaos"

// chaosPanic is the value the serve-panic fault point panics with; the
// recovery middleware recognizes any panic (this one is merely the
// injected flavor) and converts it into a 500.
type chaosPanic struct{ seq uint64 }

func (p chaosPanic) Error() string { return "chaos: injected handler panic" }

// Chaos is the serve-path fault injector: one per server, armed from a
// faults.Plan. Every data request entering the middleware draws the
// next value of a per-server sequence counter, and each fault point
// decides purely on (plan seed, point, sequence) — the splitmix64
// site-key discipline internal/faults defines — so a plan's injection
// ledger is a pure function of the seed and the number of requests
// served, independent of worker count, connection interleaving, or
// wall clock.
//
// Points fire with short-circuit precedence drop > 500 > panic > slow,
// so at most one fault applies per request and the ledger, the X-Chaos
// response header, and the client's observation agree one-to-one.
//
// A nil *Chaos (chaos off, the production default) costs one pointer
// test per request and zero allocations.
type Chaos struct {
	seq atomic.Uint64

	slow   *faults.Injector
	panics *faults.Injector
	err500 *faults.Injector
	drop   *faults.Injector
	reload *faults.Injector

	// slowMax bounds the injected serve-slow delay; the actual delay is
	// site-derived in [slowMax/8, slowMax].
	slowMax time.Duration

	ledger [5]atomic.Uint64 // indexed by the idx* constants
}

// ChaosPoints is the serve-side fault points in ledger order (the
// order Chaos.Ledger and the chaos smoke's metrics report them).
var ChaosPoints = [5]faults.Point{
	faults.ServeDrop, faults.Serve500, faults.ServePanic, faults.ServeSlow, faults.ReloadFail,
}

const (
	idxDrop = iota
	idx500
	idxPanic
	idxSlow
	idxReload
)

// NewChaos arms serve-path fault injection from plan. It returns nil —
// chaos fully off — when the plan enables none of the serve points, so
// the caller can store the result unconditionally. slowMax bounds the
// serve-slow delay (0 means the 25ms default).
func NewChaos(plan *faults.Plan, slowMax time.Duration) *Chaos {
	c := &Chaos{
		slow:    plan.Injector(faults.ServeSlow),
		panics:  plan.Injector(faults.ServePanic),
		err500:  plan.Injector(faults.Serve500),
		drop:    plan.Injector(faults.ServeDrop),
		reload:  plan.Injector(faults.ReloadFail),
		slowMax: slowMax,
	}
	if c.slow == nil && c.panics == nil && c.err500 == nil && c.drop == nil && c.reload == nil {
		return nil
	}
	if c.slowMax <= 0 {
		c.slowMax = 25 * time.Millisecond
	}
	return c
}

// Ledger reports how many times each serve fault point has fired. Safe
// on nil (all zeros).
func (c *Chaos) Ledger() map[faults.Point]uint64 {
	m := make(map[faults.Point]uint64, len(ChaosPoints))
	for i, pt := range ChaosPoints {
		if c == nil {
			m[pt] = 0
			continue
		}
		m[pt] = c.ledger[i].Load()
	}
	return m
}

// Requests reports how many requests have drawn an injection site.
func (c *Chaos) Requests() uint64 {
	if c == nil {
		return 0
	}
	return c.seq.Load()
}

// slowFor derives the injected delay for a slow site: deterministic in
// [slowMax/8, slowMax], so replays sleep identically.
func (c *Chaos) slowFor(seq uint64) time.Duration {
	span := uint64(c.slowMax - c.slowMax/8)
	if span == 0 {
		return c.slowMax
	}
	return c.slowMax/8 + time.Duration(c.slow.Rand(seq)%span)
}

// decision is what the middleware carries from the decide step to the
// apply steps: which point (if any) fires at this request's site.
type decision struct {
	seq  uint64
	idx  int // ledger index; -1 = no fault
	slow time.Duration
}

// decide draws the request's site and evaluates the fault points in
// precedence order. It does not apply anything and does not touch the
// ledger — application (and ledger accounting) happens where the fault
// actually fires, so a request shed before its serve-slow sleep never
// counts as slowed.
func (c *Chaos) decide() decision {
	seq := c.seq.Add(1)
	d := decision{seq: seq, idx: -1}
	switch {
	case c.drop.Hit(seq):
		d.idx = idxDrop
	case c.err500.Hit(seq):
		d.idx = idx500
	case c.panics.Hit(seq):
		d.idx = idxPanic
	case c.slow.Hit(seq):
		d.idx = idxSlow
		d.slow = c.slowFor(seq)
	}
	return d
}

// reloadFails reports whether the reload-fail point fires for reload
// attempt seq (the server's reload counter), recording it in the
// ledger when it does. Safe on nil.
func (c *Chaos) reloadFails(seq uint64) bool {
	if c == nil || !c.reload.Hit(seq) {
		return false
	}
	c.ledger[idxReload].Add(1)
	return true
}

// applyPre fires the short-circuiting faults (drop, 500, panic) before
// the request reaches the limiter: none of them consume serving
// capacity, exactly like faults that strike before the handler would.
// It returns true when the request was fully consumed. Injected panics
// unwind into the recovery middleware, whose defer is already armed.
func (s *Server) applyPre(c *Chaos, d decision, sw *statusWriter, endpoint string) bool {
	switch d.idx {
	case idxDrop:
		c.ledger[idxDrop].Add(1)
		s.chaosMetric(faults.ServeDrop)
		sw.outcome = "chaos-drop"
		// http.ErrAbortHandler is the stdlib contract for "sever this
		// connection, write nothing"; the recovery middleware re-panics
		// it instead of converting it to a 500.
		panic(http.ErrAbortHandler)
	case idx500:
		c.ledger[idx500].Add(1)
		s.chaosMetric(faults.Serve500)
		sw.outcome = "chaos-500"
		sw.Header().Set(chaosHeader, string(faults.Serve500))
		writeError(sw, http.StatusInternalServerError, "chaos: injected failure (site %d)", d.seq)
		return true
	case idxPanic:
		c.ledger[idxPanic].Add(1)
		s.chaosMetric(faults.ServePanic)
		sw.Header().Set(chaosHeader, string(faults.ServePanic))
		panic(chaosPanic{seq: d.seq})
	}
	return false
}

// applySlow fires the serve-slow delay — after limiter admission, so an
// injected-slow request occupies capacity for its whole sleep exactly
// like a genuinely slow render would, which is what lets chaos drive
// the adaptive limiter in tests.
func (s *Server) applySlow(c *Chaos, d decision, sw *statusWriter) {
	if d.idx != idxSlow {
		return
	}
	c.ledger[idxSlow].Add(1)
	s.chaosMetric(faults.ServeSlow)
	sw.Header().Set(chaosHeader, string(faults.ServeSlow))
	time.Sleep(d.slow)
}

func (s *Server) chaosMetric(pt faults.Point) {
	s.opts.Obs.Counter("eyeball_serve_chaos_injections_total", "point", string(pt)).Inc()
}
