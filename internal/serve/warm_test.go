package serve

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"eyeballas/internal/astopo"
	"eyeballas/internal/gazetteer"
	"eyeballas/internal/leakcheck"
	"eyeballas/internal/obs"
	"eyeballas/internal/pipeline"
)

// awaitWarm blocks until the pass finishes (done closed) or the test
// deadline trips.
func awaitWarm(t *testing.T, w *Warmer) {
	t.Helper()
	if w == nil {
		t.Fatal("no warm pass running")
	}
	select {
	case <-w.done:
	case <-time.After(10 * time.Second):
		t.Fatal("warm pass never finished")
	}
}

func TestWarmOrder(t *testing.T) {
	ds := &pipeline.Dataset{
		ASes: map[astopo.ASN]*pipeline.ASRecord{
			1: {ASN: 1, Users: 10},
			2: {ASN: 2, Users: 30},
			3: {ASN: 3, Users: 30},
			4: {ASN: 4, Users: 500},
		},
		Order: []astopo.ASN{1, 2, 3, 4},
	}
	got := warmOrder(ds)
	want := []astopo.ASN{4, 2, 3, 1} // users desc, ASN asc on the tie
	if len(got) != len(want) {
		t.Fatalf("warmOrder returned %d records, want %d", len(got), len(want))
	}
	for i, rec := range got {
		if rec.ASN != want[i] {
			t.Fatalf("warmOrder[%d] = AS%d, want AS%d (full order %v)", i, rec.ASN, want[i], asnsOf(got))
		}
	}
}

func asnsOf(recs []*pipeline.ASRecord) []astopo.ASN {
	out := make([]astopo.ASN, len(recs))
	for i, r := range recs {
		out[i] = r.ASN
	}
	return out
}

// TestWarmRendersInPriorityOrderThenHits: a warm pass renders every
// dataset AS, most users first, increments no request-funnel counters,
// and leaves the cache hot — the first live request is a hit.
func TestWarmRendersInPriorityOrderThenHits(t *testing.T) {
	defer leakcheck.Check(t)()
	reg := obs.New()
	path, _ := testArtifact(t, t.TempDir())
	s := New(Options{Warm: true, WarmWorkers: 1, Obs: reg, Gaz: testGaz})
	defer s.Close()

	var mu sync.Mutex
	var order []astopo.ASN
	s.render = func(_ context.Context, _ *gazetteer.Gazetteer, rec *pipeline.ASRecord, _ float64, _ int, _ *obs.Registry) ([]byte, error) {
		mu.Lock()
		order = append(order, rec.ASN)
		mu.Unlock()
		return []byte(fmt.Sprintf("{\"asn\":%d}\n", rec.ASN)), nil
	}
	if _, err := s.LoadFile(path); err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	awaitWarm(t, s.warmer())

	mu.Lock()
	got := append([]astopo.ASN(nil), order...)
	mu.Unlock()
	// AS64500 has 300 users, AS64501 has 150: strict priority order.
	if len(got) != 2 || got[0] != 64500 || got[1] != 64501 {
		t.Fatalf("warm render order = %v, want [64500 64501]", got)
	}
	if v := reg.Gauge("eyeball_serve_warm_total").Value(); v != 2 {
		t.Errorf("warm_total = %v, want 2", v)
	}
	if v := reg.Gauge("eyeball_serve_warm_done").Value(); v != 2 {
		t.Errorf("warm_done = %v, want 2", v)
	}
	// Warm renders are not requests: the funnel must be untouched.
	if n := reg.Counter("eyeball_serve_footprint_requests_total").Value(); n != 0 {
		t.Errorf("warm pass counted %d footprint requests, want 0", n)
	}

	// The first live request for the top AS is a cache hit off the warm
	// render's bytes.
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/footprint/64500", nil))
	if rec.Code != http.StatusOK || !bytes.Equal(rec.Body.Bytes(), []byte("{\"asn\":64500}\n")) {
		t.Fatalf("warmed request: %d %q", rec.Code, rec.Body.String())
	}
	if n := reg.Counter("eyeball_serve_footprint_cache_total", "result", cacheHit).Value(); n != 1 {
		t.Errorf("hit = %d, want 1 (served from the warmed cache)", n)
	}
	if n := reg.Counter("eyeball_serve_footprint_requests_total").Value(); n != 1 {
		t.Errorf("requests = %d, want 1", n)
	}
	assertFootprintFunnel(t, reg)
}

// TestWarmCancelOnSwapAndClose: installing a new artifact cancels the
// running pass before starting its own (at most one pass ever runs),
// Close cancels and waits out the current pass, and a closed server
// starts no further passes.
func TestWarmCancelOnSwapAndClose(t *testing.T) {
	defer leakcheck.Check(t)()
	reg := obs.New()
	path, _ := testArtifact(t, t.TempDir())
	s := New(Options{Warm: true, Obs: reg, Gaz: testGaz})

	var renders atomic.Int32
	s.render = func(ctx context.Context, _ *gazetteer.Gazetteer, _ *pipeline.ASRecord, _ float64, _ int, _ *obs.Registry) ([]byte, error) {
		renders.Add(1)
		<-ctx.Done() // park until the pass is cancelled
		return nil, ctx.Err()
	}
	if _, err := s.LoadFile(path); err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	w1 := s.warmer()
	if w1 == nil {
		t.Fatal("no warm pass after load")
	}
	waitFor(t, 2*time.Second, "first warm render to start", func() bool {
		return renders.Load() >= 1
	})

	// Swap: Reload must cancel pass 1 and wait it out before pass 2
	// exists — by the time Reload returns, w1.done is closed.
	if _, err := s.Reload(); err != nil {
		t.Fatalf("Reload: %v", err)
	}
	select {
	case <-w1.done:
	default:
		t.Fatal("previous warm pass still running after the swap")
	}
	w2 := s.warmer()
	if w2 == nil || w2 == w1 {
		t.Fatalf("swap did not start a fresh warm pass (w2=%p w1=%p)", w2, w1)
	}
	waitFor(t, 2*time.Second, "second pass's render to start", func() bool {
		return renders.Load() >= 2
	})

	// Close cancels the pass and returns only after its workers exited.
	s.Close()
	select {
	case <-w2.done:
	default:
		t.Fatal("Close returned with the warm pass still running")
	}
	// Every render was cancelled: the pass never completed an AS.
	if v := reg.Gauge("eyeball_serve_warm_done").Value(); v != 0 {
		t.Errorf("warm_done = %v after cancelled passes, want 0", v)
	}
	if v := reg.Gauge("eyeball_serve_warm_total").Value(); v != 2 {
		t.Errorf("warm_total = %v, want 2", v)
	}
	if n := reg.Counter("eyeball_serve_footprint_requests_total").Value(); n != 0 {
		t.Errorf("cancelled warm passes counted %d requests, want 0", n)
	}

	// After Close, installs no longer warm.
	if _, err := s.Reload(); err != nil {
		t.Fatalf("Reload after Close: %v", err)
	}
	if w := s.warmer(); w != nil {
		t.Error("a closed server started a warm pass")
	}
	s.Close() // idempotent
}

// TestWarmBudgetBoundsPass: a pass that exhausts WarmBudget stops where
// it is — done stays short of total, and nothing hangs.
func TestWarmBudgetBoundsPass(t *testing.T) {
	defer leakcheck.Check(t)()
	reg := obs.New()
	path, _ := testArtifact(t, t.TempDir())
	s := New(Options{Warm: true, WarmBudget: time.Nanosecond, Obs: reg, Gaz: testGaz})
	defer s.Close()

	s.render = func(ctx context.Context, _ *gazetteer.Gazetteer, _ *pipeline.ASRecord, _ float64, _ int, _ *obs.Registry) ([]byte, error) {
		<-ctx.Done() // the budget is the only cancel source in this test
		return nil, ctx.Err()
	}
	if _, err := s.LoadFile(path); err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	awaitWarm(t, s.warmer())

	if v := reg.Gauge("eyeball_serve_warm_total").Value(); v != 2 {
		t.Errorf("warm_total = %v, want 2", v)
	}
	if v := reg.Gauge("eyeball_serve_warm_done").Value(); v != 0 {
		t.Errorf("warm_done = %v, want 0 (budget expired before any render)", v)
	}
}

// TestWarmDisabledByDefault: without Options.Warm, installs start no
// pass at all.
func TestWarmDisabledByDefault(t *testing.T) {
	s, _, _ := newTestServer(t, Options{})
	defer s.Close()
	if w := s.warmer(); w != nil {
		t.Fatal("warm pass started without Options.Warm")
	}
}
