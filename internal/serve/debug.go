package serve

import (
	"net/http"

	"eyeballas/internal/obs"
	"eyeballas/internal/trace"
)

// The /debug endpoints expose the flight recorder over HTTP:
//
//	GET /debug/requests       last-N completed request traces (summaries)
//	GET /debug/requests/slow  threshold-triggered slow captures
//	GET /debug/trace/{id}     one full trace (the canonical Detail JSON)
//
// They are mounted only when Options.Tracer carries a Recorder, sit
// outside the shedding/timeout discipline (an overloaded server must
// still be inspectable), and are not themselves traced — the recorder
// never fills with reads of itself. All payloads go through the shared
// obs tree encoder, so the JSON here is byte-for-byte the encoding the
// offline tools emit for the same trace.

// debugListing is the /debug/requests[/slow] payload.
type debugListing struct {
	Traces []trace.Summary `json:"traces"`
}

func (s *Server) handleDebugList(w http.ResponseWriter, roots []*trace.Span) {
	out := debugListing{Traces: make([]trace.Summary, 0, len(roots))}
	for _, root := range roots {
		out.Traces = append(out.Traces, trace.SummaryOf(root))
	}
	w.Header().Set("Content-Type", "application/json")
	obs.EncodeJSON(w, out)
}

func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request, rec *trace.Recorder) {
	raw := r.PathValue("id")
	id, ok := trace.ParseTraceID(raw)
	if !ok {
		writeError(w, http.StatusBadRequest, "bad trace id %q (want 32 lowercase hex digits)", raw)
		return
	}
	root := rec.Find(id)
	if root == nil {
		writeError(w, http.StatusNotFound, "trace %s not retained (ring capacity exceeded or never seen)", raw)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	trace.WriteJSON(w, root)
}
