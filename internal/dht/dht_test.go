package dht

import (
	"testing"

	"eyeballas/internal/ipnet"
	"eyeballas/internal/rng"
)

func members(n int) []ipnet.Addr {
	out := make([]ipnet.Addr, n)
	for i := range out {
		out[i] = ipnet.MakeAddr(10, byte(i>>16), byte(i>>8), byte(i))
	}
	return out
}

func buildNet(t testing.TB, n, k int, seed uint64) *Network {
	t.Helper()
	net, err := Build(members(n), k, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(members(1), 8, rng.New(1)); err == nil {
		t.Error("single member accepted")
	}
	if _, err := Build(members(10), 0, rng.New(1)); err == nil {
		t.Error("zero bucket size accepted")
	}
}

func TestBuildBasics(t *testing.T) {
	net := buildNet(t, 500, 8, 2)
	if net.Size() != 500 {
		t.Fatalf("size = %d", net.Size())
	}
	ids := net.IDs()
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatal("IDs not sorted/unique")
		}
	}
}

func TestBucketInvariants(t *testing.T) {
	net := buildNet(t, 800, 8, 3)
	checked := 0
	for _, id := range net.IDs()[:50] {
		node := net.Node(id)
		for b, bucket := range node.buckets {
			if len(bucket) > 8 {
				t.Fatalf("bucket %d of %x overfull: %d", b, id, len(bucket))
			}
			for _, other := range bucket {
				if other == id {
					t.Fatalf("node %x lists itself", id)
				}
				if got := bucketIndex(id, other); got != b {
					t.Fatalf("node %x bucket %d holds %x with index %d", id, b, other, got)
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no bucket entries checked")
	}
}

func TestBucketRange(t *testing.T) {
	id := NodeID(0x8000_0000_0000_0000)
	lo, hi := bucketRange(id, 0)
	// Bucket 0 of an ID with MSB set is the entire lower half.
	if lo != 0 || hi != 0x7FFF_FFFF_FFFF_FFFF {
		t.Errorf("bucket 0 range = [%x, %x]", lo, hi)
	}
	// Every ID in a bucket's range has that bucket index.
	for b := 0; b < 8; b++ {
		lo, hi := bucketRange(id, b)
		if bucketIndex(id, lo) != b || bucketIndex(id, hi) != b {
			t.Errorf("bucket %d endpoints misclassified", b)
		}
	}
}

func TestFindNodeReturnsClosest(t *testing.T) {
	net := buildNet(t, 600, 8, 4)
	q := net.IDs()[10]
	target := NodeID(0x1234_5678_9ABC_DEF0)
	got := net.FindNode(q, target)
	if len(got) == 0 || len(got) > 8 {
		t.Fatalf("FindNode returned %d nodes", len(got))
	}
	// Sorted by distance to target.
	for i := 1; i < len(got); i++ {
		if Distance(got[i-1], target) > Distance(got[i], target) {
			t.Fatal("FindNode results not distance-sorted")
		}
	}
	// And they are the closest among everything the node knows.
	node := net.Node(q)
	worst := Distance(got[len(got)-1], target)
	for _, bucket := range node.buckets {
		for _, known := range bucket {
			if Distance(known, target) < worst {
				found := false
				for _, g := range got {
					if g == known {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("closer known node %x omitted", known)
				}
			}
		}
	}
	if net.FindNode(NodeID(999999), target) != nil {
		t.Error("unknown node answered")
	}
}

func TestCrawlFullBudgetHighCoverage(t *testing.T) {
	net := buildNet(t, 2000, 8, 5)
	res, err := Crawl(net, DefaultCrawlConfig(), rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if cov := res.Coverage(net); cov < 0.9 {
		t.Errorf("unbudgeted crawl coverage %.3f < 0.9", cov)
	}
	// Every discovered address is a real member address.
	for id, addr := range res.Discovered {
		if net.Node(id) == nil || net.Node(id).Addr != addr {
			t.Fatalf("discovered phantom node %x", id)
		}
	}
	if res.RPCs == 0 || res.Queried == 0 {
		t.Error("crawl did no work")
	}
}

func TestCrawlBudgetLimitsCoverage(t *testing.T) {
	net := buildNet(t, 2000, 8, 7)
	full, err := Crawl(net, DefaultCrawlConfig(), rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	tight := DefaultCrawlConfig()
	tight.RPCBudget = 50
	partial, err := Crawl(net, tight, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if partial.RPCs > 50 {
		t.Errorf("budget exceeded: %d RPCs", partial.RPCs)
	}
	if partial.Coverage(net) >= full.Coverage(net) {
		t.Errorf("budgeted crawl (%.3f) should cover less than full (%.3f)",
			partial.Coverage(net), full.Coverage(net))
	}
}

func TestCrawlDeterministic(t *testing.T) {
	net := buildNet(t, 1000, 8, 9)
	r1, err := Crawl(net, DefaultCrawlConfig(), rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Crawl(net, DefaultCrawlConfig(), rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Discovered) != len(r2.Discovered) || r1.RPCs != r2.RPCs {
		t.Error("crawl not deterministic")
	}
}

func TestCrawlConfigValidation(t *testing.T) {
	net := buildNet(t, 100, 8, 11)
	for _, cfg := range []CrawlConfig{
		{Zones: 0, Alpha: 1, Bootstrap: 1, SweepProbes: 1},
		{Zones: 1, Alpha: 0, Bootstrap: 1, SweepProbes: 1},
		{Zones: 1, Alpha: 1, Bootstrap: 0, SweepProbes: 1},
		{Zones: 1, Alpha: 1, Bootstrap: 1, SweepProbes: 0},
	} {
		if _, err := Crawl(net, cfg, rng.New(1)); err == nil {
			t.Errorf("bad config %+v accepted", cfg)
		}
	}
}

// TestCrawlCoverageMatchesStatisticalModel validates the summary the
// pipeline's statistical Kad model assumes (per-zone coverage centred
// near 0.9): an unbudgeted protocol-level crawl of a realistic overlay
// should land in the same coverage regime.
func TestCrawlCoverageMatchesStatisticalModel(t *testing.T) {
	net := buildNet(t, 5000, 10, 12)
	res, err := Crawl(net, DefaultCrawlConfig(), rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	cov := res.Coverage(net)
	if cov < 0.8 || cov > 1.0 {
		t.Errorf("protocol-level coverage %.3f outside the statistical model's regime [0.8, 1.0]", cov)
	}
}

func BenchmarkBuild(b *testing.B) {
	m := members(5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(m, 8, rng.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCrawl(b *testing.B) {
	net := buildNet(b, 5000, 8, 14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Crawl(net, DefaultCrawlConfig(), rng.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func TestChurnReducesCoverage(t *testing.T) {
	baseline := buildNet(t, 3000, 8, 20)
	resBase, err := Crawl(baseline, DefaultCrawlConfig(), rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	churned := buildNet(t, 3000, 8, 20)
	churned.ApplyChurn(0.4, rng.New(22))
	resChurn, err := Crawl(churned, DefaultCrawlConfig(), rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	if resChurn.AliveCoverage(churned) >= resBase.AliveCoverage(baseline) {
		t.Errorf("churned alive-coverage %.3f >= baseline %.3f",
			resChurn.AliveCoverage(churned), resBase.AliveCoverage(baseline))
	}
	// Departed nodes never answer.
	for id := range churned.departed {
		if got := churned.FindNode(id, id); got != nil {
			t.Fatalf("departed node %x answered", id)
		}
	}
}

func TestApplyChurnPanics(t *testing.T) {
	net := buildNet(t, 100, 8, 23)
	defer func() {
		if recover() == nil {
			t.Error("churn fraction 1 should panic")
		}
	}()
	net.ApplyChurn(1, rng.New(1))
}

func TestAlive(t *testing.T) {
	net := buildNet(t, 100, 8, 24)
	id := net.IDs()[0]
	if !net.Alive(id) {
		t.Error("fresh node not alive")
	}
	if net.Alive(NodeID(123456789)) {
		t.Error("unknown node alive")
	}
	net.ApplyChurn(0.99, rng.New(2))
	anyDeparted := false
	for _, x := range net.IDs() {
		if !net.Alive(x) {
			anyDeparted = true
			break
		}
	}
	if !anyDeparted {
		t.Error("heavy churn departed nobody")
	}
}
