// Package dht simulates a Kademlia-style distributed hash table and the
// iterative zone crawler the paper's Kad dataset was collected with
// (Cruiser-style crawls of the Kad ID space, §2 "Sampling End-users").
//
// The statistical crawl model in internal/p2p summarizes a crawler's
// outcome (per-zone coverage ~0.9); this package builds the mechanism
// itself — node IDs, XOR metric, k-buckets, FIND_NODE RPCs, and an
// α-parallel iterative lookup walking the ID space zone by zone — so the
// summary can be validated against protocol-level behaviour (see the
// package tests) and so crawl dynamics (RPC budgets, bucket sizes, churn)
// can be studied directly.
package dht

import (
	"fmt"
	"math/bits"
	"sort"

	"eyeballas/internal/ipnet"
	"eyeballas/internal/rng"
)

// NodeID is a position in the 64-bit Kademlia ID space (real Kad uses 128
// bits; 64 preserves all structure at simulation scale).
type NodeID uint64

// Distance is the XOR metric.
func Distance(a, b NodeID) uint64 { return uint64(a ^ b) }

// bucketIndex returns the k-bucket index for a neighbour: the position of
// the highest differing bit (0 = farthest half of the ID space, 63 =
// immediate neighbourhood). Equal IDs return 64.
func bucketIndex(self, other NodeID) int {
	if self == other {
		return 64
	}
	return bits.LeadingZeros64(uint64(self ^ other))
}

// Node is one DHT participant.
type Node struct {
	ID   NodeID
	Addr ipnet.Addr
	// buckets[i] holds up to k known neighbours whose highest differing
	// bit is i. Only the first few buckets are ever non-empty in a
	// network far smaller than 2^64, exactly as in real deployments.
	buckets [][]NodeID
}

// Network is a fully-built overlay.
type Network struct {
	nodes map[NodeID]*Node
	ids   []NodeID // sorted, for construction and verification
	k     int
	// departed nodes (churn) still appear in other nodes' buckets as
	// stale entries but no longer answer RPCs.
	departed map[NodeID]bool
}

// ApplyChurn marks the given fraction of nodes as departed: their bucket
// entries elsewhere go stale (they are still handed out in FIND_NODE
// responses) but they stop answering queries — the dominant coverage
// limiter of real crawls. It panics on a fraction outside [0, 1).
func (n *Network) ApplyChurn(frac float64, src *rng.Source) {
	if frac < 0 || frac >= 1 {
		panic(fmt.Sprintf("dht: churn fraction %v outside [0, 1)", frac))
	}
	if n.departed == nil {
		n.departed = make(map[NodeID]bool)
	}
	for _, id := range n.ids {
		if src.Bool(frac) {
			n.departed[id] = true
		}
	}
}

// Alive reports whether the node still answers RPCs.
func (n *Network) Alive(id NodeID) bool { return n.nodes[id] != nil && !n.departed[id] }

// K returns the bucket capacity the network was built with.
func (n *Network) K() int { return k(n) }

func k(n *Network) int { return n.k }

// Size returns the number of nodes.
func (n *Network) Size() int { return len(n.ids) }

// IDs returns the sorted node IDs (shared slice; do not modify).
func (n *Network) IDs() []NodeID { return n.ids }

// Node returns a node by ID, or nil.
func (n *Network) Node(id NodeID) *Node { return n.nodes[id] }

// Build constructs a network over the given member addresses: each member
// receives a deterministic pseudo-random ID, and routing tables are
// populated the way a long-running network's tables look — each bucket
// holds up to kBucket random members of its distance range.
func Build(members []ipnet.Addr, kBucket int, src *rng.Source) (*Network, error) {
	if len(members) < 2 {
		return nil, fmt.Errorf("dht: need at least 2 members, got %d", len(members))
	}
	if kBucket < 1 {
		return nil, fmt.Errorf("dht: bucket size must be >= 1")
	}
	net := &Network{nodes: make(map[NodeID]*Node, len(members)), k: kBucket}
	for _, addr := range members {
		id := NodeID(src.Uint64())
		for net.nodes[id] != nil { // collisions are astronomically rare
			id = NodeID(src.Uint64())
		}
		net.nodes[id] = &Node{ID: id, Addr: addr}
		net.ids = append(net.ids, id)
	}
	sort.Slice(net.ids, func(i, j int) bool { return net.ids[i] < net.ids[j] })

	// Populate k-buckets. For bucket i of node x, the eligible range is
	// the set of IDs sharing i leading bits with x and differing at bit
	// i — a contiguous interval of the ID space, found by binary search
	// on the sorted IDs.
	for _, id := range net.ids {
		node := net.nodes[id]
		node.buckets = make([][]NodeID, 65)
		for b := 0; b < 64; b++ {
			lo, hi := bucketRange(id, b)
			first := sort.Search(len(net.ids), func(i int) bool { return net.ids[i] >= lo })
			last := sort.Search(len(net.ids), func(i int) bool { return net.ids[i] > hi })
			count := last - first
			if count == 0 {
				continue
			}
			take := kBucket
			if take > count {
				take = count
			}
			seen := map[int]bool{}
			for len(node.buckets[b]) < take {
				idx := first + src.Intn(count)
				if seen[idx] {
					continue
				}
				seen[idx] = true
				node.buckets[b] = append(node.buckets[b], net.ids[idx])
			}
			sort.Slice(node.buckets[b], func(x, y int) bool { return node.buckets[b][x] < node.buckets[b][y] })
		}
	}
	return net, nil
}

// bucketRange returns the inclusive ID interval of bucket b of node id:
// IDs sharing b leading bits and differing at bit b.
func bucketRange(id NodeID, b int) (lo, hi NodeID) {
	flip := id ^ (NodeID(1) << (63 - b))
	mask := NodeID(^uint64(0)) >> (b + 1) // low bits free
	return flip &^ mask, flip | mask
}

// FindNode is the FIND_NODE RPC: the queried node returns the k closest
// nodes to target that it knows (from its buckets), by XOR distance.
// Departed nodes time out (nil response); their stale entries in other
// nodes' buckets are still returned.
func (n *Network) FindNode(queried NodeID, target NodeID) []NodeID {
	node := n.nodes[queried]
	if node == nil || n.departed[queried] {
		return nil
	}
	var known []NodeID
	for _, bucket := range node.buckets {
		known = append(known, bucket...)
	}
	sort.Slice(known, func(i, j int) bool {
		return Distance(known[i], target) < Distance(known[j], target)
	})
	if len(known) > n.k {
		known = known[:n.k]
	}
	return known
}
