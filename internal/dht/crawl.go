package dht

import (
	"fmt"
	"sort"

	"eyeballas/internal/ipnet"
	"eyeballas/internal/rng"
)

// CrawlConfig parameterizes the zone crawler.
type CrawlConfig struct {
	// Zones is the number of equal slices of the ID space walked; the
	// paper-era Kad crawlers sweep zones to bound per-lookup state.
	Zones int
	// Alpha is the lookup parallelism (queries in flight per step).
	Alpha int
	// RPCBudget caps the total FIND_NODE calls (0 = unlimited); partial
	// budgets model the bandwidth limits that give real crawls their
	// <100% coverage.
	RPCBudget int
	// Bootstrap is how many random seed nodes the crawler starts from.
	Bootstrap int
	// SweepProbes is how many FIND_NODE targets each in-zone node is
	// probed with during the exhaustive sweep.
	SweepProbes int
}

// DefaultCrawlConfig mirrors common crawler settings (α = 3, 64 zones).
func DefaultCrawlConfig() CrawlConfig {
	return CrawlConfig{Zones: 64, Alpha: 3, Bootstrap: 8, SweepProbes: 4}
}

// CrawlResult summarizes a crawl.
type CrawlResult struct {
	Discovered map[NodeID]ipnet.Addr // every node learned of
	Queried    int                   // nodes actually sent an RPC
	RPCs       int                   // FIND_NODE calls issued
}

// Coverage returns the fraction of the network discovered.
func (r *CrawlResult) Coverage(net *Network) float64 {
	if net.Size() == 0 {
		return 0
	}
	return float64(len(r.Discovered)) / float64(net.Size())
}

// AliveCoverage returns the fraction of still-responsive nodes
// discovered — the relevant metric under churn, where the plain coverage
// also counts stale entries of departed peers.
func (r *CrawlResult) AliveCoverage(net *Network) float64 {
	alive, found := 0, 0
	for _, id := range net.IDs() {
		if !net.Alive(id) {
			continue
		}
		alive++
		if _, ok := r.Discovered[id]; ok {
			found++
		}
	}
	if alive == 0 {
		return 0
	}
	return float64(found) / float64(alive)
}

// Crawl walks the ID space zone by zone with iterative α-parallel
// lookups, the protocol the paper's Kad dataset was gathered with. The
// crawler is an outside observer: it learns node addresses only through
// FIND_NODE responses.
func Crawl(net *Network, cfg CrawlConfig, src *rng.Source) (*CrawlResult, error) {
	if cfg.Zones < 1 || cfg.Alpha < 1 || cfg.Bootstrap < 1 || cfg.SweepProbes < 1 {
		return nil, fmt.Errorf("dht: Zones, Alpha, Bootstrap and SweepProbes must be >= 1")
	}
	res := &CrawlResult{Discovered: make(map[NodeID]ipnet.Addr)}
	ids := net.IDs()

	// Bootstrap peers (a crawler ships a seed list).
	bootstrap := make([]NodeID, 0, cfg.Bootstrap)
	for len(bootstrap) < cfg.Bootstrap && len(bootstrap) < len(ids) {
		id := ids[src.Intn(len(ids))]
		bootstrap = append(bootstrap, id)
		res.Discovered[id] = net.Node(id).Addr
	}

	budgetLeft := func() bool {
		return cfg.RPCBudget == 0 || res.RPCs < cfg.RPCBudget
	}

	queriedGlobal := map[NodeID]bool{}
	zoneWidth := NodeID(^uint64(0)) / NodeID(cfg.Zones)
	for z := 0; z < cfg.Zones && budgetLeft(); z++ {
		zLo := NodeID(z) * zoneWidth
		zHi := zLo + zoneWidth - 1
		if z == cfg.Zones-1 {
			zHi = NodeID(^uint64(0))
		}
		target := zLo + zoneWidth/2
		inZone := func(id NodeID) bool { return id >= zLo && id <= zHi }

		// Phase 1 — iterative α-parallel lookup toward the zone centre,
		// to land inside the zone from the bootstrap set. Lookup state is
		// per zone: a node already swept in an earlier zone may still be
		// queried again to route toward this one, as real crawlers
		// re-query their seeds per lookup.
		queried := map[NodeID]bool{}
		candidates := append([]NodeID(nil), bootstrap...)
		for id := range res.Discovered {
			if inZone(id) {
				candidates = append(candidates, id)
			}
		}
		for budgetLeft() {
			sort.Slice(candidates, func(i, j int) bool {
				return Distance(candidates[i], target) < Distance(candidates[j], target)
			})
			var batch []NodeID
			for _, c := range candidates {
				if !queried[c] {
					batch = append(batch, c)
					if len(batch) == cfg.Alpha {
						break
					}
				}
			}
			if len(batch) == 0 {
				break
			}
			progressed := false
			for _, q := range batch {
				if !budgetLeft() {
					break
				}
				queried[q] = true
				res.Queried++
				res.RPCs++
				for _, found := range net.FindNode(q, target) {
					if _, known := res.Discovered[found]; !known {
						res.Discovered[found] = net.Node(found).Addr
						candidates = append(candidates, found)
						progressed = true
					}
				}
			}
			if !progressed {
				break
			}
			// Standard crawler memory bound on lookup state.
			if len(candidates) > 8*net.K()*cfg.Alpha {
				sort.Slice(candidates, func(i, j int) bool {
					return Distance(candidates[i], target) < Distance(candidates[j], target)
				})
				candidates = candidates[:8*net.K()*cfg.Alpha]
			}
		}

		// Phase 2 — exhaustive in-zone sweep (the Cruiser strategy):
		// every discovered in-zone node is probed with several targets
		// spread across the zone, extracting broad slices of its routing
		// table; newly revealed in-zone nodes join the frontier until the
		// zone closes or the budget runs out. Self-targeted probes alone
		// would stall: the k-XOR-closest graph fragments into trie
		// clusters of ~k nodes.
		frontier := make([]NodeID, 0, 64)
		for id := range res.Discovered {
			if inZone(id) && !queriedGlobal[id] {
				frontier = append(frontier, id)
			}
		}
		sort.Slice(frontier, func(i, j int) bool { return frontier[i] < frontier[j] })
		for len(frontier) > 0 && budgetLeft() {
			q := frontier[len(frontier)-1]
			frontier = frontier[:len(frontier)-1]
			if queriedGlobal[q] {
				continue
			}
			queriedGlobal[q] = true
			res.Queried++
			probes := cfg.SweepProbes
			for r := 0; r < probes && budgetLeft(); r++ {
				probe := q // first probe: the node's own neighbourhood
				if r > 0 {
					probe = zLo + NodeID(src.Uint64())%zoneWidth
				}
				res.RPCs++
				for _, found := range net.FindNode(q, probe) {
					if _, known := res.Discovered[found]; !known {
						res.Discovered[found] = net.Node(found).Addr
						if inZone(found) {
							frontier = append(frontier, found)
						}
					}
				}
			}
		}
	}
	return res, nil
}
