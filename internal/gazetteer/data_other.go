package gazetteer

// otherCities returns gazetteer entries for South America, Africa and
// Oceania. The paper profiles only NA/EU/AS, but the synthetic world is
// global so that region classification (continent vs global) has real
// negative cases.
func otherCities() []City {
	return []City{
		// South America
		mk("Sao Paulo", "Sao Paulo", "BR", SA, -23.5505, -46.6333, 22000000),
		mk("Rio de Janeiro", "Rio de Janeiro", "BR", SA, -22.9068, -43.1729, 13500000),
		mk("Belo Horizonte", "Minas Gerais", "BR", SA, -19.9167, -43.9345, 6000000),
		mk("Brasilia", "Federal District", "BR", SA, -15.8267, -47.9218, 4700000),
		mk("Porto Alegre", "Rio Grande do Sul", "BR", SA, -30.0346, -51.2177, 4300000),
		mk("Recife", "Pernambuco", "BR", SA, -8.0476, -34.8770, 4100000),
		mk("Fortaleza", "Ceara", "BR", SA, -3.7319, -38.5267, 4100000),
		mk("Salvador", "Bahia", "BR", SA, -12.9714, -38.5014, 3900000),
		mk("Curitiba", "Parana", "BR", SA, -25.4284, -49.2733, 3700000),
		mk("Buenos Aires", "Buenos Aires", "AR", SA, -34.6037, -58.3816, 15400000),
		mk("Cordoba", "Cordoba", "AR", SA, -31.4201, -64.1888, 1600000),
		mk("Rosario", "Santa Fe", "AR", SA, -32.9442, -60.6505, 1400000),
		mk("Santiago", "Santiago Metropolitan", "CL", SA, -33.4489, -70.6693, 7000000),
		mk("Valparaiso", "Valparaiso", "CL", SA, -33.0472, -71.6127, 1000000),
		mk("Lima", "Lima", "PE", SA, -12.0464, -77.0428, 10700000),
		mk("Bogota", "Bogota", "CO", SA, 4.7110, -74.0721, 11000000),
		mk("Medellin", "Antioquia", "CO", SA, 6.2476, -75.5658, 4000000),
		mk("Cali", "Valle del Cauca", "CO", SA, 3.4516, -76.5320, 2800000),
		mk("Quito", "Pichincha", "EC", SA, -0.1807, -78.4678, 2800000),
		mk("Guayaquil", "Guayas", "EC", SA, -2.1710, -79.9224, 3100000),
		mk("Caracas", "Capital District", "VE", SA, 10.4806, -66.9036, 2900000),
		mk("Montevideo", "Montevideo", "UY", SA, -34.9011, -56.1645, 1800000),
		mk("Asuncion", "Asuncion", "PY", SA, -25.2637, -57.5759, 2300000),
		mk("La Paz", "La Paz", "BO", SA, -16.4897, -68.1193, 1900000),

		// Africa
		mk("Cairo", "Cairo", "EG", AF, 30.0444, 31.2357, 21000000),
		mk("Alexandria", "Alexandria", "EG", AF, 31.2001, 29.9187, 5400000),
		mk("Lagos", "Lagos", "NG", AF, 6.5244, 3.3792, 15000000),
		mk("Abuja", "FCT", "NG", AF, 9.0765, 7.3986, 3600000),
		mk("Kano", "Kano", "NG", AF, 12.0022, 8.5920, 4100000),
		mk("Johannesburg", "Gauteng", "ZA", AF, -26.2041, 28.0473, 10000000),
		mk("Cape Town", "Western Cape", "ZA", AF, -33.9249, 18.4241, 4700000),
		mk("Durban", "KwaZulu-Natal", "ZA", AF, -29.8587, 31.0218, 3900000),
		mk("Pretoria", "Gauteng", "ZA", AF, -25.7479, 28.2293, 2900000),
		mk("Nairobi", "Nairobi", "KE", AF, -1.2921, 36.8219, 5100000),
		mk("Mombasa", "Mombasa", "KE", AF, -4.0435, 39.6682, 1300000),
		mk("Addis Ababa", "Addis Ababa", "ET", AF, 9.0250, 38.7469, 5200000),
		mk("Dar es Salaam", "Dar es Salaam", "TZ", AF, -6.7924, 39.2083, 7000000),
		mk("Kampala", "Central", "UG", AF, 0.3476, 32.5825, 3700000),
		mk("Accra", "Greater Accra", "GH", AF, 5.6037, -0.1870, 4200000),
		mk("Abidjan", "Abidjan", "CI", AF, 5.3600, -4.0083, 5500000),
		mk("Dakar", "Dakar", "SN", AF, 14.7167, -17.4677, 3900000),
		mk("Casablanca", "Casablanca-Settat", "MA", AF, 33.5731, -7.5898, 4300000),
		mk("Rabat", "Rabat-Sale-Kenitra", "MA", AF, 34.0209, -6.8416, 1900000),
		mk("Algiers", "Algiers", "DZ", AF, 36.7538, 3.0588, 3900000),
		mk("Tunis", "Tunis", "TN", AF, 36.8065, 10.1815, 2700000),
		mk("Kinshasa", "Kinshasa", "CD", AF, -4.4419, 15.2663, 15000000),
		mk("Luanda", "Luanda", "AO", AF, -8.8390, 13.2894, 8600000),
		mk("Khartoum", "Khartoum", "SD", AF, 15.5007, 32.5599, 6000000),
		mk("Harare", "Harare", "ZW", AF, -17.8252, 31.0335, 2100000),
		mk("Lusaka", "Lusaka", "ZM", AF, -15.3875, 28.3228, 2900000),
		mk("Maputo", "Maputo", "MZ", AF, -25.9692, 32.5732, 1800000),

		// Oceania
		mk("Sydney", "New South Wales", "AU", OC, -33.8688, 151.2093, 5300000),
		mk("Melbourne", "Victoria", "AU", OC, -37.8136, 144.9631, 5100000),
		mk("Brisbane", "Queensland", "AU", OC, -27.4698, 153.0251, 2600000),
		mk("Perth", "Western Australia", "AU", OC, -31.9505, 115.8605, 2100000),
		mk("Adelaide", "South Australia", "AU", OC, -34.9285, 138.6007, 1400000),
		mk("Canberra", "ACT", "AU", OC, -35.2809, 149.1300, 460000),
		mk("Hobart", "Tasmania", "AU", OC, -42.8821, 147.3272, 250000),
		mk("Darwin", "Northern Territory", "AU", OC, -12.4634, 130.8456, 150000),
		mk("Auckland", "Auckland", "NZ", OC, -36.8485, 174.7633, 1700000),
		mk("Wellington", "Wellington", "NZ", OC, -41.2866, 174.7756, 420000),
		mk("Christchurch", "Canterbury", "NZ", OC, -43.5321, 172.6362, 400000),
		mk("Suva", "Central", "FJ", OC, -18.1248, 178.4501, 190000),
	}
}

// worldCities assembles the full embedded gazetteer.
func worldCities() []City {
	var all []City
	all = append(all, europeanCities()...)
	all = append(all, northAmericanCities()...)
	all = append(all, asianCities()...)
	all = append(all, otherCities()...)
	return all
}
