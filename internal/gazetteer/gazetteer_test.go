package gazetteer

import (
	"sort"
	"testing"

	"eyeballas/internal/geo"
	"eyeballas/internal/rng"
)

func TestDefaultGazetteerSanity(t *testing.T) {
	g := Default()
	if g.Len() < 400 {
		t.Fatalf("gazetteer too small: %d cities", g.Len())
	}
	seen := map[string]bool{}
	for _, c := range g.Cities() {
		if !c.Loc.Valid() {
			t.Errorf("%s has invalid location %v", c, c.Loc)
		}
		if c.Pop <= 0 {
			t.Errorf("%s has non-positive population", c)
		}
		if c.Country == "" || c.Name == "" {
			t.Errorf("city with empty name or country: %+v", c)
		}
		if c.Region == Other {
			t.Errorf("%s has unset region", c)
		}
		key := c.Name + "/" + c.Country
		if seen[key] {
			t.Errorf("duplicate city %s", key)
		}
		seen[key] = true
	}
}

func TestPaperCitiesPresent(t *testing.T) {
	// §4.2 lists the PoP-level footprint of AS 3269; every named city must
	// be resolvable, as must the case-study cities of §6.
	g := Default()
	for _, name := range []string{
		"Milan", "Rome", "Florence", "Venice", "Naples", "Turin", "Ancona",
		"Catania", "Palermo", "Pescara", "Bari", "Catanzaro", "Cagliari", "Sassari",
	} {
		if _, ok := g.Find(name, "IT"); !ok {
			t.Errorf("paper city %s, IT missing", name)
		}
	}
}

func TestRegionsPopulated(t *testing.T) {
	g := Default()
	for _, r := range []Region{NA, EU, AS} {
		if n := len(g.InRegion(r)); n < 80 {
			t.Errorf("region %s has only %d cities; the Table 1 experiments need density", r, n)
		}
	}
	for _, r := range []Region{SA, AF, OC} {
		if n := len(g.InRegion(r)); n < 10 {
			t.Errorf("region %s has only %d cities", r, n)
		}
	}
}

func TestInCountrySorted(t *testing.T) {
	g := Default()
	it := g.InCountry("IT")
	if len(it) < 30 {
		t.Fatalf("Italy has %d cities, want >= 30", len(it))
	}
	for i := 1; i < len(it); i++ {
		if it[i].Pop > it[i-1].Pop {
			t.Fatalf("InCountry not sorted by population: %s(%d) after %s(%d)",
				it[i].Name, it[i].Pop, it[i-1].Name, it[i-1].Pop)
		}
	}
	if it[0].Name != "Rome" {
		t.Errorf("largest Italian metro = %s, want Rome", it[0].Name)
	}
}

func TestWithin(t *testing.T) {
	g := Default()
	rome, _ := g.Find("Rome", "IT")
	near := g.Within(rome.Loc, 50)
	if len(near) == 0 || near[0].Name != "Rome" {
		t.Fatalf("Within(Rome, 50) first = %v", near)
	}
	// Milan is ~480 km from Rome; it must not appear within 300 km but
	// must appear within 600 km.
	for _, c := range g.Within(rome.Loc, 300) {
		if c.Name == "Milan" {
			t.Error("Milan within 300 km of Rome")
		}
	}
	found := false
	for _, c := range g.Within(rome.Loc, 600) {
		if c.Name == "Milan" {
			found = true
		}
	}
	if !found {
		t.Error("Milan not within 600 km of Rome")
	}
}

func TestWithinSortedByDistance(t *testing.T) {
	g := Default()
	milan, _ := g.Find("Milan", "IT")
	near := g.Within(milan.Loc, 300)
	if len(near) < 3 {
		t.Fatalf("too few cities near Milan: %d", len(near))
	}
	prev := -1.0
	for _, c := range near {
		d := geo.DistanceKm(milan.Loc, c.Loc)
		if d < prev-1e-9 {
			t.Fatalf("Within not sorted: %s at %.1f after %.1f", c.Name, d, prev)
		}
		prev = d
	}
}

func TestMostPopulousWithin(t *testing.T) {
	g := Default()
	// A point between Florence and Bologna: within 120 km, Bologna
	// (1.0M) should beat Florence (0.98M).
	florence, _ := g.Find("Florence", "IT")
	c, ok := g.MostPopulousWithin(florence.Loc, 5)
	if !ok || c.Name != "Florence" {
		t.Errorf("MostPopulousWithin(Florence, 5) = %v, %v", c, ok)
	}
	// Nothing in the middle of the Atlantic.
	if _, ok := g.MostPopulousWithin(geo.Point{Lat: 40, Lon: -40}, 100); ok {
		t.Error("found a city in the mid-Atlantic")
	}
	// Loose mapping: a peak 30 km from Milan should map to Milan with
	// a 40 km radius, even though smaller towns may be closer.
	off := geo.Destination(milanLoc(g), 45, 30)
	c, ok = g.MostPopulousWithin(off, 40)
	if !ok || c.Name != "Milan" {
		t.Errorf("loose mapping near Milan = %v, %v", c, ok)
	}
}

func milanLoc(g *Gazetteer) geo.Point {
	c, _ := g.Find("Milan", "IT")
	return c.Loc
}

func TestNearest(t *testing.T) {
	g := Default()
	rome, _ := g.Find("Rome", "IT")
	p := geo.Destination(rome.Loc, 10, 12)
	c, ok := g.Nearest(p, 40)
	if !ok || c.Name != "Rome" {
		t.Errorf("Nearest = %v, %v", c, ok)
	}
	if _, ok := g.Nearest(geo.Point{Lat: 0, Lon: -30}, 50); ok {
		t.Error("Nearest found a city in open ocean")
	}
}

func TestFindAbsent(t *testing.T) {
	g := Default()
	if _, ok := g.Find("Atlantis", "IT"); ok {
		t.Error("found Atlantis")
	}
	if _, ok := g.Find("Rome", "ZZ"); ok {
		t.Error("found Rome in ZZ")
	}
}

func TestRadiusKm(t *testing.T) {
	big := City{Pop: 20000000}
	if big.RadiusKm() != 35 {
		t.Errorf("megacity radius = %v, want 35 (clamped)", big.RadiusKm())
	}
	small := City{Pop: 1000}
	if small.RadiusKm() != 3 {
		t.Errorf("village radius = %v, want 3 (clamped)", small.RadiusKm())
	}
	mid := City{Pop: 400000}
	if r := mid.RadiusKm(); r < 10 || r > 35 {
		t.Errorf("mid city radius = %v", r)
	}
}

func TestCountries(t *testing.T) {
	g := Default()
	cs := g.Countries()
	if len(cs) < 40 {
		t.Errorf("only %d countries", len(cs))
	}
	for i := 1; i < len(cs); i++ {
		if cs[i] <= cs[i-1] {
			t.Fatal("Countries not sorted/unique")
		}
	}
}

func TestSynthesizeZips(t *testing.T) {
	g := Default()
	src := rng.New(1)
	zips := SynthesizeZips(g, DefaultZipPlan(), src)
	if len(zips) < 3*g.Len() {
		t.Fatalf("too few zips: %d", len(zips))
	}
	// Determinism.
	zips2 := SynthesizeZips(g, DefaultZipPlan(), rng.New(1))
	if len(zips) != len(zips2) || zips[0].Loc != zips2[0].Loc || zips[100].Loc != zips2[100].Loc {
		t.Error("zip synthesis is not deterministic")
	}
	// Every zip lies within its city's metro radius (plus slack).
	byName := map[string]City{}
	for _, c := range g.Cities() {
		// Name collisions across countries are fine for this bound check:
		// radii are similar in magnitude.
		byName[c.Name] = c
	}
	for _, z := range zips[:500] {
		c := byName[z.City]
		if d := geo.DistanceKm(c.Loc, z.Loc); d > c.RadiusKm()+1 {
			t.Errorf("zip of %s at distance %.1f > radius %.1f", z.City, d, c.RadiusKm())
		}
	}
}

func TestZipIndexNearest(t *testing.T) {
	g := Default()
	zips := SynthesizeZips(g, DefaultZipPlan(), rng.New(2))
	idx := NewZipIndex(zips)
	if idx.Len() != len(zips) {
		t.Fatalf("index len %d != %d", idx.Len(), len(zips))
	}
	rome, _ := g.Find("Rome", "IT")
	z, ok := idx.Nearest(rome.Loc, 60)
	if !ok {
		t.Fatal("no zip near Rome")
	}
	if geo.DistanceKm(rome.Loc, z.Loc) > 40 {
		t.Errorf("nearest zip to Rome centre is %.1f km away", geo.DistanceKm(rome.Loc, z.Loc))
	}
	if _, ok := idx.Nearest(geo.Point{Lat: 35, Lon: -45}, 100); ok {
		t.Error("found a zip in the mid-Atlantic")
	}
	// Exhaustive check on a sample: reported nearest is truly nearest.
	probe := geo.Destination(rome.Loc, 123, 7)
	got, _ := idx.Nearest(probe, 100)
	best := ZipCentroid{}
	bestD := 1e18
	for _, z := range zips {
		if d := geo.DistanceKm(probe, z.Loc); d < bestD {
			bestD, best = d, z
		}
	}
	if got.Loc != best.Loc {
		t.Errorf("Nearest returned %v (%.2f km), true nearest %v (%.2f km)",
			got.Loc, geo.DistanceKm(probe, got.Loc), best.Loc, bestD)
	}
}

func TestKNearestMatchesBruteForce(t *testing.T) {
	g := Default()
	zips := SynthesizeZips(g, DefaultZipPlan(), rng.New(5))
	idx := NewZipIndex(zips)
	probes := []geo.Point{}
	for _, name := range []string{"Rome", "Milan", "Naples"} {
		c, _ := g.Find(name, "IT")
		probes = append(probes, c.Loc, geo.Destination(c.Loc, 45, 30), geo.Destination(c.Loc, 200, 55))
	}
	for _, p := range probes {
		got := idx.KNearest(p, 4, 120)
		// Brute force.
		type hit struct {
			z ZipCentroid
			d float64
		}
		var hits []hit
		for _, z := range zips {
			if d := geo.DistanceKm(p, z.Loc); d <= 120 {
				hits = append(hits, hit{z, d})
			}
		}
		sort.Slice(hits, func(a, b int) bool { return hits[a].d < hits[b].d })
		want := 4
		if len(hits) < want {
			want = len(hits)
		}
		if len(got) != want {
			t.Fatalf("probe %v: got %d, want %d", p, len(got), want)
		}
		for i := range got {
			// Equal distances may order arbitrarily; compare distances.
			gd := geo.DistanceKm(p, got[i].Loc)
			if gd-hits[i].d > 1e-9 {
				t.Fatalf("probe %v rank %d: got %.4f km, brute force %.4f km", p, i, gd, hits[i].d)
			}
		}
	}
}

func TestKNearestIntoEmpty(t *testing.T) {
	idx := NewZipIndex(nil)
	var buf [4]ZipCentroid
	if n := idx.KNearestInto(geo.Point{Lat: 40, Lon: 10}, 100, buf[:]); n != 0 {
		t.Errorf("empty index returned %d", n)
	}
}
