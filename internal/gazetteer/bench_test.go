package gazetteer

import (
	"sync"
	"testing"

	"eyeballas/internal/geo"
	"eyeballas/internal/rng"
)

var benchData struct {
	once sync.Once
	g    *Gazetteer
	zips *ZipIndex
}

func benchSetup() (*Gazetteer, *ZipIndex) {
	benchData.once.Do(func() {
		benchData.g = Default()
		benchData.zips = NewZipIndex(SynthesizeZips(benchData.g, DefaultZipPlan(), rng.New(9002)))
	})
	return benchData.g, benchData.zips
}

func BenchmarkMostPopulousWithin(b *testing.B) {
	g, _ := benchSetup()
	rome, _ := g.Find("Rome", "IT")
	probe := geo.Destination(rome.Loc, 70, 25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := g.MostPopulousWithin(probe, 40); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkWithin(b *testing.B) {
	g, _ := benchSetup()
	milan, _ := g.Find("Milan", "IT")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := g.Within(milan.Loc, 150); len(got) == 0 {
			b.Fatal("miss")
		}
	}
}

func BenchmarkZipKNearestInto(b *testing.B) {
	g, zips := benchSetup()
	rome, _ := g.Find("Rome", "IT")
	probe := geo.Destination(rome.Loc, 200, 18)
	var buf [4]ZipCentroid
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n := zips.KNearestInto(probe, 120, buf[:]); n == 0 {
			b.Fatal("miss")
		}
	}
}

func BenchmarkZipNearest(b *testing.B) {
	g, zips := benchSetup()
	paris, _ := g.Find("Paris", "FR")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := zips.Nearest(paris.Loc, 100); !ok {
			b.Fatal("miss")
		}
	}
}
