package gazetteer

import (
	"fmt"

	"eyeballas/internal/geo"
	"eyeballas/internal/rng"
)

// Satellite towns.
//
// Real metropolitan areas are ringed by small towns; at fine KDE
// bandwidths (the paper's 10 km panel) density peaks land on them and the
// peak→city mapping resolves each as a distinct "PoP", which is exactly
// why the paper finds 31.9 PoPs per AS at 10 km but only 7.3 at 80 km,
// and why the fine-bandwidth PoP set is so imprecise (5% perfect match).
// The embedded gazetteer holds only major cities, so this layer
// synthesizes deterministic satellite towns around them. A town carries
// its parent metro's name in Metro; geolocation databases label suburban
// users with the metro (as commercial city databases do), while the
// peak→city mapping sees towns as ordinary gazetteer entries.

// townSeed fixes the deterministic town layer; it is part of the
// gazetteer's identity, not of any experiment's seed.
const townSeed = 0x7071e5

// generateTowns synthesizes satellite towns for every city with at least
// 400k inhabitants.
func generateTowns(cities []City) []City {
	src := rng.New(townSeed)
	var towns []City
	for i, c := range cities {
		if c.Pop < 400_000 {
			continue
		}
		s := src.SplitN("towns", i)
		n := c.Pop / 700_000
		if n < 1 {
			n = 1
		}
		if n > 6 {
			n = 6
		}
		r := c.RadiusKm()
		for t := 0; t < n; t++ {
			dist := s.Range(maxF(12, 0.6*r), 2.2*r)
			towns = append(towns, City{
				Name:    fmt.Sprintf("%s Town %d", c.Name, t+1),
				State:   c.State,
				Country: c.Country,
				Region:  c.Region,
				Metro:   c.Name,
				Loc:     geo.Destination(c.Loc, s.Range(0, 360), dist),
				Pop:     15_000 + int(s.Range(0, 75_000)),
			})
		}
	}
	return towns
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
