package gazetteer

import (
	"math"

	"eyeballas/internal/geo"
	"eyeballas/internal/rng"
)

// ZipCentroid is a synthetic postal-code centroid inside a city's metro
// area. The paper's geolocation databases resolve IPs to zip-code
// coordinates (§2: "all users in a given zip code are mapped to the same
// coordinates"); the synthetic databases in internal/geodb snap user
// locations to these centroids the same way.
type ZipCentroid struct {
	City    string // city name the zip belongs to
	Country string // ISO country code of the city
	Loc     geo.Point
}

// ZipPlan describes how zip centroids are synthesized per city.
type ZipPlan struct {
	// PeoplePerZip controls how many centroids a city gets:
	// count = clamp(Pop/PeoplePerZip, MinPerCity, MaxPerCity).
	PeoplePerZip int
	MinPerCity   int
	MaxPerCity   int
}

// DefaultZipPlan mirrors the density of real metropolitan postal systems
// closely enough for the pipeline: one centroid per ~60k inhabitants,
// between 3 and 48 per city.
func DefaultZipPlan() ZipPlan {
	return ZipPlan{PeoplePerZip: 60000, MinPerCity: 3, MaxPerCity: 48}
}

// zipCount returns the number of centroids a city receives under the plan.
func (p ZipPlan) zipCount(c City) int {
	n := c.Pop / p.PeoplePerZip
	if n < p.MinPerCity {
		n = p.MinPerCity
	}
	if n > p.MaxPerCity {
		n = p.MaxPerCity
	}
	return n
}

// SynthesizeZips deterministically generates zip centroids for every city
// in the gazetteer. Centroids are scattered within each city's metro
// radius with a density that decays away from the centre (triangular
// radial profile), mimicking real population layout.
func SynthesizeZips(g *Gazetteer, plan ZipPlan, src *rng.Source) []ZipCentroid {
	var out []ZipCentroid
	for i := 0; i < g.Len(); i++ {
		c := g.City(i)
		s := src.SplitN("zips", i)
		n := plan.zipCount(c)
		r := c.RadiusKm()
		for j := 0; j < n; j++ {
			// sqrt(u)*triangular pull toward centre: u1*u2 gives a
			// density linearly decreasing in radius.
			dist := r * s.Float64() * s.Float64()
			bearing := s.Range(0, 360)
			out = append(out, ZipCentroid{
				City:    c.Name,
				Country: c.Country,
				Loc:     geo.Destination(c.Loc, bearing, dist),
			})
		}
	}
	return out
}

// ZipIndex answers nearest-centroid queries, used by the synthetic
// geolocation databases to snap an exact user location to zip resolution.
type ZipIndex struct {
	zips  []ZipCentroid
	cells map[cellKey][]int
}

// NewZipIndex builds an index over the given centroids.
func NewZipIndex(zips []ZipCentroid) *ZipIndex {
	idx := &ZipIndex{zips: append([]ZipCentroid(nil), zips...), cells: make(map[cellKey][]int)}
	for i, z := range idx.zips {
		k := keyFor(z.Loc)
		idx.cells[k] = append(idx.cells[k], i)
	}
	return idx
}

// Len returns the number of centroids indexed.
func (z *ZipIndex) Len() int { return len(z.zips) }

// Nearest returns the centroid closest to p searching outward up to maxKm.
// ok is false if no centroid lies within maxKm.
func (z *ZipIndex) Nearest(p geo.Point, maxKm float64) (ZipCentroid, bool) {
	bestD := math.Inf(1)
	bestI := -1
	// Search growing rings of cells so the common (dense) case stays cheap.
	for ring := 25.0; ring <= maxKm*2+25; ring *= 2 {
		limit := math.Min(ring, maxKm)
		for _, k := range cellsWithin(p, limit) {
			for _, i := range z.cells[k] {
				d := geo.DistanceKm(p, z.zips[i].Loc)
				if d < bestD {
					bestD, bestI = d, i
				}
			}
		}
		if bestI >= 0 && bestD <= limit {
			break
		}
		if limit >= maxKm {
			break
		}
	}
	if bestI < 0 || bestD > maxKm {
		return ZipCentroid{}, false
	}
	return z.zips[bestI], true
}

// KNearest returns up to k centroids within maxKm of p, nearest first.
// Real geolocation databases resolve the same user to different nearby
// postal codes; callers model that by choosing among the closest few.
func (z *ZipIndex) KNearest(p geo.Point, k int, maxKm float64) []ZipCentroid {
	out := make([]ZipCentroid, k)
	n := z.KNearestInto(p, maxKm, out)
	return out[:n]
}

// KNearestInto is the allocation-free variant of KNearest: it fills out
// (whose length sets k) with up to k nearest centroids within maxKm and
// returns how many were found. It first scans a tight radius and widens
// only if nothing is found, which keeps the hot path (users in metro
// areas, zips nearby) cheap — this is the pipeline's innermost query.
func (z *ZipIndex) KNearestInto(p geo.Point, maxKm float64, out []ZipCentroid) int {
	const tightKm = 40
	if maxKm > tightKm {
		if n := z.kNearestScan(p, tightKm, out); n == len(out) {
			return n
		}
	}
	return z.kNearestScan(p, maxKm, out)
}

func (z *ZipIndex) kNearestScan(p geo.Point, maxKm float64, out []ZipCentroid) int {
	k := len(out)
	// Fixed-size top-k by insertion; k is small (≤ 8 in practice).
	var dists [8]float64
	if k > len(dists) {
		k = len(dists)
		out = out[:k]
	}
	n := 0
	dLat := maxKm/111.19 + 1e-9
	cos := math.Cos(p.Lat * math.Pi / 180)
	if cos < 0.05 {
		cos = 0.05
	}
	dLon := maxKm/(111.19*cos) + 1e-9
	minLat := int(math.Floor(p.Lat - dLat))
	maxLat := int(math.Floor(p.Lat + dLat))
	minLon := int(math.Floor(p.Lon - dLon))
	maxLon := int(math.Floor(p.Lon + dLon))
	for la := minLat; la <= maxLat; la++ {
		for lo := minLon; lo <= maxLon; lo++ {
			wrapped := lo
			for wrapped < -180 {
				wrapped += 360
			}
			for wrapped >= 180 {
				wrapped -= 360
			}
			for _, i := range z.cells[cellKey{lat: la, lon: wrapped}] {
				d := geo.DistanceKm(p, z.zips[i].Loc)
				if d > maxKm {
					continue
				}
				if n == k && d >= dists[k-1] {
					continue
				}
				// Insert in sorted position, dropping the last element
				// when full.
				pos := n
				if pos == k {
					pos = k - 1
				}
				for pos > 0 && dists[pos-1] > d {
					dists[pos] = dists[pos-1]
					out[pos] = out[pos-1]
					pos--
				}
				dists[pos] = d
				out[pos] = z.zips[i]
				if n < k {
					n++
				}
			}
		}
	}
	return n
}
