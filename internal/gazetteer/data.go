package gazetteer

import "eyeballas/internal/geo"

// mk is the compact constructor the embedded data files use for major
// cities.
func mk(name, state, country string, region Region, lat, lon float64, pop int) City {
	return City{
		Name:    name,
		State:   state,
		Country: country,
		Region:  region,
		Loc:     geo.Point{Lat: lat, Lon: lon},
		Pop:     pop,
	}
}
