// Package gazetteer provides the city database the reproduction uses as
// physical geography: real major cities with approximate coordinates,
// populations, and administrative grouping, plus a spatial index for the
// radius queries that PoP→city mapping needs.
//
// The paper consults a commercial city/zip gazetteer implicitly through the
// MaxMind and IP2Location databases; here the same information is embedded
// directly (~500 real cities across North America, Europe, Asia, and the
// rest of the world). Coordinates are city centres to roughly ±0.05°,
// populations are approximate metro populations — fully adequate for a
// synthetic world whose users are generated around these cities.
package gazetteer

import (
	"fmt"
	"math"
	"sort"

	"eyeballas/internal/geo"
)

// Region is a coarse continental region, matching the paper's
// NA/EU/AS partitioning (other continents are generated but not profiled
// in Table 1).
type Region string

// Continental regions.
const (
	NA    Region = "NA" // North America
	EU    Region = "EU" // Europe
	AS    Region = "AS" // Asia
	SA    Region = "SA" // South America
	AF    Region = "AF" // Africa
	OC    Region = "OC" // Oceania
	Other Region = "??"
)

// City is one gazetteer entry: a major city or a synthetic satellite
// town (see towns.go).
type City struct {
	Name    string
	State   string // administrative subdivision (US state, DE Land, …); may be ""
	Country string // ISO 3166-1 alpha-2
	Region  Region
	// Metro names the parent major city for satellite towns; "" for
	// major cities themselves.
	Metro string
	Loc   geo.Point
	Pop   int // approximate metro population
}

// IsTown reports whether the entry is a satellite town of a larger metro.
func (c City) IsTown() bool { return c.Metro != "" }

// MetroName returns the metropolitan label: the parent metro's name for a
// town, the city's own name otherwise. Geolocation databases label users
// at metro granularity.
func (c City) MetroName() string {
	if c.Metro != "" {
		return c.Metro
	}
	return c.Name
}

// RadiusKm returns the nominal metro radius used for scattering users and
// zip centroids: grows with sqrt(population), clamped to [3, 35] km. The
// paper treats 30–35 km as the radius of a large city (§3.1).
func (c City) RadiusKm() float64 {
	r := 0.035 * math.Sqrt(float64(c.Pop))
	if r < 3 {
		return 3
	}
	if r > 35 {
		return 35
	}
	return r
}

// String renders "Name, CC".
func (c City) String() string { return fmt.Sprintf("%s, %s", c.Name, c.Country) }

// Gazetteer is an immutable city database with a spatial index.
type Gazetteer struct {
	cities []City
	// cell index: 1°×1° buckets keyed by (latIdx, lonIdx) → city indices.
	cells map[cellKey][]int
	// byCountry maps ISO country code to city indices sorted by -Pop.
	byCountry map[string][]int
}

type cellKey struct{ lat, lon int }

func keyFor(p geo.Point) cellKey {
	return cellKey{lat: int(math.Floor(p.Lat)), lon: int(math.Floor(p.Lon))}
}

// New builds a gazetteer over the given cities. The slice is copied.
func New(cities []City) *Gazetteer {
	g := &Gazetteer{
		cities:    append([]City(nil), cities...),
		cells:     make(map[cellKey][]int),
		byCountry: make(map[string][]int),
	}
	for i, c := range g.cities {
		k := keyFor(c.Loc)
		g.cells[k] = append(g.cells[k], i)
		g.byCountry[c.Country] = append(g.byCountry[c.Country], i)
	}
	for _, idx := range g.byCountry {
		sort.Slice(idx, func(a, b int) bool {
			if g.cities[idx[a]].Pop != g.cities[idx[b]].Pop {
				return g.cities[idx[a]].Pop > g.cities[idx[b]].Pop
			}
			return g.cities[idx[a]].Name < g.cities[idx[b]].Name
		})
	}
	return g
}

// Default returns the embedded world gazetteer: the major cities plus
// the deterministic satellite-town layer.
func Default() *Gazetteer {
	cities := worldCities()
	return New(append(cities, generateTowns(cities)...))
}

// DefaultMajorsOnly returns the gazetteer without the satellite-town
// layer, for callers studying the towns' effect in isolation.
func DefaultMajorsOnly() *Gazetteer { return New(worldCities()) }

// Len returns the number of cities.
func (g *Gazetteer) Len() int { return len(g.cities) }

// Cities returns all cities (shared slice; callers must not modify it).
func (g *Gazetteer) Cities() []City { return g.cities }

// City returns the i-th city.
func (g *Gazetteer) City(i int) City { return g.cities[i] }

// InCountry returns the cities of an ISO country code, most populous first.
func (g *Gazetteer) InCountry(cc string) []City {
	idx := g.byCountry[cc]
	out := make([]City, len(idx))
	for i, j := range idx {
		out[i] = g.cities[j]
	}
	return out
}

// MajorInCountry returns a country's major (non-town) cities, most
// populous first — the entries infrastructure like PoPs and IXPs can
// plausibly sit at.
func (g *Gazetteer) MajorInCountry(cc string) []City {
	all := g.InCountry(cc)
	out := all[:0:0]
	for _, c := range all {
		if !c.IsTown() {
			out = append(out, c)
		}
	}
	return out
}

// MajorInRegion returns a region's major (non-town) cities, most
// populous first.
func (g *Gazetteer) MajorInRegion(r Region) []City {
	all := g.InRegion(r)
	out := all[:0:0]
	for _, c := range all {
		if !c.IsTown() {
			out = append(out, c)
		}
	}
	return out
}

// Countries returns the ISO codes present, sorted.
func (g *Gazetteer) Countries() []string {
	out := make([]string, 0, len(g.byCountry))
	for cc := range g.byCountry {
		out = append(out, cc)
	}
	sort.Strings(out)
	return out
}

// InRegion returns the cities of a continental region, most populous first.
func (g *Gazetteer) InRegion(r Region) []City {
	var out []City
	for _, c := range g.cities {
		if c.Region == r {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Pop != out[b].Pop {
			return out[a].Pop > out[b].Pop
		}
		return out[a].Name < out[b].Name
	})
	return out
}

// cellsWithin yields the candidate cell keys covering a km-radius disc
// around p.
func cellsWithin(p geo.Point, km float64) []cellKey {
	dLat := km/111.19 + 1e-9
	cos := math.Cos(p.Lat * math.Pi / 180)
	if cos < 0.05 {
		cos = 0.05
	}
	dLon := km/(111.19*cos) + 1e-9
	minLat := int(math.Floor(p.Lat - dLat))
	maxLat := int(math.Floor(p.Lat + dLat))
	minLon := int(math.Floor(p.Lon - dLon))
	maxLon := int(math.Floor(p.Lon + dLon))
	var keys []cellKey
	for la := minLat; la <= maxLat; la++ {
		for lo := minLon; lo <= maxLon; lo++ {
			wrapped := lo
			for wrapped < -180 {
				wrapped += 360
			}
			for wrapped >= 180 {
				wrapped -= 360
			}
			keys = append(keys, cellKey{lat: la, lon: wrapped})
		}
	}
	return keys
}

// Within returns all cities within km kilometres of p, nearest first.
func (g *Gazetteer) Within(p geo.Point, km float64) []City {
	type hit struct {
		c City
		d float64
	}
	var hits []hit
	for _, k := range cellsWithin(p, km) {
		for _, i := range g.cells[k] {
			d := geo.DistanceKm(p, g.cities[i].Loc)
			if d <= km {
				hits = append(hits, hit{g.cities[i], d})
			}
		}
	}
	sort.Slice(hits, func(a, b int) bool {
		if hits[a].d != hits[b].d {
			return hits[a].d < hits[b].d
		}
		return hits[a].c.Name < hits[b].c.Name
	})
	out := make([]City, len(hits))
	for i, h := range hits {
		out[i] = h.c
	}
	return out
}

// MostPopulousWithin returns the most populous city within km kilometres
// of p. ok is false if none exists. This is the paper's "loose" peak→city
// mapping primitive (§4.2).
func (g *Gazetteer) MostPopulousWithin(p geo.Point, km float64) (City, bool) {
	best := -1
	bestPop := -1
	bestName := ""
	for _, k := range cellsWithin(p, km) {
		for _, i := range g.cells[k] {
			if geo.DistanceKm(p, g.cities[i].Loc) > km {
				continue
			}
			c := g.cities[i]
			if c.Pop > bestPop || (c.Pop == bestPop && c.Name < bestName) {
				best, bestPop, bestName = i, c.Pop, c.Name
			}
		}
	}
	if best < 0 {
		return City{}, false
	}
	return g.cities[best], true
}

// Nearest returns the city closest to p within maxKm. ok is false if none
// lies within maxKm.
func (g *Gazetteer) Nearest(p geo.Point, maxKm float64) (City, bool) {
	cities := g.Within(p, maxKm)
	if len(cities) == 0 {
		return City{}, false
	}
	return cities[0], true
}

// Find returns the first city with the given name and country. ok is false
// if absent.
func (g *Gazetteer) Find(name, country string) (City, bool) {
	for _, i := range g.byCountry[country] {
		if g.cities[i].Name == name {
			return g.cities[i], true
		}
	}
	return City{}, false
}
