package geodb

import (
	"testing"
)

func BenchmarkLocate(b *testing.B) {
	// Reuse the package test fixture (one world + crawl).
	w, peers := testSetup(b)
	if len(peers) == 0 {
		b.Fatal("no peers")
	}
	db := NewGeoCity(w)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := peers[i%len(peers)]
		db.Locate(p.IP, p.TrueLoc)
	}
}

func BenchmarkLocatePair(b *testing.B) {
	w, peers := testSetup(b)
	a := NewGeoCity(w)
	c := NewIPLoc(w)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := peers[i%len(peers)]
		ra := a.Locate(p.IP, p.TrueLoc)
		rb := c.Locate(p.IP, p.TrueLoc)
		CrossError(ra, rb)
	}
}
