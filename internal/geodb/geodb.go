// Package geodb provides synthetic IP-geolocation databases standing in
// for the paper's MaxMind GeoIP City and Hexasoft IP2Location DB-15 (§2):
// each maps an IP address to a (city, state, country, coordinates) record
// at zip-code resolution, with its own independent error model.
//
// The pipeline uses one database as the location reference and the
// distance between the two databases' answers as the per-IP geolocation
// error estimate, exactly as §2 prescribes. Because the two error models
// are independently seeded, the cross-database distance has the structure
// the paper's filters rely on: small for correctly-located users (zip
// scatter), moderate for wrong-nearby-city errors, and large for the
// far-outlier tail the 100 km cut removes.
package geodb

import (
	"hash/fnv"

	"eyeballas/internal/astopo"
	"eyeballas/internal/faults"
	"eyeballas/internal/gazetteer"
	"eyeballas/internal/geo"
	"eyeballas/internal/ipnet"
)

// miniRNG is a tiny splitmix64 generator. Locate runs millions of times
// per pipeline build; deriving a full rng.Source per IP would dominate
// the run with allocations, so the database uses this inline generator
// seeded per (database, IP).
type miniRNG struct{ state uint64 }

func (r *miniRNG) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *miniRNG) float64() float64 { return float64(r.next()>>11) / (1 << 53) }

func (r *miniRNG) intn(n int) int { return int(r.next() % uint64(n)) }

// Record is one geolocation answer, the paper's
// (city, state, country, longitude, latitude) tuple.
type Record struct {
	City    string
	State   string
	Country string
	Region  gazetteer.Region
	Loc     geo.Point
	// HasCity is false when the database has no city-level entry for the
	// IP; the pipeline drops such peers (§2 removed 2.4M of them).
	HasCity bool
}

// ErrorModel parameterizes a database's failure modes. Probabilities are
// evaluated in order: NoCity, Far, Nearby; the remainder is the correct
// case (snap to the true metro's nearest zip centroid).
type ErrorModel struct {
	PNoCity  float64 // no city-level record
	PFar     float64 // gross outlier: a city far away in the same region
	PNearby  float64 // wrong neighbouring city
	NearbyKm float64 // radius for the wrong-neighbour draw
	FarMinKm float64 // minimum distance of a gross outlier
}

// DB is one synthetic geolocation database.
type DB struct {
	Name  string
	w     *astopo.World
	model ErrorModel
	seed  uint64
	// regionCities caches per-region city lists for the far-outlier
	// mode; rebuilding them per lookup would dominate that path.
	regionCities map[gazetteer.Region][]gazetteer.City

	// Fault injection (see WithFaults). All nil on an unfaulted
	// database, where Locate pays exactly four nil checks.
	faultSalt   uint64
	injMissBoth *faults.Injector
	injMissOnly *faults.Injector
	injGarbage  *faults.Injector
	injNaN      *faults.Injector
}

// New builds a database over the world's geography. The name seeds the
// error draws, so differently-named databases err independently.
func New(w *astopo.World, name string, model ErrorModel) *DB {
	h := fnv.New64a()
	h.Write([]byte(name))
	db := &DB{Name: name, w: w, model: model, seed: w.Seed ^ h.Sum64(),
		regionCities: make(map[gazetteer.Region][]gazetteer.City)}
	for _, r := range []gazetteer.Region{gazetteer.NA, gazetteer.EU, gazetteer.AS,
		gazetteer.SA, gazetteer.AF, gazetteer.OC} {
		db.regionCities[r] = w.Gazetteer.InRegion(r)
	}
	return db
}

// NewGeoCity returns the primary reference database (MaxMind GeoIP City
// analogue): mostly correct, small wrong-neighbour rate, thin far tail.
func NewGeoCity(w *astopo.World) *DB {
	return New(w, "geocity", ErrorModel{
		PNoCity: 0.015, PFar: 0.008, PNearby: 0.020,
		NearbyKm: 150, FarMinKm: 300,
	})
}

// NewIPLoc returns the secondary database (IP2Location DB-15 analogue):
// slightly noisier, independently seeded.
func NewIPLoc(w *astopo.World) *DB {
	return New(w, "iploc", ErrorModel{
		PNoCity: 0.018, PFar: 0.015, PNearby: 0.060,
		NearbyKm: 150, FarMinKm: 300,
	})
}

// Locate answers the database's record for an IP whose user truly sits at
// trueLoc. Answers are deterministic per (database, IP): repeated lookups
// agree, as they would against a static database file.
//
// trueLoc is the ground truth the synthetic database was "built from"
// (user surveys, registry data — §4.3); a real database file is a frozen
// function of the same information.
func (db *DB) Locate(ip ipnet.Addr, trueLoc geo.Point) Record {
	if db.injMissBoth != nil || db.injMissOnly != nil || db.injGarbage != nil || db.injNaN != nil {
		if rec, injected := db.injectFault(ip); injected {
			return rec
		}
	}
	s := &miniRNG{state: db.seed ^ (uint64(ip) * 0x9e3779b97f4a7c15)}
	m := db.model
	roll := s.float64()
	switch {
	case roll < m.PNoCity:
		return Record{}
	case roll < m.PNoCity+m.PFar:
		return db.farRecord(s, trueLoc)
	case roll < m.PNoCity+m.PFar+m.PNearby:
		if rec, ok := db.nearbyWrongRecord(s, trueLoc); ok {
			return rec
		}
		return db.correctRecord(s, trueLoc)
	default:
		return db.correctRecord(s, trueLoc)
	}
}

// correctRecord snaps the true location to a zip centroid of the true
// metro area — the zip-code resolution of real databases. Databases built
// from different sources resolve the same user to different nearby postal
// codes, so each database picks independently among the closest few.
func (db *DB) correctRecord(s *miniRNG, trueLoc geo.Point) Record {
	var buf [4]gazetteer.ZipCentroid
	n := db.w.Zips.KNearestInto(trueLoc, 120, buf[:])
	if n == 0 {
		return Record{}
	}
	// Weight toward the truly-nearest zip but allow neighbours.
	zip := buf[weightedZip(s, n)]
	city, ok := db.w.Gazetteer.Find(zip.City, zip.Country)
	if !ok {
		return Record{}
	}
	return recordFor(city, zip.Loc)
}

// zipWeights biases the zip choice toward the nearest centroid.
var zipWeights = [4]float64{0.55, 0.25, 0.13, 0.07}

func weightedZip(s *miniRNG, n int) int {
	total := 0.0
	for i := 0; i < n; i++ {
		total += zipWeights[i]
	}
	u := s.float64() * total
	acc := 0.0
	for i := 0; i < n; i++ {
		acc += zipWeights[i]
		if u < acc {
			return i
		}
	}
	return n - 1
}

// nearbyWrongRecord attributes the user to a different city within
// NearbyKm, snapped to one of that city's zips.
func (db *DB) nearbyWrongRecord(s *miniRNG, trueLoc geo.Point) (Record, bool) {
	candidates := db.w.Gazetteer.Within(trueLoc, db.model.NearbyKm)
	trueCity, _ := db.w.Gazetteer.Nearest(trueLoc, 120)
	var wrong []gazetteer.City
	for _, c := range candidates {
		// Satellite towns of the true metro carry the metro's label, so
		// mapping there is not an error.
		if c.MetroName() != trueCity.MetroName() || c.Country != trueCity.Country {
			wrong = append(wrong, c)
		}
	}
	if len(wrong) == 0 {
		return Record{}, false
	}
	c := wrong[s.intn(len(wrong))]
	zip, ok := db.w.Zips.Nearest(c.Loc, c.RadiusKm()+10)
	loc := c.Loc
	if ok {
		loc = zip.Loc
	}
	return recordFor(c, loc), true
}

// farRecord is the gross-outlier mode: the IP is attributed to a distant
// city in the same continental region (e.g. a stale registry entry at the
// ISP's headquarters).
func (db *DB) farRecord(s *miniRNG, trueLoc geo.Point) Record {
	trueCity, ok := db.w.Gazetteer.Nearest(trueLoc, 150)
	region := gazetteer.EU
	if ok {
		region = trueCity.Region
	}
	cities := db.regionCities[region]
	if len(cities) == 0 {
		cities = db.regionCities[gazetteer.EU]
	}
	for try := 0; try < 16; try++ {
		c := cities[s.intn(len(cities))]
		if geo.DistanceKm(c.Loc, trueLoc) >= db.model.FarMinKm {
			return recordFor(c, c.Loc)
		}
	}
	// Dense-region fallback: report the region's largest city.
	return recordFor(cities[0], cities[0].Loc)
}

func recordFor(c gazetteer.City, loc geo.Point) Record {
	return Record{
		// Commercial databases label suburban users with the metro, not
		// the satellite town (satellite towns inherit their parent's
		// administrative labels).
		City:    c.MetroName(),
		State:   c.State,
		Country: c.Country,
		Region:  c.Region,
		Loc:     loc,
		HasCity: true,
	}
}

// CrossError returns the distance in km between two database answers for
// the same IP — the paper's per-IP geolocation error estimate. ok is
// false if either database lacks a city-level record.
func CrossError(a, b Record) (float64, bool) {
	if !a.HasCity || !b.HasCity {
		return 0, false
	}
	return geo.DistanceKm(a.Loc, b.Loc), true
}
