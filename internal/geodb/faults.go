package geodb

import (
	"hash/fnv"
	"math"

	"eyeballas/internal/faults"
	"eyeballas/internal/geo"
	"eyeballas/internal/ipnet"
)

// WithFaults returns a copy of the database with fault injectors from
// the plan attached. missPoint selects which per-database miss knob
// applies on top of the shared faults.GeoMiss — faults.GeoMissA for the
// primary database, faults.GeoMissB for the secondary — so scenarios
// can degrade one database while leaving the other intact (the
// single-DB-fallback drill). faults.GeoGarbage and faults.GeoNaN apply
// to every faulted database.
//
// Injection decisions are keyed by (database name, IP): the same plan
// makes the two databases miss on independent IP sets, exactly like two
// vendors' independent coverage gaps. A nil plan (or all-zero rates)
// returns the receiver unchanged — zero faults means the literal same
// *DB, so the unfaulted path is provably untouched.
func (db *DB) WithFaults(plan *faults.Plan, missPoint faults.Point) *DB {
	if plan == nil || !plan.Enabled() {
		return db
	}
	missBoth := plan.Injector(faults.GeoMiss)
	missOnly := plan.Injector(missPoint)
	garbage := plan.Injector(faults.GeoGarbage)
	nan := plan.Injector(faults.GeoNaN)
	if missBoth == nil && missOnly == nil && garbage == nil && nan == nil {
		return db
	}
	cp := *db
	h := fnv.New64a()
	h.Write([]byte(db.Name))
	cp.faultSalt = h.Sum64()
	cp.injMissBoth = missBoth
	cp.injMissOnly = missOnly
	cp.injGarbage = garbage
	cp.injNaN = nan
	return &cp
}

// injectFault applies the database's fault injectors for one IP,
// before the synthetic error model runs. The precedence is
// miss > NaN > garbage: a missing record preempts everything (there is
// nothing left to corrupt), and a NaN-zip row is a strictly worse
// corruption than out-of-range coordinates.
func (db *DB) injectFault(ip ipnet.Addr) (Record, bool) {
	site := uint64(ip)
	if db.injMissBoth.Hit2(site, db.faultSalt) || db.injMissOnly.Hit2(site, db.faultSalt) {
		return Record{}, true // no city-level record
	}
	if db.injNaN.Hit2(site, db.faultSalt) {
		// A corrupt zip-centroid row: the database answers, but its
		// coordinates are NaN. HasCity is true — the corruption is only
		// detectable by inspecting the coordinates, which is the point.
		return Record{
			City: "nan-zip", Country: "XX", HasCity: true,
			Loc: geo.Point{Lat: math.NaN(), Lon: math.NaN()},
		}, true
	}
	if db.injGarbage.Hit2(site, db.faultSalt) {
		// A wildly-wrong entry: plausible labels, impossible coordinates.
		// The payload bits pick which out-of-range corner, so different
		// IPs get different garbage (and the same IP always the same).
		r := db.injGarbage.Rand(site ^ db.faultSalt)
		lat := 91 + float64(r%8000)/10       // 91 .. 891
		lon := 181 + float64(r>>32%16000)/10 // 181 .. 1781
		if r&1 == 0 {
			lat = -lat
		}
		if r&2 == 0 {
			lon = -lon
		}
		return Record{
			City: "garbage", Country: "XX", HasCity: true,
			Loc: geo.Point{Lat: lat, Lon: lon},
		}, true
	}
	return Record{}, false
}
