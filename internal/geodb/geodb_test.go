package geodb

import (
	"context"
	"sync"
	"testing"

	"eyeballas/internal/astopo"
	"eyeballas/internal/geo"
	"eyeballas/internal/ipnet"
	"eyeballas/internal/p2p"
	"eyeballas/internal/rng"
)

var shared struct {
	once  sync.Once
	world *astopo.World
	peers []p2p.Peer
	err   error
}

// testSetup generates one world + crawl shared by all tests in the
// package; every test reads it immutably.
func testSetup(t testing.TB) (*astopo.World, []p2p.Peer) {
	t.Helper()
	shared.once.Do(func() {
		w, err := astopo.Generate(astopo.SmallConfig(51))
		if err != nil {
			shared.err = err
			return
		}
		c, err := p2p.Run(context.Background(), w, p2p.DefaultConfig(), rng.New(51).Split("p2p"))
		if err != nil {
			shared.err = err
			return
		}
		shared.world, shared.peers = w, c.Peers
	})
	if shared.err != nil {
		t.Fatal(shared.err)
	}
	return shared.world, shared.peers
}

func TestLocateDeterministic(t *testing.T) {
	w, peers := testSetup(t)
	db := NewGeoCity(w)
	for _, p := range peers[:200] {
		r1 := db.Locate(p.IP, p.TrueLoc)
		r2 := db.Locate(p.IP, p.TrueLoc)
		if r1 != r2 {
			t.Fatalf("non-deterministic lookup for %v: %+v vs %+v", p.IP, r1, r2)
		}
	}
}

func TestLocateMostlyAccurate(t *testing.T) {
	w, peers := testSetup(t)
	db := NewGeoCity(w)
	n := 0
	within50 := 0
	noCity := 0
	for _, p := range peers {
		rec := db.Locate(p.IP, p.TrueLoc)
		if !rec.HasCity {
			noCity++
			continue
		}
		n++
		if geo.DistanceKm(rec.Loc, p.TrueLoc) <= 50 {
			within50++
		}
	}
	if n == 0 {
		t.Fatal("no located peers")
	}
	if frac := float64(within50) / float64(n); frac < 0.85 {
		t.Errorf("only %.2f of answers within 50 km of truth", frac)
	}
	// The no-city rate should be a few percent, like the paper's
	// 2.4M / 89.1M ≈ 2.7%.
	if frac := float64(noCity) / float64(len(peers)); frac < 0.002 || frac > 0.08 {
		t.Errorf("no-city rate = %.4f, want a few percent", frac)
	}
}

func TestLocateHasErrorTail(t *testing.T) {
	w, peers := testSetup(t)
	db := NewGeoCity(w)
	far := 0
	n := 0
	for _, p := range peers {
		rec := db.Locate(p.IP, p.TrueLoc)
		if !rec.HasCity {
			continue
		}
		n++
		if geo.DistanceKm(rec.Loc, p.TrueLoc) > 250 {
			far++
		}
	}
	if far == 0 {
		t.Error("error model has no far tail; the 100 km filter would be vacuous")
	}
	if frac := float64(far) / float64(n); frac > 0.05 {
		t.Errorf("far tail %.4f too heavy", frac)
	}
}

func TestTwoDatabasesErrIndependently(t *testing.T) {
	w, peers := testSetup(t)
	a := NewGeoCity(w)
	b := NewIPLoc(w)
	identical := 0
	n := 0
	var errs []float64
	for _, p := range peers {
		ra := a.Locate(p.IP, p.TrueLoc)
		rb := b.Locate(p.IP, p.TrueLoc)
		e, ok := CrossError(ra, rb)
		if !ok {
			continue
		}
		n++
		errs = append(errs, e)
		if ra.Loc == rb.Loc {
			identical++
		}
	}
	if n == 0 {
		t.Fatal("no cross-locatable peers")
	}
	// Zip scatter makes identical answers rare but not impossible.
	if float64(identical)/float64(n) > 0.5 {
		t.Errorf("databases agree exactly on %.2f of IPs; error models not independent?", float64(identical)/float64(n))
	}
	// Most cross-errors are under 100 km (the paper keeps those peers);
	// some exceed it (the filter has work to do).
	under, over := 0, 0
	for _, e := range errs {
		if e <= 100 {
			under++
		} else {
			over++
		}
	}
	if frac := float64(under) / float64(n); frac < 0.80 {
		t.Errorf("only %.2f of cross-errors <= 100 km", frac)
	}
	if over == 0 {
		t.Error("no cross-errors above 100 km")
	}
}

func TestRecordLabelsConsistent(t *testing.T) {
	w, peers := testSetup(t)
	db := NewGeoCity(w)
	for _, p := range peers[:500] {
		rec := db.Locate(p.IP, p.TrueLoc)
		if !rec.HasCity {
			continue
		}
		city, ok := w.Gazetteer.Find(rec.City, rec.Country)
		if !ok {
			t.Fatalf("record names unknown city %s/%s", rec.City, rec.Country)
		}
		if city.State != rec.State || city.Region != rec.Region {
			t.Fatalf("record labels inconsistent with gazetteer: %+v vs %+v", rec, city)
		}
		// Reported location is within the named metro area (zip
		// resolution, including satellite-town zips up to 2.2 metro
		// radii out), not the exact user location.
		if geo.DistanceKm(rec.Loc, city.Loc) > city.RadiusKm()*2.2+15 {
			t.Errorf("record loc %.1f km from named city %s", geo.DistanceKm(rec.Loc, city.Loc), rec.City)
		}
	}
}

func TestCrossErrorNoCity(t *testing.T) {
	if _, ok := CrossError(Record{}, Record{HasCity: true}); ok {
		t.Error("CrossError with a missing record should be !ok")
	}
}

func TestLocateOceanUser(t *testing.T) {
	w, _ := testSetup(t)
	db := NewGeoCity(w)
	rec := db.Locate(ipnet.MakeAddr(1, 2, 3, 4), geo.Point{Lat: 0, Lon: -35})
	if rec.HasCity {
		// A correct-mode lookup for a mid-ocean "user" must fail to find
		// a zip; only far-outlier mode can return something, which is
		// acceptable. Verify the answer at least names a real city.
		if _, ok := w.Gazetteer.Find(rec.City, rec.Country); !ok {
			t.Errorf("ocean lookup returned unknown city %+v", rec)
		}
	}
}
