package geodb

import (
	"math"
	"testing"

	"eyeballas/internal/astopo"
	"eyeballas/internal/faults"
	"eyeballas/internal/geo"
	"eyeballas/internal/ipnet"
)

func faultWorld(t *testing.T) *astopo.World {
	t.Helper()
	w, err := astopo.Generate(astopo.SmallConfig(51))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestWithFaultsNilPlanIsSameDB: no plan (or an all-zero one) must hand
// back the identical *DB — the unfaulted path provably untouched.
func TestWithFaultsNilPlanIsSameDB(t *testing.T) {
	w := faultWorld(t)
	db := NewGeoCity(w)
	if db.WithFaults(nil, faults.GeoMissA) != db {
		t.Error("nil plan returned a copy")
	}
	p := faults.NewPlan(1) // no rates set
	if db.WithFaults(p, faults.GeoMissA) != db {
		t.Error("all-zero plan returned a copy")
	}
	// A plan with only unrelated points set is also a no-op for geodb.
	if err := p.Set(faults.OriginMiss, 0.5); err != nil {
		t.Fatal(err)
	}
	if db.WithFaults(p, faults.GeoMissA) != db {
		t.Error("plan without geo points returned a copy")
	}
}

// TestWithFaultsMissRateAndIndependence: geo-miss must raise the miss
// rate by roughly the injected amount, deterministically, and the two
// databases must miss on (mostly) different IPs.
func TestWithFaultsMissRateAndIndependence(t *testing.T) {
	w := faultWorld(t)
	p := faults.NewPlan(7)
	if err := p.Set(faults.GeoMiss, 0.3); err != nil {
		t.Fatal(err)
	}
	a := NewGeoCity(w).WithFaults(p, faults.GeoMissA)
	b := NewIPLoc(w).WithFaults(p, faults.GeoMissB)
	loc := geo.Point{Lat: 45, Lon: 9}
	const n = 20000
	missA, missB, missBoth := 0, 0, 0
	for ip := 0; ip < n; ip++ {
		ra := a.Locate(ipnet.Addr(ip), loc)
		rb := b.Locate(ipnet.Addr(ip), loc)
		if !ra.HasCity {
			missA++
		}
		if !rb.HasCity {
			missB++
		}
		if !ra.HasCity && !rb.HasCity {
			missBoth++
		}
		// Determinism: a second lookup answers identically.
		if a.Locate(ipnet.Addr(ip), loc) != ra {
			t.Fatalf("ip %d: repeated lookup disagrees", ip)
		}
	}
	// Baseline PNoCity is ~1.5–1.8%; injected 30% dominates.
	fa, fb := float64(missA)/n, float64(missB)/n
	if fa < 0.25 || fa > 0.40 || fb < 0.25 || fb > 0.40 {
		t.Errorf("miss fracs %.3f %.3f, want ≈0.3", fa, fb)
	}
	// Independent sets: joint miss ≈ product, nowhere near min(fa, fb).
	joint := float64(missBoth) / n
	if joint > 0.2 {
		t.Errorf("joint miss frac %.3f — databases missing on the same IPs", joint)
	}
}

// TestWithFaultsMissPointTargetsOneDB: geo-miss-b must degrade only the
// database constructed with that point.
func TestWithFaultsMissPointTargetsOneDB(t *testing.T) {
	w := faultWorld(t)
	p := faults.NewPlan(9)
	if err := p.Set(faults.GeoMissB, 0.5); err != nil {
		t.Fatal(err)
	}
	a := NewGeoCity(w).WithFaults(p, faults.GeoMissA)
	b := NewIPLoc(w).WithFaults(p, faults.GeoMissB)
	loc := geo.Point{Lat: 45, Lon: 9}
	const n = 10000
	missA, missB := 0, 0
	for ip := 0; ip < n; ip++ {
		if !a.Locate(ipnet.Addr(ip), loc).HasCity {
			missA++
		}
		if !b.Locate(ipnet.Addr(ip), loc).HasCity {
			missB++
		}
	}
	if fa := float64(missA) / n; fa > 0.05 {
		t.Errorf("primary miss frac %.3f under geo-miss-b only", fa)
	}
	if fb := float64(missB) / n; fb < 0.45 || fb > 0.60 {
		t.Errorf("secondary miss frac %.3f, want ≈0.5", fb)
	}
}

// TestWithFaultsGarbageAndNaN: the corruption modes must answer
// HasCity records whose coordinates are detectably invalid.
func TestWithFaultsGarbageAndNaN(t *testing.T) {
	w := faultWorld(t)
	p := faults.NewPlan(11)
	if err := p.Set(faults.GeoGarbage, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := p.Set(faults.GeoNaN, 0.25); err != nil {
		t.Fatal(err)
	}
	db := NewGeoCity(w).WithFaults(p, faults.GeoMissA)
	loc := geo.Point{Lat: 45, Lon: 9}
	garbage, nans := 0, 0
	const n = 10000
	for ip := 0; ip < n; ip++ {
		rec := db.Locate(ipnet.Addr(ip), loc)
		if !rec.HasCity {
			continue
		}
		switch {
		case math.IsNaN(rec.Loc.Lat) || math.IsNaN(rec.Loc.Lon):
			nans++
		case math.Abs(rec.Loc.Lat) > 90 || math.Abs(rec.Loc.Lon) > 180:
			garbage++
		}
	}
	if garbage == 0 || nans == 0 {
		t.Fatalf("garbage=%d nans=%d over %d lookups — injectors never fired", garbage, nans, n)
	}
	// NaN wins precedence over garbage where both fire; rough shares only.
	if f := float64(garbage) / n; f < 0.2 {
		t.Errorf("garbage frac %.3f, want near 0.375 (0.5 of non-NaN)", f)
	}
}
