package pipeline

import (
	"eyeballas/internal/astopo"
	"eyeballas/internal/ipnet"
)

// defaultDedupShards is the shard count for the streaming dedup set.
// 256 shards keep each shard's map two orders of magnitude smaller
// than a single global map, which bounds the transient of any one
// incremental rehash to ~1/256 of the kept-IP set.
const defaultDedupShards = 256

// shardedSet is the streaming unique-IP set: membership sharded by the
// top bits of a splitmix64 hash of the address. Semantically it is a
// plain set — Add(a) reports first sight of a, independent of insertion
// order or batching — but physically each shard is its own map, so
// growth happens in per-shard steps instead of one crawl-sized doubling
// spike, and the peak overhead of a resize is bounded per shard.
//
// The top bits (rather than a modulus over the raw address) spread
// structured address space: crawled IPs cluster heavily by prefix, and
// the finalizer decorrelates the shard choice from that structure so
// shards stay balanced.
type shardedSet struct {
	shift  uint
	shards []map[ipnet.Addr]struct{}
}

// newShardedSet builds a set with nshards rounded up to a power of two
// (nshards <= 0 selects defaultDedupShards).
func newShardedSet(nshards int) *shardedSet {
	if nshards <= 0 {
		nshards = defaultDedupShards
	}
	pow := 1
	for pow < nshards {
		pow <<= 1
	}
	return &shardedSet{
		shift:  uint(64 - bitsFor(pow)),
		shards: make([]map[ipnet.Addr]struct{}, pow),
	}
}

// bitsFor returns log2 of a power of two.
func bitsFor(pow int) int {
	b := 0
	for pow > 1 {
		pow >>= 1
		b++
	}
	return b
}

// Add inserts a and reports whether it was absent (first sight).
func (s *shardedSet) Add(a ipnet.Addr) bool {
	i := mix64(uint64(a)) >> s.shift
	m := s.shards[i]
	if m == nil {
		m = make(map[ipnet.Addr]struct{})
		s.shards[i] = m
	}
	if _, dup := m[a]; dup {
		return false
	}
	m[a] = struct{}{}
	return true
}

// Len returns the number of distinct addresses seen.
func (s *shardedSet) Len() int {
	n := 0
	for _, m := range s.shards {
		n += len(m)
	}
	return n
}

// mix64 is the splitmix64 finalizer — the same full-avalanche mix the
// faults package uses for schedule-free injection decisions.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// reservoirSlot returns the Algorithm R replacement slot for the i-th
// (0-based) sample of an AS: a uniform draw over [0, i] derived purely
// from (asn, i), so reservoir contents are a function of arrival order
// alone — no RNG state, nothing for batching or workers to perturb.
func reservoirSlot(asn astopo.ASN, i int) int {
	h := mix64(uint64(uint32(asn))<<32 | uint64(uint32(i)))
	return int(h % uint64(i+1))
}
