package pipeline

import (
	"context"
	"fmt"

	"eyeballas/internal/astopo"
	"eyeballas/internal/bgp"
	"eyeballas/internal/core"
	"eyeballas/internal/faults"
	"eyeballas/internal/geodb"
	"eyeballas/internal/obs"
	"eyeballas/internal/p2p"
	"eyeballas/internal/parallel"
	"eyeballas/internal/stats"
	"eyeballas/internal/trace"
)

// BuildStream runs steps 2–4 of the methodology over a peer stream —
// the bounded-memory ingestion engine behind Build.
//
// Peers are consumed in fixed-size batches (cfg.BatchSize) through the
// worker pool: per-batch locate verdicts are index-addressed, then
// folded serially in stream order into the dataset under construction —
// a sharded unique-IP set for dedup and per-AS accumulators instead of
// a crawl-sized verdict slice. Peak memory is therefore O(kept users +
// batch), not O(crawled peers); with cfg.MaxSamplesPerAS the kept-user
// term shrinks further to O(ASes·cap + dedup set).
//
// Determinism is inherited, not re-argued: batch boundaries depend only
// on the stream and BatchSize (never on workers), folds happen in
// arrival order, fault-injection decisions are keyed by peer identity
// (IP/app), and the error or panic that surfaces is the one at the
// lowest stream position. The differential harness in
// stream_diff_test.go pins the result bit-identical to the frozen batch
// reference across batch sizes, worker counts, and fault plans.
//
// src must be replayable (see p2p.PeerSource): the single-DB fallback
// re-opens the stream for its rescue pass instead of re-reading a
// materialized crawl. The funnel, spans ("pipeline.build" → "locate",
// "aggregate", "condition"), budgets, and fault wiring are the same as
// the batch path's; Dataset.Stream additionally reports the engine's
// deterministic memory accounting.
func BuildStream(ctx context.Context, src p2p.PeerSource, dbA, dbB *geodb.DB, origins bgp.Resolver, cfg Config) (*Dataset, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, fmt.Errorf("pipeline: BuildStream requires a peer source")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	span := cfg.Obs.StartSpan("pipeline.build")
	defer span.End()
	// Mirror the build's stage spans under a request trace when the
	// context carries one (eyeballpipe -trace-out, or a future online
	// rebuild); nil otherwise, making every use a branch-only no-op.
	tb := trace.FromContext(ctx).Child("pipeline.build")
	defer tb.End()

	// Fault wiring: identical to the batch path — injection sites key
	// on peer identity, so batching cannot move a decision.
	dbA = dbA.WithFaults(cfg.Faults, faults.GeoMissA)
	if dbB != nil {
		dbB = dbB.WithFaults(cfg.Faults, faults.GeoMissB)
	}
	origins = bgp.WithFaults(origins, cfg.Faults)
	wp := cfg.Faults.Injector(faults.WorkerPanic)

	funnel := obs.NewFunnel("pipeline")
	cfg.Obs.RegisterFunnel(funnel)
	stGeo := funnel.Stage("geolocate").DeclareReasons("no_city", "garbage_coord", "high_geo_err")
	stOrigin := funnel.Stage("origin").DeclareReasons("unmapped_ip")
	stDedup := funnel.Stage("dedup").DeclareReasons("dup_ip")
	stCond := funnel.Stage("condition").DeclareReasons("small_as", "high_err_as")

	ds := &Dataset{Funnel: funnel}

	checked, _ := origins.(bgp.CheckedResolver)
	lookupsC := cfg.Obs.Counter("eyeball_bgp_origin_lookups_total")

	secondary := dbB
	if cfg.SingleDB {
		secondary = nil
		ds.Degraded = true
		ds.DegradedReason = "single-db mode requested (no cross-database error estimates)"
	}

	agg := newStreamAgg(cfg)
	locSpan := span.Child("locate")
	tLoc := tb.Child("locate")
	err := streamPass(ctx, src, dbA, secondary, origins, checked, cfg, wp, lookupsC, agg)
	tLoc.SetInt("crawled", int64(agg.crawled))
	tLoc.End()
	locSpan.End()
	if err != nil {
		return nil, err
	}
	counts := agg.counts
	n := agg.crawled

	// Geolocate-stage error budget — same rule and same diagnosis
	// strings as the batch path; the fallback rescue replays the stream
	// with the surviving database instead of re-scanning a slice.
	if cfg.MaxGeoMissFrac > 0 && secondary != nil && n > 0 {
		missFrac := float64(counts.noCity+counts.garbage) / float64(n)
		if missFrac > cfg.MaxGeoMissFrac {
			fracA := float64(counts.missA) / float64(n)
			fracB := float64(counts.missB) / float64(n)
			blameA := fracA > cfg.MaxGeoMissFrac
			blameB := fracB > cfg.MaxGeoMissFrac
			if !cfg.SingleDBFallback || blameA == blameB {
				return nil, &BudgetError{
					Stage: "geolocate",
					Reason: fmt.Sprintf("%.4f of %d crawled peers lost to missing/corrupt geolocation records (%s miss frac %.4f, %s miss frac %.4f)",
						missFrac, n, dbA.Name, fracA, dbB.Name, fracB),
					Frac:   missFrac,
					Budget: cfg.MaxGeoMissFrac,
				}
			}
			survivor := dbA
			lostDB, lostFrac := dbB, fracB
			if blameA {
				survivor = dbB
				lostDB, lostFrac = dbA, fracA
			}
			fbSpan := span.Child("locate_single_db_fallback")
			tFb := tb.Child("locate_single_db_fallback")
			agg = newStreamAgg(cfg)
			err = streamPass(ctx, src, survivor, nil, origins, checked, cfg, wp, lookupsC, agg)
			tFb.End()
			fbSpan.End()
			if err != nil {
				return nil, err
			}
			if agg.crawled != n {
				return nil, fmt.Errorf("pipeline: fallback replay delivered %d peers, first pass saw %d — peer source is not replayable", agg.crawled, n)
			}
			counts = agg.counts
			ds.Degraded = true
			ds.DegradedReason = fmt.Sprintf(
				"single-db fallback: %s miss fraction %.4f exceeded budget %.4f; rebuilt from %s only (no cross-database error estimates)",
				lostDB.Name, lostFrac, cfg.MaxGeoMissFrac, survivor.Name)
			if cfg.Obs != nil {
				cfg.Obs.Counter("eyeball_pipeline_degraded_builds_total", "reason", "single_db_fallback").Inc()
			}
		}
	}

	// Origin-stage error budget: unmapped peers as a fraction of the
	// peers that survived geolocation.
	geoOut := n - counts.noCity - counts.garbage - counts.highGeoErr
	if cfg.MaxOriginMissFrac > 0 && geoOut > 0 {
		missFrac := float64(counts.unmapped) / float64(geoOut)
		if missFrac > cfg.MaxOriginMissFrac {
			return nil, &BudgetError{
				Stage: "origin",
				Reason: fmt.Sprintf("%.4f of %d geolocated peers matched no BGP prefix",
					missFrac, geoOut),
				Frac:   missFrac,
				Budget: cfg.MaxOriginMissFrac,
			}
		}
	}

	// Aggregation already happened inside the locate pass (each fold
	// merged its batch); this hands the accumulated state to the
	// dataset and publishes the memory watermarks.
	aggSpan := span.Child("aggregate")
	tAgg := tb.Child("aggregate")
	ds.CrawledPeers = n
	agg.finish(ds, cfg)
	tAgg.End()
	aggSpan.End()

	// Flush the peer-level funnel stages once per reason — only now,
	// after the budget gates, matching the batch path's behaviour of
	// leaving a failed build's funnel unflushed.
	stGeo.In(n)
	stGeo.Drop("no_city", counts.noCity)
	stGeo.Drop("garbage_coord", counts.garbage)
	stGeo.Drop("high_geo_err", counts.highGeoErr)
	stGeo.Out(geoOut)
	stOrigin.In(geoOut)
	stOrigin.Drop("unmapped_ip", counts.unmapped)
	originOut := geoOut - counts.unmapped
	stOrigin.Out(originOut)
	stDedup.In(originOut)
	stDedup.Drop("dup_ip", agg.dup)
	stDedup.Out(originOut - agg.dup)
	ds.Drops.NoCityRecord = counts.noCity
	ds.Drops.GarbageCoord = counts.garbage
	ds.Drops.HighGeoErr = counts.highGeoErr
	ds.Drops.UnmappedIP = counts.unmapped
	ds.Drops.DupIP = agg.dup

	condSpan := span.Child("condition")
	tCond := tb.Child("condition")
	out, err := condition(ctx, ds, cfg, stCond, agg.accs)
	if out != nil {
		tCond.SetInt("ases", int64(len(out.Order)))
	}
	tCond.End()
	condSpan.End()
	return out, err
}

// streamPass drives one full locate pass over a freshly opened stream,
// folding every batch into agg. It is the streaming analogue of
// runLocate + the aggregation loop, fused so no crawl-sized state ever
// exists.
func streamPass(ctx context.Context, src p2p.PeerSource, primary, secondary *geodb.DB, origins bgp.Resolver, checked bgp.CheckedResolver, cfg Config, wp *faults.Injector, lookupsC *obs.Counter, agg *streamAgg) error {
	st, err := src.Stream(ctx)
	if err != nil {
		return err
	}
	return parallel.Batched(ctx, cfg.Workers, cfg.BatchSize,
		func(buf []p2p.Peer) (int, error) { return st.Next(buf) },
		func(i int, peer p2p.Peer) (located, error) {
			if wp.Hit(uint64(peer.IP)) {
				panic(fmt.Sprintf("faults: injected worker panic at peer %s", peer.IP))
			}
			return locateOne(peer, primary, secondary, origins, checked, cfg)
		},
		func(batch []p2p.Peer, results []located) error {
			return agg.fold(batch, results, lookupsC)
		})
}

// asAcc is the streaming per-AS accumulator of a capped
// (MaxSamplesPerAS > 0) build: the true user count and the quantile
// sketch the P90 geo error comes from. In exact mode no accumulators
// exist — ASRecord.Samples itself is the complete state.
type asAcc struct {
	users  int
	sketch *stats.QuantileSketch
}

// streamAgg accumulates one locate pass: drop tallies, the dataset's
// AS records, the sharded dedup set, and the deterministic memory
// watermarks. All mutation happens in fold, serially, in stream order.
type streamAgg struct {
	cfg     Config
	ases    map[astopo.ASN]*ASRecord
	seen    *shardedSet
	accs    map[astopo.ASN]*asAcc // nil in exact mode
	counts  passCounts
	crawled int
	dup     int

	batches, maxBatch     int
	liveSamples, peakLive int
}

func newStreamAgg(cfg Config) *streamAgg {
	g := &streamAgg{
		cfg:  cfg,
		ases: make(map[astopo.ASN]*ASRecord),
		seen: newShardedSet(defaultDedupShards),
	}
	if cfg.MaxSamplesPerAS > 0 {
		g.accs = make(map[astopo.ASN]*asAcc)
	}
	return g
}

// fold merges one batch of verdicts, in stream order. It reproduces the
// batch path's aggregation loop exactly — same drop tallies, same
// first-seen-keeps-sample dedup rule, same per-app counting — plus the
// origin-lookup counter flush runLocate did per block.
func (g *streamAgg) fold(batch []p2p.Peer, results []located, lookupsC *obs.Counter) error {
	g.crawled += len(batch)
	g.batches++
	if len(batch) > g.maxBatch {
		g.maxBatch = len(batch)
	}
	var lookups int64
	for i := range results {
		r := &results[i]
		switch r.drop {
		case dropNoCity:
			g.counts.noCity++
		case dropGarbage:
			g.counts.garbage++
		case dropHighGeoErr:
			g.counts.highGeoErr++
		case dropUnmappedIP:
			g.counts.unmapped++
		}
		if r.missA {
			g.counts.missA++
		}
		if r.missB {
			g.counts.missB++
		}
		if r.drop == dropNone || r.drop == dropUnmappedIP {
			lookups++ // an origin lookup was actually performed
		}
		if r.drop != dropNone {
			continue
		}
		peer := batch[i]
		rec := g.ases[r.asn]
		if rec == nil {
			rec = &ASRecord{ASN: r.asn, PeersByApp: make(map[p2p.App]int)}
			g.ases[r.asn] = rec
		}
		if !g.seen.Add(peer.IP) {
			// Unique-IP semantics (§2: "89.1 million unique IP
			// addresses"): the sample is stored once but still counts in
			// this app's column.
			rec.PeersByApp[peer.App]++
			g.dup++
			continue
		}
		rec.PeersByApp[peer.App]++
		g.addSample(rec, r.asn, r.sample)
	}
	lookupsC.Add(lookups)
	if g.liveSamples > g.peakLive {
		g.peakLive = g.liveSamples
	}
	return nil
}

// addSample stores one kept sample: appended outright in exact mode, or
// through the deterministic Algorithm R reservoir when MaxSamplesPerAS
// caps retention (the sketch still sees every value).
func (g *streamAgg) addSample(rec *ASRecord, asn astopo.ASN, s core.Sample) {
	capN := g.cfg.MaxSamplesPerAS
	if capN <= 0 {
		rec.Samples = append(rec.Samples, s)
		g.liveSamples++
		return
	}
	acc := g.accs[asn]
	if acc == nil {
		acc = &asAcc{sketch: stats.NewQuantileSketch(0.90, capN)}
		g.accs[asn] = acc
	}
	acc.sketch.Add(s.GeoErrKm)
	i := acc.users
	acc.users++
	if i < capN {
		rec.Samples = append(rec.Samples, s)
		g.liveSamples++
		return
	}
	if j := reservoirSlot(asn, i); j < capN {
		rec.Samples[j] = s
	}
}

// finish hands the accumulated state to the dataset and publishes the
// peak gauges.
func (g *streamAgg) finish(ds *Dataset, cfg Config) {
	ds.ASes = g.ases
	batch := cfg.BatchSize
	if batch <= 0 {
		batch = parallel.DefaultBatchSize
	}
	ds.Stream = &StreamStats{
		BatchSize:       batch,
		Batches:         g.batches,
		MaxBatch:        g.maxBatch,
		DedupEntries:    g.seen.Len(),
		PeakLiveSamples: g.peakLive,
	}
	if cfg.Obs != nil {
		cfg.Obs.Gauge("eyeball_pipeline_stream_peak_live_samples").SetMax(float64(g.peakLive))
		cfg.Obs.Gauge("eyeball_pipeline_stream_dedup_entries").SetMax(float64(g.seen.Len()))
		cfg.Obs.Counter("eyeball_pipeline_stream_batches_total").Add(int64(g.batches))
	}
}

// CrawlSource returns the generative peer source Run and RunStream
// consume for (w, crawlCfg, crawlSeed) — exposed so callers can export
// (p2p.WritePeers) or re-ingest the exact crawl sequence of a seed.
func CrawlSource(w *astopo.World, crawlCfg p2p.Config, crawlSeed uint64) p2p.PeerSource {
	return p2p.NewCrawlSource(w, crawlCfg, seedSource(crawlSeed))
}

// BuildFromSource runs steps 2–4 over an arbitrary replayable peer
// source, deriving the geolocation databases and BGP origin tables from
// the world — the streaming entry point for pre-crawled (e.g.
// file-backed) peers. The peers must come from the same world.
func BuildFromSource(ctx context.Context, w *astopo.World, src p2p.PeerSource, cfg Config) (*Dataset, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	span := cfg.Obs.StartSpan("pipeline.run")
	defer span.End()
	origins, err := originTable(ctx, w, cfg, span)
	if err != nil {
		return nil, err
	}
	return BuildStream(ctx, src, geodb.NewGeoCity(w), geodb.NewIPLoc(w), origins, cfg)
}

// RunStream is Run's streaming counterpart: crawl, origin tables, and
// conditioning with the crawl generated unit by unit and fed straight
// into BuildStream — no *p2p.Crawl is ever materialized, so the run's
// peak memory is bounded by kept users, not crawl size. The dataset is
// bit-identical to Run's for the same inputs (Run itself drains the
// same generative source).
func RunStream(ctx context.Context, w *astopo.World, crawlCfg p2p.Config, cfg Config, crawlSeed uint64) (*Dataset, error) {
	ds, _, err := RunStreamExport(ctx, w, crawlCfg, cfg, crawlSeed)
	return ds, err
}

// RunStreamExport is RunStream plus the compiled origin table the build
// resolved peers against — the streaming counterpart of RunExport, used
// by the snapshot writer.
func RunStreamExport(ctx context.Context, w *astopo.World, crawlCfg p2p.Config, cfg Config, crawlSeed uint64) (*Dataset, *bgp.OriginTable, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	span := cfg.Obs.StartSpan("pipeline.run")
	defer span.End()
	if crawlCfg.Obs == nil {
		crawlCfg.Obs = cfg.Obs
	}
	if crawlCfg.Faults == nil {
		crawlCfg.Faults = cfg.Faults
	}
	origins, err := originTable(ctx, w, cfg, span)
	if err != nil {
		return nil, nil, err
	}
	src := p2p.NewCrawlSource(w, crawlCfg, seedSource(crawlSeed))
	ds, err := BuildStream(ctx, src, geodb.NewGeoCity(w), geodb.NewIPLoc(w), origins, cfg)
	if err != nil {
		return nil, nil, err
	}
	return ds, origins, nil
}
