package pipeline

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"eyeballas/internal/astopo"
	"eyeballas/internal/bgp"
	"eyeballas/internal/geodb"
	"eyeballas/internal/ipnet"
	"eyeballas/internal/obs"
	"eyeballas/internal/p2p"
	"eyeballas/internal/parallel"
)

// TestFunnelInvariant is the conservation satellite: every crawled peer
// is either in the final dataset, dropped at a peer-level stage, or
// inside an AS dropped whole — the funnel closes over the crawl exactly.
func TestFunnelInvariant(t *testing.T) {
	_, ds, crawl := setup(t)

	if ds.Funnel == nil {
		t.Fatal("Dataset.Funnel must be populated even without a registry")
	}
	if err := ds.Funnel.Check(); err != nil {
		t.Fatalf("funnel conservation violated: %v", err)
	}
	if ds.CrawledPeers != len(crawl.Peers) {
		t.Fatalf("CrawledPeers = %d, want %d", ds.CrawledPeers, len(crawl.Peers))
	}

	stages := ds.Funnel.Stages()
	if len(stages) != 4 {
		t.Fatalf("got %d stages, want 4", len(stages))
	}
	geo, cond := stages[0], stages[3]
	if got := geo.InCount(); got != int64(len(crawl.Peers)) {
		t.Fatalf("geolocate in = %d, want crawl size %d", got, len(crawl.Peers))
	}
	if got := cond.OutCount(); got != int64(ds.TotalPeers) {
		t.Fatalf("condition out = %d, want TotalPeers %d", got, ds.TotalPeers)
	}

	// The exact ISSUE invariant: crawl == kept + peer-level drops +
	// peers inside dropped ASes.
	peerDrops := int64(ds.Drops.NoCityRecord + ds.Drops.HighGeoErr + ds.Drops.UnmappedIP + ds.Drops.DupIP)
	asDropPeers := cond.DropCount("small_as") + cond.DropCount("high_err_as")
	if got := int64(ds.TotalPeers) + peerDrops + asDropPeers; got != int64(len(crawl.Peers)) {
		t.Fatalf("accounting leaks: kept %d + peer drops %d + AS-drop peers %d = %d != crawl %d",
			ds.TotalPeers, peerDrops, asDropPeers, got, len(crawl.Peers))
	}

	// Drops must be an exact view over the funnel.
	if int64(ds.Drops.NoCityRecord) != geo.DropCount("no_city") ||
		int64(ds.Drops.HighGeoErr) != geo.DropCount("high_geo_err") ||
		int64(ds.Drops.UnmappedIP) != stages[1].DropCount("unmapped_ip") ||
		int64(ds.Drops.DupIP) != stages[2].DropCount("dup_ip") {
		t.Fatalf("Drops diverged from funnel: %+v vs %s", ds.Drops, ds.Funnel.Summary())
	}
}

// failingResolver implements bgp.CheckedResolver and fails on the Nth
// checked lookup — the error-injection fixture for the Blocks-error
// satellite.
type failingResolver struct {
	inner   bgp.Resolver
	failAt  int64
	lookups atomic.Int64
}

func (f *failingResolver) OriginOf(a ipnet.Addr) (astopo.ASN, bool) {
	return f.inner.OriginOf(a)
}

func (f *failingResolver) OriginOfChecked(a ipnet.Addr) (astopo.ASN, bool, error) {
	if f.lookups.Add(1) > f.failAt {
		return 0, false, errors.New("injected resolver failure")
	}
	asn, ok := f.inner.OriginOf(a)
	return asn, ok, nil
}

// infallibleChecked wraps a Resolver as a CheckedResolver that never
// errors, to prove the checked path changes nothing.
type infallibleChecked struct{ inner bgp.Resolver }

func (r infallibleChecked) OriginOf(a ipnet.Addr) (astopo.ASN, bool) { return r.inner.OriginOf(a) }
func (r infallibleChecked) OriginOfChecked(a ipnet.Addr) (astopo.ASN, bool, error) {
	asn, ok := r.inner.OriginOf(a)
	return asn, ok, nil
}

func buildOrigins(t *testing.T, w *astopo.World) *bgp.OriginTable {
	t.Helper()
	routing := bgp.ComputeRouting(w)
	var ribs []*bgp.RIB
	for _, a := range w.ASes() {
		if a.Kind != astopo.KindTier1 {
			continue
		}
		rib, err := bgp.BuildRIB(w, routing, a.ASN)
		if err != nil {
			t.Fatal(err)
		}
		if ribs = append(ribs, rib); len(ribs) == 3 {
			break
		}
	}
	return bgp.NewOriginTable(ribs...)
}

// TestBuildPropagatesResolverError is the satellite fix for the
// discarded parallel.Blocks error: a failing origin lookup must abort
// Build with the lookup's error, under both serial and parallel workers.
func TestBuildPropagatesResolverError(t *testing.T) {
	w, _, crawl := setup(t)
	origins := buildOrigins(t, w)
	dbA, dbB := geodb.NewGeoCity(w), geodb.NewIPLoc(w)

	for _, workers := range []int{1, 8} {
		// Serial mode fails mid-stream (failAt=10) to exercise the
		// early-exit path; parallel mode fails on every lookup so the
		// lowest-index-wins error rule is deterministic regardless of
		// worker scheduling.
		var failAt int64
		if workers == 1 {
			failAt = 10
		}
		_, err := Build(context.Background(), crawl, dbA, dbB, &failingResolver{inner: origins, failAt: failAt},
			Config{MaxGeoErrKm: 100, MaxP90GeoErrKm: 80, MinPeers: 60, Workers: workers})
		if err == nil {
			t.Fatalf("workers=%d: Build swallowed the resolver error", workers)
		}
		if !strings.Contains(err.Error(), "injected resolver failure") {
			t.Fatalf("workers=%d: wrong error: %v", workers, err)
		}
	}
}

// TestCheckedResolverMatchesPlainPath: routing lookups through the
// checked interface (when it never fails) must be invisible — the
// dataset is bit-identical to the plain-Resolver path.
func TestCheckedResolverMatchesPlainPath(t *testing.T) {
	w, _, crawl := setup(t)
	origins := buildOrigins(t, w)
	dbA, dbB := geodb.NewGeoCity(w), geodb.NewIPLoc(w)

	plain, err := Build(context.Background(), crawl, dbA, dbB, struct{ bgp.Resolver }{origins}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	checked, err := Build(context.Background(), crawl, dbA, dbB, infallibleChecked{origins}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	assertDatasetsIdentical(t, plain, checked)
}

// TestDatasetIdenticalWithRegistry extends the determinism proof to an
// active observability registry: metrics on, metrics off, and every
// worker count must all produce bit-identical datasets.
func TestDatasetIdenticalWithRegistry(t *testing.T) {
	w, _, _ := setup(t)

	run := func(workers int, reg *obs.Registry) *Dataset {
		cfg := DefaultConfig()
		cfg.Workers = workers
		cfg.Obs = reg
		if reg != nil {
			// Include the pool metrics so their timing hooks are active
			// during the run.
			parallel.SetMetrics(parallel.MetricsFrom(reg))
			defer parallel.SetMetrics(nil)
		}
		ds, _, err := Run(context.Background(), w, p2p.DefaultConfig(), cfg, 71)
		if err != nil {
			t.Fatalf("workers=%d obs=%v: %v", workers, reg != nil, err)
		}
		return ds
	}

	bare := run(1, nil)
	instrumentedSerial := run(1, obs.New())
	instrumentedWide := run(8, obs.New())
	assertDatasetsIdentical(t, bare, instrumentedSerial)
	assertDatasetsIdentical(t, bare, instrumentedWide)
}

// TestRegistryExposesPipelineMetrics checks the wiring end to end: one
// instrumented Run must populate the crawl counters, the
// shard-aggregated origin-lookup counter, the per-AS P90 histogram, the
// funnel families, and the span tree.
func TestRegistryExposesPipelineMetrics(t *testing.T) {
	w, _, crawl := setup(t)
	reg := obs.New()
	cfg := DefaultConfig()
	cfg.Obs = reg
	ds, _, err := Run(context.Background(), w, p2p.DefaultConfig(), cfg, 71)
	if err != nil {
		t.Fatal(err)
	}

	// Shard-aggregated origin lookups: one per peer surviving geolocation.
	wantLookups := int64(len(crawl.Peers) - ds.Drops.NoCityRecord - ds.Drops.HighGeoErr)
	if got := reg.Counter("eyeball_bgp_origin_lookups_total").Value(); got != wantLookups {
		t.Fatalf("origin lookups = %d, want %d", got, wantLookups)
	}

	// Crawl counters: per-app peers sum to the crawl size.
	var peers int64
	for _, app := range p2p.Apps {
		peers += reg.Counter("eyeball_crawl_peers_total", "app", app.String()).Value()
	}
	if peers != int64(len(crawl.Peers)) {
		t.Fatalf("crawl peer counters sum to %d, want %d", peers, len(crawl.Peers))
	}

	var prom bytes.Buffer
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	out := prom.String()
	for _, want := range []string{
		"eyeball_pipeline_as_p90_geoerr_km_bucket",
		`eyeball_funnel_peers_total{funnel="pipeline",stage="geolocate",dir="in"}`,
		`eyeball_funnel_drops_total{funnel="pipeline",stage="condition",reason="small_as"}`,
		"eyeball_bgp_origin_prefixes",
		"eyeball_bgp_compiles_total",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}

	// The span tree must include the pipeline stages.
	var trace bytes.Buffer
	if err := reg.WriteTrace(&trace); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"pipeline.run", "pipeline.build", "locate", "aggregate", "condition", "p2p.crawl", "bgp.origin_table"} {
		if !strings.Contains(trace.String(), want) {
			t.Fatalf("trace missing span %q:\n%s", want, trace.String())
		}
	}

	// Per-AS drop counters agree with Drops.
	if got := reg.Counter("eyeball_pipeline_as_dropped_total", "reason", "small_as").Value(); got != int64(ds.Drops.SmallAS) {
		t.Fatalf("small_as AS counter = %d, want %d", got, ds.Drops.SmallAS)
	}
}
