package pipeline

import (
	"context"
	"testing"

	"eyeballas/internal/geodb"
	"eyeballas/internal/obs"
	"eyeballas/internal/p2p"
	"eyeballas/internal/trace"
)

// traceCrawl returns a small prefix of the shared fixture crawl — big
// enough to survive conditioning, small enough to keep the trace tests
// out of the differential harness's runtime class.
func traceCrawl(t *testing.T) (*p2p.Crawl, *Dataset, func(context.Context) (*Dataset, error)) {
	t.Helper()
	w, _, full := setup(t)
	crawl := full
	if len(crawl.Peers) > 10000 {
		crawl = &p2p.Crawl{Peers: full.Peers[:10000]}
	}
	origins := buildOrigins(t, w)
	dbA, dbB := geodb.NewGeoCity(w), geodb.NewIPLoc(w)
	build := func(ctx context.Context) (*Dataset, error) {
		return Build(ctx, crawl, dbA, dbB, origins, DefaultConfig())
	}
	ref, err := build(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return crawl, ref, build
}

// TestBuildTraceTree pins the stage-span shape a traced build hangs
// under a request trace: pipeline.build with locate (crawled attr),
// aggregate, and condition (ases attr) children, in stage order.
func TestBuildTraceTree(t *testing.T) {
	_, ref, build := traceCrawl(t)
	tracer := trace.New(trace.Options{Seed: 7})
	root := tracer.Start("test.build")
	ctx := trace.NewContext(context.Background(), root)
	ds, err := build(ctx)
	if err != nil {
		t.Fatal(err)
	}
	root.End()

	tree := root.Tree()
	if len(tree.Children) != 1 || tree.Children[0].Name != "pipeline.build" {
		t.Fatalf("root children = %+v, want one pipeline.build", tree.Children)
	}
	b := tree.Children[0]
	var names []string
	for _, c := range b.Children {
		names = append(names, c.Name)
	}
	want := []string{"locate", "aggregate", "condition"}
	if len(names) != len(want) {
		t.Fatalf("stage spans = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("stage spans = %v, want %v", names, want)
		}
	}
	if got := attrValue(t, b.Children[0], "crawled"); got != "10000" {
		t.Errorf("locate crawled attr = %q, want 10000", got)
	}
	if got := attrValue(t, b.Children[2], "ases"); got == "" {
		t.Error("condition span lacks ases attr")
	}
	// The traced build's output is the reference output: tracing is
	// observation only.
	assertDatasetsIdentical(t, ref, ds)
	assertFunnelsIdentical(t, "traced", ref, ds)
}

func attrValue(t *testing.T, n obs.TreeNode, key string) string {
	t.Helper()
	for _, a := range n.Attrs {
		if a.Key == key {
			return a.Val
		}
	}
	return ""
}

// TestBuildStreamTraceMatchesBatchShape: the streaming entry point hangs
// the same stage spans as Build (which routes through it), and a build
// with no trace in the context produces a bit-identical dataset — the
// nil-span fast path cannot influence results.
func TestBuildUntracedIdentical(t *testing.T) {
	_, ref, build := traceCrawl(t)
	ds, err := build(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	assertDatasetsIdentical(t, ref, ds)
}
