package pipeline

import (
	"context"
	"math"
	"testing"

	"eyeballas/internal/astopo"
	"eyeballas/internal/bgp"
	"eyeballas/internal/core"
	"eyeballas/internal/geodb"
	"eyeballas/internal/ipnet"
	"eyeballas/internal/p2p"
)

// assertDatasetsIdentical is the bit-level dataset comparison shared by
// the determinism tests: same AS order, same drop counters, same
// per-sample fields bit-for-bit.
func assertDatasetsIdentical(t *testing.T, serial, wide *Dataset) {
	t.Helper()
	if len(serial.Order) != len(wide.Order) {
		t.Fatalf("AS counts differ: %d vs %d", len(serial.Order), len(wide.Order))
	}
	for i := range serial.Order {
		if serial.Order[i] != wide.Order[i] {
			t.Fatalf("Order[%d] differs: %d vs %d", i, serial.Order[i], wide.Order[i])
		}
	}
	if serial.Drops != wide.Drops {
		t.Fatalf("drop counters differ: %+v vs %+v", serial.Drops, wide.Drops)
	}
	if serial.TotalPeers != wide.TotalPeers {
		t.Fatalf("TotalPeers differs: %d vs %d", serial.TotalPeers, wide.TotalPeers)
	}
	for _, asn := range serial.Order {
		a, b := serial.AS(asn), wide.AS(asn)
		if a.Class != b.Class || a.Region != b.Region {
			t.Fatalf("AS %d classification differs: %v/%v vs %v/%v",
				asn, a.Class, a.Region, b.Class, b.Region)
		}
		if math.Float64bits(a.P90GeoErrKm) != math.Float64bits(b.P90GeoErrKm) {
			t.Fatalf("AS %d p90 differs bitwise: %v vs %v", asn, a.P90GeoErrKm, b.P90GeoErrKm)
		}
		if len(a.Samples) != len(b.Samples) {
			t.Fatalf("AS %d sample counts differ: %d vs %d", asn, len(a.Samples), len(b.Samples))
		}
		for i := range a.Samples {
			if a.Samples[i] != b.Samples[i] {
				t.Fatalf("AS %d sample %d differs: %+v vs %+v", asn, i, a.Samples[i], b.Samples[i])
			}
		}
		if len(a.PeersByApp) != len(b.PeersByApp) {
			t.Fatalf("AS %d app maps differ", asn)
		}
		for app, n := range a.PeersByApp {
			if b.PeersByApp[app] != n {
				t.Fatalf("AS %d app %v count differs: %d vs %d", asn, app, n, b.PeersByApp[app])
			}
		}
	}
}

// TestRunDeterministicAcrossWorkers is the pipeline's half of the
// determinism guarantee: a full Run with Workers=1 and Workers=8 must
// produce byte-identical datasets — same AS order, same drop counters,
// same per-sample fields bit-for-bit — because every parallel stage is
// index-addressed and aggregation applies results in a fixed order.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	w, _, _ := setup(t)

	run := func(workers int) *Dataset {
		cfg := DefaultConfig()
		cfg.Workers = workers
		ds, _, err := Run(context.Background(), w, p2p.DefaultConfig(), cfg, 71)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return ds
	}
	serial := run(1)
	wide := run(8)
	assertDatasetsIdentical(t, serial, wide)
}

// trieOrigins adapts an OriginTable to its uncompiled reference path, so
// Build can be run against the mutable radix trie.
type trieOrigins struct{ ot *bgp.OriginTable }

func (r trieOrigins) OriginOf(a ipnet.Addr) (astopo.ASN, bool) {
	return r.ot.OriginOfUncompiled(a)
}

// TestBuildCompiledMatchesTriePath is the compiled-LPM half of the
// determinism guarantee: running the full Build stage with origin
// lookups served by the compiled flat table must produce a dataset
// bit-identical to one served by the mutable radix trie — the compilation
// wiring changes performance only, never output.
func TestBuildCompiledMatchesTriePath(t *testing.T) {
	w, _, crawl := setup(t)

	// Reconstruct Run's origin table for the shared fixture's world.
	routing := bgp.ComputeRouting(w)
	var ribs []*bgp.RIB
	for _, a := range w.ASes() {
		if a.Kind != astopo.KindTier1 {
			continue
		}
		rib, err := bgp.BuildRIB(w, routing, a.ASN)
		if err != nil {
			t.Fatal(err)
		}
		if ribs = append(ribs, rib); len(ribs) == 3 {
			break
		}
	}
	origins := bgp.NewOriginTable(ribs...)
	dbA, dbB := geodb.NewGeoCity(w), geodb.NewIPLoc(w)

	compiled, err := Build(context.Background(), crawl, dbA, dbB, origins, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	trie, err := Build(context.Background(), crawl, dbA, dbB, trieOrigins{origins}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	assertDatasetsIdentical(t, compiled, trie)
}

// TestFootprintGridDeterministicAcrossWorkers closes the loop end-to-end:
// the KDE surface of a real conditioned AS (not a synthetic sample cloud)
// must be bit-identical between a serial and a wide run.
func TestFootprintGridDeterministicAcrossWorkers(t *testing.T) {
	w, ds, _ := setup(t)
	if len(ds.Order) == 0 {
		t.Fatal("empty dataset")
	}
	// Use the best-sampled AS so the grid is non-trivial.
	rec := ds.AS(ds.Order[0])
	for _, asn := range ds.Order[1:] {
		if r := ds.AS(asn); len(r.Samples) > len(rec.Samples) {
			rec = r
		}
	}
	fp1, err := core.EstimateFootprint(w.Gazetteer, rec.Samples, core.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	fp8, err := core.EstimateFootprint(w.Gazetteer, rec.Samples, core.Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if fp1.Grid.W != fp8.Grid.W || fp1.Grid.H != fp8.Grid.H {
		t.Fatalf("grid geometry differs: %dx%d vs %dx%d", fp1.Grid.W, fp1.Grid.H, fp8.Grid.W, fp8.Grid.H)
	}
	for i := range fp1.Grid.Data {
		if math.Float64bits(fp1.Grid.Data[i]) != math.Float64bits(fp8.Grid.Data[i]) {
			t.Fatalf("grid cell %d differs bitwise: %.17g vs %.17g",
				i, fp1.Grid.Data[i], fp8.Grid.Data[i])
		}
	}
	if math.Float64bits(fp1.Dmax) != math.Float64bits(fp8.Dmax) {
		t.Fatalf("Dmax differs: %v vs %v", fp1.Dmax, fp8.Dmax)
	}
	if len(fp1.PoPs) != len(fp8.PoPs) {
		t.Fatalf("PoP counts differ: %d vs %d", len(fp1.PoPs), len(fp8.PoPs))
	}
	for i := range fp1.PoPs {
		if fp1.PoPs[i].City != fp8.PoPs[i].City ||
			math.Float64bits(fp1.PoPs[i].Density) != math.Float64bits(fp8.PoPs[i].Density) {
			t.Fatalf("PoP %d differs: %+v vs %+v", i, fp1.PoPs[i], fp8.PoPs[i])
		}
	}
}
