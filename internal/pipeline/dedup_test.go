package pipeline

import (
	"encoding/binary"
	"testing"

	"eyeballas/internal/astopo"
	"eyeballas/internal/ipnet"
)

// TestShardedSetMatchesMap: the sharded set is semantically a plain set
// under a deterministic adversarial stream — dense duplicates, clustered
// prefixes (the shape real crawls have), and a shard count that forces
// collisions.
func TestShardedSetMatchesMap(t *testing.T) {
	for _, shards := range []int{1, 3, 256} {
		s := newShardedSet(shards)
		ref := make(map[ipnet.Addr]struct{})
		x := uint64(42)
		for i := 0; i < 50000; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			// Clustered low entropy: many /24-style repeats.
			a := ipnet.Addr(0x0A000000 | uint32(x>>52)<<8 | uint32(x>>32)&0xFF)
			_, dup := ref[a]
			ref[a] = struct{}{}
			if got := s.Add(a); got == dup {
				t.Fatalf("shards=%d: Add(%v) first-sight=%v, reference says dup=%v", shards, a, got, dup)
			}
		}
		if s.Len() != len(ref) {
			t.Fatalf("shards=%d: Len %d != reference %d", shards, s.Len(), len(ref))
		}
	}
}

// TestReservoirSlotUniformRange: reservoirSlot must always land in
// [0, i] — Algorithm R's correctness precondition — and be a pure
// function of (asn, i).
func TestReservoirSlotUniformRange(t *testing.T) {
	for _, asn := range []astopo.ASN{1, 7143, 65535} {
		for i := 0; i < 10000; i++ {
			j := reservoirSlot(asn, i)
			if j < 0 || j > i {
				t.Fatalf("reservoirSlot(%d, %d) = %d outside [0, %d]", asn, i, j, i)
			}
			if j != reservoirSlot(asn, i) {
				t.Fatalf("reservoirSlot(%d, %d) not pure", asn, i)
			}
		}
	}
}

// FuzzShardedDedup: random peer sequences — duplicates straddling any
// batching the fuzzer invents — must agree exactly with a reference map,
// decision by decision, for every shard count. The 16-bit address space
// makes duplicates dense; the shard count byte explores degenerate
// (0 → default, 1, tiny, large) configurations.
func FuzzShardedDedup(f *testing.F) {
	f.Add([]byte{0, 1, 0, 1, 0, 2, 0, 1}, uint8(0))
	f.Add([]byte{9, 9, 9, 9, 9, 9, 9, 9, 1, 2}, uint8(1))
	f.Add([]byte{255, 0, 0, 255, 255, 0, 13, 37}, uint8(200))
	f.Fuzz(func(t *testing.T, data []byte, shardsRaw uint8) {
		s := newShardedSet(int(shardsRaw))
		ref := make(map[ipnet.Addr]struct{})
		for i := 0; i+1 < len(data); i += 2 {
			a := ipnet.Addr(binary.BigEndian.Uint16(data[i : i+2]))
			_, dup := ref[a]
			ref[a] = struct{}{}
			if got := s.Add(a); got == dup {
				t.Fatalf("Add(%v) first-sight=%v, reference says dup=%v", a, got, dup)
			}
		}
		if s.Len() != len(ref) {
			t.Fatalf("Len %d != reference %d", s.Len(), len(ref))
		}
	})
}
