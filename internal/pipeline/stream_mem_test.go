package pipeline

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"eyeballas/internal/astopo"
	"eyeballas/internal/geodb"
	"eyeballas/internal/p2p"
)

// TestStreamStatsAccounting pins the deterministic memory ledger of an
// exact-mode streaming build: the dedup set holds exactly the kept
// unique users (== the condition stage's input), the live-sample
// watermark equals it (samples only accumulate in exact mode), and the
// batch counts follow from the input size alone.
func TestStreamStatsAccounting(t *testing.T) {
	w, _, crawl := setup(t)
	origins := buildOrigins(t, w)
	cfg := DefaultConfig()
	cfg.BatchSize = 1024
	ds, err := Build(context.Background(), crawl, geodb.NewGeoCity(w), geodb.NewIPLoc(w), origins, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := ds.Stream
	if st == nil {
		t.Fatal("streaming build carries no StreamStats")
	}
	kept := int64(st.DedupEntries)
	if in := ds.Funnel.Stage("condition").InCount(); in != kept {
		t.Fatalf("dedup set tracked %d IPs but the condition stage saw %d peers", kept, in)
	}
	if st.PeakLiveSamples != st.DedupEntries {
		t.Fatalf("exact-mode peak live samples %d != kept unique users %d", st.PeakLiveSamples, st.DedupEntries)
	}
	n := len(crawl.Peers)
	if want := (n + 1023) / 1024; st.Batches != want {
		t.Fatalf("%d batches over %d peers at 1024, want %d", st.Batches, n, want)
	}
}

// TestCappedModeLargeCapIsExact: a cap no AS reaches changes nothing —
// reservoir never evicts, the sketch stays in its exact regime — so the
// dataset is bit-identical to the uncapped reference, with Users filled.
func TestCappedModeLargeCapIsExact(t *testing.T) {
	w, _, crawl := setup(t)
	origins := buildOrigins(t, w)
	dbA, dbB := geodb.NewGeoCity(w), geodb.NewIPLoc(w)
	ref, err := buildBatch(context.Background(), crawl, dbA, dbB, origins, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.MaxSamplesPerAS = 1 << 20
	cfg.BatchSize = 777
	got, err := Build(context.Background(), crawl, dbA, dbB, origins, cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertDatasetsIdentical(t, ref, got)
	for _, asn := range got.Order {
		rec := got.AS(asn)
		if rec.Users != len(rec.Samples) {
			t.Fatalf("AS %d: Users %d != len(Samples) %d under a non-binding cap", asn, rec.Users, len(rec.Samples))
		}
	}
}

// TestCappedModeBoundedAndDeterministic: with a binding cap the build
// keeps at most cap samples per AS while carrying true user counts, the
// funnel still conserves every crawled peer, and the result is
// bit-identical across batch sizes and worker counts (reservoir slots
// and sketch state are pure functions of arrival order).
func TestCappedModeBoundedAndDeterministic(t *testing.T) {
	w, _, crawl := setup(t)
	origins := buildOrigins(t, w)
	dbA, dbB := geodb.NewGeoCity(w), geodb.NewIPLoc(w)
	const capN = 25 // well below MinPeers=100, so every kept AS is capped

	build := func(batch, workers int) *Dataset {
		cfg := DefaultConfig()
		cfg.MaxSamplesPerAS = capN
		cfg.BatchSize = batch
		cfg.Workers = workers
		ds, err := Build(context.Background(), crawl, dbA, dbB, origins, cfg)
		if err != nil {
			t.Fatalf("batch=%d workers=%d: %v", batch, workers, err)
		}
		return ds
	}
	a := build(7, 8)
	b := build(1024, 1)
	assertDatasetsIdentical(t, a, b)
	assertFunnelsIdentical(t, "capped", a, b)

	if err := a.Funnel.Check(); err != nil {
		t.Fatalf("capped funnel conservation broken: %v", err)
	}
	sumUsers := 0
	for _, asn := range a.Order {
		rec := a.AS(asn)
		if len(rec.Samples) != capN {
			t.Fatalf("AS %d retained %d samples, want exactly the cap %d", asn, len(rec.Samples), capN)
		}
		if rec.Users < DefaultConfig().MinPeers {
			t.Fatalf("AS %d kept with %d users below MinPeers", asn, rec.Users)
		}
		sumUsers += rec.Users
	}
	if sumUsers != a.TotalPeers {
		t.Fatalf("sum of Users %d != TotalPeers %d", sumUsers, a.TotalPeers)
	}
	// The live-sample watermark is bounded by cap × (every AS that ever
	// held a kept peer: survivors plus the AS-level drops).
	ases := len(a.Order) + a.Drops.SmallAS + a.Drops.HighErrAS
	if a.Stream.PeakLiveSamples > capN*ases {
		t.Fatalf("peak live samples %d exceed cap(%d) × ASes(%d)", a.Stream.PeakLiveSamples, capN, ases)
	}
	if a.Stream.PeakLiveSamples >= a.Stream.DedupEntries {
		t.Fatalf("binding cap did not shrink live samples: peak %d vs %d kept users",
			a.Stream.PeakLiveSamples, a.Stream.DedupEntries)
	}
}

// TestBuildStreamPeakHeapBounded is the satellite's live-heap assertion:
// a generative streaming build over a 10× crawl, sampled with
// runtime.ReadMemStats, must peak under a fixed per-kept-user byte
// budget plus a constant — i.e. memory tracks what is kept, not what is
// crawled. The budget (512 B/user + 48 MiB) is several times the true
// footprint, so the test fails only when ingestion regresses to
// materializing crawl-sized state, not from allocator noise.
func TestBuildStreamPeakHeapBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("10× crawl memory probe skipped in -short")
	}
	w, err := astopo.Generate(astopo.SmallConfig(71))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	origins, err := originTable(context.Background(), w, cfg, cfg.Obs.StartSpan("mem-test"))
	if err != nil {
		t.Fatal(err)
	}
	dbA, dbB := geodb.NewGeoCity(w), geodb.NewIPLoc(w)
	crawlCfg := p2p.DefaultConfig()
	crawlCfg.Scale *= 10
	src := p2p.NewCrawlSource(w, crawlCfg, seedSource(71))

	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)
	sampler := startMemSampler()
	ds, err := BuildStream(context.Background(), src, dbA, dbB, origins, cfg)
	peak := sampler.finish()
	if err != nil {
		t.Fatal(err)
	}
	kept := ds.Stream.DedupEntries
	if kept == 0 {
		t.Fatal("10× crawl kept no users")
	}
	// Fixed multiple of the kept-user count: 512 B per kept user (the
	// true live footprint is a Sample plus dedup/AS-map entries, well
	// under half that) plus a constant for GC float and batch buffers.
	budget := base.HeapAlloc + uint64(kept)*512 + 48<<20
	if peak > budget {
		t.Fatalf("peak live heap %.1f MiB over budget %.1f MiB (base %.1f MiB, %d kept users of %d crawled)",
			float64(peak)/(1<<20), float64(budget)/(1<<20), float64(base.HeapAlloc)/(1<<20), kept, ds.CrawledPeers)
	}
	t.Logf("crawled=%d kept=%d base=%.1f MiB peak=%.1f MiB budget=%.1f MiB",
		ds.CrawledPeers, kept, float64(base.HeapAlloc)/(1<<20), float64(peak)/(1<<20), float64(budget)/(1<<20))
}

func benchStream(b *testing.B, batch bool) {
	env, err := benchSetupOnce()
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Workers = 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var ds *Dataset
		var err error
		if batch {
			ds, err = buildBatch(context.Background(), env.crawl, env.dbA, env.dbB, env.origins, cfg)
		} else {
			ds, err = Build(context.Background(), env.crawl, env.dbA, env.dbB, env.origins, cfg)
		}
		if err != nil {
			b.Fatal(err)
		}
		sinkTotal += int64(ds.TotalPeers)
	}
}

var sinkTotal int64

// BenchmarkBuildStream / BenchmarkBuildBatch are the PR's acceptance
// pair: same crawl, same thresholds, streaming ingestion vs the frozen
// batch reference. scripts/bench_stream.sh compares their B/op into
// BENCH_pr6.json — the streaming path must not allocate more than the
// batch path it replaces.
func BenchmarkBuildStream(b *testing.B) { benchStream(b, false) }

func BenchmarkBuildBatch(b *testing.B) { benchStream(b, true) }

// memSampler polls the live heap while a build runs.
type memSampler struct {
	stop chan struct{}
	done chan struct{}
	peak atomic.Uint64
}

func startMemSampler() *memSampler {
	s := &memSampler{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		var m runtime.MemStats
		for {
			select {
			case <-s.stop:
				return
			case <-time.After(2 * time.Millisecond):
				runtime.ReadMemStats(&m)
				if m.HeapAlloc > s.peak.Load() {
					s.peak.Store(m.HeapAlloc)
				}
			}
		}
	}()
	return s
}

func (s *memSampler) finish() uint64 {
	close(s.stop)
	<-s.done
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	if m.HeapAlloc > s.peak.Load() {
		s.peak.Store(m.HeapAlloc)
	}
	return s.peak.Load()
}
