// Package pipeline implements the paper's four-step methodology (§2):
// sample end users (P2P crawls), map them to locations (two geolocation
// databases with a cross-database error estimate), group them by AS
// (BGP origin tables), and condition the result into the target dataset
// of eligible eyeball ASes.
//
// All filters use the paper's thresholds: peers whose cross-database
// geolocation error exceeds 100 km are dropped, ASes with fewer than
// MinPeers peers are dropped, and ASes whose 90th-percentile geolocation
// error exceeds 80 km are dropped so a fixed 40 km kernel bandwidth is
// valid for every remaining AS (§3.1).
//
// # Failure model
//
// The method is an exercise in surviving dirty measurement data, and
// the pipeline degrades in controlled ways rather than silently
// absorbing arbitrarily bad input:
//
//   - Records with corrupt coordinates (NaN or out of range) are
//     dropped with their own funnel reason ("garbage_coord") instead of
//     flowing into the KDE as poisoned samples.
//   - Optional error budgets (MaxGeoMissFrac, MaxOriginMissFrac) bound
//     how much peer loss at the geolocate and origin stages is
//     tolerable; a blown budget fails the build fast with a typed
//     *BudgetError instead of quietly producing a thin dataset.
//   - When exactly one geolocation database blows the geo budget and
//     SingleDBFallback is set, the build reruns with the surviving
//     database alone and marks the dataset Degraded — cross-database
//     error estimates are gone, which the caller must surface.
//   - Cancellation (SIGINT in the CLIs) is observed at worker-pool
//     block boundaries; a cancelled build returns ctx.Err() and no
//     partial dataset.
//   - A panicking worker (including the faults.WorkerPanic injection)
//     surfaces as a *parallel.PanicError carrying the captured stack.
//
// Deterministic fault injection for all of the above lives in
// internal/faults and is wired through Config.Faults.
package pipeline

import (
	"context"
	"fmt"
	"math"
	"sort"

	"eyeballas/internal/astopo"
	"eyeballas/internal/bgp"
	"eyeballas/internal/core"
	"eyeballas/internal/faults"
	"eyeballas/internal/gazetteer"
	"eyeballas/internal/geodb"
	"eyeballas/internal/ipnet"
	"eyeballas/internal/obs"
	"eyeballas/internal/p2p"
	"eyeballas/internal/parallel"
	"eyeballas/internal/rng"
	"eyeballas/internal/stats"
	"eyeballas/internal/trace"
)

// seedSource derives the crawl's RNG stream from a seed.
func seedSource(seed uint64) *rng.Source { return rng.New(seed).Split("p2p") }

// Config holds the conditioning thresholds.
type Config struct {
	// MaxGeoErrKm drops individual peers with larger cross-database
	// error; the paper uses 100 km ("the diameter of a typical
	// metropolitan area", §2).
	MaxGeoErrKm float64
	// MaxP90GeoErrKm drops whole ASes whose 90th-percentile geo error
	// exceeds it; the paper uses 80 km (§3.1).
	MaxP90GeoErrKm float64
	// MinPeers drops ASes with fewer usable peers. The paper uses 1000
	// at 89M-crawl scale; the default here is scaled to the synthetic
	// crawl size.
	MinPeers int
	// Workers bounds the goroutines used by the parallel stages (per-peer
	// geolocation, per-AS conditioning, per-vantage RIB construction);
	// 0 means GOMAXPROCS, 1 forces serial execution. Output is
	// byte-identical for every setting: results are index-addressed and
	// aggregation always applies them in a fixed order.
	Workers int
	// Obs receives pipeline metrics: the stage funnel, per-stage spans,
	// the per-AS P90 geo-error histogram, and the shard-aggregated
	// origin-lookup counter. nil disables exposition; the funnel itself
	// is always built (Dataset.Drops and the CLI summary are views over
	// it), and datasets are bit-identical with or without a registry.
	Obs *obs.Registry

	// MaxGeoMissFrac is the geolocate-stage error budget: the maximum
	// tolerable fraction of crawled peers lost to missing or corrupt
	// geolocation records (funnel reasons no_city + garbage_coord).
	// Exceeding it fails the build with a *BudgetError — unless
	// SingleDBFallback applies (see below). 0 disables the budget.
	MaxGeoMissFrac float64
	// MaxOriginMissFrac is the origin-stage error budget: the maximum
	// tolerable fraction of geolocated peers that match no BGP prefix
	// (funnel reason unmapped_ip). Exceeding it fails the build with a
	// *BudgetError. 0 disables the budget.
	MaxOriginMissFrac float64
	// SingleDB builds from the primary database alone: no secondary
	// lookups, no cross-database error estimates (GeoErrKm is 0 for
	// every sample and the error filters pass trivially). The dataset
	// is marked Degraded.
	SingleDB bool
	// SingleDBFallback permits a dual-database build whose geo budget
	// is blown by exactly one database to rerun with the surviving
	// database alone instead of failing. The result is marked Degraded
	// with the reason recorded. Requires MaxGeoMissFrac > 0 to ever
	// trigger.
	SingleDBFallback bool
	// Faults is the deterministic fault-injection plan (nil = none).
	// Build wraps the databases and the origin resolver with the
	// plan's injectors and arms the worker-panic injection; Run
	// additionally passes the plan to the crawl. A nil plan — or one
	// whose rates are all zero — yields a bit-identical dataset to no
	// plan at all.
	Faults *faults.Plan

	// BatchSize is the number of peers per streaming ingestion batch
	// (see BuildStream); <= 0 selects parallel.DefaultBatchSize. The
	// batch size bounds transient memory only — datasets are
	// bit-identical for every setting, exactly as for Workers.
	BatchSize int
	// MaxSamplesPerAS, when positive, caps per-AS sample retention
	// during streaming ingestion: each AS keeps a deterministic
	// reservoir of at most this many samples, the true user count is
	// carried separately (ASRecord.Users), and the AS's P90 geo error
	// comes from a streaming quantile sketch (exact below the cap,
	// P²-approximate above it — see stats.QuantileSketch). 0 keeps
	// every sample: exact statistics, bit-identical to the batch path,
	// at O(kept users) memory.
	MaxSamplesPerAS int
}

// DefaultConfig returns thresholds for the default synthetic scale
// (~paper/75 peers ⇒ proportionally scaled peer floor).
func DefaultConfig() Config {
	return Config{MaxGeoErrKm: 100, MaxP90GeoErrKm: 80, MinPeers: 100}
}

// PaperConfig returns the paper's literal thresholds (for full-scale
// runs).
func PaperConfig() Config {
	return Config{MaxGeoErrKm: 100, MaxP90GeoErrKm: 80, MinPeers: 1000}
}

func (c Config) validate() error {
	if c.MaxGeoErrKm <= 0 || c.MaxP90GeoErrKm <= 0 {
		return fmt.Errorf("pipeline: error thresholds must be positive")
	}
	if c.MinPeers < 1 {
		return fmt.Errorf("pipeline: MinPeers must be >= 1")
	}
	for _, b := range []struct {
		name string
		v    float64
	}{{"MaxGeoMissFrac", c.MaxGeoMissFrac}, {"MaxOriginMissFrac", c.MaxOriginMissFrac}} {
		if b.v < 0 || b.v > 1 || math.IsNaN(b.v) {
			return fmt.Errorf("pipeline: %s %v outside [0,1]", b.name, b.v)
		}
	}
	if c.BatchSize < 0 {
		return fmt.Errorf("pipeline: BatchSize must be >= 0 (0 = default)")
	}
	if c.MaxSamplesPerAS < 0 {
		return fmt.Errorf("pipeline: MaxSamplesPerAS must be >= 0 (0 = keep all)")
	}
	return nil
}

// BudgetError reports a blown per-stage error budget: the build
// observed a failure fraction beyond what the caller declared
// tolerable, and failed fast instead of conditioning a thin dataset.
type BudgetError struct {
	Stage  string  // "geolocate" or "origin"
	Reason string  // human-readable diagnosis
	Frac   float64 // observed failure fraction
	Budget float64 // the configured cap it exceeded
}

// Error renders the budget violation on one line.
func (e *BudgetError) Error() string {
	return fmt.Sprintf("pipeline: %s error budget exceeded: %s (%.4f > %.4f)",
		e.Stage, e.Reason, e.Frac, e.Budget)
}

// ASRecord is one eligible eyeball AS in the target dataset.
type ASRecord struct {
	ASN     astopo.ASN
	Samples []core.Sample
	// Users is the number of distinct usable users observed in this AS.
	// It equals len(Samples) unless Config.MaxSamplesPerAS capped the
	// retained samples, in which case Samples is a uniform reservoir
	// and Users carries the true count.
	Users int
	// PeersByApp counts usable peer observations per application
	// (Table 1's "#Peers by source"); a user seen by two crawlers counts
	// once in Samples but in both app columns.
	PeersByApp map[p2p.App]int
	// Class is the §2 geographic classification from database labels.
	Class core.Classification
	// Region is the dominant continental region of the AS's samples.
	Region gazetteer.Region
	// P90GeoErrKm is the 90th percentile of per-sample geo error.
	P90GeoErrKm float64
}

// Drops accounts for every discarded observation or AS.
type Drops struct {
	NoCityRecord int // either database lacked a city-level record
	GarbageCoord int // a database answered corrupt coordinates (NaN / out of range)
	HighGeoErr   int // cross-database error above MaxGeoErrKm
	UnmappedIP   int // no origin AS in the BGP tables
	DupIP        int // same IP already seen (kept once in samples)
	SmallAS      int // ASes below MinPeers
	HighErrAS    int // ASes above MaxP90GeoErrKm
}

// Dataset is the conditioned target dataset.
type Dataset struct {
	ASes  map[astopo.ASN]*ASRecord
	Order []astopo.ASN // ascending ASN
	Drops Drops
	// TotalPeers is the number of usable samples across all eligible
	// ASes (the paper's 48M).
	TotalPeers int
	// CrawledPeers is the crawl size the funnel started from (the
	// paper's 89.1M).
	CrawledPeers int
	// Funnel is the stage-by-stage accounting of this build:
	// geolocate → origin → dedup → condition, with per-reason drop
	// counts. It is always populated (even with Config.Obs == nil);
	// Drops is a fixed-shape view over the same counts, and
	// Funnel.Check() proves conservation: every crawled peer is either
	// in TotalPeers, dropped at a peer-level stage, or inside a
	// dropped AS.
	Funnel *obs.Funnel
	// Degraded is true when the dataset was built without the
	// cross-database error estimate — either SingleDB was requested or
	// the single-DB fallback fired. Per-sample GeoErrKm is then 0 and
	// the geo-error filters passed trivially; downstream consumers
	// must treat error-sensitive conclusions accordingly.
	Degraded bool
	// DegradedReason says why (empty when Degraded is false).
	DegradedReason string
	// Stream is the streaming engine's deterministic memory accounting
	// (nil for the frozen batch reference path). Its counts are pure
	// functions of the input stream and BatchSize — identical for every
	// worker count — which is what lets tests pin memory behaviour
	// without GC flakiness.
	Stream *StreamStats
}

// StreamStats reports how a streaming build consumed its input.
type StreamStats struct {
	// BatchSize is the resolved ingestion batch size.
	BatchSize int
	// Batches is the number of batches folded.
	Batches int
	// MaxBatch is the largest batch actually delivered by the source.
	MaxBatch int
	// DedupEntries is the number of distinct kept-peer IPs the sharded
	// dedup set tracked (the O(kept users) term of peak memory).
	DedupEntries int
	// PeakLiveSamples is the high-watermark of samples held across all
	// per-AS accumulators — equal to kept unique users when
	// MaxSamplesPerAS is 0, and bounded by ASes·cap when it is set.
	PeakLiveSamples int
}

// AS returns the record for an AS, or nil.
func (d *Dataset) AS(n astopo.ASN) *ASRecord { return d.ASes[n] }

// Records returns all records in ascending-ASN order.
func (d *Dataset) Records() []*ASRecord {
	out := make([]*ASRecord, len(d.Order))
	for i, n := range d.Order {
		out[i] = d.ASes[n]
	}
	return out
}

// located is the per-peer result of the (parallel) geolocation stage.
type located struct {
	sample core.Sample
	asn    astopo.ASN
	drop   dropKind
	// missA/missB record which database lacked a city-level record for
	// this peer (dual-database passes only) — the per-database blame
	// the single-DB fallback decision needs.
	missA, missB bool
}

type dropKind int8

const (
	dropNone dropKind = iota
	dropNoCity
	dropGarbage
	dropHighGeoErr
	dropUnmappedIP
)

// passCounts tallies one locate pass.
type passCounts struct {
	noCity, garbage, highGeoErr, unmapped int
	missA, missB                          int
}

func tally(results []located) passCounts {
	var c passCounts
	for i := range results {
		switch results[i].drop {
		case dropNoCity:
			c.noCity++
		case dropGarbage:
			c.garbage++
		case dropHighGeoErr:
			c.highGeoErr++
		case dropUnmappedIP:
			c.unmapped++
		}
		if results[i].missA {
			c.missA++
		}
		if results[i].missB {
			c.missB++
		}
	}
	return c
}

// Build runs steps 2–4 of the methodology over a finished crawl.
// Geolocation and origin lookups are pure per-peer functions, so they run
// on all CPUs; aggregation preserves crawl order, keeping the result
// byte-identical to a sequential run.
//
// Since the streaming refactor, Build is a thin wrapper over
// BuildStream on an in-memory stream of the crawl's peers — one
// ingestion engine serves both shapes, and the differential harness in
// stream_diff_test.go proves it bit-identical to the frozen batch
// reference (buildBatch) for every batch size, worker count, and fault
// plan.
//
// origins is any bgp.Resolver; Run passes a *bgp.OriginTable, whose
// lookups are served from the compiled flat LPM form. The interface keeps
// the trie reference path substitutable for differential testing. If
// origins additionally implements bgp.CheckedResolver, the checked path
// is used and a lookup error aborts the build (propagated out of the
// worker pool with lowest-index-wins semantics).
//
// ctx cancels the build at worker-pool block boundaries (nil means
// context.Background()). On any failure — cancellation, lookup error,
// blown budget, worker panic — the returned dataset is nil.
func Build(ctx context.Context, crawl *p2p.Crawl, dbA, dbB *geodb.DB, origins bgp.Resolver, cfg Config) (*Dataset, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	var peers []p2p.Peer
	if crawl != nil {
		peers = crawl.Peers
	}
	return BuildStream(ctx, p2p.SlicePeers(peers), dbA, dbB, origins, cfg)
}

// buildBatch is the pre-streaming Build implementation, kept verbatim
// as the frozen reference for the differential test harness: it
// materializes the full []located verdict slice (O(crawled peers)
// memory) and aggregates afterwards. Production callers go through
// Build/BuildStream; only tests should call this.
func buildBatch(ctx context.Context, crawl *p2p.Crawl, dbA, dbB *geodb.DB, origins bgp.Resolver, cfg Config) (*Dataset, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	span := cfg.Obs.StartSpan("pipeline.build")
	defer span.End()

	// Fault wiring: wrap the databases and the resolver with the plan's
	// injectors, and arm the worker-panic injection. All of these are
	// identity operations under a nil (or all-zero) plan.
	dbA = dbA.WithFaults(cfg.Faults, faults.GeoMissA)
	if dbB != nil {
		dbB = dbB.WithFaults(cfg.Faults, faults.GeoMissB)
	}
	origins = bgp.WithFaults(origins, cfg.Faults)
	wp := cfg.Faults.Injector(faults.WorkerPanic)

	// The funnel is built unconditionally: Dataset.Drops and the CLI
	// summary are views over it. Registering it on a nil registry is a
	// no-op.
	funnel := obs.NewFunnel("pipeline")
	cfg.Obs.RegisterFunnel(funnel)
	stGeo := funnel.Stage("geolocate").DeclareReasons("no_city", "garbage_coord", "high_geo_err")
	stOrigin := funnel.Stage("origin").DeclareReasons("unmapped_ip")
	stDedup := funnel.Stage("dedup").DeclareReasons("dup_ip")
	stCond := funnel.Stage("condition").DeclareReasons("small_as", "high_err_as")

	ds := &Dataset{
		ASes:         make(map[astopo.ASN]*ASRecord),
		CrawledPeers: len(crawl.Peers),
		Funnel:       funnel,
	}

	// Optional checked path: detected once, outside the hot loop.
	checked, _ := origins.(bgp.CheckedResolver)
	// Shard-aggregated lookup counter: each work block accumulates a
	// plain local count and flushes one atomic add, so the ~6 ns
	// compiled OriginOf stays instruction-identical (see
	// bgp.NewOriginTableObs). Nil when metrics are disabled — Add on a
	// nil counter is a branch-only no-op.
	lookupsC := cfg.Obs.Counter("eyeball_bgp_origin_lookups_total")

	secondary := dbB
	if cfg.SingleDB {
		secondary = nil
		ds.Degraded = true
		ds.DegradedReason = "single-db mode requested (no cross-database error estimates)"
	}
	locSpan := span.Child("locate")
	results, err := runLocate(ctx, crawl, dbA, secondary, origins, checked, cfg, wp, lookupsC)
	locSpan.End()
	if err != nil {
		return nil, err
	}
	counts := tally(results)
	n := len(crawl.Peers)

	// Geolocate-stage error budget. The failure fraction is the share
	// of crawled peers lost to missing or corrupt records — high_geo_err
	// drops are not counted, because large cross-database disagreement
	// is dirty data the method is designed for, not an ingestion
	// failure. When exactly one database is individually over budget
	// and the fallback is enabled, rerun with the survivor.
	if cfg.MaxGeoMissFrac > 0 && secondary != nil && n > 0 {
		missFrac := float64(counts.noCity+counts.garbage) / float64(n)
		if missFrac > cfg.MaxGeoMissFrac {
			fracA := float64(counts.missA) / float64(n)
			fracB := float64(counts.missB) / float64(n)
			blameA := fracA > cfg.MaxGeoMissFrac
			blameB := fracB > cfg.MaxGeoMissFrac
			if !cfg.SingleDBFallback || blameA == blameB {
				return nil, &BudgetError{
					Stage: "geolocate",
					Reason: fmt.Sprintf("%.4f of %d crawled peers lost to missing/corrupt geolocation records (%s miss frac %.4f, %s miss frac %.4f)",
						missFrac, n, dbA.Name, fracA, dbB.Name, fracB),
					Frac:   missFrac,
					Budget: cfg.MaxGeoMissFrac,
				}
			}
			survivor, survivorMiss := dbA, fracA
			lostDB, lostFrac := dbB, fracB
			if blameA {
				survivor, survivorMiss = dbB, fracB
				lostDB, lostFrac = dbA, fracA
			}
			_ = survivorMiss
			fbSpan := span.Child("locate_single_db_fallback")
			results, err = runLocate(ctx, crawl, survivor, nil, origins, checked, cfg, wp, lookupsC)
			fbSpan.End()
			if err != nil {
				return nil, err
			}
			counts = tally(results)
			ds.Degraded = true
			ds.DegradedReason = fmt.Sprintf(
				"single-db fallback: %s miss fraction %.4f exceeded budget %.4f; rebuilt from %s only (no cross-database error estimates)",
				lostDB.Name, lostFrac, cfg.MaxGeoMissFrac, survivor.Name)
			if cfg.Obs != nil {
				cfg.Obs.Counter("eyeball_pipeline_degraded_builds_total", "reason", "single_db_fallback").Inc()
			}
		}
	}

	// Origin-stage error budget: unmapped peers as a fraction of the
	// peers that survived geolocation.
	geoOut := n - counts.noCity - counts.garbage - counts.highGeoErr
	if cfg.MaxOriginMissFrac > 0 && geoOut > 0 {
		missFrac := float64(counts.unmapped) / float64(geoOut)
		if missFrac > cfg.MaxOriginMissFrac {
			return nil, &BudgetError{
				Stage: "origin",
				Reason: fmt.Sprintf("%.4f of %d geolocated peers matched no BGP prefix",
					missFrac, geoOut),
				Frac:   missFrac,
				Budget: cfg.MaxOriginMissFrac,
			}
		}
	}

	aggSpan := span.Child("aggregate")
	seenIP := make(map[ipnet.Addr]astopo.ASN, len(crawl.Peers))
	var dup int
	for i, peer := range crawl.Peers {
		r := results[i]
		if r.drop != dropNone {
			continue
		}
		rec := ds.ASes[r.asn]
		if rec == nil {
			rec = &ASRecord{ASN: r.asn, PeersByApp: make(map[p2p.App]int)}
			ds.ASes[r.asn] = rec
		}
		if _, isDup := seenIP[peer.IP]; isDup {
			// Unique-IP semantics (§2: "89.1 million unique IP
			// addresses"): the sample is stored once but still counts in
			// this app's column.
			rec.PeersByApp[peer.App]++
			dup++
			continue
		}
		seenIP[peer.IP] = r.asn
		rec.PeersByApp[peer.App]++
		rec.Samples = append(rec.Samples, r.sample)
	}
	aggSpan.End()

	// Flush the peer-level funnel stages once per reason (the loops
	// above used plain locals — no per-peer atomics) and derive the
	// fixed-shape Drops view from the same counts.
	stGeo.In(n)
	stGeo.Drop("no_city", counts.noCity)
	stGeo.Drop("garbage_coord", counts.garbage)
	stGeo.Drop("high_geo_err", counts.highGeoErr)
	stGeo.Out(geoOut)
	stOrigin.In(geoOut)
	stOrigin.Drop("unmapped_ip", counts.unmapped)
	originOut := geoOut - counts.unmapped
	stOrigin.Out(originOut)
	stDedup.In(originOut)
	stDedup.Drop("dup_ip", dup)
	stDedup.Out(originOut - dup)
	ds.Drops.NoCityRecord = counts.noCity
	ds.Drops.GarbageCoord = counts.garbage
	ds.Drops.HighGeoErr = counts.highGeoErr
	ds.Drops.UnmappedIP = counts.unmapped
	ds.Drops.DupIP = dup

	condSpan := span.Child("condition")
	out, err := condition(ctx, ds, cfg, stCond, nil)
	condSpan.End()
	return out, err
}

// runLocate fans the pure per-peer stage out over the worker pool.
// secondary == nil selects the single-database path (no cross-database
// error estimate). wp, when non-nil, is the armed worker-panic
// injection: it panics at hit peers, which the pool converts into a
// *parallel.PanicError with the captured stack.
func runLocate(ctx context.Context, crawl *p2p.Crawl, primary, secondary *geodb.DB, origins bgp.Resolver, checked bgp.CheckedResolver, cfg Config, wp *faults.Injector, lookupsC *obs.Counter) ([]located, error) {
	results := make([]located, len(crawl.Peers))
	err := parallel.Blocks(ctx, cfg.Workers, len(crawl.Peers), 0, func(lo, hi int) error {
		var lookups int64
		for i := lo; i < hi; i++ {
			if wp.Hit(uint64(crawl.Peers[i].IP)) {
				panic(fmt.Sprintf("faults: injected worker panic at peer %s", crawl.Peers[i].IP))
			}
			r, err := locateOne(crawl.Peers[i], primary, secondary, origins, checked, cfg)
			if err != nil {
				return err
			}
			if r.drop == dropNone || r.drop == dropUnmappedIP {
				lookups++ // an origin lookup was actually performed
			}
			results[i] = r
		}
		lookupsC.Add(lookups)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// badCoord reports whether a coordinate pair is corrupt: NaN or outside
// the valid latitude/longitude ranges. Such records come from broken
// database rows (see faults.GeoGarbage / faults.GeoNaN) and must never
// reach the KDE — a single NaN sample poisons the whole surface.
func badCoord(lat, lon float64) bool {
	return math.IsNaN(lat) || math.IsNaN(lon) || math.Abs(lat) > 90 || math.Abs(lon) > 180
}

// locateOne runs the pure per-peer stage: geolocation, error
// estimation, the corruption and 100 km cuts, and origin-AS lookup.
// secondary == nil is the single-database mode: no cross-database error
// estimate exists, GeoErrKm is 0, and only the primary's record gates
// the peer. checked is non-nil when origins supports fallible lookups;
// a lookup error aborts the whole build.
func locateOne(peer p2p.Peer, primary, secondary *geodb.DB, origins bgp.Resolver, checked bgp.CheckedResolver, cfg Config) (located, error) {
	recA := primary.Locate(peer.IP, peer.TrueLoc)
	var geoErr float64
	var l located
	if secondary == nil {
		if !recA.HasCity {
			return located{drop: dropNoCity, missA: true}, nil
		}
		if badCoord(recA.Loc.Lat, recA.Loc.Lon) {
			return located{drop: dropGarbage}, nil
		}
	} else {
		recB := secondary.Locate(peer.IP, peer.TrueLoc)
		l.missA = !recA.HasCity
		l.missB = !recB.HasCity
		var ok bool
		geoErr, ok = geodb.CrossError(recA, recB)
		if !ok {
			l.drop = dropNoCity
			return l, nil
		}
		// Corrupt coordinates in either record: the cross-distance is
		// meaningless (possibly NaN, which would sail past any >
		// threshold), so these drop under their own reason before the
		// error cut.
		if badCoord(recA.Loc.Lat, recA.Loc.Lon) || badCoord(recB.Loc.Lat, recB.Loc.Lon) || math.IsNaN(geoErr) {
			l.drop = dropGarbage
			return l, nil
		}
		if geoErr > cfg.MaxGeoErrKm {
			l.drop = dropHighGeoErr
			return l, nil
		}
	}
	var asn astopo.ASN
	var ok bool
	if checked != nil {
		var err error
		asn, ok, err = checked.OriginOfChecked(peer.IP)
		if err != nil {
			return located{}, fmt.Errorf("pipeline: origin lookup for %s: %w", peer.IP, err)
		}
	} else {
		asn, ok = origins.OriginOf(peer.IP)
	}
	if !ok {
		l.drop = dropUnmappedIP
		return l, nil
	}
	l.asn = asn
	l.sample = core.Sample{
		Loc:      recA.Loc,
		City:     recA.City,
		State:    recA.State,
		Country:  recA.Country,
		Region:   recA.Region,
		GeoErrKm: geoErr,
	}
	return l, nil
}

// condition applies the AS-level filters and classification. The per-AS
// statistics (geo-error percentile, level classification, dominant
// region) are pure functions of each record, so they fan out over the
// worker pool into index-addressed verdicts; the filters and counters are
// then applied serially in ascending-ASN order, making drop counts,
// Order, and TotalPeers identical for every worker count.
//
// accs, when non-nil, carries the streaming per-AS accumulators of a
// MaxSamplesPerAS build: the true user count (Samples is then only a
// reservoir) and the quantile sketch the P90 comes from. nil means
// exact mode — every sample retained, statistics computed from them.
func condition(ctx context.Context, ds *Dataset, cfg Config, stCond *obs.Stage, accs map[astopo.ASN]*asAcc) (*Dataset, error) {
	asns := make([]astopo.ASN, 0, len(ds.ASes))
	for asn := range ds.ASes {
		asns = append(asns, asn)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })

	type verdict struct {
		small   bool
		highErr bool
		users   int
		p90     float64
		class   core.Classification
		region  gazetteer.Region
	}
	verdicts := make([]verdict, len(asns))
	err := parallel.ForEach(ctx, cfg.Workers, asns, func(i int, asn astopo.ASN) error {
		rec := ds.ASes[asn]
		users := len(rec.Samples)
		var acc *asAcc
		if accs != nil {
			if acc = accs[asn]; acc != nil {
				users = acc.users
			}
		}
		verdicts[i].users = users
		if users < cfg.MinPeers {
			verdicts[i].small = true
			return nil
		}
		var p90 float64
		if acc != nil {
			// Capped mode: the sketch saw every sample (exact below its
			// threshold, P² above); Samples is only a reservoir.
			p90 = acc.sketch.Quantile()
		} else {
			errs := make([]float64, len(rec.Samples))
			for j, s := range rec.Samples {
				errs[j] = s.GeoErrKm
			}
			p90 = stats.Percentile(errs, 90)
		}
		if p90 > cfg.MaxP90GeoErrKm {
			verdicts[i].highErr = true
			verdicts[i].p90 = p90
			return nil
		}
		verdicts[i].p90 = p90
		verdicts[i].class = core.ClassifyLevel(rec.Samples)
		verdicts[i].region = core.DominantRegion(rec.Samples)
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Per-AS P90 geo-error histogram (observed for every AS whose P90
	// was computed, i.e. non-small ones) and AS-level drop counters.
	// All handles are nil (branch-only no-ops) when metrics are
	// disabled.
	p90Hist := cfg.Obs.Histogram("eyeball_pipeline_as_p90_geoerr_km", obs.KmErrorBuckets())
	smallASC := cfg.Obs.Counter("eyeball_pipeline_as_dropped_total", "reason", "small_as")
	highErrASC := cfg.Obs.Counter("eyeball_pipeline_as_dropped_total", "reason", "high_err_as")

	// Peer accounting uses the true user counts (== len(Samples) in
	// exact mode), so funnel conservation holds even when Samples is a
	// capped reservoir.
	var condIn, smallPeers, highErrPeers int
	for i, asn := range asns {
		v := verdicts[i]
		rec := ds.ASes[asn]
		condIn += v.users
		switch {
		case v.small:
			delete(ds.ASes, asn)
			ds.Drops.SmallAS++
			smallPeers += v.users
		case v.highErr:
			p90Hist.Observe(v.p90)
			delete(ds.ASes, asn)
			ds.Drops.HighErrAS++
			highErrPeers += v.users
		default:
			p90Hist.Observe(v.p90)
			rec.Users = v.users
			rec.P90GeoErrKm = v.p90
			rec.Class = v.class
			rec.Region = v.region
			ds.TotalPeers += v.users
			ds.Order = append(ds.Order, asn)
		}
	}
	// Funnel accounting: the condition stage counts peers, not ASes —
	// the peers inside a dropped AS are the stage's drops, so the
	// funnel's conservation invariant closes over the whole crawl.
	stCond.In(condIn)
	stCond.Drop("small_as", smallPeers)
	stCond.Drop("high_err_as", highErrPeers)
	stCond.Out(ds.TotalPeers)
	smallASC.Add(int64(ds.Drops.SmallAS))
	highErrASC.Add(int64(ds.Drops.HighErrAS))
	if cfg.Obs != nil {
		cfg.Obs.Gauge("eyeball_pipeline_eligible_ases").Set(float64(len(ds.Order)))
	}
	return ds, nil
}

// Run executes the entire methodology from a world: crawl, build the BGP
// origin tables from three vantage tier-1s, and condition the dataset.
// It is the one-call entry point used by the examples and experiments.
//
// ctx cancels the run between crawl units, at RIB-construction
// boundaries, and at the build's block boundaries (nil means
// context.Background()). cfg.Faults, when set, is injected into the
// crawl as well as the build, so one plan drives every ingestion
// boundary.
func Run(ctx context.Context, w *astopo.World, crawlCfg p2p.Config, cfg Config, crawlSeed uint64) (*Dataset, *p2p.Crawl, error) {
	ds, crawl, _, err := RunExport(ctx, w, crawlCfg, cfg, crawlSeed)
	return ds, crawl, err
}

// RunExport is Run plus the compiled origin table the build resolved
// peers against — the export hook the snapshot writer uses, so the
// serving artifact carries the exact LPM the dataset was conditioned
// with instead of a re-derived one.
func RunExport(ctx context.Context, w *astopo.World, crawlCfg p2p.Config, cfg Config, crawlSeed uint64) (*Dataset, *p2p.Crawl, *bgp.OriginTable, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	span := cfg.Obs.StartSpan("pipeline.run")
	defer span.End()
	// When ctx carries a request trace, nest the whole run (and, via
	// the rebound context, the build's stage spans) under it.
	tRun := trace.FromContext(ctx).Child("pipeline.run")
	defer tRun.End()
	if tRun != nil {
		ctx = trace.NewContext(ctx, tRun)
	}
	if crawlCfg.Obs == nil {
		crawlCfg.Obs = cfg.Obs
	}
	if crawlCfg.Faults == nil {
		crawlCfg.Faults = cfg.Faults
	}
	tCrawl := tRun.Child("crawl")
	crawl, err := p2p.Run(ctx, w, crawlCfg, seedSource(crawlSeed))
	tCrawl.End()
	if err != nil {
		return nil, nil, nil, err
	}
	tOrigin := tRun.Child("bgp.origin_table")
	origins, err := originTable(ctx, w, cfg, span)
	tOrigin.End()
	if err != nil {
		return nil, nil, nil, err
	}
	ds, err := Build(ctx, crawl, geodb.NewGeoCity(w), geodb.NewIPLoc(w), origins, cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	return ds, crawl, origins, nil
}

// originTable computes policy routing and builds the origin table from
// the world's three tier-1 vantage RIBs — the shared back half of Run
// and RunStream. Per-vantage RIB construction is independent; fan it
// out, keeping the vantage order (and thus the origin table) fixed.
func originTable(ctx context.Context, w *astopo.World, cfg Config, span *obs.Span) (*bgp.OriginTable, error) {
	routingSpan := span.Child("bgp.routing")
	routing := bgp.ComputeRouting(w)
	routingSpan.End()
	var vantages []astopo.ASN
	for _, a := range w.ASes() {
		if a.Kind != astopo.KindTier1 {
			continue
		}
		vantages = append(vantages, a.ASN)
		if len(vantages) == 3 {
			break
		}
	}
	if len(vantages) == 0 {
		return nil, fmt.Errorf("pipeline: world has no tier-1 vantage points")
	}
	ribs := make([]*bgp.RIB, len(vantages))
	ribSpan := span.Child("bgp.ribs")
	if err := parallel.ForEach(ctx, cfg.Workers, vantages, func(i int, vantage astopo.ASN) error {
		rib, err := bgp.BuildRIBObs(w, routing, vantage, cfg.Obs)
		if err != nil {
			return err
		}
		ribs[i] = rib
		return nil
	}); err != nil {
		return nil, err
	}
	ribSpan.End()
	return bgp.NewOriginTableObs(cfg.Obs, ribs...), nil
}
