// Package pipeline implements the paper's four-step methodology (§2):
// sample end users (P2P crawls), map them to locations (two geolocation
// databases with a cross-database error estimate), group them by AS
// (BGP origin tables), and condition the result into the target dataset
// of eligible eyeball ASes.
//
// All filters use the paper's thresholds: peers whose cross-database
// geolocation error exceeds 100 km are dropped, ASes with fewer than
// MinPeers peers are dropped, and ASes whose 90th-percentile geolocation
// error exceeds 80 km are dropped so a fixed 40 km kernel bandwidth is
// valid for every remaining AS (§3.1).
package pipeline

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"eyeballas/internal/astopo"
	"eyeballas/internal/bgp"
	"eyeballas/internal/core"
	"eyeballas/internal/gazetteer"
	"eyeballas/internal/geodb"
	"eyeballas/internal/ipnet"
	"eyeballas/internal/p2p"
	"eyeballas/internal/rng"
	"eyeballas/internal/stats"
)

// seedSource derives the crawl's RNG stream from a seed.
func seedSource(seed uint64) *rng.Source { return rng.New(seed).Split("p2p") }

// Config holds the conditioning thresholds.
type Config struct {
	// MaxGeoErrKm drops individual peers with larger cross-database
	// error; the paper uses 100 km ("the diameter of a typical
	// metropolitan area", §2).
	MaxGeoErrKm float64
	// MaxP90GeoErrKm drops whole ASes whose 90th-percentile geo error
	// exceeds it; the paper uses 80 km (§3.1).
	MaxP90GeoErrKm float64
	// MinPeers drops ASes with fewer usable peers. The paper uses 1000
	// at 89M-crawl scale; the default here is scaled to the synthetic
	// crawl size.
	MinPeers int
}

// DefaultConfig returns thresholds for the default synthetic scale
// (~paper/75 peers ⇒ proportionally scaled peer floor).
func DefaultConfig() Config {
	return Config{MaxGeoErrKm: 100, MaxP90GeoErrKm: 80, MinPeers: 100}
}

// PaperConfig returns the paper's literal thresholds (for full-scale
// runs).
func PaperConfig() Config {
	return Config{MaxGeoErrKm: 100, MaxP90GeoErrKm: 80, MinPeers: 1000}
}

func (c Config) validate() error {
	if c.MaxGeoErrKm <= 0 || c.MaxP90GeoErrKm <= 0 {
		return fmt.Errorf("pipeline: error thresholds must be positive")
	}
	if c.MinPeers < 1 {
		return fmt.Errorf("pipeline: MinPeers must be >= 1")
	}
	return nil
}

// ASRecord is one eligible eyeball AS in the target dataset.
type ASRecord struct {
	ASN     astopo.ASN
	Samples []core.Sample
	// PeersByApp counts usable peer observations per application
	// (Table 1's "#Peers by source"); a user seen by two crawlers counts
	// once in Samples but in both app columns.
	PeersByApp map[p2p.App]int
	// Class is the §2 geographic classification from database labels.
	Class core.Classification
	// Region is the dominant continental region of the AS's samples.
	Region gazetteer.Region
	// P90GeoErrKm is the 90th percentile of per-sample geo error.
	P90GeoErrKm float64
}

// Drops accounts for every discarded observation or AS.
type Drops struct {
	NoCityRecord int // either database lacked a city-level record
	HighGeoErr   int // cross-database error above MaxGeoErrKm
	UnmappedIP   int // no origin AS in the BGP tables
	DupIP        int // same IP already seen (kept once in samples)
	SmallAS      int // ASes below MinPeers
	HighErrAS    int // ASes above MaxP90GeoErrKm
}

// Dataset is the conditioned target dataset.
type Dataset struct {
	ASes  map[astopo.ASN]*ASRecord
	Order []astopo.ASN // ascending ASN
	Drops Drops
	// TotalPeers is the number of usable samples across all eligible
	// ASes (the paper's 48M).
	TotalPeers int
}

// AS returns the record for an AS, or nil.
func (d *Dataset) AS(n astopo.ASN) *ASRecord { return d.ASes[n] }

// Records returns all records in ascending-ASN order.
func (d *Dataset) Records() []*ASRecord {
	out := make([]*ASRecord, len(d.Order))
	for i, n := range d.Order {
		out[i] = d.ASes[n]
	}
	return out
}

// located is the per-peer result of the (parallel) geolocation stage.
type located struct {
	sample core.Sample
	asn    astopo.ASN
	drop   dropKind
}

type dropKind int8

const (
	dropNone dropKind = iota
	dropNoCity
	dropHighGeoErr
	dropUnmappedIP
)

// Build runs steps 2–4 of the methodology over a finished crawl.
// Geolocation and origin lookups are pure per-peer functions, so they run
// on all CPUs; aggregation preserves crawl order, keeping the result
// byte-identical to a sequential run.
func Build(crawl *p2p.Crawl, dbA, dbB *geodb.DB, origins *bgp.OriginTable, cfg Config) (*Dataset, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	ds := &Dataset{ASes: make(map[astopo.ASN]*ASRecord)}
	seenIP := make(map[ipnet.Addr]astopo.ASN, len(crawl.Peers))

	results := make([]located, len(crawl.Peers))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(crawl.Peers) {
		workers = 1
	}
	var wg sync.WaitGroup
	chunk := (len(crawl.Peers) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(crawl.Peers) {
			hi = len(crawl.Peers)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				results[i] = locateOne(crawl.Peers[i], dbA, dbB, origins, cfg)
			}
		}(lo, hi)
	}
	wg.Wait()

	for i, peer := range crawl.Peers {
		r := results[i]
		switch r.drop {
		case dropNoCity:
			ds.Drops.NoCityRecord++
			continue
		case dropHighGeoErr:
			ds.Drops.HighGeoErr++
			continue
		case dropUnmappedIP:
			ds.Drops.UnmappedIP++
			continue
		}
		rec := ds.ASes[r.asn]
		if rec == nil {
			rec = &ASRecord{ASN: r.asn, PeersByApp: make(map[p2p.App]int)}
			ds.ASes[r.asn] = rec
		}
		if _, dup := seenIP[peer.IP]; dup {
			// Unique-IP semantics (§2: "89.1 million unique IP
			// addresses"): the sample is stored once but still counts in
			// this app's column.
			rec.PeersByApp[peer.App]++
			ds.Drops.DupIP++
			continue
		}
		seenIP[peer.IP] = r.asn
		rec.PeersByApp[peer.App]++
		rec.Samples = append(rec.Samples, r.sample)
	}

	return condition(ds, cfg), nil
}

// locateOne runs the pure per-peer stage: dual geolocation, error
// estimation, the 100 km cut, and origin-AS lookup.
func locateOne(peer p2p.Peer, dbA, dbB *geodb.DB, origins *bgp.OriginTable, cfg Config) located {
	recA := dbA.Locate(peer.IP, peer.TrueLoc)
	recB := dbB.Locate(peer.IP, peer.TrueLoc)
	geoErr, ok := geodb.CrossError(recA, recB)
	if !ok {
		return located{drop: dropNoCity}
	}
	if geoErr > cfg.MaxGeoErrKm {
		return located{drop: dropHighGeoErr}
	}
	asn, ok := origins.OriginOf(peer.IP)
	if !ok {
		return located{drop: dropUnmappedIP}
	}
	return located{
		asn: asn,
		sample: core.Sample{
			Loc:      recA.Loc,
			City:     recA.City,
			State:    recA.State,
			Country:  recA.Country,
			Region:   recA.Region,
			GeoErrKm: geoErr,
		},
	}
}

// condition applies the AS-level filters and classification.
func condition(ds *Dataset, cfg Config) *Dataset {
	// AS-level conditioning.
	for asn, rec := range ds.ASes {
		if len(rec.Samples) < cfg.MinPeers {
			delete(ds.ASes, asn)
			ds.Drops.SmallAS++
			continue
		}
		errs := make([]float64, len(rec.Samples))
		for i, s := range rec.Samples {
			errs[i] = s.GeoErrKm
		}
		rec.P90GeoErrKm = stats.Percentile(errs, 90)
		if rec.P90GeoErrKm > cfg.MaxP90GeoErrKm {
			delete(ds.ASes, asn)
			ds.Drops.HighErrAS++
			continue
		}
		rec.Class = core.ClassifyLevel(rec.Samples)
		rec.Region = core.DominantRegion(rec.Samples)
		ds.TotalPeers += len(rec.Samples)
	}
	for asn := range ds.ASes {
		ds.Order = append(ds.Order, asn)
	}
	sort.Slice(ds.Order, func(i, j int) bool { return ds.Order[i] < ds.Order[j] })
	return ds
}

// Run executes the entire methodology from a world: crawl, build the BGP
// origin tables from three vantage tier-1s, and condition the dataset.
// It is the one-call entry point used by the examples and experiments.
func Run(w *astopo.World, crawlCfg p2p.Config, cfg Config, crawlSeed uint64) (*Dataset, *p2p.Crawl, error) {
	crawl, err := p2p.Run(w, crawlCfg, seedSource(crawlSeed))
	if err != nil {
		return nil, nil, err
	}
	routing := bgp.ComputeRouting(w)
	var ribs []*bgp.RIB
	count := 0
	for _, a := range w.ASes() {
		if a.Kind != astopo.KindTier1 {
			continue
		}
		rib, err := bgp.BuildRIB(w, routing, a.ASN)
		if err != nil {
			return nil, nil, err
		}
		ribs = append(ribs, rib)
		count++
		if count == 3 {
			break
		}
	}
	if len(ribs) == 0 {
		return nil, nil, fmt.Errorf("pipeline: world has no tier-1 vantage points")
	}
	origins := bgp.NewOriginTable(ribs...)
	ds, err := Build(crawl, geodb.NewGeoCity(w), geodb.NewIPLoc(w), origins, cfg)
	if err != nil {
		return nil, nil, err
	}
	return ds, crawl, nil
}
