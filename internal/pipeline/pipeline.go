// Package pipeline implements the paper's four-step methodology (§2):
// sample end users (P2P crawls), map them to locations (two geolocation
// databases with a cross-database error estimate), group them by AS
// (BGP origin tables), and condition the result into the target dataset
// of eligible eyeball ASes.
//
// All filters use the paper's thresholds: peers whose cross-database
// geolocation error exceeds 100 km are dropped, ASes with fewer than
// MinPeers peers are dropped, and ASes whose 90th-percentile geolocation
// error exceeds 80 km are dropped so a fixed 40 km kernel bandwidth is
// valid for every remaining AS (§3.1).
package pipeline

import (
	"fmt"
	"sort"

	"eyeballas/internal/astopo"
	"eyeballas/internal/bgp"
	"eyeballas/internal/core"
	"eyeballas/internal/gazetteer"
	"eyeballas/internal/geodb"
	"eyeballas/internal/ipnet"
	"eyeballas/internal/p2p"
	"eyeballas/internal/parallel"
	"eyeballas/internal/rng"
	"eyeballas/internal/stats"
)

// seedSource derives the crawl's RNG stream from a seed.
func seedSource(seed uint64) *rng.Source { return rng.New(seed).Split("p2p") }

// Config holds the conditioning thresholds.
type Config struct {
	// MaxGeoErrKm drops individual peers with larger cross-database
	// error; the paper uses 100 km ("the diameter of a typical
	// metropolitan area", §2).
	MaxGeoErrKm float64
	// MaxP90GeoErrKm drops whole ASes whose 90th-percentile geo error
	// exceeds it; the paper uses 80 km (§3.1).
	MaxP90GeoErrKm float64
	// MinPeers drops ASes with fewer usable peers. The paper uses 1000
	// at 89M-crawl scale; the default here is scaled to the synthetic
	// crawl size.
	MinPeers int
	// Workers bounds the goroutines used by the parallel stages (per-peer
	// geolocation, per-AS conditioning, per-vantage RIB construction);
	// 0 means GOMAXPROCS, 1 forces serial execution. Output is
	// byte-identical for every setting: results are index-addressed and
	// aggregation always applies them in a fixed order.
	Workers int
}

// DefaultConfig returns thresholds for the default synthetic scale
// (~paper/75 peers ⇒ proportionally scaled peer floor).
func DefaultConfig() Config {
	return Config{MaxGeoErrKm: 100, MaxP90GeoErrKm: 80, MinPeers: 100}
}

// PaperConfig returns the paper's literal thresholds (for full-scale
// runs).
func PaperConfig() Config {
	return Config{MaxGeoErrKm: 100, MaxP90GeoErrKm: 80, MinPeers: 1000}
}

func (c Config) validate() error {
	if c.MaxGeoErrKm <= 0 || c.MaxP90GeoErrKm <= 0 {
		return fmt.Errorf("pipeline: error thresholds must be positive")
	}
	if c.MinPeers < 1 {
		return fmt.Errorf("pipeline: MinPeers must be >= 1")
	}
	return nil
}

// ASRecord is one eligible eyeball AS in the target dataset.
type ASRecord struct {
	ASN     astopo.ASN
	Samples []core.Sample
	// PeersByApp counts usable peer observations per application
	// (Table 1's "#Peers by source"); a user seen by two crawlers counts
	// once in Samples but in both app columns.
	PeersByApp map[p2p.App]int
	// Class is the §2 geographic classification from database labels.
	Class core.Classification
	// Region is the dominant continental region of the AS's samples.
	Region gazetteer.Region
	// P90GeoErrKm is the 90th percentile of per-sample geo error.
	P90GeoErrKm float64
}

// Drops accounts for every discarded observation or AS.
type Drops struct {
	NoCityRecord int // either database lacked a city-level record
	HighGeoErr   int // cross-database error above MaxGeoErrKm
	UnmappedIP   int // no origin AS in the BGP tables
	DupIP        int // same IP already seen (kept once in samples)
	SmallAS      int // ASes below MinPeers
	HighErrAS    int // ASes above MaxP90GeoErrKm
}

// Dataset is the conditioned target dataset.
type Dataset struct {
	ASes  map[astopo.ASN]*ASRecord
	Order []astopo.ASN // ascending ASN
	Drops Drops
	// TotalPeers is the number of usable samples across all eligible
	// ASes (the paper's 48M).
	TotalPeers int
}

// AS returns the record for an AS, or nil.
func (d *Dataset) AS(n astopo.ASN) *ASRecord { return d.ASes[n] }

// Records returns all records in ascending-ASN order.
func (d *Dataset) Records() []*ASRecord {
	out := make([]*ASRecord, len(d.Order))
	for i, n := range d.Order {
		out[i] = d.ASes[n]
	}
	return out
}

// located is the per-peer result of the (parallel) geolocation stage.
type located struct {
	sample core.Sample
	asn    astopo.ASN
	drop   dropKind
}

type dropKind int8

const (
	dropNone dropKind = iota
	dropNoCity
	dropHighGeoErr
	dropUnmappedIP
)

// Build runs steps 2–4 of the methodology over a finished crawl.
// Geolocation and origin lookups are pure per-peer functions, so they run
// on all CPUs; aggregation preserves crawl order, keeping the result
// byte-identical to a sequential run.
//
// origins is any bgp.Resolver; Run passes a *bgp.OriginTable, whose
// lookups are served from the compiled flat LPM form. The interface keeps
// the trie reference path substitutable for differential testing.
func Build(crawl *p2p.Crawl, dbA, dbB *geodb.DB, origins bgp.Resolver, cfg Config) (*Dataset, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	ds := &Dataset{ASes: make(map[astopo.ASN]*ASRecord)}
	seenIP := make(map[ipnet.Addr]astopo.ASN, len(crawl.Peers))

	results := make([]located, len(crawl.Peers))
	_ = parallel.Blocks(cfg.Workers, len(crawl.Peers), 0, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			results[i] = locateOne(crawl.Peers[i], dbA, dbB, origins, cfg)
		}
		return nil
	})

	for i, peer := range crawl.Peers {
		r := results[i]
		switch r.drop {
		case dropNoCity:
			ds.Drops.NoCityRecord++
			continue
		case dropHighGeoErr:
			ds.Drops.HighGeoErr++
			continue
		case dropUnmappedIP:
			ds.Drops.UnmappedIP++
			continue
		}
		rec := ds.ASes[r.asn]
		if rec == nil {
			rec = &ASRecord{ASN: r.asn, PeersByApp: make(map[p2p.App]int)}
			ds.ASes[r.asn] = rec
		}
		if _, dup := seenIP[peer.IP]; dup {
			// Unique-IP semantics (§2: "89.1 million unique IP
			// addresses"): the sample is stored once but still counts in
			// this app's column.
			rec.PeersByApp[peer.App]++
			ds.Drops.DupIP++
			continue
		}
		seenIP[peer.IP] = r.asn
		rec.PeersByApp[peer.App]++
		rec.Samples = append(rec.Samples, r.sample)
	}

	return condition(ds, cfg), nil
}

// locateOne runs the pure per-peer stage: dual geolocation, error
// estimation, the 100 km cut, and origin-AS lookup.
func locateOne(peer p2p.Peer, dbA, dbB *geodb.DB, origins bgp.Resolver, cfg Config) located {
	recA := dbA.Locate(peer.IP, peer.TrueLoc)
	recB := dbB.Locate(peer.IP, peer.TrueLoc)
	geoErr, ok := geodb.CrossError(recA, recB)
	if !ok {
		return located{drop: dropNoCity}
	}
	if geoErr > cfg.MaxGeoErrKm {
		return located{drop: dropHighGeoErr}
	}
	asn, ok := origins.OriginOf(peer.IP)
	if !ok {
		return located{drop: dropUnmappedIP}
	}
	return located{
		asn: asn,
		sample: core.Sample{
			Loc:      recA.Loc,
			City:     recA.City,
			State:    recA.State,
			Country:  recA.Country,
			Region:   recA.Region,
			GeoErrKm: geoErr,
		},
	}
}

// condition applies the AS-level filters and classification. The per-AS
// statistics (geo-error percentile, level classification, dominant
// region) are pure functions of each record, so they fan out over the
// worker pool into index-addressed verdicts; the filters and counters are
// then applied serially in ascending-ASN order, making drop counts,
// Order, and TotalPeers identical for every worker count.
func condition(ds *Dataset, cfg Config) *Dataset {
	asns := make([]astopo.ASN, 0, len(ds.ASes))
	for asn := range ds.ASes {
		asns = append(asns, asn)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })

	type verdict struct {
		small   bool
		highErr bool
		p90     float64
		class   core.Classification
		region  gazetteer.Region
	}
	verdicts := make([]verdict, len(asns))
	_ = parallel.ForEach(cfg.Workers, asns, func(i int, asn astopo.ASN) error {
		rec := ds.ASes[asn]
		if len(rec.Samples) < cfg.MinPeers {
			verdicts[i].small = true
			return nil
		}
		errs := make([]float64, len(rec.Samples))
		for j, s := range rec.Samples {
			errs[j] = s.GeoErrKm
		}
		p90 := stats.Percentile(errs, 90)
		if p90 > cfg.MaxP90GeoErrKm {
			verdicts[i] = verdict{highErr: true, p90: p90}
			return nil
		}
		verdicts[i] = verdict{
			p90:    p90,
			class:  core.ClassifyLevel(rec.Samples),
			region: core.DominantRegion(rec.Samples),
		}
		return nil
	})

	for i, asn := range asns {
		v := verdicts[i]
		switch {
		case v.small:
			delete(ds.ASes, asn)
			ds.Drops.SmallAS++
		case v.highErr:
			delete(ds.ASes, asn)
			ds.Drops.HighErrAS++
		default:
			rec := ds.ASes[asn]
			rec.P90GeoErrKm = v.p90
			rec.Class = v.class
			rec.Region = v.region
			ds.TotalPeers += len(rec.Samples)
			ds.Order = append(ds.Order, asn)
		}
	}
	return ds
}

// Run executes the entire methodology from a world: crawl, build the BGP
// origin tables from three vantage tier-1s, and condition the dataset.
// It is the one-call entry point used by the examples and experiments.
func Run(w *astopo.World, crawlCfg p2p.Config, cfg Config, crawlSeed uint64) (*Dataset, *p2p.Crawl, error) {
	crawl, err := p2p.Run(w, crawlCfg, seedSource(crawlSeed))
	if err != nil {
		return nil, nil, err
	}
	routing := bgp.ComputeRouting(w)
	// Per-vantage RIB construction is independent; fan it out, keeping
	// the vantage order (and thus the origin table) fixed.
	var vantages []astopo.ASN
	for _, a := range w.ASes() {
		if a.Kind != astopo.KindTier1 {
			continue
		}
		vantages = append(vantages, a.ASN)
		if len(vantages) == 3 {
			break
		}
	}
	if len(vantages) == 0 {
		return nil, nil, fmt.Errorf("pipeline: world has no tier-1 vantage points")
	}
	ribs := make([]*bgp.RIB, len(vantages))
	if err := parallel.ForEach(cfg.Workers, vantages, func(i int, vantage astopo.ASN) error {
		rib, err := bgp.BuildRIB(w, routing, vantage)
		if err != nil {
			return err
		}
		ribs[i] = rib
		return nil
	}); err != nil {
		return nil, nil, err
	}
	origins := bgp.NewOriginTable(ribs...)
	ds, err := Build(crawl, geodb.NewGeoCity(w), geodb.NewIPLoc(w), origins, cfg)
	if err != nil {
		return nil, nil, err
	}
	return ds, crawl, nil
}
