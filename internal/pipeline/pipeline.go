// Package pipeline implements the paper's four-step methodology (§2):
// sample end users (P2P crawls), map them to locations (two geolocation
// databases with a cross-database error estimate), group them by AS
// (BGP origin tables), and condition the result into the target dataset
// of eligible eyeball ASes.
//
// All filters use the paper's thresholds: peers whose cross-database
// geolocation error exceeds 100 km are dropped, ASes with fewer than
// MinPeers peers are dropped, and ASes whose 90th-percentile geolocation
// error exceeds 80 km are dropped so a fixed 40 km kernel bandwidth is
// valid for every remaining AS (§3.1).
package pipeline

import (
	"fmt"
	"sort"

	"eyeballas/internal/astopo"
	"eyeballas/internal/bgp"
	"eyeballas/internal/core"
	"eyeballas/internal/gazetteer"
	"eyeballas/internal/geodb"
	"eyeballas/internal/ipnet"
	"eyeballas/internal/obs"
	"eyeballas/internal/p2p"
	"eyeballas/internal/parallel"
	"eyeballas/internal/rng"
	"eyeballas/internal/stats"
)

// seedSource derives the crawl's RNG stream from a seed.
func seedSource(seed uint64) *rng.Source { return rng.New(seed).Split("p2p") }

// Config holds the conditioning thresholds.
type Config struct {
	// MaxGeoErrKm drops individual peers with larger cross-database
	// error; the paper uses 100 km ("the diameter of a typical
	// metropolitan area", §2).
	MaxGeoErrKm float64
	// MaxP90GeoErrKm drops whole ASes whose 90th-percentile geo error
	// exceeds it; the paper uses 80 km (§3.1).
	MaxP90GeoErrKm float64
	// MinPeers drops ASes with fewer usable peers. The paper uses 1000
	// at 89M-crawl scale; the default here is scaled to the synthetic
	// crawl size.
	MinPeers int
	// Workers bounds the goroutines used by the parallel stages (per-peer
	// geolocation, per-AS conditioning, per-vantage RIB construction);
	// 0 means GOMAXPROCS, 1 forces serial execution. Output is
	// byte-identical for every setting: results are index-addressed and
	// aggregation always applies them in a fixed order.
	Workers int
	// Obs receives pipeline metrics: the stage funnel, per-stage spans,
	// the per-AS P90 geo-error histogram, and the shard-aggregated
	// origin-lookup counter. nil disables exposition; the funnel itself
	// is always built (Dataset.Drops and the CLI summary are views over
	// it), and datasets are bit-identical with or without a registry.
	Obs *obs.Registry
}

// DefaultConfig returns thresholds for the default synthetic scale
// (~paper/75 peers ⇒ proportionally scaled peer floor).
func DefaultConfig() Config {
	return Config{MaxGeoErrKm: 100, MaxP90GeoErrKm: 80, MinPeers: 100}
}

// PaperConfig returns the paper's literal thresholds (for full-scale
// runs).
func PaperConfig() Config {
	return Config{MaxGeoErrKm: 100, MaxP90GeoErrKm: 80, MinPeers: 1000}
}

func (c Config) validate() error {
	if c.MaxGeoErrKm <= 0 || c.MaxP90GeoErrKm <= 0 {
		return fmt.Errorf("pipeline: error thresholds must be positive")
	}
	if c.MinPeers < 1 {
		return fmt.Errorf("pipeline: MinPeers must be >= 1")
	}
	return nil
}

// ASRecord is one eligible eyeball AS in the target dataset.
type ASRecord struct {
	ASN     astopo.ASN
	Samples []core.Sample
	// PeersByApp counts usable peer observations per application
	// (Table 1's "#Peers by source"); a user seen by two crawlers counts
	// once in Samples but in both app columns.
	PeersByApp map[p2p.App]int
	// Class is the §2 geographic classification from database labels.
	Class core.Classification
	// Region is the dominant continental region of the AS's samples.
	Region gazetteer.Region
	// P90GeoErrKm is the 90th percentile of per-sample geo error.
	P90GeoErrKm float64
}

// Drops accounts for every discarded observation or AS.
type Drops struct {
	NoCityRecord int // either database lacked a city-level record
	HighGeoErr   int // cross-database error above MaxGeoErrKm
	UnmappedIP   int // no origin AS in the BGP tables
	DupIP        int // same IP already seen (kept once in samples)
	SmallAS      int // ASes below MinPeers
	HighErrAS    int // ASes above MaxP90GeoErrKm
}

// Dataset is the conditioned target dataset.
type Dataset struct {
	ASes  map[astopo.ASN]*ASRecord
	Order []astopo.ASN // ascending ASN
	Drops Drops
	// TotalPeers is the number of usable samples across all eligible
	// ASes (the paper's 48M).
	TotalPeers int
	// CrawledPeers is the crawl size the funnel started from (the
	// paper's 89.1M).
	CrawledPeers int
	// Funnel is the stage-by-stage accounting of this build:
	// geolocate → origin → dedup → condition, with per-reason drop
	// counts. It is always populated (even with Config.Obs == nil);
	// Drops is a fixed-shape view over the same counts, and
	// Funnel.Check() proves conservation: every crawled peer is either
	// in TotalPeers, dropped at a peer-level stage, or inside a
	// dropped AS.
	Funnel *obs.Funnel
}

// AS returns the record for an AS, or nil.
func (d *Dataset) AS(n astopo.ASN) *ASRecord { return d.ASes[n] }

// Records returns all records in ascending-ASN order.
func (d *Dataset) Records() []*ASRecord {
	out := make([]*ASRecord, len(d.Order))
	for i, n := range d.Order {
		out[i] = d.ASes[n]
	}
	return out
}

// located is the per-peer result of the (parallel) geolocation stage.
type located struct {
	sample core.Sample
	asn    astopo.ASN
	drop   dropKind
}

type dropKind int8

const (
	dropNone dropKind = iota
	dropNoCity
	dropHighGeoErr
	dropUnmappedIP
)

// Build runs steps 2–4 of the methodology over a finished crawl.
// Geolocation and origin lookups are pure per-peer functions, so they run
// on all CPUs; aggregation preserves crawl order, keeping the result
// byte-identical to a sequential run.
//
// origins is any bgp.Resolver; Run passes a *bgp.OriginTable, whose
// lookups are served from the compiled flat LPM form. The interface keeps
// the trie reference path substitutable for differential testing. If
// origins additionally implements bgp.CheckedResolver, the checked path
// is used and a lookup error aborts the build (propagated out of the
// worker pool with lowest-index-wins semantics).
func Build(crawl *p2p.Crawl, dbA, dbB *geodb.DB, origins bgp.Resolver, cfg Config) (*Dataset, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	span := cfg.Obs.StartSpan("pipeline.build")
	defer span.End()

	// The funnel is built unconditionally: Dataset.Drops and the CLI
	// summary are views over it. Registering it on a nil registry is a
	// no-op.
	funnel := obs.NewFunnel("pipeline")
	cfg.Obs.RegisterFunnel(funnel)
	stGeo := funnel.Stage("geolocate").DeclareReasons("no_city", "high_geo_err")
	stOrigin := funnel.Stage("origin").DeclareReasons("unmapped_ip")
	stDedup := funnel.Stage("dedup").DeclareReasons("dup_ip")
	stCond := funnel.Stage("condition").DeclareReasons("small_as", "high_err_as")

	ds := &Dataset{
		ASes:         make(map[astopo.ASN]*ASRecord),
		CrawledPeers: len(crawl.Peers),
		Funnel:       funnel,
	}
	seenIP := make(map[ipnet.Addr]astopo.ASN, len(crawl.Peers))

	// Optional checked path: detected once, outside the hot loop.
	checked, _ := origins.(bgp.CheckedResolver)
	// Shard-aggregated lookup counter: each work block accumulates a
	// plain local count and flushes one atomic add, so the ~6 ns
	// compiled OriginOf stays instruction-identical (see
	// bgp.NewOriginTableObs). Nil when metrics are disabled — Add on a
	// nil counter is a branch-only no-op.
	lookupsC := cfg.Obs.Counter("eyeball_bgp_origin_lookups_total")

	results := make([]located, len(crawl.Peers))
	locSpan := span.Child("locate")
	err := parallel.Blocks(cfg.Workers, len(crawl.Peers), 0, func(lo, hi int) error {
		var lookups int64
		for i := lo; i < hi; i++ {
			r, err := locateOne(crawl.Peers[i], dbA, dbB, origins, checked, cfg)
			if err != nil {
				return err
			}
			if r.drop == dropNone || r.drop == dropUnmappedIP {
				lookups++ // an origin lookup was actually performed
			}
			results[i] = r
		}
		lookupsC.Add(lookups)
		return nil
	})
	locSpan.End()
	if err != nil {
		return nil, err
	}

	aggSpan := span.Child("aggregate")
	var noCity, highGeoErr, unmapped, dup int
	for i, peer := range crawl.Peers {
		r := results[i]
		switch r.drop {
		case dropNoCity:
			noCity++
			continue
		case dropHighGeoErr:
			highGeoErr++
			continue
		case dropUnmappedIP:
			unmapped++
			continue
		}
		rec := ds.ASes[r.asn]
		if rec == nil {
			rec = &ASRecord{ASN: r.asn, PeersByApp: make(map[p2p.App]int)}
			ds.ASes[r.asn] = rec
		}
		if _, isDup := seenIP[peer.IP]; isDup {
			// Unique-IP semantics (§2: "89.1 million unique IP
			// addresses"): the sample is stored once but still counts in
			// this app's column.
			rec.PeersByApp[peer.App]++
			dup++
			continue
		}
		seenIP[peer.IP] = r.asn
		rec.PeersByApp[peer.App]++
		rec.Samples = append(rec.Samples, r.sample)
	}
	aggSpan.End()

	// Flush the peer-level funnel stages once per reason (the serial
	// loop above used plain locals — no per-peer atomics) and derive
	// the fixed-shape Drops view from the same counts.
	n := len(crawl.Peers)
	stGeo.In(n)
	stGeo.Drop("no_city", noCity)
	stGeo.Drop("high_geo_err", highGeoErr)
	geoOut := n - noCity - highGeoErr
	stGeo.Out(geoOut)
	stOrigin.In(geoOut)
	stOrigin.Drop("unmapped_ip", unmapped)
	originOut := geoOut - unmapped
	stOrigin.Out(originOut)
	stDedup.In(originOut)
	stDedup.Drop("dup_ip", dup)
	stDedup.Out(originOut - dup)
	ds.Drops.NoCityRecord = noCity
	ds.Drops.HighGeoErr = highGeoErr
	ds.Drops.UnmappedIP = unmapped
	ds.Drops.DupIP = dup

	condSpan := span.Child("condition")
	out := condition(ds, cfg, stCond)
	condSpan.End()
	return out, nil
}

// locateOne runs the pure per-peer stage: dual geolocation, error
// estimation, the 100 km cut, and origin-AS lookup. checked is non-nil
// when origins supports fallible lookups; a lookup error aborts the
// whole build.
func locateOne(peer p2p.Peer, dbA, dbB *geodb.DB, origins bgp.Resolver, checked bgp.CheckedResolver, cfg Config) (located, error) {
	recA := dbA.Locate(peer.IP, peer.TrueLoc)
	recB := dbB.Locate(peer.IP, peer.TrueLoc)
	geoErr, ok := geodb.CrossError(recA, recB)
	if !ok {
		return located{drop: dropNoCity}, nil
	}
	if geoErr > cfg.MaxGeoErrKm {
		return located{drop: dropHighGeoErr}, nil
	}
	var asn astopo.ASN
	if checked != nil {
		var err error
		asn, ok, err = checked.OriginOfChecked(peer.IP)
		if err != nil {
			return located{}, fmt.Errorf("pipeline: origin lookup for %s: %w", peer.IP, err)
		}
	} else {
		asn, ok = origins.OriginOf(peer.IP)
	}
	if !ok {
		return located{drop: dropUnmappedIP}, nil
	}
	return located{
		asn: asn,
		sample: core.Sample{
			Loc:      recA.Loc,
			City:     recA.City,
			State:    recA.State,
			Country:  recA.Country,
			Region:   recA.Region,
			GeoErrKm: geoErr,
		},
	}, nil
}

// condition applies the AS-level filters and classification. The per-AS
// statistics (geo-error percentile, level classification, dominant
// region) are pure functions of each record, so they fan out over the
// worker pool into index-addressed verdicts; the filters and counters are
// then applied serially in ascending-ASN order, making drop counts,
// Order, and TotalPeers identical for every worker count.
func condition(ds *Dataset, cfg Config, stCond *obs.Stage) *Dataset {
	asns := make([]astopo.ASN, 0, len(ds.ASes))
	for asn := range ds.ASes {
		asns = append(asns, asn)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })

	type verdict struct {
		small   bool
		highErr bool
		p90     float64
		class   core.Classification
		region  gazetteer.Region
	}
	verdicts := make([]verdict, len(asns))
	_ = parallel.ForEach(cfg.Workers, asns, func(i int, asn astopo.ASN) error {
		rec := ds.ASes[asn]
		if len(rec.Samples) < cfg.MinPeers {
			verdicts[i].small = true
			return nil
		}
		errs := make([]float64, len(rec.Samples))
		for j, s := range rec.Samples {
			errs[j] = s.GeoErrKm
		}
		p90 := stats.Percentile(errs, 90)
		if p90 > cfg.MaxP90GeoErrKm {
			verdicts[i] = verdict{highErr: true, p90: p90}
			return nil
		}
		verdicts[i] = verdict{
			p90:    p90,
			class:  core.ClassifyLevel(rec.Samples),
			region: core.DominantRegion(rec.Samples),
		}
		return nil
	})

	// Per-AS P90 geo-error histogram (observed for every AS whose P90
	// was computed, i.e. non-small ones) and AS-level drop counters.
	// All handles are nil (branch-only no-ops) when metrics are
	// disabled.
	p90Hist := cfg.Obs.Histogram("eyeball_pipeline_as_p90_geoerr_km", obs.KmErrorBuckets())
	smallASC := cfg.Obs.Counter("eyeball_pipeline_as_dropped_total", "reason", "small_as")
	highErrASC := cfg.Obs.Counter("eyeball_pipeline_as_dropped_total", "reason", "high_err_as")

	var condIn, smallPeers, highErrPeers int
	for i, asn := range asns {
		v := verdicts[i]
		rec := ds.ASes[asn]
		condIn += len(rec.Samples)
		switch {
		case v.small:
			delete(ds.ASes, asn)
			ds.Drops.SmallAS++
			smallPeers += len(rec.Samples)
		case v.highErr:
			p90Hist.Observe(v.p90)
			delete(ds.ASes, asn)
			ds.Drops.HighErrAS++
			highErrPeers += len(rec.Samples)
		default:
			p90Hist.Observe(v.p90)
			rec.P90GeoErrKm = v.p90
			rec.Class = v.class
			rec.Region = v.region
			ds.TotalPeers += len(rec.Samples)
			ds.Order = append(ds.Order, asn)
		}
	}
	// Funnel accounting: the condition stage counts peers, not ASes —
	// the peers inside a dropped AS are the stage's drops, so the
	// funnel's conservation invariant closes over the whole crawl.
	stCond.In(condIn)
	stCond.Drop("small_as", smallPeers)
	stCond.Drop("high_err_as", highErrPeers)
	stCond.Out(ds.TotalPeers)
	smallASC.Add(int64(ds.Drops.SmallAS))
	highErrASC.Add(int64(ds.Drops.HighErrAS))
	if cfg.Obs != nil {
		cfg.Obs.Gauge("eyeball_pipeline_eligible_ases").Set(float64(len(ds.Order)))
	}
	return ds
}

// Run executes the entire methodology from a world: crawl, build the BGP
// origin tables from three vantage tier-1s, and condition the dataset.
// It is the one-call entry point used by the examples and experiments.
func Run(w *astopo.World, crawlCfg p2p.Config, cfg Config, crawlSeed uint64) (*Dataset, *p2p.Crawl, error) {
	span := cfg.Obs.StartSpan("pipeline.run")
	defer span.End()
	if crawlCfg.Obs == nil {
		crawlCfg.Obs = cfg.Obs
	}
	crawl, err := p2p.Run(w, crawlCfg, seedSource(crawlSeed))
	if err != nil {
		return nil, nil, err
	}
	routingSpan := span.Child("bgp.routing")
	routing := bgp.ComputeRouting(w)
	routingSpan.End()
	// Per-vantage RIB construction is independent; fan it out, keeping
	// the vantage order (and thus the origin table) fixed.
	var vantages []astopo.ASN
	for _, a := range w.ASes() {
		if a.Kind != astopo.KindTier1 {
			continue
		}
		vantages = append(vantages, a.ASN)
		if len(vantages) == 3 {
			break
		}
	}
	if len(vantages) == 0 {
		return nil, nil, fmt.Errorf("pipeline: world has no tier-1 vantage points")
	}
	ribs := make([]*bgp.RIB, len(vantages))
	ribSpan := span.Child("bgp.ribs")
	if err := parallel.ForEach(cfg.Workers, vantages, func(i int, vantage astopo.ASN) error {
		rib, err := bgp.BuildRIBObs(w, routing, vantage, cfg.Obs)
		if err != nil {
			return err
		}
		ribs[i] = rib
		return nil
	}); err != nil {
		return nil, nil, err
	}
	ribSpan.End()
	origins := bgp.NewOriginTableObs(cfg.Obs, ribs...)
	ds, err := Build(crawl, geodb.NewGeoCity(w), geodb.NewIPLoc(w), origins, cfg)
	if err != nil {
		return nil, nil, err
	}
	return ds, crawl, nil
}
