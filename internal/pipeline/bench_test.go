package pipeline

import (
	"context"
	"sync"
	"testing"

	"eyeballas/internal/astopo"
	"eyeballas/internal/bgp"
	"eyeballas/internal/geodb"
	"eyeballas/internal/obs"
	"eyeballas/internal/p2p"
)

// benchEnv holds everything Build consumes, built once: the world, a
// crawl, both geolocation databases, and a merged origin table.
type benchEnv struct {
	crawl    *p2p.Crawl
	dbA, dbB *geodb.DB
	origins  *bgp.OriginTable
}

var benchSetupOnce = sync.OnceValues(func() (*benchEnv, error) {
	w, err := astopo.Generate(astopo.SmallConfig(71))
	if err != nil {
		return nil, err
	}
	crawl, err := p2p.Run(context.Background(), w, p2p.DefaultConfig(), seedSource(71))
	if err != nil {
		return nil, err
	}
	routing := bgp.ComputeRouting(w)
	var ribs []*bgp.RIB
	for _, a := range w.ASes() {
		if a.Kind != astopo.KindTier1 {
			continue
		}
		rib, err := bgp.BuildRIB(w, routing, a.ASN)
		if err != nil {
			return nil, err
		}
		if ribs = append(ribs, rib); len(ribs) == 3 {
			break
		}
	}
	return &benchEnv{
		crawl:   crawl,
		dbA:     geodb.NewGeoCity(w),
		dbB:     geodb.NewIPLoc(w),
		origins: bgp.NewOriginTable(ribs...),
	}, nil
})

func benchBuild(b *testing.B, reg *obs.Registry) {
	b.Helper()
	env, err := benchSetupOnce()
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Workers = 1 // isolate the scalar stage cost from pool scheduling
	cfg.Obs = reg
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(context.Background(), env.crawl, env.dbA, env.dbB, env.origins, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildObsOff / BenchmarkBuildObsOn are the acceptance pair for
// the observability overhead budget: the full geolocate → origin → dedup
// → condition stage chain with no registry vs. a live one (funnel,
// spans, histograms, shard-aggregated lookup counter all armed). The
// ratio on/off is the end-to-end instrumentation overhead and must stay
// ≤3% (see scripts/bench_obs.sh, which computes it into BENCH_pr3.json).
func BenchmarkBuildObsOff(b *testing.B) { benchBuild(b, nil) }

func BenchmarkBuildObsOn(b *testing.B) { benchBuild(b, obs.New()) }
