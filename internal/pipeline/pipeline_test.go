package pipeline

import (
	"context"
	"sync"
	"testing"

	"eyeballas/internal/astopo"
	"eyeballas/internal/p2p"
)

// sharedEnv is the fixture every test reads (and none mutates).
type sharedEnv struct {
	world *astopo.World
	ds    *Dataset
	crawl *p2p.Crawl
}

// sharedSetup builds the fixture exactly once. sync.OnceValues (rather
// than a package-level struct mutated inside a sync.Once body) keeps the
// fixture safe under `go test -race -shuffle=on`: every access flows
// through the Once's happens-before edge and there is no package-level
// mutable state to write to at all.
var sharedSetup = sync.OnceValues(func() (*sharedEnv, error) {
	w, err := astopo.Generate(astopo.SmallConfig(71))
	if err != nil {
		return nil, err
	}
	ds, crawl, err := Run(context.Background(), w, p2p.DefaultConfig(), DefaultConfig(), 71)
	if err != nil {
		return nil, err
	}
	return &sharedEnv{world: w, ds: ds, crawl: crawl}, nil
})

func setup(t *testing.T) (*astopo.World, *Dataset, *p2p.Crawl) {
	t.Helper()
	env, err := sharedSetup()
	if err != nil {
		t.Fatal(err)
	}
	return env.world, env.ds, env.crawl
}

func TestBuildProducesTargetDataset(t *testing.T) {
	_, ds, crawl := setup(t)
	if len(ds.Order) < 10 {
		t.Fatalf("only %d eligible ASes", len(ds.Order))
	}
	if ds.TotalPeers == 0 {
		t.Fatal("no peers in target dataset")
	}
	if ds.TotalPeers >= len(crawl.Peers) {
		t.Error("conditioning removed nothing; filters are vacuous")
	}
	// Conservation: every crawled peer is either kept or accounted as a
	// drop.
	accounted := ds.TotalPeers + ds.Drops.NoCityRecord + ds.Drops.HighGeoErr +
		ds.Drops.UnmappedIP + ds.Drops.DupIP
	// Peers in ASes later dropped (SmallAS / HighErrAS) are neither in
	// TotalPeers nor individually counted, so accounted <= total.
	if accounted > len(crawl.Peers) {
		t.Errorf("accounting exceeds crawl: %d > %d", accounted, len(crawl.Peers))
	}
}

func TestRecordsWellFormed(t *testing.T) {
	_, ds, _ := setup(t)
	cfg := DefaultConfig()
	for _, rec := range ds.Records() {
		if len(rec.Samples) < cfg.MinPeers {
			t.Fatalf("AS %d kept with %d < %d peers", rec.ASN, len(rec.Samples), cfg.MinPeers)
		}
		if rec.P90GeoErrKm > cfg.MaxP90GeoErrKm {
			t.Fatalf("AS %d kept with p90 geo err %.1f", rec.ASN, rec.P90GeoErrKm)
		}
		appSum := 0
		for _, n := range rec.PeersByApp {
			appSum += n
		}
		if appSum < len(rec.Samples) {
			t.Fatalf("AS %d: app counts %d < samples %d", rec.ASN, appSum, len(rec.Samples))
		}
		for _, s := range rec.Samples {
			if s.City == "" || s.Country == "" {
				t.Fatalf("AS %d sample lacks labels: %+v", rec.ASN, s)
			}
			if s.GeoErrKm > cfg.MaxGeoErrKm {
				t.Fatalf("AS %d sample with geo err %.1f", rec.ASN, s.GeoErrKm)
			}
		}
	}
}

// TestGroupingMatchesGroundTruth: grouping via synthetic BGP tables must
// agree with the crawl's ground-truth AS for the overwhelming majority of
// peers (exactly, in this generator, since prefixes are disjoint).
func TestGroupingMatchesGroundTruth(t *testing.T) {
	w, ds, crawl := setup(t)
	truth := map[string]astopo.ASN{}
	for _, p := range crawl.Peers {
		truth[p.IP.String()] = p.TrueASN
	}
	for _, rec := range ds.Records() {
		if w.AS(rec.ASN) == nil {
			t.Fatalf("dataset contains unknown AS %d", rec.ASN)
		}
	}
	// Spot check: every eligible AS actually had crawled peers.
	for _, rec := range ds.Records() {
		found := false
		for _, p := range crawl.Peers {
			if p.TrueASN == rec.ASN {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("AS %d in dataset but never crawled", rec.ASN)
		}
	}
}

func TestClassificationMostlyMatchesGroundTruth(t *testing.T) {
	// The pipeline infers levels from noisy labels; it should agree with
	// the generator's intent for a clear majority of eligible ASes.
	// Disagreement is expected and realistic (geo errors spread an AS's
	// samples), but wholesale failure indicates a bug.
	w, ds, _ := setup(t)
	agree, total := 0, 0
	for _, rec := range ds.Records() {
		a := w.AS(rec.ASN)
		if a.Kind != astopo.KindEyeball && a.Kind != astopo.KindContent {
			continue
		}
		total++
		if rec.Class.Level == a.Level {
			agree++
		}
	}
	if total == 0 {
		t.Fatal("no eyeball ASes in dataset")
	}
	if frac := float64(agree) / float64(total); frac < 0.5 {
		t.Errorf("level agreement %.2f below 0.5 (%d/%d)", frac, agree, total)
	}
}

func TestDropsPopulated(t *testing.T) {
	_, ds, _ := setup(t)
	if ds.Drops.NoCityRecord == 0 {
		t.Error("no NoCityRecord drops; the geodb no-city mode never fired")
	}
	if ds.Drops.HighGeoErr == 0 {
		t.Error("no HighGeoErr drops; the 100 km filter never fired")
	}
	if ds.Drops.SmallAS == 0 {
		t.Error("no SmallAS drops; the peer floor never fired")
	}
}

func TestCaseStudySubjectInDataset(t *testing.T) {
	w, ds, _ := setup(t)
	cs := w.CaseStudy()
	rec := ds.AS(cs.Subject)
	if rec == nil {
		t.Fatal("case-study subject missing from target dataset")
	}
	if rec.Class.Level != astopo.LevelCity {
		t.Errorf("subject classified as %v, want city", rec.Class.Level)
	}
	if rec.Class.Place != "Rome/IT" {
		t.Errorf("subject place = %q", rec.Class.Place)
	}
}

func TestConfigValidation(t *testing.T) {
	_, _, crawl := setup(t)
	for i, cfg := range []Config{
		{MaxGeoErrKm: 0, MaxP90GeoErrKm: 80, MinPeers: 10},
		{MaxGeoErrKm: 100, MaxP90GeoErrKm: 0, MinPeers: 10},
		{MaxGeoErrKm: 100, MaxP90GeoErrKm: 80, MinPeers: 0},
	} {
		if _, err := Build(context.Background(), crawl, nil, nil, nil, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestDeterministicRun(t *testing.T) {
	w, ds, _ := setup(t)
	ds2, _, err := Run(context.Background(), w, p2p.DefaultConfig(), DefaultConfig(), 71)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds2.Order) != len(ds.Order) || ds2.TotalPeers != ds.TotalPeers {
		t.Fatalf("runs differ: %d/%d ASes, %d/%d peers",
			len(ds2.Order), len(ds.Order), ds2.TotalPeers, ds.TotalPeers)
	}
	for i := range ds.Order {
		if ds.Order[i] != ds2.Order[i] {
			t.Fatal("AS order differs")
		}
	}
}
