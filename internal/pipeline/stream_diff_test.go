package pipeline

import (
	"context"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"eyeballas/internal/faults"
	"eyeballas/internal/geodb"
	"eyeballas/internal/p2p"
)

// The differential harness: BuildStream against the frozen pre-streaming
// reference (buildBatch), bit-for-bit, across batch sizes, worker
// counts, fault plans, dedup-heavy inputs, and the budget/fallback
// paths. assertDatasetsIdentical (determinism_test.go) does the
// Float64bits-level comparison; funnels are compared via their rendered
// summaries, which cover every stage's in/out/per-reason drop counts.

// diffBatchSizes are the ISSUE-mandated sweep points: degenerate (1),
// prime and misaligned (7), large (1024), and bigger than the whole
// crawl (resolved per test from the input size).
var diffBatchSizes = []int{1, 7, 1024}

// assertFunnelsIdentical compares two builds' funnels stage by stage
// through their rendered summaries and checks conservation on both.
func assertFunnelsIdentical(t *testing.T, label string, ref, got *Dataset) {
	t.Helper()
	if err := ref.Funnel.Check(); err != nil {
		t.Fatalf("%s: reference funnel broken: %v", label, err)
	}
	if err := got.Funnel.Check(); err != nil {
		t.Fatalf("%s: stream funnel broken: %v", label, err)
	}
	if rs, gs := ref.Funnel.Summary(), got.Funnel.Summary(); rs != gs {
		t.Fatalf("%s: funnel counters differ\nbatch reference:\n%s\nstream:\n%s", label, rs, gs)
	}
}

// dupHeavyCrawl returns the fixture crawl with a copy of every 37th peer
// appended at the end, so the duplicates land far from their originals —
// guaranteed to straddle batch boundaries at every swept batch size.
func dupHeavyCrawl(crawl *p2p.Crawl) *p2p.Crawl {
	out := &p2p.Crawl{ByApp: make(map[p2p.App]int)}
	out.Peers = append(out.Peers, crawl.Peers...)
	for i := 0; i < len(crawl.Peers); i += 37 {
		out.Peers = append(out.Peers, crawl.Peers[i])
	}
	for _, p := range out.Peers {
		out.ByApp[p.App]++
	}
	return out
}

// TestStreamDiffMatrix is the tentpole's acceptance test: for clean and
// 5%-faulted builds, over the plain crawl and a duplicate-heavy one,
// Build (→ BuildStream) must be bit-identical to the frozen batch
// reference for batch sizes {1, 7, 1024, >crawl} × workers {1, 8} —
// dataset, drop fingerprints, and funnel counters alike.
func TestStreamDiffMatrix(t *testing.T) {
	w, _, fullCrawl := setup(t)
	origins := buildOrigins(t, w)
	dbA, dbB := geodb.NewGeoCity(w), geodb.NewIPLoc(w)

	// A 20k-peer prefix keeps the degenerate batch=1 sweeps fast; every
	// differential property (drops, dedup, app counting, conditioning)
	// is exercised identically, and the full crawl is covered by the
	// RunStream and fallback tests.
	baseCrawl := fullCrawl
	if len(baseCrawl.Peers) > 20000 {
		baseCrawl = &p2p.Crawl{Peers: fullCrawl.Peers[:20000]}
	}

	fivePct := faults.NewPlan(7)
	for _, pt := range []faults.Point{
		faults.GeoMiss, faults.GeoGarbage, faults.GeoNaN, faults.OriginMiss,
	} {
		if err := fivePct.Set(pt, 0.05); err != nil {
			t.Fatal(err)
		}
	}

	crawls := []struct {
		name  string
		crawl *p2p.Crawl
	}{
		{"plain", baseCrawl},
		{"dup_heavy", dupHeavyCrawl(baseCrawl)},
	}
	plans := []struct {
		name string
		plan *faults.Plan
	}{
		{"clean", nil},
		{"faults_5pct", fivePct},
	}

	for _, cr := range crawls {
		for _, pl := range plans {
			refCfg := DefaultConfig()
			refCfg.Workers = 4
			refCfg.Faults = pl.plan
			ref, err := buildBatch(context.Background(), cr.crawl, dbA, dbB, origins, refCfg)
			if err != nil {
				t.Fatal(err)
			}
			batches := append(append([]int(nil), diffBatchSizes...), len(cr.crawl.Peers)+1)
			for _, batch := range batches {
				for _, workers := range []int{1, 8} {
					label := cr.name + "/" + pl.name
					cfg := refCfg
					cfg.Workers = workers
					cfg.BatchSize = batch
					got, err := Build(context.Background(), cr.crawl, dbA, dbB, origins, cfg)
					if err != nil {
						t.Fatalf("%s batch=%d workers=%d: %v", label, batch, workers, err)
					}
					assertDatasetsIdentical(t, ref, got)
					assertFunnelsIdentical(t, label, ref, got)
					if got.CrawledPeers != ref.CrawledPeers {
						t.Fatalf("%s batch=%d: CrawledPeers %d != reference %d", label, batch, got.CrawledPeers, ref.CrawledPeers)
					}
					if ref.Stream != nil {
						t.Fatal("batch reference unexpectedly carries StreamStats")
					}
					st := got.Stream
					if st == nil {
						t.Fatalf("%s batch=%d: streaming build carries no StreamStats", label, batch)
					}
					n := len(cr.crawl.Peers)
					if want := (n + batch - 1) / batch; st.Batches != want || st.BatchSize != batch {
						t.Fatalf("%s: StreamStats %+v, want %d batches of %d over %d peers", label, st, want, batch, n)
					}
					if st.MaxBatch > batch {
						t.Fatalf("%s: MaxBatch %d exceeds batch size %d", label, st.MaxBatch, batch)
					}
				}
			}
		}
	}
}

// TestStreamDiffSingleDBFallback: the fallback rescue — which on the
// streaming path is a literal replay of the source — must land on the
// same dataset as the batch reference's re-scan, including the Degraded
// marking, for misaligned batch sizes.
func TestStreamDiffSingleDBFallback(t *testing.T) {
	w, _, crawl := setup(t)
	origins := buildOrigins(t, w)
	dbA, dbB := geodb.NewGeoCity(w), geodb.NewIPLoc(w)

	plan := faults.NewPlan(7)
	if err := plan.Set(faults.GeoMissB, 0.6); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Faults = plan
	cfg.MaxGeoMissFrac = 0.3
	cfg.SingleDBFallback = true

	ref, err := buildBatch(context.Background(), crawl, dbA, dbB, origins, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Degraded {
		t.Fatal("reference fallback build not degraded — fixture no longer triggers the fallback")
	}
	for _, batch := range diffBatchSizes {
		scfg := cfg
		scfg.BatchSize = batch
		scfg.Workers = 8
		got, err := Build(context.Background(), crawl, dbA, dbB, origins, scfg)
		if err != nil {
			t.Fatalf("batch=%d: %v", batch, err)
		}
		assertDatasetsIdentical(t, ref, got)
		assertFunnelsIdentical(t, "fallback", ref, got)
		if got.Degraded != ref.Degraded || got.DegradedReason != ref.DegradedReason {
			t.Fatalf("batch=%d: degraded marking differs: %v %q vs %v %q",
				batch, got.Degraded, got.DegradedReason, ref.Degraded, ref.DegradedReason)
		}
	}
}

// TestStreamDiffSingleDBMode: requested single-DB builds take the same
// wrapper path; pin them against the reference too.
func TestStreamDiffSingleDBMode(t *testing.T) {
	w, _, crawl := setup(t)
	origins := buildOrigins(t, w)
	dbA, dbB := geodb.NewGeoCity(w), geodb.NewIPLoc(w)
	cfg := DefaultConfig()
	cfg.SingleDB = true
	ref, err := buildBatch(context.Background(), crawl, dbA, dbB, origins, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.BatchSize = 7
	got, err := Build(context.Background(), crawl, dbA, dbB, origins, cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertDatasetsIdentical(t, ref, got)
	assertFunnelsIdentical(t, "single-db", ref, got)
}

// TestRunStreamMatchesRun: the generative end-to-end path — crawl
// streamed unit by unit into BuildStream, no *p2p.Crawl ever built —
// must be bit-identical to Run for clean and fully-faulted plans, for
// every worker count and batch size.
func TestRunStreamMatchesRun(t *testing.T) {
	w, _, _ := setup(t)

	full := faults.NewPlan(7)
	for _, pt := range []faults.Point{
		faults.CrawlLoss, faults.CrawlDup, faults.GeoMiss,
		faults.GeoGarbage, faults.GeoNaN, faults.OriginMiss,
	} {
		if err := full.Set(pt, 0.05); err != nil {
			t.Fatal(err)
		}
	}
	for _, plan := range []*faults.Plan{nil, full} {
		cfg := DefaultConfig()
		cfg.Faults = plan
		ref, _, err := Run(context.Background(), w, p2p.DefaultConfig(), cfg, 71)
		if err != nil {
			t.Fatal(err)
		}
		for _, batch := range []int{0, 4096} {
			for _, workers := range []int{1, 8} {
				scfg := cfg
				scfg.Workers = workers
				scfg.BatchSize = batch
				got, err := RunStream(context.Background(), w, p2p.DefaultConfig(), scfg, 71)
				if err != nil {
					t.Fatalf("batch=%d workers=%d: %v", batch, workers, err)
				}
				assertDatasetsIdentical(t, ref, got)
				assertFunnelsIdentical(t, "run-stream", ref, got)
				if got.CrawledPeers != ref.CrawledPeers {
					t.Fatalf("CrawledPeers %d != Run's %d", got.CrawledPeers, ref.CrawledPeers)
				}
			}
		}
	}
}

// TestRunStreamFunnelConservationWithDups pins the PR's accounting
// bugfix end to end: with crawl-dup injection the streamed funnel must
// still conserve every crawled peer — crawl == kept + drops — with the
// injected duplicates showing up once in CrawledPeers and once in the
// dup_ip drop reason.
func TestRunStreamFunnelConservationWithDups(t *testing.T) {
	w, clean, _ := setup(t)
	plan := faults.NewPlan(7)
	if err := plan.Set(faults.CrawlDup, 0.05); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Faults = plan
	cfg.BatchSize = 512 // small enough that duplicates straddle batches
	ds, err := RunStream(context.Background(), w, p2p.DefaultConfig(), cfg, 71)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Funnel.Check(); err != nil {
		t.Fatalf("funnel conservation broken under crawl-dup streaming: %v", err)
	}
	if ds.CrawledPeers <= clean.CrawledPeers {
		t.Fatalf("5%% crawl-dup did not grow the crawl: %d vs clean %d", ds.CrawledPeers, clean.CrawledPeers)
	}
	if ds.Drops.DupIP <= clean.Drops.DupIP {
		t.Fatalf("dup_ip drops %d not above clean %d", ds.Drops.DupIP, clean.Drops.DupIP)
	}
	if in := ds.Funnel.Stage("geolocate").InCount(); in != int64(ds.CrawledPeers) {
		t.Fatalf("geolocate stage saw %d peers, crawl size is %d", in, ds.CrawledPeers)
	}
	if out := ds.Funnel.Stage("condition").OutCount(); out != int64(ds.TotalPeers) {
		t.Fatalf("condition stage kept %d peers, dataset says %d", out, ds.TotalPeers)
	}
}

// TestBuildStreamFileSource: a build fed from a peers file on disk —
// the bounded-memory ingestion shape for pre-crawled data — matches the
// batch reference over the same peers.
func TestBuildStreamFileSource(t *testing.T) {
	w, _, crawl := setup(t)
	origins := buildOrigins(t, w)
	dbA, dbB := geodb.NewGeoCity(w), geodb.NewIPLoc(w)

	path := filepath.Join(t.TempDir(), "peers.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p2p.WritePeers(context.Background(), f, p2p.SlicePeers(crawl.Peers)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	ref, err := buildBatch(context.Background(), crawl, dbA, dbB, origins, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.BatchSize = 1024
	cfg.Workers = 8
	got, err := BuildStream(context.Background(), p2p.FileSource(path), dbA, dbB, origins, cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertDatasetsIdentical(t, ref, got)
	assertFunnelsIdentical(t, "file-source", ref, got)
}

// truncatingSource delivers the full peer slice on the first Stream call
// and a truncated one afterwards — a deliberately non-replayable source.
type truncatingSource struct {
	peers []p2p.Peer
	calls int
}

func (s *truncatingSource) Stream(ctx context.Context) (p2p.PeerStream, error) {
	s.calls++
	peers := s.peers
	if s.calls > 1 {
		peers = peers[:len(peers)/2]
	}
	st, err := p2p.SlicePeers(peers).Stream(ctx)
	return st, err
}

// TestBuildStreamDetectsNonReplayableSource: when the single-DB fallback
// replays a source that delivers a different sequence, the build must
// fail loudly instead of silently conditioning a half-crawl.
func TestBuildStreamDetectsNonReplayableSource(t *testing.T) {
	w, _, crawl := setup(t)
	origins := buildOrigins(t, w)
	dbA, dbB := geodb.NewGeoCity(w), geodb.NewIPLoc(w)

	plan := faults.NewPlan(7)
	if err := plan.Set(faults.GeoMissB, 0.6); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Faults = plan
	cfg.MaxGeoMissFrac = 0.3
	cfg.SingleDBFallback = true
	_, err := BuildStream(context.Background(), &truncatingSource{peers: crawl.Peers}, dbA, dbB, origins, cfg)
	if err == nil || !strings.Contains(err.Error(), "not replayable") {
		t.Fatalf("got %v, want a non-replayable-source error", err)
	}
}

// TestBuildStreamNilSource: a nil source is a caller bug and must be an
// error, not a panic.
func TestBuildStreamNilSource(t *testing.T) {
	w, _, _ := setup(t)
	origins := buildOrigins(t, w)
	if _, err := BuildStream(context.Background(), nil, geodb.NewGeoCity(w), geodb.NewIPLoc(w), origins, DefaultConfig()); err == nil {
		t.Fatal("nil source accepted")
	}
}

// errStream fails mid-stream; the build must surface the source's error.
type errSource struct{ peers []p2p.Peer }

func (s errSource) Stream(context.Context) (p2p.PeerStream, error) {
	return &errStream{peers: s.peers}, nil
}

type errStream struct {
	peers []p2p.Peer
	off   int
}

func (s *errStream) Next(buf []p2p.Peer) (int, error) {
	if s.off >= len(s.peers)/2 {
		return 0, io.ErrUnexpectedEOF
	}
	n := copy(buf, s.peers[s.off:len(s.peers)/2])
	s.off += n
	return n, nil
}

// TestBuildStreamSourceErrorPropagates: a failing source aborts the
// build with its error and no partial dataset.
func TestBuildStreamSourceErrorPropagates(t *testing.T) {
	w, _, crawl := setup(t)
	origins := buildOrigins(t, w)
	ds, err := BuildStream(context.Background(), errSource{crawl.Peers}, geodb.NewGeoCity(w), geodb.NewIPLoc(w), origins, DefaultConfig())
	if err != io.ErrUnexpectedEOF {
		t.Fatalf("got %v, want io.ErrUnexpectedEOF", err)
	}
	if ds != nil {
		t.Fatal("failed build returned a partial dataset")
	}
}
