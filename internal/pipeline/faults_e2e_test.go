package pipeline

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"eyeballas/internal/faults"
	"eyeballas/internal/p2p"
	"eyeballas/internal/parallel"
)

// equalDatasets compares two builds structurally (the Funnel pointer is
// excluded; its counts surface through Drops and the totals).
func equalDatasets(t *testing.T, label string, a, b *Dataset) {
	t.Helper()
	if a.TotalPeers != b.TotalPeers || a.CrawledPeers != b.CrawledPeers {
		t.Errorf("%s: totals differ: %d/%d vs %d/%d",
			label, a.TotalPeers, a.CrawledPeers, b.TotalPeers, b.CrawledPeers)
	}
	if a.Drops != b.Drops {
		t.Errorf("%s: drops differ: %+v vs %+v", label, a.Drops, b.Drops)
	}
	if !reflect.DeepEqual(a.Order, b.Order) {
		t.Fatalf("%s: eligible-AS sets differ (%d vs %d ASes)", label, len(a.Order), len(b.Order))
	}
	for _, asn := range a.Order {
		ra, rb := a.AS(asn), b.AS(asn)
		if !reflect.DeepEqual(ra.Samples, rb.Samples) {
			t.Fatalf("%s: AS %d samples differ", label, asn)
		}
		if ra.Class != rb.Class {
			t.Errorf("%s: AS %d classification differs", label, asn)
		}
	}
}

// TestFaultMatrixZeroRateBitIdentical: an armed plan whose rates are all
// zero must be indistinguishable from no plan at all — across worker
// counts. This is the harness's own null hypothesis: turning the feature
// on cannot move a single byte of the science.
func TestFaultMatrixZeroRateBitIdentical(t *testing.T) {
	w, baseline, _ := setup(t)

	zero := faults.NewPlan(99)
	for _, pt := range faults.Points {
		if err := zero.Set(pt, 0); err != nil {
			t.Fatal(err)
		}
	}
	for _, workers := range []int{1, 8} {
		cfg := DefaultConfig()
		cfg.Workers = workers
		cfg.Faults = zero
		ds, _, err := Run(context.Background(), w, p2p.DefaultConfig(), cfg, 71)
		if err != nil {
			t.Fatal(err)
		}
		equalDatasets(t, "zero-rate plan", baseline, ds)
	}
}

// TestFaultMatrixFiveADeterministicAcrossWorkers: at a 5% fault rate the
// dataset must still be byte-identical between Workers=1 and Workers=8 —
// injection decisions are keyed by content, not by schedule.
func TestFaultMatrixDeterministicAcrossWorkers(t *testing.T) {
	w, _, _ := setup(t)
	plan := faults.NewPlan(7)
	for _, pt := range []faults.Point{
		faults.CrawlLoss, faults.CrawlDup, faults.GeoMiss,
		faults.GeoGarbage, faults.GeoNaN, faults.OriginMiss,
	} {
		if err := plan.Set(pt, 0.05); err != nil {
			t.Fatal(err)
		}
	}
	build := func(workers int) *Dataset {
		cfg := DefaultConfig()
		cfg.Workers = workers
		cfg.Faults = plan
		ds, _, err := Run(context.Background(), w, p2p.DefaultConfig(), cfg, 71)
		if err != nil {
			t.Fatal(err)
		}
		return ds
	}
	equalDatasets(t, "5% faults", build(1), build(8))
}

// TestFaultMatrixFunnelConservation: with every ingestion fault firing
// at 5%, the funnel must still account for every crawled peer — kept,
// dropped at a peer stage, or inside a dropped AS — and each fault must
// leave its fingerprint in the drop ledger.
func TestFaultMatrixFunnelConservation(t *testing.T) {
	w, clean, _ := setup(t)
	plan := faults.NewPlan(7)
	for _, pt := range []faults.Point{
		faults.CrawlLoss, faults.CrawlDup, faults.GeoMiss,
		faults.GeoGarbage, faults.GeoNaN, faults.OriginMiss,
	} {
		if err := plan.Set(pt, 0.05); err != nil {
			t.Fatal(err)
		}
	}
	cfg := DefaultConfig()
	cfg.Faults = plan
	ds, _, err := Run(context.Background(), w, p2p.DefaultConfig(), cfg, 71)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Funnel.Check(); err != nil {
		t.Fatalf("funnel conservation broken under faults: %v", err)
	}
	if ds.Drops.GarbageCoord == 0 {
		t.Error("geo-garbage/geo-nan at 5% left no garbage_coord drops")
	}
	if ds.Drops.NoCityRecord <= clean.Drops.NoCityRecord {
		t.Errorf("geo-miss at 5%% did not raise no_city drops: %d vs clean %d",
			ds.Drops.NoCityRecord, clean.Drops.NoCityRecord)
	}
	if ds.Drops.UnmappedIP <= clean.Drops.UnmappedIP {
		t.Errorf("origin-miss at 5%% did not raise unmapped drops: %d vs clean %d",
			ds.Drops.UnmappedIP, clean.Drops.UnmappedIP)
	}
	// crawl-dup feeds the dedup stage; the injected duplicates must be
	// absorbed there, not leak into samples.
	if ds.Drops.DupIP <= clean.Drops.DupIP {
		t.Errorf("crawl-dup at 5%% did not raise dup_ip drops: %d vs clean %d",
			ds.Drops.DupIP, clean.Drops.DupIP)
	}
}

// TestFaultMatrixBudgetErrors: fault rates exceeding a configured budget
// must surface as a typed *BudgetError naming the right stage.
func TestFaultMatrixBudgetErrors(t *testing.T) {
	w, _, _ := setup(t)
	cases := []struct {
		name      string
		point     faults.Point
		rate      float64
		wantStage string
		set       func(*Config)
	}{
		{"geolocate", faults.GeoMiss, 0.5, "geolocate",
			func(c *Config) { c.MaxGeoMissFrac = 0.2 }},
		{"origin", faults.OriginMiss, 0.5, "origin",
			func(c *Config) { c.MaxOriginMissFrac = 0.2 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			plan := faults.NewPlan(7)
			if err := plan.Set(tc.point, tc.rate); err != nil {
				t.Fatal(err)
			}
			cfg := DefaultConfig()
			cfg.Faults = plan
			tc.set(&cfg)
			_, _, err := Run(context.Background(), w, p2p.DefaultConfig(), cfg, 71)
			var be *BudgetError
			if !errors.As(err, &be) {
				t.Fatalf("got %v, want *BudgetError", err)
			}
			if be.Stage != tc.wantStage {
				t.Errorf("stage %q, want %q", be.Stage, tc.wantStage)
			}
			if be.Frac <= be.Budget {
				t.Errorf("reported frac %.4f not above budget %.4f", be.Frac, be.Budget)
			}
		})
	}
}

// TestFaultMatrixSingleDBFallback: when only the secondary database
// blows the geo budget, SingleDBFallback must rescue the build from the
// primary alone and mark it degraded; without the fallback the same
// plan is a hard *BudgetError.
func TestFaultMatrixSingleDBFallback(t *testing.T) {
	w, _, _ := setup(t)
	plan := faults.NewPlan(7)
	if err := plan.Set(faults.GeoMissB, 0.6); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Faults = plan
	cfg.MaxGeoMissFrac = 0.3

	_, _, err := Run(context.Background(), w, p2p.DefaultConfig(), cfg, 71)
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("without fallback: got %v, want *BudgetError", err)
	}

	cfg.SingleDBFallback = true
	ds, _, err := Run(context.Background(), w, p2p.DefaultConfig(), cfg, 71)
	if err != nil {
		t.Fatalf("fallback build failed: %v", err)
	}
	if !ds.Degraded {
		t.Fatal("fallback build not marked Degraded")
	}
	if !strings.Contains(ds.DegradedReason, "single-db fallback") {
		t.Errorf("degraded reason %q", ds.DegradedReason)
	}
	if err := ds.Funnel.Check(); err != nil {
		t.Errorf("fallback funnel conservation broken: %v", err)
	}
	if len(ds.Order) == 0 {
		t.Error("fallback dataset empty")
	}
}

// TestFaultMatrixWorkerPanic: an injected worker panic must come back
// as an error carrying the captured stack — never a crashed test
// process — and a zero-rate run must be unaffected.
func TestFaultMatrixWorkerPanic(t *testing.T) {
	w, _, _ := setup(t)
	plan := faults.NewPlan(7)
	if err := plan.Set(faults.WorkerPanic, 0.001); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Faults = plan
	_, _, err := Run(context.Background(), w, p2p.DefaultConfig(), cfg, 71)
	var pe *parallel.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want *parallel.PanicError", err)
	}
	if !strings.Contains(pe.Error(), "injected worker panic") {
		t.Errorf("panic error %q lacks the injected message", pe.Error())
	}
	if len(pe.Stack) == 0 {
		t.Error("panic error carries no stack")
	}
}
