package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestForVisitsAllOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			const n = 500
			visited := make([]int32, n)
			err := For(context.Background(), workers, n, func(i int) error {
				atomic.AddInt32(&visited[i], 1)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range visited {
				if v != 1 {
					t.Fatalf("index %d visited %d times", i, v)
				}
			}
		})
	}
}

func TestForEachPassesItems(t *testing.T) {
	items := []string{"a", "b", "c", "d", "e"}
	got := make([]string, len(items))
	if err := ForEach(context.Background(), 4, items, func(i int, s string) error {
		got[i] = s
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range items {
		if got[i] != items[i] {
			t.Fatalf("index %d: got %q want %q", i, got[i], items[i])
		}
	}
}

func TestZeroItems(t *testing.T) {
	called := int32(0)
	ctx := context.Background()
	if err := For(ctx, 8, 0, func(int) error { atomic.AddInt32(&called, 1); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := ForEach(ctx, 8, []int(nil), func(int, int) error { atomic.AddInt32(&called, 1); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := Blocks(ctx, 8, 0, 16, func(int, int) error { atomic.AddInt32(&called, 1); return nil }); err != nil {
		t.Fatal(err)
	}
	if called != 0 {
		t.Fatalf("callback invoked %d times for empty input", called)
	}
}

func TestNilContextIsBackground(t *testing.T) {
	var visited int32
	//nolint:staticcheck // nil ctx is an explicitly documented no-op alias for Background.
	if err := For(nil, 4, 100, func(i int) error { atomic.AddInt32(&visited, 1); return nil }); err != nil {
		t.Fatal(err)
	}
	if visited != 100 {
		t.Fatalf("visited %d of 100", visited)
	}
}

func TestSingleItemSingleWorker(t *testing.T) {
	n := int32(0)
	err := For(context.Background(), 1, 1, func(i int) error {
		if i != 0 {
			t.Errorf("got index %d", i)
		}
		atomic.AddInt32(&n, 1)
		return nil
	})
	if err != nil || n != 1 {
		t.Fatalf("err=%v n=%d", err, n)
	}
}

// TestFirstErrorLowestIndex checks index-ordered error selection: among
// concurrent failures, the lowest index must win regardless of which
// goroutine records its error first. Run many rounds to give the race
// detector and the scheduler room to interleave.
func TestFirstErrorLowestIndex(t *testing.T) {
	const n = 300
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for round := 0; round < 50; round++ {
		err := For(context.Background(), 8, n, func(i int) error {
			switch i {
			case 13:
				return errLow
			case 14, 100, n - 1:
				return errHigh
			}
			return nil
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("round %d: got %v, want the lowest-index error", round, err)
		}
	}
}

// TestConcurrentFailuresAllIndexes makes every callback fail with a
// distinct error; index 0's error must always surface.
func TestConcurrentFailuresAllIndexes(t *testing.T) {
	const n = 128
	errs := make([]error, n)
	for i := range errs {
		errs[i] = fmt.Errorf("err %d", i)
	}
	for round := 0; round < 25; round++ {
		err := For(context.Background(), 16, n, func(i int) error { return errs[i] })
		if !errors.Is(err, errs[0]) {
			t.Fatalf("round %d: got %v, want %v", round, err, errs[0])
		}
	}
}

func TestErrorDoesNotAbortOtherIndexes(t *testing.T) {
	const n = 64
	var visited int32
	err := For(context.Background(), 4, n, func(i int) error {
		atomic.AddInt32(&visited, 1)
		if i == 0 {
			return errors.New("early")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	// With >1 worker every index is still dispatched; with the inline
	// fast path (1 effective worker) the loop stops early, so only
	// require that a failure never deadlocks or loses work silently.
	if visited == 0 {
		t.Fatal("no indexes visited")
	}
}

// TestPanicBecomesError: a panicking callback must surface as a
// *PanicError at the call site — identically for the inline and pooled
// paths — carrying the panic value and a captured stack that names the
// panicking function.
func TestPanicBecomesError(t *testing.T) {
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			err := For(context.Background(), workers, 32, func(i int) error {
				if i == 7 {
					panic("boom 7")
				}
				return nil
			})
			var pe *PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("got %v (%T), want *PanicError", err, err)
			}
			if s, ok := pe.Value.(string); !ok || s != "boom 7" {
				t.Fatalf("panic value %v, want \"boom 7\"", pe.Value)
			}
			if len(pe.Stack) == 0 {
				t.Fatal("no stack captured")
			}
			if !strings.Contains(err.Error(), "boom 7") {
				t.Fatalf("Error() = %q does not mention the panic value", err.Error())
			}
		})
	}
}

// TestPanicLowestIndexWins: with several panicking indexes, the reported
// error must be the lowest index's, deterministically.
func TestPanicLowestIndexWins(t *testing.T) {
	for round := 0; round < 25; round++ {
		err := For(context.Background(), 8, 200, func(i int) error {
			switch i {
			case 5, 6, 150:
				panic(fmt.Sprintf("panic %d", i))
			}
			return nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("round %d: got %v (%T), want *PanicError", round, err, err)
		}
		if s, ok := pe.Value.(string); !ok || s != "panic 5" {
			t.Fatalf("round %d: panic value %v, want \"panic 5\"", round, pe.Value)
		}
	}
}

// TestPanicVsErrorLowestIndexWins: panics and plain errors compete under
// the same lowest-index rule; a panic at index 10 loses to an error at
// index 3 and beats an error at index 40.
func TestPanicVsErrorLowestIndexWins(t *testing.T) {
	errEarly := errors.New("early error")
	for round := 0; round < 25; round++ {
		err := For(context.Background(), 4, 50, func(i int) error {
			switch i {
			case 3:
				return errEarly
			case 10:
				panic("explode")
			}
			return nil
		})
		if !errors.Is(err, errEarly) {
			t.Fatalf("round %d: got %v, want the lower-index plain error", round, err)
		}
	}
	for round := 0; round < 25; round++ {
		err := For(context.Background(), 4, 50, func(i int) error {
			switch i {
			case 10:
				panic("explode")
			case 40:
				return errEarly
			}
			return nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("round %d: got %v, want the lower-index *PanicError", round, err)
		}
	}
}

func TestBlocksPartitionExactly(t *testing.T) {
	for _, tc := range []struct{ n, block int }{
		{1, 1}, {7, 3}, {100, 1}, {100, 7}, {100, 100}, {100, 1000}, {4096, 64},
	} {
		for _, workers := range []int{1, 5} {
			covered := make([]int32, tc.n)
			err := Blocks(context.Background(), workers, tc.n, tc.block, func(lo, hi int) error {
				if lo >= hi || lo < 0 || hi > tc.n {
					return fmt.Errorf("bad block [%d,%d)", lo, hi)
				}
				if hi-lo > tc.block {
					return fmt.Errorf("block [%d,%d) exceeds size %d", lo, hi, tc.block)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&covered[i], 1)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("n=%d block=%d workers=%d: %v", tc.n, tc.block, workers, err)
			}
			for i, c := range covered {
				if c != 1 {
					t.Fatalf("n=%d block=%d workers=%d: index %d covered %d times",
						tc.n, tc.block, workers, i, c)
				}
			}
		}
	}
}

// TestBlocksDecompositionIndependentOfWorkers: the default block
// boundaries must be a function of n only — the determinism guarantee the
// KDE engine relies on.
func TestBlocksDecompositionIndependentOfWorkers(t *testing.T) {
	boundaries := func(workers, n int) map[[2]int]bool {
		var mu sync.Mutex
		set := map[[2]int]bool{}
		if err := Blocks(context.Background(), workers, n, 0, func(lo, hi int) error {
			mu.Lock()
			set[[2]int{lo, hi}] = true
			mu.Unlock()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return set
	}
	for _, n := range []int{1, 17, 255, 256, 257, 10000} {
		ref := boundaries(1, n)
		for _, workers := range []int{2, 3, 16} {
			got := boundaries(workers, n)
			if len(got) != len(ref) {
				t.Fatalf("n=%d: %d blocks at workers=%d, %d at workers=1", n, len(got), workers, len(ref))
			}
			for b := range ref {
				if !got[b] {
					t.Fatalf("n=%d workers=%d: block %v missing", n, workers, b)
				}
			}
		}
	}
}

func TestBlocksErrorLowestBlockWins(t *testing.T) {
	errA := errors.New("block 0")
	errB := errors.New("late block")
	for round := 0; round < 25; round++ {
		err := Blocks(context.Background(), 8, 1000, 10, func(lo, hi int) error {
			switch lo {
			case 40:
				return errA
			case 50, 990:
				return errB
			}
			return nil
		})
		if !errors.Is(err, errA) {
			t.Fatalf("round %d: got %v, want %v", round, err, errA)
		}
	}
}

// TestPreCancelledContext: a context that is already done must prevent
// any callback from running, for every worker count.
func TestPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 8} {
		var called int32
		err := For(ctx, workers, 1000, func(i int) error {
			atomic.AddInt32(&called, 1)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: got %v, want context.Canceled", workers, err)
		}
		if called != 0 {
			t.Fatalf("workers=%d: %d callbacks ran under a cancelled context", workers, called)
		}
	}
}

// TestCancellationStopsWithinOneBlock: once the context is cancelled,
// workers must stop claiming new blocks — the pool returns ctx.Err()
// having run only the blocks already in flight plus at most one more
// claim race per worker, never the whole input.
func TestCancellationStopsWithinOneBlock(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			const n, block = 10000, 1
			var ran int32
			err := Blocks(ctx, workers, n, block, func(lo, hi int) error {
				if atomic.AddInt32(&ran, 1) == 5 {
					cancel() // cancel from inside the 5th block
				}
				return nil
			})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("got %v, want context.Canceled", err)
			}
			// Each worker may have claimed one more block before seeing
			// the cancellation; anything near n means it never stopped.
			if got := atomic.LoadInt32(&ran); int(got) > 5+workers+1 {
				t.Fatalf("ran %d blocks after cancellation at block 5 (workers=%d)", got, workers)
			}
		})
	}
}

// TestCancellationBeatsBlockErrors: a cancelled pool may have skipped
// blocks, so ctx.Err() must win over whatever block errors landed —
// otherwise the reported error would depend on scheduling.
func TestCancellationBeatsBlockErrors(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errBlock := errors.New("block failure")
	err := Blocks(ctx, 4, 1000, 1, func(lo, hi int) error {
		cancel()
		return errBlock
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled to win over block errors", err)
	}
}

// TestCancellationNoGoroutineLeak: a cancelled pool must exit through
// the normal WaitGroup path and leave no workers behind.
func TestCancellationNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for round := 0; round < 20; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		_ = Blocks(ctx, 8, 5000, 1, func(lo, hi int) error {
			if lo == 10 {
				cancel()
			}
			return nil
		})
		cancel()
	}
	// Give exiting goroutines a moment; retry to tolerate unrelated
	// runtime churn.
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		after := runtime.NumGoroutine()
		if after <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after 20 cancelled pools", before, after)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCancellationReturnsPromptly: cancellation must take effect at the
// next block boundary — a pool of slow blocks returns well before it
// would have finished all of them.
func TestCancellationReturnsPromptly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const n = 1000 // 1000 blocks × 1ms each = 1s+ if cancellation were ignored
	start := time.Now()
	var ran int32
	err := Blocks(ctx, 2, n, 1, func(lo, hi int) error {
		if atomic.AddInt32(&ran, 1) == 3 {
			cancel()
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	// Generous margin: the pool only has to stop claiming blocks, so a
	// few in-flight ones may finish, but nothing near the full second.
	if elapsed > 500*time.Millisecond {
		t.Fatalf("cancelled pool took %v to return", elapsed)
	}
}

func TestResolve(t *testing.T) {
	if got := Resolve(0, 100); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Resolve(0, 100) = %d, want GOMAXPROCS", got)
	}
	if got := Resolve(-3, 100); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Resolve(-3, 100) = %d, want GOMAXPROCS", got)
	}
	if got := Resolve(8, 3); got != 3 {
		t.Errorf("Resolve(8, 3) = %d, want 3", got)
	}
	if got := Resolve(8, 0); got != 1 {
		t.Errorf("Resolve(8, 0) = %d, want 1", got)
	}
	if got := Resolve(2, 100); got != 2 {
		t.Errorf("Resolve(2, 100) = %d, want 2", got)
	}
}

func TestDefaultBlock(t *testing.T) {
	for _, tc := range []struct{ n, want int }{
		{0, 1}, {1, 1}, {256, 1}, {257, 2}, {10000, 40},
	} {
		if got := DefaultBlock(tc.n); got != tc.want {
			t.Errorf("DefaultBlock(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}
