package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestForVisitsAllOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			const n = 500
			visited := make([]int32, n)
			err := For(workers, n, func(i int) error {
				atomic.AddInt32(&visited[i], 1)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range visited {
				if v != 1 {
					t.Fatalf("index %d visited %d times", i, v)
				}
			}
		})
	}
}

func TestForEachPassesItems(t *testing.T) {
	items := []string{"a", "b", "c", "d", "e"}
	got := make([]string, len(items))
	if err := ForEach(4, items, func(i int, s string) error {
		got[i] = s
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range items {
		if got[i] != items[i] {
			t.Fatalf("index %d: got %q want %q", i, got[i], items[i])
		}
	}
}

func TestZeroItems(t *testing.T) {
	called := int32(0)
	if err := For(8, 0, func(int) error { atomic.AddInt32(&called, 1); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := ForEach(8, []int(nil), func(int, int) error { atomic.AddInt32(&called, 1); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := Blocks(8, 0, 16, func(int, int) error { atomic.AddInt32(&called, 1); return nil }); err != nil {
		t.Fatal(err)
	}
	if called != 0 {
		t.Fatalf("callback invoked %d times for empty input", called)
	}
}

func TestSingleItemSingleWorker(t *testing.T) {
	n := int32(0)
	err := For(1, 1, func(i int) error {
		if i != 0 {
			t.Errorf("got index %d", i)
		}
		atomic.AddInt32(&n, 1)
		return nil
	})
	if err != nil || n != 1 {
		t.Fatalf("err=%v n=%d", err, n)
	}
}

// TestFirstErrorLowestIndex checks index-ordered error selection: among
// concurrent failures, the lowest index must win regardless of which
// goroutine records its error first. Run many rounds to give the race
// detector and the scheduler room to interleave.
func TestFirstErrorLowestIndex(t *testing.T) {
	const n = 300
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for round := 0; round < 50; round++ {
		err := For(8, n, func(i int) error {
			switch i {
			case 13:
				return errLow
			case 14, 100, n - 1:
				return errHigh
			}
			return nil
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("round %d: got %v, want the lowest-index error", round, err)
		}
	}
}

// TestConcurrentFailuresAllIndexes makes every callback fail with a
// distinct error; index 0's error must always surface.
func TestConcurrentFailuresAllIndexes(t *testing.T) {
	const n = 128
	errs := make([]error, n)
	for i := range errs {
		errs[i] = fmt.Errorf("err %d", i)
	}
	for round := 0; round < 25; round++ {
		err := For(16, n, func(i int) error { return errs[i] })
		if !errors.Is(err, errs[0]) {
			t.Fatalf("round %d: got %v, want %v", round, err, errs[0])
		}
	}
}

func TestErrorDoesNotAbortOtherIndexes(t *testing.T) {
	const n = 64
	var visited int32
	err := For(4, n, func(i int) error {
		atomic.AddInt32(&visited, 1)
		if i == 0 {
			return errors.New("early")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	// With >1 worker every index is still dispatched; with the inline
	// fast path (1 effective worker) the loop stops early, so only
	// require that a failure never deadlocks or loses work silently.
	if visited == 0 {
		t.Fatal("no indexes visited")
	}
}

func TestPanicPropagation(t *testing.T) {
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("panic did not propagate")
				}
				if s, ok := r.(string); !ok || s != "boom 7" {
					t.Fatalf("recovered %v, want \"boom 7\"", r)
				}
			}()
			_ = For(workers, 32, func(i int) error {
				if i == 7 {
					panic("boom 7")
				}
				return nil
			})
		})
	}
}

// TestPanicLowestIndexWins: with several panicking indexes, the re-raised
// value must be the lowest index's, deterministically.
func TestPanicLowestIndexWins(t *testing.T) {
	for round := 0; round < 25; round++ {
		func() {
			defer func() {
				r := recover()
				if s, ok := r.(string); !ok || s != "panic 5" {
					t.Fatalf("round %d: recovered %v, want \"panic 5\"", round, r)
				}
			}()
			_ = For(8, 200, func(i int) error {
				switch i {
				case 5, 6, 150:
					panic(fmt.Sprintf("panic %d", i))
				}
				return nil
			})
		}()
	}
}

func TestPanicBeatsError(t *testing.T) {
	// A panic anywhere must surface as a panic even when other indexes
	// returned errors.
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	_ = For(4, 50, func(i int) error {
		if i == 10 {
			panic("explode")
		}
		return errors.New("regular")
	})
}

func TestBlocksPartitionExactly(t *testing.T) {
	for _, tc := range []struct{ n, block int }{
		{1, 1}, {7, 3}, {100, 1}, {100, 7}, {100, 100}, {100, 1000}, {4096, 64},
	} {
		for _, workers := range []int{1, 5} {
			covered := make([]int32, tc.n)
			err := Blocks(workers, tc.n, tc.block, func(lo, hi int) error {
				if lo >= hi || lo < 0 || hi > tc.n {
					return fmt.Errorf("bad block [%d,%d)", lo, hi)
				}
				if hi-lo > tc.block {
					return fmt.Errorf("block [%d,%d) exceeds size %d", lo, hi, tc.block)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&covered[i], 1)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("n=%d block=%d workers=%d: %v", tc.n, tc.block, workers, err)
			}
			for i, c := range covered {
				if c != 1 {
					t.Fatalf("n=%d block=%d workers=%d: index %d covered %d times",
						tc.n, tc.block, workers, i, c)
				}
			}
		}
	}
}

// TestBlocksDecompositionIndependentOfWorkers: the default block
// boundaries must be a function of n only — the determinism guarantee the
// KDE engine relies on.
func TestBlocksDecompositionIndependentOfWorkers(t *testing.T) {
	boundaries := func(workers, n int) map[[2]int]bool {
		var mu sync.Mutex
		set := map[[2]int]bool{}
		if err := Blocks(workers, n, 0, func(lo, hi int) error {
			mu.Lock()
			set[[2]int{lo, hi}] = true
			mu.Unlock()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return set
	}
	for _, n := range []int{1, 17, 255, 256, 257, 10000} {
		ref := boundaries(1, n)
		for _, workers := range []int{2, 3, 16} {
			got := boundaries(workers, n)
			if len(got) != len(ref) {
				t.Fatalf("n=%d: %d blocks at workers=%d, %d at workers=1", n, len(got), workers, len(ref))
			}
			for b := range ref {
				if !got[b] {
					t.Fatalf("n=%d workers=%d: block %v missing", n, workers, b)
				}
			}
		}
	}
}

func TestBlocksErrorLowestBlockWins(t *testing.T) {
	errA := errors.New("block 0")
	errB := errors.New("late block")
	for round := 0; round < 25; round++ {
		err := Blocks(8, 1000, 10, func(lo, hi int) error {
			switch lo {
			case 40:
				return errA
			case 50, 990:
				return errB
			}
			return nil
		})
		if !errors.Is(err, errA) {
			t.Fatalf("round %d: got %v, want %v", round, err, errA)
		}
	}
}

func TestResolve(t *testing.T) {
	if got := Resolve(0, 100); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Resolve(0, 100) = %d, want GOMAXPROCS", got)
	}
	if got := Resolve(-3, 100); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Resolve(-3, 100) = %d, want GOMAXPROCS", got)
	}
	if got := Resolve(8, 3); got != 3 {
		t.Errorf("Resolve(8, 3) = %d, want 3", got)
	}
	if got := Resolve(8, 0); got != 1 {
		t.Errorf("Resolve(8, 0) = %d, want 1", got)
	}
	if got := Resolve(2, 100); got != 2 {
		t.Errorf("Resolve(2, 100) = %d, want 2", got)
	}
}

func TestDefaultBlock(t *testing.T) {
	for _, tc := range []struct{ n, want int }{
		{0, 1}, {1, 1}, {256, 1}, {257, 2}, {10000, 40},
	} {
		if got := DefaultBlock(tc.n); got != tc.want {
			t.Errorf("DefaultBlock(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}
