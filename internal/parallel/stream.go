package parallel

import (
	"context"
	"errors"
	"fmt"
	"io"
)

// DefaultBatchSize is the batch size Batched uses when the caller passes
// batch <= 0. It is large enough that per-batch pool overhead is noise,
// and small enough that the two reusable batch buffers stay a fraction
// of any realistic kept-result working set.
const DefaultBatchSize = 8192

// Batched pumps a stream through the pool in fixed-size batches: fill
// produces up to len(buf) items, work maps item i of the current batch
// to an index-addressed result, and fold consumes each completed batch
// serially, in arrival order, on the calling goroutine.
//
// The two batch buffers are allocated once and reused, so the pump's
// own footprint is O(batch) regardless of stream length. Determinism
// matches the rest of the package: within a batch, work fans out over
// Blocks (fixed decomposition, lowest-index-wins errors and panics) and
// fold sees results in stream order, so the sequence of fold calls — and
// anything accumulated across them — is byte-identical for every worker
// count. Because batches are consumed strictly in order, the failure
// that surfaces is the one at the lowest stream position for every
// batch size too.
//
// fill follows the io.Reader convention: it returns the number of items
// written into buf and io.EOF (possibly alongside n > 0) at end of
// stream. Returning (0, nil) is reported as an error rather than
// spinning — a stream with nothing to deliver must say io.EOF. Any
// other error from fill, work, or fold aborts the pump; cancellation is
// observed between batches and at the pool's block boundaries.
func Batched[T, R any](ctx context.Context, workers, batch int, fill func(buf []T) (int, error), work func(i int, item T) (R, error), fold func(batch []T, results []R) error) error {
	if batch <= 0 {
		batch = DefaultBatchSize
	}
	if ctx == nil {
		ctx = context.Background()
	}
	buf := make([]T, batch)
	results := make([]R, batch)
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		n, ferr := fill(buf)
		if n < 0 || n > batch {
			return fmt.Errorf("parallel: Batched fill returned n=%d outside [0,%d]", n, batch)
		}
		if ferr != nil && ferr != io.EOF {
			return ferr
		}
		if n == 0 && ferr == nil {
			return errors.New("parallel: Batched fill returned (0, nil); an exhausted stream must return io.EOF")
		}
		if n > 0 {
			items, res := buf[:n], results[:n]
			if err := Blocks(ctx, workers, n, 0, func(lo, hi int) error {
				for i := lo; i < hi; i++ {
					r, err := work(i, items[i])
					if err != nil {
						return err
					}
					res[i] = r
				}
				return nil
			}); err != nil {
				return err
			}
			if err := fold(items, res); err != nil {
				return err
			}
		}
		if ferr == io.EOF {
			return nil
		}
	}
}
