// Package parallel provides the shared bounded worker pool used by every
// hot path in the reproduction: the KDE separable convolution, the
// measurement pipeline's per-peer and per-AS stages, and the experiments'
// per-AS fan-outs.
//
// The pool is deliberately deterministic-friendly:
//
//   - Work is partitioned by *index* (For/ForEach) or into *fixed-size
//     blocks* (Blocks) whose boundaries depend only on the item count,
//     never on the worker count. Callers that write results into
//     index-addressed slots therefore produce byte-identical output for
//     any Workers setting.
//   - Errors carry their index: after all work finishes, the error at the
//     lowest index wins, so the returned error is the same regardless of
//     goroutine scheduling.
//   - Panics are recovered in the workers and converted into a
//     *PanicError carrying the panicking goroutine's captured stack,
//     selected with the same lowest-index-wins rule as plain errors. A
//     panicking callback therefore surfaces as an ordinary error at the
//     call site instead of crashing the process from an anonymous
//     goroutine — and the inline workers==1 path converts identically,
//     so the outcome is the same for every worker count.
//   - Cancellation is cooperative at block boundaries: every entry point
//     takes a context.Context, workers stop claiming blocks once it is
//     done, and the pool returns ctx.Err(). A cancelled pool leaks no
//     goroutines (workers exit through the normal WaitGroup path).
//
// A workers argument <= 0 selects runtime.GOMAXPROCS(0); 1 runs inline on
// the calling goroutine with no synchronization at all.
package parallel

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"eyeballas/internal/obs"
)

// PanicError is a worker panic recovered by the pool and converted into
// an error, so a panicking callback cannot crash the process from an
// anonymous goroutine or unwind across package boundaries. Value is the
// recovered panic value; Stack is the panicking goroutine's stack,
// captured at recover time (the context a bare re-panic would lose).
type PanicError struct {
	Value any
	Stack []byte
}

// Error renders the panic value; the captured stack is available on the
// struct for logs and crash reports.
func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: worker panic: %v", e.Value)
}

// Metrics is the pool's instrumentation bundle: how many blocks were
// dispatched, how long each one waited in the queue (from pool start to
// pickup), how long it ran, and per-worker busy time. All observations
// are timing-only side channels — enabling them never changes what the
// pool computes or in what decomposition.
type Metrics struct {
	reg    *obs.Registry
	blocks *obs.Counter
	wait   *obs.Histogram
	block  *obs.Histogram

	mu   sync.Mutex
	busy []*obs.Counter // per worker index, created lazily
}

// MetricsFrom builds the pool metrics backed by reg (nil reg → nil
// Metrics, the disabled state).
func MetricsFrom(reg *obs.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		reg:    reg,
		blocks: reg.Counter("eyeball_parallel_blocks_total"),
		wait:   reg.Histogram("eyeball_parallel_queue_wait_seconds", obs.LatencyBuckets()),
		block:  reg.Histogram("eyeball_parallel_block_seconds", obs.LatencyBuckets()),
	}
}

// busyCounter returns the busy-time counter for one worker index.
func (m *Metrics) busyCounter(w int) *obs.Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.busy) <= w {
		m.busy = append(m.busy,
			m.reg.Counter("eyeball_parallel_worker_busy_ns_total", "worker", strconv.Itoa(len(m.busy))))
	}
	return m.busy[w]
}

// metrics is the process-wide pool instrumentation, installed by the
// CLIs via SetMetrics. The pool reads it with one atomic pointer load
// per pool invocation (not per block), so the disabled state costs one
// load and a branch.
var metrics atomic.Pointer[Metrics]

// SetMetrics installs (or, with nil, removes) the pool's metrics sink.
func SetMetrics(m *Metrics) { metrics.Store(m) }

// recordBlock folds one finished block into the metrics.
func (m *Metrics) recordBlock(worker int, poolStart, blockStart time.Time, end time.Time) {
	m.blocks.Inc()
	m.wait.Observe(blockStart.Sub(poolStart).Seconds())
	d := end.Sub(blockStart)
	m.block.Observe(d.Seconds())
	m.busyCounter(worker).Add(int64(d))
}

// DefaultWorkers is the worker count used when a caller passes
// workers <= 0: the process's GOMAXPROCS.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Resolve normalizes a workers knob against n units of work: non-positive
// values become DefaultWorkers, and the result never exceeds n (there is
// no point parking goroutines with nothing to do).
func Resolve(workers, n int) int {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// DefaultBlock picks a block size for Blocks when the caller passes
// block <= 0. It is a fixed function of n only — independent of the
// worker count — so the decomposition (and therefore any
// decomposition-sensitive arithmetic) is identical for every Workers
// setting: at most 256 blocks, at least 1 index each.
func DefaultBlock(n int) int {
	b := (n + 255) / 256
	if b < 1 {
		b = 1
	}
	return b
}

// For runs fn(i) for every i in [0, n) on up to workers goroutines.
// Indexes are dispatched one at a time (good load balancing for per-item
// work of uneven cost, e.g. per-AS KDE surfaces). All indexes are visited
// even after a failure; the error with the lowest index is returned.
// When ctx is cancelled the pool stops dispatching, drains, and returns
// ctx.Err().
func For(ctx context.Context, workers, n int, fn func(i int) error) error {
	return blocks(ctx, workers, n, 1, func(lo, hi int) (int, error) {
		for i := lo; i < hi; i++ {
			if err := fn(i); err != nil {
				return i, err
			}
		}
		return 0, nil
	})
}

// ForEach runs fn(i, items[i]) for every item on up to workers
// goroutines, with For's dispatch, error, and cancellation semantics.
func ForEach[T any](ctx context.Context, workers int, items []T, fn func(i int, item T) error) error {
	return For(ctx, workers, len(items), func(i int) error { return fn(i, items[i]) })
}

// Blocks partitions [0, n) into consecutive blocks of the given size (the
// last block may be short; block <= 0 means DefaultBlock(n)) and runs
// fn(lo, hi) for each block on up to workers goroutines. Block boundaries
// depend only on n and block — never on workers — so per-block arithmetic
// decomposes identically for every worker count. An error is attributed
// to its block's lo index; the lowest one wins. Cancellation is observed
// between blocks: once ctx is done no further block starts, running
// blocks finish, and the pool returns ctx.Err().
func Blocks(ctx context.Context, workers, n, block int, fn func(lo, hi int) error) error {
	if block <= 0 {
		block = DefaultBlock(n)
	}
	return blocks(ctx, workers, n, block, func(lo, hi int) (int, error) {
		return lo, fn(lo, hi)
	})
}

// indexed pairs a work-item index with its outcome, for lowest-index-wins
// selection.
type indexed struct {
	idx int
	set bool
}

// blocks is the single pool implementation behind For and Blocks. fn
// processes [lo, hi) and reports the index of its failure (ignored when
// the error is nil). A nil ctx is treated as context.Background().
func blocks(ctx context.Context, workers, n, block int, fn func(lo, hi int) (int, error)) error {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	nblocks := (n + block - 1) / block
	workers = Resolve(workers, nblocks)
	m := metrics.Load()
	var poolStart time.Time
	if m != nil {
		poolStart = time.Now()
	}
	if workers == 1 {
		// Inline fast path: no goroutines, no synchronization. Stops at
		// the first error, which is necessarily the lowest-index one;
		// panics convert to *PanicError exactly like the pooled path so
		// callers see the same outcome for every worker count.
		for b := 0; b < nblocks; b++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			lo := b * block
			hi := lo + block
			if hi > n {
				hi = n
			}
			var blockStart time.Time
			if m != nil {
				blockStart = time.Now()
			}
			_, err := runBlock(fn, lo, hi)
			if m != nil {
				m.recordBlock(0, poolStart, blockStart, time.Now())
			}
			if err != nil {
				return err
			}
		}
		return nil
	}

	var (
		wg   sync.WaitGroup
		next atomic.Int64

		mu       sync.Mutex
		firstErr error
		errAt    = indexed{idx: math.MaxInt}
	)
	next.Store(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				// Cooperative cancellation: stop claiming blocks once the
				// context is done. Running blocks are never interrupted,
				// so the caller regains control within one block boundary.
				if ctx.Err() != nil {
					return
				}
				b := int(next.Add(1))
				if b >= nblocks {
					return
				}
				lo := b * block
				hi := lo + block
				if hi > n {
					hi = n
				}
				var blockStart time.Time
				if m != nil {
					blockStart = time.Now()
				}
				idx, err := runBlock(fn, lo, hi)
				if m != nil {
					m.recordBlock(worker, poolStart, blockStart, time.Now())
				}
				if err == nil {
					continue
				}
				mu.Lock()
				if !errAt.set || idx < errAt.idx {
					firstErr, errAt = err, indexed{idx: idx, set: true}
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	// A cancelled pool may have skipped blocks, so any partial result is
	// untrustworthy: report the cancellation (deterministically) rather
	// than whichever block errors happened to land first.
	if err := ctx.Err(); err != nil {
		return err
	}
	return firstErr
}

// runBlock invokes fn over one block, converting a panic into a
// *PanicError attributed to the block's lo index, so the pool can select
// the lowest-index failure deterministically. The stack is captured
// inside the deferred recover — i.e. the panicking goroutine's own
// frames, the context a bare re-panic across goroutines would lose.
func runBlock(fn func(lo, hi int) (int, error), lo, hi int) (idx int, err error) {
	defer func() {
		if r := recover(); r != nil {
			idx, err = lo, &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(lo, hi)
}
