package parallel

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"

	"eyeballas/internal/obs"
)

// TestPoolMetricsSmoke installs a metrics sink, runs a Blocks pass, and
// checks the counters moved: the pool saw every block, the timing
// histograms observed one sample per block, and per-worker busy time is
// non-negative. It also proves SetMetrics(nil) disarms the sink.
func TestPoolMetricsSmoke(t *testing.T) {
	reg := obs.New()
	SetMetrics(MetricsFrom(reg))
	defer SetMetrics(nil)

	var visited atomic.Int64
	const n, block = 1000, 64
	if err := Blocks(context.Background(), 4, n, block, func(lo, hi int) error {
		visited.Add(int64(hi - lo))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if visited.Load() != n {
		t.Fatalf("visited %d items, want %d", visited.Load(), n)
	}

	wantBlocks := int64((n + block - 1) / block)
	if got := reg.Counter("eyeball_parallel_blocks_total").Value(); got != wantBlocks {
		t.Fatalf("blocks counter = %d, want %d", got, wantBlocks)
	}
	h := reg.Histogram("eyeball_parallel_block_seconds", obs.LatencyBuckets())
	if got := h.Count(); got != wantBlocks {
		t.Fatalf("block histogram count = %d, want %d", got, wantBlocks)
	}
	wait := reg.Histogram("eyeball_parallel_queue_wait_seconds", obs.LatencyBuckets())
	if got := wait.Count(); got != wantBlocks {
		t.Fatalf("wait histogram count = %d, want %d", got, wantBlocks)
	}

	// Per-worker busy counters exist and are sane.
	snap := reg.Snapshot()
	var busySeries int
	for _, c := range snap.Counters {
		if strings.HasPrefix(c.Name, "eyeball_parallel_worker_busy_ns_total") {
			busySeries++
			if c.Value < 0 {
				t.Fatalf("negative busy time in %s%s", c.Name, c.Labels)
			}
		}
	}
	if busySeries == 0 {
		t.Fatal("no per-worker busy counters were created")
	}

	// After removal the pool must stop counting.
	SetMetrics(nil)
	if err := Blocks(context.Background(), 4, n, block, func(lo, hi int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("eyeball_parallel_blocks_total").Value(); got != wantBlocks {
		t.Fatalf("blocks counter moved after SetMetrics(nil): %d", got)
	}
}

// TestPoolMetricsInlinePath covers workers=1, which runs inline on the
// calling goroutine: the metrics must still see the blocks.
func TestPoolMetricsInlinePath(t *testing.T) {
	reg := obs.New()
	SetMetrics(MetricsFrom(reg))
	defer SetMetrics(nil)

	if err := Blocks(context.Background(), 1, 100, 10, func(lo, hi int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("eyeball_parallel_blocks_total").Value(); got != 10 {
		t.Fatalf("inline path blocks = %d, want 10", got)
	}
}
