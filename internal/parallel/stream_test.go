package parallel

import (
	"context"
	"errors"
	"fmt"
	"io"
	"reflect"
	"strings"
	"testing"
)

// intStream is a test fill function over 0..n-1, optionally delivering
// its final batch alongside io.EOF (eofWithData) instead of on a
// separate zero-item call.
type intStream struct {
	n, off      int
	eofWithData bool
	fills       int
}

func (s *intStream) fill(buf []int) (int, error) {
	s.fills++
	k := 0
	for k < len(buf) && s.off < s.n {
		buf[k] = s.off
		k++
		s.off++
	}
	if s.off == s.n && (s.eofWithData || k == 0) {
		return k, io.EOF
	}
	return k, nil
}

// runBatched pumps 0..n-1 through Batched with work(i,x) = 3x+1 and a
// fold that records every (batch contents, results) pair in order.
func runBatched(t *testing.T, n, workers, batch int, eofWithData bool) (folds [][]int, items []int) {
	t.Helper()
	st := &intStream{n: n, eofWithData: eofWithData}
	err := Batched(context.Background(), workers, batch,
		st.fill,
		func(i int, x int) (int, error) { return 3*x + 1, nil },
		func(b []int, res []int) error {
			folds = append(folds, append([]int(nil), res...))
			items = append(items, b...)
			return nil
		})
	if err != nil {
		t.Fatalf("n=%d workers=%d batch=%d: %v", n, workers, batch, err)
	}
	return folds, items
}

// TestBatchedDeterministicAcrossWorkersAndBatch: the sequence of folded
// results must be identical for every worker count and batch size — the
// pump's contract that lets BuildStream inherit determinism instead of
// re-arguing it.
func TestBatchedDeterministicAcrossWorkersAndBatch(t *testing.T) {
	const n = 1000
	_, refFlat := runBatched(t, n, 1, 1, false)
	for i, x := range refFlat {
		if x != i {
			t.Fatalf("reference stream out of order at %d: %d", i, x)
		}
	}
	for _, workers := range []int{0, 1, 8} {
		for _, batch := range []int{1, 7, 256, n, n + 13} {
			for _, eofWithData := range []bool{false, true} {
				folds, items := runBatched(t, n, workers, batch, eofWithData)
				if !reflect.DeepEqual(items, refFlat) {
					t.Fatalf("workers=%d batch=%d eofWithData=%v: item order differs", workers, batch, eofWithData)
				}
				flat := make([]int, 0, n)
				for _, f := range folds {
					flat = append(flat, f...)
				}
				for i, r := range flat {
					if r != 3*i+1 {
						t.Fatalf("workers=%d batch=%d: result[%d] = %d, want %d", workers, batch, i, r, 3*i+1)
					}
				}
				wantBatches := (n + batch - 1) / batch
				if len(folds) != wantBatches {
					t.Fatalf("workers=%d batch=%d: %d folds, want %d", workers, batch, len(folds), wantBatches)
				}
			}
		}
	}
}

// TestBatchedEmptyStream: a stream that is exhausted immediately folds
// nothing and returns nil.
func TestBatchedEmptyStream(t *testing.T) {
	folds, _ := runBatched(t, 0, 4, 8, false)
	if len(folds) != 0 {
		t.Fatalf("empty stream produced %d folds", len(folds))
	}
}

// TestBatchedZeroNilIsError: fill returning (0, nil) must be reported,
// not spun on — an exhausted stream has to say io.EOF.
func TestBatchedZeroNilIsError(t *testing.T) {
	err := Batched(context.Background(), 1, 4,
		func(buf []int) (int, error) { return 0, nil },
		func(i, x int) (int, error) { return x, nil },
		func(b, r []int) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "io.EOF") {
		t.Fatalf("got %v, want the (0, nil) contract error", err)
	}
}

// TestBatchedFillRangeChecked: a fill that lies about n must be caught
// before the pool touches out-of-range memory.
func TestBatchedFillRangeChecked(t *testing.T) {
	for _, n := range []int{-1, 5} {
		err := Batched(context.Background(), 1, 4,
			func(buf []int) (int, error) { return n, io.EOF },
			func(i, x int) (int, error) { return x, nil },
			func(b, r []int) error { return nil })
		if err == nil || !strings.Contains(err.Error(), "outside") {
			t.Fatalf("n=%d: got %v, want range error", n, err)
		}
	}
}

// TestBatchedFillErrorPropagates: a non-EOF fill error aborts the pump
// verbatim.
func TestBatchedFillErrorPropagates(t *testing.T) {
	boom := errors.New("disk on fire")
	err := Batched(context.Background(), 1, 4,
		func(buf []int) (int, error) { return 2, boom },
		func(i, x int) (int, error) { return x, nil },
		func(b, r []int) error { t.Fatal("fold ran on a failed fill"); return nil })
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want %v", err, boom)
	}
}

// TestBatchedWorkErrorLowestPosition: when several items fail, the error
// surfaced is the one at the lowest stream position — for every worker
// count and even when the failures share a batch.
func TestBatchedWorkErrorLowestPosition(t *testing.T) {
	failing := map[int]bool{13: true, 17: true, 57: true, 91: true}
	for _, workers := range []int{1, 8} {
		st := &intStream{n: 100}
		err := Batched(context.Background(), workers, 10,
			st.fill,
			func(i, x int) (int, error) {
				if failing[x] {
					return 0, fmt.Errorf("item %d failed", x)
				}
				return x, nil
			},
			func(b, r []int) error { return nil })
		if err == nil || !strings.Contains(err.Error(), "item 13 failed") {
			t.Fatalf("workers=%d: got %v, want the item-13 error", workers, err)
		}
	}
}

// TestBatchedPanicBecomesPanicError: a panicking work function comes
// back as a *PanicError with the stack, exactly like Blocks.
func TestBatchedPanicBecomesPanicError(t *testing.T) {
	st := &intStream{n: 50}
	err := Batched(context.Background(), 4, 8,
		st.fill,
		func(i, x int) (int, error) {
			if x == 23 {
				panic("injected")
			}
			return x, nil
		},
		func(b, r []int) error { return nil })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want *PanicError", err)
	}
	if !strings.Contains(pe.Error(), "injected") {
		t.Fatalf("panic error %q lacks the panic value", pe.Error())
	}
}

// TestBatchedFoldErrorStopsPump: a fold error aborts before the next
// fill call.
func TestBatchedFoldErrorStopsPump(t *testing.T) {
	boom := errors.New("fold rejected")
	st := &intStream{n: 100}
	err := Batched(context.Background(), 2, 10,
		st.fill,
		func(i, x int) (int, error) { return x, nil },
		func(b, r []int) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want %v", err, boom)
	}
	if st.fills != 1 {
		t.Fatalf("fill called %d times after the first fold failed", st.fills)
	}
}

// TestBatchedCancellation: a cancelled context stops the pump between
// batches with ctx.Err().
func TestBatchedCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st := &intStream{n: 100}
	err := Batched(ctx, 2, 10,
		st.fill,
		func(i, x int) (int, error) { return x, nil },
		func(b, r []int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}
