package leakcheck

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestCleanTestPasses(t *testing.T) {
	defer Check(t)()
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}

func TestSlowExitIsNotALeak(t *testing.T) {
	defer Check(t)()
	// Exits well inside the retry window, long after the deferred
	// check's first comparison.
	go func() { time.Sleep(300 * time.Millisecond) }()
}

// TestLeakIsDetected drives Check against a recording TB and a
// genuinely parked goroutine: the check must fail, and must name the
// leaked function.
func TestLeakIsDetected(t *testing.T) {
	rec := &recordingTB{TB: t}
	verify := Check(rec)
	block := make(chan struct{})
	defer close(block)
	go parkedForever(block)

	start := time.Now()
	verify()
	if !rec.failed {
		t.Fatal("Check did not report a parked goroutine")
	}
	if !strings.Contains(rec.msg, "parkedForever") {
		t.Errorf("leak report does not name the leaked function:\n%s", rec.msg)
	}
	if time.Since(start) < 4*time.Second {
		t.Error("Check declared a leak before exhausting the retry window")
	}
}

func parkedForever(ch chan struct{}) { <-ch }

type recordingTB struct {
	testing.TB
	failed bool
	msg    string
}

func (r *recordingTB) Errorf(format string, args ...any) {
	r.failed = true
	r.msg = strings.TrimSpace(fmt.Sprintf(format, args...))
}

func (r *recordingTB) Helper() {}
