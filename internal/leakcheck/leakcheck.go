// Package leakcheck verifies that a test leaves no goroutines behind.
//
// Usage:
//
//	defer leakcheck.Check(t)()
//
// Check snapshots the interesting goroutine stacks at call time; the
// returned func re-snapshots at test end and fails the test if new
// goroutines persist. Because goroutine shutdown is asynchronous
// (connection teardown, timer drains), the comparison retries with a
// short sleep until a deadline before declaring a leak — a goroutine
// that is merely slow to exit never fails the check, one that is
// parked forever always does.
//
// Stacks are normalized to their function-name lines (no goroutine
// IDs, no argument addresses) so two generations of the same worker
// pool compare equal, and runtime/test-harness goroutines are filtered
// out entirely.
package leakcheck

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"
)

// ignoredSubstrings marks goroutines that belong to the runtime, the
// test harness, or long-lived process-wide machinery — never to the
// code under test.
var ignoredSubstrings = []string{
	"testing.Main(",
	"testing.tRunner(",
	"testing.(*T).Run(",
	"testing.runFuzzing(",
	"testing.runTests(",
	"runtime.gc(",
	"runtime.bgsweep(",
	"runtime.bgscavenge(",
	"runtime.forcegchelper(",
	"runtime.ReadTrace(",
	"os/signal.signal_recv(",
	"os/signal.loop(",
	"runtime.ensureSigM(",
	"leakcheck.stacks(", // the snapshot itself
}

// stacks returns the normalized stack → count multiset of interesting
// goroutines.
func stacks() map[string]int {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	out := make(map[string]int)
	for _, g := range strings.Split(string(buf), "\n\n") {
		s := normalize(g)
		if s == "" || ignored(s) {
			continue
		}
		out[s]++
	}
	return out
}

// normalize keeps only the function-name lines of one goroutine dump:
// the header (goroutine ID + state) and the file:line+offset lines
// vary between otherwise identical goroutines.
func normalize(g string) string {
	var fns []string
	for i, line := range strings.Split(g, "\n") {
		if i == 0 || strings.HasPrefix(line, "\t") || line == "" {
			continue
		}
		fns = append(fns, line)
	}
	return strings.Join(fns, "\n")
}

func ignored(stack string) bool {
	for _, sub := range ignoredSubstrings {
		if strings.Contains(stack, sub) {
			return true
		}
	}
	return false
}

// Check snapshots the current goroutines and returns the verification
// func to defer. Goroutines already running at Check time are part of
// the baseline and never reported.
func Check(t testing.TB) func() {
	t.Helper()
	before := stacks()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		var leaked []string
		for {
			leaked = leaked[:0]
			for s, n := range stacks() {
				if extra := n - before[s]; extra > 0 {
					leaked = append(leaked, fmt.Sprintf("%d × %s", extra, s))
				}
			}
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		sort.Strings(leaked)
		t.Errorf("leaked %d goroutine stack(s):\n%s", len(leaked), strings.Join(leaked, "\n---\n"))
	}
}
