// Package overlay simulates a Gnutella-style two-tier unstructured
// overlay — ultrapeers forming a random gossip graph with firewalled
// leaves attached — and the snowball crawler the paper's Gnutella dataset
// was collected with (§2 "Sampling End-users").
//
// The crawler BFS-walks the ultrapeer graph asking each responsive
// ultrapeer for its neighbour and leaf lists. Leaves never answer
// directly (NAT/firewall), so a leaf is observed only if one of its
// ultrapeers responds — the structural source of the partial,
// size-dependent coverage the statistical model in internal/p2p assumes.
package overlay

import (
	"fmt"
	"sort"

	"eyeballas/internal/ipnet"
	"eyeballas/internal/rng"
)

// PeerID indexes a peer inside a network.
type PeerID int32

// Network is a built overlay.
type Network struct {
	addrs      []ipnet.Addr // by PeerID
	ultrapeers []PeerID
	neighbours map[PeerID][]PeerID // ultrapeer gossip edges
	leavesOf   map[PeerID][]PeerID // ultrapeer → attached leaves
	parentsOf  map[PeerID][]PeerID // leaf → its ultrapeers
	responsive map[PeerID]bool     // unresponsive ultrapeers time out
}

// Config shapes the overlay.
type Config struct {
	// UltrapeerFrac is the fraction of members promoted to ultrapeer.
	UltrapeerFrac float64
	// UltraDegree is the target gossip degree among ultrapeers.
	UltraDegree int
	// LeafParents is the number of ultrapeers each leaf attaches to.
	LeafParents int
	// Responsive is the probability an ultrapeer answers crawler queries.
	Responsive float64
}

// DefaultConfig mirrors Gnutella 0.6-era deployments.
func DefaultConfig() Config {
	return Config{UltrapeerFrac: 0.12, UltraDegree: 30, LeafParents: 2, Responsive: 0.9}
}

// Build constructs an overlay over the member addresses.
func Build(members []ipnet.Addr, cfg Config, src *rng.Source) (*Network, error) {
	if len(members) < 4 {
		return nil, fmt.Errorf("overlay: need at least 4 members, got %d", len(members))
	}
	if cfg.UltrapeerFrac <= 0 || cfg.UltrapeerFrac > 1 || cfg.UltraDegree < 1 || cfg.LeafParents < 1 {
		return nil, fmt.Errorf("overlay: invalid config %+v", cfg)
	}
	n := len(members)
	net := &Network{
		addrs:      append([]ipnet.Addr(nil), members...),
		neighbours: make(map[PeerID][]PeerID),
		leavesOf:   make(map[PeerID][]PeerID),
		parentsOf:  make(map[PeerID][]PeerID),
		responsive: make(map[PeerID]bool),
	}
	nUltra := int(float64(n) * cfg.UltrapeerFrac)
	if nUltra < 2 {
		nUltra = 2
	}
	perm := src.Perm(n)
	for i := 0; i < nUltra; i++ {
		net.ultrapeers = append(net.ultrapeers, PeerID(perm[i]))
	}
	sort.Slice(net.ultrapeers, func(i, j int) bool { return net.ultrapeers[i] < net.ultrapeers[j] })
	isUltra := make(map[PeerID]bool, nUltra)
	for _, u := range net.ultrapeers {
		isUltra[u] = true
		net.responsive[u] = src.Bool(cfg.Responsive)
	}

	// Gossip graph: each ultrapeer draws UltraDegree/2 random partners;
	// edges are symmetric, so the realized degree averages UltraDegree.
	addEdge := func(a, b PeerID) {
		if a == b {
			return
		}
		for _, x := range net.neighbours[a] {
			if x == b {
				return
			}
		}
		net.neighbours[a] = append(net.neighbours[a], b)
		net.neighbours[b] = append(net.neighbours[b], a)
	}
	half := cfg.UltraDegree / 2
	if half < 1 {
		half = 1
	}
	for _, u := range net.ultrapeers {
		for d := 0; d < half; d++ {
			addEdge(u, net.ultrapeers[src.Intn(nUltra)])
		}
	}

	// Leaves attach to LeafParents random ultrapeers.
	for i := nUltra; i < n; i++ {
		leaf := PeerID(perm[i])
		for p := 0; p < cfg.LeafParents; p++ {
			parent := net.ultrapeers[src.Intn(nUltra)]
			dup := false
			for _, x := range net.parentsOf[leaf] {
				if x == parent {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			net.parentsOf[leaf] = append(net.parentsOf[leaf], parent)
			net.leavesOf[parent] = append(net.leavesOf[parent], leaf)
		}
	}
	return net, nil
}

// Size returns the total number of peers.
func (n *Network) Size() int { return len(n.addrs) }

// Ultrapeers returns the ultrapeer IDs, ascending (shared slice).
func (n *Network) Ultrapeers() []PeerID { return n.ultrapeers }

// Addr returns a peer's address.
func (n *Network) Addr(p PeerID) ipnet.Addr { return n.addrs[p] }

// CrawlResult summarizes a snowball crawl.
type CrawlResult struct {
	Discovered map[PeerID]ipnet.Addr
	Queried    int // ultrapeers asked
	Responses  int // ultrapeers that answered
}

// Coverage returns the fraction of the overlay discovered.
func (r *CrawlResult) Coverage(n *Network) float64 {
	if n.Size() == 0 {
		return 0
	}
	return float64(len(r.Discovered)) / float64(n.Size())
}

// Crawl snowballs from `seeds` random ultrapeers: each responsive
// ultrapeer reports its gossip neighbours and its leaves; neighbours are
// crawled transitively. maxQueries caps the crawl (0 = unlimited).
func Crawl(n *Network, seeds, maxQueries int, src *rng.Source) (*CrawlResult, error) {
	if seeds < 1 {
		return nil, fmt.Errorf("overlay: seeds must be >= 1")
	}
	res := &CrawlResult{Discovered: make(map[PeerID]ipnet.Addr)}
	var frontier []PeerID
	inFrontier := map[PeerID]bool{}
	for len(frontier) < seeds && len(frontier) < len(n.ultrapeers) {
		u := n.ultrapeers[src.Intn(len(n.ultrapeers))]
		if !inFrontier[u] {
			inFrontier[u] = true
			frontier = append(frontier, u)
			res.Discovered[u] = n.addrs[u]
		}
	}
	queried := map[PeerID]bool{}
	for len(frontier) > 0 {
		if maxQueries > 0 && res.Queried >= maxQueries {
			break
		}
		u := frontier[0]
		frontier = frontier[1:]
		if queried[u] {
			continue
		}
		queried[u] = true
		res.Queried++
		if !n.responsive[u] {
			continue // timeout
		}
		res.Responses++
		for _, nb := range n.neighbours[u] {
			if _, known := res.Discovered[nb]; !known {
				res.Discovered[nb] = n.addrs[nb]
			}
			if !inFrontier[nb] && !queried[nb] {
				inFrontier[nb] = true
				frontier = append(frontier, nb)
			}
		}
		for _, leaf := range n.leavesOf[u] {
			if _, known := res.Discovered[leaf]; !known {
				res.Discovered[leaf] = n.addrs[leaf]
			}
		}
	}
	return res, nil
}
