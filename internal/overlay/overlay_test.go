package overlay

import (
	"testing"

	"eyeballas/internal/ipnet"
	"eyeballas/internal/rng"
)

func members(n int) []ipnet.Addr {
	out := make([]ipnet.Addr, n)
	for i := range out {
		out[i] = ipnet.MakeAddr(20, byte(i>>16), byte(i>>8), byte(i))
	}
	return out
}

func build(t testing.TB, n int, cfg Config, seed uint64) *Network {
	t.Helper()
	net, err := Build(members(n), cfg, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(members(2), DefaultConfig(), rng.New(1)); err == nil {
		t.Error("tiny network accepted")
	}
	bad := DefaultConfig()
	bad.UltrapeerFrac = 0
	if _, err := Build(members(100), bad, rng.New(1)); err == nil {
		t.Error("zero ultrapeer fraction accepted")
	}
	bad = DefaultConfig()
	bad.LeafParents = 0
	if _, err := Build(members(100), bad, rng.New(1)); err == nil {
		t.Error("zero leaf parents accepted")
	}
}

func TestBuildStructure(t *testing.T) {
	net := build(t, 2000, DefaultConfig(), 2)
	nUltra := len(net.Ultrapeers())
	if nUltra < 200 || nUltra > 280 {
		t.Errorf("ultrapeers = %d, want ~240", nUltra)
	}
	// Edges are symmetric and between ultrapeers only.
	isUltra := map[PeerID]bool{}
	for _, u := range net.Ultrapeers() {
		isUltra[u] = true
	}
	for u, nbs := range net.neighbours {
		if !isUltra[u] {
			t.Fatalf("leaf %d has gossip edges", u)
		}
		for _, nb := range nbs {
			if !isUltra[nb] {
				t.Fatalf("gossip edge to leaf %d", nb)
			}
			found := false
			for _, back := range net.neighbours[nb] {
				if back == u {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("asymmetric edge %d-%d", u, nb)
			}
		}
	}
	// Every leaf has at least one parent, and parent links are mirrored.
	leaves := 0
	for p := PeerID(0); int(p) < net.Size(); p++ {
		if isUltra[p] {
			continue
		}
		leaves++
		parents := net.parentsOf[p]
		if len(parents) == 0 {
			t.Fatalf("leaf %d orphaned", p)
		}
		for _, parent := range parents {
			found := false
			for _, l := range net.leavesOf[parent] {
				if l == p {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("leaf %d not listed by parent %d", p, parent)
			}
		}
	}
	if leaves == 0 {
		t.Fatal("no leaves")
	}
}

func TestCrawlCoversMostOfOverlay(t *testing.T) {
	net := build(t, 3000, DefaultConfig(), 3)
	res, err := Crawl(net, 5, 0, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	cov := res.Coverage(net)
	// 90% responsive ultrapeers, 2 parents per leaf ⇒ high but
	// structurally incomplete coverage.
	if cov < 0.8 || cov >= 1.0 {
		t.Errorf("coverage = %.3f, want high but < 1", cov)
	}
	if res.Responses >= res.Queried {
		t.Errorf("every ultrapeer responded (%d/%d); timeouts should occur", res.Responses, res.Queried)
	}
	// Discovered addresses are real.
	for id, addr := range res.Discovered {
		if net.Addr(id) != addr {
			t.Fatalf("phantom peer %d", id)
		}
	}
}

func TestCrawlUnresponsiveHideLeaves(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Responsive = 0.5
	cfg.LeafParents = 1 // single-homed leaves: one timeout hides them
	netLow := build(t, 3000, cfg, 5)
	resLow, err := Crawl(netLow, 5, 0, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Responsive = 1.0
	netHigh := build(t, 3000, cfg, 5)
	resHigh, err := Crawl(netHigh, 5, 0, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if resLow.Coverage(netLow) >= resHigh.Coverage(netHigh) {
		t.Errorf("unresponsive overlay covered %.3f >= responsive %.3f",
			resLow.Coverage(netLow), resHigh.Coverage(netHigh))
	}
}

func TestCrawlBudget(t *testing.T) {
	net := build(t, 3000, DefaultConfig(), 7)
	full, err := Crawl(net, 5, 0, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	partial, err := Crawl(net, 5, 20, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if partial.Queried > 20 {
		t.Errorf("budget exceeded: %d", partial.Queried)
	}
	if partial.Coverage(net) >= full.Coverage(net) {
		t.Error("budgeted crawl should cover less")
	}
}

func TestCrawlDeterministic(t *testing.T) {
	net := build(t, 1000, DefaultConfig(), 9)
	r1, _ := Crawl(net, 4, 0, rng.New(10))
	r2, _ := Crawl(net, 4, 0, rng.New(10))
	if len(r1.Discovered) != len(r2.Discovered) || r1.Queried != r2.Queried {
		t.Error("crawl not deterministic")
	}
}

func TestCrawlSeedValidation(t *testing.T) {
	net := build(t, 100, DefaultConfig(), 11)
	if _, err := Crawl(net, 0, 0, rng.New(1)); err == nil {
		t.Error("zero seeds accepted")
	}
}

func BenchmarkBuildOverlay(b *testing.B) {
	m := members(5000)
	for i := 0; i < b.N; i++ {
		if _, err := Build(m, DefaultConfig(), rng.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCrawlOverlay(b *testing.B) {
	net := build(b, 5000, DefaultConfig(), 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Crawl(net, 5, 0, rng.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}
