package geo

import "math"

// XY is a point in a local flat projection, in kilometres.
type XY struct {
	X float64 // east, km
	Y float64 // north, km
}

// DistanceKm returns the Euclidean distance to q in kilometres.
func (p XY) DistanceKm(q XY) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return math.Hypot(dx, dy)
}

// Projection is a local sinusoidal projection centred at Origin: the
// east-west scale follows each point's own latitude, so meridian
// convergence is modelled exactly along parallels. Measured distance
// distortion (TestProjectionDistortion): < 0.5% for pairs within 100 km of
// the origin, < 1.5% within 300 km, < 4% within 600 km — ample for
// city-level (40 km bandwidth) kernel density estimation and 40 km PoP
// matching.
type Projection struct {
	Origin Point
}

// NewProjection returns a projection centred at origin. Projections near
// the poles (|lat| > 85°) degrade; callers in this library never operate
// there because the gazetteer holds no polar cities.
func NewProjection(origin Point) *Projection {
	return &Projection{Origin: origin}
}

// kmPerDegLat is the north-south extent of one degree of latitude.
const kmPerDegLat = EarthRadiusKm * math.Pi / 180

// ToXY projects a geographic point into local km-space.
func (pr *Projection) ToXY(p Point) XY {
	dLon := NormalizeLon(p.Lon - pr.Origin.Lon)
	return XY{
		X: dLon * kmPerDegLat * math.Cos(deg2rad(p.Lat)),
		Y: (p.Lat - pr.Origin.Lat) * kmPerDegLat,
	}
}

// ToGeo inverts ToXY.
func (pr *Projection) ToGeo(q XY) Point {
	lat := pr.Origin.Lat + q.Y/kmPerDegLat
	cos := math.Cos(deg2rad(lat))
	var lon float64
	if cos > 1e-9 {
		lon = pr.Origin.Lon + q.X/(kmPerDegLat*cos)
	} else {
		lon = pr.Origin.Lon
	}
	return Point{Lat: lat, Lon: NormalizeLon(lon)}.Normalize()
}

// ProjectAll projects a slice of points, reusing one projection.
func (pr *Projection) ProjectAll(pts []Point) []XY {
	out := make([]XY, len(pts))
	for i, p := range pts {
		out[i] = pr.ToXY(p)
	}
	return out
}

// BBox is a geographic bounding box. Min is the south-west corner and Max
// the north-east corner; boxes never span the antimeridian in this library.
type BBox struct {
	Min, Max Point
}

// Contains reports whether p lies inside the box (inclusive).
func (b BBox) Contains(p Point) bool {
	return p.Lat >= b.Min.Lat && p.Lat <= b.Max.Lat &&
		p.Lon >= b.Min.Lon && p.Lon <= b.Max.Lon
}

// Expand grows the box by km kilometres on every side.
func (b BBox) Expand(km float64) BBox {
	dLat := km / kmPerDegLat
	// Longitude padding uses the narrower (higher-latitude) edge so the
	// padding is at least km everywhere inside the box.
	lat := math.Max(math.Abs(b.Min.Lat), math.Abs(b.Max.Lat))
	cos := math.Cos(deg2rad(lat))
	if cos < 0.05 {
		cos = 0.05
	}
	dLon := km / (kmPerDegLat * cos)
	return BBox{
		Min: Point{Lat: ClampLat(b.Min.Lat - dLat), Lon: NormalizeLon(b.Min.Lon - dLon)},
		Max: Point{Lat: ClampLat(b.Max.Lat + dLat), Lon: NormalizeLon(b.Max.Lon + dLon)},
	}
}

// BoundingBox returns the smallest box containing all points. ok is false
// if pts is empty.
func BoundingBox(pts []Point) (b BBox, ok bool) {
	if len(pts) == 0 {
		return BBox{}, false
	}
	b.Min = pts[0]
	b.Max = pts[0]
	for _, p := range pts[1:] {
		if p.Lat < b.Min.Lat {
			b.Min.Lat = p.Lat
		}
		if p.Lat > b.Max.Lat {
			b.Max.Lat = p.Lat
		}
		if p.Lon < b.Min.Lon {
			b.Min.Lon = p.Lon
		}
		if p.Lon > b.Max.Lon {
			b.Max.Lon = p.Lon
		}
	}
	return b, true
}
