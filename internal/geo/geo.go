// Package geo provides geographic primitives used throughout the eyeball-AS
// pipeline: points on the sphere, great-circle distance, local projections
// into a flat km-space suitable for kernel density estimation, and bounding
// boxes.
//
// Conventions: latitude and longitude are in decimal degrees (WGS84-like
// spherical Earth), latitude in [-90, 90], longitude in [-180, 180).
// Distances are in kilometres.
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusKm is the mean Earth radius in kilometres used for all
// spherical computations.
const EarthRadiusKm = 6371.0088

// Point is a location on the Earth's surface in decimal degrees.
type Point struct {
	Lat float64 // latitude, degrees, positive north
	Lon float64 // longitude, degrees, positive east
}

// String renders the point as "lat,lon" with 4 decimal places (~11 m).
func (p Point) String() string {
	return fmt.Sprintf("%.4f,%.4f", p.Lat, p.Lon)
}

// Valid reports whether the point lies in the canonical coordinate ranges.
func (p Point) Valid() bool {
	return p.Lat >= -90 && p.Lat <= 90 && p.Lon >= -180 && p.Lon < 180 &&
		!math.IsNaN(p.Lat) && !math.IsNaN(p.Lon)
}

// NormalizeLon wraps a longitude into [-180, 180). NaN and ±Inf pass
// through as NaN (Valid rejects them); cleaning garbage coordinates is
// the ingestion layer's job, not a silent repair here.
func NormalizeLon(lon float64) float64 {
	lon = math.Mod(lon+180, 360)
	if lon < 0 {
		lon += 360
	}
	lon -= 180
	// The wrap can land exactly on the excluded seam: for inputs one ulp
	// below -180, lon+360 rounds to 360 (round-to-even on the halfway
	// case) and the subtraction yields +180 — outside the contract and
	// rejected by Point.Valid. Same meridian, canonical sign.
	if lon >= 180 {
		lon = -180
	}
	return lon
}

// ClampLat clamps a latitude into [-90, 90]. NaN passes through (the
// comparisons are false), mirroring NormalizeLon: invalid stays
// visibly invalid.
func ClampLat(lat float64) float64 {
	if lat > 90 {
		return 90
	}
	if lat < -90 {
		return -90
	}
	return lat
}

// Normalize returns the point with longitude wrapped and latitude clamped.
func (p Point) Normalize() Point {
	return Point{Lat: ClampLat(p.Lat), Lon: NormalizeLon(p.Lon)}
}

func deg2rad(d float64) float64 { return d * math.Pi / 180 }
func rad2deg(r float64) float64 { return r * 180 / math.Pi }

// DistanceKm returns the great-circle (haversine) distance between a and b
// in kilometres.
func DistanceKm(a, b Point) float64 {
	lat1 := deg2rad(a.Lat)
	lat2 := deg2rad(b.Lat)
	dLat := lat2 - lat1
	dLon := deg2rad(b.Lon - a.Lon)

	sinLat := math.Sin(dLat / 2)
	sinLon := math.Sin(dLon / 2)
	h := sinLat*sinLat + math.Cos(lat1)*math.Cos(lat2)*sinLon*sinLon
	if h > 1 {
		h = 1
	}
	return 2 * EarthRadiusKm * math.Asin(math.Sqrt(h))
}

// Destination returns the point reached by travelling distKm kilometres
// from p along the given initial bearing (degrees clockwise from north).
func Destination(p Point, bearingDeg, distKm float64) Point {
	lat1 := deg2rad(p.Lat)
	lon1 := deg2rad(p.Lon)
	brng := deg2rad(bearingDeg)
	dr := distKm / EarthRadiusKm

	sinLat2 := math.Sin(lat1)*math.Cos(dr) + math.Cos(lat1)*math.Sin(dr)*math.Cos(brng)
	lat2 := math.Asin(sinLat2)
	y := math.Sin(brng) * math.Sin(dr) * math.Cos(lat1)
	x := math.Cos(dr) - math.Sin(lat1)*sinLat2
	lon2 := lon1 + math.Atan2(y, x)

	return Point{Lat: rad2deg(lat2), Lon: NormalizeLon(rad2deg(lon2))}
}

// Midpoint returns the spherical midpoint of a and b.
func Midpoint(a, b Point) Point {
	lat1 := deg2rad(a.Lat)
	lon1 := deg2rad(a.Lon)
	lat2 := deg2rad(b.Lat)
	dLon := deg2rad(b.Lon - a.Lon)

	bx := math.Cos(lat2) * math.Cos(dLon)
	by := math.Cos(lat2) * math.Sin(dLon)
	lat3 := math.Atan2(math.Sin(lat1)+math.Sin(lat2),
		math.Sqrt((math.Cos(lat1)+bx)*(math.Cos(lat1)+bx)+by*by))
	lon3 := lon1 + math.Atan2(by, math.Cos(lat1)+bx)

	return Point{Lat: rad2deg(lat3), Lon: NormalizeLon(rad2deg(lon3))}
}

// Centroid returns the arithmetic centroid of the points in degree space
// (adequate for the regional clusters this library handles; not meaningful
// across the antimeridian). It returns false if pts is empty.
func Centroid(pts []Point) (Point, bool) {
	if len(pts) == 0 {
		return Point{}, false
	}
	var sLat, sLon float64
	for _, p := range pts {
		sLat += p.Lat
		sLon += p.Lon
	}
	n := float64(len(pts))
	return Point{Lat: sLat / n, Lon: sLon / n}, true
}
