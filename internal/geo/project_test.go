package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestProjectionRoundTrip(t *testing.T) {
	pr := NewProjection(Point{42, 12})
	f := func(dLat, dLon float64) bool {
		p := Point{42 + math.Mod(dLat, 5), 12 + math.Mod(dLon, 5)}
		q := pr.ToGeo(pr.ToXY(p))
		return almostEq(p.Lat, q.Lat, 1e-9) && almostEq(p.Lon, q.Lon, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestProjectionDistortion measures the claims in the Projection doc
// comment: distance distortion < 0.3% for pairs within 100 km of the
// origin, < 1.5% within 300 km, < 4% within 600 km, at mid latitudes.
func TestProjectionDistortion(t *testing.T) {
	origins := []Point{{42, 12}, {52, 5}, {38, -95}, {35, 105}, {-23, -46}}
	bounds := []struct {
		dist, maxRel float64
	}{{50, 0.003}, {100, 0.005}, {300, 0.015}, {600, 0.04}}
	for _, o := range origins {
		pr := NewProjection(o)
		for bearing := 0.0; bearing < 360; bearing += 30 {
			for _, b := range bounds {
				p1 := Destination(o, bearing, b.dist)
				p2 := Destination(o, bearing+137, b.dist/2)
				trueD := DistanceKm(p1, p2)
				projD := pr.ToXY(p1).DistanceKm(pr.ToXY(p2))
				if trueD < 1 {
					continue
				}
				rel := math.Abs(projD-trueD) / trueD
				if rel > b.maxRel {
					t.Errorf("origin %v bearing %v dist %v: distortion %.4f > %.4f", o, bearing, b.dist, rel, b.maxRel)
				}
			}
		}
	}
}

func TestProjectionOriginMapsToZero(t *testing.T) {
	pr := NewProjection(Point{48.8, 2.35})
	xy := pr.ToXY(pr.Origin)
	if !almostEq(xy.X, 0, 1e-12) || !almostEq(xy.Y, 0, 1e-12) {
		t.Errorf("origin projects to %v, want 0,0", xy)
	}
}

func TestProjectAll(t *testing.T) {
	pr := NewProjection(Point{40, 0})
	pts := []Point{{40, 0}, {41, 0}, {40, 1}}
	xys := pr.ProjectAll(pts)
	if len(xys) != 3 {
		t.Fatalf("len = %d", len(xys))
	}
	if xys[1].Y <= 0 || xys[2].X <= 0 {
		t.Errorf("unexpected signs: %v", xys)
	}
}

func TestBBoxContainsExpand(t *testing.T) {
	b := BBox{Min: Point{40, 10}, Max: Point{42, 14}}
	if !b.Contains(Point{41, 12}) {
		t.Error("interior point not contained")
	}
	if b.Contains(Point{39.9, 12}) || b.Contains(Point{41, 14.1}) {
		t.Error("exterior point contained")
	}
	e := b.Expand(100)
	if e.Contains(Point{41, 12}) == false {
		t.Error("expand lost interior")
	}
	// The expanded box must contain points 90 km outside each edge.
	for _, p := range []Point{
		Destination(Point{40, 12}, 180, 90),
		Destination(Point{42, 12}, 0, 90),
		Destination(Point{41, 10}, 270, 90),
		Destination(Point{41, 14}, 90, 90),
	} {
		if !e.Contains(p) {
			t.Errorf("expanded box misses %v", p)
		}
	}
}

func TestBoundingBox(t *testing.T) {
	if _, ok := BoundingBox(nil); ok {
		t.Error("empty bounding box should report !ok")
	}
	b, ok := BoundingBox([]Point{{41, 12}, {45, 9}, {38, 15}})
	if !ok {
		t.Fatal("!ok")
	}
	if b.Min.Lat != 38 || b.Max.Lat != 45 || b.Min.Lon != 9 || b.Max.Lon != 15 {
		t.Errorf("bbox = %+v", b)
	}
}

func TestXYDistance(t *testing.T) {
	a := XY{0, 0}
	b := XY{3, 4}
	if !almostEq(a.DistanceKm(b), 5, 1e-12) {
		t.Errorf("3-4-5 triangle broken: %v", a.DistanceKm(b))
	}
}
