package geo

import (
	"math"
	"testing"
)

// TestNormalizeLonBoundaries audits the antimeridian seam. The contract
// is [-180, 180): +180 must never come back, including for inputs one
// ulp outside the seam where the wrap arithmetic hits a round-to-even
// halfway case (the bug this table pinned down: -180-ulp normalized to
// exactly +180, which Point.Valid rejects).
func TestNormalizeLonBoundaries(t *testing.T) {
	ulpBelowNeg180 := math.Nextafter(-180, math.Inf(-1))
	ulpAbove180 := math.Nextafter(180, math.Inf(1))
	cases := []struct {
		name string
		in   float64
		want float64
	}{
		{"zero", 0, 0},
		{"positive seam", 180, -180},
		{"negative seam", -180, -180},
		{"full turn", 360, 0},
		{"negative full turn", -360, 0},
		{"turn and a half", 540, -180},
		{"negative turn and a half", -540, -180},
		{"two turns plus", 725, 5},
		{"interior", 179.5, 179.5},
		{"interior negative", -179.5, -179.5},
		{"one ulp below -180", ulpBelowNeg180, -180},
		{"one ulp above 180", ulpAbove180, -180},
		{"one ulp below -540", math.Nextafter(-540, math.Inf(-1)), 179.99999999999989},
		{"huge positive", 36000 + 90, 90},
		{"huge negative", -36000 - 90, -90},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := NormalizeLon(c.in)
			if got != c.want {
				t.Errorf("NormalizeLon(%.17g) = %.17g, want %.17g", c.in, got, c.want)
			}
			if !(got >= -180 && got < 180) {
				t.Errorf("NormalizeLon(%.17g) = %.17g outside [-180, 180)", c.in, got)
			}
		})
	}
	// Exhaustive ulp walk across both sides of each seam: every output
	// must satisfy the range contract.
	for _, seam := range []float64{-540, -180, 180, 540} {
		lo, hi := seam, seam
		for i := 0; i < 64; i++ {
			lo = math.Nextafter(lo, math.Inf(-1))
			hi = math.Nextafter(hi, math.Inf(1))
		}
		for x := lo; x <= hi; x = math.Nextafter(x, math.Inf(1)) {
			got := NormalizeLon(x)
			if !(got >= -180 && got < 180) {
				t.Fatalf("NormalizeLon(%.17g) = %.17g outside [-180, 180)", x, got)
			}
		}
	}
	// Non-finite stays non-finite rather than masquerading as a place.
	for _, x := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if got := NormalizeLon(x); !math.IsNaN(got) {
			t.Errorf("NormalizeLon(%v) = %v, want NaN", x, got)
		}
	}
}

func TestClampLatBoundaries(t *testing.T) {
	cases := []struct {
		name string
		in   float64
		want float64
	}{
		{"zero", 0, 0},
		{"north pole", 90, 90},
		{"south pole", -90, -90},
		{"one ulp past north", math.Nextafter(90, math.Inf(1)), 90},
		{"one ulp past south", math.Nextafter(-90, math.Inf(-1)), -90},
		{"one ulp inside north", math.Nextafter(90, 0), math.Nextafter(90, 0)},
		{"far north", 91, 90},
		{"far south", -270, -90},
		{"positive infinity", math.Inf(1), 90},
		{"negative infinity", math.Inf(-1), -90},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := ClampLat(c.in); got != c.want {
				t.Errorf("ClampLat(%.17g) = %.17g, want %.17g", c.in, got, c.want)
			}
		})
	}
	if got := ClampLat(math.NaN()); !math.IsNaN(got) {
		t.Errorf("ClampLat(NaN) = %v, want NaN", got)
	}
}

// TestNormalizeProducesValidPoints: for any finite input point,
// Normalize must yield a point Valid accepts — the invariant the seam
// fix restores.
func TestNormalizeProducesValidPoints(t *testing.T) {
	lats := []float64{-91, -90, 0, 90, 91, math.Nextafter(90, math.Inf(1))}
	lons := []float64{
		-720, -540, math.Nextafter(-180, math.Inf(-1)), -180, 0,
		179.99999999999997, 180, math.Nextafter(180, math.Inf(1)), 540, 725,
	}
	for _, lat := range lats {
		for _, lon := range lons {
			p := Point{Lat: lat, Lon: lon}.Normalize()
			if !p.Valid() {
				t.Errorf("Normalize(%v,%v) = %v is not Valid", lat, lon, p)
			}
		}
	}
}
