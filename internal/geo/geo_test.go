package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDistanceKnownPairs(t *testing.T) {
	// Reference distances computed from the haversine formula with the
	// mean Earth radius; cross-checked against public great-circle
	// calculators to within a few km.
	cases := []struct {
		name string
		a, b Point
		want float64 // km
		tol  float64
	}{
		{"rome-milan", Point{41.9028, 12.4964}, Point{45.4642, 9.19}, 477, 5},
		{"nyc-la", Point{40.7128, -74.0060}, Point{34.0522, -118.2437}, 3936, 10},
		{"london-paris", Point{51.5074, -0.1278}, Point{48.8566, 2.3522}, 344, 4},
		{"same-point", Point{10, 10}, Point{10, 10}, 0, 1e-9},
		{"antipodal-ish", Point{0, 0}, Point{0, 179.9}, EarthRadiusKm * math.Pi * 179.9 / 180, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := DistanceKm(c.a, c.b)
			if !almostEq(got, c.want, c.tol) {
				t.Errorf("DistanceKm(%v,%v) = %.2f, want %.2f ± %.2f", c.a, c.b, got, c.want, c.tol)
			}
		})
	}
}

func TestDistanceSymmetric(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Point{ClampLat(math.Mod(lat1, 90)), NormalizeLon(lon1)}
		b := Point{ClampLat(math.Mod(lat2, 90)), NormalizeLon(lon2)}
		d1 := DistanceKm(a, b)
		d2 := DistanceKm(b, a)
		return almostEq(d1, d2, 1e-9) && d1 >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistanceTriangleInequality(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2, lat3, lon3 float64) bool {
		a := Point{ClampLat(math.Mod(lat1, 90)), NormalizeLon(lon1)}
		b := Point{ClampLat(math.Mod(lat2, 90)), NormalizeLon(lon2)}
		c := Point{ClampLat(math.Mod(lat3, 90)), NormalizeLon(lon3)}
		return DistanceKm(a, c) <= DistanceKm(a, b)+DistanceKm(b, c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDestinationRoundTrip(t *testing.T) {
	// Travelling d km away must land exactly d km away (great circle).
	f := func(latSeed, lonSeed, bearingSeed, distSeed float64) bool {
		p := Point{ClampLat(math.Mod(latSeed, 80)), NormalizeLon(lonSeed)}
		bearing := math.Mod(math.Abs(bearingSeed), 360)
		dist := math.Mod(math.Abs(distSeed), 2000)
		q := Destination(p, bearing, dist)
		return almostEq(DistanceKm(p, q), dist, 1e-6*dist+1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDestinationCardinal(t *testing.T) {
	p := Point{Lat: 40, Lon: 20}
	north := Destination(p, 0, 111.195) // ~1 degree of latitude
	if !almostEq(north.Lat, 41, 0.01) || !almostEq(north.Lon, 20, 0.01) {
		t.Errorf("north destination = %v, want ~41,20", north)
	}
	east := Destination(p, 90, 100)
	if !almostEq(east.Lat, 40, 0.05) || east.Lon <= 20 {
		t.Errorf("east destination = %v, want lat~40 lon>20", east)
	}
}

func TestMidpoint(t *testing.T) {
	a := Point{40, 10}
	b := Point{50, 10}
	m := Midpoint(a, b)
	if !almostEq(m.Lat, 45, 0.01) || !almostEq(m.Lon, 10, 0.01) {
		t.Errorf("Midpoint = %v, want 45,10", m)
	}
	// Midpoint is equidistant from both ends.
	if !almostEq(DistanceKm(a, m), DistanceKm(b, m), 1e-6) {
		t.Error("midpoint not equidistant")
	}
}

func TestNormalizeLon(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0}, {180, -180}, {-180, -180}, {190, -170}, {-190, 170},
		{360, 0}, {540, -180}, {-540, -180}, {179.9, 179.9},
	}
	for _, c := range cases {
		if got := NormalizeLon(c.in); !almostEq(got, c.want, 1e-9) {
			t.Errorf("NormalizeLon(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestNormalizeLonRange(t *testing.T) {
	f := func(lon float64) bool {
		if math.IsNaN(lon) || math.IsInf(lon, 0) {
			return true
		}
		got := NormalizeLon(lon)
		return got >= -180 && got < 180
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPointValid(t *testing.T) {
	if !(Point{45, 45}).Valid() {
		t.Error("45,45 should be valid")
	}
	for _, p := range []Point{{91, 0}, {-91, 0}, {0, 180}, {0, -181}, {math.NaN(), 0}} {
		if p.Valid() {
			t.Errorf("%v should be invalid", p)
		}
	}
}

func TestCentroid(t *testing.T) {
	if _, ok := Centroid(nil); ok {
		t.Error("empty centroid should report !ok")
	}
	c, ok := Centroid([]Point{{0, 0}, {10, 10}})
	if !ok || !almostEq(c.Lat, 5, 1e-9) || !almostEq(c.Lon, 5, 1e-9) {
		t.Errorf("Centroid = %v, want 5,5", c)
	}
}
