// Package stats provides the small statistical toolkit the experiments
// need: empirical CDFs, percentiles, histograms and summary statistics.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds basic moments of a sample.
type Summary struct {
	N      int
	Min    float64
	Max    float64
	Mean   float64
	Stddev float64
	Median float64
}

// checkNaN panics if the sample contains a NaN, naming the caller and
// the offending index. A NaN silently absorbed by a sort-based
// percentile or a Welford update does not crash — it quietly poisons
// every downstream number (sort.Float64s places NaNs arbitrarily, and
// mean/stddev become NaN without a trace of where the corruption
// entered). The experiments' contract is that samples are cleaned at
// ingestion (the pipeline drops non-finite coordinates), so a NaN here
// is a bug upstream and the loudest possible failure is the right one.
func checkNaN(fn string, xs []float64) {
	for i, x := range xs {
		if math.IsNaN(x) {
			panic(fmt.Sprintf("stats: %s: NaN at index %d of %d-point sample", fn, i, len(xs)))
		}
	}
}

// Summarize computes a Summary. The zero Summary is returned for an empty
// sample. It panics if the sample contains a NaN (see checkNaN).
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	checkNaN("Summarize", xs)
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	// Welford's one-pass algorithm. The textbook E[x²]−mean² form
	// catastrophically cancels for samples with a large common offset
	// (e.g. geo-error values near 1e8): both terms are ~mean² and the
	// variance lives entirely in their last few bits. Welford's update
	// keeps every intermediate on the scale of the deviations, and its
	// m2 accumulator is non-negative by construction.
	var mean, m2 float64
	for i, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		d := x - mean
		mean += d / float64(i+1)
		m2 += d * (x - mean)
	}
	s.Mean = mean
	s.Stddev = math.Sqrt(m2 / float64(len(xs)))
	s.Median = Percentile(xs, 50)
	return s
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.3g max=%.3g mean=%.3g stddev=%.3g median=%.3g",
		s.N, s.Min, s.Max, s.Mean, s.Stddev, s.Median)
}

// Percentile returns the p-th percentile (0–100) of xs using linear
// interpolation between closest ranks. It returns NaN for an empty sample
// and panics if p is outside [0, 100] or if the sample contains a NaN
// (sort-based rank selection is meaningless over an unordered value).
func Percentile(xs []float64, p float64) float64 {
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v outside [0,100]", p))
	}
	if len(xs) == 0 {
		return math.NaN()
	}
	checkNaN("Percentile", xs)
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CDF is an empirical cumulative distribution function over a sample.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF. The input slice is copied. It panics
// if the sample contains a NaN: sort.Float64s places NaNs arbitrarily,
// so a poisoned sample would silently skew every At/Quantile answer
// instead of failing where the bad value entered (see checkNaN).
func NewCDF(xs []float64) *CDF {
	checkNaN("NewCDF", xs)
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return &CDF{sorted: sorted}
}

// N returns the sample size.
func (c *CDF) N() int { return len(c.sorted) }

// At returns P(X <= x) in [0, 1]. It returns 0 for an empty sample.
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	idx := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(c.sorted))
}

// Quantile returns the value at cumulative probability q in [0, 1].
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	return percentileSorted(c.sorted, q*100)
}

// Points returns (x, P(X<=x)) pairs suitable for plotting — one point per
// distinct sample value, in ascending order.
func (c *CDF) Points() (xs, ps []float64) {
	n := len(c.sorted)
	for i := 0; i < n; {
		j := i
		for j < n && c.sorted[j] == c.sorted[i] {
			j++
		}
		xs = append(xs, c.sorted[i])
		ps = append(ps, float64(j)/float64(n))
		i = j
	}
	return xs, ps
}

// Spearman returns the Spearman rank correlation of two equal-length
// samples, in [-1, 1]. It returns 0 for fewer than 2 points and panics on
// mismatched lengths. Ties receive average ranks.
func Spearman(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: Spearman length mismatch")
	}
	n := len(xs)
	if n < 2 {
		return 0
	}
	rx := ranks(xs)
	ry := ranks(ys)
	// Pearson correlation of the ranks (handles ties correctly).
	var sx, sy float64
	for i := 0; i < n; i++ {
		sx += rx[i]
		sy += ry[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var cov, vx, vy float64
	for i := 0; i < n; i++ {
		dx, dy := rx[i]-mx, ry[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// ranks assigns 1-based average ranks.
func ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	out := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j < n && xs[idx[j]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			out[idx[k]] = avg
		}
		i = j
	}
	return out
}

// KSDistance returns the two-sample Kolmogorov–Smirnov statistic: the
// maximum absolute difference between the empirical CDFs. It returns 1
// if either sample is empty.
func KSDistance(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 1
	}
	sa := append([]float64(nil), a...)
	sb := append([]float64(nil), b...)
	sort.Float64s(sa)
	sort.Float64s(sb)
	i, j := 0, 0
	maxD := 0.0
	for i < len(sa) && j < len(sb) {
		var x float64
		if sa[i] <= sb[j] {
			x = sa[i]
		} else {
			x = sb[j]
		}
		for i < len(sa) && sa[i] <= x {
			i++
		}
		for j < len(sb) && sb[j] <= x {
			j++
		}
		d := math.Abs(float64(i)/float64(len(sa)) - float64(j)/float64(len(sb)))
		if d > maxD {
			maxD = d
		}
	}
	return maxD
}

// Histogram counts samples into nbins equal-width bins over [lo, hi].
// Samples outside the range are clamped into the edge bins.
type Histogram struct {
	Lo, Hi float64
	Counts []int
}

// NewHistogram builds a histogram. It panics if nbins <= 0 or hi <= lo.
func NewHistogram(xs []float64, lo, hi float64, nbins int) *Histogram {
	if nbins <= 0 {
		panic("stats: nbins must be positive")
	}
	if hi <= lo {
		panic("stats: hi must exceed lo")
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, nbins)}
	for _, x := range xs {
		bin := int((x - lo) / (hi - lo) * float64(nbins))
		if bin < 0 {
			bin = 0
		}
		if bin >= nbins {
			bin = nbins - 1
		}
		h.Counts[bin]++
	}
	return h
}

// Total returns the number of samples counted.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// ASCIIPlot renders series of (x, y) points as a crude terminal plot, used
// by the experiment CLIs to sketch the paper's figures. Each series is
// drawn with its own rune. Width and height are in character cells.
func ASCIIPlot(width, height int, series map[rune][][2]float64) string {
	if width < 8 || height < 4 || len(series) == 0 {
		return ""
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, pts := range series {
		for _, p := range pts {
			minX = math.Min(minX, p[0])
			maxX = math.Max(maxX, p[0])
			minY = math.Min(minY, p[1])
			maxY = math.Max(maxY, p[1])
		}
	}
	if minX >= maxX {
		maxX = minX + 1
	}
	if minY >= maxY {
		maxY = minY + 1
	}
	cells := make([][]rune, height)
	for i := range cells {
		cells[i] = []rune(strings.Repeat(" ", width))
	}
	marks := make([]rune, 0, len(series))
	for r := range series {
		marks = append(marks, r)
	}
	sort.Slice(marks, func(i, j int) bool { return marks[i] < marks[j] })
	for _, r := range marks {
		for _, p := range series[r] {
			col := int((p[0] - minX) / (maxX - minX) * float64(width-1))
			row := height - 1 - int((p[1]-minY)/(maxY-minY)*float64(height-1))
			if col >= 0 && col < width && row >= 0 && row < height {
				cells[row][col] = r
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "y: %.3g..%.3g  x: %.3g..%.3g\n", minY, maxY, minX, maxX)
	for _, row := range cells {
		b.WriteString("|")
		b.WriteString(string(row))
		b.WriteString("\n")
	}
	b.WriteString("+" + strings.Repeat("-", width) + "\n")
	return b.String()
}
