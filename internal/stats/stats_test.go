package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.Median != 3 {
		t.Errorf("bad summary: %+v", s)
	}
	if math.Abs(s.Stddev-math.Sqrt(2)) > 1e-9 {
		t.Errorf("stddev = %v, want sqrt(2)", s.Stddev)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Errorf("empty summary N = %d", z.N)
	}
}

// TestSummarizeLargeOffset pins the Welford fix: for a sample with a huge
// common offset the old E[x²]−mean² formula cancels catastrophically
// (x² ≈ 1e16 has ULP 2, on the order of the true variance itself) and
// returns garbage — often exactly 0 after clamping.
func TestSummarizeLargeOffset(t *testing.T) {
	const offset = 1e8
	xs := []float64{offset, offset + 1, offset + 2}
	want := math.Sqrt(2.0 / 3.0) // population stddev of {0,1,2}

	s := Summarize(xs)
	if math.Abs(s.Stddev-want) > 1e-9 {
		t.Errorf("Stddev = %.17g, want %.17g", s.Stddev, want)
	}
	if s.Mean != offset+1 {
		t.Errorf("Mean = %.17g, want %v", s.Mean, offset+1)
	}

	// Demonstrate that the naive formula genuinely fails here, so this
	// test would have caught the bug.
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	mean := sum / 3
	naive := sumSq/3 - mean*mean
	if naive < 0 {
		naive = 0
	}
	if math.Abs(math.Sqrt(naive)-want) <= 1e-9 {
		t.Fatal("naive variance unexpectedly accurate; test sample no longer exercises the cancellation")
	}
}

// TestSummarizeConstantSample: zero variance must come out exactly zero
// (Welford's m2 is non-negative by construction, no clamp needed).
func TestSummarizeConstantSample(t *testing.T) {
	s := Summarize([]float64{4e9, 4e9, 4e9, 4e9})
	if s.Stddev != 0 {
		t.Errorf("Stddev = %v, want 0", s.Stddev)
	}
	if s.Mean != 4e9 || s.Min != 4e9 || s.Max != 4e9 {
		t.Errorf("bad summary: %+v", s)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 40}, {50, 25}, {25, 17.5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty percentile should be NaN")
	}
	if got := Percentile([]float64{7}, 99); got != 7 {
		t.Errorf("single-element percentile = %v", got)
	}
}

func TestPercentilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for p > 100")
		}
	}()
	Percentile([]float64{1}, 101)
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {3, 1}, {10, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
	if c.N() != 4 {
		t.Errorf("N = %d", c.N())
	}
}

func TestCDFMonotone(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		c := NewCDF(clean)
		prev := -1.0
		probes := append([]float64{}, clean...)
		sort.Float64s(probes)
		for _, x := range probes {
			p := c.At(x)
			if p < prev-1e-12 || p < 0 || p > 1 {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCDFQuantileInverse(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if got := c.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %v", got)
	}
	if got := c.Quantile(1); got != 10 {
		t.Errorf("Quantile(1) = %v", got)
	}
	if got := c.Quantile(0.5); got < 5 || got > 6 {
		t.Errorf("Quantile(0.5) = %v", got)
	}
	if got := c.Quantile(-0.5); got != 1 {
		t.Errorf("clamped Quantile(-0.5) = %v", got)
	}
	if !math.IsNaN(NewCDF(nil).Quantile(0.5)) {
		t.Error("empty quantile should be NaN")
	}
}

func TestCDFPoints(t *testing.T) {
	xs, ps := NewCDF([]float64{5, 1, 5, 2}).Points()
	wantX := []float64{1, 2, 5}
	wantP := []float64{0.25, 0.5, 1}
	if len(xs) != 3 {
		t.Fatalf("got %d points", len(xs))
	}
	for i := range xs {
		if xs[i] != wantX[i] || math.Abs(ps[i]-wantP[i]) > 1e-9 {
			t.Errorf("point %d = (%v,%v), want (%v,%v)", i, xs[i], ps[i], wantX[i], wantP[i])
		}
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0, 1, 2, 3, 9.99, -5, 50}, 0, 10, 10)
	if h.Total() != 7 {
		t.Errorf("total = %d", h.Total())
	}
	if h.Counts[0] != 2 { // 0 and clamped -5
		t.Errorf("bin 0 = %d", h.Counts[0])
	}
	if h.Counts[9] != 2 { // 9.99 and clamped 50
		t.Errorf("bin 9 = %d", h.Counts[9])
	}
}

func TestHistogramPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"nbins": func() { NewHistogram(nil, 0, 1, 0) },
		"range": func() { NewHistogram(nil, 1, 1, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestASCIIPlot(t *testing.T) {
	out := ASCIIPlot(40, 10, map[rune][][2]float64{
		'a': {{0, 0}, {50, 50}, {100, 100}},
		'b': {{0, 100}, {100, 0}},
	})
	if out == "" {
		t.Fatal("empty plot")
	}
	if !containsRune(out, 'a') || !containsRune(out, 'b') {
		t.Error("plot missing series marks")
	}
	if ASCIIPlot(2, 2, nil) != "" {
		t.Error("degenerate plot should be empty")
	}
}

func containsRune(s string, r rune) bool {
	for _, c := range s {
		if c == r {
			return true
		}
	}
	return false
}

func TestSpearmanPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{10, 20, 30, 40, 50}
	if r := Spearman(xs, ys); math.Abs(r-1) > 1e-12 {
		t.Errorf("monotone increasing r = %v, want 1", r)
	}
	rev := []float64{50, 40, 30, 20, 10}
	if r := Spearman(xs, rev); math.Abs(r+1) > 1e-12 {
		t.Errorf("monotone decreasing r = %v, want -1", r)
	}
}

func TestSpearmanRankBased(t *testing.T) {
	// Spearman sees monotone nonlinear relations as perfect.
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 8, 27, 64, 125}
	if r := Spearman(xs, ys); math.Abs(r-1) > 1e-12 {
		t.Errorf("cubic relation r = %v, want 1", r)
	}
}

func TestSpearmanTies(t *testing.T) {
	xs := []float64{1, 1, 2, 2}
	ys := []float64{3, 3, 7, 7}
	if r := Spearman(xs, ys); math.Abs(r-1) > 1e-12 {
		t.Errorf("tied monotone r = %v, want 1", r)
	}
	flat := []float64{5, 5, 5, 5}
	if r := Spearman(xs, flat); r != 0 {
		t.Errorf("constant series r = %v, want 0", r)
	}
}

func TestSpearmanUncorrelated(t *testing.T) {
	xs := make([]float64, 2000)
	ys := make([]float64, 2000)
	state := uint64(12345)
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / (1 << 53)
	}
	for i := range xs {
		xs[i] = next()
		ys[i] = next()
	}
	if r := Spearman(xs, ys); math.Abs(r) > 0.08 {
		t.Errorf("independent series r = %v, want ~0", r)
	}
}

func TestSpearmanEdge(t *testing.T) {
	if Spearman(nil, nil) != 0 || Spearman([]float64{1}, []float64{2}) != 0 {
		t.Error("degenerate Spearman not 0")
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch should panic")
		}
	}()
	Spearman([]float64{1, 2}, []float64{1})
}

func TestKSDistance(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	if d := KSDistance(a, a); d != 0 {
		t.Errorf("identical samples d = %v", d)
	}
	b := []float64{100, 200, 300}
	if d := KSDistance(a, b); math.Abs(d-1) > 1e-12 {
		t.Errorf("disjoint samples d = %v, want 1", d)
	}
	if d := KSDistance(nil, a); d != 1 {
		t.Errorf("empty sample d = %v", d)
	}
	// Half-shifted overlap gives an intermediate distance.
	c := []float64{3, 4, 5, 6, 7}
	d := KSDistance(a, c)
	if d <= 0 || d >= 1 {
		t.Errorf("shifted samples d = %v, want in (0,1)", d)
	}
}

// mustPanic runs fn and fails the test unless it panics with a message
// containing want.
func mustPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic (want one mentioning %q)", want)
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, want) {
			t.Fatalf("panic %v does not mention %q", r, want)
		}
	}()
	fn()
}

// TestNaNDetection: a NaN anywhere in a sample must crash Percentile and
// Summarize loudly, naming the function and index, instead of silently
// poisoning the result (sort.Float64s places NaNs arbitrarily, so a
// quiet answer would be nondeterministic garbage).
func TestNaNDetection(t *testing.T) {
	nan := math.NaN()
	for _, tc := range []struct {
		name string
		xs   []float64
	}{
		{"leading", []float64{nan, 1, 2}},
		{"middle", []float64{1, nan, 2}},
		{"trailing", []float64{1, 2, nan}},
		{"only", []float64{nan}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			mustPanic(t, "Percentile: NaN", func() { Percentile(tc.xs, 50) })
			mustPanic(t, "Summarize: NaN", func() { Summarize(tc.xs) })
			mustPanic(t, "NewCDF: NaN", func() { NewCDF(tc.xs) })
		})
	}
}

// TestNaNDetectionCleanSamplesUnaffected: the guard must not change any
// answer for finite samples, including infinities (which order fine).
func TestNaNDetectionCleanSamplesUnaffected(t *testing.T) {
	xs := []float64{3, 1, 2, math.Inf(1), math.Inf(-1)}
	if got := Percentile(xs, 50); got != 2 {
		t.Errorf("median = %v, want 2", got)
	}
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || s.Mean != 2 || s.Median != 2 {
		t.Errorf("Summarize changed on clean input: %+v", s)
	}
	// Empty sample still returns NaN from Percentile, no panic.
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty-sample Percentile no longer NaN")
	}
}
