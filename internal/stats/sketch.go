package stats

import (
	"fmt"
	"math"
	"sort"
)

// DefaultSketchExact is the exact-mode threshold QuantileSketch uses
// when the caller passes exactMax <= 0: streams up to this long answer
// from a sorted buffer, bit-identical to Percentile; only longer
// streams switch to the constant-space P² estimator.
const DefaultSketchExact = 256

// QuantileSketch estimates one quantile of a stream in constant space.
//
// Small streams are the common case in the pipeline (most ASes hold few
// peers), and for those an approximation would be both needless and
// harmful to the repo's bit-identity discipline — so the sketch buffers
// values exactly until the stream exceeds exactMax, answering via the
// same interpolation as stats.Percentile. Past the threshold it
// promotes to the P² algorithm (Jain & Chlamtac, CACM 1985): five
// markers whose heights track the quantile with piecewise-parabolic
// adjustment, O(1) per observation and O(1) memory.
//
// The sketch is a pure function of the arrival order of its inputs —
// no randomness, no timing — so feeding the same stream through any
// batching produces the same estimate.
type QuantileSketch struct {
	q        float64   // target quantile in (0, 1)
	exactMax int       // exact-mode capacity
	buf      []float64 // exact buffer; nil once promoted
	n        int       // observations so far

	// P² marker state (valid once promoted): heights are the marker
	// values, pos the actual 1-based marker positions, want the desired
	// positions, inc the desired-position increments per observation.
	heights [5]float64
	pos     [5]float64
	want    [5]float64
	inc     [5]float64
}

// NewQuantileSketch builds a sketch for quantile q in (0, 1).
// exactMax <= 0 selects DefaultSketchExact; values below 5 are raised
// to 5 (P² needs five markers to seed).
func NewQuantileSketch(q float64, exactMax int) *QuantileSketch {
	if math.IsNaN(q) || q <= 0 || q >= 1 {
		panic(fmt.Sprintf("stats: sketch quantile %v outside (0,1)", q))
	}
	if exactMax <= 0 {
		exactMax = DefaultSketchExact
	}
	if exactMax < 5 {
		exactMax = 5
	}
	return &QuantileSketch{q: q, exactMax: exactMax}
}

// N returns the number of observations added.
func (s *QuantileSketch) N() int { return s.n }

// Exact reports whether Quantile still answers from the exact buffer
// (the stream has not outgrown the threshold).
func (s *QuantileSketch) Exact() bool { return s.buf != nil || s.n == 0 }

// Add feeds one observation. It panics on NaN, consistent with the
// package's ingestion contract (see checkNaN).
func (s *QuantileSketch) Add(x float64) {
	if math.IsNaN(x) {
		panic("stats: QuantileSketch.Add: NaN observation")
	}
	if s.n < s.exactMax {
		s.buf = append(s.buf, x)
		s.n++
		return
	}
	if s.buf != nil {
		s.promote()
	}
	s.update(x)
	s.n++
}

// promote seeds the P² markers from the exact buffer: the first five
// observations (sorted) initialize the markers, and the rest replay in
// arrival order — the same state a buffer-free P² run over the stream
// so far would have reached.
func (s *QuantileSketch) promote() {
	buf := s.buf
	s.buf = nil
	seed := [5]float64{buf[0], buf[1], buf[2], buf[3], buf[4]}
	sort.Float64s(seed[:])
	s.heights = seed
	s.pos = [5]float64{1, 2, 3, 4, 5}
	q := s.q
	s.want = [5]float64{1, 1 + 2*q, 1 + 4*q, 3 + 2*q, 5}
	s.inc = [5]float64{0, q / 2, q, (1 + q) / 2, 1}
	for _, x := range buf[5:] {
		s.update(x)
	}
}

// update is one P² step over an already-promoted sketch.
func (s *QuantileSketch) update(x float64) {
	// Locate the cell k with heights[k] <= x < heights[k+1], extending
	// the extreme markers when x falls outside them.
	var k int
	switch {
	case x < s.heights[0]:
		s.heights[0] = x
		k = 0
	case x >= s.heights[4]:
		s.heights[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < s.heights[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		s.pos[i]++
	}
	for i := range s.want {
		s.want[i] += s.inc[i]
	}
	// Adjust the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := s.want[i] - s.pos[i]
		if (d >= 1 && s.pos[i+1]-s.pos[i] > 1) || (d <= -1 && s.pos[i-1]-s.pos[i] < -1) {
			step := 1.0
			if d < 0 {
				step = -1.0
			}
			h := s.parabolic(i, step)
			if s.heights[i-1] < h && h < s.heights[i+1] {
				s.heights[i] = h
			} else {
				s.heights[i] = s.linear(i, step)
			}
			s.pos[i] += step
		}
	}
}

// parabolic is the P² piecewise-parabolic height prediction for moving
// marker i by step (±1).
func (s *QuantileSketch) parabolic(i int, step float64) float64 {
	return s.heights[i] + step/(s.pos[i+1]-s.pos[i-1])*
		((s.pos[i]-s.pos[i-1]+step)*(s.heights[i+1]-s.heights[i])/(s.pos[i+1]-s.pos[i])+
			(s.pos[i+1]-s.pos[i]-step)*(s.heights[i]-s.heights[i-1])/(s.pos[i]-s.pos[i-1]))
}

// linear is the fallback height prediction when the parabola would
// break marker monotonicity.
func (s *QuantileSketch) linear(i int, step float64) float64 {
	j := i + int(step)
	return s.heights[i] + step*(s.heights[j]-s.heights[i])/(s.pos[j]-s.pos[i])
}

// Quantile returns the current estimate: while the stream fits the
// exact buffer this is bit-identical to Percentile over the same
// values; afterwards it is the P² middle-marker estimate. NaN for an
// empty sketch.
func (s *QuantileSketch) Quantile() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	if s.buf != nil {
		sorted := make([]float64, len(s.buf))
		copy(sorted, s.buf)
		sort.Float64s(sorted)
		return percentileSorted(sorted, s.q*100)
	}
	return s.heights[2]
}
