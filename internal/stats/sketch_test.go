package stats

import (
	"math"
	"testing"
)

// lcg is a tiny deterministic value stream for sketch tests (no
// dependence on the repo's rng package — these are unit tests of the
// estimator's arithmetic).
type lcg uint64

func (l *lcg) next() float64 {
	*l = *l*6364136223846793005 + 1442695040888963407
	return float64(uint64(*l)>>11) / (1 << 53)
}

// TestSketchExactModeBitIdenticalToPercentile: while the stream fits the
// exact buffer, Quantile must answer bit-identically to Percentile over
// the same values — the property that keeps capped streaming builds
// byte-equal to the batch path for small ASes.
func TestSketchExactModeBitIdenticalToPercentile(t *testing.T) {
	r := lcg(7)
	for _, n := range []int{1, 2, 5, 17, 100, 256} {
		s := NewQuantileSketch(0.90, 256)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = 200 * r.next()
			s.Add(vals[i])
		}
		if !s.Exact() {
			t.Fatalf("n=%d: sketch left exact mode below its threshold", n)
		}
		want := Percentile(vals, 90)
		got := s.Quantile()
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("n=%d: sketch %v != Percentile %v (bitwise)", n, got, want)
		}
	}
}

// TestSketchPromotedAccuracy: past the threshold the P² estimate must
// track the exact percentile closely on smooth streams. Uniform and
// exponential shapes, 50k observations, 2% of the exact value (plus a
// small absolute floor for the tails).
func TestSketchPromotedAccuracy(t *testing.T) {
	shapes := []struct {
		name string
		gen  func(u float64) float64
	}{
		{"uniform", func(u float64) float64 { return 100 * u }},
		{"exponential", func(u float64) float64 { return -25 * math.Log(1-u) }},
	}
	for _, sh := range shapes {
		for _, q := range []float64{0.5, 0.9} {
			r := lcg(11)
			s := NewQuantileSketch(q, 256)
			vals := make([]float64, 50000)
			for i := range vals {
				vals[i] = sh.gen(r.next())
				s.Add(vals[i])
			}
			if s.Exact() {
				t.Fatalf("%s q=%v: sketch never promoted", sh.name, q)
			}
			exact := Percentile(vals, q*100)
			got := s.Quantile()
			if d := math.Abs(got - exact); d > 0.02*exact+0.5 {
				t.Errorf("%s q=%v: sketch %v vs exact %v (|d|=%v)", sh.name, q, got, exact, d)
			}
		}
	}
}

// TestSketchDeterministic: the sketch is a pure function of arrival
// order — two instances fed the same stream agree bit-for-bit at every
// prefix, before and after promotion.
func TestSketchDeterministic(t *testing.T) {
	r := lcg(3)
	a := NewQuantileSketch(0.90, 64)
	b := NewQuantileSketch(0.90, 64)
	for i := 0; i < 5000; i++ {
		v := 1000 * r.next()
		a.Add(v)
		b.Add(v)
		if i%97 == 0 {
			if math.Float64bits(a.Quantile()) != math.Float64bits(b.Quantile()) {
				t.Fatalf("n=%d: replicas diverged: %v vs %v", i+1, a.Quantile(), b.Quantile())
			}
		}
	}
	if a.N() != 5000 || b.N() != 5000 {
		t.Fatalf("N() = %d/%d, want 5000", a.N(), b.N())
	}
}

// TestSketchExactTransition pins the promotion boundary: exact through
// exactMax observations, approximate from the next one on.
func TestSketchExactTransition(t *testing.T) {
	s := NewQuantileSketch(0.90, 10)
	for i := 0; i < 10; i++ {
		s.Add(float64(i))
		if !s.Exact() {
			t.Fatalf("left exact mode at n=%d (threshold 10)", i+1)
		}
	}
	s.Add(10)
	if s.Exact() {
		t.Fatal("still exact past the threshold")
	}
	if s.N() != 11 {
		t.Fatalf("N() = %d, want 11", s.N())
	}
	// The estimate stays ordered within the observed range.
	if q := s.Quantile(); q < 0 || q > 10 {
		t.Fatalf("promoted estimate %v outside observed range [0,10]", q)
	}
}

// TestSketchDefaults: exactMax <= 0 selects DefaultSketchExact, and the
// floor of 5 applies below the P² seed size.
func TestSketchDefaults(t *testing.T) {
	s := NewQuantileSketch(0.5, 0)
	for i := 0; i < DefaultSketchExact; i++ {
		s.Add(float64(i))
	}
	if !s.Exact() {
		t.Fatalf("default threshold smaller than DefaultSketchExact=%d", DefaultSketchExact)
	}
	s.Add(1)
	if s.Exact() {
		t.Fatal("default threshold larger than DefaultSketchExact")
	}

	tiny := NewQuantileSketch(0.5, 1)
	for i := 0; i < 5; i++ {
		tiny.Add(float64(i))
		if !tiny.Exact() {
			t.Fatalf("exactMax floor of 5 not applied (left exact at n=%d)", i+1)
		}
	}
	tiny.Add(5)
	if tiny.Exact() {
		t.Fatal("floored sketch never promoted")
	}
}

// TestSketchEmptyAndPanics: empty sketch answers NaN; NaN observations
// and out-of-range quantiles panic per the ingestion contract.
func TestSketchEmptyAndPanics(t *testing.T) {
	if q := NewQuantileSketch(0.9, 0).Quantile(); !math.IsNaN(q) {
		t.Fatalf("empty sketch answered %v, want NaN", q)
	}
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("Add(NaN)", func() { NewQuantileSketch(0.9, 0).Add(math.NaN()) })
	mustPanic("q=0", func() { NewQuantileSketch(0, 0) })
	mustPanic("q=1", func() { NewQuantileSketch(1, 0) })
	mustPanic("q=NaN", func() { NewQuantileSketch(math.NaN(), 0) })
}
