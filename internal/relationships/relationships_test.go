package relationships

import (
	"sync"
	"testing"

	"eyeballas/internal/astopo"
	"eyeballas/internal/bgp"
)

var shared struct {
	once sync.Once
	w    *astopo.World
	inf  *Inferred
	err  error
}

func setup(t *testing.T) (*astopo.World, *Inferred) {
	t.Helper()
	shared.once.Do(func() {
		w, err := astopo.Generate(astopo.SmallConfig(81))
		if err != nil {
			shared.err = err
			return
		}
		routing := bgp.ComputeRouting(w)
		// Vantages: three tier-1s and three eyeballs, like RouteViews'
		// mixed peer set.
		var ribs []*bgp.RIB
		added := 0
		for _, a := range w.ASes() {
			if a.Kind == astopo.KindTier1 && added < 3 {
				rib, err := bgp.BuildRIB(w, routing, a.ASN)
				if err != nil {
					shared.err = err
					return
				}
				ribs = append(ribs, rib)
				added++
			}
		}
		for _, a := range w.Eyeballs()[:3] {
			rib, err := bgp.BuildRIB(w, routing, a.ASN)
			if err != nil {
				shared.err = err
				return
			}
			ribs = append(ribs, rib)
		}
		shared.w = w
		shared.inf = Infer(ribs...)
	})
	if shared.err != nil {
		t.Fatal(shared.err)
	}
	return shared.w, shared.inf
}

func TestInferFindsEdges(t *testing.T) {
	_, inf := setup(t)
	if len(inf.Edges) < 50 {
		t.Fatalf("only %d inferred edges", len(inf.Edges))
	}
	c2p, p2p := 0, 0
	for _, e := range inf.Edges {
		switch e.Kind {
		case CustomerToProvider:
			c2p++
		case PeerToPeer:
			p2p++
		}
	}
	if c2p == 0 {
		t.Error("no c2p edges inferred")
	}
	if p2p == 0 {
		t.Error("no p2p edges inferred")
	}
}

func TestC2POrientationAccuracy(t *testing.T) {
	w, inf := setup(t)
	acc := Evaluate(inf, w)
	if acc.C2PTotal < 20 {
		t.Fatalf("too few evaluable c2p edges: %d", acc.C2PTotal)
	}
	if frac := float64(acc.C2PCorrect) / float64(acc.C2PTotal); frac < 0.85 {
		t.Errorf("c2p orientation accuracy %.2f < 0.85 (%d/%d)", frac, acc.C2PCorrect, acc.C2PTotal)
	}
}

func TestP2PPrecisionReasonable(t *testing.T) {
	// Peer inference is the hard part of Gao-style algorithms; precision
	// above 0.5 on evaluable pairs is the bar here (the real CAIDA
	// dataset's peering precision is similarly imperfect).
	w, inf := setup(t)
	acc := Evaluate(inf, w)
	if acc.P2PTotal < 5 {
		t.Skipf("only %d evaluable p2p edges at this seed; too few to score", acc.P2PTotal)
	}
	if frac := float64(acc.P2PCorrect) / float64(acc.P2PTotal); frac < 0.5 {
		t.Errorf("p2p precision %.2f < 0.5 (%d/%d)", frac, acc.P2PCorrect, acc.P2PTotal)
	}
}

func TestKnownProviderEdgesRecovered(t *testing.T) {
	// Every eyeball's true providers appear on exported paths, so a good
	// majority of (eyeball, provider) pairs should be inferred with the
	// right orientation.
	w, inf := setup(t)
	correct, total := 0, 0
	for _, a := range w.Eyeballs() {
		for _, p := range w.Providers(a.ASN) {
			kind, custFirst, ok := inf.KindOf(a.ASN, p)
			if !ok {
				continue
			}
			total++
			if kind == CustomerToProvider && custFirst {
				correct++
			}
		}
	}
	if total == 0 {
		t.Fatal("no eyeball-provider pairs observed")
	}
	if frac := float64(correct) / float64(total); frac < 0.75 {
		t.Errorf("eyeball provider recovery %.2f < 0.75 (%d/%d)", frac, correct, total)
	}
}

func TestProvidersAndPeersAccessors(t *testing.T) {
	w, inf := setup(t)
	cs := w.CaseStudy()
	provs := inf.Providers(cs.Subject)
	if len(provs) == 0 {
		t.Fatal("no inferred providers for the case-study subject")
	}
	for i := 1; i < len(provs); i++ {
		if provs[i] <= provs[i-1] {
			t.Fatal("Providers not sorted")
		}
	}
	// KindOf is consistent with Providers.
	for _, p := range provs {
		kind, custFirst, ok := inf.KindOf(cs.Subject, p)
		if !ok || kind != CustomerToProvider || !custFirst {
			t.Errorf("KindOf(subject, %d) = %v,%v,%v", p, kind, custFirst, ok)
		}
	}
}

func TestKindOfUnknownPair(t *testing.T) {
	_, inf := setup(t)
	if _, _, ok := inf.KindOf(astopo.ASN(999998), astopo.ASN(999999)); ok {
		t.Error("KindOf invented a relationship")
	}
}

func TestInferEmpty(t *testing.T) {
	inf := Infer()
	if len(inf.Edges) != 0 {
		t.Error("empty inference has edges")
	}
}

// TestP2PPrecisionAtScale scores peering inference with enough evaluable
// edges to be meaningful; the small-world fixture rarely yields five.
// Skipped under -short (~3 s).
func TestP2PPrecisionAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale inference skipped in -short mode")
	}
	w, err := astopo.Generate(astopo.DefaultConfig(82))
	if err != nil {
		t.Fatal(err)
	}
	routing := bgp.ComputeRouting(w)
	var ribs []*bgp.RIB
	added := 0
	for _, a := range w.ASes() {
		if a.Kind != astopo.KindTier1 {
			continue
		}
		rib, err := bgp.BuildRIB(w, routing, a.ASN)
		if err != nil {
			t.Fatal(err)
		}
		ribs = append(ribs, rib)
		if added++; added == 4 {
			break
		}
	}
	for _, a := range w.Eyeballs()[:6] {
		rib, err := bgp.BuildRIB(w, routing, a.ASN)
		if err != nil {
			t.Fatal(err)
		}
		ribs = append(ribs, rib)
	}
	inf := Infer(ribs...)
	acc := Evaluate(inf, w)
	if acc.C2PTotal < 200 {
		t.Fatalf("only %d evaluable c2p edges at scale", acc.C2PTotal)
	}
	if frac := float64(acc.C2PCorrect) / float64(acc.C2PTotal); frac < 0.85 {
		t.Errorf("c2p orientation accuracy %.3f < 0.85 at scale", frac)
	}
	// Peer inference from a handful of vantages is famously sparse (the
	// real CAIDA dataset needed hundreds of vantage points); require only
	// that what IS inferred as p2p is mostly right.
	if acc.P2PTotal >= 5 {
		if frac := float64(acc.P2PCorrect) / float64(acc.P2PTotal); frac < 0.5 {
			t.Errorf("p2p precision %.3f < 0.5 at scale (%d/%d)", frac, acc.P2PCorrect, acc.P2PTotal)
		}
	} else {
		t.Logf("only %d evaluable p2p edges at scale (expected: peer visibility needs many vantages)", acc.P2PTotal)
	}
}
