// Package relationships infers business relationships between ASes from
// observed AS paths, in the style of Gao's classic algorithm — the
// synthetic analogue of the CAIDA AS-relationships dataset the paper's §6
// case study consults.
//
// The inference is deliberately imperfect in the ways the real dataset
// is: it sees only paths exported toward the vantage points, infers
// customer-provider links by the position of the highest-degree AS on
// each path, and recognizes peerings only around path summits.
package relationships

import (
	"sort"

	"eyeballas/internal/astopo"
	"eyeballas/internal/bgp"
)

// Kind is an inferred relationship type.
type Kind int

// Relationship kinds.
const (
	CustomerToProvider Kind = iota // A is a customer of B
	PeerToPeer                     // A and B are settlement-free peers
	Sibling                        // conflicting evidence both ways
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case CustomerToProvider:
		return "c2p"
	case PeerToPeer:
		return "p2p"
	case Sibling:
		return "sibling"
	default:
		return "unknown"
	}
}

// Edge is one inferred relationship. For CustomerToProvider, A is the
// customer. For PeerToPeer and Sibling, A < B.
type Edge struct {
	A, B astopo.ASN
	Kind Kind
}

// Inferred is the inference result.
type Inferred struct {
	Edges []Edge

	rel map[[2]astopo.ASN]Kind // normalized (min,max) → kind with orientation folded in
	c2p map[[2]astopo.ASN]bool // (customer, provider) pairs
}

// Providers returns the inferred providers of an AS, ascending.
func (inf *Inferred) Providers(a astopo.ASN) []astopo.ASN {
	var out []astopo.ASN
	for pair := range inf.c2p {
		if pair[0] == a {
			out = append(out, pair[1])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Peers returns the inferred peers of an AS, ascending.
func (inf *Inferred) Peers(a astopo.ASN) []astopo.ASN {
	var out []astopo.ASN
	for _, e := range inf.Edges {
		if e.Kind != PeerToPeer {
			continue
		}
		if e.A == a {
			out = append(out, e.B)
		} else if e.B == a {
			out = append(out, e.A)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// KindOf returns the inferred relationship between two ASes. ok is false
// if the pair never appeared adjacent on an observed path. When the kind
// is CustomerToProvider, customerFirst reports whether a (the first
// argument) is the customer.
func (inf *Inferred) KindOf(a, b astopo.ASN) (kind Kind, customerFirst bool, ok bool) {
	if inf.c2p[[2]astopo.ASN{a, b}] {
		return CustomerToProvider, true, true
	}
	if inf.c2p[[2]astopo.ASN{b, a}] {
		return CustomerToProvider, false, true
	}
	key := norm(a, b)
	k, exists := inf.rel[key]
	if !exists {
		return 0, false, false
	}
	return k, false, true
}

func norm(a, b astopo.ASN) [2]astopo.ASN {
	if a > b {
		a, b = b, a
	}
	return [2]astopo.ASN{a, b}
}

// peerDegreeRatio bounds how dissimilar two summit ASes' degrees may be
// while still being called peers; beyond it, the lower-degree side is
// assumed to be a customer.
const peerDegreeRatio = 3.0

// Infer runs the Gao-style inference over the AS paths of the given RIBs.
func Infer(ribs ...*bgp.RIB) *Inferred {
	// Collect distinct paths.
	seen := map[string]bool{}
	var paths [][]astopo.ASN
	for _, rib := range ribs {
		for _, e := range rib.Entries {
			if len(e.Path) < 2 {
				continue
			}
			key := pathKey(e.Path)
			if !seen[key] {
				seen[key] = true
				paths = append(paths, e.Path)
			}
		}
	}

	// Degrees from path adjacency.
	neighbours := map[astopo.ASN]map[astopo.ASN]bool{}
	addAdj := func(a, b astopo.ASN) {
		if neighbours[a] == nil {
			neighbours[a] = map[astopo.ASN]bool{}
		}
		neighbours[a][b] = true
	}
	for _, p := range paths {
		for i := 0; i+1 < len(p); i++ {
			addAdj(p[i], p[i+1])
			addAdj(p[i+1], p[i])
		}
	}
	degree := func(a astopo.ASN) int { return len(neighbours[a]) }

	// Phase 1: votes from path positions relative to the summit.
	votes := map[[2]astopo.ASN]int{} // (customer, provider) → count
	summitEdge := map[[2]astopo.ASN]int{}
	for _, p := range paths {
		j := 0
		for i := range p {
			if degree(p[i]) > degree(p[j]) {
				j = i
			}
		}
		for i := 0; i+1 < len(p); i++ {
			switch {
			case i+1 < j: // strictly uphill
				votes[[2]astopo.ASN{p[i], p[i+1]}]++
			case i >= j: // downhill
				votes[[2]astopo.ASN{p[i+1], p[i]}]++
			default: // i+1 == j: the summit edge
				summitEdge[norm(p[i], p[i+1])]++
			}
		}
	}

	inf := &Inferred{
		rel: map[[2]astopo.ASN]Kind{},
		c2p: map[[2]astopo.ASN]bool{},
	}
	done := map[[2]astopo.ASN]bool{}

	emitC2P := func(cust, prov astopo.ASN) {
		inf.c2p[[2]astopo.ASN{cust, prov}] = true
		inf.Edges = append(inf.Edges, Edge{A: cust, B: prov, Kind: CustomerToProvider})
	}

	// Resolve voted edges.
	for pair, n := range votes {
		key := norm(pair[0], pair[1])
		if done[key] {
			continue
		}
		done[key] = true
		rev := votes[[2]astopo.ASN{pair[1], pair[0]}]
		switch {
		case rev == 0:
			emitC2P(pair[0], pair[1])
		case n == 0:
			emitC2P(pair[1], pair[0])
		case float64(n) >= 2*float64(rev):
			emitC2P(pair[0], pair[1])
		case float64(rev) >= 2*float64(n):
			emitC2P(pair[1], pair[0])
		default:
			inf.rel[key] = Sibling
			inf.Edges = append(inf.Edges, Edge{A: key[0], B: key[1], Kind: Sibling})
		}
	}

	// Summit-only edges: peers if degrees are comparable, otherwise the
	// lower-degree side is the customer.
	for key, n := range summitEdge {
		if n == 0 || done[key] {
			continue
		}
		done[key] = true
		dA, dB := float64(degree(key[0])), float64(degree(key[1]))
		lo, hi := dA, dB
		if lo > hi {
			lo, hi = hi, lo
		}
		if lo > 0 && hi/lo <= peerDegreeRatio {
			inf.rel[key] = PeerToPeer
			inf.Edges = append(inf.Edges, Edge{A: key[0], B: key[1], Kind: PeerToPeer})
		} else if dA < dB {
			emitC2P(key[0], key[1])
		} else {
			emitC2P(key[1], key[0])
		}
	}

	sort.Slice(inf.Edges, func(i, j int) bool {
		if inf.Edges[i].A != inf.Edges[j].A {
			return inf.Edges[i].A < inf.Edges[j].A
		}
		if inf.Edges[i].B != inf.Edges[j].B {
			return inf.Edges[i].B < inf.Edges[j].B
		}
		return inf.Edges[i].Kind < inf.Edges[j].Kind
	})
	return inf
}

func pathKey(p []astopo.ASN) string {
	b := make([]byte, 0, len(p)*4)
	for _, a := range p {
		b = append(b, byte(a), byte(a>>8), byte(a>>16), byte(a>>24))
	}
	return string(b)
}

// Accuracy compares an inference against ground truth, for evaluation.
type Accuracy struct {
	C2PTotal   int // inferred c2p edges whose pair truly has a relationship
	C2PCorrect int // ... with the right orientation
	P2PTotal   int // inferred p2p edges whose pair truly has a relationship
	P2PCorrect int
}

// Evaluate scores the inference against the generating world.
func Evaluate(inf *Inferred, w *astopo.World) Accuracy {
	truthProv := map[[2]astopo.ASN]bool{}
	for _, a := range w.ASNs() {
		for _, p := range w.Providers(a) {
			truthProv[[2]astopo.ASN{a, p}] = true
		}
	}
	truthPeer := map[[2]astopo.ASN]bool{}
	for _, p := range w.Peerings() {
		truthPeer[norm(p.A, p.B)] = true
	}
	var acc Accuracy
	for _, e := range inf.Edges {
		switch e.Kind {
		case CustomerToProvider:
			if truthProv[[2]astopo.ASN{e.A, e.B}] {
				acc.C2PTotal++
				acc.C2PCorrect++
			} else if truthProv[[2]astopo.ASN{e.B, e.A}] || truthPeer[norm(e.A, e.B)] {
				acc.C2PTotal++
			}
		case PeerToPeer:
			if truthPeer[norm(e.A, e.B)] {
				acc.P2PTotal++
				acc.P2PCorrect++
			} else if truthProv[[2]astopo.ASN{e.A, e.B}] || truthProv[[2]astopo.ASN{e.B, e.A}] {
				acc.P2PTotal++
			}
		}
	}
	return acc
}
