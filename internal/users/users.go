// Package users synthesizes the end-user population of eyeball ASes:
// where a customer physically sits (scattered around the AS's PoP cities)
// and which IP address it holds (drawn from the AS's prefixes).
//
// Users are materialized lazily — the crawlers in internal/p2p sample
// only the users they observe, so worlds with tens of millions of nominal
// customers stay cheap.
package users

import (
	"math"

	"eyeballas/internal/astopo"
	"eyeballas/internal/geo"
	"eyeballas/internal/ipnet"
	"eyeballas/internal/rng"
)

// User is one materialized end user.
type User struct {
	IP      ipnet.Addr
	ASN     astopo.ASN
	TrueLoc geo.Point // exact ground-truth location
}

// Placer materializes users for the ASes of one world.
type Placer struct {
	w *astopo.World
}

// NewPlacer returns a placer over the world.
func NewPlacer(w *astopo.World) *Placer { return &Placer{w: w} }

// suburbanTailProb is the fraction of users living outside the compact
// metro core, up to suburbanReach metro radii out.
const (
	suburbanTailProb = 0.12
	suburbanReach    = 1.8
)

// Place returns a ground-truth location for one user of the AS: a PoP
// city is chosen by customer share, then the user is scattered within the
// metro (triangular radial profile) or, with a small probability, in the
// suburban tail beyond it.
func (pl *Placer) Place(a *astopo.AS, s *rng.Source) geo.Point {
	pops := a.UserPoPs()
	if len(pops) == 0 {
		// Infrastructure-only AS probed for a user anyway: fall back to
		// the first PoP city.
		return a.PoPs[0].City.Loc
	}
	weights := make([]float64, len(pops))
	for i, p := range pops {
		weights[i] = p.Share
	}
	idx := s.WeightedIndex(weights)
	if idx < 0 {
		idx = 0
	}
	city := pops[idx].City
	r := city.RadiusKm()
	var dist float64
	if s.Bool(suburbanTailProb) {
		dist = r * (1 + (suburbanReach-1)*s.Float64()*s.Float64())
	} else {
		dist = r * s.Float64() * math.Sqrt(s.Float64()) // denser toward centre
	}
	return geo.Destination(city.Loc, s.Range(0, 360), dist)
}

// IPFor draws an address from the AS's prefixes, weighted by prefix size.
func (pl *Placer) IPFor(a *astopo.AS, s *rng.Source) ipnet.Addr {
	if len(a.Prefixes) == 0 {
		return 0
	}
	if len(a.Prefixes) == 1 {
		p := a.Prefixes[0]
		return p.Nth(uint64(s.Int63()))
	}
	weights := make([]float64, len(a.Prefixes))
	for i, p := range a.Prefixes {
		weights[i] = float64(p.NumAddrs())
	}
	p := a.Prefixes[s.WeightedIndex(weights)]
	return p.Nth(uint64(s.Int63()))
}

// Materialize builds n users of the AS with one derived stream, so the
// same (world seed, AS, n) always yields the same users.
func (pl *Placer) Materialize(a *astopo.AS, n int, s *rng.Source) []User {
	out := make([]User, n)
	for i := range out {
		out[i] = User{
			IP:      pl.IPFor(a, s),
			ASN:     a.ASN,
			TrueLoc: pl.Place(a, s),
		}
	}
	return out
}
