package users

import (
	"testing"

	"eyeballas/internal/astopo"
	"eyeballas/internal/geo"
	"eyeballas/internal/rng"
)

func worldAndPlacer(t *testing.T) (*astopo.World, *Placer) {
	t.Helper()
	w, err := astopo.Generate(astopo.SmallConfig(31))
	if err != nil {
		t.Fatal(err)
	}
	return w, NewPlacer(w)
}

func TestPlaceNearPoPs(t *testing.T) {
	w, pl := worldAndPlacer(t)
	for _, a := range w.Eyeballs()[:10] {
		s := rng.New(1).SplitN("place", int(a.ASN))
		for i := 0; i < 200; i++ {
			loc := pl.Place(a, s)
			if !loc.Valid() {
				t.Fatalf("invalid location %v", loc)
			}
			// Within suburbanReach of some user-serving PoP.
			ok := false
			for _, p := range a.UserPoPs() {
				if geo.DistanceKm(loc, p.City.Loc) <= p.City.RadiusKm()*suburbanReach+1 {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("AS %d user at %v far from all PoPs", a.ASN, loc)
			}
		}
	}
}

func TestPlaceRespectsShares(t *testing.T) {
	w, pl := worldAndPlacer(t)
	// Find an eyeball with >= 2 user PoPs and a dominant one.
	var target *astopo.AS
	for _, a := range w.Eyeballs() {
		if len(a.UserPoPs()) >= 2 {
			target = a
			break
		}
	}
	if target == nil {
		t.Skip("no multi-PoP eyeball in this small world")
	}
	pops := target.UserPoPs()
	counts := make([]int, len(pops))
	s := rng.New(2)
	n := 8000
	for i := 0; i < n; i++ {
		loc := pl.Place(target, s)
		best, bestD := -1, 1e18
		for j, p := range pops {
			if d := geo.DistanceKm(loc, p.City.Loc); d < bestD {
				best, bestD = j, d
			}
		}
		counts[best]++
	}
	for j, p := range pops {
		got := float64(counts[j]) / float64(n)
		if p.Share > 0.25 && (got < p.Share*0.5 || got > p.Share*1.6) {
			t.Errorf("PoP %s share %.3f, observed %.3f", p.City.Name, p.Share, got)
		}
	}
}

func TestIPForInsidePrefixes(t *testing.T) {
	w, pl := worldAndPlacer(t)
	s := rng.New(3)
	for _, a := range w.Eyeballs()[:10] {
		for i := 0; i < 100; i++ {
			ip := pl.IPFor(a, s)
			inside := false
			for _, p := range a.Prefixes {
				if p.Contains(ip) {
					inside = true
					break
				}
			}
			if !inside {
				t.Fatalf("AS %d IP %v outside prefixes %v", a.ASN, ip, a.Prefixes)
			}
		}
	}
}

func TestMaterializeDeterministic(t *testing.T) {
	w, pl := worldAndPlacer(t)
	a := w.Eyeballs()[0]
	u1 := pl.Materialize(a, 50, rng.New(7).Split("x"))
	u2 := pl.Materialize(a, 50, rng.New(7).Split("x"))
	if len(u1) != 50 {
		t.Fatalf("len = %d", len(u1))
	}
	for i := range u1 {
		if u1[i] != u2[i] {
			t.Fatalf("user %d differs: %+v vs %+v", i, u1[i], u2[i])
		}
		if u1[i].ASN != a.ASN {
			t.Fatalf("user %d has ASN %d", i, u1[i].ASN)
		}
	}
}

func TestPlaceInfraOnlyFallback(t *testing.T) {
	_, pl := worldAndPlacer(t)
	w2, _ := astopo.Generate(astopo.SmallConfig(32))
	// Tier-1s have no user-serving PoPs; Place must still return a valid
	// location (the fallback path).
	var tier1 *astopo.AS
	for _, a := range w2.ASes() {
		if a.Kind == astopo.KindTier1 {
			tier1 = a
			break
		}
	}
	if tier1 == nil {
		t.Fatal("no tier-1")
	}
	loc := pl.Place(tier1, rng.New(4))
	if !loc.Valid() {
		t.Errorf("fallback location invalid: %v", loc)
	}
}
