package users

import (
	"testing"

	"eyeballas/internal/astopo"
	"eyeballas/internal/rng"
)

func BenchmarkPlace(b *testing.B) {
	w, err := astopo.Generate(astopo.SmallConfig(9300))
	if err != nil {
		b.Fatal(err)
	}
	pl := NewPlacer(w)
	a := w.Eyeballs()[0]
	s := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl.Place(a, s)
	}
}

func BenchmarkMaterialize(b *testing.B) {
	w, err := astopo.Generate(astopo.SmallConfig(9300))
	if err != nil {
		b.Fatal(err)
	}
	pl := NewPlacer(w)
	a := w.Eyeballs()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl.Materialize(a, 1000, rng.New(uint64(i)))
	}
}
