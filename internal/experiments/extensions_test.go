package experiments

import (
	"strings"
	"testing"
)

func TestMultiScaleExperiment(t *testing.T) {
	env := sharedEnv(t)
	m, err := RunMultiScale(env)
	if err != nil {
		t.Fatal(err)
	}
	if m.NASes == 0 {
		t.Fatal("no validation ASes")
	}
	// The refinement's promise: at least the recall of fixed 40 km.
	if m.MultiScaleRecall < m.Plain40Recall-1e-9 {
		t.Errorf("multi-scale recall %.1f%% below plain-40 %.1f%%", m.MultiScaleRecall, m.Plain40Recall)
	}
	// And far better precision than plain 10 km.
	if m.MultiScalePrecision <= m.Plain10Precision {
		t.Errorf("multi-scale precision %.1f%% not above plain-10 %.1f%%", m.MultiScalePrecision, m.Plain10Precision)
	}
	if !strings.Contains(m.Render(), "multi-scale") {
		t.Error("render malformed")
	}
}

func TestBiasExperiment(t *testing.T) {
	env := sharedEnv(t)
	b, err := RunBias(env)
	if err != nil {
		t.Fatal(err)
	}
	if b.NASes == 0 {
		t.Fatal("no evaluable ASes")
	}
	// §4.3's mild-bias prediction: PoPs still discovered (most of them),
	// densities drift.
	if b.MildPoPRetention < 0.6 {
		t.Errorf("mild-bias retention %.2f too low; thinning should not destroy PoPs", b.MildPoPRetention)
	}
	if b.MildDensityDriftR <= 0 {
		t.Error("mild bias should shift density values")
	}
	// §4.3's significant-bias prediction: the unsampled PoP disappears.
	if b.SignificantTrials > 0 && b.SignificantLossRate < 0.5 {
		t.Errorf("significant-bias loss rate %.2f; ablated PoPs should mostly disappear", b.SignificantLossRate)
	}
	if !strings.Contains(b.Render(), "Sampling-bias") {
		t.Error("render malformed")
	}
}

func TestFusionExperiment(t *testing.T) {
	env := sharedEnv(t)
	f, err := RunFusion(env)
	if err != nil {
		t.Fatal(err)
	}
	if f.NASes == 0 {
		t.Fatal("no common ASes")
	}
	// §7's promise: fusion at least matches each input's recall.
	if f.FusedRecall < f.KDERecall-1e-9 || f.FusedRecall < f.TraceRecall-1e-9 {
		t.Errorf("fusion recall %.1f%% below inputs (KDE %.1f%%, traceroute %.1f%%)",
			f.FusedRecall, f.KDERecall, f.TraceRecall)
	}
	// Fusion never shrinks the set.
	if f.FusedPoPs < f.KDEPoPs-1e-9 {
		t.Errorf("fusion set %.2f smaller than KDE set %.2f", f.FusedPoPs, f.KDEPoPs)
	}
	if !strings.Contains(f.Render(), "fusion") {
		t.Error("render malformed")
	}
}

func TestPredictExperiment(t *testing.T) {
	env := sharedEnv(t)
	p, err := RunPredict(env)
	if err != nil {
		t.Fatal(err)
	}
	if p.NASes == 0 {
		t.Fatal("no evaluable ASes")
	}
	// The generalized §6 finding: a geography-based predictor is
	// measurably incomplete — some ASes exceed the predicted upstream
	// richness, and some real IXP memberships are remote.
	if p.UpstreamUnderCount <= 0 {
		t.Error("no AS exceeded the predicted upstream range; the §6 surprise should generalize")
	}
	if p.RemoteShare <= 0 {
		t.Error("no remote IXP memberships; the §6 remote-peering finding should generalize")
	}
	if p.IXPRecall <= 0 || p.IXPRecall > 1 || p.IXPPrecision < 0 || p.IXPPrecision > 1 {
		t.Errorf("degenerate IXP scores: precision %.2f recall %.2f", p.IXPPrecision, p.IXPRecall)
	}
	out := p.Render()
	if !strings.Contains(out, "remote peering") {
		t.Error("render malformed")
	}
}

func TestPeerGeoExperiment(t *testing.T) {
	env := sharedEnv(t)
	p, err := RunPeerGeo(env)
	if err != nil {
		t.Fatal(err)
	}
	if p.PeerPairs == 0 || p.ControlPairs == 0 {
		t.Fatalf("empty pair sets: %+v", p)
	}
	// The §1 motivation quantified: peering pairs overlap geographically
	// more than random co-regional pairs.
	if p.PeerAnyOverlap <= p.ControlAnyOverlap {
		t.Errorf("peer overlap rate %.2f not above control %.2f", p.PeerAnyOverlap, p.ControlAnyOverlap)
	}
	if !strings.Contains(p.Render(), "Peering geography") {
		t.Error("render malformed")
	}
}

func TestStabilityExperiment(t *testing.T) {
	env := sharedEnv(t)
	s, err := RunStability(env, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.CommonAS == 0 {
		t.Fatal("no common ASes across months")
	}
	// Footprints must be substantially stable across independent crawls
	// — the implicit assumption of a six-month measurement window.
	if s.MeanConsecutiveJaccard < 0.6 {
		t.Errorf("consecutive-month Jaccard %.3f too low; method unstable under resampling", s.MeanConsecutiveJaccard)
	}
	if s.ASRetention < 0.7 {
		t.Errorf("AS retention %.2f too low", s.ASRetention)
	}
	if _, err := RunStability(env, 1); err == nil {
		t.Error("months=1 accepted")
	}
	if !strings.Contains(s.Render(), "Temporal stability") {
		t.Error("render malformed")
	}
}

func TestDensityExperiment(t *testing.T) {
	env := sharedEnv(t)
	d, err := RunDensity(env)
	if err != nil {
		t.Fatal(err)
	}
	if d.NASes == 0 || d.PairsScored == 0 {
		t.Fatalf("nothing scored: %+v", d)
	}
	// The §4.2 densities must track ground-truth presence: generator
	// shares are pop^0.85-weighted, KDE mass shares follow user counts,
	// so the rank correlation should be strongly positive.
	if d.MeanSpearman < 0.5 {
		t.Errorf("mean Spearman %.3f < 0.5; density values do not track presence", d.MeanSpearman)
	}
	if !strings.Contains(d.Render(), "Spearman") {
		t.Error("render malformed")
	}
}

func TestServicesExperiment(t *testing.T) {
	env := sharedEnv(t)
	s, err := RunServices(env)
	if err != nil {
		t.Fatal(err)
	}
	if s.Residential == 0 || s.Content == 0 {
		t.Skipf("class imbalance at this seed: %d residential, %d content", s.Residential, s.Content)
	}
	// A majority-class guesser scores 0.5 balanced accuracy; the
	// footprint features must demonstrate real signal above that.
	if s.BalancedAccuracy <= 0.6 {
		t.Errorf("balanced accuracy %.2f not above 0.6 (chance = 0.5)", s.BalancedAccuracy)
	}
	if s.Recall == 0 {
		t.Error("classifier never identifies content ASes")
	}
	if !strings.Contains(s.Render(), "Residential vs content") {
		t.Error("render malformed")
	}
}

func TestCrawlQualityExperiment(t *testing.T) {
	env := sharedEnv(t)
	cq, err := RunCrawlQuality(env, []float64{1.0, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if len(cq.Rows) != 2 {
		t.Fatalf("rows = %d", len(cq.Rows))
	}
	full, quarter := cq.Rows[0], cq.Rows[1]
	if quarter.CrawledPeers >= full.CrawledPeers {
		t.Errorf("quarter crawl %d >= full %d", quarter.CrawledPeers, full.CrawledPeers)
	}
	// Less effort ⇒ fewer eligible ASes (the peer floor bites) and no
	// richer footprints.
	if quarter.EligibleASes > full.EligibleASes {
		t.Errorf("quarter scale admitted more ASes (%d > %d)", quarter.EligibleASes, full.EligibleASes)
	}
	// Like-for-like over the common AS set: fewer samples never enrich a
	// footprint. (The naive per-scale mean CAN rise at low scale — only
	// big ASes survive the floor — which is why the common-set column
	// exists.)
	// A reduced-scale crawl is an independent draw, not a subsample, so
	// allow sampling noise around equality.
	if quarter.MeanPoPsCommon > full.MeanPoPsCommon+0.2 {
		t.Errorf("quarter scale found richer common-set footprints (%.2f > %.2f)",
			quarter.MeanPoPsCommon, full.MeanPoPsCommon)
	}
	if _, err := RunCrawlQuality(env, []float64{-1}); err == nil {
		t.Error("negative scale accepted")
	}
	if !strings.Contains(cq.Render(), "sensitivity") {
		t.Error("render malformed")
	}
}
