package experiments

import (
	"fmt"
	"strings"

	"eyeballas/internal/astopo"
	"eyeballas/internal/core"
	"eyeballas/internal/parallel"
)

// Services realizes the paper's §3/§7 claim that the geo-footprint
// "provides useful information about the services offered (e.g.,
// residential vs. retail)" and "business-specific features (e.g., serving
// residential vs. business customers)": a simple footprint-based
// classifier separates residential access ISPs from content/enterprise
// networks, scored against the generator's ground-truth Kind.
//
// The classifier uses only measurement-side features:
//
//   - usable peer count (residential ISPs serve far more users);
//   - PoP count of the footprint (access networks spread across cities);
//   - the dominant PoP's density share (enterprises concentrate in one
//     metro).
type Services struct {
	NASes       int
	Residential int // ground-truth residential eyeballs evaluated
	Content     int // ground-truth content/enterprise ASes evaluated

	Accuracy  float64 // overall fraction classified correctly
	Precision float64 // of predicted content ASes, fraction truly content
	Recall    float64 // of true content ASes, fraction predicted content
	// BalancedAccuracy averages the per-class recalls; a
	// majority-class guesser scores 0.5 regardless of class imbalance,
	// so values well above 0.5 demonstrate real footprint signal.
	BalancedAccuracy float64
}

// serviceThresholds separate the two classes; deliberately simple and
// interpretable rather than tuned.
const (
	svcMaxContentPeers  = 600 // content ASes have few P2P users
	svcMaxContentPoPs   = 2   // ...in at most a couple of metros
	svcMinConcentration = 0.3 // ...with a strongly dominant metro
)

// classifyService predicts true for "content/enterprise".
func classifyService(nPeers, nPoPs int, topDensity float64) bool {
	if nPeers > svcMaxContentPeers {
		return false
	}
	if nPoPs > svcMaxContentPoPs {
		return false
	}
	return topDensity >= svcMinConcentration
}

// RunServices executes the classification over every AS in the target
// dataset with a ground-truth kind of eyeball or content.
func RunServices(env *Env) (*Services, error) {
	asns := env.Dataset.Order
	type row struct {
		isContent, predContent, ok bool
	}
	rows := make([]row, len(asns))
	err := parallel.ForEach(env.ctx(), 0, asns, func(i int, asn astopo.ASN) error {
		a := env.World.AS(asn)
		if a == nil || (a.Kind != astopo.KindEyeball && a.Kind != astopo.KindContent) {
			return nil
		}
		rec := env.Dataset.AS(asn)
		fp, err := core.EstimateFootprint(env.World.Gazetteer, rec.Samples, core.Options{})
		if err != nil {
			return err
		}
		top := 0.0
		if len(fp.PoPs) > 0 {
			top = fp.PoPs[0].Density
		}
		rows[i] = row{
			isContent:   a.Kind == astopo.KindContent,
			predContent: classifyService(len(rec.Samples), len(fp.PoPs), top),
			ok:          true,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := &Services{}
	var tp, fp_, fn, correct int
	for _, r := range rows {
		if !r.ok {
			continue
		}
		out.NASes++
		if r.isContent {
			out.Content++
		} else {
			out.Residential++
		}
		if r.predContent == r.isContent {
			correct++
		}
		switch {
		case r.predContent && r.isContent:
			tp++
		case r.predContent && !r.isContent:
			fp_++
		case !r.predContent && r.isContent:
			fn++
		}
	}
	if out.NASes == 0 {
		return nil, fmt.Errorf("experiments: no classifiable ASes")
	}
	out.Accuracy = float64(correct) / float64(out.NASes)
	if tp+fp_ > 0 {
		out.Precision = float64(tp) / float64(tp+fp_)
	}
	if tp+fn > 0 {
		out.Recall = float64(tp) / float64(tp+fn)
	}
	// Residential recall = TN / (TN + FP).
	tn := out.Residential - fp_
	if out.Residential > 0 && out.Content > 0 {
		out.BalancedAccuracy = (out.Recall + float64(tn)/float64(out.Residential)) / 2
	}
	return out, nil
}

// Render prints the classification scorecard.
func (s *Services) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Residential vs content classification (§3/§7 claim; %d ASes: %d residential, %d content)\n",
		s.NASes, s.Residential, s.Content)
	fmt.Fprintf(&b, "  accuracy %.0f%% (balanced %.0f%%; chance = 50%%); content precision %.0f%%, recall %.0f%%\n",
		100*s.Accuracy, 100*s.BalancedAccuracy, 100*s.Precision, 100*s.Recall)
	fmt.Fprintf(&b, "  (features: peer count, footprint PoP count, dominant-metro concentration)\n")
	return b.String()
}
