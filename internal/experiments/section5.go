package experiments

import (
	"fmt"
	"strings"
)

// Section5 collects the scalar statistics §5 reports alongside Figure 2:
// mean discovered PoPs per AS at each bandwidth, the mean published-list
// length, and the perfect-match fractions.
type Section5 struct {
	Bandwidths       []float64
	MeanDiscovered   map[float64]float64
	MeanReference    float64
	PerfectMatchFrac map[float64]float64
}

// paperSection5 holds the paper's reported values for the comparison
// columns of the rendered table.
var paperSection5 = struct {
	meanDiscovered map[float64]float64
	meanReference  float64
	perfectMatch   map[float64]float64
}{
	meanDiscovered: map[float64]float64{10: 31.9, 40: 13.6, 80: 7.3},
	meanReference:  43.7,
	perfectMatch:   map[float64]float64{10: 0.05, 40: 0.41, 80: 0.60},
}

// RunSection5 derives the statistics from a finished Figure 2 run.
func RunSection5(f2 *Figure2) *Section5 {
	return &Section5{
		Bandwidths:       f2.Bandwidths,
		MeanDiscovered:   f2.MeanDiscovered,
		MeanReference:    f2.MeanReference,
		PerfectMatchFrac: f2.PerfectMatchFrac,
	}
}

// Render prints measured-vs-paper rows.
func (s *Section5) Render() string {
	var b strings.Builder
	b.WriteString("§5 scalar statistics (measured vs paper)\n")
	fmt.Fprintf(&b, "  mean published PoPs/AS: %.1f (paper: %.1f)\n", s.MeanReference, paperSection5.meanReference)
	for _, bw := range s.Bandwidths {
		paperMean, okM := paperSection5.meanDiscovered[bw]
		paperPerf, okP := paperSection5.perfectMatch[bw]
		fmt.Fprintf(&b, "  bw %3.0f km: discovered %.1f PoPs/AS", bw, s.MeanDiscovered[bw])
		if okM {
			fmt.Fprintf(&b, " (paper: %.1f)", paperMean)
		}
		fmt.Fprintf(&b, "; perfect match %.0f%%", 100*s.PerfectMatchFrac[bw])
		if okP {
			fmt.Fprintf(&b, " (paper: %.0f%%)", 100*paperPerf)
		}
		b.WriteString("\n")
	}
	return b.String()
}
