package experiments

import (
	"fmt"
	"strings"

	"eyeballas/internal/astopo"
	"eyeballas/internal/core"
	"eyeballas/internal/geo"
	"eyeballas/internal/parallel"
)

// Predict quantifies the question the paper poses and leaves open (§1:
// "how to leverage the geo-properties of an eyeball AS to predict likely
// scenarios of how the AS connects to the rest of the Internet is left
// for future work"): how well does a purely geography-based predictor
// anticipate real connectivity?
//
// The predictor is the natural one the §6 case study articulates:
//
//   - Upstream count: a city-level AS should have 1–2 upstreams, a
//     state-level 2–3, a country-level 3–5.
//   - IXP membership: an AS joins exchanges located in its footprint's
//     PoP cities (local peering), and no others.
//
// The §6 finding generalized: both predictions should be measurably poor
// — eyeballs are richer upstream and peer at remote exchanges.
type Predict struct {
	NASes int

	// Upstream-count prediction.
	UpstreamWithinRange float64 // fraction of ASes whose true count falls in the predicted range
	UpstreamUnderCount  float64 // fraction of ASes with MORE upstreams than predicted
	MeanTrueUpstreams   float64
	MeanPredictedMax    float64

	// IXP-membership prediction.
	IXPPrecision float64 // predicted memberships that are real
	IXPRecall    float64 // real memberships that were predicted
	RemoteShare  float64 // fraction of real memberships at exchanges away from any PoP city
}

// upstreamRange returns the geography-based prediction for a level.
func upstreamRange(l astopo.Level) (lo, hi int) {
	switch l {
	case astopo.LevelCity:
		return 1, 2
	case astopo.LevelState:
		return 2, 3
	default:
		return 3, 5
	}
}

// RunPredict evaluates the predictor over every eyeball AS in the target
// dataset.
func RunPredict(env *Env) (*Predict, error) {
	asns := env.Dataset.Order
	if len(asns) == 0 {
		return nil, fmt.Errorf("experiments: empty target dataset")
	}
	type row struct {
		inRange, under   bool
		trueUp, predMax  int
		predIXP, trueIXP int
		correctIXP       int
		remoteIXP        int
		ok               bool
	}
	rows := make([]row, len(asns))
	err := parallel.ForEach(env.ctx(), 0, asns, func(i int, asn astopo.ASN) error {
		rec := env.Dataset.AS(asn)
		fp, err := core.EstimateFootprint(env.World.Gazetteer, rec.Samples, core.Options{})
		if err != nil {
			return err
		}
		r := row{ok: true}

		// Upstreams.
		lo, hi := upstreamRange(rec.Class.Level)
		r.trueUp = len(env.World.Providers(asn))
		r.predMax = hi
		r.inRange = r.trueUp >= lo && r.trueUp <= hi
		r.under = r.trueUp > hi

		// IXPs: predicted = exchanges within the match radius of a
		// discovered PoP city.
		predicted := map[astopo.IXPID]bool{}
		for _, ix := range env.World.IXPs() {
			for _, p := range fp.PoPs {
				if geo.DistanceKm(ix.City.Loc, p.City.Loc) <= core.MatchRadiusKm {
					predicted[ix.ID] = true
					break
				}
			}
		}
		actual := map[astopo.IXPID]bool{}
		for _, id := range env.IXPData.IXPsOf(asn) {
			actual[id] = true
		}
		r.predIXP = 0
		for id := range predicted {
			r.predIXP++
			if actual[id] {
				r.correctIXP++
			}
		}
		r.trueIXP = len(actual)
		for id := range actual {
			ix := env.World.IXP(id)
			remote := true
			for _, p := range fp.PoPs {
				if geo.DistanceKm(ix.City.Loc, p.City.Loc) <= core.MatchRadiusKm {
					remote = false
					break
				}
			}
			if remote {
				r.remoteIXP++
			}
		}
		rows[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := &Predict{}
	var predIXPTotal, correctIXPTotal, trueIXPTotal, remoteTotal int
	for _, r := range rows {
		if !r.ok {
			continue
		}
		out.NASes++
		if r.inRange {
			out.UpstreamWithinRange++
		}
		if r.under {
			out.UpstreamUnderCount++
		}
		out.MeanTrueUpstreams += float64(r.trueUp)
		out.MeanPredictedMax += float64(r.predMax)
		predIXPTotal += r.predIXP
		correctIXPTotal += r.correctIXP
		trueIXPTotal += r.trueIXP
		remoteTotal += r.remoteIXP
	}
	if out.NASes == 0 {
		return nil, fmt.Errorf("experiments: no evaluable ASes")
	}
	n := float64(out.NASes)
	out.UpstreamWithinRange /= n
	out.UpstreamUnderCount /= n
	out.MeanTrueUpstreams /= n
	out.MeanPredictedMax /= n
	if predIXPTotal > 0 {
		out.IXPPrecision = float64(correctIXPTotal) / float64(predIXPTotal)
	}
	if trueIXPTotal > 0 {
		out.IXPRecall = float64(correctIXPTotal) / float64(trueIXPTotal)
		out.RemoteShare = float64(remoteTotal) / float64(trueIXPTotal)
	}
	return out, nil
}

// Render prints the predictor's scorecard.
func (p *Predict) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Geography→connectivity prediction (§1 open question; %d eyeball ASes)\n", p.NASes)
	fmt.Fprintf(&b, "  upstream count: true mean %.2f vs predicted max %.2f\n", p.MeanTrueUpstreams, p.MeanPredictedMax)
	fmt.Fprintf(&b, "    within predicted range: %.0f%%; richer than predicted: %.0f%%\n",
		100*p.UpstreamWithinRange, 100*p.UpstreamUnderCount)
	fmt.Fprintf(&b, "  IXP membership (predict: exchanges at footprint PoP cities):\n")
	fmt.Fprintf(&b, "    precision %.0f%%, recall %.0f%%\n", 100*p.IXPPrecision, 100*p.IXPRecall)
	fmt.Fprintf(&b, "    %.0f%% of real memberships are at exchanges away from every PoP city (remote peering)\n",
		100*p.RemoteShare)
	return b.String()
}
