package experiments

import (
	"strings"
	"sync"
	"testing"

	"eyeballas/internal/astopo"
	"eyeballas/internal/gazetteer"
	"eyeballas/internal/p2p"
)

var shared struct {
	once sync.Once
	env  *Env
	err  error
}

func sharedEnv(t *testing.T) *Env {
	t.Helper()
	shared.once.Do(func() {
		shared.env, shared.err = NewEnv(111, ScaleSmall)
	})
	if shared.err != nil {
		t.Fatal(shared.err)
	}
	return shared.env
}

func TestNewEnvComplete(t *testing.T) {
	env := sharedEnv(t)
	if env.World == nil || env.Routing == nil || env.Crawl == nil ||
		env.Dataset == nil || env.Reference == nil || env.IXPData == nil {
		t.Fatal("environment incomplete")
	}
	if len(env.Traces) == 0 {
		t.Fatal("no traceroutes")
	}
	if len(env.Dataset.Order) == 0 {
		t.Fatal("empty target dataset")
	}
}

func TestTable1Shape(t *testing.T) {
	env := sharedEnv(t)
	tbl := RunTable1(env)
	if tbl.TotalASes == 0 || tbl.TotalPeers == 0 {
		t.Fatalf("empty table: %+v", tbl)
	}
	// The paper's regional asymmetry: Kad dominates EU and AS peers;
	// Gnutella dominates NA.
	if tbl.Peers[gazetteer.EU][p2p.Kad] <= tbl.Peers[gazetteer.EU][p2p.Gnutella] {
		t.Error("EU should be Kad-dominated")
	}
	if tbl.Peers[gazetteer.NA][p2p.Gnutella] <= tbl.Peers[gazetteer.NA][p2p.Kad] {
		t.Error("NA should be Gnutella-dominated")
	}
	out := tbl.Render()
	for _, want := range []string{"Table 1", "NA", "EU", "AS", "City", "Country"} {
		if !strings.Contains(out, want) {
			t.Errorf("render lacks %q:\n%s", want, out)
		}
	}
	csv := tbl.CSV()
	if len(strings.Split(strings.TrimSpace(csv), "\n")) != 4 {
		t.Errorf("CSV should have header + 3 rows:\n%s", csv)
	}
}

func TestFigure1(t *testing.T) {
	env := sharedEnv(t)
	f, err := RunFigure1(env, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.NSamples == 0 {
		t.Fatal("no samples for Figure 1 subject")
	}
	// The paper's multi-resolution claim: PoP count is non-increasing in
	// bandwidth (more smoothing merges peaks).
	n20 := len(f.Footprints[20].PoPs)
	n40 := len(f.Footprints[40].PoPs)
	n60 := len(f.Footprints[60].PoPs)
	if n20 < n40 || n40 < n60 {
		t.Errorf("PoP counts not non-increasing with bandwidth: %d, %d, %d", n20, n40, n60)
	}
	if n40 == 0 {
		t.Error("no PoPs at 40 km")
	}
	out := f.Render()
	if !strings.Contains(out, "Figure 1") || !strings.Contains(out, "bandwidth 40") {
		t.Errorf("render malformed:\n%s", out[:min(400, len(out))])
	}
}

func TestFigure2AndSection5(t *testing.T) {
	env := sharedEnv(t)
	f2, err := RunFigure2(env, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(f2.ASNs) == 0 {
		t.Fatal("no validation ASes")
	}
	// Shape 1: smaller bandwidth discovers more PoPs per AS (paper:
	// 31.9 / 13.6 / 7.3 at 10/40/80 km).
	if !(f2.MeanDiscovered[10] > f2.MeanDiscovered[40] && f2.MeanDiscovered[40] > f2.MeanDiscovered[80]) {
		t.Errorf("mean discovered not decreasing in bandwidth: %v", f2.MeanDiscovered)
	}
	// Shape 2: larger bandwidth gives a more reliable (higher precision)
	// set: perfect-match fraction increases with bandwidth (paper:
	// 5% / 41% / 60%).
	// At small scale (a dozen validation ASes) adjacent bandwidths can
	// tie; require monotone non-decreasing with a strict overall rise.
	if f2.PerfectMatchFrac[80] < f2.PerfectMatchFrac[40] ||
		f2.PerfectMatchFrac[40] < f2.PerfectMatchFrac[10] ||
		f2.PerfectMatchFrac[80] <= f2.PerfectMatchFrac[10] {
		t.Errorf("perfect-match fraction not increasing in bandwidth: %v", f2.PerfectMatchFrac)
	}
	// Shape 3: published lists are longer than what KDE resolves at
	// 40 km (paper: 43.7 vs 13.6).
	if f2.MeanReference <= f2.MeanDiscovered[40] {
		t.Errorf("reference lists (%.1f) should exceed discovered at 40 km (%.1f)",
			f2.MeanReference, f2.MeanDiscovered[40])
	}
	// Shape 4: recall is higher at smaller bandwidth (Figure 2a: lower
	// bandwidth maps more ground-truth PoPs). Compare means.
	if mean(f2.RefMatchedPct[10]) <= mean(f2.RefMatchedPct[80]) {
		t.Errorf("recall at 10 km (%.1f) should exceed recall at 80 km (%.1f)",
			mean(f2.RefMatchedPct[10]), mean(f2.RefMatchedPct[80]))
	}

	s5 := RunSection5(f2)
	out := s5.Render()
	if !strings.Contains(out, "paper: 43.7") || !strings.Contains(out, "paper: 13.6") {
		t.Errorf("section 5 render lacks paper columns:\n%s", out)
	}
	if !strings.Contains(f2.Render(), "(a) CDF") {
		t.Error("figure 2 render lacks panel (a)")
	}
	csv := f2.CSV()
	if !strings.HasPrefix(csv, "asn,bandwidth_km") {
		t.Error("CSV header wrong")
	}
}

func TestDIMESComparison(t *testing.T) {
	env := sharedEnv(t)
	d, err := RunDIMES(env)
	if err != nil {
		t.Fatal(err)
	}
	if d.CommonASes == 0 {
		t.Fatal("no common ASes")
	}
	// The §5 shape: KDE finds several times more PoPs per AS than the
	// vantage-limited traceroute baseline (paper: 7.14 vs 1.54).
	if d.OurMeanPoPs <= d.DIMESMeanPoPs {
		t.Errorf("KDE (%.2f) should beat traceroute (%.2f)", d.OurMeanPoPs, d.DIMESMeanPoPs)
	}
	if d.OurMeanPoPs < 1.5*d.DIMESMeanPoPs {
		t.Errorf("KDE/traceroute ratio %.2f too small; paper's is ~4.6", d.OurMeanPoPs/d.DIMESMeanPoPs)
	}
	// Superset for a solid majority (paper: 80%).
	if d.SupersetFrac < 0.5 {
		t.Errorf("superset fraction %.2f < 0.5", d.SupersetFrac)
	}
	if !strings.Contains(d.Render(), "paper: 7.14") {
		t.Error("render lacks paper comparison")
	}
}

func TestCaseStudy(t *testing.T) {
	env := sharedEnv(t)
	cs, err := RunCaseStudy(env)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Class.Level != astopo.LevelCity {
		t.Errorf("subject classified %v, want city", cs.Class.Level)
	}
	if len(cs.PoPCities) != 1 || cs.PoPCities[0] != "Rome" {
		t.Errorf("subject PoP cities = %v, want [Rome]", cs.PoPCities)
	}
	// The §6 surprise: five upstreams against an expectation of <= 2.
	if len(cs.ActualUpstreams) != 5 {
		t.Errorf("actual upstreams = %v, want 5", cs.ActualUpstreams)
	}
	// BGP best paths reveal only a subset of provider links (the
	// (in)completeness the paper cites); the inference must recover at
	// least the primary providers and never invent one.
	if len(cs.InferredUpstreams) < 2 {
		t.Errorf("inference recovered only %v", cs.InferredUpstreams)
	}
	actualSet := map[string]bool{}
	for _, u := range cs.ActualUpstreams {
		actualSet[u] = true
	}
	for _, u := range cs.InferredUpstreams {
		if !actualSet[u] {
			t.Errorf("inference invented upstream %q", u)
		}
	}
	if cs.MemberOfLocalIXP {
		t.Error("subject should not be at the local IXP")
	}
	if !cs.MemberOfRemoteIXP {
		t.Error("subject should be at the remote IXP")
	}
	if len(cs.RemotePeers) != 3 {
		t.Errorf("remote peers = %v, want 3", cs.RemotePeers)
	}
	alsoLocal := 0
	for _, b := range cs.RemotePeersAlsoLocal {
		if b {
			alsoLocal++
		}
	}
	if alsoLocal != 1 {
		t.Errorf("%d remote peers also local, want exactly 1 (the academic network)", alsoLocal)
	}
	out := cs.Render()
	for _, want := range []string{"case study", "expectation", "Verdict", "remote-over-local peering: true"} {
		if !strings.Contains(out, want) {
			t.Errorf("render lacks %q", want)
		}
	}
}

func TestNewEnvBadScale(t *testing.T) {
	if _, err := NewEnv(1, Scale(99)); err == nil {
		t.Error("unknown scale accepted")
	}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
