package experiments

import (
	"strings"
	"testing"
)

// TestRunDegradationZeroRateIdentical: the r = 0 row must rebuild the
// baseline dataset exactly — a plan with all-zero rates is provably a
// no-op through crawl, geolocation, and origin lookup.
func TestRunDegradationZeroRateIdentical(t *testing.T) {
	env := sharedEnv(t)
	d, err := RunDegradation(env, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if !d.ZeroRateIdentical {
		t.Fatal("zero-rate rebuild differs from the baseline dataset")
	}
	r := d.Rates[0]
	if r.ASes != d.BaselineASes || r.Peers != d.BaselinePeers {
		t.Fatalf("zero-rate profile %d/%d, baseline %d/%d",
			r.ASes, r.Peers, d.BaselineASes, d.BaselinePeers)
	}
	if r.ASRetention != 1 {
		t.Errorf("zero-rate retention %.3f, want 1", r.ASRetention)
	}
	// The degraded footprints ARE the baseline footprints.
	if r.MeanCoverage < 0.999 || r.MeanPrecision < 0.999 {
		t.Errorf("zero-rate coverage %.3f precision %.3f, want 1", r.MeanCoverage, r.MeanPrecision)
	}
}

// TestRunDegradationGraceful: moderate fault rates must degrade the
// footprints gradually — coverage stays high at small rates and never
// collapses to zero even at 20%.
func TestRunDegradationGraceful(t *testing.T) {
	env := sharedEnv(t)
	d, err := RunDegradation(env, []float64{0.02, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	low, high := d.Rates[0], d.Rates[1]
	if low.MeanCoverage < 0.8 {
		t.Errorf("2%% faults dropped coverage to %.3f — not graceful", low.MeanCoverage)
	}
	if high.MeanCoverage <= 0.3 {
		t.Errorf("20%% faults collapsed coverage to %.3f", high.MeanCoverage)
	}
	if high.Peers >= low.Peers {
		t.Errorf("peers did not shrink with the fault rate: %d at 2%%, %d at 20%%", low.Peers, high.Peers)
	}
	// Render sanity.
	out := d.Render()
	for _, want := range []string{"Graceful degradation", "coverage", "2%", "20%"} {
		if !strings.Contains(out, want) {
			t.Errorf("render lacks %q:\n%s", want, out)
		}
	}
	if !strings.HasPrefix(d.CSV(), "rate,ases,peers,") {
		t.Errorf("CSV header wrong: %.60s", d.CSV())
	}
}
