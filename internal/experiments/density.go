package experiments

import (
	"fmt"
	"strings"

	"eyeballas/internal/astopo"
	"eyeballas/internal/core"
	"eyeballas/internal/geo"
	"eyeballas/internal/parallel"
	"eyeballas/internal/stats"
)

// Density validates the paper's §4.2 claim that the per-PoP density
// values quantify "the level of presence of an AS in that city": for
// every multi-PoP eyeball AS, the discovered density of each PoP is
// rank-correlated against the ground-truth customer share of the matching
// PoP city. A high mean Spearman correlation means the numbers in lists
// like "[Milan (.130), Rome (.122), …]" measure something real.
type Density struct {
	NASes        int     // multi-PoP ASes evaluated
	MeanSpearman float64 // mean per-AS rank correlation
	FracStrong   float64 // fraction of ASes with ρ >= 0.6
	PairsScored  int     // total (PoP, truth) pairs matched
}

// RunDensity executes the study at the paper's default bandwidth.
func RunDensity(env *Env) (*Density, error) {
	asns := env.Dataset.Order
	type row struct {
		rho   float64
		pairs int
		ok    bool
	}
	rows := make([]row, len(asns))
	err := parallel.ForEach(env.ctx(), 0, asns, func(i int, asn astopo.ASN) error {
		a := env.World.AS(asn)
		if a == nil || len(a.UserPoPs()) < 3 {
			return nil // rank correlation needs at least 3 points
		}
		rec := env.Dataset.AS(asn)
		fp, err := core.EstimateFootprint(env.World.Gazetteer, rec.Samples, core.Options{})
		if err != nil {
			return err
		}
		var measured, truth []float64
		for _, p := range fp.PoPs {
			// Match this discovered PoP to a ground-truth user PoP city.
			for _, tp := range a.UserPoPs() {
				if geo.DistanceKm(p.City.Loc, tp.City.Loc) <= core.MatchRadiusKm {
					measured = append(measured, p.Density)
					truth = append(truth, tp.Share)
					break
				}
			}
		}
		if len(measured) < 3 {
			return nil
		}
		rows[i] = row{rho: stats.Spearman(measured, truth), pairs: len(measured), ok: true}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := &Density{}
	for _, r := range rows {
		if !r.ok {
			continue
		}
		out.NASes++
		out.MeanSpearman += r.rho
		out.PairsScored += r.pairs
		if r.rho >= 0.6 {
			out.FracStrong++
		}
	}
	if out.NASes == 0 {
		return nil, fmt.Errorf("experiments: no multi-PoP ASes to score")
	}
	out.MeanSpearman /= float64(out.NASes)
	out.FracStrong /= float64(out.NASes)
	return out, nil
}

// Render prints the correlation summary.
func (d *Density) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "PoP density vs ground-truth presence (§4.2 claim; %d multi-PoP ASes, %d matched pairs)\n",
		d.NASes, d.PairsScored)
	fmt.Fprintf(&b, "  mean per-AS Spearman correlation: %.3f\n", d.MeanSpearman)
	fmt.Fprintf(&b, "  ASes with rho >= 0.6:             %.0f%%\n", 100*d.FracStrong)
	return b.String()
}
