package experiments

import (
	"fmt"
	"sort"
	"strings"

	"eyeballas/internal/astopo"
	"eyeballas/internal/bgp"
	"eyeballas/internal/core"
	"eyeballas/internal/relationships"
)

// CaseStudy reproduces the paper's §6 study of a metropolitan-area
// eyeball AS (AS 8234, RAI, Rome): the geography-based expectation of its
// connectivity versus the far richer reality visible in relationship and
// IXP data.
type CaseStudy struct {
	Subject     astopo.ASN
	SubjectName string
	NSamples    int
	Class       core.Classification
	PoPCities   []string

	// The naive geography-based expectation for a city-level eyeball:
	// one or two regional/national upstreams and peering at the local
	// exchange.
	ExpectedMaxUpstreams int
	LocalIXPName         string
	RemoteIXPName        string

	// Observed reality.
	ActualUpstreams []string // ground-truth provider names
	// InferredUpstreams are the providers recovered by Gao-style
	// inference over BGP paths. This is typically a strict subset of
	// ActualUpstreams: backup and low-preference provider links rarely
	// appear on best paths, the very (in)completeness of BGP-derived
	// topology the paper's introduction cites (Oliveira et al.).
	InferredUpstreams []string
	MemberOfLocalIXP  bool
	MemberOfRemoteIXP bool
	RemotePeers       []string // peer names at the remote exchange
	// RemotePeersAlsoLocal flags which remote peers are *also* present
	// at the local exchange (the paper's GARR): peering with the others
	// is only possible remotely, rationalizing the remote arrangement.
	RemotePeersAlsoLocal []bool
}

// RunCaseStudy interrogates the planted §6 scenario through measurement
// data: the subject's footprint and classification come from the
// pipeline, its upstreams from relationship inference over BGP paths
// (cross-checked against ground truth), and its peerings from the IXP
// dataset.
func RunCaseStudy(env *Env) (*CaseStudy, error) {
	refs := env.World.CaseStudy()
	if refs == nil {
		return nil, fmt.Errorf("experiments: world was generated without a case study")
	}
	rec := env.Dataset.AS(refs.Subject)
	if rec == nil {
		return nil, fmt.Errorf("experiments: case-study subject %d not in the target dataset", refs.Subject)
	}
	cs := &CaseStudy{
		Subject:              refs.Subject,
		SubjectName:          env.World.AS(refs.Subject).Name,
		NSamples:             len(rec.Samples),
		Class:                rec.Class,
		ExpectedMaxUpstreams: 2,
		LocalIXPName:         env.World.IXP(refs.LocalIXP).Name,
		RemoteIXPName:        env.World.IXP(refs.RemoteIXP).Name,
	}

	fp, err := core.EstimateFootprint(env.World.Gazetteer, rec.Samples, core.Options{})
	if err != nil {
		return nil, err
	}
	for _, p := range fp.PoPs {
		cs.PoPCities = append(cs.PoPCities, p.City.Name)
	}

	// Ground-truth upstreams.
	for _, p := range env.World.Providers(refs.Subject) {
		cs.ActualUpstreams = append(cs.ActualUpstreams, env.World.AS(p).Name)
	}
	sort.Strings(cs.ActualUpstreams)

	// Inferred upstreams from BGP paths (three tier-1 and three eyeball
	// vantages).
	inf := relationships.Infer(caseStudyRIBs(env)...)
	for _, p := range inf.Providers(refs.Subject) {
		if a := env.World.AS(p); a != nil {
			cs.InferredUpstreams = append(cs.InferredUpstreams, a.Name)
		}
	}
	sort.Strings(cs.InferredUpstreams)

	// IXP view.
	cs.MemberOfLocalIXP = env.IXPData.MemberOf(refs.LocalIXP, refs.Subject)
	cs.MemberOfRemoteIXP = env.IXPData.MemberOf(refs.RemoteIXP, refs.Subject)
	for _, peer := range env.IXPData.PeersAt(refs.Subject, refs.RemoteIXP) {
		cs.RemotePeers = append(cs.RemotePeers, env.World.AS(peer).Name)
		cs.RemotePeersAlsoLocal = append(cs.RemotePeersAlsoLocal,
			env.IXPData.MemberOf(refs.LocalIXP, peer))
	}
	return cs, nil
}

func caseStudyRIBs(env *Env) []*bgp.RIB {
	var ribs []*bgp.RIB
	tier1s := 0
	for _, a := range env.World.ASes() {
		if a.Kind == astopo.KindTier1 && tier1s < 5 {
			if rib, err := bgp.BuildRIB(env.World, env.Routing, a.ASN); err == nil {
				ribs = append(ribs, rib)
				tier1s++
			}
		}
	}
	eyeballs := 0
	for _, a := range env.World.Eyeballs() {
		if rib, err := bgp.BuildRIB(env.World, env.Routing, a.ASN); err == nil {
			ribs = append(ribs, rib)
			eyeballs++
		}
		if eyeballs == 8 {
			break
		}
	}
	return ribs
}

// Render narrates the case study the way §6 does.
func (cs *CaseStudy) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§6 case study: AS %d (%s)\n", cs.Subject, cs.SubjectName)
	fmt.Fprintf(&b, "  %d P2P users, classified %s-level (%s, %.1f%% containment)\n",
		cs.NSamples, cs.Class.Level, cs.Class.Place, 100*cs.Class.Share)
	fmt.Fprintf(&b, "  PoP-level footprint: %s\n", strings.Join(cs.PoPCities, ", "))
	fmt.Fprintf(&b, "\n  Geography-based expectation: <= %d regional upstream(s); local peering at %s\n",
		cs.ExpectedMaxUpstreams, cs.LocalIXPName)
	fmt.Fprintf(&b, "\n  Observed upstreams (%d): %s\n", len(cs.ActualUpstreams), strings.Join(cs.ActualUpstreams, ", "))
	fmt.Fprintf(&b, "  Inferred from BGP paths (%d): %s\n", len(cs.InferredUpstreams), strings.Join(cs.InferredUpstreams, ", "))
	if len(cs.InferredUpstreams) < len(cs.ActualUpstreams) {
		fmt.Fprintf(&b, "  (BGP best paths hide %d backup provider link(s) — the (in)completeness the paper cites)\n",
			len(cs.ActualUpstreams)-len(cs.InferredUpstreams))
	}
	fmt.Fprintf(&b, "  Member of local %s: %v; member of remote %s: %v\n",
		cs.LocalIXPName, cs.MemberOfLocalIXP, cs.RemoteIXPName, cs.MemberOfRemoteIXP)
	for i, p := range cs.RemotePeers {
		note := "remote-only peer"
		if cs.RemotePeersAlsoLocal[i] {
			note = "also present at the local IXP"
		}
		fmt.Fprintf(&b, "  peers at %s with %s (%s)\n", cs.RemoteIXPName, p, note)
	}
	surprise := len(cs.ActualUpstreams) > cs.ExpectedMaxUpstreams
	fmt.Fprintf(&b, "\n  Verdict: upstream richness %d > expected %d: %v; remote-over-local peering: %v\n",
		len(cs.ActualUpstreams), cs.ExpectedMaxUpstreams, surprise,
		cs.MemberOfRemoteIXP && !cs.MemberOfLocalIXP)
	return b.String()
}
