package experiments

import (
	"fmt"
	"reflect"
	"strings"

	"eyeballas/internal/astopo"
	"eyeballas/internal/core"
	"eyeballas/internal/faults"
	"eyeballas/internal/geo"
	"eyeballas/internal/p2p"
	"eyeballas/internal/parallel"
	"eyeballas/internal/pipeline"
)

// Degradation sweeps the fault-injection rate across every ingestion
// boundary at once — crawl responses lost, geolocation records missing,
// origin lookups failing — and measures how gracefully the paper's
// methodology degrades: the technique is only useful in practice if a
// few percent of dirty input moves the discovered footprints by a few
// percent, not catastrophically.
//
// For each rate r the pipeline is rebuilt over the same world with
// crawl-loss = geo-miss = origin-miss = r, and the degraded footprints
// of the ASes still eligible are scored against the clean baseline's
// footprints with the paper's §5 PoP matching (MatchPoPs at the 2a/2b
// radius): coverage is the fraction of baseline PoPs recovered,
// precision the fraction of degraded PoPs that existed in the baseline.
//
// The r = 0 row doubles as a determinism proof: a plan with all-zero
// rates must rebuild the baseline dataset bit for bit.
type Degradation struct {
	Rates []DegradationRow
	// BaselineASes and BaselinePeers profile the clean dataset the rows
	// are scored against.
	BaselineASes  int
	BaselinePeers int
	// ZeroRateIdentical records the r = 0 rebuild comparing equal to the
	// baseline dataset (the no-fault path provably untouched).
	ZeroRateIdentical bool
}

// DegradationRow is one fault rate's outcome.
type DegradationRow struct {
	Rate float64
	// ASes and Peers profile the degraded dataset (eligible ASes shrink
	// as faults eat peers).
	ASes  int
	Peers int
	// ASRetention is the fraction of baseline-eligible ASes still
	// eligible under this rate.
	ASRetention float64
	// MeanCoverage averages, over retained ASes, the fraction of
	// baseline PoPs the degraded footprint still finds (Figure 2a's
	// metric with the clean run as reference).
	MeanCoverage float64
	// MeanPrecision averages the fraction of degraded PoPs that match a
	// baseline PoP (Figure 2b's metric).
	MeanPrecision float64
}

// DefaultDegradationRates is the sweep the paper-style writeup uses.
var DefaultDegradationRates = []float64{0, 0.01, 0.02, 0.05, 0.1, 0.2}

// RunDegradation rebuilds the pipeline at each fault rate and scores
// footprint similarity against the environment's clean dataset. A nil
// rates slice selects DefaultDegradationRates.
func RunDegradation(env *Env, rates []float64) (*Degradation, error) {
	if rates == nil {
		rates = DefaultDegradationRates
	}
	baseline := env.Dataset
	out := &Degradation{
		BaselineASes:  len(baseline.Order),
		BaselinePeers: baseline.TotalPeers,
	}

	// Baseline footprints, one per eligible AS, computed once.
	basePoPs := make(map[astopo.ASN][]core.PoP, len(baseline.Order))
	popSets := make([][]core.PoP, len(baseline.Order))
	err := parallel.ForEach(env.ctx(), 0, baseline.Order, func(i int, asn astopo.ASN) error {
		fp, err := core.EstimateFootprintCtx(env.ctx(), env.World.Gazetteer, baseline.AS(asn).Samples, core.Options{})
		if err != nil {
			return err
		}
		popSets[i] = fp.PoPs
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, asn := range baseline.Order {
		basePoPs[asn] = popSets[i]
	}

	for _, rate := range rates {
		plan := faults.NewPlan(env.Seed + 977)
		for _, pt := range []faults.Point{faults.CrawlLoss, faults.GeoMiss, faults.OriginMiss} {
			if err := plan.Set(pt, rate); err != nil {
				return nil, err
			}
		}
		// Rebuild with the environment's own thresholds so the r = 0 row
		// is the literal baseline build.
		pipeCfg := env.PipeCfg
		pipeCfg.Obs = nil // rebuilds are not part of the run's funnel
		pipeCfg.Faults = plan
		ds, _, err := pipeline.Run(env.ctx(), env.World, p2p.DefaultConfig(), pipeCfg, env.Seed)
		if err != nil {
			return nil, err
		}
		row := DegradationRow{Rate: rate, ASes: len(ds.Order), Peers: ds.TotalPeers}
		if rate == 0 {
			out.ZeroRateIdentical = datasetsEqual(baseline, ds)
		}

		// Retained ASes: eligible in both the baseline and this rate.
		var common []astopo.ASN
		for _, asn := range baseline.Order {
			if ds.AS(asn) != nil {
				common = append(common, asn)
			}
		}
		if out.BaselineASes > 0 {
			row.ASRetention = float64(len(common)) / float64(out.BaselineASes)
		}
		if len(common) > 0 {
			type score struct{ cov, prec float64 }
			scores := make([]score, len(common))
			err := parallel.ForEach(env.ctx(), 0, common, func(i int, asn astopo.ASN) error {
				fp, err := core.EstimateFootprintCtx(env.ctx(), env.World.Gazetteer, ds.AS(asn).Samples, core.Options{})
				if err != nil {
					return err
				}
				ref := basePoPs[asn]
				refPts := make([]geo.Point, 0, len(ref))
				for _, p := range ref {
					refPts = append(refPts, p.City.Loc)
				}
				m := core.MatchPoPs(fp.PoPs, refPts, core.MatchRadiusKm)
				scores[i] = score{cov: m.RefMatchedFrac(), prec: m.DiscMatchedFrac()}
				return nil
			})
			if err != nil {
				return nil, err
			}
			for _, s := range scores {
				row.MeanCoverage += s.cov
				row.MeanPrecision += s.prec
			}
			row.MeanCoverage /= float64(len(common))
			row.MeanPrecision /= float64(len(common))
		}
		out.Rates = append(out.Rates, row)
	}
	return out, nil
}

// datasetsEqual compares two builds structurally: same eligible ASes in
// the same order, same usable samples per AS, same funnel totals.
func datasetsEqual(a, b *pipeline.Dataset) bool {
	if a.TotalPeers != b.TotalPeers || a.CrawledPeers != b.CrawledPeers {
		return false
	}
	if !reflect.DeepEqual(a.Order, b.Order) {
		return false
	}
	if a.Drops != b.Drops {
		return false
	}
	for _, asn := range a.Order {
		ra, rb := a.AS(asn), b.AS(asn)
		if rb == nil || !reflect.DeepEqual(ra.Samples, rb.Samples) || ra.Class != rb.Class {
			return false
		}
	}
	return true
}

// Render prints the sweep as a table.
func (d *Degradation) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Graceful degradation under injected faults (crawl-loss = geo-miss = origin-miss = rate)\n")
	fmt.Fprintf(&b, "baseline: %d eligible ASes, %d usable peers; zero-rate rebuild identical: %v\n",
		d.BaselineASes, d.BaselinePeers, d.ZeroRateIdentical)
	fmt.Fprintf(&b, "  %6s  %6s  %10s  %9s  %9s  %9s\n",
		"rate", "ASes", "peers", "retention", "coverage", "precision")
	for _, r := range d.Rates {
		fmt.Fprintf(&b, "  %5.0f%%  %6d  %10d  %8.1f%%  %8.1f%%  %8.1f%%\n",
			100*r.Rate, r.ASes, r.Peers, 100*r.ASRetention, 100*r.MeanCoverage, 100*r.MeanPrecision)
	}
	return b.String()
}

// CSV renders the sweep machine-readably.
func (d *Degradation) CSV() string {
	var b strings.Builder
	b.WriteString("rate,ases,peers,retention,coverage,precision\n")
	for _, r := range d.Rates {
		fmt.Fprintf(&b, "%g,%d,%d,%.4f,%.4f,%.4f\n",
			r.Rate, r.ASes, r.Peers, r.ASRetention, r.MeanCoverage, r.MeanPrecision)
	}
	return b.String()
}
