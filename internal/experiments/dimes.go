package experiments

import (
	"fmt"
	"strings"

	"eyeballas/internal/astopo"
	"eyeballas/internal/core"
	"eyeballas/internal/gazetteer"
	"eyeballas/internal/parallel"
	"eyeballas/internal/traceroute"
)

// DIMES reproduces the paper's §5 comparison with the traceroute-based
// DIMES PoP dataset: over the eyeball ASes common to both datasets
// (restricted to EU and NA, as the paper does), compare PoPs-per-AS and
// check how often the KDE-discovered set is a superset of the
// traceroute-observed set.
type DIMES struct {
	CommonASes     int
	OurMeanPoPs    float64
	DIMESMeanPoPs  float64
	SupersetFrac   float64 // fraction of common ASes where ours ⊇ DIMES
	BandwidthKm    float64
	perASOur       []int
	perASTraceOnly []int
}

// RunDIMES executes the comparison at the paper's 40 km bandwidth.
func RunDIMES(env *Env) (*DIMES, error) {
	tracePoPs := traceroute.PoPs(env.Traces)
	d := &DIMES{BandwidthKm: 40}
	// Common ASes: EU/NA eyeballs in the target dataset that traceroute
	// also observed.
	var common []astopo.ASN
	for _, rec := range env.Dataset.Records() {
		if rec.Region != gazetteer.EU && rec.Region != gazetteer.NA {
			continue
		}
		if len(tracePoPs[rec.ASN]) == 0 {
			continue
		}
		common = append(common, rec.ASN)
	}
	if len(common) == 0 {
		return nil, fmt.Errorf("experiments: no common ASes between the datasets")
	}
	type cmp struct {
		our, trace int
		superset   bool
	}
	results := make([]cmp, len(common))
	err := parallel.ForEach(env.ctx(), 0, common, func(i int, asn astopo.ASN) error {
		rec := env.Dataset.AS(asn)
		observed := tracePoPs[asn]
		fp, err := core.EstimateFootprint(env.World.Gazetteer, rec.Samples, core.Options{BandwidthKm: d.BandwidthKm})
		if err != nil {
			return fmt.Errorf("experiments: AS %d: %w", asn, err)
		}
		m := core.MatchPoPs(fp.PoPs, observed, core.MatchRadiusKm)
		results[i] = cmp{our: len(fp.PoPs), trace: len(observed), superset: m.Superset()}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var ourTotal, traceTotal, supersets int
	for _, r := range results {
		d.CommonASes++
		ourTotal += r.our
		traceTotal += r.trace
		if r.superset {
			supersets++
		}
		d.perASOur = append(d.perASOur, r.our)
		d.perASTraceOnly = append(d.perASTraceOnly, r.trace)
	}
	d.OurMeanPoPs = float64(ourTotal) / float64(d.CommonASes)
	d.DIMESMeanPoPs = float64(traceTotal) / float64(d.CommonASes)
	d.SupersetFrac = float64(supersets) / float64(d.CommonASes)
	return d, nil
}

// Render prints the comparison in the paper's terms.
func (d *DIMES) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§5 DIMES comparison (bandwidth %.0f km, %d common EU/NA eyeball ASes)\n",
		d.BandwidthKm, d.CommonASes)
	fmt.Fprintf(&b, "  KDE-discovered PoPs per AS:       %.2f   (paper: 7.14)\n", d.OurMeanPoPs)
	fmt.Fprintf(&b, "  traceroute-observed PoPs per AS:  %.2f   (paper: 1.54)\n", d.DIMESMeanPoPs)
	fmt.Fprintf(&b, "  ASes where KDE ⊇ traceroute:      %.0f%%  (paper: 80%%)\n", 100*d.SupersetFrac)
	return b.String()
}
