package experiments

import (
	"fmt"
	"strings"

	"eyeballas/internal/astopo"
	"eyeballas/internal/core"
	"eyeballas/internal/grid"
)

// Figure1 reproduces the paper's Figure 1: the user-density surface of a
// large country-level (Italy-wide in the paper: AS 3269) eyeball AS at
// several kernel bandwidths, showing city-level peaks merging into
// regional and national blobs as the bandwidth grows.
type Figure1 struct {
	ASN        astopo.ASN
	Name       string
	NSamples   int
	Bandwidths []float64
	Footprints map[float64]*core.Footprint
}

// Figure1Bandwidths are the paper's three panels.
var Figure1Bandwidths = []float64{20, 40, 60}

// RunFigure1 picks the Figure 1 subject — the planted Italy-wide
// national ISP when present and eligible, otherwise the eligible
// country-level AS with the most samples — and estimates its footprint at
// each bandwidth.
func RunFigure1(env *Env, bandwidths []float64) (*Figure1, error) {
	if len(bandwidths) == 0 {
		bandwidths = Figure1Bandwidths
	}
	subject := pickFigure1Subject(env)
	if subject == 0 {
		return nil, fmt.Errorf("experiments: no country-level AS in the target dataset")
	}
	rec := env.Dataset.AS(subject)
	f := &Figure1{
		ASN:        subject,
		Name:       env.World.AS(subject).Name,
		NSamples:   len(rec.Samples),
		Bandwidths: bandwidths,
		Footprints: make(map[float64]*core.Footprint),
	}
	for _, bw := range bandwidths {
		fp, err := core.EstimateFootprint(env.World.Gazetteer, rec.Samples, core.Options{BandwidthKm: bw})
		if err != nil {
			return nil, err
		}
		f.Footprints[bw] = fp
	}
	return f, nil
}

func pickFigure1Subject(env *Env) astopo.ASN {
	if cs := env.World.CaseStudy(); cs != nil {
		if rec := env.Dataset.AS(cs.NationalISP); rec != nil {
			return cs.NationalISP
		}
	}
	best := astopo.ASN(0)
	bestN := 0
	for _, rec := range env.Dataset.Records() {
		if rec.Class.Level == astopo.LevelCountry && len(rec.Samples) > bestN {
			best, bestN = rec.ASN, len(rec.Samples)
		}
	}
	return best
}

// Render sketches each panel: peak statistics, the PoP-level footprint
// list (the paper's §4.2 city list), and an ASCII density map.
func (f *Figure1) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1: KDE user density for AS %d (%s), %d samples\n",
		f.ASN, f.Name, f.NSamples)
	for _, bw := range f.Bandwidths {
		fp := f.Footprints[bw]
		fmt.Fprintf(&b, "\n-- bandwidth %.0f km: %d peaks, %d PoPs, %d footprint partition(s), Dmax %.3g\n",
			bw, len(fp.Peaks), len(fp.PoPs), len(fp.Partitions), fp.Dmax)
		fmt.Fprintf(&b, "   PoP-level footprint: %s\n", fp.CityList())
		b.WriteString(asciiDensity(fp.Grid, 64, 20))
	}
	return b.String()
}

// asciiDensity downsamples a grid into a character heat map.
func asciiDensity(g *grid.Grid, width, height int) string {
	ramp := []rune(" .:-=+*#%@")
	max, _, _ := g.Max()
	if max == 0 {
		return "(empty surface)\n"
	}
	var b strings.Builder
	for row := height - 1; row >= 0; row-- {
		b.WriteString("   |")
		for col := 0; col < width; col++ {
			// Sample the block of cells this character covers; take the max.
			i0 := col * g.W / width
			i1 := (col+1)*g.W/width - 1
			j0 := row * g.H / height
			j1 := (row+1)*g.H/height - 1
			v := 0.0
			for j := j0; j <= j1 && j < g.H; j++ {
				for i := i0; i <= i1 && i < g.W; i++ {
					if g.At(i, j) > v {
						v = g.At(i, j)
					}
				}
			}
			idx := int(v / max * float64(len(ramp)-1))
			if idx >= len(ramp) {
				idx = len(ramp) - 1
			}
			b.WriteRune(ramp[idx])
		}
		b.WriteString("|\n")
	}
	return b.String()
}
