package experiments

import (
	"fmt"
	"strings"

	"eyeballas/internal/astopo"
	"eyeballas/internal/core"
	"eyeballas/internal/p2p"
	"eyeballas/internal/parallel"
	"eyeballas/internal/pipeline"
)

// Stability is a robustness study motivated by the paper's measurement
// window: the crawls ran for six months (Jan–Jun 2009), so the technique
// implicitly assumes footprints are stable under crawl-to-crawl sampling
// noise. Here the same world is crawled repeatedly with independent crawl
// seeds ("months") and the PoP-level footprints of common ASes are
// compared across months.
type Stability struct {
	Months   int
	CommonAS int

	// MeanConsecutiveJaccard averages the PoP-set Jaccard similarity
	// between consecutive months across common ASes.
	MeanConsecutiveJaccard float64
	// MeanFirstLastJaccard compares the first and last month directly.
	MeanFirstLastJaccard float64
	// ASRetention is the fraction of month-1 eligible ASes that remain
	// eligible in every later month.
	ASRetention float64
}

// RunStability crawls the world `months` times and scores footprint
// stability at the paper's default bandwidth.
func RunStability(env *Env, months int) (*Stability, error) {
	if months < 2 {
		return nil, fmt.Errorf("experiments: need >= 2 months, got %d", months)
	}
	// Re-run the pipeline per month with a distinct crawl seed. The
	// world — the geography — is fixed; only sampling varies.
	pipeCfg := pipeline.DefaultConfig()
	if len(env.Dataset.Order) < 100 {
		// Match the scale the env was built at.
		pipeCfg.MinPeers = 60
	}
	datasets := make([]*pipeline.Dataset, months)
	for m := 0; m < months; m++ {
		ds, _, err := pipeline.Run(env.ctx(), env.World, p2p.DefaultConfig(), pipeCfg, env.Seed+uint64(1000+m))
		if err != nil {
			return nil, err
		}
		datasets[m] = ds
	}

	// Common ASes: eligible every month.
	var common []astopo.ASN
	for _, asn := range datasets[0].Order {
		everywhere := true
		for _, ds := range datasets[1:] {
			if ds.AS(asn) == nil {
				everywhere = false
				break
			}
		}
		if everywhere {
			common = append(common, asn)
		}
	}
	st := &Stability{Months: months, CommonAS: len(common)}
	if len(datasets[0].Order) > 0 {
		st.ASRetention = float64(len(common)) / float64(len(datasets[0].Order))
	}
	if len(common) == 0 {
		return nil, fmt.Errorf("experiments: no AS eligible in every month")
	}

	// Per-month PoP city sets per common AS. Workers write into an
	// index-addressed slice (no shared map writes); the lookup map is
	// assembled afterwards.
	popSets := make([]map[astopo.ASN]map[string]bool, months)
	for m, ds := range datasets {
		sets := make([]map[string]bool, len(common))
		err := parallel.ForEach(env.ctx(), 0, common, func(i int, asn astopo.ASN) error {
			rec := ds.AS(asn)
			fp, err := core.EstimateFootprint(env.World.Gazetteer, rec.Samples, core.Options{})
			if err != nil {
				return err
			}
			set := make(map[string]bool, len(fp.PoPs))
			for _, p := range fp.PoPs {
				set[p.City.Name+"/"+p.City.Country] = true
			}
			sets[i] = set
			return nil
		})
		if err != nil {
			return nil, err
		}
		popSets[m] = make(map[astopo.ASN]map[string]bool, len(common))
		for i, asn := range common {
			popSets[m][asn] = sets[i]
		}
	}

	jaccard := func(a, b map[string]bool) float64 {
		if len(a) == 0 && len(b) == 0 {
			return 1
		}
		inter := 0
		for k := range a {
			if b[k] {
				inter++
			}
		}
		union := len(a) + len(b) - inter
		if union == 0 {
			return 1
		}
		return float64(inter) / float64(union)
	}

	var consecutive, firstLast float64
	for _, asn := range common {
		for m := 1; m < months; m++ {
			consecutive += jaccard(popSets[m-1][asn], popSets[m][asn])
		}
		firstLast += jaccard(popSets[0][asn], popSets[months-1][asn])
	}
	st.MeanConsecutiveJaccard = consecutive / float64(len(common)*(months-1))
	st.MeanFirstLastJaccard = firstLast / float64(len(common))
	return st, nil
}

// Render prints the stability scores.
func (s *Stability) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Temporal stability (%d independent monthly crawls; %d common ASes, %.0f%% retention)\n",
		s.Months, s.CommonAS, 100*s.ASRetention)
	fmt.Fprintf(&b, "  mean consecutive-month PoP-set Jaccard: %.3f\n", s.MeanConsecutiveJaccard)
	fmt.Fprintf(&b, "  mean first-vs-last-month Jaccard:       %.3f\n", s.MeanFirstLastJaccard)
	return b.String()
}
