package experiments

import (
	"errors"
	"sync/atomic"
	"testing"

	"eyeballas/internal/astopo"
)

func TestForEachASVisitsAll(t *testing.T) {
	asns := make([]astopo.ASN, 500)
	for i := range asns {
		asns[i] = astopo.ASN(i + 100)
	}
	visited := make([]int32, len(asns))
	err := forEachAS(asns, func(i int, asn astopo.ASN) error {
		if asns[i] != asn {
			t.Errorf("index %d got asn %d", i, asn)
		}
		atomic.AddInt32(&visited[i], 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range visited {
		if v != 1 {
			t.Fatalf("index %d visited %d times", i, v)
		}
	}
}

func TestForEachASEmpty(t *testing.T) {
	called := false
	if err := forEachAS(nil, func(int, astopo.ASN) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Error("callback invoked for empty input")
	}
}

func TestForEachASFirstErrorWins(t *testing.T) {
	asns := make([]astopo.ASN, 200)
	for i := range asns {
		asns[i] = astopo.ASN(i)
	}
	errLow := errors.New("low")
	errHigh := errors.New("high")
	err := forEachAS(asns, func(i int, asn astopo.ASN) error {
		switch i {
		case 7:
			return errLow
		case 150:
			return errHigh
		}
		return nil
	})
	if !errors.Is(err, errLow) {
		t.Errorf("got %v, want the lowest-index error", err)
	}
}

func TestForEachASSingleItem(t *testing.T) {
	n := 0
	err := forEachAS([]astopo.ASN{42}, func(i int, asn astopo.ASN) error {
		n++
		if i != 0 || asn != 42 {
			t.Errorf("got (%d, %d)", i, asn)
		}
		return nil
	})
	if err != nil || n != 1 {
		t.Errorf("err=%v n=%d", err, n)
	}
}
