package experiments

import (
	"testing"

	"eyeballas/internal/gazetteer"
	"eyeballas/internal/p2p"
)

// TestFullScaleShapes is the integration test for the paper's headline
// shapes at the default experiment scale (~650 eyeball ASes, ~1.5M
// crawled peers). It takes ~25 s; skipped under -short.
func TestFullScaleShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale run skipped in -short mode")
	}
	env, err := NewEnv(1, ScaleDefault)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(env.Dataset.Order); n < 400 {
		t.Fatalf("target dataset has only %d ASes", n)
	}

	// Table 1 asymmetries.
	tbl := RunTable1(env)
	if tbl.Peers[gazetteer.EU][p2p.Kad] <= tbl.Peers[gazetteer.EU][p2p.Gnutella] ||
		tbl.Peers[gazetteer.AS][p2p.Kad] <= tbl.Peers[gazetteer.AS][p2p.Gnutella] {
		t.Error("Kad should dominate EU and AS peers")
	}
	if tbl.Peers[gazetteer.NA][p2p.Gnutella] <= tbl.Peers[gazetteer.NA][p2p.Kad] {
		t.Error("Gnutella should dominate NA peers")
	}
	if tbl.Levels[gazetteer.EU][2] <= tbl.Levels[gazetteer.EU][0] { // country vs city
		t.Error("EU should be country-heavy")
	}
	if tbl.Levels[gazetteer.NA][1] <= tbl.Levels[gazetteer.NA][0] { // state vs city
		t.Error("NA should be state-heavy")
	}

	// Figure 2 / §5 shapes at full statistical power.
	f2, err := RunFigure2(env, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(f2.ASNs) < 40 {
		t.Fatalf("only %d validation ASes (paper: 45)", len(f2.ASNs))
	}
	if !(f2.MeanDiscovered[10] > f2.MeanDiscovered[40] && f2.MeanDiscovered[40] > f2.MeanDiscovered[80]) {
		t.Errorf("mean discovered not decreasing: %v", f2.MeanDiscovered)
	}
	if !(f2.PerfectMatchFrac[80] > f2.PerfectMatchFrac[40] && f2.PerfectMatchFrac[40] > f2.PerfectMatchFrac[10]) {
		t.Errorf("perfect-match not increasing: %v", f2.PerfectMatchFrac)
	}
	// The 10 km panel must be clearly unreliable (paper: 5% perfect).
	if f2.PerfectMatchFrac[10] > 0.35 {
		t.Errorf("perfect-match at 10 km = %.2f; the fine-bandwidth set should be unreliable", f2.PerfectMatchFrac[10])
	}
	if f2.MeanReference <= f2.MeanDiscovered[40] {
		t.Errorf("published lists (%.1f) should exceed discovered at 40 km (%.1f)",
			f2.MeanReference, f2.MeanDiscovered[40])
	}

	// DIMES comparison (paper: 7.14 vs 1.54, 80% superset).
	d, err := RunDIMES(env)
	if err != nil {
		t.Fatal(err)
	}
	if d.CommonASes < 200 {
		t.Fatalf("only %d common ASes (paper: 226)", d.CommonASes)
	}
	if ratio := d.OurMeanPoPs / d.DIMESMeanPoPs; ratio < 2 {
		t.Errorf("KDE/traceroute PoP ratio %.2f < 2 (paper: ~4.6)", ratio)
	}
	if d.SupersetFrac < 0.6 || d.SupersetFrac > 0.98 {
		t.Errorf("superset fraction %.2f outside [0.6, 0.98] (paper: 0.80)", d.SupersetFrac)
	}

	// Case study survives at scale.
	cs, err := RunCaseStudy(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.ActualUpstreams) != 5 || cs.MemberOfLocalIXP || !cs.MemberOfRemoteIXP {
		t.Errorf("case study malformed: %+v", cs)
	}
}
