package experiments

import (
	"fmt"
	"strings"

	"eyeballas/internal/astopo"
	"eyeballas/internal/core"
	"eyeballas/internal/p2p"
	"eyeballas/internal/parallel"
	"eyeballas/internal/pipeline"
)

// CrawlQuality measures the end-to-end sensitivity of the paper's method
// to crawl effort: the §2 pipeline is rerun at decreasing crawl scales
// (the statistical analogue of the RPC budgets studied at protocol level
// in internal/dht), and the target dataset size, per-AS sample mass, and
// discovered PoPs are tracked. This is the quantitative rationale for the
// paper's 1000-peer floor: below a sample threshold, footprints thin out
// before ASes disappear.
type CrawlQuality struct {
	Scales []float64
	Rows   []CrawlQualityRow
}

// CrawlQualityRow is one crawl-scale operating point.
type CrawlQualityRow struct {
	Scale        float64
	CrawledPeers int
	EligibleASes int
	UsablePeers  int
	// MeanPoPs averages discovered PoPs/AS at 40 km over that scale's
	// eligible ASes. Beware the composition effect: at low scales only
	// large ASes survive the peer floor, inflating this mean.
	MeanPoPs float64
	// MeanPoPsCommon averages over the ASes eligible at every swept
	// scale — the like-for-like footprint-thinning signal.
	MeanPoPsCommon float64
}

// RunCrawlQuality sweeps the crawl scale multipliers (fractions of the
// environment's default crawl).
func RunCrawlQuality(env *Env, scales []float64) (*CrawlQuality, error) {
	if len(scales) == 0 {
		scales = []float64{1.0, 0.5, 0.25, 0.1}
	}
	pipeCfg := pipeline.DefaultConfig()
	if len(env.Dataset.Order) < 100 {
		pipeCfg.MinPeers = 60
	}
	out := &CrawlQuality{Scales: scales}
	datasets := make([]*pipeline.Dataset, len(scales))
	for si, scale := range scales {
		if scale <= 0 {
			return nil, fmt.Errorf("experiments: non-positive crawl scale %v", scale)
		}
		crawlCfg := p2p.DefaultConfig()
		crawlCfg.Scale *= scale
		ds, crawl, err := pipeline.Run(env.ctx(), env.World, crawlCfg, pipeCfg, env.Seed+7777)
		if err != nil {
			return nil, err
		}
		datasets[si] = ds
		out.Rows = append(out.Rows, CrawlQualityRow{
			Scale:        scale,
			CrawledPeers: len(crawl.Peers),
			EligibleASes: len(ds.Order),
			UsablePeers:  ds.TotalPeers,
		})
	}

	// ASes eligible at every scale, for the like-for-like comparison.
	var common []astopo.ASN
	for _, asn := range datasets[0].Order {
		everywhere := true
		for _, ds := range datasets[1:] {
			if ds.AS(asn) == nil {
				everywhere = false
				break
			}
		}
		if everywhere {
			common = append(common, asn)
		}
	}

	for si, ds := range datasets {
		meanOver := func(asns []astopo.ASN, lookup *pipeline.Dataset) (float64, error) {
			if len(asns) == 0 {
				return 0, nil
			}
			totals := make([]int, len(asns))
			err := parallel.ForEach(env.ctx(), 0, asns, func(i int, asn astopo.ASN) error {
				rec := lookup.AS(asn)
				fp, err := core.EstimateFootprint(env.World.Gazetteer, rec.Samples, core.Options{})
				if err != nil {
					return err
				}
				totals[i] = len(fp.PoPs)
				return nil
			})
			if err != nil {
				return 0, err
			}
			sum := 0
			for _, n := range totals {
				sum += n
			}
			return float64(sum) / float64(len(asns)), nil
		}
		var err error
		if out.Rows[si].MeanPoPs, err = meanOver(ds.Order, ds); err != nil {
			return nil, err
		}
		if out.Rows[si].MeanPoPsCommon, err = meanOver(common, ds); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Render prints the sweep.
func (c *CrawlQuality) Render() string {
	var b strings.Builder
	b.WriteString("Crawl-effort sensitivity (pipeline reruns at reduced crawl scale)\n")
	fmt.Fprintf(&b, "  %-8s %12s %12s %12s %10s %14s\n", "scale", "crawled", "usable", "ASes", "PoPs/AS", "PoPs/AS(common)")
	for _, r := range c.Rows {
		fmt.Fprintf(&b, "  %-8.2f %12d %12d %12d %10.2f %14.2f\n",
			r.Scale, r.CrawledPeers, r.UsablePeers, r.EligibleASes, r.MeanPoPs, r.MeanPoPsCommon)
	}
	return b.String()
}
